// Ablation: append_entries batching and pipelining (DESIGN.md design choice).
// Sweeps max_entries_per_ae x max_outstanding_ae for a 3-node HovercRaft++
// cluster at the Figure 7 workload and reports max throughput under the SLO
// and unloaded p99. Batching amortizes per-message costs; pipelining keeps
// the replication stream full when round-trips inflate under load — the
// batch*depth product caps entries in flight per RTT.
#include <cstdio>

#include "bench/bench_common.h"

namespace hovercraft {
namespace {

void Run() {
  benchutil::PrintHeader(
      "Ablation: append_entries batch size x pipelining depth, HovercRaft++ N=3",
      "implementation design choice (paper section 6.2 operates likewise)");

  SyntheticWorkloadConfig workload;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(1));

  std::printf("%8s %8s %18s %16s\n", "batch", "depth", "max kRPS (SLO)", "p99 @ 100kRPS");
  for (uint32_t batch : {8u, 64u}) {
    for (uint32_t depth : {1u, 2u, 4u}) {
      ExperimentConfig config = benchutil::MakeSyntheticExperiment(
          ClusterMode::kHovercRaftPP, 3, workload, ReplierPolicy::kLeaderOnly, 128, 42);
      config.cluster.raft.max_entries_per_ae = batch;
      config.cluster.raft.max_outstanding_ae = depth;
      const LoadMetrics unloaded = RunLoadPoint(config, 100e3);
      const SloResult r = FindMaxThroughputUnderSlo(config, benchutil::kSlo, 50e3, 1'050e3, 5);
      std::printf("%8u %8u %15.0fk %13.1fus\n", batch, depth, r.max_rps_under_slo / 1e3,
                  static_cast<double>(unloaded.p99_ns) / 1e3);
      std::fflush(stdout);
    }
  }
}

}  // namespace
}  // namespace hovercraft

int main() {
  hovercraft::Run();
  return 0;
}
