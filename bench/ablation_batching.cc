// Ablation: append_entries batching and pipelining (DESIGN.md design choice).
// Sweeps max_entries_per_ae x max_outstanding_ae for a 3-node HovercRaft++
// cluster at the Figure 7 workload and reports max throughput under the SLO
// and unloaded p99. Batching amortizes per-message costs; pipelining keeps
// the replication stream full when round-trips inflate under load — the
// batch*depth product caps entries in flight per RTT.
//
// A second section ablates the *transport* layer (ISSUE 9): eRPC-style frame
// coalescing below the protocol. AE batching reduces logical messages;
// transport coalescing leaves logical messages untouched and packs them into
// fewer physical frames — the table reports both so the two levers are
// visibly orthogonal.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "src/loadgen/client.h"

namespace hovercraft {
namespace {

void RunAeSweep(benchutil::BenchIo& io) {
  SyntheticWorkloadConfig workload;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(1));

  std::printf("%8s %8s %18s %16s\n", "batch", "depth", "max kRPS (SLO)", "p99 @ 100kRPS");
  for (uint32_t batch : {8u, 64u}) {
    for (uint32_t depth : {1u, 2u, 4u}) {
      ExperimentConfig config = benchutil::MakeSyntheticExperiment(
          ClusterMode::kHovercRaftPP, 3, workload, ReplierPolicy::kLeaderOnly, 128, 42);
      config.cluster.raft.max_entries_per_ae = batch;
      config.cluster.raft.max_outstanding_ae = depth;
      const std::string scope =
          "ae/b" + std::to_string(batch) + "/d" + std::to_string(depth) + "/";
      io.Attach(&config, scope);
      const LoadMetrics unloaded = RunLoadPoint(config, 100e3);
      const SloResult r = FindMaxThroughputUnderSlo(config, benchutil::kSlo, 50e3, 1'050e3, 5);
      std::printf("%8u %8u %15.0fk %13.1fus\n", batch, depth, r.max_rps_under_slo / 1e3,
                  static_cast<double>(unloaded.p99_ns) / 1e3);
      io.RecordGauge(scope + "max_rps_under_slo", static_cast<int64_t>(r.max_rps_under_slo));
      io.RecordGauge(scope + "p99_ns_at_100k", unloaded.p99_ns);
      std::fflush(stdout);
    }
  }
}

struct WireRow {
  double msgs_per_req = 0;        // cluster-wide logical messages sent
  double frames_per_req = 0;      // cluster-wide physical frames sent
  double wire_bytes_per_req = 0;  // cluster-wide bytes on the wire (tx)
  double events_per_req = 0;      // simulator events executed (det. CPU proxy)
};

WireRow MeasureTransport(benchutil::BenchIo& io, const std::string& scope, bool batching,
                         TimeNs delay) {
  SyntheticWorkloadConfig workload;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(1));
  ExperimentConfig config = benchutil::MakeSyntheticExperiment(
      ClusterMode::kHovercRaftPP, 3, workload, ReplierPolicy::kLeaderOnly, 128, 42);
  config.cluster.costs.tx_batching = batching;
  config.cluster.costs.tx_batch_delay_ns = delay;
  io.Attach(&config, scope);

  Cluster cluster(config.cluster);
  if (cluster.WaitForLeader() == kInvalidNode) {
    return WireRow{};
  }
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.cluster.costs, [&cluster]() { return cluster.ClientTarget(); },
      config.workload_factory(), 200'000, 7);
  cluster.network().Attach(client.get());

  cluster.sim().RunUntil(cluster.sim().Now() + Millis(10));
  uint64_t msgs0 = 0, frames0 = 0, bytes0 = 0;
  for (NodeId n = 0; n < cluster.total_node_count(); ++n) {
    const NetCounters& c = cluster.server(n).counters();
    msgs0 += c.tx_msgs;
    frames0 += c.tx_physical_frames;
    bytes0 += c.tx_wire_bytes;
  }
  const uint64_t events0 = cluster.sim().executed_events();
  const uint64_t completed0 = client->total_completed();
  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(100));
  cluster.sim().RunUntil(t0 + Millis(200));
  uint64_t msgs1 = 0, frames1 = 0, bytes1 = 0;
  for (NodeId n = 0; n < cluster.total_node_count(); ++n) {
    const NetCounters& c = cluster.server(n).counters();
    msgs1 += c.tx_msgs;
    frames1 += c.tx_physical_frames;
    bytes1 += c.tx_wire_bytes;
  }
  if (io.obs() != nullptr) {
    cluster.ExportMetrics(&io.obs()->metrics());
  }
  const uint64_t requests = client->total_completed() - completed0;
  if (requests == 0) {
    return WireRow{};
  }
  WireRow row;
  row.msgs_per_req = static_cast<double>(msgs1 - msgs0) / requests;
  row.frames_per_req = static_cast<double>(frames1 - frames0) / requests;
  row.wire_bytes_per_req = static_cast<double>(bytes1 - bytes0) / requests;
  row.events_per_req =
      static_cast<double>(cluster.sim().executed_events() - events0) / requests;
  return row;
}

void RunTransportSweep(benchutil::BenchIo& io) {
  std::printf(
      "\ntransport coalescing (frame batching below the protocol), "
      "HovercRaft++ N=3 @200kRPS:\n");
  std::printf("%-16s %10s %11s %10s %11s %11s\n", "config", "msgs/req", "frames/req",
              "msgs/frm", "wire B/req", "events/req");
  struct Config {
    const char* name;
    bool batching;
    TimeNs delay;
  };
  const Config configs[] = {
      {"off", false, 0},
      {"doorbell=0us", true, 0},
      {"doorbell=2us", true, Micros(2)},
      {"doorbell=20us", true, Micros(20)},
  };
  for (const Config& c : configs) {
    const std::string scope = std::string("transport/") + c.name + "/";
    const WireRow row = MeasureTransport(io, scope, c.batching, c.delay);
    std::printf("%-16s %10.2f %11.2f %10.2f %11.0f %11.1f\n", c.name, row.msgs_per_req,
                row.frames_per_req,
                row.frames_per_req == 0 ? 0 : row.msgs_per_req / row.frames_per_req,
                row.wire_bytes_per_req, row.events_per_req);
    io.RecordGauge(scope + "msgs_per_req_milli", std::llround(row.msgs_per_req * 1000));
    io.RecordGauge(scope + "frames_per_req_milli", std::llround(row.frames_per_req * 1000));
    io.RecordGauge(scope + "wire_bytes_per_req", std::llround(row.wire_bytes_per_req));
    io.RecordGauge(scope + "events_per_req_milli", std::llround(row.events_per_req * 1000));
    std::fflush(stdout);
  }
  std::printf(
      "note: the protocol is unchanged under coalescing — frames/req and\n"
      "events/req collapse as the doorbell delay admits more same-destination\n"
      "messages per frame (msgs/req moves only via second-order timing: a\n"
      "longer doorbell lets append_entries aggregate more entries). Per-type\n"
      "wire bytes (incl. 4B/message batch framing) export as\n"
      "net.bytes_on_wire.{tx,rx}.*.\n");
}

void Run(benchutil::BenchIo& io) {
  benchutil::PrintHeader(
      "Ablation: append_entries batch size x pipelining depth, HovercRaft++ N=3",
      "implementation design choice (paper section 6.2 operates likewise)");
  RunAeSweep(io);
  RunTransportSweep(io);
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::benchutil::BenchIo io(argc, argv);
  hovercraft::Run(io);
  return io.Finish();
}
