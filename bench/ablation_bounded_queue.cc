// Ablation (paper section 3.4/3.6): sweep the bounded-queue depth B for a
// 3-node HovercRaft++ cluster on the Figure 11 workload and report, for each
// B: the max throughput under SLO and the replies lost when a follower dies
// mid-run. Small B limits lost replies on failure but throttles the
// scheduler; large B admits more in-flight work at a higher failure cost.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/loadgen/client.h"

namespace hovercraft {
namespace {

uint64_t LostRepliesOnFollowerCrash(int64_t bound) {
  ClusterConfig config = benchutil::MakeClusterConfig(ClusterMode::kHovercRaftPP, 3,
                                                      ReplierPolicy::kJbsq, bound, 42);
  Cluster cluster(config);
  if (cluster.WaitForLeader() == kInvalidNode) {
    return 0;
  }
  SyntheticWorkloadConfig workload;
  workload.read_only_fraction = 0.75;
  workload.service_time = std::make_shared<BimodalDistribution>(Micros(10), 0.1, 10.0);
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<SyntheticWorkload>(workload), 100'000, 11);
  cluster.network().Attach(client.get());
  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(300));
  cluster.sim().RunUntil(t0 + Millis(100));
  // Kill a follower (not the leader): its assigned-but-unanswered replies
  // are gone; bounded queues cap how many.
  const NodeId leader = cluster.LeaderId();
  cluster.KillNode((leader + 1) % 3);
  cluster.sim().RunUntil(t0 + Millis(600));
  return client->total_sent() - client->total_completed();
}

void Run() {
  benchutil::PrintHeader(
      "Ablation: bounded queue depth B vs throughput under SLO and failure cost",
      "Kogias & Bugnion, HovercRaft (EuroSys'20), sections 3.4 / 3.6");

  SyntheticWorkloadConfig workload;
  workload.read_only_fraction = 0.75;
  workload.service_time = std::make_shared<BimodalDistribution>(Micros(10), 0.1, 10.0);

  std::printf("%6s %18s %24s\n", "B", "max kRPS (SLO)", "lost on follower crash");
  for (int64_t bound : {2, 4, 8, 16, 32, 128, 512}) {
    ExperimentConfig config = benchutil::MakeSyntheticExperiment(
        ClusterMode::kHovercRaftPP, 3, workload, ReplierPolicy::kJbsq, bound, 42);
    const SloResult r = FindMaxThroughputUnderSlo(config, benchutil::kSlo, 20e3, 260e3, 5);
    const uint64_t lost = LostRepliesOnFollowerCrash(bound);
    std::printf("%6lld %15.0fk %24llu\n", static_cast<long long>(bound),
                r.max_rps_under_slo / 1e3, static_cast<unsigned long long>(lost));
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace hovercraft

int main() {
  hovercraft::Run();
  return 0;
}
