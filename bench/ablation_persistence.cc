// Ablation: log durability latency (paper section 2.3).
// The paper assumes modern NVM makes the write-ahead log essentially free
// and focuses on CPU/IO bottlenecks. This bench quantifies that assumption:
// followers must persist entries before acknowledging, and we sweep the
// persistence latency from NVM (0) through NVMe (~10us) to SATA-era
// (~100us) devices on the Figure 7 workload. Throughput survives (the
// pipelined replication stream overlaps the writes) but commit latency
// absorbs the persist time — exactly why us-scale SMR needs NVM.
#include <cstdio>

#include "bench/bench_common.h"

namespace hovercraft {
namespace {

void Run() {
  benchutil::PrintHeader(
      "Ablation: WAL persistence latency, HovercRaft++ N=3, S=1us workload",
      "Kogias & Bugnion, HovercRaft (EuroSys'20), section 2.3 discussion");

  SyntheticWorkloadConfig workload;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(1));

  struct Device {
    const char* name;
    TimeNs persist;
  };
  const Device devices[] = {
      {"NVM (paper)", 0},
      {"Optane-like", Micros(2)},
      {"NVMe SSD", Micros(10)},
      {"SATA SSD", Micros(100)},
  };

  std::printf("%-14s %12s %16s %18s\n", "device", "persist", "p99 @ 200kRPS",
              "max kRPS (SLO)");
  for (const Device& device : devices) {
    ExperimentConfig config = benchutil::MakeSyntheticExperiment(
        ClusterMode::kHovercRaftPP, 3, workload, ReplierPolicy::kLeaderOnly, 128, 42);
    config.cluster.raft.persist_latency = device.persist;
    const LoadMetrics m = RunLoadPoint(config, 200e3);
    const SloResult r = FindMaxThroughputUnderSlo(config, benchutil::kSlo, 50e3, 1'050e3, 5);
    std::printf("%-14s %9.0fus %13.1fus %15.0fk\n", device.name,
                static_cast<double>(device.persist) / 1e3,
                static_cast<double>(m.p99_ns) / 1e3, r.max_rps_under_slo / 1e3);
    std::fflush(stdout);
  }

  // Group commit vs sync-per-append (docs/durability.md). With one serial
  // flush device per node, coalescing concurrent barriers into the next
  // unstarted flush is what keeps a priced fsync off the per-request critical
  // path: sync-per-append queues a full-price barrier behind every append,
  // so the WAL device itself becomes the bottleneck long before the CPU.
  std::printf("\n%-14s %18s %16s %18s\n", "device", "fsync policy", "p99 @ 200kRPS",
              "max kRPS (SLO)");
  const struct {
    const char* name;
    FsyncPolicy policy;
  } policies[] = {
      {"group-commit", FsyncPolicy::kGroupCommit},
      {"sync-per-append", FsyncPolicy::kSyncPerAppend},
  };
  for (const Device& device : devices) {
    if (device.persist == 0) {
      continue;  // a free fsync makes the policies indistinguishable
    }
    for (const auto& p : policies) {
      ExperimentConfig config = benchutil::MakeSyntheticExperiment(
          ClusterMode::kHovercRaftPP, 3, workload, ReplierPolicy::kLeaderOnly, 128, 42);
      config.cluster.raft.persist_latency = device.persist;
      config.cluster.server_template.fsync_policy = p.policy;
      const LoadMetrics m = RunLoadPoint(config, 200e3);
      const SloResult r =
          FindMaxThroughputUnderSlo(config, benchutil::kSlo, 50e3, 1'050e3, 5);
      std::printf("%-14s %18s %13.1fus %15.0fk\n", device.name, p.name,
                  static_cast<double>(m.p99_ns) / 1e3, r.max_rps_under_slo / 1e3);
      std::fflush(stdout);
    }
  }
}

}  // namespace
}  // namespace hovercraft

int main() {
  hovercraft::Run();
  return 0;
}
