// Shared configuration and reporting helpers for the figure/table benches.
// Each bench binary regenerates one table or figure of the paper (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for results).
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/app/synthetic.h"
#include "src/core/cluster.h"
#include "src/loadgen/experiment.h"
#include "src/loadgen/workload.h"

namespace hovercraft {
namespace benchutil {

// The paper's SLO: 99th percentile within 500us (section 7).
constexpr TimeNs kSlo = Micros(500);

inline ClusterConfig MakeClusterConfig(ClusterMode mode, int32_t nodes,
                                       ReplierPolicy policy = ReplierPolicy::kLeaderOnly,
                                       int64_t bounded_queue = 128, uint64_t seed = 1) {
  ClusterConfig config;
  config.mode = mode;
  config.nodes = nodes;
  config.seed = seed;
  config.replier_policy = policy;
  config.bounded_queue_depth = bounded_queue;
  config.app_factory = []() { return std::make_unique<SyntheticService>(); };
  return config;
}

inline ExperimentConfig MakeSyntheticExperiment(ClusterMode mode, int32_t nodes,
                                                const SyntheticWorkloadConfig& workload,
                                                ReplierPolicy policy = ReplierPolicy::kLeaderOnly,
                                                int64_t bounded_queue = 128, uint64_t seed = 1) {
  ExperimentConfig config;
  config.cluster = MakeClusterConfig(mode, nodes, policy, bounded_queue, seed);
  config.workload_factory = [workload]() { return std::make_unique<SyntheticWorkload>(workload); };
  config.seed = seed;
  return config;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("=====================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("=====================================================================\n");
}

inline void PrintCurvePoint(const char* system, const LoadMetrics& m) {
  std::printf("%-14s offered=%9.0f achieved=%9.0f rps  p50=%7.1fus  p99=%7.1fus  "
              "nack=%6.0f lost=%llu\n",
              system, m.offered_rps, m.achieved_rps, static_cast<double>(m.p50_ns) / 1e3,
              static_cast<double>(m.p99_ns) / 1e3, m.nack_rps,
              static_cast<unsigned long long>(m.lost));
}

}  // namespace benchutil
}  // namespace hovercraft

#endif  // BENCH_BENCH_COMMON_H_
