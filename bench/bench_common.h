// Shared configuration and reporting helpers for the figure/table benches.
// Each bench binary regenerates one table or figure of the paper (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for results).
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "src/app/synthetic.h"
#include "src/core/cluster.h"
#include "src/loadgen/experiment.h"
#include "src/loadgen/workload.h"
#include "src/obs/critical_path.h"
#include "src/obs/observability.h"

namespace hovercraft {
namespace benchutil {

// The paper's SLO: 99th percentile within 500us (section 7).
constexpr TimeNs kSlo = Micros(500);

inline ClusterConfig MakeClusterConfig(ClusterMode mode, int32_t nodes,
                                       ReplierPolicy policy = ReplierPolicy::kLeaderOnly,
                                       int64_t bounded_queue = 128, uint64_t seed = 1) {
  ClusterConfig config;
  config.mode = mode;
  config.nodes = nodes;
  config.seed = seed;
  config.replier_policy = policy;
  config.bounded_queue_depth = bounded_queue;
  config.app_factory = []() { return std::make_unique<SyntheticService>(); };
  return config;
}

inline ExperimentConfig MakeSyntheticExperiment(ClusterMode mode, int32_t nodes,
                                                const SyntheticWorkloadConfig& workload,
                                                ReplierPolicy policy = ReplierPolicy::kLeaderOnly,
                                                int64_t bounded_queue = 128, uint64_t seed = 1) {
  ExperimentConfig config;
  config.cluster = MakeClusterConfig(mode, nodes, policy, bounded_queue, seed);
  config.workload_factory = [workload]() { return std::make_unique<SyntheticWorkload>(workload); };
  config.seed = seed;
  return config;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("=====================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("=====================================================================\n");
}

inline void PrintCurvePoint(const char* system, const LoadMetrics& m) {
  std::printf("%-14s offered=%9.0f achieved=%9.0f rps  p50=%7.1fus  p99=%7.1fus  "
              "nack=%6.0f lost=%llu\n",
              system, m.offered_rps, m.achieved_rps, static_cast<double>(m.p50_ns) / 1e3,
              static_cast<double>(m.p99_ns) / 1e3, m.nack_rps,
              static_cast<unsigned long long>(m.lost));
}

// Shared observability plumbing for the bench binaries. Every fig*/table*
// bench takes the same flags and emits the same metrics JSON shape through
// the cluster-wide registry (docs/observability.md):
//
//   --trace-out=PATH        Chrome trace-event JSON covering the whole run
//   --metrics-out=PATH      metrics registry JSON: per-load-point summaries
//                           plus per-node counters under "<system>/r<rps>/"
//   --sample-interval-us=N  queue-depth sampling period (default 100)
//
// Without flags no Observability is allocated, so the simulation runs on the
// disabled fast path and the bench output is unchanged. A bench trace
// superimposes every load point on the same host tracks (each cluster's
// virtual clock restarts at zero); for a readable single-run trace use
// tools/chaos_runner or restrict the bench to one point.
class BenchIo {
 public:
  BenchIo(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      std::string v;
      if (TakeFlag(a, "--trace-out", v)) {
        trace_out_ = v;
      } else if (TakeFlag(a, "--metrics-out", v)) {
        metrics_out_ = v;
      } else if (TakeFlag(a, "--sample-interval-us", v)) {
        sample_interval_ = Micros(std::atoll(v.c_str()));
      } else {
        std::fprintf(stderr,
                     "warning: unknown flag %s (supported: --trace-out= --metrics-out= "
                     "--sample-interval-us=)\n",
                     a);
      }
    }
    if (!trace_out_.empty() || !metrics_out_.empty()) {
      obs::Observability::Options oo;
      oo.tracing = !trace_out_.empty();
      oo.sampling = !metrics_out_.empty();
      oo.sample_interval = sample_interval_;
      obs_ = std::make_unique<obs::Observability>(oo);
    }
  }

  obs::Observability* obs() { return obs_.get(); }

  // "HovercRaft/r150000/" — canonical per-load-point metric scope.
  static std::string PointScope(const char* system, double offered_rps) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s/r%lld/", system,
                  static_cast<long long>(std::llround(offered_rps)));
    return buf;
  }

  // Wires the bundle into one run; `scope` prefixes every metric the cluster
  // exports. No-ops when observability is off.
  void Attach(ExperimentConfig* config, const std::string& scope) {
    if (obs_ == nullptr) return;
    config->cluster.obs = obs_.get();
    config->cluster.obs_scope = scope;
  }
  void Attach(ClusterConfig* config, const std::string& scope) {
    if (obs_ == nullptr) return;
    config->obs = obs_.get();
    config->obs_scope = scope;
  }

  // Writes the uniform per-load-point summary into the registry. Rates are
  // rounded to integer RPS so the JSON stays byte-deterministic.
  void RecordLoadPoint(const std::string& scope, const LoadMetrics& m) {
    if (obs_ == nullptr) return;
    obs::MetricsRegistry& reg = obs_->metrics();
    reg.SetGauge(scope + "load.offered_rps", std::llround(m.offered_rps));
    reg.SetGauge(scope + "load.achieved_rps", std::llround(m.achieved_rps));
    reg.SetGauge(scope + "load.nack_rps", std::llround(m.nack_rps));
    reg.SetCounter(scope + "load.sent", m.sent);
    reg.SetCounter(scope + "load.completed", m.completed);
    reg.SetCounter(scope + "load.nacked", m.nacked);
    reg.SetCounter(scope + "load.lost", m.lost);
    reg.SetGauge(scope + "latency.mean_ns", m.mean_ns);
    reg.SetGauge(scope + "latency.p50_ns", m.p50_ns);
    reg.SetGauge(scope + "latency.p99_ns", m.p99_ns);
  }

  // Records the result of an SLO search under `scope` ("VanillaRaft/24B/").
  void RecordSlo(const std::string& scope, const SloResult& r) {
    if (obs_ == nullptr) return;
    obs::MetricsRegistry& reg = obs_->metrics();
    reg.SetGauge(scope + "slo.max_rps", std::llround(r.max_rps_under_slo));
    reg.SetGauge(scope + "slo.offered_at_max", std::llround(r.offered_at_max));
    reg.SetGauge(scope + "slo.p99_at_max_ns", r.p99_at_max);
  }

  void RecordGauge(const std::string& name, int64_t value) {
    if (obs_ != nullptr) obs_->metrics().SetGauge(name, value);
  }
  void RecordCounter(const std::string& name, uint64_t value) {
    if (obs_ != nullptr) obs_->metrics().SetCounter(name, value);
  }

  // The standard latency/throughput curve step shared by the fig benches:
  // run one load point with metrics scoped under "<system>/r<rps>/", print
  // the usual curve line plus the tail_attribution table (per-stage blame
  // over the p50/p99/p99.9 populations, from the always-on flight recorder),
  // and record the uniform summary. Each attribution row's per-stage blame
  // must sum to its end-to-end latency within 1% — a violated sum marks the
  // whole bench failed (the blame decomposition is a checked output, not a
  // best-effort annotation).
  LoadMetrics RunCurvePoint(const char* system, ExperimentConfig config, double rate_rps) {
    const std::string scope = PointScope(system, rate_rps);
    Attach(&config, scope);
    obs::CriticalPath critical_path;
    config.cluster.critical_path = &critical_path;
    const LoadMetrics m = RunLoadPoint(config, rate_rps);
    PrintCurvePoint(system, m);
    RecordLoadPoint(scope, m);
    EmitTailAttribution(scope, critical_path);
    return m;
  }

  // Prints + records the critical-path blame table for one load point and
  // enforces the telescoping-sum acceptance gate.
  void EmitTailAttribution(const std::string& scope, const obs::CriticalPath& critical_path) {
    if (critical_path.completed() == 0) {
      return;
    }
    std::printf("%s", critical_path.AttributionTable(scope).c_str());
    const double err = critical_path.MaxSumError();
    if (err > 0.01) {
      std::fprintf(stderr,
                   "tail_attribution: blame sum off by %.3f%% (> 1%%) at %s — "
                   "stage instrumentation lost a segment\n",
                   err * 100.0, scope.c_str());
      Fail();
    }
    if (obs_ != nullptr) {
      obs::MetricsRegistry& reg = obs_->metrics();
      for (const obs::CriticalPath::Row& row : critical_path.Attribution()) {
        const std::string base = scope + "tail." + row.population + ".";
        reg.SetGauge(base + "e2e_ns", std::llround(row.e2e_ns));
        reg.SetGauge(base + "count", static_cast<int64_t>(row.count));
        for (size_t s = 0; s < obs::kStageCount; ++s) {
          if (row.blame_ns[s] > 0) {
            reg.SetGauge(base + "blame." + obs::StageName(static_cast<obs::Stage>(s)) + "_ns",
                         std::llround(row.blame_ns[s]));
          }
        }
      }
    }
  }

  // SLO-search step shared by fig8/fig9: scope the cluster metrics and the
  // search summary under `scope` (the last probed point wins the cluster
  // counters; the summary gauges describe the search result).
  SloResult RunSloPoint(const std::string& scope, ExperimentConfig config, TimeNs slo_p99,
                        double lo_rps, double hi_rps) {
    Attach(&config, scope);
    const SloResult r = FindMaxThroughputUnderSlo(config, slo_p99, lo_rps, hi_rps);
    RecordSlo(scope, r);
    return r;
  }

  // Marks the run failed: Finish() will return a nonzero exit code after
  // still writing the requested outputs. For benches that double as
  // acceptance checks (e.g. fig9_live_rescale, fig12_failover).
  void Fail() { failed_ = true; }

  // Writes the requested output files; call once at the end of main.
  // Returns the process exit code (0; 1 if Fail() was called; 2 on I/O
  // failure).
  int Finish() {
    if (obs_ == nullptr) return failed_ ? 1 : 0;
    if (auto* tracer = obs_->tracer()) {
      std::ofstream out(trace_out_, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", trace_out_.c_str());
        return 2;
      }
      tracer->WriteChromeJson(out);
      std::printf("trace: %zu events -> %s (dropped %llu)\n", tracer->event_count(),
                  trace_out_.c_str(), static_cast<unsigned long long>(tracer->dropped_events()));
      std::printf("%s", tracer->BreakdownTable().c_str());
    }
    if (!metrics_out_.empty()) {
      std::ofstream out(metrics_out_, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", metrics_out_.c_str());
        return 2;
      }
      obs_->metrics().DumpJson(out);
      std::printf("metrics: %zu entries -> %s\n", obs_->metrics().size(), metrics_out_.c_str());
    }
    return failed_ ? 1 : 0;
  }

 private:
  static bool TakeFlag(const char* arg, const char* name, std::string& out) {
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      out = arg + len + 1;
      return true;
    }
    return false;
  }

  std::string trace_out_;
  std::string metrics_out_;
  TimeNs sample_interval_ = Micros(100);
  bool failed_ = false;
  std::unique_ptr<obs::Observability> obs_;
};

}  // namespace benchutil
}  // namespace hovercraft

#endif  // BENCH_BENCH_COMMON_H_
