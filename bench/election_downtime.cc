// Characterization: service downtime across a leader failure as a function
// of the election timeout (supplements Figure 12). For each timeout setting
// the bench kills the leader under steady load, measures the gap until a new
// leader exists and until the first post-crash completion, and reports
// min/median/max over several seeds. The classic trade-off: short timeouts
// recover fast but false-trigger on delay spikes; long timeouts waste
// milliseconds of availability per failure.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/loadgen/client.h"

namespace hovercraft {
namespace {

struct Downtime {
  TimeNs until_new_leader = 0;
  TimeNs until_first_completion = 0;
};

Downtime MeasureOne(TimeNs timeout_min, uint64_t seed) {
  ClusterConfig config = benchutil::MakeClusterConfig(ClusterMode::kHovercRaftPP, 3,
                                                      ReplierPolicy::kJbsq, 32, seed);
  config.flow_control_threshold = 1000;
  config.raft.election_timeout_min = timeout_min;
  config.raft.election_timeout_max = timeout_min * 2;
  config.raft.heartbeat_interval = std::max<TimeNs>(timeout_min / 4, Micros(100));
  config.stagger_first_election = true;
  Cluster cluster(config);
  if (cluster.WaitForLeader() == kInvalidNode) {
    return Downtime{};
  }

  SyntheticWorkloadConfig workload;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(2));
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<SyntheticWorkload>(workload), 50'000, seed ^ 0xD07);
  cluster.network().Attach(client.get());

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(400));
  const TimeNs kill_at = t0 + Millis(50);
  cluster.sim().RunUntil(kill_at);
  const NodeId first = cluster.LeaderId();
  cluster.KillLeader();
  const uint64_t completed_at_kill = client->total_completed();

  Downtime out;
  const TimeNs deadline = kill_at + Millis(300);
  while (cluster.sim().Now() < deadline &&
         (out.until_new_leader == 0 || out.until_first_completion == 0)) {
    cluster.sim().RunUntil(cluster.sim().Now() + Micros(100));
    const NodeId leader = cluster.LeaderId();
    if (out.until_new_leader == 0 && leader != kInvalidNode && leader != first) {
      out.until_new_leader = cluster.sim().Now() - kill_at;
    }
    if (out.until_first_completion == 0 && client->total_completed() > completed_at_kill) {
      out.until_first_completion = cluster.sim().Now() - kill_at;
    }
  }
  return out;
}

void Run() {
  benchutil::PrintHeader(
      "Characterization: failover downtime vs election timeout, HovercRaft++ N=3",
      "supplements Kogias & Bugnion (EuroSys'20) Figure 12");

  std::printf("%14s | %28s | %28s\n", "timeout", "new leader (min/med/max)",
              "first completion (min/med/max)");
  for (TimeNs timeout : {Millis(1), Millis(2), Millis(5), Millis(10), Millis(20)}) {
    std::vector<TimeNs> leader_times;
    std::vector<TimeNs> completion_times;
    for (uint64_t seed = 1; seed <= 9; ++seed) {
      const Downtime d = MeasureOne(timeout, seed * 97);
      if (d.until_new_leader > 0) {
        leader_times.push_back(d.until_new_leader);
      }
      if (d.until_first_completion > 0) {
        completion_times.push_back(d.until_first_completion);
      }
    }
    std::sort(leader_times.begin(), leader_times.end());
    std::sort(completion_times.begin(), completion_times.end());
    auto fmt = [](const std::vector<TimeNs>& v, int which) {
      if (v.empty()) {
        return 0.0;
      }
      const size_t idx = which == 0 ? 0 : which == 1 ? v.size() / 2 : v.size() - 1;
      return static_cast<double>(v[idx]) / 1e6;
    };
    std::printf("%12lldms | %7.2f / %7.2f / %7.2fms | %7.2f / %7.2f / %7.2fms\n",
                static_cast<long long>(timeout / kNanosPerMilli), fmt(leader_times, 0),
                fmt(leader_times, 1), fmt(leader_times, 2), fmt(completion_times, 0),
                fmt(completion_times, 1), fmt(completion_times, 2));
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace hovercraft

int main() {
  hovercraft::Run();
  return 0;
}
