// Characterization: service downtime across a leader failure as a function
// of the election timeout (supplements Figure 12). For each timeout setting
// the bench kills the leader under steady load, measures the gap until a new
// leader exists and until the first post-crash completion, and reports
// min/median/max over several seeds. The classic trade-off: short timeouts
// recover fast but false-trigger on delay spikes; long timeouts waste
// milliseconds of availability per failure.
//
// Part two runs the rejoin-storm attack (docs/hardening.md) hardened vs
// baseline: a follower is partitioned away under load, churns its term, and
// rejoins. Without PreVote the rejoin deposes a healthy leader and stalls
// the service for roughly an election timeout; with PreVote + CheckQuorum
// the rejoin is absorbed without disruption. The bench exits nonzero if the
// hardened configuration's downtime regresses past the baseline's, so it
// doubles as a regression gate.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/loadgen/client.h"

namespace hovercraft {
namespace {

struct Downtime {
  TimeNs until_new_leader = 0;
  TimeNs until_first_completion = 0;
};

Downtime MeasureOne(TimeNs timeout_min, uint64_t seed) {
  ClusterConfig config = benchutil::MakeClusterConfig(ClusterMode::kHovercRaftPP, 3,
                                                      ReplierPolicy::kJbsq, 32, seed);
  config.flow_control_threshold = 1000;
  config.raft.election_timeout_min = timeout_min;
  config.raft.election_timeout_max = timeout_min * 2;
  config.raft.heartbeat_interval = std::max<TimeNs>(timeout_min / 4, Micros(100));
  config.stagger_first_election = true;
  Cluster cluster(config);
  if (cluster.WaitForLeader() == kInvalidNode) {
    return Downtime{};
  }

  SyntheticWorkloadConfig workload;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(2));
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<SyntheticWorkload>(workload), 50'000, seed ^ 0xD07);
  cluster.network().Attach(client.get());

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(400));
  const TimeNs kill_at = t0 + Millis(50);
  cluster.sim().RunUntil(kill_at);
  const NodeId first = cluster.LeaderId();
  cluster.KillLeader();
  const uint64_t completed_at_kill = client->total_completed();

  Downtime out;
  const TimeNs deadline = kill_at + Millis(300);
  while (cluster.sim().Now() < deadline &&
         (out.until_new_leader == 0 || out.until_first_completion == 0)) {
    cluster.sim().RunUntil(cluster.sim().Now() + Micros(100));
    const NodeId leader = cluster.LeaderId();
    if (out.until_new_leader == 0 && leader != kInvalidNode && leader != first) {
      out.until_new_leader = cluster.sim().Now() - kill_at;
    }
    if (out.until_first_completion == 0 && client->total_completed() > completed_at_kill) {
      out.until_first_completion = cluster.sim().Now() - kill_at;
    }
  }
  return out;
}

void Run() {
  benchutil::PrintHeader(
      "Characterization: failover downtime vs election timeout, HovercRaft++ N=3",
      "supplements Kogias & Bugnion (EuroSys'20) Figure 12");

  std::printf("%14s | %28s | %28s\n", "timeout", "new leader (min/med/max)",
              "first completion (min/med/max)");
  for (TimeNs timeout : {Millis(1), Millis(2), Millis(5), Millis(10), Millis(20)}) {
    std::vector<TimeNs> leader_times;
    std::vector<TimeNs> completion_times;
    for (uint64_t seed = 1; seed <= 9; ++seed) {
      const Downtime d = MeasureOne(timeout, seed * 97);
      if (d.until_new_leader > 0) {
        leader_times.push_back(d.until_new_leader);
      }
      if (d.until_first_completion > 0) {
        completion_times.push_back(d.until_first_completion);
      }
    }
    std::sort(leader_times.begin(), leader_times.end());
    std::sort(completion_times.begin(), completion_times.end());
    auto fmt = [](const std::vector<TimeNs>& v, int which) {
      if (v.empty()) {
        return 0.0;
      }
      const size_t idx = which == 0 ? 0 : which == 1 ? v.size() / 2 : v.size() - 1;
      return static_cast<double>(v[idx]) / 1e6;
    };
    std::printf("%12lldms | %7.2f / %7.2f / %7.2fms | %7.2f / %7.2f / %7.2fms\n",
                static_cast<long long>(timeout / kNanosPerMilli), fmt(leader_times, 0),
                fmt(leader_times, 1), fmt(leader_times, 2), fmt(completion_times, 0),
                fmt(completion_times, 1), fmt(completion_times, 2));
    std::fflush(stdout);
  }
}

struct RejoinOutcome {
  TimeNs stall = 0;           // longest completion gap after the rejoin
  uint64_t term_delta = 0;    // cluster term growth caused by the rejoin
  bool leader_deposed = false;
};

// Partition one follower away under steady load, let its election timer
// churn, heal it, and measure how long the service stalls afterwards.
RejoinOutcome MeasureRejoin(bool hardened, uint64_t seed) {
  ClusterConfig config = benchutil::MakeClusterConfig(ClusterMode::kHovercRaftPP, 3,
                                                      ReplierPolicy::kJbsq, 32, seed);
  config.flow_control_threshold = 1000;
  config.raft.pre_vote = hardened;
  config.raft.check_quorum = hardened;
  config.stagger_first_election = true;
  Cluster cluster(config);
  RejoinOutcome out;
  if (cluster.WaitForLeader() == kInvalidNode) {
    return out;
  }

  SyntheticWorkloadConfig workload;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(2));
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<SyntheticWorkload>(workload), 50'000, seed ^ 0xD07);
  cluster.network().Attach(client.get());

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(400));
  cluster.sim().RunUntil(t0 + Millis(30));

  const NodeId leader_before = cluster.LeaderId();
  const Term term_before = cluster.server(leader_before).raft()->term();
  NodeId victim = kInvalidNode;
  for (NodeId node = 0; node < 3; ++node) {
    if (node != leader_before) {
      victim = node;
      break;
    }
  }
  // Isolate the victim long enough for several election timeouts to fire.
  cluster.network().SetPartitions({{cluster.server_host(victim)}});
  cluster.sim().RunUntil(cluster.sim().Now() + Millis(60));
  cluster.network().ClearFaults();

  // Watch the 100ms after the heal: the longest gap between completions is
  // the service stall the rejoin caused.
  const TimeNs heal_at = cluster.sim().Now();
  uint64_t last_completed = client->total_completed();
  TimeNs last_progress = heal_at;
  while (cluster.sim().Now() < heal_at + Millis(100)) {
    cluster.sim().RunUntil(cluster.sim().Now() + Micros(50));
    const uint64_t completed = client->total_completed();
    if (completed > last_completed) {
      last_completed = completed;
      last_progress = cluster.sim().Now();
    } else {
      out.stall = std::max(out.stall, cluster.sim().Now() - last_progress);
    }
  }

  const NodeId leader_after = cluster.LeaderId();
  Term term_after = term_before;
  if (leader_after != kInvalidNode) {
    term_after = cluster.server(leader_after).raft()->term();
    out.leader_deposed = leader_after != leader_before;
  }
  out.term_delta = term_after > term_before ? term_after - term_before : 0;
  out.leader_deposed = out.leader_deposed || out.term_delta > 0;
  return out;
}

int RunRejoinStorm() {
  benchutil::PrintHeader(
      "Adversarial: rejoin-storm downtime, hardened (PreVote+CheckQuorum) vs baseline",
      "docs/hardening.md attack battery; gate for the PreVote defense");

  std::printf("%10s | %20s | %12s | %10s\n", "config", "stall (min/med/max)", "term growth",
              "deposed");
  TimeNs baseline_median = 0;
  TimeNs hardened_median = 0;
  for (const bool hardened : {false, true}) {
    std::vector<TimeNs> stalls;
    uint64_t term_growth = 0;
    int deposed = 0;
    for (uint64_t seed = 1; seed <= 9; ++seed) {
      const RejoinOutcome o = MeasureRejoin(hardened, seed * 131);
      stalls.push_back(o.stall);
      term_growth += o.term_delta;
      deposed += o.leader_deposed ? 1 : 0;
    }
    std::sort(stalls.begin(), stalls.end());
    const TimeNs median = stalls[stalls.size() / 2];
    std::printf("%10s | %5.2f / %5.2f / %5.2fms | %12llu | %7d/9\n",
                hardened ? "hardened" : "baseline", static_cast<double>(stalls.front()) / 1e6,
                static_cast<double>(median) / 1e6, static_cast<double>(stalls.back()) / 1e6,
                static_cast<unsigned long long>(term_growth), deposed);
    (hardened ? hardened_median : baseline_median) = median;
  }

  if (hardened_median > baseline_median) {
    std::printf("FAIL: hardened rejoin downtime (%.2fms) regressed past baseline (%.2fms)\n",
                static_cast<double>(hardened_median) / 1e6,
                static_cast<double>(baseline_median) / 1e6);
    return 1;
  }
  std::printf("OK: hardened median stall %.2fms <= baseline %.2fms\n",
              static_cast<double>(hardened_median) / 1e6,
              static_cast<double>(baseline_median) / 1e6);
  return 0;
}

}  // namespace
}  // namespace hovercraft

int main() {
  hovercraft::Run();
  return hovercraft::RunRejoinStorm();
}
