// Figure 10: latency vs throughput with 6KB replies and reply load balancing
// enabled (bounded queues of 128). The unreplicated server is I/O-bound at
// ~200 kRPS on its 10G link; HovercRaft++ load-balances replies across
// replicas, so capacity scales with the cluster size — replication for
// fault-tolerance *increases* throughput.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace hovercraft {
namespace {

void Run(benchutil::BenchIo& io) {
  benchutil::PrintHeader(
      "Figure 10: latency vs throughput, S=1us, 24B req / 6KB reply, reply LB on",
      "Kogias & Bugnion, HovercRaft (EuroSys'20), Figure 10");

  SyntheticWorkloadConfig workload;
  workload.request_bytes = 24;
  workload.reply_bytes = 6000;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(1));

  struct Setup {
    const char* name;
    ClusterMode mode;
    int32_t nodes;
  };
  const Setup setups[] = {
      {"UnRep", ClusterMode::kUnreplicated, 1},
      {"N=3", ClusterMode::kHovercRaftPP, 3},
      {"N=5", ClusterMode::kHovercRaftPP, 5},
  };

  for (const Setup& setup : setups) {
    ExperimentConfig config = benchutil::MakeSyntheticExperiment(
        setup.mode, setup.nodes, workload, ReplierPolicy::kJbsq, /*bounded_queue=*/128, 42);
    // 6KB replies x ~1M RPS would swamp a single client NIC; spread wide.
    config.client_count = 12;
    const std::vector<double> rates = {50e3, 100e3, 150e3, 190e3, 250e3,
                                       400e3, 550e3, 700e3, 850e3, 950e3};
    for (double rate : rates) {
      const LoadMetrics m = io.RunCurvePoint(setup.name, config, rate);
      if (m.p99_ns > benchutil::kSlo * 4) {
        break;
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::benchutil::BenchIo io(argc, argv);
  hovercraft::Run(io);
  return io.Finish();
}
