// Figure 11: read-only load balancing under service-time variability.
// Bimodal service times (mean 10us, 10% of requests 10x longer), 75%
// read-only operations, 3-node HovercRaft++ with bounded queues of 32.
// Compares JBSQ against RANDOM replier selection and the unreplicated
// server: load-balanced reads raise CPU capacity toward 2x, and JBSQ beats
// RANDOM on tail latency by steering around busy followers.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace hovercraft {
namespace {

void Run(benchutil::BenchIo& io) {
  benchutil::PrintHeader(
      "Figure 11: bimodal S=10us (10% are 10x), 75% read-only, N=3, queues B=32",
      "Kogias & Bugnion, HovercRaft (EuroSys'20), Figure 11");

  SyntheticWorkloadConfig workload;
  workload.request_bytes = 24;
  workload.reply_bytes = 8;
  workload.read_only_fraction = 0.75;
  workload.service_time = std::make_shared<BimodalDistribution>(Micros(10), 0.1, 10.0);

  struct Setup {
    const char* name;
    ClusterMode mode;
    int32_t nodes;
    ReplierPolicy policy;
  };
  const Setup setups[] = {
      {"H++ JBSQ", ClusterMode::kHovercRaftPP, 3, ReplierPolicy::kJbsq},
      {"H++ RAND", ClusterMode::kHovercRaftPP, 3, ReplierPolicy::kRandom},
      {"UnRep", ClusterMode::kUnreplicated, 1, ReplierPolicy::kLeaderOnly},
  };

  const std::vector<double> rates = {25e3, 50e3, 75e3, 100e3, 125e3, 150e3, 175e3, 200e3};
  for (const Setup& setup : setups) {
    ExperimentConfig config = benchutil::MakeSyntheticExperiment(
        setup.mode, setup.nodes, workload, setup.policy, /*bounded_queue=*/32, 42);
    for (double rate : rates) {
      const LoadMetrics m = io.RunCurvePoint(setup.name, config, rate);
      if (m.p99_ns > benchutil::kSlo * 4) {
        break;
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::benchutil::BenchIo io(argc, argv);
  hovercraft::Run(io);
  return io.Finish();
}
