// Figure 12: behaviour across a leader failure. 3-node HovercRaft++ running
// the Figure 11 workload (bimodal mean 10us, 75% read-only) at a fixed
// 165 kRPS — below the 3-node capacity (~200k) but above the 2-node capacity
// (~160k). Flow control admits at most 1000 in-flight requests. At t=3s the
// leader is killed: throughput dips during the election, recovers to the
// 2-node capacity, and the flow-control middlebox NACKs the ~5 kRPS excess
// instead of letting latency collapse.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/loadgen/client.h"
#include "src/stats/timeseries.h"

namespace hovercraft {
namespace {

constexpr double kOfferedRps = 165e3;
constexpr TimeNs kKillAt = Seconds(3);
constexpr TimeNs kDuration = Seconds(8);
constexpr int kClients = 8;

void Run() {
  benchutil::PrintHeader(
      "Figure 12: leader failure timeline, HovercRaft++ N=3, 165 kRPS offered,"
      " flow control cap 1000",
      "Kogias & Bugnion, HovercRaft (EuroSys'20), Figure 12");

  ClusterConfig cluster_config = benchutil::MakeClusterConfig(
      ClusterMode::kHovercRaftPP, 3, ReplierPolicy::kJbsq, /*bounded_queue=*/32, 42);
  cluster_config.flow_control_threshold = 1000;
  Cluster cluster(cluster_config);
  if (cluster.WaitForLeader() == kInvalidNode) {
    std::printf("no leader elected\n");
    return;
  }

  SyntheticWorkloadConfig workload;
  workload.read_only_fraction = 0.75;
  workload.service_time = std::make_shared<BimodalDistribution>(Micros(10), 0.1, 10.0);

  Timeseries timeline(Millis(500));
  std::vector<std::unique_ptr<ClientHost>> clients;
  const TimeNs t0 = cluster.sim().Now();
  for (int c = 0; c < kClients; ++c) {
    auto client = std::make_unique<ClientHost>(
        &cluster.sim(), cluster_config.costs, [&cluster]() { return cluster.ClientTarget(); },
        std::make_unique<SyntheticWorkload>(workload), kOfferedRps / kClients,
        1000 + static_cast<uint64_t>(c));
    cluster.network().Attach(client.get());
    client->set_timeseries(&timeline);
    client->StartLoad(t0, t0 + kDuration);
    clients.push_back(std::move(client));
  }

  cluster.sim().At(t0 + kKillAt, [&cluster]() { cluster.KillLeader(); });
  cluster.sim().RunUntil(t0 + kDuration + Millis(200));

  std::printf("%8s %12s %12s %12s %12s\n", "t(s)", "kRPS", "nack kRPS", "p50(us)", "p99(us)");
  const double bin_sec = 0.5;
  for (const Timeseries::Point& p : timeline.Points()) {
    std::printf("%8.1f %12.1f %12.1f %12.1f %12.1f%s\n",
                static_cast<double>(p.start) / 1e9,
                static_cast<double>(p.samples) / bin_sec / 1e3,
                static_cast<double>(p.events) / bin_sec / 1e3,
                static_cast<double>(p.p50) / 1e3, static_cast<double>(p.p99) / 1e3,
                p.start <= kKillAt && kKillAt < p.start + timeline.bin_width()
                    ? "   <-- leader killed"
                    : "");
  }
  std::printf("\nfinal leader: node %d (term %llu)\n", cluster.LeaderId(),
              static_cast<unsigned long long>(
                  cluster.server(cluster.LeaderId()).raft()->term()));
}

}  // namespace
}  // namespace hovercraft

int main() {
  hovercraft::Run();
  return 0;
}
