// Figure 12: behaviour across a leader failure. 3-node HovercRaft++ running
// the Figure 11 workload (bimodal mean 10us, 75% read-only) at a fixed
// 165 kRPS — below the 3-node capacity (~200k) but above the 2-node capacity
// (~160k). Flow control admits at most 1000 in-flight requests. At t=3s the
// leader is killed: throughput dips during the election, recovers to the
// 2-node capacity, and the flow-control middlebox NACKs the ~5 kRPS excess
// instead of letting latency collapse.
//
// Clients run the exactly-once retry machinery: requests swallowed by the
// failover (sent to the dead leader, or replies lost with it) are
// retransmitted with backoff and recovered instead of silently lost. The
// summary reports recovered-by-retry completions and retransmit counts next
// to the downtime figure; with retries on, lost_in_window should be 0.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/loadgen/client.h"
#include "src/stats/timeseries.h"

namespace hovercraft {
namespace {

constexpr double kOfferedRps = 165e3;
constexpr TimeNs kKillAt = Seconds(3);
constexpr TimeNs kDuration = Seconds(8);
constexpr int kClients = 8;

void Run(benchutil::BenchIo& io) {
  benchutil::PrintHeader(
      "Figure 12: leader failure timeline, HovercRaft++ N=3, 165 kRPS offered,"
      " flow control cap 1000",
      "Kogias & Bugnion, HovercRaft (EuroSys'20), Figure 12");

  ClusterConfig cluster_config = benchutil::MakeClusterConfig(
      ClusterMode::kHovercRaftPP, 3, ReplierPolicy::kJbsq, /*bounded_queue=*/32, 42);
  cluster_config.flow_control_threshold = 1000;
  io.Attach(&cluster_config, "fig12/");
  Cluster cluster(cluster_config);
  if (cluster.WaitForLeader() == kInvalidNode) {
    std::printf("no leader elected\n");
    return;
  }

  SyntheticWorkloadConfig workload;
  workload.read_only_fraction = 0.75;
  workload.service_time = std::make_shared<BimodalDistribution>(Micros(10), 0.1, 10.0);

  Timeseries timeline(Millis(500));
  std::vector<std::unique_ptr<ClientHost>> clients;
  const TimeNs t0 = cluster.sim().Now();
  for (int c = 0; c < kClients; ++c) {
    auto client = std::make_unique<ClientHost>(
        &cluster.sim(), cluster_config.costs, [&cluster]() { return cluster.ClientTarget(); },
        std::make_unique<SyntheticWorkload>(workload), kOfferedRps / kClients,
        1000 + static_cast<uint64_t>(c));
    cluster.network().Attach(client.get());
    client->set_timeseries(&timeline);
    ClientHost::RetryPolicy retry;
    retry.enabled = true;
    // Above the window-limited sojourn time after the failover (cap 1000 at
    // ~160 kRPS is ~6ms by Little's law), so steady-state traffic never
    // retransmits spuriously; failover gaps are ~100ms, far beyond it.
    retry.initial_backoff = Millis(10);
    retry.max_backoff = Millis(50);
    client->set_retry_policy(retry);
    client->set_retry_target([&cluster]() { return cluster.RetryTarget(); });
    client->SetMeasureWindow(t0, t0 + kDuration);
    client->StartLoad(t0, t0 + kDuration);
    clients.push_back(std::move(client));
  }

  if (obs::Observability* o = io.obs()) {
    if (auto* tracer = o->tracer()) {
      for (size_t c = 0; c < clients.size(); ++c) {
        const int32_t pid = obs::TrackOfHost(clients[c]->id());
        tracer->NameProcess(pid, "client " + std::to_string(c));
        tracer->NameThread(pid, obs::kTidNet, "net thread");
        tracer->NameThread(pid, obs::kTidNic, "nic tx");
      }
    }
    o->StartSampling(&cluster.sim(), t0 + kDuration + Millis(200));
  }

  cluster.sim().At(t0 + kKillAt, [&cluster]() { cluster.KillLeader(); });
  cluster.sim().RunUntil(t0 + kDuration + Millis(200));

  if (obs::Observability* o = io.obs()) {
    cluster.ExportMetrics(&o->metrics());
  }

  std::printf("%8s %12s %12s %12s %12s\n", "t(s)", "kRPS", "nack kRPS", "p50(us)", "p99(us)");
  const double bin_sec = 0.5;
  for (const Timeseries::Point& p : timeline.Points()) {
    std::printf("%8.1f %12.1f %12.1f %12.1f %12.1f%s\n",
                static_cast<double>(p.start) / 1e9,
                static_cast<double>(p.samples) / bin_sec / 1e3,
                static_cast<double>(p.events) / bin_sec / 1e3,
                static_cast<double>(p.p50) / 1e3, static_cast<double>(p.p99) / 1e3,
                p.start <= kKillAt && kKillAt < p.start + timeline.bin_width()
                    ? "   <-- leader killed"
                    : "");
  }
  uint64_t sent = 0, completed = 0, nacked = 0, retransmits = 0, recovered = 0;
  uint64_t abandoned = 0, lost = 0;
  for (auto& client : clients) {
    client->AccountLost(Seconds(1));  // anything still unresolved blew the SLO
    sent += client->sent_in_window();
    completed += client->completed_in_window();
    nacked += client->nacked_in_window();
    retransmits += client->total_retransmits();
    recovered += client->recovered_in_window();
    abandoned += client->total_abandoned();
    lost += client->lost_in_window();
  }
  std::printf(
      "\nexactly-once: sent=%llu completed=%llu nacked=%llu lost=%llu\n"
      "              retransmits=%llu recovered_by_retry=%llu abandoned=%llu\n",
      static_cast<unsigned long long>(sent), static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(nacked), static_cast<unsigned long long>(lost),
      static_cast<unsigned long long>(retransmits), static_cast<unsigned long long>(recovered),
      static_cast<unsigned long long>(abandoned));
  uint64_t feedback = 0;
  for (NodeId n = 0; n < 3; ++n) {
    feedback += cluster.server(n).server_stats().feedback_sent;
  }
  const FlowControl& fc = *cluster.flow_control();
  std::printf("flow control: outstanding=%lld forwarded=%llu nacked=%llu feedback=%llu\n",
              static_cast<long long>(fc.outstanding()),
              static_cast<unsigned long long>(fc.forwarded()),
              static_cast<unsigned long long>(fc.nacked()),
              static_cast<unsigned long long>(feedback));
  std::printf(
      "              reconciles=%llu reconciled_released=%llu force_released=%llu\n",
      static_cast<unsigned long long>(fc.reconciles_started()),
      static_cast<unsigned long long>(fc.reconciled_released()),
      static_cast<unsigned long long>(fc.force_released()));
  // Admission-slot ledger convergence: requests in flight at the instant the
  // leader died repay their slots through the new leader's reconcile answers
  // rather than leaking. After the drain the ledger must be exactly empty —
  // no "known bounded residual" caveat (DESIGN.md section 5c).
  if (fc.outstanding() != 0) {
    std::printf("FAIL: flow-control ledger did not converge (outstanding=%lld)\n",
                static_cast<long long>(fc.outstanding()));
    io.Fail();
  }
  std::printf("final leader: node %d (term %llu)\n", cluster.LeaderId(),
              static_cast<unsigned long long>(
                  cluster.server(cluster.LeaderId()).raft()->term()));

  // Exactly-once summary plus the per-bin timeline into the registry, so the
  // failover dip/recovery lands in the same JSON shape as the curve benches.
  io.RecordCounter("fig12/client.sent", sent);
  io.RecordCounter("fig12/client.completed", completed);
  io.RecordCounter("fig12/client.nacked", nacked);
  io.RecordCounter("fig12/client.lost", lost);
  io.RecordCounter("fig12/client.retransmits", retransmits);
  io.RecordCounter("fig12/client.recovered_by_retry", recovered);
  io.RecordCounter("fig12/client.abandoned", abandoned);
  if (obs::Observability* o = io.obs()) {
    for (const Timeseries::Point& p : timeline.Points()) {
      o->metrics().Sample("fig12/timeline.completed", p.start,
                          static_cast<int64_t>(p.samples));
      o->metrics().Sample("fig12/timeline.nacked", p.start,
                          static_cast<int64_t>(p.events));
      o->metrics().Sample("fig12/timeline.p99_ns", p.start, p.p99);
    }
  }
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::benchutil::BenchIo io(argc, argv);
  hovercraft::Run(io);
  return io.Finish();
}
