// Figure 13: YCSB-E (95% SCAN / 5% INSERT, 1KB records, scan limit 10) on
// the kvstore (the paper's Redis + user-defined-module stand-in), comparing
// the unreplicated store against HovercRaft++ with 3/5/7 nodes. SCANs are
// read-only and load-balance across replicas; INSERTs execute everywhere.
// The paper reports 4x over unreplicated at 7 nodes, the Amdahl bound given
// the INSERT/SCAN cost ratio.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/app/kvstore/service.h"
#include "src/app/ycsb.h"

namespace hovercraft {
namespace {

YcsbEConfig YcsbConfig() {
  YcsbEConfig config;
  config.conversation_count = 2000;
  config.preload_per_conversation = 10;
  return config;
}

void Run(benchutil::BenchIo& io) {
  benchutil::PrintHeader(
      "Figure 13: YCSB-E (95% SCAN / 5% INSERT) on the kvstore, reply+RO LB on",
      "Kogias & Bugnion, HovercRaft (EuroSys'20), Figure 13");

  struct Setup {
    const char* name;
    ClusterMode mode;
    int32_t nodes;
  };
  const Setup setups[] = {
      {"UnRep", ClusterMode::kUnreplicated, 1},
      {"N=3", ClusterMode::kHovercRaftPP, 3},
      {"N=5", ClusterMode::kHovercRaftPP, 5},
      {"N=7", ClusterMode::kHovercRaftPP, 7},
  };

  const YcsbEConfig ycsb = YcsbConfig();
  for (const Setup& setup : setups) {
    ExperimentConfig config;
    config.cluster =
        benchutil::MakeClusterConfig(setup.mode, setup.nodes, ReplierPolicy::kJbsq, 64, 42);
    config.cluster.app_factory = [ycsb]() {
      auto svc = std::make_unique<KvService>();
      // Deterministic identical preload on every replica (the paper loads
      // the dataset before measuring).
      Rng rng(0xFEED5EED);
      YcsbEGenerator gen(ycsb);
      for (const KvCommand& cmd : gen.PreloadCommands(rng)) {
        svc->Apply(cmd);
      }
      return svc;
    };
    config.workload_factory = [ycsb]() { return std::make_unique<YcsbEWorkload>(ycsb); };
    config.client_count = 8;

    const std::vector<double> rates = {10e3, 20e3, 30e3,  40e3,  60e3,
                                       80e3, 100e3, 120e3, 140e3, 160e3};
    for (double rate : rates) {
      const LoadMetrics m = io.RunCurvePoint(setup.name, config, rate);
      if (m.p99_ns > benchutil::kSlo * 4) {
        break;
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::benchutil::BenchIo io(argc, argv);
  hovercraft::Run(io);
  return io.Finish();
}
