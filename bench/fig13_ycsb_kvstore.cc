// Figure 13: YCSB-E (95% SCAN / 5% INSERT, 1KB records, scan limit 10) on
// the kvstore (the paper's Redis + user-defined-module stand-in), comparing
// the unreplicated store against HovercRaft++ with 3/5/7 nodes. SCANs are
// read-only and load-balance across replicas; INSERTs execute everywhere.
// The paper reports 4x over unreplicated at 7 nodes, the Amdahl bound given
// the INSERT/SCAN cost ratio.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/app/kvstore/service.h"
#include "src/app/ycsb.h"

namespace hovercraft {
namespace {

YcsbEConfig YcsbConfig(double zipf_theta) {
  YcsbEConfig config;
  config.conversation_count = 2000;
  config.preload_per_conversation = 10;
  config.zipf_theta = zipf_theta;
  return config;
}

void Run(benchutil::BenchIo& io, double zipf_theta) {
  benchutil::PrintHeader(
      "Figure 13: YCSB-E (95% SCAN / 5% INSERT) on the kvstore, reply+RO LB on",
      "Kogias & Bugnion, HovercRaft (EuroSys'20), Figure 13");
  std::printf("zipfian key skew: theta=%.2f%s\n\n", zipf_theta,
              zipf_theta >= 0.99 ? " (YCSB default)" : "");

  struct Setup {
    const char* name;
    ClusterMode mode;
    int32_t nodes;
  };
  const Setup setups[] = {
      {"UnRep", ClusterMode::kUnreplicated, 1},
      {"N=3", ClusterMode::kHovercRaftPP, 3},
      {"N=5", ClusterMode::kHovercRaftPP, 5},
      {"N=7", ClusterMode::kHovercRaftPP, 7},
  };

  const YcsbEConfig ycsb = YcsbConfig(zipf_theta);
  for (const Setup& setup : setups) {
    ExperimentConfig config;
    config.cluster =
        benchutil::MakeClusterConfig(setup.mode, setup.nodes, ReplierPolicy::kJbsq, 64, 42);
    config.cluster.app_factory = [ycsb]() {
      auto svc = std::make_unique<KvService>();
      // Deterministic identical preload on every replica (the paper loads
      // the dataset before measuring).
      Rng rng(0xFEED5EED);
      YcsbEGenerator gen(ycsb);
      for (const KvCommand& cmd : gen.PreloadCommands(rng)) {
        svc->Apply(cmd);
      }
      return svc;
    };
    config.workload_factory = [ycsb]() { return std::make_unique<YcsbEWorkload>(ycsb); };
    config.client_count = 8;

    const std::vector<double> rates = {10e3, 20e3, 30e3,  40e3,  60e3,
                                       80e3, 100e3, 120e3, 140e3, 160e3};
    for (double rate : rates) {
      const LoadMetrics m = io.RunCurvePoint(setup.name, config, rate);
      if (m.p99_ns > benchutil::kSlo * 4) {
        break;
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  // Strip --zipf-theta=X (key skew; YCSB's 0.99 by default) before handing
  // the common observability flags to BenchIo.
  double zipf_theta = 0.99;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--zipf-theta=", 13) == 0) {
      zipf_theta = std::atof(argv[i] + 13);
    } else {
      rest.push_back(argv[i]);
    }
  }
  hovercraft::benchutil::BenchIo io(static_cast<int>(rest.size()), rest.data());
  hovercraft::Run(io, zipf_theta);
  return io.Finish();
}
