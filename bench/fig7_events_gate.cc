// End-to-end wire-path perf gate (ISSUE 9): events-per-request under the
// Figure 7 setup, batched vs unbatched transport.
//
// The simulator's per-request CPU cost is deterministic: executed_events /
// completed_requests is identical on every machine for a pinned seed. That
// ratio is what the zero-copy + eRPC-batching work optimizes — every message
// send costs a TX-CPU, NIC and delivery event, and coalescing k small
// messages into one frame collapses those pipelines k-fold. This bench runs
// the same pinned-seed load point with transport batching off and on and
// gates on the measured reduction:
//
//   events_per_req (batched) must be >= 2x smaller than unbatched, and
//   batched throughput must not fall below 90% of unbatched.
//
// Recorded gauges (under fig7_events_gate/):
//   unbatched/events_per_req_milli, batched/events_per_req_milli  (det.)
//   speedup_pct           100 * unbatched / batched   (det.; gate >= 200)
//   <side>/krps_per_core  completed kRPS per wall-clock second, i.e. the
//                         simulated-core throughput of this machine (wall
//                         time -> informational, not gated)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"

namespace hovercraft {
namespace {

struct Side {
  LoadMetrics metrics;
  double wall_seconds = 0;
  int64_t EventsPerReqMilli() const {
    return metrics.completed == 0
               ? 0
               : static_cast<int64_t>(metrics.executed_events * 1000 / metrics.completed);
  }
  int64_t KrpsPerCore() const {
    return wall_seconds <= 0
               ? 0
               : static_cast<int64_t>(static_cast<double>(metrics.completed) / wall_seconds / 1e3);
  }
};

Side RunSide(benchutil::BenchIo& io, const char* name, bool batching, double rate) {
  SyntheticWorkloadConfig workload;
  workload.request_bytes = 24;
  workload.reply_bytes = 8;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(1));

  ExperimentConfig config = benchutil::MakeSyntheticExperiment(
      ClusterMode::kHovercRaft, 3, workload, ReplierPolicy::kLeaderOnly, 128, 42);
  config.cluster.costs.tx_batching = batching;
  // The doorbell delay bounds the coalescing latency tax; 20us against the
  // paper's 500us SLO. Under it, back-to-back protocol messages (client
  // requests, AE metadata, acks, feedback) share frames.
  config.cluster.costs.tx_batch_delay_ns = Micros(20);
  io.Attach(&config, benchutil::BenchIo::PointScope(name, rate));

  Side side;
  const auto t0 = std::chrono::steady_clock::now();
  side.metrics = RunLoadPoint(config, rate);
  side.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  benchutil::PrintCurvePoint(name, side.metrics);
  std::printf("%-14s executed_events=%llu  events/req=%.1f  krps_per_core=%lld (wall)\n\n", name,
              static_cast<unsigned long long>(side.metrics.executed_events),
              static_cast<double>(side.EventsPerReqMilli()) / 1000.0,
              static_cast<long long>(side.KrpsPerCore()));

  const std::string scope = std::string("fig7_events_gate/") + name + "/";
  io.RecordCounter(scope + "executed_events", side.metrics.executed_events);
  io.RecordCounter(scope + "completed", side.metrics.completed);
  io.RecordGauge(scope + "events_per_req_milli", side.EventsPerReqMilli());
  io.RecordGauge(scope + "achieved_rps", static_cast<int64_t>(side.metrics.achieved_rps));
  io.RecordGauge(scope + "p99_ns", side.metrics.p99_ns);
  return side;
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  using namespace hovercraft;
  benchutil::BenchIo io(argc, argv);
  benchutil::PrintHeader(
      "fig7_events_gate: simulator events per request, transport batching off vs on",
      "ISSUE 9 (eRPC-style transport batching; Figure 7 setup)");

  const double rate = 600e3;
  const Side unbatched = RunSide(io, "unbatched", false, rate);
  const Side batched = RunSide(io, "batched", true, rate);

  const int64_t epr_unbatched = unbatched.EventsPerReqMilli();
  const int64_t epr_batched = batched.EventsPerReqMilli();
  const int64_t speedup_pct =
      epr_batched == 0 ? 0 : epr_unbatched * 100 / epr_batched;
  std::printf("events/req: unbatched=%.1f batched=%.1f  ->  %lld%%  [gate: >= 200%%]\n",
              static_cast<double>(epr_unbatched) / 1000.0,
              static_cast<double>(epr_batched) / 1000.0, static_cast<long long>(speedup_pct));
  io.RecordGauge("fig7_events_gate/speedup_pct", speedup_pct);
  io.RecordGauge("fig7_events_gate/unbatched/krps_per_core", unbatched.KrpsPerCore());
  io.RecordGauge("fig7_events_gate/batched/krps_per_core", batched.KrpsPerCore());

  if (speedup_pct < 200) {
    std::fprintf(stderr, "FAIL: batching reduced events/req by only %lld%% (gate: >= 200%%)\n",
                 static_cast<long long>(speedup_pct));
    io.Fail();
  }
  if (static_cast<double>(batched.metrics.completed) <
      0.9 * static_cast<double>(unbatched.metrics.completed)) {
    std::fprintf(stderr, "FAIL: batched run completed %llu vs unbatched %llu (< 90%%)\n",
                 static_cast<unsigned long long>(batched.metrics.completed),
                 static_cast<unsigned long long>(unbatched.metrics.completed));
    io.Fail();
  }
  return io.Finish();
}
