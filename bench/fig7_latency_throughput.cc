// Figure 7: 99th-percentile latency vs. throughput for a fixed S=1us service
// time, 24-byte requests and 8-byte replies on a 3-node cluster, comparing
// VanillaRaft, HovercRaft, HovercRaft++ and the unreplicated server.
// Reply load balancing is explicitly disabled (paper section 7.1) to isolate
// protocol overheads.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace hovercraft {
namespace {

void Run(benchutil::BenchIo& io) {
  benchutil::PrintHeader("Figure 7: latency vs throughput, S=1us, 24B req / 8B reply, N=3",
                         "Kogias & Bugnion, HovercRaft (EuroSys'20), Figure 7");

  SyntheticWorkloadConfig workload;
  workload.request_bytes = 24;
  workload.reply_bytes = 8;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(1));

  const std::vector<double> rates = {50e3, 200e3, 400e3, 600e3, 800e3, 900e3, 950e3, 1000e3};
  struct Setup {
    const char* name;
    ClusterMode mode;
  };
  const Setup setups[] = {
      {"VanillaRaft", ClusterMode::kVanillaRaft},
      {"HovercRaft", ClusterMode::kHovercRaft},
      {"HovercRaft++", ClusterMode::kHovercRaftPP},
      {"UnRep", ClusterMode::kUnreplicated},
  };

  for (const Setup& setup : setups) {
    // kLeaderOnly disables reply load balancing, as in the paper's baseline.
    ExperimentConfig config = benchutil::MakeSyntheticExperiment(
        setup.mode, 3, workload, ReplierPolicy::kLeaderOnly, 128, 42);
    for (double rate : rates) {
      const LoadMetrics m = io.RunCurvePoint(setup.name, config, rate);
      if (m.p99_ns > benchutil::kSlo * 4) {
        break;  // far beyond saturation; higher rates only waste time
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::benchutil::BenchIo io(argc, argv);
  hovercraft::Run(io);
  return io.Finish();
}
