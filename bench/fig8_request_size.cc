// Figure 8: achieved throughput under the 500us SLO as the request size
// grows (24B, 64B, 512B). VanillaRaft degrades because the leader replicates
// full payloads to every follower; HovercRaft/++ rely on client multicast
// and are insensitive to request size.
#include <cstdio>

#include "bench/bench_common.h"

namespace hovercraft {
namespace {

void Run(benchutil::BenchIo& io) {
  benchutil::PrintHeader(
      "Figure 8: max kRPS under 500us SLO vs request size, S=1us, 8B reply, N=3",
      "Kogias & Bugnion, HovercRaft (EuroSys'20), Figure 8");

  struct Setup {
    const char* name;
    ClusterMode mode;
  };
  const Setup setups[] = {
      {"VanillaRaft", ClusterMode::kVanillaRaft},
      {"HovercRaft", ClusterMode::kHovercRaft},
      {"HovercRaft++", ClusterMode::kHovercRaftPP},
      {"UnRep", ClusterMode::kUnreplicated},
  };
  const int32_t request_sizes[] = {24, 64, 512};

  std::printf("%-14s %10s %10s %10s\n", "system", "24B", "64B", "512B");
  for (const Setup& setup : setups) {
    std::printf("%-14s", setup.name);
    for (int32_t size : request_sizes) {
      SyntheticWorkloadConfig workload;
      workload.request_bytes = size;
      workload.reply_bytes = 8;
      workload.service_time = std::make_shared<FixedDistribution>(Micros(1));
      const ExperimentConfig config = benchutil::MakeSyntheticExperiment(
          setup.mode, 3, workload, ReplierPolicy::kLeaderOnly, 128, 42);
      const std::string scope =
          std::string(setup.name) + "/" + std::to_string(size) + "B/";
      const SloResult r = io.RunSloPoint(scope, config, benchutil::kSlo, 50e3, 1'050e3);
      std::printf(" %8.0fk ", r.max_rps_under_slo / 1e3);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::benchutil::BenchIo io(argc, argv);
  hovercraft::Run(io);
  return io.Finish();
}
