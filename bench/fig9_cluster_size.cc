// Figure 9: achieved throughput under the 500us SLO for cluster sizes
// 3/5/7/9. VanillaRaft degrades the most with cluster size, HovercRaft is
// unaffected up to 5 nodes, and HovercRaft++'s in-network aggregation keeps
// leader cost constant for any size.
#include <cstdio>

#include "bench/bench_common.h"

namespace hovercraft {
namespace {

void Run(benchutil::BenchIo& io) {
  benchutil::PrintHeader(
      "Figure 9: max kRPS under 500us SLO vs cluster size, S=1us, 24B req / 8B reply",
      "Kogias & Bugnion, HovercRaft (EuroSys'20), Figure 9");

  struct Setup {
    const char* name;
    ClusterMode mode;
  };
  const Setup setups[] = {
      {"VanillaRaft", ClusterMode::kVanillaRaft},
      {"HovercRaft", ClusterMode::kHovercRaft},
      {"HovercRaft++", ClusterMode::kHovercRaftPP},
  };
  const int32_t sizes[] = {3, 5, 7, 9};

  SyntheticWorkloadConfig workload;
  workload.request_bytes = 24;
  workload.reply_bytes = 8;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(1));

  std::printf("%-14s %9s %9s %9s %9s\n", "system", "N=3", "N=5", "N=7", "N=9");
  for (const Setup& setup : setups) {
    std::printf("%-14s", setup.name);
    for (int32_t nodes : sizes) {
      const ExperimentConfig config = benchutil::MakeSyntheticExperiment(
          setup.mode, nodes, workload, ReplierPolicy::kLeaderOnly, 128, 42);
      const std::string scope =
          std::string(setup.name) + "/N" + std::to_string(nodes) + "/";
      const SloResult r = io.RunSloPoint(scope, config, benchutil::kSlo, 50e3, 1'050e3);
      std::printf(" %7.0fk ", r.max_rps_under_slo / 1e3);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::benchutil::BenchIo io(argc, argv);
  hovercraft::Run(io);
  return io.Finish();
}
