// Live rescale: one continuous HovercRaft++ run scaled N=3 -> 5 -> 7 under
// constant offered load, without restarting anything. The companion to
// fig9_cluster_size: that bench measures capacity at each static size, this
// one shows the same capacity being reached *live* through AddServer.
//
// Workload: 80us mostly-read-only service at 80 kRPS offered — far above the
// 3-node capacity, so the flow-control middlebox sheds the excess as NACKs.
// Read-only execution spreads over the replier set (JBSQ), so each pair of
// added servers raises capacity; committed throughput must climb in two
// visible steps as the config changes commit:
//
//   t in [0s, 1s): members {0,1,2}          ~30 kRPS
//   t = 1s:        AddServer(3), AddServer(4)  (learner catch-up via
//                  InstallSnapshot, then promotion — serialized, one
//                  config change in flight at a time)
//   t in [1s, 2s): members {0..4}           ~47 kRPS
//   t = 2s:        AddServer(5), AddServer(6)
//   t in [2s, 3s): members {0..6}           ~63 kRPS
//
// The bench fails (nonzero exit) unless the steady-state window averages
// increase strictly and by a clear margin, i.e. the live rescale actually
// delivered the added capacity.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/loadgen/client.h"
#include "src/stats/timeseries.h"

namespace hovercraft {
namespace {

constexpr double kOfferedRps = 80e3;
constexpr int kClients = 8;
constexpr TimeNs kStep = Seconds(1);       // one window per cluster size
constexpr TimeNs kDuration = 3 * kStep;    // N=3, N=5, N=7
constexpr TimeNs kSettleSkip = Millis(300);  // catch-up + promotion transient
// Each step adds two servers; the second window must beat the first by at
// least this factor (expected ratios are ~1.5 and ~1.35).
constexpr double kStepMargin = 1.10;

void Run(benchutil::BenchIo& io) {
  benchutil::PrintHeader(
      "Live rescale: HovercRaft++ N=3 -> 5 -> 7 via AddServer under 80 kRPS,"
      " 80us 95% read-only, flow control cap 1000",
      "Kogias & Bugnion, HovercRaft (EuroSys'20), section 4 / Figure 9 (live)");

  ClusterConfig cluster_config = benchutil::MakeClusterConfig(
      ClusterMode::kHovercRaftPP, 3, ReplierPolicy::kJbsq, /*bounded_queue=*/64, 42);
  cluster_config.spare_nodes = 4;
  cluster_config.flow_control_threshold = 1000;
  io.Attach(&cluster_config, "fig9_live/");
  Cluster cluster(cluster_config);
  if (cluster.WaitForLeader() == kInvalidNode) {
    std::printf("no leader elected\n");
    io.Fail();
    return;
  }

  SyntheticWorkloadConfig workload;
  workload.read_only_fraction = 0.95;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(80));

  Timeseries timeline(Millis(100));
  std::vector<std::unique_ptr<ClientHost>> clients;
  const TimeNs t0 = cluster.sim().Now();
  for (int c = 0; c < kClients; ++c) {
    auto client = std::make_unique<ClientHost>(
        &cluster.sim(), cluster_config.costs, [&cluster]() { return cluster.ClientTarget(); },
        std::make_unique<SyntheticWorkload>(workload), kOfferedRps / kClients,
        1000 + static_cast<uint64_t>(c));
    cluster.network().Attach(client.get());
    client->set_timeseries(&timeline);
    client->SetMeasureWindow(t0, t0 + kDuration);
    client->StartLoad(t0, t0 + kDuration);
    clients.push_back(std::move(client));
  }
  if (obs::Observability* o = io.obs()) {
    o->StartSampling(&cluster.sim(), t0 + kDuration);
  }

  // The rescale events. Each AddServer proposes through the management
  // plane, which retries until the change commits; the two adds of a step
  // serialize on the one-change-in-flight rule.
  cluster.sim().At(t0 + kStep, [&cluster]() {
    cluster.AddServer(3);
    cluster.AddServer(4);
  });
  cluster.sim().At(t0 + 2 * kStep, [&cluster]() {
    cluster.AddServer(5);
    cluster.AddServer(6);
  });

  cluster.sim().RunUntil(t0 + kDuration);

  if (obs::Observability* o = io.obs()) {
    cluster.ExportMetrics(&o->metrics());
  }

  // Per-bin timeline, annotated with the rescale points.
  std::printf("%8s %12s %12s %12s\n", "t(s)", "kRPS", "nack kRPS", "p99(us)");
  const double bin_sec = static_cast<double>(timeline.bin_width()) / 1e9;
  for (const Timeseries::Point& p : timeline.Points()) {
    const bool step1 = p.start <= kStep && kStep < p.start + timeline.bin_width();
    const bool step2 = p.start <= 2 * kStep && 2 * kStep < p.start + timeline.bin_width();
    std::printf("%8.1f %12.1f %12.1f %12.1f%s\n", static_cast<double>(p.start) / 1e9,
                static_cast<double>(p.samples) / bin_sec / 1e3,
                static_cast<double>(p.events) / bin_sec / 1e3,
                static_cast<double>(p.p99) / 1e3,
                step1 ? "   <-- AddServer(3), AddServer(4)"
                      : (step2 ? "   <-- AddServer(5), AddServer(6)" : ""));
  }

  // Steady-state average of each window, skipping the transition transient
  // at the start (learner catch-up + promotion + scheduler rebalance).
  double window_rps[3] = {0, 0, 0};
  int window_bins[3] = {0, 0, 0};
  for (const Timeseries::Point& p : timeline.Points()) {
    const int w = static_cast<int>(p.start / kStep);
    if (w < 0 || w > 2 || p.start - w * kStep < kSettleSkip) {
      continue;
    }
    window_rps[w] += static_cast<double>(p.samples) / bin_sec;
    ++window_bins[w];
  }
  std::printf("\n%10s %10s %10s %14s\n", "window", "members", "bins", "avg kRPS");
  const int expected_members[3] = {3, 5, 7};
  for (int w = 0; w < 3; ++w) {
    if (window_bins[w] > 0) {
      window_rps[w] /= window_bins[w];
    }
    std::printf("%9.0fs %10d %10d %14.1f\n", static_cast<double>(w), expected_members[w],
                window_bins[w], window_rps[w] / 1e3);
    io.RecordGauge("fig9_live/window" + std::to_string(w) + ".avg_rps",
                   static_cast<int64_t>(window_rps[w]));
  }

  const auto& members = cluster.Members();
  std::printf("final members (config idx %llu):",
              static_cast<unsigned long long>(cluster.applied_config_idx()));
  for (NodeId m : members) {
    std::printf(" %d", m);
  }
  std::printf("\n");
  io.RecordGauge("fig9_live/final_members", static_cast<int64_t>(members.size()));

  // Acceptance: all four adds committed, and each rescale delivered a clear
  // throughput step under the unchanged offered load.
  if (members.size() != 7) {
    std::printf("FAIL: expected 7 members after the rescale, have %zu\n", members.size());
    io.Fail();
  }
  for (int w = 1; w < 3; ++w) {
    if (window_rps[w] < kStepMargin * window_rps[w - 1]) {
      std::printf("FAIL: window %d (%.1f kRPS) did not beat window %d (%.1f kRPS) by %.0f%%\n",
                  w, window_rps[w] / 1e3, w - 1, window_rps[w - 1] / 1e3,
                  (kStepMargin - 1.0) * 100);
      io.Fail();
    }
  }
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::benchutil::BenchIo io(argc, argv);
  hovercraft::Run(io);
  return io.Finish();
}
