// Shard scale-out: aggregate committed throughput of 1 / 2 / 4 HovercRaft
// groups sharing one fabric, at a fixed per-group size (3 nodes). Clients
// spray the whole 64-slot keyspace uniformly under an offered load far above
// single-group capacity; each group's flow-control middlebox sheds its
// excess as NACKs, so the committed rate measures capacity, not load.
//
// This is the scaling argument of multi-Raft sharding (docs/sharding.md):
// consensus ordering is per-group, so adding groups adds capacity near-
// linearly while each group still runs the paper's single-group protocol
// unchanged. The bench fails (nonzero exit) unless 4 groups deliver at least
// 2.5x the aggregate throughput of 1 group — sub-linear losses from the
// shared fabric are visible as a shortfall here.
//
// Everything runs in virtual time with pinned seeds: the committed-rate
// gauges are byte-deterministic, so CI holds them to the committed
// BENCH_sim.json baseline with a tight band (a drift is a protocol change,
// not runner noise).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/app/synthetic.h"
#include "src/loadgen/client.h"
#include "src/loadgen/workload.h"
#include "src/shard/sharded_cluster.h"
#include "src/stats/timeseries.h"

namespace hovercraft {
namespace {

constexpr int32_t kNodesPerGroup = 3;
constexpr double kOfferedRps = 280e3;  // well above 4-group capacity
constexpr int kClients = 8;
constexpr TimeNs kServiceTime = Micros(20);  // ~50 kRPS per group, all-execute
constexpr TimeNs kDuration = Millis(500);
constexpr TimeNs kSettleSkip = Millis(100);  // election + queue fill transient
constexpr double kScaleoutGate = 2.5;        // 4 groups vs 1 group

// Committed (completed) steady-state RPS for one group count.
double RunPoint(benchutil::BenchIo& io, int32_t groups) {
  ShardedClusterConfig cfg;
  cfg.groups = groups;
  cfg.nodes_per_group = kNodesPerGroup;
  cfg.mode = ClusterMode::kHovercRaft;
  cfg.app_factory = []() { return std::make_unique<SyntheticService>(); };
  cfg.replier_policy = ReplierPolicy::kJbsq;
  cfg.flow_control_threshold = 256;  // shed the over-offer as admission NACKs
  cfg.seed = 42;
  ShardedCluster sharded(cfg);
  if (!sharded.WaitForAllLeaders()) {
    std::printf("FAIL: a group failed to elect a leader (groups=%d)\n", groups);
    io.Fail();
    return 0.0;
  }

  SyntheticWorkloadConfig workload;
  workload.random_shard_slot = true;  // uniform over all 64 data slots
  workload.service_time = std::make_shared<FixedDistribution>(kServiceTime);

  Timeseries timeline(Millis(50));
  std::vector<std::unique_ptr<ClientHost>> clients;
  const TimeNs t0 = sharded.sim().Now();
  for (int c = 0; c < kClients; ++c) {
    auto client = std::make_unique<ClientHost>(
        &sharded.sim(), cfg.costs, [&sharded]() { return sharded.group(GroupId{0}).ClientTarget(); },
        std::make_unique<SyntheticWorkload>(workload), kOfferedRps / kClients,
        1000 + static_cast<uint64_t>(c));
    client->EnableSharding([&sharded](uint32_t slot) { return sharded.RouteOf(slot); });
    sharded.network().Attach(client.get());
    client->set_timeseries(&timeline);
    client->StartLoad(t0, t0 + kDuration);
    clients.push_back(std::move(client));
  }
  sharded.sim().RunUntil(t0 + kDuration + Millis(20));

  // Steady-state committed rate, skipping the fill transient.
  double completed = 0.0, nacked = 0.0;
  TimeNs measured = 0;
  for (const Timeseries::Point& p : timeline.Points()) {
    if (p.start < kSettleSkip || p.start + timeline.bin_width() > kDuration) {
      continue;
    }
    completed += static_cast<double>(p.samples);
    nacked += static_cast<double>(p.events);
    measured += timeline.bin_width();
  }
  const double sec = static_cast<double>(measured) / 1e9;
  const double achieved_rps = sec > 0 ? completed / sec : 0.0;
  const double nack_rps = sec > 0 ? nacked / sec : 0.0;

  // A stable map never redirects: any wrong-shard NACK here is a routing bug.
  uint64_t redirects = 0;
  for (const auto& client : clients) {
    redirects += client->total_redirects();
  }
  if (redirects != 0 || sharded.TotalWrongShardNacks() != 0) {
    std::printf("FAIL: %llu redirects / %llu wrong-shard NACKs on a stable map\n",
                static_cast<unsigned long long>(redirects),
                static_cast<unsigned long long>(sharded.TotalWrongShardNacks()));
    io.Fail();
  }
  if (!sharded.AllWatchdogsOk()) {
    std::printf("FAIL: watchdog tripped: %s\n", sharded.WatchdogSummary().c_str());
    io.Fail();
  }

  std::printf("groups=%d  offered=%7.0f  committed=%9.1f rps  nack=%9.1f rps  per-group:",
              groups, kOfferedRps, achieved_rps, nack_rps);
  for (int32_t g = 0; g < groups; ++g) {
    const uint64_t executed = sharded.group(GroupId{g}).TotalExecuted();
    std::printf(" %llu", static_cast<unsigned long long>(executed));
    if (executed == 0) {
      std::printf("\nFAIL: group %d executed nothing\n", g);
      io.Fail();
    }
  }
  std::printf("\n");

  const std::string scope = "fig_shard_scaleout/g" + std::to_string(groups) + "/";
  io.RecordGauge(scope + "achieved_rps", static_cast<int64_t>(achieved_rps));
  io.RecordGauge(scope + "nack_rps", static_cast<int64_t>(nack_rps));
  return achieved_rps;
}

void Run(benchutil::BenchIo& io) {
  benchutil::PrintHeader(
      "Shard scale-out: 1/2/4 HovercRaft groups (3 nodes each) on one fabric,"
      " 20us writes, uniform 64-slot spray at 280 kRPS offered",
      "multi-Raft sharding on Kogias & Bugnion, HovercRaft (EuroSys'20)");

  const int32_t group_counts[] = {1, 2, 4};
  double achieved[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    achieved[i] = RunPoint(io, group_counts[i]);
  }

  const double scaleout = achieved[0] > 0 ? achieved[2] / achieved[0] : 0.0;
  std::printf("\nscale-out 4 groups vs 1: %.2fx (gate: >= %.1fx)\n", scaleout, kScaleoutGate);
  io.RecordGauge("fig_shard_scaleout/scaleout_x100", static_cast<int64_t>(scaleout * 100.0));
  if (scaleout < kScaleoutGate) {
    std::printf("FAIL: sharding did not scale — %.2fx < %.1fx\n", scaleout, kScaleoutGate);
    io.Fail();
  }
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::benchutil::BenchIo io(argc, argv);
  hovercraft::Run(io);
  return io.Finish();
}
