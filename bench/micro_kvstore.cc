// Microbenchmarks for the kvstore data structures and command codec
// (google-benchmark). These measure real wall-clock costs of the store the
// simulator's cost model abstracts.
#include <benchmark/benchmark.h>

#include <string>

#include "src/app/kvstore/command.h"
#include "src/app/kvstore/service.h"
#include "src/app/ycsb.h"
#include "src/common/random.h"

namespace hovercraft {
namespace {

void BM_StoreSetGet(benchmark::State& state) {
  KvStore store;
  Rng rng(1);
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "key:" + std::to_string(i % 10'000);
    store.Set(key, "value-0123456789");
    benchmark::DoNotOptimize(store.Get(key));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_StoreSetGet);

void BM_YcsbInsert(benchmark::State& state) {
  KvService svc;
  YcsbEGenerator gen(YcsbEConfig{});
  Rng rng(2);
  KvCommand cmd;
  cmd.op = KvOpcode::kYInsert;
  cmd.key = "conv:1";
  cmd.value = gen.MakeRecord(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.Apply(cmd));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cmd.value.size()));
}
BENCHMARK(BM_YcsbInsert);

void BM_YcsbScan(benchmark::State& state) {
  KvService svc;
  YcsbEGenerator gen(YcsbEConfig{});
  Rng rng(3);
  KvCommand insert;
  insert.op = KvOpcode::kYInsert;
  insert.key = "conv:1";
  for (int i = 0; i < 100; ++i) {
    insert.value = gen.MakeRecord(rng);
    svc.Apply(insert);
  }
  KvCommand scan;
  scan.op = KvOpcode::kYScan;
  scan.key = "conv:1";
  scan.scan_limit = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.Apply(scan));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_YcsbScan);

void BM_CommandEncodeDecode(benchmark::State& state) {
  YcsbEGenerator gen(YcsbEConfig{});
  Rng rng(4);
  KvCommand cmd;
  cmd.op = KvOpcode::kYInsert;
  cmd.key = "conv:42";
  cmd.value = gen.MakeRecord(rng);
  for (auto _ : state) {
    Body body = EncodeKvCommand(cmd);
    auto decoded = DecodeKvCommand(body);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CommandEncodeDecode);

void BM_WorkloadGeneration(benchmark::State& state) {
  YcsbEGenerator gen(YcsbEConfig{});
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next(rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WorkloadGeneration);

void BM_Counters(benchmark::State& state) {
  KvService svc;
  KvCommand incr;
  incr.op = KvOpcode::kIncr;
  incr.key = "hits";
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.Apply(incr));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Counters);

void BM_SetMembership(benchmark::State& state) {
  KvService svc;
  KvCommand sadd;
  sadd.op = KvOpcode::kSadd;
  sadd.key = "members";
  for (int i = 0; i < 10'000; ++i) {
    sadd.value = "user:" + std::to_string(i);
    svc.Apply(sadd);
  }
  KvCommand probe;
  probe.op = KvOpcode::kSismember;
  probe.key = "members";
  uint64_t i = 0;
  for (auto _ : state) {
    probe.value = "user:" + std::to_string(i++ % 20'000);
    benchmark::DoNotOptimize(svc.Apply(probe));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SetMembership);

}  // namespace
}  // namespace hovercraft

BENCHMARK_MAIN();
