// Microbenchmarks for the R2P2 wire codec and packetizer (google-benchmark).
//
// Every benchmark reports an `allocs_per_op` counter from an interposed
// global operator new: the pooled/zero-copy tier (*_Pooled, *RoundTrip)
// must sit at 0.0 in steady state, while the legacy copying tier shows the
// allocation churn the pool removes (micro_wire_path is the hard gate; the
// counters here are the per-benchmark breakdown).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "src/common/check.h"
#include "src/r2p2/packetizer.h"
#include "src/r2p2/serdes.h"
#include "src/r2p2/wire.h"

static uint64_t g_allocs = 0;

void* operator new(size_t size) {
  ++g_allocs;
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](size_t size) {
  ++g_allocs;
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace hovercraft {
namespace {

// Tracks heap allocations across the timed loop and reports them per
// iteration (first-iteration warmup — pool refills, vector growth — is
// amortized into the average, so steady-state-zero paths read as ~0.0).
class AllocCounter {
 public:
  explicit AllocCounter(benchmark::State& state) : state_(state), start_(g_allocs) {}
  ~AllocCounter() {
    state_.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(g_allocs - start_) / static_cast<double>(state_.iterations()));
  }

 private:
  benchmark::State& state_;
  uint64_t start_;
};

WireHeader SampleHeader() {
  WireHeader h;
  h.type = WireType::kRequest;
  h.policy = 1;
  h.req_id = 1234;
  h.src_ip = 0x0A000001;
  h.src_port = 9999;
  return h;
}

void BM_EncodeHeader(benchmark::State& state) {
  const WireHeader h = SampleHeader();
  std::vector<uint8_t> buf(kWireHeaderBytes);
  AllocCounter allocs(state);
  for (auto _ : state) {
    EncodeWireHeader(h, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EncodeHeader);

void BM_DecodeHeader(benchmark::State& state) {
  std::vector<uint8_t> buf(kWireHeaderBytes);
  EncodeWireHeader(SampleHeader(), buf);
  AllocCounter allocs(state);
  for (auto _ : state) {
    auto result = DecodeWireHeader(buf);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeHeader);

void BM_FragmentMessage(benchmark::State& state) {
  const std::vector<uint8_t> body(static_cast<size_t>(state.range(0)), 0xAB);
  const WireHeader h = SampleHeader();
  for (auto _ : state) {
    auto packets = Fragment(h, body, 1436);
    benchmark::DoNotOptimize(packets);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_FragmentMessage)->Arg(24)->Arg(512)->Arg(6000)->Arg(65536);

void BM_ReassembleMessage(benchmark::State& state) {
  const std::vector<uint8_t> body(static_cast<size_t>(state.range(0)), 0xCD);
  WireHeader h = SampleHeader();
  uint16_t req = 0;
  for (auto _ : state) {
    state.PauseTiming();
    h.req_id = ++req;
    auto packets = Fragment(h, body, 1436);
    state.ResumeTiming();
    Reassembler r;
    for (const auto& pkt : packets) {
      auto done = r.Feed(pkt, 0);
      benchmark::DoNotOptimize(done);
    }
    auto complete = r.TakeCompleted();
    benchmark::DoNotOptimize(complete);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ReassembleMessage)->Arg(1436)->Arg(6000)->Arg(65536);

void BM_SerializeRequestEndToEnd(benchmark::State& state) {
  // Full wire path: typed message -> header + fragments -> reassemble -> typed.
  std::vector<uint8_t> body(static_cast<size_t>(state.range(0)), 0x5A);
  RpcRequest req(RequestId{1, 99}, R2p2Policy::kReplicatedReq, MakeBody(std::move(body)));
  for (auto _ : state) {
    auto packets = SerializeRequest(req, 1436);
    Reassembler r;
    for (const auto& pkt : packets) {
      auto done = r.Feed(pkt, 0);
      benchmark::DoNotOptimize(done);
    }
    auto decoded = DecodeR2p2Message(r.TakeCompleted());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SerializeRequestEndToEnd)->Arg(24)->Arg(512)->Arg(6000);

void BM_SerializeRequestEndToEnd_Pooled(benchmark::State& state) {
  // Same round trip through the zero-copy tier: gather-encode into pooled
  // frames, bitmap reassembly, view decode. allocs_per_op must read ~0.
  BufPool pool;
  std::vector<uint8_t> body(static_cast<size_t>(state.range(0)), 0x5A);
  RpcRequest req(RequestId{1, 99}, R2p2Policy::kReplicatedReq, MakeBody(std::move(body)));
  Reassembler reassembler(&pool);
  std::vector<BufRef> frames;
  {
    AllocCounter allocs(state);
    for (auto _ : state) {
      SerializeRequestInto(pool, req, 1436, frames);
      for (const BufRef& f : frames) {
        auto done = reassembler.Feed(f, 0);
        benchmark::DoNotOptimize(done);
      }
      frames.clear();
      auto view = DecodeR2p2View(reassembler.TakeCompleted());
      HC_CHECK(view.ok());
      benchmark::DoNotOptimize(view);
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SerializeRequestEndToEnd_Pooled)->Arg(24)->Arg(512)->Arg(6000);

void BM_DecodeR2p2Message(benchmark::State& state) {
  // Decode alone (legacy copying tier): reassemble once per iteration from a
  // pre-built packet stream, then typed decode with body copy-out.
  std::vector<uint8_t> body(static_cast<size_t>(state.range(0)), 0x77);
  RpcRequest req(RequestId{3, 21}, R2p2Policy::kReplicatedReq, MakeBody(std::move(body)));
  const std::vector<WirePacket> packets = SerializeRequest(req, 1436);
  AllocCounter allocs(state);
  for (auto _ : state) {
    Reassembler r;
    for (const auto& pkt : packets) {
      auto done = r.Feed(pkt, 0);
      benchmark::DoNotOptimize(done);
    }
    auto decoded = DecodeR2p2Message(r.TakeCompleted());
    HC_CHECK(decoded.ok());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DecodeR2p2Message)->Arg(24)->Arg(512)->Arg(6000);

void BM_FeedbackRoundTrip(benchmark::State& state) {
  // FEEDBACK is the highest-rate control message in HovercRaft (one per
  // committed request from every replier); its round trip must be pool-clean.
  BufPool pool;
  const FeedbackMsg feedback(RequestId{5, 77});
  Reassembler reassembler(&pool);
  std::vector<BufRef> frames;
  AllocCounter allocs(state);
  for (auto _ : state) {
    SerializeFeedbackInto(pool, feedback, frames);
    for (const BufRef& f : frames) {
      auto done = reassembler.Feed(f, 0);
      benchmark::DoNotOptimize(done);
    }
    frames.clear();
    auto view = DecodeR2p2View(reassembler.TakeCompleted());
    HC_CHECK(view.ok());
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FeedbackRoundTrip);

void BM_NackRoundTrip(benchmark::State& state) {
  BufPool pool;
  const NackMsg nack(RequestId{6, 88});
  Reassembler reassembler(&pool);
  std::vector<BufRef> frames;
  AllocCounter allocs(state);
  for (auto _ : state) {
    SerializeNackInto(pool, nack, frames);
    for (const BufRef& f : frames) {
      auto done = reassembler.Feed(f, 0);
      benchmark::DoNotOptimize(done);
    }
    frames.clear();
    auto view = DecodeR2p2View(reassembler.TakeCompleted());
    HC_CHECK(view.ok());
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_NackRoundTrip);

void BM_FeedbackRoundTrip_Legacy(benchmark::State& state) {
  const FeedbackMsg feedback(RequestId{5, 77});
  AllocCounter allocs(state);
  for (auto _ : state) {
    auto packets = SerializeFeedback(feedback);
    Reassembler r;
    for (const auto& pkt : packets) {
      auto done = r.Feed(pkt, 0);
      benchmark::DoNotOptimize(done);
    }
    auto decoded = DecodeR2p2Message(r.TakeCompleted());
    HC_CHECK(decoded.ok());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FeedbackRoundTrip_Legacy);

}  // namespace
}  // namespace hovercraft

BENCHMARK_MAIN();
