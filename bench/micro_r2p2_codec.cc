// Microbenchmarks for the R2P2 wire codec and packetizer (google-benchmark).
#include <benchmark/benchmark.h>

#include <vector>

#include "src/r2p2/packetizer.h"
#include "src/r2p2/serdes.h"
#include "src/r2p2/wire.h"

namespace hovercraft {
namespace {

WireHeader SampleHeader() {
  WireHeader h;
  h.type = WireType::kRequest;
  h.policy = 1;
  h.req_id = 1234;
  h.src_ip = 0x0A000001;
  h.src_port = 9999;
  return h;
}

void BM_EncodeHeader(benchmark::State& state) {
  const WireHeader h = SampleHeader();
  std::vector<uint8_t> buf(kWireHeaderBytes);
  for (auto _ : state) {
    EncodeWireHeader(h, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EncodeHeader);

void BM_DecodeHeader(benchmark::State& state) {
  std::vector<uint8_t> buf(kWireHeaderBytes);
  EncodeWireHeader(SampleHeader(), buf);
  for (auto _ : state) {
    auto result = DecodeWireHeader(buf);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeHeader);

void BM_FragmentMessage(benchmark::State& state) {
  const std::vector<uint8_t> body(static_cast<size_t>(state.range(0)), 0xAB);
  const WireHeader h = SampleHeader();
  for (auto _ : state) {
    auto packets = Fragment(h, body, 1436);
    benchmark::DoNotOptimize(packets);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_FragmentMessage)->Arg(24)->Arg(512)->Arg(6000)->Arg(65536);

void BM_ReassembleMessage(benchmark::State& state) {
  const std::vector<uint8_t> body(static_cast<size_t>(state.range(0)), 0xCD);
  WireHeader h = SampleHeader();
  uint16_t req = 0;
  for (auto _ : state) {
    state.PauseTiming();
    h.req_id = ++req;
    auto packets = Fragment(h, body, 1436);
    state.ResumeTiming();
    Reassembler r;
    for (const auto& pkt : packets) {
      auto done = r.Feed(pkt, 0);
      benchmark::DoNotOptimize(done);
    }
    auto complete = r.TakeCompleted();
    benchmark::DoNotOptimize(complete);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ReassembleMessage)->Arg(1436)->Arg(6000)->Arg(65536);

void BM_SerializeRequestEndToEnd(benchmark::State& state) {
  // Full wire path: typed message -> header + fragments -> reassemble -> typed.
  std::vector<uint8_t> body(static_cast<size_t>(state.range(0)), 0x5A);
  RpcRequest req(RequestId{1, 99}, R2p2Policy::kReplicatedReq, MakeBody(std::move(body)));
  for (auto _ : state) {
    auto packets = SerializeRequest(req, 1436);
    Reassembler r;
    for (const auto& pkt : packets) {
      auto done = r.Feed(pkt, 0);
      benchmark::DoNotOptimize(done);
    }
    auto decoded = DecodeR2p2Message(r.TakeCompleted());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SerializeRequestEndToEnd)->Arg(24)->Arg(512)->Arg(6000);

}  // namespace
}  // namespace hovercraft

BENCHMARK_MAIN();
