// Microbenchmarks for the Raft log hot paths (google-benchmark).
#include <benchmark/benchmark.h>

#include <memory>

#include "src/raft/log.h"

namespace hovercraft {
namespace {

LogEntry MakeEntry(uint64_t seq) {
  LogEntry e;
  e.term = 1;
  e.rid = RequestId{1, seq};
  e.request = std::make_shared<RpcRequest>(e.rid, R2p2Policy::kReplicatedReq,
                                           MakeBody(std::vector<uint8_t>(24)));
  return e;
}

void BM_LogAppend(benchmark::State& state) {
  RaftLog log;
  uint64_t seq = 0;
  for (auto _ : state) {
    log.Append(MakeEntry(++seq));
    if (log.size() >= 100'000) {
      state.PauseTiming();
      log.CompactPrefix(log.last_index());
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LogAppend);

void BM_LogAppendCompactSteadyState(benchmark::State& state) {
  // The shape long benchmark runs exercise: append at the head, compact the
  // tail, bounded working set.
  RaftLog log;
  uint64_t seq = 0;
  for (auto _ : state) {
    log.Append(MakeEntry(++seq));
    if (log.size() > 4096) {
      log.CompactPrefix(log.last_index() - 2048);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LogAppendCompactSteadyState);

void BM_LogFindRequest(benchmark::State& state) {
  RaftLog log;
  for (uint64_t i = 1; i <= 10'000; ++i) {
    log.Append(MakeEntry(i));
  }
  uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.FindRequest(RequestId{1, (seq++ % 10'000) + 1}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LogFindRequest);

void BM_LogTermAt(benchmark::State& state) {
  RaftLog log;
  for (uint64_t i = 1; i <= 10'000; ++i) {
    log.Append(MakeEntry(i));
  }
  uint64_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.TermAt((idx++ % 10'000) + 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LogTermAt);

}  // namespace
}  // namespace hovercraft

BENCHMARK_MAIN();
