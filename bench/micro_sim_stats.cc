// Microbenchmarks for the simulator event loop and the stats primitives —
// the substrate everything else runs on. Millions of simulated events per
// wall second are what make the figure benches tractable.
#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"

namespace hovercraft {
namespace {

void BM_SimulatorEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int remaining = 10'000;
    std::function<void()> chain = [&]() {
      if (--remaining > 0) {
        sim.After(10, chain);
      }
    };
    sim.At(0, chain);
    sim.RunToCompletion();
    benchmark::DoNotOptimize(sim.Now());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_SimulatorEventChurn);

void BM_SimulatorWideHeap(benchmark::State& state) {
  // Many concurrent pending events, as in a loaded cluster.
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 10'000; ++i) {
      sim.At(i * 3 % 1000, []() {});
    }
    sim.RunToCompletion();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_SimulatorWideHeap);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (auto _ : state) {
    h.Record(static_cast<int64_t>(rng.NextBelow(10'000'000)));
  }
  benchmark::DoNotOptimize(h.Percentile(99));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  Histogram h;
  Rng rng(2);
  for (int i = 0; i < 1'000'000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextExponential(50'000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Percentile(99));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramQuantile);

void BM_RngNext(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RngNext);

}  // namespace
}  // namespace hovercraft

BENCHMARK_MAIN();
