// Zero-copy wire path microbench + acceptance gate (ISSUE 9).
//
// Drives the pooled tier of the R2P2 codec — gather Fragment into slab-pooled
// frames, bitmap reassembly, zero-copy view decode — through steady-state
// loops and *counts heap allocations per operation* with an interposed
// global operator new. The whole point of the slab/arena discipline is that
// the steady state allocates nothing, so this bench is a gate, not a report:
//
//   - allocations/op must be exactly 0 for every pooled scenario;
//   - the buffer pool must balance to 0 outstanding buffers at teardown;
//   - ns/op and bytes/sec are recorded for the perf-smoke regression check.
//
// The legacy copying tier runs alongside as the baseline (informational:
// speedup_pct_vs_legacy). With --metrics-out=..., gauges land under
// "micro_wire_path/<scenario>/...".
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/check.h"
#include "src/r2p2/serdes.h"

// --- counting allocator ------------------------------------------------------
// Interposed for the whole binary: every heap allocation anywhere in the
// process is visible to the gate. Not thread-safe; the bench is single-
// threaded by construction.
static uint64_t g_allocs = 0;

void* operator new(size_t size) {
  ++g_allocs;
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](size_t size) {
  ++g_allocs;
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace hovercraft {
namespace {

constexpr size_t kMtu = 1436;
constexpr uint64_t kWarmupOps = 2'000;
constexpr uint64_t kMeasureOps = 200'000;

std::vector<uint8_t> PatternBytes(size_t n) {
  std::vector<uint8_t> bytes(n);
  for (size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  return bytes;
}

struct ScenarioResult {
  double ns_per_op = 0;
  double bytes_per_sec = 0;
  uint64_t allocs = 0;  // over the whole measured window
  uint64_t ops = 0;
  int64_t payload_bytes = 0;
};

// Runs fn() kWarmupOps times (pool refills, vector capacity growth), then
// kMeasureOps times under the allocation counter and the wall clock.
template <typename Fn>
ScenarioResult RunScenario(int64_t payload_bytes, Fn&& fn) {
  ScenarioResult r;
  r.ops = kMeasureOps;
  r.payload_bytes = payload_bytes;
  for (uint64_t i = 0; i < kWarmupOps; ++i) {
    fn();
  }
  const uint64_t allocs_before = g_allocs;
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < kMeasureOps; ++i) {
    fn();
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.allocs = g_allocs - allocs_before;
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  r.ns_per_op = seconds * 1e9 / static_cast<double>(kMeasureOps);
  r.bytes_per_sec =
      static_cast<double>(payload_bytes) * static_cast<double>(kMeasureOps) / seconds;
  return r;
}

void Report(benchutil::BenchIo& io, const char* name, const ScenarioResult& r,
            bool gate_zero_alloc) {
  std::printf("%-24s %8.1f ns/op  %8.1f MB/s  %llu allocs / %llu ops%s\n", name, r.ns_per_op,
              r.bytes_per_sec / 1e6, static_cast<unsigned long long>(r.allocs),
              static_cast<unsigned long long>(r.ops), gate_zero_alloc ? "  [gate: 0]" : "");
  const std::string scope = std::string("micro_wire_path/") + name + "/";
  io.RecordGauge(scope + "ns_per_op_x10", static_cast<int64_t>(r.ns_per_op * 10));
  io.RecordGauge(scope + "bytes_per_sec", static_cast<int64_t>(r.bytes_per_sec));
  io.RecordCounter(scope + "allocs_per_window", r.allocs);
  if (gate_zero_alloc && r.allocs != 0) {
    std::fprintf(stderr, "FAIL: %s allocated %llu times in steady state (gate: 0)\n", name,
                 static_cast<unsigned long long>(r.allocs));
    io.Fail();
  }
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  using namespace hovercraft;
  benchutil::BenchIo io(argc, argv);
  benchutil::PrintHeader("micro_wire_path: pooled zero-copy codec, allocations/op gate",
                         "ISSUE 9 (zero-copy wire path; eRPC-style pooling discipline)");

  {
    BufPool pool;
    {
      const RpcRequest small_req(RequestId{7, 42}, R2p2Policy::kReplicatedReq,
                                 MakeBody(PatternBytes(24)));
      const RpcRequest big_req(RequestId{7, 43}, R2p2Policy::kReplicatedReq,
                               MakeBody(PatternBytes(6000)));
      const FeedbackMsg feedback(RequestId{7, 44});

      std::vector<BufRef> frames;

      // Encode: gather header + extension + payload into pooled frames.
      Report(io, "encode_small",
             RunScenario(24,
                         [&]() {
                           SerializeRequestInto(pool, small_req, kMtu, frames);
                           frames.clear();
                         }),
             /*gate_zero_alloc=*/true);
      Report(io, "encode_multi_frame",
             RunScenario(6000,
                         [&]() {
                           SerializeRequestInto(pool, big_req, kMtu, frames);
                           frames.clear();
                         }),
             /*gate_zero_alloc=*/true);
      Report(io, "encode_feedback",
             RunScenario(0,
                         [&]() {
                           SerializeFeedbackInto(pool, feedback, frames);
                           frames.clear();
                         }),
             /*gate_zero_alloc=*/true);

      // Full round trip, single-fragment fast path: the arrival frame IS the
      // message body (zero memcpy); decode is a refcounted slice.
      {
        Reassembler reassembler(&pool);
        Report(io, "rtt_small_fastpath",
               RunScenario(24,
                           [&]() {
                             SerializeRequestInto(pool, small_req, kMtu, frames);
                             for (const BufRef& f : frames) {
                               auto done = reassembler.Feed(f, 0);
                               HC_CHECK(done.ok());
                             }
                             frames.clear();
                             auto view = DecodeR2p2View(reassembler.TakeCompleted());
                             HC_CHECK(view.ok());
                             HC_CHECK_EQ(view.value().body.size(), 24u);
                           }),
               /*gate_zero_alloc=*/true);

        // Multi-fragment: bitmap-tracked placement into one pooled buffer,
        // map nodes recycled through the free list.
        Report(io, "rtt_multi_frame",
               RunScenario(6000,
                           [&]() {
                             SerializeRequestInto(pool, big_req, kMtu, frames);
                             for (const BufRef& f : frames) {
                               auto done = reassembler.Feed(f, 0);
                               HC_CHECK(done.ok());
                             }
                             frames.clear();
                             auto view = DecodeR2p2View(reassembler.TakeCompleted());
                             HC_CHECK(view.ok());
                             HC_CHECK_EQ(view.value().body.size(), 6000u);
                           }),
               /*gate_zero_alloc=*/true);
      }

      // Legacy copying tier for the same round trip (informational baseline).
      const ScenarioResult legacy = RunScenario(24, [&]() {
        auto packets = SerializeRequest(small_req, kMtu);
        Reassembler r;
        for (const auto& pkt : packets) {
          auto done = r.Feed(pkt, 0);
          HC_CHECK(done.ok());
        }
        auto decoded = DecodeR2p2Message(r.TakeCompleted());
        HC_CHECK(decoded.ok());
      });
      Report(io, "rtt_small_legacy", legacy, /*gate_zero_alloc=*/false);

      const ScenarioResult pooled_again = RunScenario(24, [&]() {
        Reassembler r2(&pool);
        SerializeRequestInto(pool, small_req, kMtu, frames);
        for (const BufRef& f : frames) {
          auto done = r2.Feed(f, 0);
          HC_CHECK(done.ok());
        }
        frames.clear();
        auto view = DecodeR2p2View(r2.TakeCompleted());
        HC_CHECK(view.ok());
      });
      const int64_t speedup_pct =
          static_cast<int64_t>(100.0 * legacy.ns_per_op / pooled_again.ns_per_op);
      std::printf("legacy/pooled round trip: %lld%%\n", static_cast<long long>(speedup_pct));
      io.RecordGauge("micro_wire_path/rtt_small/speedup_pct_vs_legacy", speedup_pct);
    }

    // Pool leak gate: every frame and body ref has been dropped.
    std::printf("pool: allocated=%llu outstanding=%llu slab_refills=%llu  [gate: outstanding 0]\n",
                static_cast<unsigned long long>(pool.allocated()),
                static_cast<unsigned long long>(pool.outstanding()),
                static_cast<unsigned long long>(pool.slab_refills()));
    io.RecordCounter("micro_wire_path/pool/allocated", pool.allocated());
    io.RecordCounter("micro_wire_path/pool/outstanding_at_teardown", pool.outstanding());
    io.RecordCounter("micro_wire_path/pool/slab_refills", pool.slab_refills());
    if (pool.outstanding() != 0) {
      std::fprintf(stderr, "FAIL: %llu pooled buffers leaked (gate: 0)\n",
                   static_cast<unsigned long long>(pool.outstanding()));
      io.Fail();
    }
  }

  return io.Finish();
}
