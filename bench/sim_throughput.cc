// Wall-clock throughput of the simulator scheduling core (ISSUE 4).
//
// Runs the same self-sustaining event workloads through the production
// timer-wheel Simulator and the preserved pre-PR binary-heap core
// (src/sim/reference_heap.h), and reports events/sec and ns/event for four
// event-queue shapes:
//
//   uniform      steady window of timers 0-10us out (the packet-delivery mix)
//   bimodal      90% short (<2us), 10% long (<1ms) — service-time tails
//   cancel-heavy every fire arms two timers and cancels one (retransmit-
//                timer pattern: armed, then cancelled on completion)
//   far-future   timers up to 100ms out (election-timeout distances), living
//                in the wheel's deepest level
//
// Callbacks are single-pointer captures, inline in both cores, so neither
// side pays allocation costs and the ratio isolates the scheduling data
// structures themselves.
//
// Both cores execute the identical event sequence (checksums are compared),
// so the ratio is a pure scheduling-cost comparison. Results are printed and,
// with --metrics-out=BENCH_sim.json, recorded via the metrics registry:
//
//   sim_throughput/<shape>/wheel/ps_per_event   picoseconds, integer
//   sim_throughput/<shape>/wheel/events_per_sec
//   sim_throughput/<shape>/heap/...             same, for the reference core
//   sim_throughput/<shape>/speedup_pct          100 * heap_ps / wheel_ps
//
// Flags (in addition to the standard BenchIo set):
//   --events=N   scheduled events per shape per core (default 1,000,000)
//   --seed=S     workload seed (default 42; CI pins this)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/check.h"
#include "src/common/random.h"
#include "src/obs/flight_recorder.h"
#include "src/sim/reference_heap.h"
#include "src/sim/simulator.h"

namespace hovercraft {
namespace {

enum class Shape { kUniform, kBimodal, kCancelHeavy, kFarFuture };

struct ShapeDef {
  Shape shape;
  const char* name;
};

constexpr ShapeDef kShapes[] = {
    {Shape::kUniform, "uniform"},
    {Shape::kBimodal, "bimodal"},
    {Shape::kCancelHeavy, "cancel_heavy"},
    {Shape::kFarFuture, "far_future"},
};

TimeNs DrawDelay(Shape shape, Rng& rng) {
  switch (shape) {
    case Shape::kUniform:
      return static_cast<TimeNs>(rng.NextBelow(10'000));
    case Shape::kBimodal:
      return rng.NextBelow(10) == 0 ? static_cast<TimeNs>(rng.NextBelow(1'000'000))
                                    : static_cast<TimeNs>(rng.NextBelow(2'000));
    case Shape::kCancelHeavy:
      // Floor of 1ns so a just-armed timer is always still cancellable.
      return 1 + static_cast<TimeNs>(rng.NextBelow(10'000));
    case Shape::kFarFuture:
      return static_cast<TimeNs>(rng.NextBelow(100'000'000));
  }
  return 0;
}

struct RunResult {
  double seconds = 0;
  int64_t scheduled = 0;
  uint64_t executed = 0;
  int64_t cancelled = 0;
  uint64_t checksum = 0;

  double EventsPerSec() const { return static_cast<double>(scheduled) / seconds; }
  int64_t PsPerEvent() const {
    return static_cast<int64_t>(seconds * 1e12 / static_cast<double>(scheduled));
  }
};

// One self-sustaining run: keep a window of outstanding timers; each fired
// event draws its successors from the shared Rng. Both cores execute the
// identical sequence (same seed, same order), so their checksums must agree.
// The scheduled callback is `[this] { Fire(); }` — 8 bytes, inline in the
// wheel's InlineFunction and in std::function's small-object buffer alike.
template <typename Scheduler>
struct Workload {
  Scheduler sim;
  Rng rng;
  Shape shape;
  int64_t target;
  // When set, every fr_interval-th fired event also records one
  // flight-recorder event, pricing the always-on black box against the bare
  // loop (ISSUE 8 perf gate). interval=1 is the worst plausible density;
  // interval=10 matches what instrumented cluster runs actually record
  // (roughly one FR event per ten simulator events). The null check is
  // exactly the production recorder-absent fast path, so both sides of the
  // comparison pay it.
  obs::FlightRecorder* fr = nullptr;
  int fr_interval = 1;
  int fr_countdown = 1;
  RunResult r;

  Workload(Shape s, uint64_t seed, int64_t target_events)
      : rng(seed), shape(s), target(target_events) {}

  void Fire() {
    const TimeNs now = sim.Now();
    r.checksum = r.checksum * 1099511628211ull + static_cast<uint64_t>(now) + 1;
    ++r.executed;
    if (fr != nullptr && --fr_countdown == 0) {
      fr_countdown = fr_interval;
      fr->Record(now, 0, obs::FrType::kStage, r.executed, static_cast<uint64_t>(now));
    }
    if (r.scheduled >= target) {
      return;  // drain phase
    }
    if (shape == Shape::kCancelHeavy) {
      // Retransmit-timer pattern: arm two, immediately cancel one of them
      // (both are strictly in the future, so the cancel always lands).
      const uint64_t a = sim.After(DrawDelay(shape, rng), [this] { Fire(); });
      const uint64_t b = sim.After(DrawDelay(shape, rng), [this] { Fire(); });
      r.scheduled += 2;
      const bool ok = sim.Cancel(rng.NextBelow(2) == 0 ? a : b);
      HC_CHECK(ok);
      ++r.cancelled;
    } else {
      sim.After(DrawDelay(shape, rng), [this] { Fire(); });
      ++r.scheduled;
    }
  }
};

template <typename Scheduler>
RunResult RunShape(Shape shape, uint64_t seed, int64_t target_events,
                   obs::FlightRecorder* fr = nullptr, int fr_interval = 1) {
  constexpr int kWindow = 4096;
  auto w = std::make_unique<Workload<Scheduler>>(shape, seed, target_events);
  w->fr = fr;
  w->fr_interval = fr_interval;
  w->fr_countdown = fr_interval;

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kWindow; ++i) {
    Workload<Scheduler>* p = w.get();
    w->sim.At(DrawDelay(shape, w->rng), [p] { p->Fire(); });
    ++w->r.scheduled;
  }
  w->sim.RunToCompletion();
  const auto stop = std::chrono::steady_clock::now();
  w->r.seconds = std::chrono::duration<double>(stop - start).count();
  HC_CHECK_EQ(static_cast<int64_t>(w->r.executed) + w->r.cancelled, w->r.scheduled);
  return w->r;
}

void Run(benchutil::BenchIo& io, uint64_t seed, int64_t events) {
  benchutil::PrintHeader("Simulator core throughput: timer wheel vs reference heap",
                         "ISSUE 4 perf baseline (events/sec, ns/event by queue shape)");
  std::printf("events/shape: %lld   seed: %llu\n\n", static_cast<long long>(events),
              static_cast<unsigned long long>(seed));
  std::printf("%-13s %14s %14s %14s %14s %9s\n", "shape", "wheel ev/s", "heap ev/s",
              "wheel ns/ev", "heap ns/ev", "speedup");

  io.RecordGauge("sim_throughput/config/events", events);
  io.RecordGauge("sim_throughput/config/seed", static_cast<int64_t>(seed));

  for (const ShapeDef& def : kShapes) {
    const RunResult heap = RunShape<ReferenceHeapScheduler>(def.shape, seed, events);
    const RunResult wheel = RunShape<Simulator>(def.shape, seed, events);
    // Identical virtual execution is a precondition for comparing costs.
    HC_CHECK_EQ(wheel.checksum, heap.checksum);
    HC_CHECK_EQ(wheel.executed, heap.executed);

    const double speedup =
        static_cast<double>(heap.PsPerEvent()) / static_cast<double>(wheel.PsPerEvent());
    std::printf("%-13s %14.0f %14.0f %14.1f %14.1f %8.2fx\n", def.name, wheel.EventsPerSec(),
                heap.EventsPerSec(), static_cast<double>(wheel.PsPerEvent()) / 1000.0,
                static_cast<double>(heap.PsPerEvent()) / 1000.0, speedup);

    const std::string scope = std::string("sim_throughput/") + def.name + "/";
    io.RecordGauge(scope + "wheel/ps_per_event", wheel.PsPerEvent());
    io.RecordGauge(scope + "wheel/events_per_sec",
                   static_cast<int64_t>(wheel.EventsPerSec()));
    io.RecordGauge(scope + "heap/ps_per_event", heap.PsPerEvent());
    io.RecordGauge(scope + "heap/events_per_sec", static_cast<int64_t>(heap.EventsPerSec()));
    io.RecordGauge(scope + "speedup_pct",
                   heap.PsPerEvent() * 100 / std::max<int64_t>(1, wheel.PsPerEvent()));
    io.RecordCounter(scope + "executed", wheel.executed);
    io.RecordCounter(scope + "cancelled", static_cast<uint64_t>(wheel.cancelled));
  }
  std::printf("\nspeedup = heap ns/event over wheel ns/event; >1 means the wheel is faster.\n");

  // Always-on flight-recorder tax: uniform shape on the production wheel at
  // two recording densities. interval=10 is what instrumented cluster runs
  // actually record (~1 FR event per 10 simulator events) — the ISSUE 8
  // acceptance gate (CI perf-smoke) requires its overhead_pct <= 105.
  // interval=1 records on every single simulator event, a worst case no real
  // workload reaches; it is gated loosely (<= 120) as a backstop against the
  // record path itself getting an order of magnitude slower. Off/on runs are
  // interleaved and each takes its best of 5, so frequency drift hits all
  // sides alike.
  obs::FlightRecorder fr(obs::FlightRecorder::kDefaultDepth);
  int64_t off_ps = INT64_MAX;
  int64_t on1_ps = INT64_MAX;
  int64_t on10_ps = INT64_MAX;
  for (int i = 0; i < 5; ++i) {
    off_ps = std::min(off_ps,
                      RunShape<Simulator>(Shape::kUniform, seed, events, nullptr).PsPerEvent());
    on10_ps = std::min(
        on10_ps, RunShape<Simulator>(Shape::kUniform, seed, events, &fr, 10).PsPerEvent());
    on1_ps = std::min(
        on1_ps, RunShape<Simulator>(Shape::kUniform, seed, events, &fr, 1).PsPerEvent());
  }
  const int64_t overhead_pct = on10_ps * 100 / std::max<int64_t>(1, off_ps);
  const int64_t worst_case_pct = on1_ps * 100 / std::max<int64_t>(1, off_ps);
  std::printf("\nflight recorder (uniform/wheel, best of 5): off %.1f ns/ev, "
              "on %.1f ns/ev at 1-in-10 density (cost %lld%%), "
              "%.1f ns/ev at 1-in-1 worst case (cost %lld%%)\n",
              static_cast<double>(off_ps) / 1000.0, static_cast<double>(on10_ps) / 1000.0,
              static_cast<long long>(overhead_pct), static_cast<double>(on1_ps) / 1000.0,
              static_cast<long long>(worst_case_pct));
  io.RecordGauge("sim_throughput/flight_recorder/off_ps_per_event", off_ps);
  io.RecordGauge("sim_throughput/flight_recorder/on_ps_per_event", on10_ps);
  io.RecordGauge("sim_throughput/flight_recorder/overhead_pct", overhead_pct);
  io.RecordGauge("sim_throughput/flight_recorder/worst_case_ps_per_event", on1_ps);
  io.RecordGauge("sim_throughput/flight_recorder/worst_case_overhead_pct", worst_case_pct);
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  int64_t events = 1'000'000;
  uint64_t seed = 42;
  // Strip this bench's own flags before handing the rest to BenchIo.
  std::vector<char*> pass;
  pass.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--events=", 9) == 0) {
      events = std::atoll(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = static_cast<uint64_t>(std::atoll(argv[i] + 7));
    } else {
      pass.push_back(argv[i]);
    }
  }
  hovercraft::benchutil::BenchIo io(static_cast<int>(pass.size()), pass.data());
  hovercraft::Run(io, seed, events);
  return io.Finish();
}
