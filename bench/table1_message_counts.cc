// Table 1: leader Rx/Tx messages per client request for Raft, HovercRaft and
// HovercRaft++ in the non-failure case. The analytical values (N nodes):
//
//            Raft          HovercRaft      HovercRaft++
//   Rx       1+(N-1)       1+(N-1)         1+1
//   Tx       (N-1)+1       (N-1)+1/N       1+1/N
//
// The bench measures actual per-request counts at the leader in the
// simulator (with batching, control traffic and FEEDBACK included) and
// prints them next to the analytical model. Doubles as the aggregation
// ablation: the ++ column is flat in N.
#include <cstdio>
#include <utility>

#include "bench/bench_common.h"
#include "src/loadgen/client.h"

namespace hovercraft {
namespace {

struct Counts {
  double rx = 0;
  double tx = 0;
};

Counts MeasureLeader(benchutil::BenchIo& io, const std::string& scope, ClusterMode mode,
                     int32_t nodes) {
  SyntheticWorkloadConfig workload;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(1));
  ReplierPolicy policy =
      (mode == ClusterMode::kVanillaRaft) ? ReplierPolicy::kLeaderOnly : ReplierPolicy::kJbsq;
  ExperimentConfig config =
      benchutil::MakeSyntheticExperiment(mode, nodes, workload, policy, 128, 42);
  io.Attach(&config, scope);

  Cluster cluster(config.cluster);
  if (cluster.WaitForLeader() == kInvalidNode) {
    return Counts{};
  }
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.cluster.costs, [&cluster]() { return cluster.ClientTarget(); },
      config.workload_factory(), 200'000, 7);
  cluster.network().Attach(client.get());

  cluster.sim().RunUntil(cluster.sim().Now() + Millis(10));
  const NodeId leader = cluster.LeaderId();
  const NetCounters before = cluster.server(leader).counters();
  const uint64_t completed_before = client->total_completed();
  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(100));
  cluster.sim().RunUntil(t0 + Millis(200));
  const NetCounters& after = cluster.server(leader).counters();
  if (io.obs() != nullptr) {
    cluster.ExportMetrics(&io.obs()->metrics());
  }
  const uint64_t requests = client->total_completed() - completed_before;
  if (requests == 0) {
    return Counts{};
  }
  return Counts{static_cast<double>(after.rx_msgs - before.rx_msgs) / requests,
                static_cast<double>(after.tx_msgs - before.tx_msgs) / requests};
}

void Run(benchutil::BenchIo& io) {
  benchutil::PrintHeader("Table 1: leader Rx/Tx messages per request (measured vs analytic)",
                         "Kogias & Bugnion, HovercRaft (EuroSys'20), Table 1");

  struct System {
    const char* name;
    ClusterMode mode;
  };
  const System systems[] = {
      {"Raft", ClusterMode::kVanillaRaft},
      {"HovercRaft", ClusterMode::kHovercRaft},
      {"HovercRaft++", ClusterMode::kHovercRaftPP},
  };

  std::printf("%-14s %4s | %9s %9s | %9s %9s\n", "system", "N", "Rx meas", "Rx model",
              "Tx meas", "Tx model");
  for (const System& system : systems) {
    for (int32_t n : {3, 5, 7, 9}) {
      const std::string scope =
          std::string(system.name) + "/N" + std::to_string(n) + "/";
      const Counts c = MeasureLeader(io, scope, system.mode, n);
      double rx_model = 0;
      double tx_model = 0;
      switch (system.mode) {
        case ClusterMode::kVanillaRaft:
          rx_model = 1.0 + (n - 1);
          tx_model = (n - 1) + 1.0;
          break;
        case ClusterMode::kHovercRaft:
          rx_model = 1.0 + (n - 1);
          tx_model = (n - 1) + 1.0 / n;
          break;
        case ClusterMode::kHovercRaftPP:
          rx_model = 1.0 + 1.0;
          tx_model = 1.0 + 1.0 / n;
          break;
        default:
          break;
      }
      std::printf("%-14s %4d | %9.2f %9.2f | %9.2f %9.2f\n", system.name, n, c.rx, rx_model,
                  c.tx, tx_model);
      // Milli-messages-per-request: keeps the fractional counts in the
      // integer-valued registry without losing the two printed decimals.
      io.RecordGauge(scope + "leader.rx_per_req_milli", std::llround(c.rx * 1000));
      io.RecordGauge(scope + "leader.tx_per_req_milli", std::llround(c.tx * 1000));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "note: measured counts include batching (several log entries per\n"
      "append_entries lower the per-request message cost below the model)\n"
      "plus FEEDBACK flow-control traffic in the HovercRaft modes.\n");
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::benchutil::BenchIo io(argc, argv);
  hovercraft::Run(io);
  return io.Finish();
}
