// Table 1: leader Rx/Tx messages per client request for Raft, HovercRaft and
// HovercRaft++ in the non-failure case. The analytical values (N nodes):
//
//            Raft          HovercRaft      HovercRaft++
//   Rx       1+(N-1)       1+(N-1)         1+1
//   Tx       (N-1)+1       (N-1)+1/N       1+1/N
//
// The bench measures actual per-request counts at the leader in the
// simulator (with batching, control traffic and FEEDBACK included) and
// prints them next to the analytical model. Doubles as the aggregation
// ablation: the ++ column is flat in N.
//
// A second table splits logical messages from physical frames (ISSUE 9):
// per-request frames and wire bytes at the leader, with eRPC-style transport
// coalescing off and on. Logical counts are invariant under coalescing — the
// protocol doesn't change — but the frame column collapses when small
// messages share frames.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/loadgen/client.h"

namespace hovercraft {
namespace {

struct Counts {
  double rx = 0;
  double tx = 0;
  double rx_frames = 0;
  double tx_frames = 0;
  double rx_wire_bytes = 0;
  double tx_wire_bytes = 0;
};

Counts MeasureLeader(benchutil::BenchIo& io, const std::string& scope, ClusterMode mode,
                     int32_t nodes, bool tx_batching) {
  SyntheticWorkloadConfig workload;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(1));
  ReplierPolicy policy =
      (mode == ClusterMode::kVanillaRaft) ? ReplierPolicy::kLeaderOnly : ReplierPolicy::kJbsq;
  ExperimentConfig config =
      benchutil::MakeSyntheticExperiment(mode, nodes, workload, policy, 128, 42);
  config.cluster.costs.tx_batching = tx_batching;
  config.cluster.costs.tx_batch_delay_ns = Micros(20);
  io.Attach(&config, scope);

  Cluster cluster(config.cluster);
  if (cluster.WaitForLeader() == kInvalidNode) {
    return Counts{};
  }
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.cluster.costs, [&cluster]() { return cluster.ClientTarget(); },
      config.workload_factory(), 200'000, 7);
  cluster.network().Attach(client.get());

  cluster.sim().RunUntil(cluster.sim().Now() + Millis(10));
  const NodeId leader = cluster.LeaderId();
  const NetCounters before = cluster.server(leader).counters();
  const uint64_t completed_before = client->total_completed();
  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(100));
  cluster.sim().RunUntil(t0 + Millis(200));
  const NetCounters& after = cluster.server(leader).counters();
  if (io.obs() != nullptr) {
    cluster.ExportMetrics(&io.obs()->metrics());
  }
  const uint64_t requests = client->total_completed() - completed_before;
  if (requests == 0) {
    return Counts{};
  }
  Counts c;
  c.rx = static_cast<double>(after.rx_msgs - before.rx_msgs) / requests;
  c.tx = static_cast<double>(after.tx_msgs - before.tx_msgs) / requests;
  c.rx_frames = static_cast<double>(after.rx_physical_frames - before.rx_physical_frames) / requests;
  c.tx_frames = static_cast<double>(after.tx_physical_frames - before.tx_physical_frames) / requests;
  c.rx_wire_bytes = static_cast<double>(after.rx_wire_bytes - before.rx_wire_bytes) / requests;
  c.tx_wire_bytes = static_cast<double>(after.tx_wire_bytes - before.tx_wire_bytes) / requests;
  return c;
}

void Run(benchutil::BenchIo& io) {
  benchutil::PrintHeader("Table 1: leader Rx/Tx messages per request (measured vs analytic)",
                         "Kogias & Bugnion, HovercRaft (EuroSys'20), Table 1");

  struct System {
    const char* name;
    ClusterMode mode;
  };
  const System systems[] = {
      {"Raft", ClusterMode::kVanillaRaft},
      {"HovercRaft", ClusterMode::kHovercRaft},
      {"HovercRaft++", ClusterMode::kHovercRaftPP},
  };

  std::printf("%-14s %4s | %9s %9s | %9s %9s\n", "system", "N", "Rx meas", "Rx model",
              "Tx meas", "Tx model");
  struct Row {
    const System* system;
    int32_t n;
    Counts plain;
  };
  std::vector<Row> rows;
  for (const System& system : systems) {
    for (int32_t n : {3, 5, 7, 9}) {
      const std::string scope =
          std::string(system.name) + "/N" + std::to_string(n) + "/";
      const Counts c = MeasureLeader(io, scope, system.mode, n, /*tx_batching=*/false);
      rows.push_back(Row{&system, n, c});
      double rx_model = 0;
      double tx_model = 0;
      switch (system.mode) {
        case ClusterMode::kVanillaRaft:
          rx_model = 1.0 + (n - 1);
          tx_model = (n - 1) + 1.0;
          break;
        case ClusterMode::kHovercRaft:
          rx_model = 1.0 + (n - 1);
          tx_model = (n - 1) + 1.0 / n;
          break;
        case ClusterMode::kHovercRaftPP:
          rx_model = 1.0 + 1.0;
          tx_model = 1.0 + 1.0 / n;
          break;
        default:
          break;
      }
      std::printf("%-14s %4d | %9.2f %9.2f | %9.2f %9.2f\n", system.name, n, c.rx, rx_model,
                  c.tx, tx_model);
      // Milli-messages-per-request: keeps the fractional counts in the
      // integer-valued registry without losing the two printed decimals.
      io.RecordGauge(scope + "leader.rx_per_req_milli", std::llround(c.rx * 1000));
      io.RecordGauge(scope + "leader.tx_per_req_milli", std::llround(c.tx * 1000));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "note: measured counts include batching (several log entries per\n"
      "append_entries lower the per-request message cost below the model)\n"
      "plus FEEDBACK flow-control traffic in the HovercRaft modes.\n\n");

  // Physical layer: logical messages stay fixed while eRPC-style transport
  // coalescing packs them into fewer frames. "coalesced" re-runs the same
  // pinned-seed experiment with tx_batching on (20us doorbell).
  std::printf("physical layer at the leader, per request:\n");
  std::printf("%-14s %4s | %7s %7s | %7s %7s | %9s | %9s\n", "system", "N", "frames", "frames",
              "wire B", "wire B", "msgs/frm", "msgs/frm");
  std::printf("%-14s %4s | %7s %7s | %7s %7s | %9s | %9s\n", "", "", "plain", "coal.", "plain",
              "coal.", "plain", "coal.");
  for (const Row& row : rows) {
    const std::string scope =
        std::string(row.system->name) + "/N" + std::to_string(row.n) + "/coalesced/";
    const Counts coal = MeasureLeader(io, scope, row.system->mode, row.n, /*tx_batching=*/true);
    const double frames_plain = row.plain.rx_frames + row.plain.tx_frames;
    const double frames_coal = coal.rx_frames + coal.tx_frames;
    const double msgs_plain = row.plain.rx + row.plain.tx;
    const double msgs_coal = coal.rx + coal.tx;
    std::printf("%-14s %4d | %7.2f %7.2f | %7.0f %7.0f | %9.2f | %9.2f\n", row.system->name,
                row.n, frames_plain, frames_coal, row.plain.rx_wire_bytes + row.plain.tx_wire_bytes,
                coal.rx_wire_bytes + coal.tx_wire_bytes,
                frames_plain == 0 ? 0 : msgs_plain / frames_plain,
                frames_coal == 0 ? 0 : msgs_coal / frames_coal);
    const std::string plain_scope =
        std::string(row.system->name) + "/N" + std::to_string(row.n) + "/";
    io.RecordGauge(plain_scope + "leader.frames_per_req_milli",
                   std::llround(frames_plain * 1000));
    io.RecordGauge(scope + "leader.frames_per_req_milli", std::llround(frames_coal * 1000));
    io.RecordGauge(plain_scope + "leader.wire_bytes_per_req",
                   std::llround(row.plain.rx_wire_bytes + row.plain.tx_wire_bytes));
    io.RecordGauge(scope + "leader.wire_bytes_per_req",
                   std::llround(coal.rx_wire_bytes + coal.tx_wire_bytes));
    std::fflush(stdout);
  }
  std::printf(
      "\nnote: coalesced wire bytes include 4B per-message batch framing; the\n"
      "per-type split is exported as net.bytes_on_wire.{tx,rx}.<type>.\n");
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::benchutil::BenchIo io(argc, argv);
  hovercraft::Run(io);
  return io.Finish();
}
