file(REMOVE_RECURSE
  "CMakeFiles/ablation_bounded_queue.dir/ablation_bounded_queue.cc.o"
  "CMakeFiles/ablation_bounded_queue.dir/ablation_bounded_queue.cc.o.d"
  "ablation_bounded_queue"
  "ablation_bounded_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bounded_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
