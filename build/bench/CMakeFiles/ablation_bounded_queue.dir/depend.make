# Empty dependencies file for ablation_bounded_queue.
# This may be replaced when dependencies are built.
