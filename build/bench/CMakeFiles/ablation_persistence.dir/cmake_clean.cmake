file(REMOVE_RECURSE
  "CMakeFiles/ablation_persistence.dir/ablation_persistence.cc.o"
  "CMakeFiles/ablation_persistence.dir/ablation_persistence.cc.o.d"
  "ablation_persistence"
  "ablation_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
