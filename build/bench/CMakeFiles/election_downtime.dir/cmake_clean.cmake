file(REMOVE_RECURSE
  "CMakeFiles/election_downtime.dir/election_downtime.cc.o"
  "CMakeFiles/election_downtime.dir/election_downtime.cc.o.d"
  "election_downtime"
  "election_downtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/election_downtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
