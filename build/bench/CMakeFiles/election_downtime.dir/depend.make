# Empty dependencies file for election_downtime.
# This may be replaced when dependencies are built.
