# Empty dependencies file for fig10_reply_size.
# This may be replaced when dependencies are built.
