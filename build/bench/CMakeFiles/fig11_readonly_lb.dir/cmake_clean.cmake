file(REMOVE_RECURSE
  "CMakeFiles/fig11_readonly_lb.dir/fig11_readonly_lb.cc.o"
  "CMakeFiles/fig11_readonly_lb.dir/fig11_readonly_lb.cc.o.d"
  "fig11_readonly_lb"
  "fig11_readonly_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_readonly_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
