# Empty dependencies file for fig11_readonly_lb.
# This may be replaced when dependencies are built.
