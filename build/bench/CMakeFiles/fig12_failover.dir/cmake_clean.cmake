file(REMOVE_RECURSE
  "CMakeFiles/fig12_failover.dir/fig12_failover.cc.o"
  "CMakeFiles/fig12_failover.dir/fig12_failover.cc.o.d"
  "fig12_failover"
  "fig12_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
