# Empty dependencies file for fig12_failover.
# This may be replaced when dependencies are built.
