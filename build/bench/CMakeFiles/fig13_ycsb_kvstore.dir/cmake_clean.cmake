file(REMOVE_RECURSE
  "CMakeFiles/fig13_ycsb_kvstore.dir/fig13_ycsb_kvstore.cc.o"
  "CMakeFiles/fig13_ycsb_kvstore.dir/fig13_ycsb_kvstore.cc.o.d"
  "fig13_ycsb_kvstore"
  "fig13_ycsb_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ycsb_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
