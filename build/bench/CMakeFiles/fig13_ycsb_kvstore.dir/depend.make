# Empty dependencies file for fig13_ycsb_kvstore.
# This may be replaced when dependencies are built.
