# Empty dependencies file for fig8_request_size.
# This may be replaced when dependencies are built.
