file(REMOVE_RECURSE
  "CMakeFiles/fig9_cluster_size.dir/fig9_cluster_size.cc.o"
  "CMakeFiles/fig9_cluster_size.dir/fig9_cluster_size.cc.o.d"
  "fig9_cluster_size"
  "fig9_cluster_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cluster_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
