file(REMOVE_RECURSE
  "CMakeFiles/micro_kvstore.dir/micro_kvstore.cc.o"
  "CMakeFiles/micro_kvstore.dir/micro_kvstore.cc.o.d"
  "micro_kvstore"
  "micro_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
