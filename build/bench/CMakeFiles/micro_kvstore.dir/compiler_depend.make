# Empty compiler generated dependencies file for micro_kvstore.
# This may be replaced when dependencies are built.
