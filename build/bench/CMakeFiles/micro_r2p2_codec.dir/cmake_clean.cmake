file(REMOVE_RECURSE
  "CMakeFiles/micro_r2p2_codec.dir/micro_r2p2_codec.cc.o"
  "CMakeFiles/micro_r2p2_codec.dir/micro_r2p2_codec.cc.o.d"
  "micro_r2p2_codec"
  "micro_r2p2_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_r2p2_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
