# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for micro_r2p2_codec.
