# Empty dependencies file for micro_r2p2_codec.
# This may be replaced when dependencies are built.
