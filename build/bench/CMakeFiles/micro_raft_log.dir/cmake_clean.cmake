file(REMOVE_RECURSE
  "CMakeFiles/micro_raft_log.dir/micro_raft_log.cc.o"
  "CMakeFiles/micro_raft_log.dir/micro_raft_log.cc.o.d"
  "micro_raft_log"
  "micro_raft_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_raft_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
