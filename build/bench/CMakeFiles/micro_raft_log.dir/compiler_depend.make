# Empty compiler generated dependencies file for micro_raft_log.
# This may be replaced when dependencies are built.
