file(REMOVE_RECURSE
  "CMakeFiles/micro_sim_stats.dir/micro_sim_stats.cc.o"
  "CMakeFiles/micro_sim_stats.dir/micro_sim_stats.cc.o.d"
  "micro_sim_stats"
  "micro_sim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
