# Empty dependencies file for micro_sim_stats.
# This may be replaced when dependencies are built.
