file(REMOVE_RECURSE
  "CMakeFiles/table1_message_counts.dir/table1_message_counts.cc.o"
  "CMakeFiles/table1_message_counts.dir/table1_message_counts.cc.o.d"
  "table1_message_counts"
  "table1_message_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_message_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
