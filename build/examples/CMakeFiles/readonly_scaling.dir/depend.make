# Empty dependencies file for readonly_scaling.
# This may be replaced when dependencies are built.
