
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/kvstore/command.cc" "src/app/CMakeFiles/hc_app.dir/kvstore/command.cc.o" "gcc" "src/app/CMakeFiles/hc_app.dir/kvstore/command.cc.o.d"
  "/root/repo/src/app/kvstore/service.cc" "src/app/CMakeFiles/hc_app.dir/kvstore/service.cc.o" "gcc" "src/app/CMakeFiles/hc_app.dir/kvstore/service.cc.o.d"
  "/root/repo/src/app/kvstore/store.cc" "src/app/CMakeFiles/hc_app.dir/kvstore/store.cc.o" "gcc" "src/app/CMakeFiles/hc_app.dir/kvstore/store.cc.o.d"
  "/root/repo/src/app/lock_service.cc" "src/app/CMakeFiles/hc_app.dir/lock_service.cc.o" "gcc" "src/app/CMakeFiles/hc_app.dir/lock_service.cc.o.d"
  "/root/repo/src/app/synthetic.cc" "src/app/CMakeFiles/hc_app.dir/synthetic.cc.o" "gcc" "src/app/CMakeFiles/hc_app.dir/synthetic.cc.o.d"
  "/root/repo/src/app/ycsb.cc" "src/app/CMakeFiles/hc_app.dir/ycsb.cc.o" "gcc" "src/app/CMakeFiles/hc_app.dir/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/r2p2/CMakeFiles/hc_r2p2.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
