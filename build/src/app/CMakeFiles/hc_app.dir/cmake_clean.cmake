file(REMOVE_RECURSE
  "CMakeFiles/hc_app.dir/kvstore/command.cc.o"
  "CMakeFiles/hc_app.dir/kvstore/command.cc.o.d"
  "CMakeFiles/hc_app.dir/kvstore/service.cc.o"
  "CMakeFiles/hc_app.dir/kvstore/service.cc.o.d"
  "CMakeFiles/hc_app.dir/kvstore/store.cc.o"
  "CMakeFiles/hc_app.dir/kvstore/store.cc.o.d"
  "CMakeFiles/hc_app.dir/lock_service.cc.o"
  "CMakeFiles/hc_app.dir/lock_service.cc.o.d"
  "CMakeFiles/hc_app.dir/synthetic.cc.o"
  "CMakeFiles/hc_app.dir/synthetic.cc.o.d"
  "CMakeFiles/hc_app.dir/ycsb.cc.o"
  "CMakeFiles/hc_app.dir/ycsb.cc.o.d"
  "libhc_app.a"
  "libhc_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
