file(REMOVE_RECURSE
  "libhc_app.a"
)
