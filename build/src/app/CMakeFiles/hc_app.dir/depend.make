# Empty dependencies file for hc_app.
# This may be replaced when dependencies are built.
