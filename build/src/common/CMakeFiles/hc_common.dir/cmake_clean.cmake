file(REMOVE_RECURSE
  "CMakeFiles/hc_common.dir/logging.cc.o"
  "CMakeFiles/hc_common.dir/logging.cc.o.d"
  "CMakeFiles/hc_common.dir/random.cc.o"
  "CMakeFiles/hc_common.dir/random.cc.o.d"
  "CMakeFiles/hc_common.dir/status.cc.o"
  "CMakeFiles/hc_common.dir/status.cc.o.d"
  "CMakeFiles/hc_common.dir/types.cc.o"
  "CMakeFiles/hc_common.dir/types.cc.o.d"
  "libhc_common.a"
  "libhc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
