file(REMOVE_RECURSE
  "CMakeFiles/hc_core.dir/aggregator.cc.o"
  "CMakeFiles/hc_core.dir/aggregator.cc.o.d"
  "CMakeFiles/hc_core.dir/cluster.cc.o"
  "CMakeFiles/hc_core.dir/cluster.cc.o.d"
  "CMakeFiles/hc_core.dir/flow_control.cc.o"
  "CMakeFiles/hc_core.dir/flow_control.cc.o.d"
  "CMakeFiles/hc_core.dir/server.cc.o"
  "CMakeFiles/hc_core.dir/server.cc.o.d"
  "CMakeFiles/hc_core.dir/unordered_store.cc.o"
  "CMakeFiles/hc_core.dir/unordered_store.cc.o.d"
  "libhc_core.a"
  "libhc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
