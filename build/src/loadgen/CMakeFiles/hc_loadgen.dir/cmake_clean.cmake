file(REMOVE_RECURSE
  "CMakeFiles/hc_loadgen.dir/client.cc.o"
  "CMakeFiles/hc_loadgen.dir/client.cc.o.d"
  "CMakeFiles/hc_loadgen.dir/experiment.cc.o"
  "CMakeFiles/hc_loadgen.dir/experiment.cc.o.d"
  "libhc_loadgen.a"
  "libhc_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
