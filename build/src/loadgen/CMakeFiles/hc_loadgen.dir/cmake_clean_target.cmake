file(REMOVE_RECURSE
  "libhc_loadgen.a"
)
