# Empty dependencies file for hc_loadgen.
# This may be replaced when dependencies are built.
