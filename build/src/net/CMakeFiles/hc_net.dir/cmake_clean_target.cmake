file(REMOVE_RECURSE
  "libhc_net.a"
)
