
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/r2p2/packetizer.cc" "src/r2p2/CMakeFiles/hc_r2p2.dir/packetizer.cc.o" "gcc" "src/r2p2/CMakeFiles/hc_r2p2.dir/packetizer.cc.o.d"
  "/root/repo/src/r2p2/router.cc" "src/r2p2/CMakeFiles/hc_r2p2.dir/router.cc.o" "gcc" "src/r2p2/CMakeFiles/hc_r2p2.dir/router.cc.o.d"
  "/root/repo/src/r2p2/serdes.cc" "src/r2p2/CMakeFiles/hc_r2p2.dir/serdes.cc.o" "gcc" "src/r2p2/CMakeFiles/hc_r2p2.dir/serdes.cc.o.d"
  "/root/repo/src/r2p2/wire.cc" "src/r2p2/CMakeFiles/hc_r2p2.dir/wire.cc.o" "gcc" "src/r2p2/CMakeFiles/hc_r2p2.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
