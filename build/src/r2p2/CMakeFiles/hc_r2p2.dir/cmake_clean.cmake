file(REMOVE_RECURSE
  "CMakeFiles/hc_r2p2.dir/packetizer.cc.o"
  "CMakeFiles/hc_r2p2.dir/packetizer.cc.o.d"
  "CMakeFiles/hc_r2p2.dir/router.cc.o"
  "CMakeFiles/hc_r2p2.dir/router.cc.o.d"
  "CMakeFiles/hc_r2p2.dir/serdes.cc.o"
  "CMakeFiles/hc_r2p2.dir/serdes.cc.o.d"
  "CMakeFiles/hc_r2p2.dir/wire.cc.o"
  "CMakeFiles/hc_r2p2.dir/wire.cc.o.d"
  "libhc_r2p2.a"
  "libhc_r2p2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_r2p2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
