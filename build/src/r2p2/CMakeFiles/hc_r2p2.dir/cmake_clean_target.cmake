file(REMOVE_RECURSE
  "libhc_r2p2.a"
)
