# Empty compiler generated dependencies file for hc_r2p2.
# This may be replaced when dependencies are built.
