
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raft/log.cc" "src/raft/CMakeFiles/hc_raft.dir/log.cc.o" "gcc" "src/raft/CMakeFiles/hc_raft.dir/log.cc.o.d"
  "/root/repo/src/raft/node.cc" "src/raft/CMakeFiles/hc_raft.dir/node.cc.o" "gcc" "src/raft/CMakeFiles/hc_raft.dir/node.cc.o.d"
  "/root/repo/src/raft/replier_scheduler.cc" "src/raft/CMakeFiles/hc_raft.dir/replier_scheduler.cc.o" "gcc" "src/raft/CMakeFiles/hc_raft.dir/replier_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/r2p2/CMakeFiles/hc_r2p2.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
