file(REMOVE_RECURSE
  "CMakeFiles/hc_raft.dir/log.cc.o"
  "CMakeFiles/hc_raft.dir/log.cc.o.d"
  "CMakeFiles/hc_raft.dir/node.cc.o"
  "CMakeFiles/hc_raft.dir/node.cc.o.d"
  "CMakeFiles/hc_raft.dir/replier_scheduler.cc.o"
  "CMakeFiles/hc_raft.dir/replier_scheduler.cc.o.d"
  "libhc_raft.a"
  "libhc_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
