file(REMOVE_RECURSE
  "libhc_raft.a"
)
