# Empty compiler generated dependencies file for hc_raft.
# This may be replaced when dependencies are built.
