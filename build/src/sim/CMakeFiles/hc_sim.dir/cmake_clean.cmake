file(REMOVE_RECURSE
  "CMakeFiles/hc_sim.dir/simulator.cc.o"
  "CMakeFiles/hc_sim.dir/simulator.cc.o.d"
  "libhc_sim.a"
  "libhc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
