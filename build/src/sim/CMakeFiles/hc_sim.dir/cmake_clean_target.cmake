file(REMOVE_RECURSE
  "libhc_sim.a"
)
