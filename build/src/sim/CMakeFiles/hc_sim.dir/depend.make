# Empty dependencies file for hc_sim.
# This may be replaced when dependencies are built.
