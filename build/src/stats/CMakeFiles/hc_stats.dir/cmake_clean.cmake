file(REMOVE_RECURSE
  "CMakeFiles/hc_stats.dir/histogram.cc.o"
  "CMakeFiles/hc_stats.dir/histogram.cc.o.d"
  "libhc_stats.a"
  "libhc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
