file(REMOVE_RECURSE
  "libhc_stats.a"
)
