# Empty compiler generated dependencies file for hc_stats.
# This may be replaced when dependencies are built.
