file(REMOVE_RECURSE
  "CMakeFiles/r2p2_test.dir/r2p2_test.cc.o"
  "CMakeFiles/r2p2_test.dir/r2p2_test.cc.o.d"
  "r2p2_test"
  "r2p2_test.pdb"
  "r2p2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2p2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
