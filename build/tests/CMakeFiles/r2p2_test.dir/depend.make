# Empty dependencies file for r2p2_test.
# This may be replaced when dependencies are built.
