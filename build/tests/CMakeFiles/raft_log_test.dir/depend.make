# Empty dependencies file for raft_log_test.
# This may be replaced when dependencies are built.
