file(REMOVE_RECURSE
  "CMakeFiles/raft_node_test.dir/raft_node_test.cc.o"
  "CMakeFiles/raft_node_test.dir/raft_node_test.cc.o.d"
  "raft_node_test"
  "raft_node_test.pdb"
  "raft_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raft_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
