# Empty dependencies file for raft_node_test.
# This may be replaced when dependencies are built.
