file(REMOVE_RECURSE
  "CMakeFiles/replier_scheduler_test.dir/replier_scheduler_test.cc.o"
  "CMakeFiles/replier_scheduler_test.dir/replier_scheduler_test.cc.o.d"
  "replier_scheduler_test"
  "replier_scheduler_test.pdb"
  "replier_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replier_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
