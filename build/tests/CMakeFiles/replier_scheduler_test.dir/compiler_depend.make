# Empty compiler generated dependencies file for replier_scheduler_test.
# This may be replaced when dependencies are built.
