
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/schedule_fuzz_test.cc" "tests/CMakeFiles/schedule_fuzz_test.dir/schedule_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/schedule_fuzz_test.dir/schedule_fuzz_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/loadgen/CMakeFiles/hc_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/hc_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/hc_app.dir/DependInfo.cmake"
  "/root/repo/build/src/r2p2/CMakeFiles/hc_r2p2.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
