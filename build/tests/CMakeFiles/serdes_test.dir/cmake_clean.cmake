file(REMOVE_RECURSE
  "CMakeFiles/serdes_test.dir/serdes_test.cc.o"
  "CMakeFiles/serdes_test.dir/serdes_test.cc.o.d"
  "serdes_test"
  "serdes_test.pdb"
  "serdes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serdes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
