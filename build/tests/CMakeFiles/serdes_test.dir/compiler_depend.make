# Empty compiler generated dependencies file for serdes_test.
# This may be replaced when dependencies are built.
