file(REMOVE_RECURSE
  "CMakeFiles/unordered_store_test.dir/unordered_store_test.cc.o"
  "CMakeFiles/unordered_store_test.dir/unordered_store_test.cc.o.d"
  "unordered_store_test"
  "unordered_store_test.pdb"
  "unordered_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unordered_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
