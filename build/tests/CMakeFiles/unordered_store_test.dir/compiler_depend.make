# Empty compiler generated dependencies file for unordered_store_test.
# This may be replaced when dependencies are built.
