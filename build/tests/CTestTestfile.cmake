# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/r2p2_test[1]_include.cmake")
include("/root/repo/build/tests/raft_log_test[1]_include.cmake")
include("/root/repo/build/tests/replier_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/raft_node_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/unordered_store_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_integration_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/loadgen_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/serdes_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/router_test[1]_include.cmake")
include("/root/repo/build/tests/lock_service_test[1]_include.cmake")
