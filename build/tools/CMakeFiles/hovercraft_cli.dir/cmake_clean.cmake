file(REMOVE_RECURSE
  "CMakeFiles/hovercraft_cli.dir/hovercraft_cli.cc.o"
  "CMakeFiles/hovercraft_cli.dir/hovercraft_cli.cc.o.d"
  "hovercraft_cli"
  "hovercraft_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hovercraft_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
