# Empty compiler generated dependencies file for hovercraft_cli.
# This may be replaced when dependencies are built.
