# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke_hovercraftpp "/root/repo/build/tools/hovercraft_cli" "--mode=hovercraft++" "--nodes=3" "--rate=20000" "--warmup-ms=10" "--measure-ms=30")
set_tests_properties(cli_smoke_hovercraftpp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_vanilla "/root/repo/build/tools/hovercraft_cli" "--mode=vanilla" "--nodes=3" "--rate=20000" "--warmup-ms=10" "--measure-ms=30")
set_tests_properties(cli_smoke_vanilla PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_ycsbe "/root/repo/build/tools/hovercraft_cli" "--mode=hovercraft" "--nodes=3" "--workload=ycsbe" "--rate=5000" "--warmup-ms=10" "--measure-ms=30")
set_tests_properties(cli_smoke_ycsbe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
