// Example: watch a leader failover in detail.
//
// Streams a steady load at a 3-node HovercRaft++ cluster, kills the leader,
// and prints a 10ms-resolution timeline of completions around the failure:
// the brief gap while the election runs, the new leader draining the
// orphaned unordered requests, and throughput recovering. A compressed view
// of the paper's Figure 12 mechanics.
//
//   ./build/examples/failover_demo
#include <cstdio>
#include <memory>

#include "src/app/synthetic.h"
#include "src/core/cluster.h"
#include "src/loadgen/client.h"
#include "src/loadgen/workload.h"
#include "src/stats/timeseries.h"

namespace hovercraft {
namespace {

void Run() {
  std::printf("== Leader failover, frame by frame ==\n\n");

  ClusterConfig config;
  config.mode = ClusterMode::kHovercRaftPP;
  config.nodes = 3;
  config.replier_policy = ReplierPolicy::kJbsq;
  config.bounded_queue_depth = 32;
  config.flow_control_threshold = 1000;
  config.app_factory = []() { return std::make_unique<SyntheticService>(); };
  // Faster failure detection than the defaults, to keep the demo tight.
  config.raft.election_timeout_min = Millis(3);
  config.raft.election_timeout_max = Millis(6);
  config.raft.heartbeat_interval = Millis(1);

  Cluster cluster(config);
  const NodeId first = cluster.WaitForLeader();
  std::printf("leader: node %d\n", first);

  SyntheticWorkloadConfig workload;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(2));
  Timeseries timeline(Millis(10));
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<SyntheticWorkload>(workload), 50'000, 9);
  cluster.network().Attach(client.get());
  client->set_timeseries(&timeline);

  const TimeNs t0 = cluster.sim().Now();
  const TimeNs kill_at = t0 + Millis(60);
  client->StartLoad(t0, t0 + Millis(160));
  cluster.sim().At(kill_at, [&]() { cluster.KillLeader(); });
  cluster.sim().RunUntil(t0 + Millis(200));

  std::printf("\n%10s %14s %12s   (leader killed at t=%lldms)\n", "t(ms)", "completions/10ms",
              "p99(us)", static_cast<long long>((kill_at - t0) / kNanosPerMilli));
  for (const Timeseries::Point& p : timeline.Points()) {
    const TimeNs rel = p.start - (t0 / timeline.bin_width()) * timeline.bin_width();
    std::printf("%10.0f %14llu %12.1f %s\n", static_cast<double>(rel) / 1e6,
                static_cast<unsigned long long>(p.samples),
                static_cast<double>(p.p99) / 1e3,
                (p.start <= kill_at && kill_at < p.start + timeline.bin_width()) ? "  <= crash"
                                                                                 : "");
  }

  std::printf("\nnew leader: node %d, term %llu (was term %llu)\n", cluster.LeaderId(),
              static_cast<unsigned long long>(cluster.server(cluster.LeaderId()).raft()->term()),
              1ull);
  std::printf("client: %llu sent, %llu answered, %llu lost across the failover\n",
              static_cast<unsigned long long>(client->total_sent()),
              static_cast<unsigned long long>(client->total_completed()),
              static_cast<unsigned long long>(client->total_sent() -
                                              client->total_completed()));
}

}  // namespace
}  // namespace hovercraft

int main() {
  hovercraft::Run();
  return 0;
}
