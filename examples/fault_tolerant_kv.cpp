// Example: a fault-tolerant social-feed backend ("threaded conversations")
// on the replicated kvstore — the YCSB-E scenario the paper's evaluation
// closes with (section 7.5), as an application developer would use it.
//
// A fleet of clients posts to and reads from conversation threads while a
// follower crashes and the cluster keeps serving; at the end we verify that
// the surviving replicas hold byte-identical stores.
//
//   ./build/examples/fault_tolerant_kv
#include <cstdio>
#include <memory>

#include "src/app/kvstore/service.h"
#include "src/app/ycsb.h"
#include "src/core/cluster.h"
#include "src/loadgen/client.h"
#include "src/loadgen/workload.h"

namespace hovercraft {
namespace {

void Run() {
  std::printf("== Fault-tolerant conversation store (YCSB-E on 5 nodes) ==\n\n");

  YcsbEConfig ycsb;
  ycsb.conversation_count = 500;
  ycsb.preload_per_conversation = 5;

  ClusterConfig config;
  config.mode = ClusterMode::kHovercRaftPP;
  config.nodes = 5;
  config.replier_policy = ReplierPolicy::kJbsq;
  config.bounded_queue_depth = 64;
  config.app_factory = [ycsb]() {
    auto svc = std::make_unique<KvService>();
    Rng rng(7);  // identical deterministic preload on every replica
    YcsbEGenerator gen(ycsb);
    for (const KvCommand& cmd : gen.PreloadCommands(rng)) {
      svc->Apply(cmd);
    }
    return svc;
  };

  Cluster cluster(config);
  const NodeId first_leader = cluster.WaitForLeader();
  std::printf("5-node cluster up, leader: node %d\n", first_leader);

  std::vector<std::unique_ptr<ClientHost>> clients;
  const TimeNs t0 = cluster.sim().Now();
  for (int c = 0; c < 4; ++c) {
    auto client = std::make_unique<ClientHost>(
        &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
        std::make_unique<YcsbEWorkload>(ycsb), 10'000, 50 + static_cast<uint64_t>(c));
    cluster.network().Attach(client.get());
    client->SetMeasureWindow(t0, t0 + Millis(400));
    client->StartLoad(t0, t0 + Millis(400));
    clients.push_back(std::move(client));
  }

  // Crash a follower at 100ms and the leader at 200ms: with n=5 the group
  // tolerates both (f=2).
  cluster.sim().At(t0 + Millis(100), [&]() {
    const NodeId victim = (cluster.LeaderId() + 1) % 5;
    std::printf("t=100ms: follower node %d crashes\n", victim);
    cluster.KillNode(victim);
  });
  cluster.sim().At(t0 + Millis(200), [&]() {
    std::printf("t=200ms: leader node %d crashes\n", cluster.LeaderId());
    cluster.KillLeader();
  });

  cluster.sim().RunUntil(t0 + Millis(600));

  uint64_t completed = 0;
  uint64_t sent = 0;
  for (const auto& client : clients) {
    completed += client->total_completed();
    sent += client->total_sent();
  }
  std::printf("\nafter two crashes: leader is node %d, %llu/%llu operations answered\n",
              cluster.LeaderId(), static_cast<unsigned long long>(completed),
              static_cast<unsigned long long>(sent));

  std::printf("\nsurviving replica stores:\n");
  uint64_t reference = 0;
  bool have_reference = false;
  bool all_equal = true;
  for (NodeId n = 0; n < 5; ++n) {
    if (cluster.server(n).failed()) {
      std::printf("  node %d: (crashed)\n", n);
      continue;
    }
    const auto& svc = static_cast<const KvService&>(cluster.server(n).app());
    const uint64_t digest = svc.store().ContentDigest();
    std::printf("  node %d: %zu keys, digest=%016llx\n", n, svc.store().key_count(),
                static_cast<unsigned long long>(digest));
    if (!have_reference) {
      reference = digest;
      have_reference = true;
    } else if (digest != reference) {
      all_equal = false;
    }
  }
  std::printf("\nreplica stores identical: %s\n", all_equal ? "YES" : "NO (BUG!)");
}

}  // namespace
}  // namespace hovercraft

int main() {
  hovercraft::Run();
  return 0;
}
