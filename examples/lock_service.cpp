// Example: a fault-tolerant lock service (the Chubby/etcd use case, paper
// section 2.1) on HovercRaft++.
//
// Three worker clients race for one lock through the replicated service;
// mutual exclusion holds (fencing tokens are strictly increasing, one holder
// at a time) across a leader crash in the middle of the run.
//
//   ./build/examples/lock_service
#include <cstdio>
#include <memory>
#include <vector>

#include "src/app/lock_service.h"
#include "src/core/cluster.h"
#include "src/net/host.h"

namespace hovercraft {
namespace {

// A worker that loops: try to acquire, hold for 5ms, release, retry.
class Worker final : public Host {
 public:
  Worker(Simulator* sim, const CostModel& costs, Cluster* cluster, std::string name)
      : Host(sim, costs, Kind::kServer), cluster_(cluster), name_(std::move(name)) {}

  void Start() { TryAcquire(); }

  void HandleMessage(HostId /*src*/, const MessagePtr& msg) override {
    const auto* resp = dynamic_cast<const RpcResponse*>(msg.get());
    if (resp == nullptr) {
      return;
    }
    Result<LockReply> reply = DecodeLockReply(resp->body());
    if (!reply.ok()) {
      return;
    }
    switch (reply.value().status) {
      case LockReplyStatus::kGranted: {
        const uint64_t token = reply.value().fencing_token;
        std::printf("  [%7.2fms] %s ACQUIRED the lock (fencing token %llu)\n",
                    Ms(), name_.c_str(), static_cast<unsigned long long>(token));
        ++acquisitions;
        last_token = token;
        // Hold the lock for 5ms of "work", then release.
        sim()->After(Millis(5), [this]() { SendOp(LockOpcode::kRelease); });
        break;
      }
      case LockReplyStatus::kHeld:
        // Busy: back off and retry.
        sim()->After(Millis(2), [this]() { TryAcquire(); });
        break;
      case LockReplyStatus::kReleased:
        std::printf("  [%7.2fms] %s released the lock\n", Ms(), name_.c_str());
        sim()->After(Millis(1), [this]() { TryAcquire(); });
        break;
      default:
        sim()->After(Millis(2), [this]() { TryAcquire(); });
        break;
    }
  }

  uint64_t acquisitions = 0;
  uint64_t last_token = 0;

 private:
  double Ms() const { return static_cast<double>(sim()->Now()) / 1e6; }

  void TryAcquire() { SendOp(LockOpcode::kAcquire); }

  void SendOp(LockOpcode op) {
    LockCommand cmd;
    cmd.op = op;
    cmd.lock = "leader-election/shard-7";
    cmd.owner = name_;
    // Re-send on silence: replies can be lost across failovers
    // (at-most-once), so coordination clients always retry with timeouts.
    const uint64_t seq = next_seq_++;
    Send(cluster_->ClientTarget(),
         std::make_shared<RpcRequest>(RequestId{id(), seq}, R2p2Policy::kReplicatedReq,
                                      EncodeLockCommand(cmd)));
    sim()->After(Millis(15), [this, seq, op]() {
      if (seq == next_seq_ - 1 && !stopped_) {
        SendOp(op);  // no progress since: retry (idempotent per owner)
      }
    });
  }

  Cluster* cluster_;
  std::string name_;
  uint64_t next_seq_ = 1;
  bool stopped_ = false;
};

void Run() {
  std::printf("== Fault-tolerant lock service (3 workers, 1 lock, leader crash) ==\n\n");

  ClusterConfig config;
  config.mode = ClusterMode::kHovercRaftPP;
  config.nodes = 3;
  config.replier_policy = ReplierPolicy::kJbsq;
  config.app_factory = []() { return std::make_unique<LockService>(); };
  Cluster cluster(config);
  cluster.WaitForLeader();
  std::printf("cluster up, leader: node %d\n\n", cluster.LeaderId());

  std::vector<std::unique_ptr<Worker>> workers;
  for (const char* name : {"alice", "bob", "carol"}) {
    workers.push_back(
        std::make_unique<Worker>(&cluster.sim(), config.costs, &cluster, name));
    cluster.network().Attach(workers.back().get());
  }
  for (auto& w : workers) {
    w->Start();
  }

  cluster.sim().After(Millis(40), [&cluster]() {
    std::printf("  !! leader (node %d) crashes\n", cluster.LeaderId());
    cluster.KillLeader();
  });
  cluster.sim().RunUntil(Millis(120));

  std::printf("\nacquisitions: ");
  uint64_t max_token = 0;
  for (const auto& w : workers) {
    std::printf("%llu ", static_cast<unsigned long long>(w->acquisitions));
    max_token = std::max(max_token, w->last_token);
  }
  std::printf("\nhighest fencing token issued: %llu\n",
              static_cast<unsigned long long>(max_token));

  // Mutual exclusion is a property of the replicated state machine: verify
  // the survivors agree on who (if anyone) holds the lock.
  std::printf("replica agreement on lock state: ");
  uint64_t digest = 0;
  bool first = true;
  bool agree = true;
  for (NodeId n = 0; n < 3; ++n) {
    if (cluster.server(n).failed()) {
      continue;
    }
    if (first) {
      digest = cluster.server(n).app().Digest();
      first = false;
    } else if (cluster.server(n).app().Digest() != digest) {
      agree = false;
    }
  }
  std::printf("%s\n", agree ? "YES" : "NO (BUG!)");
}

}  // namespace
}  // namespace hovercraft

int main() {
  hovercraft::Run();
  return 0;
}
