// Quickstart: make a plain RPC service fault-tolerant with HovercRaft.
//
// The application below is an ordinary deterministic key-value StateMachine
// with no knowledge of replication. We deploy it on a 3-node HovercRaft++
// cluster, send a handful of RPCs through the R2P2 client, crash the leader,
// and keep going — no application code changes anywhere.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "src/app/kvstore/command.h"
#include "src/app/kvstore/service.h"
#include "src/core/cluster.h"
#include "src/net/host.h"

namespace hovercraft {
namespace {

// A minimal client host: send one command, print the reply.
class DemoClient final : public Host {
 public:
  DemoClient(Simulator* sim, const CostModel& costs, Cluster* cluster)
      : Host(sim, costs, Kind::kServer), cluster_(cluster) {}

  void SendCommand(const KvCommand& cmd) {
    const RequestId rid{id(), next_seq_++};
    const R2p2Policy policy =
        cmd.IsReadOnly() ? R2p2Policy::kReplicatedReqRo : R2p2Policy::kReplicatedReq;
    pending_[rid.seq] = cmd.op;
    Send(cluster_->ClientTarget(), std::make_shared<RpcRequest>(rid, policy, EncodeKvCommand(cmd)));
  }

  void HandleMessage(HostId /*src*/, const MessagePtr& msg) override {
    const auto* resp = dynamic_cast<const RpcResponse*>(msg.get());
    if (resp == nullptr) {
      return;
    }
    auto it = pending_.find(resp->rid().seq);
    if (it == pending_.end()) {
      return;
    }
    Result<KvReply> reply = DecodeKvReply(resp->body());
    std::printf("  [%6.1fus] reply to op#%llu: %s",
                static_cast<double>(sim()->Now()) / 1e3,
                static_cast<unsigned long long>(resp->rid().seq),
                reply.ok() && reply.value().status == KvReplyStatus::kOk ? "OK" : "MISS");
    if (reply.ok()) {
      for (const std::string& v : reply.value().values) {
        std::printf("  \"%s\"", v.c_str());
      }
    }
    std::printf("\n");
    pending_.erase(it);
    ++completed_;
  }

  uint64_t completed() const { return completed_; }

 private:
  Cluster* cluster_;
  uint64_t next_seq_ = 1;
  std::unordered_map<uint64_t, KvOpcode> pending_;
  uint64_t completed_ = 0;
};

void Run() {
  std::printf("== HovercRaft quickstart: replicated KV store on 3 nodes ==\n\n");

  // 1. Describe the deployment: the mode, the cluster size, and a factory
  //    for the application every replica runs.
  ClusterConfig config;
  config.mode = ClusterMode::kHovercRaftPP;
  config.nodes = 3;
  config.replier_policy = ReplierPolicy::kJbsq;
  config.app_factory = []() { return std::make_unique<KvService>(); };

  // 2. Boot the cluster and wait for the first election.
  Cluster cluster(config);
  const NodeId leader = cluster.WaitForLeader();
  std::printf("leader elected: node %d (t=%.2fms)\n\n", leader,
              static_cast<double>(cluster.sim().Now()) / 1e6);

  // 3. Talk to it through R2P2. The client addresses the flow-control
  //    middlebox; it never needs to know which node leads.
  DemoClient client(&cluster.sim(), config.costs, &cluster);
  cluster.network().Attach(&client);

  KvCommand set;
  set.op = KvOpcode::kSet;
  set.key = "greeting";
  set.value = "hello, EuroSys";
  KvCommand get;
  get.op = KvOpcode::kGet;
  get.key = "greeting";

  cluster.sim().After(Millis(1), [&]() {
    std::printf("writing greeting...\n");
    client.SendCommand(set);
  });
  cluster.sim().After(Millis(2), [&]() {
    std::printf("reading it back (read-only, load-balanced):\n");
    client.SendCommand(get);
    client.SendCommand(get);
    client.SendCommand(get);
  });

  // 4. Kill the leader mid-session. Raft elects a successor; the replicated
  //    store keeps answering.
  cluster.sim().After(Millis(5), [&]() {
    std::printf("\n!! killing the leader (node %d)\n\n", cluster.LeaderId());
    cluster.KillLeader();
  });
  cluster.sim().After(Millis(40), [&]() {
    std::printf("cluster healed: new leader is node %d; reading again:\n",
                cluster.LeaderId());
    // A reply delegated to the dead node may be lost (Raft's at-most-once
    // window, paper section 3.4) — send a few; bounded queues stop routing
    // work to the dead replica after at most B assignments.
    client.SendCommand(get);
    client.SendCommand(get);
    client.SendCommand(get);
  });

  cluster.sim().RunUntil(Millis(80));

  std::printf("\n%llu/%u RPCs completed (a lost reply after the crash is the\n"
              "at-most-once window of section 3.4, not a consistency violation).\n"
              "Replica digests:\n",
              static_cast<unsigned long long>(client.completed()), 7u);
  for (NodeId n = 0; n < 3; ++n) {
    std::printf("  node %d: %s digest=%016llx\n", n,
                cluster.server(n).failed() ? "(dead)" : "alive ",
                static_cast<unsigned long long>(cluster.server(n).app().Digest()));
  }
}

}  // namespace
}  // namespace hovercraft

int main() {
  hovercraft::Run();
  return 0;
}
