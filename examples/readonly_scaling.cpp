// Example: replication that *adds* throughput.
//
// The paper's headline claim is that with HovercRaft, adding replicas for
// fault-tolerance also raises capacity, because linearizable read-only
// requests execute on only one (load-balanced) replica. This example runs
// the same read-heavy synthetic service unreplicated and on 3- and 5-node
// HovercRaft++ clusters at the same offered load and prints the achieved
// throughput and tail latency side by side.
//
//   ./build/examples/readonly_scaling
#include <cstdio>
#include <memory>

#include "src/app/synthetic.h"
#include "src/loadgen/experiment.h"
#include "src/loadgen/workload.h"

namespace hovercraft {
namespace {

void Run() {
  std::printf("== Read-mostly service: replication as a throughput feature ==\n\n");
  std::printf("workload: S=10us per op, 90%% linearizable reads, open-loop Poisson\n\n");

  SyntheticWorkloadConfig workload;
  workload.read_only_fraction = 0.9;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(10));

  struct Deployment {
    const char* label;
    ClusterMode mode;
    int32_t nodes;
  };
  const Deployment deployments[] = {
      {"unreplicated (no fault tolerance)", ClusterMode::kUnreplicated, 1},
      {"HovercRaft++ N=3 (tolerates 1 fault)", ClusterMode::kHovercRaftPP, 3},
      {"HovercRaft++ N=5 (tolerates 2 faults)", ClusterMode::kHovercRaftPP, 5},
  };

  // The unreplicated capacity is 1/S = 100 kRPS. Offer 150 kRPS to all
  // three deployments.
  const double offered = 150e3;
  std::printf("offered load: %.0f kRPS (unreplicated capacity is ~100 kRPS)\n\n", offered / 1e3);
  std::printf("%-40s %12s %12s %10s\n", "deployment", "achieved", "p99", "kept up?");
  for (const Deployment& d : deployments) {
    ExperimentConfig config;
    config.cluster.mode = d.mode;
    config.cluster.nodes = d.nodes;
    config.cluster.replier_policy = ReplierPolicy::kJbsq;
    config.cluster.bounded_queue_depth = 64;
    config.cluster.app_factory = []() { return std::make_unique<SyntheticService>(); };
    config.workload_factory = [&workload]() {
      return std::make_unique<SyntheticWorkload>(workload);
    };
    const LoadMetrics m = RunLoadPoint(config, offered);
    const bool kept_up = m.achieved_rps > 0.95 * offered && m.p99_ns < Micros(500);
    std::printf("%-40s %9.0f kRPS %9.1f us %10s\n", d.label, m.achieved_rps / 1e3,
                static_cast<double>(m.p99_ns) / 1e3, kept_up ? "yes" : "NO");
  }
  std::printf(
      "\nThe unreplicated server saturates and its tail explodes; the replicated\n"
      "deployments spread the reads and absorb the same load with microsecond\n"
      "tails -- while also surviving node failures.\n");
}

}  // namespace
}  // namespace hovercraft

int main() {
  hovercraft::Run();
  return 0;
}
