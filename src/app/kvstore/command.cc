#include "src/app/kvstore/command.h"

#include <utility>

#include "src/common/buffer.h"

namespace hovercraft {

Body EncodeKvCommand(const KvCommand& cmd) {
  BufferWriter w(cmd.key.size() + cmd.field.size() + cmd.value.size() + 32);
  w.PutU8(static_cast<uint8_t>(cmd.op));
  w.PutString(cmd.key);
  switch (cmd.op) {
    case KvOpcode::kSet:
    case KvOpcode::kRpush:
    case KvOpcode::kYInsert:
    case KvOpcode::kAppend:
    case KvOpcode::kSetnx:
    case KvOpcode::kSadd:
    case KvOpcode::kSrem:
    case KvOpcode::kSismember:
      w.PutString(cmd.value);
      break;
    case KvOpcode::kHset:
      w.PutString(cmd.field);
      w.PutString(cmd.value);
      break;
    case KvOpcode::kHget:
    case KvOpcode::kHdel:
      w.PutString(cmd.field);
      break;
    case KvOpcode::kLrange:
      w.PutU32(static_cast<uint32_t>(cmd.range_start));
      w.PutU32(static_cast<uint32_t>(cmd.range_stop));
      break;
    case KvOpcode::kYScan:
      w.PutU32(static_cast<uint32_t>(cmd.scan_limit));
      break;
    case KvOpcode::kGet:
    case KvOpcode::kDel:
    case KvOpcode::kIncr:
    case KvOpcode::kExists:
    case KvOpcode::kLpop:
    case KvOpcode::kLlen:
    case KvOpcode::kScard:
      break;
  }
  return MakeBody(w.TakeBytes());
}

Result<KvCommand> DecodeKvCommand(const Body& body) {
  if (body == nullptr) {
    return InvalidArgumentError("null command body");
  }
  BufferReader r(*body);
  uint8_t op_raw = 0;
  if (Status s = r.GetU8(op_raw); !s.ok()) {
    return s;
  }
  if (op_raw > static_cast<uint8_t>(KvOpcode::kScard)) {
    return InvalidArgumentError("unknown kv opcode");
  }
  KvCommand cmd;
  cmd.op = static_cast<KvOpcode>(op_raw);
  if (Status s = r.GetString(cmd.key); !s.ok()) {
    return s;
  }
  Status s = Status::Ok();
  switch (cmd.op) {
    case KvOpcode::kSet:
    case KvOpcode::kRpush:
    case KvOpcode::kYInsert:
    case KvOpcode::kAppend:
    case KvOpcode::kSetnx:
    case KvOpcode::kSadd:
    case KvOpcode::kSrem:
    case KvOpcode::kSismember:
      s = r.GetString(cmd.value);
      break;
    case KvOpcode::kHset:
      s = r.GetString(cmd.field);
      if (s.ok()) {
        s = r.GetString(cmd.value);
      }
      break;
    case KvOpcode::kHget:
    case KvOpcode::kHdel:
      s = r.GetString(cmd.field);
      break;
    case KvOpcode::kLrange: {
      uint32_t a = 0;
      uint32_t b = 0;
      s = r.GetU32(a);
      if (s.ok()) {
        s = r.GetU32(b);
      }
      cmd.range_start = static_cast<int32_t>(a);
      cmd.range_stop = static_cast<int32_t>(b);
      break;
    }
    case KvOpcode::kYScan: {
      uint32_t limit = 0;
      s = r.GetU32(limit);
      cmd.scan_limit = static_cast<int32_t>(limit);
      break;
    }
    case KvOpcode::kGet:
    case KvOpcode::kDel:
    case KvOpcode::kIncr:
    case KvOpcode::kExists:
    case KvOpcode::kLpop:
    case KvOpcode::kLlen:
    case KvOpcode::kScard:
      break;
  }
  if (!s.ok()) {
    return s;
  }
  return cmd;
}

Body EncodeKvReply(const KvReply& reply) {
  size_t reserve = 8;
  for (const std::string& v : reply.values) {
    reserve += v.size() + 4;
  }
  BufferWriter w(reserve);
  w.PutU8(static_cast<uint8_t>(reply.status));
  w.PutU32(static_cast<uint32_t>(reply.values.size()));
  for (const std::string& v : reply.values) {
    w.PutString(v);
  }
  return MakeBody(w.TakeBytes());
}

Result<KvReply> DecodeKvReply(const Body& body) {
  if (body == nullptr) {
    return InvalidArgumentError("null reply body");
  }
  BufferReader r(*body);
  uint8_t status_raw = 0;
  if (Status s = r.GetU8(status_raw); !s.ok()) {
    return s;
  }
  if (status_raw > static_cast<uint8_t>(KvReplyStatus::kError)) {
    return InvalidArgumentError("unknown kv reply status");
  }
  KvReply reply;
  reply.status = static_cast<KvReplyStatus>(status_raw);
  uint32_t count = 0;
  if (Status s = r.GetU32(count); !s.ok()) {
    return s;
  }
  reply.values.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (Status s = r.GetString(reply.values[i]); !s.ok()) {
      return s;
    }
  }
  return reply;
}

}  // namespace hovercraft
