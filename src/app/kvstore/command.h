// Wire commands for the in-memory data-structure store.
//
// The store plays the role of Redis in the paper's evaluation (section 7.5):
// basic string/hash/list operations, plus the two YCSB-E operations that the
// paper implements as a user-defined Redis module so each executes as one
// atomic, totally-ordered SMR operation: YINSERT appends a 1 KB record to a
// conversation thread and YSCAN reads the latest posts.
#ifndef SRC_APP_KVSTORE_COMMAND_H_
#define SRC_APP_KVSTORE_COMMAND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/r2p2/messages.h"

namespace hovercraft {

enum class KvOpcode : uint8_t {
  kSet = 0,
  kGet = 1,
  kDel = 2,
  kHset = 3,
  kHget = 4,
  kRpush = 5,
  kLrange = 6,
  kYInsert = 7,
  kYScan = 8,
  // Extended command surface (Redis-style):
  kIncr = 9,       // integer increment; creates the key at 1
  kAppend = 10,    // string append; returns new length
  kSetnx = 11,     // set-if-absent; returns 1/0
  kExists = 12,    // key existence probe (read-only)
  kHdel = 13,      // delete a hash field
  kLpop = 14,      // pop the list head
  kLlen = 15,      // list length (read-only)
  kSadd = 16,      // add a set member; returns 1 if new
  kSrem = 17,      // remove a set member
  kSismember = 18, // set membership probe (read-only)
  kScard = 19,     // set cardinality (read-only)
};

struct KvCommand {
  KvOpcode op = KvOpcode::kGet;
  std::string key;
  std::string field;           // kHset/kHget
  std::string value;           // kSet/kHset/kRpush/kYInsert (record blob)
  int32_t range_start = 0;     // kLrange
  int32_t range_stop = -1;     // kLrange
  int32_t scan_limit = 0;      // kYScan

  bool IsReadOnly() const {
    return op == KvOpcode::kGet || op == KvOpcode::kHget || op == KvOpcode::kLrange ||
           op == KvOpcode::kYScan || op == KvOpcode::kExists || op == KvOpcode::kLlen ||
           op == KvOpcode::kSismember || op == KvOpcode::kScard;
  }
};

Body EncodeKvCommand(const KvCommand& cmd);
Result<KvCommand> DecodeKvCommand(const Body& body);

// Replies: a status byte, then zero or more length-prefixed values.
enum class KvReplyStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kWrongType = 2,
  kError = 3,
};

struct KvReply {
  KvReplyStatus status = KvReplyStatus::kOk;
  std::vector<std::string> values;
};

Body EncodeKvReply(const KvReply& reply);
Result<KvReply> DecodeKvReply(const Body& body);

}  // namespace hovercraft

#endif  // SRC_APP_KVSTORE_COMMAND_H_
