#include "src/app/kvstore/service.h"

#include <utility>

#include "src/common/buffer.h"
#include "src/common/check.h"
#include "src/r2p2/shard.h"

namespace hovercraft {

KvReply KvService::Apply(const KvCommand& cmd, TimeNs* cost_out) {
  KvReply reply;
  TimeNs cost = costs_.base_ns;
  switch (cmd.op) {
    case KvOpcode::kSet: {
      store_.Set(cmd.key, cmd.value);
      cost += static_cast<TimeNs>(costs_.write_byte_ns *
                                  static_cast<double>(cmd.key.size() + cmd.value.size()));
      break;
    }
    case KvOpcode::kGet: {
      Result<std::string> r = store_.Get(cmd.key);
      if (r.ok()) {
        cost += static_cast<TimeNs>(costs_.read_byte_ns * static_cast<double>(r.value().size()));
        reply.values.push_back(r.TakeValue());
      } else {
        reply.status = r.status().code() == StatusCode::kNotFound ? KvReplyStatus::kNotFound
                                                                  : KvReplyStatus::kWrongType;
      }
      break;
    }
    case KvOpcode::kDel: {
      if (!store_.Del(cmd.key)) {
        reply.status = KvReplyStatus::kNotFound;
      }
      break;
    }
    case KvOpcode::kHset: {
      Status s = store_.Hset(cmd.key, cmd.field, cmd.value);
      if (!s.ok()) {
        reply.status = KvReplyStatus::kWrongType;
      } else {
        cost += static_cast<TimeNs>(costs_.write_byte_ns *
                                    static_cast<double>(cmd.field.size() + cmd.value.size()));
      }
      break;
    }
    case KvOpcode::kHget: {
      Result<std::string> r = store_.Hget(cmd.key, cmd.field);
      if (r.ok()) {
        cost += static_cast<TimeNs>(costs_.read_byte_ns * static_cast<double>(r.value().size()));
        reply.values.push_back(r.TakeValue());
      } else {
        reply.status = r.status().code() == StatusCode::kNotFound ? KvReplyStatus::kNotFound
                                                                  : KvReplyStatus::kWrongType;
      }
      break;
    }
    case KvOpcode::kRpush:
    case KvOpcode::kYInsert: {
      Result<size_t> r = store_.Rpush(cmd.key, cmd.value);
      if (!r.ok()) {
        reply.status = KvReplyStatus::kWrongType;
      } else {
        cost += static_cast<TimeNs>(costs_.write_byte_ns * static_cast<double>(cmd.value.size()));
        reply.values.push_back(std::to_string(r.value()));
      }
      break;
    }
    case KvOpcode::kIncr: {
      Result<int64_t> r = store_.Incr(cmd.key);
      if (!r.ok()) {
        reply.status = KvReplyStatus::kWrongType;
      } else {
        reply.values.push_back(std::to_string(r.value()));
      }
      break;
    }
    case KvOpcode::kAppend: {
      Result<size_t> r = store_.Append(cmd.key, cmd.value);
      if (!r.ok()) {
        reply.status = KvReplyStatus::kWrongType;
      } else {
        cost += static_cast<TimeNs>(costs_.write_byte_ns * static_cast<double>(cmd.value.size()));
        reply.values.push_back(std::to_string(r.value()));
      }
      break;
    }
    case KvOpcode::kSetnx: {
      Result<bool> r = store_.Setnx(cmd.key, cmd.value);
      if (r.value()) {
        cost += static_cast<TimeNs>(costs_.write_byte_ns *
                                    static_cast<double>(cmd.key.size() + cmd.value.size()));
      }
      reply.values.push_back(r.value() ? "1" : "0");
      break;
    }
    case KvOpcode::kExists: {
      reply.values.push_back(store_.Exists(cmd.key) ? "1" : "0");
      break;
    }
    case KvOpcode::kHdel: {
      Result<bool> r = store_.Hdel(cmd.key, cmd.field);
      if (!r.ok()) {
        reply.status = r.status().code() == StatusCode::kNotFound ? KvReplyStatus::kNotFound
                                                                  : KvReplyStatus::kWrongType;
      } else {
        reply.values.push_back(r.value() ? "1" : "0");
      }
      break;
    }
    case KvOpcode::kLpop: {
      Result<std::string> r = store_.Lpop(cmd.key);
      if (!r.ok()) {
        reply.status = r.status().code() == StatusCode::kNotFound ? KvReplyStatus::kNotFound
                                                                  : KvReplyStatus::kWrongType;
      } else {
        cost += static_cast<TimeNs>(costs_.read_byte_ns * static_cast<double>(r.value().size()));
        reply.values.push_back(r.TakeValue());
      }
      break;
    }
    case KvOpcode::kLlen: {
      Result<size_t> r = store_.Llen(cmd.key);
      if (!r.ok()) {
        reply.status = KvReplyStatus::kWrongType;
      } else {
        reply.values.push_back(std::to_string(r.value()));
      }
      break;
    }
    case KvOpcode::kSadd: {
      Result<bool> r = store_.Sadd(cmd.key, cmd.value);
      if (!r.ok()) {
        reply.status = KvReplyStatus::kWrongType;
      } else {
        if (r.value()) {
          cost += static_cast<TimeNs>(costs_.write_byte_ns *
                                      static_cast<double>(cmd.value.size()));
        }
        reply.values.push_back(r.value() ? "1" : "0");
      }
      break;
    }
    case KvOpcode::kSrem: {
      Result<bool> r = store_.Srem(cmd.key, cmd.value);
      if (!r.ok()) {
        reply.status = r.status().code() == StatusCode::kNotFound ? KvReplyStatus::kNotFound
                                                                  : KvReplyStatus::kWrongType;
      } else {
        reply.values.push_back(r.value() ? "1" : "0");
      }
      break;
    }
    case KvOpcode::kSismember: {
      Result<bool> r = store_.Sismember(cmd.key, cmd.value);
      if (!r.ok()) {
        reply.status = KvReplyStatus::kWrongType;
      } else {
        reply.values.push_back(r.value() ? "1" : "0");
      }
      break;
    }
    case KvOpcode::kScard: {
      Result<size_t> r = store_.Scard(cmd.key);
      if (!r.ok()) {
        reply.status = KvReplyStatus::kWrongType;
      } else {
        reply.values.push_back(std::to_string(r.value()));
      }
      break;
    }
    case KvOpcode::kLrange: {
      Result<std::vector<std::string>> r = store_.Lrange(cmd.key, cmd.range_start, cmd.range_stop);
      if (!r.ok()) {
        reply.status = r.status().code() == StatusCode::kNotFound ? KvReplyStatus::kNotFound
                                                                  : KvReplyStatus::kWrongType;
      } else {
        for (std::string& v : r.value()) {
          cost += costs_.scan_record_ns +
                  static_cast<TimeNs>(costs_.read_byte_ns * static_cast<double>(v.size()));
          reply.values.push_back(std::move(v));
        }
      }
      break;
    }
    case KvOpcode::kYScan: {
      Result<std::vector<std::string>> r = store_.ScanTail(cmd.key, cmd.scan_limit);
      if (!r.ok()) {
        // An empty conversation is a normal YCSB-E outcome, not an error.
        reply.status = r.status().code() == StatusCode::kNotFound ? KvReplyStatus::kNotFound
                                                                  : KvReplyStatus::kWrongType;
        // Scans over missing threads still pay the probe.
        cost += costs_.scan_record_ns;
      } else {
        for (std::string& v : r.value()) {
          cost += costs_.scan_record_ns +
                  static_cast<TimeNs>(costs_.read_byte_ns * static_cast<double>(v.size()));
          reply.values.push_back(std::move(v));
        }
      }
      break;
    }
  }
  if (cost_out != nullptr) {
    *cost_out = cost;
  }
  return reply;
}

Body KvService::SnapshotState() const {
  BufferWriter w(4096);
  w.PutU64(applied_);
  w.PutU64(mutation_digest_);
  store_.SerializeTo(w);
  return MakeBody(w.TakeBytes());
}

Status KvService::RestoreState(const Body& snapshot) {
  if (snapshot == nullptr) {
    return InvalidArgumentError("null snapshot");
  }
  BufferReader r(*snapshot);
  uint64_t applied = 0;
  uint64_t digest = 0;
  if (Status s = r.GetU64(applied); !s.ok()) {
    return s;
  }
  if (Status s = r.GetU64(digest); !s.ok()) {
    return s;
  }
  if (Status s = store_.DeserializeFrom(r); !s.ok()) {
    return s;
  }
  applied_ = applied;
  mutation_digest_ = digest;
  return Status::Ok();
}

Body KvService::CaptureRange(uint32_t lo_slot, uint32_t hi_slot) const {
  BufferWriter w(4096);
  store_.SerializePartTo(w, [lo_slot, hi_slot](std::string_view key) {
    const uint32_t slot = ShardSlotOf(key);
    return slot >= lo_slot && slot <= hi_slot;
  });
  return MakeBody(w.TakeBytes());
}

Status KvService::InstallRange(const Body& range) {
  if (range == nullptr) {
    return InvalidArgumentError("null range payload");
  }
  BufferReader r(*range);
  // Installed keys do not bump applied_ or mutation_digest_: those track the
  // group's own executed log, and all replicas install the same bytes from
  // the same log entry, so digests stay converged either way.
  return store_.MergeFrom(r);
}

Status KvService::DropRange(uint32_t lo_slot, uint32_t hi_slot) {
  store_.EraseIf([lo_slot, hi_slot](std::string_view key) {
    const uint32_t slot = ShardSlotOf(key);
    return slot >= lo_slot && slot <= hi_slot;
  });
  return Status::Ok();
}

ExecResult KvService::Execute(const RpcRequest& request) {
  Result<KvCommand> cmd = DecodeKvCommand(request.body());
  HC_CHECK(cmd.ok());
  // Guard the determinism contract: a request tagged read-only must carry a
  // read-only command (the "catastrophic inconsistency" of section 5 is a
  // client bug we surface loudly).
  HC_CHECK(!request.read_only() || cmd.value().IsReadOnly());
  TimeNs cost = 0;
  KvReply reply = Apply(cmd.value(), &cost);
  if (!cmd.value().IsReadOnly()) {
    ++applied_;
    mutation_digest_ ^= RequestIdHash()(request.rid()) + (mutation_digest_ << 6);
    mutation_digest_ *= 0x100000001B3ull;
  }
  return ExecResult{cost, EncodeKvReply(reply)};
}

}  // namespace hovercraft
