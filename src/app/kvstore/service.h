// StateMachine adapter for the KvStore: decodes commands, executes them on
// real data structures (every replica holds real state — convergence is
// checked by digest), and charges a calibrated virtual CPU cost.
//
// Substitution note (see DESIGN.md): the paper runs real Redis and measures
// wall-clock CPU; we execute a real store but account CPU through this cost
// model, calibrated so YCSB-E reproduces the paper's operating points
// (unreplicated capacity ~35 kRPS; INSERT/SCAN cost ratio giving the Amdahl
// 4x cap at 7 nodes).
#ifndef SRC_APP_KVSTORE_SERVICE_H_
#define SRC_APP_KVSTORE_SERVICE_H_

#include <cstdint>

#include "src/app/kvstore/command.h"
#include "src/app/kvstore/store.h"
#include "src/app/state_machine.h"
#include "src/common/types.h"

namespace hovercraft {

struct KvCostModel {
  // Fixed dispatch cost per command (parse, lookup, reply build).
  TimeNs base_ns = Micros(2);
  // Per byte written into the store (allocation + copy + index update).
  double write_byte_ns = 65.0;
  // Per byte read out of the store into the reply.
  double read_byte_ns = 1.0;
  // Per record visited by a scan (pointer chase + serialization setup).
  TimeNs scan_record_ns = 1'500;
};

class KvService final : public StateMachine {
 public:
  explicit KvService(KvCostModel costs = KvCostModel{}) : costs_(costs) {}

  ExecResult Execute(const RpcRequest& request) override;
  uint64_t Digest() const override { return store_.ContentDigest() ^ mutation_digest_; }
  uint64_t ApplyCount() const override { return applied_; }
  Body SnapshotState() const override;
  Status RestoreState(const Body& snapshot) override;

  // Shard-move range handoff: keys are selected by ShardSlotOf(key), the
  // same hash the router uses, so a moved range carries exactly the keys
  // whose requests will be redirected to the destination group.
  Body CaptureRange(uint32_t lo_slot, uint32_t hi_slot) const override;
  Status InstallRange(const Body& range) override;
  Status DropRange(uint32_t lo_slot, uint32_t hi_slot) override;

  const KvStore& store() const { return store_; }
  KvStore& store() { return store_; }

  // Convenience for direct (non-replicated) use and tests.
  KvReply Apply(const KvCommand& cmd, TimeNs* cost_out = nullptr);

 private:
  KvCostModel costs_;
  KvStore store_;
  uint64_t applied_ = 0;
  uint64_t mutation_digest_ = 0xCBF29CE484222325ull;
};

}  // namespace hovercraft

#endif  // SRC_APP_KVSTORE_SERVICE_H_
