#include "src/app/kvstore/store.h"

#include <algorithm>
#include <charconv>

#include "src/common/buffer.h"

namespace hovercraft {

const KvStore::Value* KvStore::Find(std::string_view key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

KvStore::Value* KvStore::Find(std::string_view key) {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

void KvStore::Set(std::string_view key, std::string_view value) {
  map_[std::string(key)] = StringValue(value);
}

Result<std::string> KvStore::Get(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr) {
    return NotFoundError("no such key");
  }
  const auto* s = std::get_if<StringValue>(v);
  if (s == nullptr) {
    return FailedPreconditionError("wrong type");
  }
  return *s;
}

bool KvStore::Del(std::string_view key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return false;
  }
  map_.erase(it);
  return true;
}

Status KvStore::Hset(std::string_view key, std::string_view field, std::string_view value) {
  Value* v = Find(key);
  if (v == nullptr) {
    HashValue h;
    h.emplace(std::string(field), std::string(value));
    map_.emplace(std::string(key), std::move(h));
    return Status::Ok();
  }
  auto* h = std::get_if<HashValue>(v);
  if (h == nullptr) {
    return FailedPreconditionError("wrong type");
  }
  (*h)[std::string(field)] = std::string(value);
  return Status::Ok();
}

Result<std::string> KvStore::Hget(std::string_view key, std::string_view field) const {
  const Value* v = Find(key);
  if (v == nullptr) {
    return NotFoundError("no such key");
  }
  const auto* h = std::get_if<HashValue>(v);
  if (h == nullptr) {
    return FailedPreconditionError("wrong type");
  }
  auto it = h->find(std::string(field));
  if (it == h->end()) {
    return NotFoundError("no such field");
  }
  return it->second;
}

Result<size_t> KvStore::Rpush(std::string_view key, std::string_view value) {
  Value* v = Find(key);
  if (v == nullptr) {
    ListValue l;
    l.emplace_back(value);
    map_.emplace(std::string(key), std::move(l));
    return size_t{1};
  }
  auto* l = std::get_if<ListValue>(v);
  if (l == nullptr) {
    return Result<size_t>(FailedPreconditionError("wrong type"));
  }
  l->emplace_back(value);
  return l->size();
}

Result<std::vector<std::string>> KvStore::Lrange(std::string_view key, int32_t start,
                                                 int32_t stop) const {
  const Value* v = Find(key);
  if (v == nullptr) {
    return NotFoundError("no such key");
  }
  const auto* l = std::get_if<ListValue>(v);
  if (l == nullptr) {
    return Result<std::vector<std::string>>(FailedPreconditionError("wrong type"));
  }
  const int64_t n = static_cast<int64_t>(l->size());
  int64_t a = start < 0 ? n + start : start;
  int64_t b = stop < 0 ? n + stop : stop;
  a = std::clamp<int64_t>(a, 0, n);
  b = std::clamp<int64_t>(b, -1, n - 1);
  std::vector<std::string> out;
  for (int64_t i = a; i <= b; ++i) {
    out.push_back((*l)[static_cast<size_t>(i)]);
  }
  return out;
}

Result<std::vector<std::string>> KvStore::ScanTail(std::string_view key, int32_t limit) const {
  const Value* v = Find(key);
  if (v == nullptr) {
    return NotFoundError("no such key");
  }
  const auto* l = std::get_if<ListValue>(v);
  if (l == nullptr) {
    return Result<std::vector<std::string>>(FailedPreconditionError("wrong type"));
  }
  const size_t count = std::min<size_t>(static_cast<size_t>(std::max(limit, 0)), l->size());
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back((*l)[l->size() - 1 - i]);  // newest first
  }
  return out;
}


Result<int64_t> KvStore::Incr(std::string_view key) {
  Value* v = Find(key);
  if (v == nullptr) {
    map_.emplace(std::string(key), StringValue("1"));
    return int64_t{1};
  }
  auto* s = std::get_if<StringValue>(v);
  if (s == nullptr) {
    return Result<int64_t>(FailedPreconditionError("wrong type"));
  }
  int64_t current = 0;
  const auto [ptr, ec] = std::from_chars(s->data(), s->data() + s->size(), current);
  if (ec != std::errc{} || ptr != s->data() + s->size()) {
    return Result<int64_t>(FailedPreconditionError("value is not an integer"));
  }
  ++current;
  *s = std::to_string(current);
  return current;
}

Result<size_t> KvStore::Append(std::string_view key, std::string_view suffix) {
  Value* v = Find(key);
  if (v == nullptr) {
    map_.emplace(std::string(key), StringValue(suffix));
    return suffix.size();
  }
  auto* s = std::get_if<StringValue>(v);
  if (s == nullptr) {
    return Result<size_t>(FailedPreconditionError("wrong type"));
  }
  s->append(suffix);
  return s->size();
}

Result<bool> KvStore::Setnx(std::string_view key, std::string_view value) {
  if (Find(key) != nullptr) {
    return false;
  }
  map_.emplace(std::string(key), StringValue(value));
  return true;
}

Result<bool> KvStore::Hdel(std::string_view key, std::string_view field) {
  Value* v = Find(key);
  if (v == nullptr) {
    return NotFoundError("no such key");
  }
  auto* h = std::get_if<HashValue>(v);
  if (h == nullptr) {
    return Result<bool>(FailedPreconditionError("wrong type"));
  }
  return h->erase(std::string(field)) > 0;
}

Result<std::string> KvStore::Lpop(std::string_view key) {
  Value* v = Find(key);
  if (v == nullptr) {
    return NotFoundError("no such key");
  }
  auto* l = std::get_if<ListValue>(v);
  if (l == nullptr) {
    return Result<std::string>(FailedPreconditionError("wrong type"));
  }
  if (l->empty()) {
    return NotFoundError("empty list");
  }
  std::string out = std::move(l->front());
  l->pop_front();
  return out;
}

Result<size_t> KvStore::Llen(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr) {
    return size_t{0};
  }
  const auto* l = std::get_if<ListValue>(v);
  if (l == nullptr) {
    return Result<size_t>(FailedPreconditionError("wrong type"));
  }
  return l->size();
}

Result<bool> KvStore::Sadd(std::string_view key, std::string_view member) {
  Value* v = Find(key);
  if (v == nullptr) {
    SetValue set;
    set.emplace(member);
    map_.emplace(std::string(key), std::move(set));
    return true;
  }
  auto* set = std::get_if<SetValue>(v);
  if (set == nullptr) {
    return Result<bool>(FailedPreconditionError("wrong type"));
  }
  return set->emplace(member).second;
}

Result<bool> KvStore::Srem(std::string_view key, std::string_view member) {
  Value* v = Find(key);
  if (v == nullptr) {
    return NotFoundError("no such key");
  }
  auto* set = std::get_if<SetValue>(v);
  if (set == nullptr) {
    return Result<bool>(FailedPreconditionError("wrong type"));
  }
  return set->erase(std::string(member)) > 0;
}

Result<bool> KvStore::Sismember(std::string_view key, std::string_view member) const {
  const Value* v = Find(key);
  if (v == nullptr) {
    return false;
  }
  const auto* set = std::get_if<SetValue>(v);
  if (set == nullptr) {
    return Result<bool>(FailedPreconditionError("wrong type"));
  }
  return set->count(std::string(member)) > 0;
}

Result<size_t> KvStore::Scard(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr) {
    return size_t{0};
  }
  const auto* set = std::get_if<SetValue>(v);
  if (set == nullptr) {
    return Result<size_t>(FailedPreconditionError("wrong type"));
  }
  return set->size();
}

uint64_t KvStore::ContentDigest() const {
  uint64_t digest = 0;
  for (const auto& [key, value] : map_) {
    uint64_t h = Fnv1aHash(key);
    if (const auto* s = std::get_if<StringValue>(&value)) {
      h = Fnv1aHash(*s, h ^ 1);
    } else if (const auto* hv = std::get_if<HashValue>(&value)) {
      uint64_t inner = 0;
      for (const auto& [f, val] : *hv) {
        inner ^= Fnv1aHash(val, Fnv1aHash(f) ^ 2);
      }
      h ^= inner;
    } else if (const auto* l = std::get_if<ListValue>(&value)) {
      uint64_t seq = h ^ 3;
      for (const std::string& item : *l) {
        seq = Fnv1aHash(item, seq);
      }
      h = seq;
    } else if (const auto* set = std::get_if<SetValue>(&value)) {
      uint64_t inner = 0;
      for (const std::string& member : *set) {
        inner ^= Fnv1aHash(member, h ^ 4);  // order-insensitive within the set
      }
      h ^= inner;
    }
    digest ^= h;  // order-insensitive across keys
  }
  return digest;
}

namespace {

enum class ValueTag : uint8_t { kString = 0, kHash = 1, kList = 2, kSet = 3 };

void SerializeEntry(BufferWriter& out, const std::string& key, const KvStore::Value& value) {
  out.PutString(key);
  if (const auto* s = std::get_if<KvStore::StringValue>(&value)) {
    out.PutU8(static_cast<uint8_t>(ValueTag::kString));
    out.PutString(*s);
  } else if (const auto* h = std::get_if<KvStore::HashValue>(&value)) {
    out.PutU8(static_cast<uint8_t>(ValueTag::kHash));
    out.PutU64(h->size());
    for (const auto& [field, v] : *h) {
      out.PutString(field);
      out.PutString(v);
    }
  } else if (const auto* l = std::get_if<KvStore::ListValue>(&value)) {
    out.PutU8(static_cast<uint8_t>(ValueTag::kList));
    out.PutU64(l->size());
    for (const std::string& item : *l) {
      out.PutString(item);
    }
  } else if (const auto* set = std::get_if<KvStore::SetValue>(&value)) {
    out.PutU8(static_cast<uint8_t>(ValueTag::kSet));
    out.PutU64(set->size());
    for (const std::string& member : *set) {
      out.PutString(member);
    }
  }
}

Status DeserializeEntry(BufferReader& in, std::string& key, KvStore::Value& value) {
  uint8_t tag = 0;
  if (Status s = in.GetString(key); !s.ok()) {
    return s;
  }
  if (Status s = in.GetU8(tag); !s.ok()) {
    return s;
  }
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kString: {
      std::string v;
      if (Status s = in.GetString(v); !s.ok()) {
        return s;
      }
      value = std::move(v);
      return Status::Ok();
    }
    case ValueTag::kHash: {
      uint64_t n = 0;
      if (Status s = in.GetU64(n); !s.ok()) {
        return s;
      }
      KvStore::HashValue h;
      h.reserve(n);
      for (uint64_t j = 0; j < n; ++j) {
        std::string field;
        std::string v;
        if (Status s = in.GetString(field); !s.ok()) {
          return s;
        }
        if (Status s = in.GetString(v); !s.ok()) {
          return s;
        }
        h.emplace(std::move(field), std::move(v));
      }
      value = std::move(h);
      return Status::Ok();
    }
    case ValueTag::kList: {
      uint64_t n = 0;
      if (Status s = in.GetU64(n); !s.ok()) {
        return s;
      }
      KvStore::ListValue l;
      for (uint64_t j = 0; j < n; ++j) {
        std::string item;
        if (Status s = in.GetString(item); !s.ok()) {
          return s;
        }
        l.push_back(std::move(item));
      }
      value = std::move(l);
      return Status::Ok();
    }
    case ValueTag::kSet: {
      uint64_t n = 0;
      if (Status s = in.GetU64(n); !s.ok()) {
        return s;
      }
      KvStore::SetValue set;
      set.reserve(n);
      for (uint64_t j = 0; j < n; ++j) {
        std::string member;
        if (Status s = in.GetString(member); !s.ok()) {
          return s;
        }
        set.insert(std::move(member));
      }
      value = std::move(set);
      return Status::Ok();
    }
    default:
      return InvalidArgumentError("unknown kv value tag");
  }
}

}  // namespace

void KvStore::SerializeTo(BufferWriter& out) const {
  out.PutU64(map_.size());
  for (const auto& [key, value] : map_) {
    SerializeEntry(out, key, value);
  }
}

Status KvStore::DeserializeFrom(BufferReader& in) {
  uint64_t count = 0;
  if (Status s = in.GetU64(count); !s.ok()) {
    return s;
  }
  decltype(map_) fresh;
  fresh.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    Value value;
    if (Status s = DeserializeEntry(in, key, value); !s.ok()) {
      return s;
    }
    fresh.insert_or_assign(std::move(key), std::move(value));
  }
  map_ = std::move(fresh);
  return Status::Ok();
}

void KvStore::SerializePartTo(BufferWriter& out, const KeyPredicate& pred) const {
  uint64_t matched = 0;
  for (const auto& [key, value] : map_) {
    if (pred(key)) {
      ++matched;
    }
  }
  out.PutU64(matched);
  for (const auto& [key, value] : map_) {
    if (pred(key)) {
      SerializeEntry(out, key, value);
    }
  }
}

Status KvStore::MergeFrom(BufferReader& in) {
  uint64_t count = 0;
  if (Status s = in.GetU64(count); !s.ok()) {
    return s;
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    Value value;
    if (Status s = DeserializeEntry(in, key, value); !s.ok()) {
      return s;
    }
    map_.insert_or_assign(std::move(key), std::move(value));
  }
  return Status::Ok();
}

size_t KvStore::EraseIf(const KeyPredicate& pred) {
  size_t erased = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    if (pred(it->first)) {
      it = map_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

}  // namespace hovercraft
