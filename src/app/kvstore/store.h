// The in-memory data-structure store (the paper's Redis stand-in).
// Pure data structures + operations; no costs, no I/O — KvService layers the
// cost model and the StateMachine interface on top.
#ifndef SRC_APP_KVSTORE_STORE_H_
#define SRC_APP_KVSTORE_STORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"

namespace hovercraft {

class KvStore {
 public:
  using StringValue = std::string;
  using HashValue = std::unordered_map<std::string, std::string>;
  using ListValue = std::deque<std::string>;
  using SetValue = std::unordered_set<std::string>;
  using Value = std::variant<StringValue, HashValue, ListValue, SetValue>;

  // -- strings --
  void Set(std::string_view key, std::string_view value);
  Result<std::string> Get(std::string_view key) const;
  bool Del(std::string_view key);

  // Atomic integer increment (the value must parse as a decimal integer or
  // be absent); returns the new value.
  Result<int64_t> Incr(std::string_view key);
  // Appends to a string value (creating it); returns the new length.
  Result<size_t> Append(std::string_view key, std::string_view suffix);
  // Sets only if the key is absent; returns true if it was set.
  Result<bool> Setnx(std::string_view key, std::string_view value);

  // -- hashes --
  Status Hset(std::string_view key, std::string_view field, std::string_view value);
  Result<std::string> Hget(std::string_view key, std::string_view field) const;
  // Removes a field; returns true if it existed.
  Result<bool> Hdel(std::string_view key, std::string_view field);

  // -- lists --
  // Appends and returns the new length.
  Result<size_t> Rpush(std::string_view key, std::string_view value);
  // Negative indices count from the tail, Redis-style (-1 = last element).
  Result<std::vector<std::string>> Lrange(std::string_view key, int32_t start,
                                          int32_t stop) const;
  // The last min(limit, length) elements, newest first — the YCSB-E SCAN
  // ("query the last posts in a conversation").
  Result<std::vector<std::string>> ScanTail(std::string_view key, int32_t limit) const;

  // Pops the list head; kNotFound on missing/empty.
  Result<std::string> Lpop(std::string_view key);
  Result<size_t> Llen(std::string_view key) const;

  // -- sets --
  Result<bool> Sadd(std::string_view key, std::string_view member);
  Result<bool> Srem(std::string_view key, std::string_view member);
  Result<bool> Sismember(std::string_view key, std::string_view member) const;
  Result<size_t> Scard(std::string_view key) const;

  size_t key_count() const { return map_.size(); }
  bool Exists(std::string_view key) const { return Find(key) != nullptr; }

  // Order-insensitive digest over all keys and values; replicas with equal
  // content produce equal digests.
  uint64_t ContentDigest() const;

  // Full-store serialization for snapshot transfers. Deserialize replaces
  // the current contents.
  void SerializeTo(BufferWriter& out) const;
  Status DeserializeFrom(BufferReader& in);

  // --- Shard-move range handoff (src/shard). The predicate selects keys by
  // name, keeping the store agnostic of the shard hash. ---
  using KeyPredicate = std::function<bool(std::string_view)>;
  // Serializes only the keys matching `pred`, same wire format as
  // SerializeTo (so MergeFrom reads either).
  void SerializePartTo(BufferWriter& out, const KeyPredicate& pred) const;
  // Inserts the payload's keys into the current contents (replacing on
  // collision), instead of wiping the store like DeserializeFrom.
  Status MergeFrom(BufferReader& in);
  // Removes all keys matching `pred`; returns how many were erased.
  size_t EraseIf(const KeyPredicate& pred);

 private:
  const Value* Find(std::string_view key) const;
  Value* Find(std::string_view key);

  // Heterogeneous lookup so string_view probes do not allocate.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const { return std::hash<std::string_view>{}(s); }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a == b; }
  };

  std::unordered_map<std::string, Value, Hash, Eq> map_;
};

}  // namespace hovercraft

#endif  // SRC_APP_KVSTORE_STORE_H_
