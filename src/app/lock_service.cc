#include "src/app/lock_service.h"

#include <utility>

#include "src/common/buffer.h"
#include "src/common/check.h"

namespace hovercraft {

Body EncodeLockCommand(const LockCommand& cmd) {
  BufferWriter w(cmd.lock.size() + cmd.owner.size() + 16);
  w.PutU8(static_cast<uint8_t>(cmd.op));
  w.PutString(cmd.lock);
  w.PutString(cmd.owner);
  return MakeBody(w.TakeBytes());
}

Result<LockCommand> DecodeLockCommand(const Body& body) {
  if (body == nullptr) {
    return InvalidArgumentError("null lock command");
  }
  BufferReader r(*body);
  uint8_t op = 0;
  if (Status s = r.GetU8(op); !s.ok()) {
    return s;
  }
  if (op > static_cast<uint8_t>(LockOpcode::kGetHolder)) {
    return InvalidArgumentError("unknown lock opcode");
  }
  LockCommand cmd;
  cmd.op = static_cast<LockOpcode>(op);
  if (Status s = r.GetString(cmd.lock); !s.ok()) {
    return s;
  }
  if (Status s = r.GetString(cmd.owner); !s.ok()) {
    return s;
  }
  if (cmd.lock.empty()) {
    return InvalidArgumentError("empty lock name");
  }
  return cmd;
}

Body EncodeLockReply(const LockReply& reply) {
  BufferWriter w(reply.holder.size() + 16);
  w.PutU8(static_cast<uint8_t>(reply.status));
  w.PutString(reply.holder);
  w.PutU64(reply.fencing_token);
  return MakeBody(w.TakeBytes());
}

Result<LockReply> DecodeLockReply(const Body& body) {
  if (body == nullptr) {
    return InvalidArgumentError("null lock reply");
  }
  BufferReader r(*body);
  uint8_t status = 0;
  if (Status s = r.GetU8(status); !s.ok()) {
    return s;
  }
  if (status > static_cast<uint8_t>(LockReplyStatus::kError)) {
    return InvalidArgumentError("unknown lock reply status");
  }
  LockReply reply;
  reply.status = static_cast<LockReplyStatus>(status);
  if (Status s = r.GetString(reply.holder); !s.ok()) {
    return s;
  }
  if (Status s = r.GetU64(reply.fencing_token); !s.ok()) {
    return s;
  }
  return reply;
}

LockReply LockService::Apply(const LockCommand& cmd) {
  LockReply reply;
  switch (cmd.op) {
    case LockOpcode::kAcquire: {
      auto it = holders_.find(cmd.lock);
      if (it == holders_.end()) {
        const uint64_t token = next_token_++;
        holders_.emplace(cmd.lock, Holder{cmd.owner, token});
        reply.status = LockReplyStatus::kGranted;
        reply.holder = cmd.owner;
        reply.fencing_token = token;
      } else if (it->second.owner == cmd.owner) {
        // Re-acquisition by the holder is idempotent (same token), so a
        // client retrying a lost reply does not deadlock against itself.
        reply.status = LockReplyStatus::kGranted;
        reply.holder = cmd.owner;
        reply.fencing_token = it->second.token;
      } else {
        reply.status = LockReplyStatus::kHeld;
        reply.holder = it->second.owner;
        reply.fencing_token = it->second.token;
      }
      break;
    }
    case LockOpcode::kRelease: {
      auto it = holders_.find(cmd.lock);
      if (it != holders_.end() && it->second.owner == cmd.owner) {
        holders_.erase(it);
        reply.status = LockReplyStatus::kReleased;
      } else {
        reply.status = LockReplyStatus::kNotHolder;
        if (it != holders_.end()) {
          reply.holder = it->second.owner;
        }
      }
      break;
    }
    case LockOpcode::kGetHolder: {
      auto it = holders_.find(cmd.lock);
      if (it == holders_.end()) {
        reply.status = LockReplyStatus::kFree;
      } else {
        reply.status = LockReplyStatus::kHolder;
        reply.holder = it->second.owner;
        reply.fencing_token = it->second.token;
      }
      break;
    }
  }
  return reply;
}

ExecResult LockService::Execute(const RpcRequest& request) {
  Result<LockCommand> cmd = DecodeLockCommand(request.body());
  HC_CHECK(cmd.ok());
  HC_CHECK(!request.read_only() || cmd.value().IsReadOnly());
  const LockReply reply = Apply(cmd.value());
  if (!cmd.value().IsReadOnly()) {
    ++applied_;
  }
  const TimeNs cost =
      costs_.base_ns + static_cast<TimeNs>(costs_.name_byte_ns *
                                           static_cast<double>(cmd.value().lock.size() +
                                                               cmd.value().owner.size()));
  return ExecResult{cost, EncodeLockReply(reply)};
}

uint64_t LockService::Digest() const {
  uint64_t digest = Fnv1aHash("lock-service") ^ next_token_ ^ (applied_ << 17);
  for (const auto& [lock, holder] : holders_) {
    digest ^= Fnv1aHash(holder.owner, Fnv1aHash(lock) ^ holder.token);
  }
  return digest;
}

Body LockService::SnapshotState() const {
  BufferWriter w(64 + holders_.size() * 48);
  w.PutU64(next_token_);
  w.PutU64(applied_);
  w.PutU64(holders_.size());
  for (const auto& [lock, holder] : holders_) {
    w.PutString(lock);
    w.PutString(holder.owner);
    w.PutU64(holder.token);
  }
  return MakeBody(w.TakeBytes());
}

Status LockService::RestoreState(const Body& snapshot) {
  if (snapshot == nullptr) {
    return InvalidArgumentError("null snapshot");
  }
  BufferReader r(*snapshot);
  uint64_t next_token = 0;
  uint64_t applied = 0;
  uint64_t count = 0;
  if (Status s = r.GetU64(next_token); !s.ok()) {
    return s;
  }
  if (Status s = r.GetU64(applied); !s.ok()) {
    return s;
  }
  if (Status s = r.GetU64(count); !s.ok()) {
    return s;
  }
  decltype(holders_) fresh;
  fresh.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string lock;
    Holder holder;
    if (Status s = r.GetString(lock); !s.ok()) {
      return s;
    }
    if (Status s = r.GetString(holder.owner); !s.ok()) {
      return s;
    }
    if (Status s = r.GetU64(holder.token); !s.ok()) {
      return s;
    }
    fresh.emplace(std::move(lock), std::move(holder));
  }
  holders_ = std::move(fresh);
  next_token_ = next_token;
  applied_ = applied;
  return Status::Ok();
}

}  // namespace hovercraft
