// A coordination/lock service in the style of Chubby and etcd — the
// archetypal consumer of state machine replication (paper section 2.1:
// "SMR systems ... manage the hard, centralized state at the core of
// large-scale distributed services"). Demonstrates a second realistic
// application running unmodified on HovercRaft.
//
// Locks are owned by string-named clients with fencing tokens: every
// successful acquisition returns a monotonically increasing token, so a
// delayed or replayed holder can be rejected by downstream services — the
// standard defence against zombie lock holders.
#ifndef SRC_APP_LOCK_SERVICE_H_
#define SRC_APP_LOCK_SERVICE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/app/state_machine.h"
#include "src/common/status.h"

namespace hovercraft {

enum class LockOpcode : uint8_t {
  kAcquire = 0,   // take the lock if free (or already held by this owner)
  kRelease = 1,   // release if held by this owner
  kGetHolder = 2, // read-only: current holder + token
};

struct LockCommand {
  LockOpcode op = LockOpcode::kGetHolder;
  std::string lock;
  std::string owner;  // unused for kGetHolder

  bool IsReadOnly() const { return op == LockOpcode::kGetHolder; }
};

Body EncodeLockCommand(const LockCommand& cmd);
Result<LockCommand> DecodeLockCommand(const Body& body);

enum class LockReplyStatus : uint8_t {
  kGranted = 0,   // acquire succeeded (token in the reply)
  kHeld = 1,      // acquire failed: someone else holds it
  kReleased = 2,  // release succeeded
  kNotHolder = 3, // release failed: not the holder
  kFree = 4,      // get: nobody holds it
  kHolder = 5,    // get: holder + token in the reply
  kError = 6,
};

struct LockReply {
  LockReplyStatus status = LockReplyStatus::kError;
  std::string holder;
  uint64_t fencing_token = 0;
};

Body EncodeLockReply(const LockReply& reply);
Result<LockReply> DecodeLockReply(const Body& body);

class LockService final : public StateMachine {
 public:
  struct Costs {
    TimeNs base_ns = 500;            // map probe + reply build
    double name_byte_ns = 2.0;       // hashing/compares over names
  };

  LockService() : LockService(Costs{}) {}
  explicit LockService(Costs costs) : costs_(costs) {}

  ExecResult Execute(const RpcRequest& request) override;
  uint64_t Digest() const override;
  uint64_t ApplyCount() const override { return applied_; }
  Body SnapshotState() const override;
  Status RestoreState(const Body& snapshot) override;

  // Direct (non-replicated) application; used by tests and the example.
  LockReply Apply(const LockCommand& cmd);

  size_t held_locks() const { return holders_.size(); }

 private:
  struct Holder {
    std::string owner;
    uint64_t token;
  };

  Costs costs_;
  std::unordered_map<std::string, Holder> holders_;
  uint64_t next_token_ = 1;
  uint64_t applied_ = 0;
};

}  // namespace hovercraft

#endif  // SRC_APP_LOCK_SERVICE_H_
