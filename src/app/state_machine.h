// The deterministic application interface.
//
// HovercRaft's promise (paper section 3.1) is that any RPC service with
// deterministic behaviour becomes fault-tolerant with no code changes: the
// SMR layer feeds it totally-ordered requests. A StateMachine implementation
// must satisfy: identical request sequences produce identical state and
// identical replies on every replica (checked by Digest() in tests).
//
// Execution cost is returned as virtual nanoseconds and charged to the
// executing node's app thread — the simulator's substitute for really
// burning CPU (see DESIGN.md, substitution table).
#ifndef SRC_APP_STATE_MACHINE_H_
#define SRC_APP_STATE_MACHINE_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/r2p2/messages.h"

namespace hovercraft {

struct ExecResult {
  TimeNs service_time = 0;  // app-thread CPU consumed
  Body reply;               // reply body (may be null for empty replies)
};

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  // Executes one request. Called in log order; mutates state for read-write
  // requests. Read-only requests (request.read_only()) must not mutate.
  virtual ExecResult Execute(const RpcRequest& request) = 0;

  // Order-sensitive digest of the current state; equal digests on two
  // replicas imply identical state. Used by the replication tests.
  virtual uint64_t Digest() const = 0;

  // Number of read-write operations applied (convenience for tests).
  virtual uint64_t ApplyCount() const = 0;

  // Serializes the complete state for InstallSnapshot transfers. Restore on
  // a fresh instance must reproduce Digest()/ApplyCount() exactly.
  virtual Body SnapshotState() const = 0;
  virtual Status RestoreState(const Body& snapshot) = 0;

  // --- Shard-move range handoff (src/shard, docs/sharding.md). A live shard
  // move freezes a slot range at the source group, captures exactly that
  // range, installs it at the destination, and finally drops it from the
  // source. Slots are ShardSlotOf(key) values (src/r2p2/shard.h). The
  // defaults refuse, so only shard-aware applications participate. ---
  virtual Body CaptureRange(uint32_t lo_slot, uint32_t hi_slot) const {
    (void)lo_slot;
    (void)hi_slot;
    return nullptr;
  }
  virtual Status InstallRange(const Body& range) {
    (void)range;
    return FailedPreconditionError("state machine does not support shard moves");
  }
  virtual Status DropRange(uint32_t lo_slot, uint32_t hi_slot) {
    (void)lo_slot;
    (void)hi_slot;
    return FailedPreconditionError("state machine does not support shard moves");
  }
};

}  // namespace hovercraft

#endif  // SRC_APP_STATE_MACHINE_H_
