#include "src/app/synthetic.h"

#include <algorithm>

#include "src/common/buffer.h"
#include "src/common/check.h"

namespace hovercraft {

Body EncodeSyntheticOp(const SyntheticOp& op, int32_t total_bytes) {
  const int32_t size = std::max(total_bytes, kSyntheticHeaderBytes);
  BufferWriter w(static_cast<size_t>(size));
  w.PutI64(op.service_time);
  w.PutU32(static_cast<uint32_t>(op.reply_bytes));
  std::vector<uint8_t> bytes = w.TakeBytes();
  bytes.resize(static_cast<size_t>(size), 0);
  return MakeBody(std::move(bytes));
}

Result<SyntheticOp> DecodeSyntheticOp(const Body& body) {
  if (body == nullptr) {
    return InvalidArgumentError("null synthetic body");
  }
  BufferReader r(*body);
  SyntheticOp op;
  if (Status s = r.GetI64(op.service_time); !s.ok()) {
    return s;
  }
  uint32_t reply_bytes = 0;
  if (Status s = r.GetU32(reply_bytes); !s.ok()) {
    return s;
  }
  op.reply_bytes = static_cast<int32_t>(reply_bytes);
  if (op.service_time < 0) {
    return InvalidArgumentError("negative service time");
  }
  return op;
}

ExecResult SyntheticService::Execute(const RpcRequest& request) {
  Result<SyntheticOp> op = DecodeSyntheticOp(request.body());
  HC_CHECK(op.ok());
  if (!request.read_only()) {
    ++applied_;
    // Order-sensitive digest: hash the request identity into the rolling
    // state so replicas that applied a different sequence diverge.
    digest_ ^= RequestIdHash()(request.rid()) + 0x9E3779B97F4A7C15ull + (digest_ << 6);
    digest_ *= 0x100000001B3ull;
  }
  return ExecResult{op.value().service_time, ReplyOfSize(op.value().reply_bytes)};
}

Body SyntheticService::SnapshotState() const {
  BufferWriter w(16);
  w.PutU64(applied_);
  w.PutU64(digest_);
  return MakeBody(w.TakeBytes());
}

Status SyntheticService::RestoreState(const Body& snapshot) {
  if (snapshot == nullptr) {
    return InvalidArgumentError("null snapshot");
  }
  BufferReader r(*snapshot);
  uint64_t applied = 0;
  uint64_t digest = 0;
  if (Status s = r.GetU64(applied); !s.ok()) {
    return s;
  }
  if (Status s = r.GetU64(digest); !s.ok()) {
    return s;
  }
  applied_ = applied;
  digest_ = digest;
  return Status::Ok();
}

Body SyntheticService::ReplyOfSize(int32_t bytes) {
  auto it = reply_cache_.find(bytes);
  if (it != reply_cache_.end()) {
    return it->second;
  }
  Body body = MakeBody(std::vector<uint8_t>(static_cast<size_t>(std::max(bytes, 1)), 0));
  reply_cache_.emplace(bytes, body);
  return body;
}

}  // namespace hovercraft
