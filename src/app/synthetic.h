// The synthetic microbenchmark service (paper section 7): configurable
// service time, request size, and reply size, with requests tagged read-only
// or read-write by the client.
//
// The client samples the service time (so a request costs the same on every
// replica — required for deterministic behaviour) and encodes it, together
// with the desired reply size, at the front of the request body; the rest of
// the body is padding up to the requested size.
#ifndef SRC_APP_SYNTHETIC_H_
#define SRC_APP_SYNTHETIC_H_

#include <cstdint>
#include <unordered_map>

#include "src/app/state_machine.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace hovercraft {

struct SyntheticOp {
  TimeNs service_time = 0;
  int32_t reply_bytes = 0;
};

// Minimum body needed to carry the operation header.
constexpr int32_t kSyntheticHeaderBytes = 12;

// Encodes `op` into a body of exactly max(total_bytes, header) bytes.
Body EncodeSyntheticOp(const SyntheticOp& op, int32_t total_bytes);

Result<SyntheticOp> DecodeSyntheticOp(const Body& body);

class SyntheticService final : public StateMachine {
 public:
  ExecResult Execute(const RpcRequest& request) override;
  uint64_t Digest() const override { return digest_; }
  uint64_t ApplyCount() const override { return applied_; }
  Body SnapshotState() const override;
  Status RestoreState(const Body& snapshot) override;

 private:
  Body ReplyOfSize(int32_t bytes);

  uint64_t applied_ = 0;
  uint64_t digest_ = 0xCBF29CE484222325ull;
  // Replies are content-free; cache one buffer per size to avoid allocating
  // megabytes per second of zeroes in long runs.
  std::unordered_map<int32_t, Body> reply_cache_;
};

}  // namespace hovercraft

#endif  // SRC_APP_SYNTHETIC_H_
