#include "src/app/ycsb.h"

#include <utility>

#include "src/common/check.h"

namespace hovercraft {

YcsbEGenerator::YcsbEGenerator(const YcsbEConfig& config)
    : config_(config), zipf_(config.conversation_count, config.zipf_theta) {
  HC_CHECK_GT(config.conversation_count, 0u);
  HC_CHECK_GT(config.record_fields, 0);
  HC_CHECK_GT(config.field_bytes, 0);
}

std::string YcsbEGenerator::ConversationKey(uint64_t id) {
  return "conv:" + std::to_string(id);
}

std::string YcsbEGenerator::MakeRecord(Rng& rng) const {
  // field0=<bytes>;field1=<bytes>;... Content does not matter for the
  // workload; fill each field from one RNG draw to keep generation cheap.
  std::string record;
  record.reserve(static_cast<size_t>(config_.record_fields) *
                 (static_cast<size_t>(config_.field_bytes) + 8));
  for (int32_t f = 0; f < config_.record_fields; ++f) {
    record += "field";
    record += std::to_string(f);
    record += '=';
    const char fill = static_cast<char>('a' + rng.NextBelow(26));
    record.append(static_cast<size_t>(config_.field_bytes), fill);
    record += ';';
  }
  return record;
}

KvCommand YcsbEGenerator::Next(Rng& rng) const {
  KvCommand cmd;
  cmd.key = ConversationKey(zipf_.Next(rng));
  if (rng.NextBool(config_.scan_fraction)) {
    cmd.op = KvOpcode::kYScan;
    cmd.scan_limit = config_.scan_limit;
  } else {
    cmd.op = KvOpcode::kYInsert;
    cmd.value = MakeRecord(rng);
  }
  return cmd;
}

std::vector<KvCommand> YcsbEGenerator::PreloadCommands(Rng& rng) const {
  std::vector<KvCommand> out;
  out.reserve(config_.conversation_count *
              static_cast<size_t>(config_.preload_per_conversation));
  for (uint64_t c = 0; c < config_.conversation_count; ++c) {
    for (int32_t i = 0; i < config_.preload_per_conversation; ++i) {
      KvCommand cmd;
      cmd.op = KvOpcode::kYInsert;
      cmd.key = ConversationKey(c);
      cmd.value = MakeRecord(rng);
      out.push_back(std::move(cmd));
    }
  }
  return out;
}

}  // namespace hovercraft
