// YCSB workload E (paper section 7.5): threaded conversations.
// 95% SCAN (read the latest posts of a conversation) and 5% INSERT (append a
// new 1 KB post of 10 x 100 B fields), with conversation popularity drawn
// from the standard YCSB zipfian distribution.
#ifndef SRC_APP_YCSB_H_
#define SRC_APP_YCSB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/app/kvstore/command.h"
#include "src/common/random.h"

namespace hovercraft {

struct YcsbEConfig {
  uint64_t conversation_count = 2'000;
  double zipf_theta = 0.99;
  double scan_fraction = 0.95;
  int32_t scan_limit = 10;  // max elements returned by SCAN (paper setting)
  int32_t record_fields = 10;
  int32_t field_bytes = 100;  // 1 KB records
  // Posts inserted per conversation before measurement starts, so early
  // scans see realistic records.
  int32_t preload_per_conversation = 10;
};

class YcsbEGenerator {
 public:
  explicit YcsbEGenerator(const YcsbEConfig& config);

  // Next operation of the E mix. Read-only iff the command is a SCAN.
  KvCommand Next(Rng& rng) const;

  // Commands that populate the store before the run.
  std::vector<KvCommand> PreloadCommands(Rng& rng) const;

  // One 1 KB record: `record_fields` fields of `field_bytes` each.
  std::string MakeRecord(Rng& rng) const;

  static std::string ConversationKey(uint64_t id);

  const YcsbEConfig& config() const { return config_; }

 private:
  YcsbEConfig config_;
  ZipfianGenerator zipf_;
};

}  // namespace hovercraft

#endif  // SRC_APP_YCSB_H_
