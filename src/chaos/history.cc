#include "src/chaos/history.h"

#include <utility>

#include "src/common/check.h"

namespace hovercraft {

void KvHistoryRecorder::OnInvoke(HostId client, uint64_t seq, R2p2Policy /*policy*/,
                                 const Body& body, TimeNs at) {
  Result<KvCommand> cmd = DecodeKvCommand(body);
  HC_CHECK(cmd.ok());  // the chaos workload only sends KV commands
  Slot slot;
  slot.op.client = client;
  slot.op.seq = seq;
  slot.op.invoke = at;
  slot.op.cmd = cmd.TakeValue();
  const size_t idx = ops_.size();
  ops_.push_back(std::move(slot));
  const bool inserted = index_.emplace(Key{client, seq}, idx).second;
  HC_CHECK(inserted);  // (client, seq) is unique by construction
}

void KvHistoryRecorder::OnComplete(HostId client, uint64_t seq, const Body& reply, TimeNs at) {
  auto it = index_.find(Key{client, seq});
  HC_CHECK(it != index_.end());
  Slot& slot = ops_[it->second];
  HC_CHECK(slot.op.open());  // ClientHost delivers at most one completion
  slot.op.complete = at;
  Result<KvReply> decoded = DecodeKvReply(reply);
  HC_CHECK(decoded.ok());
  slot.op.reply = decoded.TakeValue();
  slot.op.has_reply = true;
  ++completed_;
}

void KvHistoryRecorder::OnNack(HostId client, uint64_t seq, TimeNs /*at*/) {
  auto it = index_.find(Key{client, seq});
  HC_CHECK(it != index_.end());
  ops_[it->second].nacked = true;
  ++nacked_;
}

std::vector<KvOperation> KvHistoryRecorder::History() const {
  std::vector<KvOperation> out;
  out.reserve(ops_.size());
  for (const Slot& slot : ops_) {
    if (!slot.nacked) {
      out.push_back(slot.op);
    }
  }
  return out;
}

}  // namespace hovercraft
