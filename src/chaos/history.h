// Client-observed history capture for the chaos harness.
//
// A KvHistoryRecorder attaches to one or more ClientHosts (via the
// ClientHost::Observer hook) and records, per request, the invoke/complete
// interval together with the decoded KV command and reply. The resulting
// history is what the linearizability checker consumes: correctness is judged
// by what clients saw, not by internal replica state.
#ifndef SRC_CHAOS_HISTORY_H_
#define SRC_CHAOS_HISTORY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/app/kvstore/command.h"
#include "src/common/types.h"
#include "src/loadgen/client.h"

namespace hovercraft {

// One client-observed KV operation. `complete < 0` means the client never
// received a response: the operation is open-ended and may have taken effect
// at any time after `invoke`, or never.
struct KvOperation {
  HostId client = kInvalidHost;
  uint64_t seq = 0;
  TimeNs invoke = 0;
  TimeNs complete = -1;
  KvCommand cmd;
  bool has_reply = false;
  KvReply reply;

  bool open() const { return complete < 0; }
};

class KvHistoryRecorder final : public ClientHost::Observer {
 public:
  void OnInvoke(HostId client, uint64_t seq, R2p2Policy policy, const Body& body,
                TimeNs at) override;
  void OnComplete(HostId client, uint64_t seq, const Body& reply, TimeNs at) override;
  void OnNack(HostId client, uint64_t seq, TimeNs at) override;

  // The recorded history in invocation order. NACKed requests are excluded:
  // the flow-control middlebox rejects them before they reach consensus, so
  // they never took effect. The recorder keeps recording afterwards.
  std::vector<KvOperation> History() const;

  size_t invoked() const { return ops_.size(); }
  size_t completed() const { return completed_; }
  size_t nacked() const { return nacked_; }

 private:
  struct Slot {
    KvOperation op;
    bool nacked = false;
  };
  struct Key {
    HostId client;
    uint64_t seq;
    friend bool operator==(const Key& a, const Key& b) {
      return a.client == b.client && a.seq == b.seq;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t x = static_cast<uint64_t>(k.client) * 0x9E3779B97F4A7C15ull + k.seq;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      return static_cast<size_t>(x ^ (x >> 31));
    }
  };

  std::vector<Slot> ops_;                          // invocation order
  std::unordered_map<Key, size_t, KeyHash> index_;  // (client, seq) -> slot
  size_t completed_ = 0;
  size_t nacked_ = 0;
};

}  // namespace hovercraft

#endif  // SRC_CHAOS_HISTORY_H_
