// A KV workload tailored for linearizability checking: a small hot keyspace
// (so reads and writes genuinely race), a mixed op set exercising replies of
// every status, and globally unique written values (so a stale or lost write
// is observable, not coincidentally identical).
#ifndef SRC_CHAOS_KV_WORKLOAD_H_
#define SRC_CHAOS_KV_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "src/app/kvstore/command.h"
#include "src/loadgen/workload.h"

namespace hovercraft {

struct ChaosKvWorkloadConfig {
  int32_t keys = 8;
  double get_fraction = 0.30;
  double exists_fraction = 0.05;
  double del_fraction = 0.05;
  double incr_fraction = 0.10;
  double append_fraction = 0.10;
  double setnx_fraction = 0.05;
  // Remainder: plain SET.
  // Tag written values with this so values are unique across clients too.
  uint64_t value_tag = 0;
};

class ChaosKvWorkload final : public Workload {
 public:
  explicit ChaosKvWorkload(ChaosKvWorkloadConfig config) : config_(config) {}

  Op Next(Rng& rng) override {
    KvCommand cmd;
    cmd.key = "k" + std::to_string(rng.NextBelow(static_cast<uint64_t>(config_.keys)));
    double p = rng.NextDouble();
    if ((p -= config_.get_fraction) < 0) {
      cmd.op = KvOpcode::kGet;
    } else if ((p -= config_.exists_fraction) < 0) {
      cmd.op = KvOpcode::kExists;
    } else if ((p -= config_.del_fraction) < 0) {
      cmd.op = KvOpcode::kDel;
    } else if ((p -= config_.incr_fraction) < 0) {
      cmd.op = KvOpcode::kIncr;
    } else if ((p -= config_.append_fraction) < 0) {
      cmd.op = KvOpcode::kAppend;
      cmd.value = UniqueValue();
    } else if ((p -= config_.setnx_fraction) < 0) {
      cmd.op = KvOpcode::kSetnx;
      cmd.value = UniqueValue();
    } else {
      cmd.op = KvOpcode::kSet;
      cmd.value = UniqueValue();
    }
    Op out;
    out.body = EncodeKvCommand(cmd);
    out.read_only = cmd.IsReadOnly();
    out.shard_slot = ShardSlotOf(cmd.key);
    return out;
  }

 private:
  std::string UniqueValue() {
    return "v" + std::to_string(config_.value_tag) + "." + std::to_string(++counter_);
  }

  ChaosKvWorkloadConfig config_;
  uint64_t counter_ = 0;
};

}  // namespace hovercraft

#endif  // SRC_CHAOS_KV_WORKLOAD_H_
