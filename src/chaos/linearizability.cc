#include "src/chaos/linearizability.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_set>
#include <utility>

#include "src/app/kvstore/service.h"
#include "src/common/random.h"

namespace hovercraft {
namespace {

bool RepliesEqual(const KvReply& a, const KvReply& b) {
  return a.status == b.status && a.values == b.values;
}

// Search over one key's sub-history. The model is a KvService holding only
// this key, so copying it per branch is cheap and its store digest doubles
// as the memoization state hash.
class KeySearch {
 public:
  KeySearch(std::vector<const KvOperation*> ops, uint64_t* states_budget)
      : ops_(std::move(ops)), states_budget_(states_budget) {
    std::sort(ops_.begin(), ops_.end(), [](const KvOperation* a, const KvOperation* b) {
      if (a->invoke != b->invoke) {
        return a->invoke < b->invoke;
      }
      return std::pair(a->client, a->seq) < std::pair(b->client, b->seq);
    });
    // Zobrist tags for the remaining-set hash; fixed seed so verdicts replay.
    Rng rng(0x11EA21ab1e5eed00ull ^ static_cast<uint64_t>(ops_.size()));
    tags_.reserve(ops_.size());
    for (size_t i = 0; i < ops_.size(); ++i) {
      tags_.push_back(rng.Next());
    }
  }

  // True if a linearization witness exists.
  bool Run(bool* budget_exhausted) {
    remaining_.assign(ops_.size(), 1);
    size_t with_reply = 0;
    uint64_t rem_hash = 0;
    for (size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i]->has_reply) {
        ++with_reply;
      }
      rem_hash ^= tags_[i];
    }
    const bool ok = Dfs(KvService{}, with_reply, rem_hash);
    if (budget_hit_) {
      *budget_exhausted = true;
    }
    return ok;
  }

 private:
  bool Dfs(KvService model, size_t with_reply, uint64_t rem_hash) {
    if (with_reply == 0) {
      return true;  // only open invocations remain; they may all be dropped
    }
    if (budget_hit_) {
      return false;
    }
    const uint64_t sig = rem_hash ^ model.store().ContentDigest();
    if (!visited_.insert(sig).second) {
      return false;  // an equivalent configuration already failed
    }
    if (*states_budget_ == 0) {
      budget_hit_ = true;
      return false;
    }
    --*states_budget_;

    // An operation may be linearized next iff no other remaining operation
    // completed before it was invoked.
    TimeNs min_complete = std::numeric_limits<TimeNs>::max();
    for (size_t i = 0; i < ops_.size(); ++i) {
      if (remaining_[i] && !ops_[i]->open()) {
        min_complete = std::min(min_complete, ops_[i]->complete);
      }
    }
    for (size_t i = 0; i < ops_.size(); ++i) {
      if (!remaining_[i] || ops_[i]->invoke > min_complete) {
        continue;
      }
      const KvOperation& op = *ops_[i];
      if (op.has_reply) {
        KvService next = model;
        const KvReply expected = next.Apply(op.cmd);
        if (!RepliesEqual(expected, op.reply)) {
          continue;
        }
        remaining_[i] = 0;
        if (Dfs(std::move(next), with_reply - 1, rem_hash ^ tags_[i])) {
          return true;
        }
        remaining_[i] = 1;
      } else {
        // An open invocation either took effect at this point (its result
        // was never observed, so any reply is consistent) ...
        KvService next = model;
        next.Apply(op.cmd);
        remaining_[i] = 0;
        if (Dfs(std::move(next), with_reply, rem_hash ^ tags_[i])) {
          return true;
        }
        // ... or never took effect at all.
        if (Dfs(model, with_reply, rem_hash ^ tags_[i])) {
          return true;
        }
        remaining_[i] = 1;
      }
    }
    return false;
  }

  std::vector<const KvOperation*> ops_;
  std::vector<uint64_t> tags_;
  std::vector<char> remaining_;
  std::unordered_set<uint64_t> visited_;
  uint64_t* states_budget_;
  bool budget_hit_ = false;
};

}  // namespace

LinearizabilityResult CheckKvLinearizability(const std::vector<KvOperation>& history,
                                             uint64_t max_states) {
  LinearizabilityResult result;
  result.checked_ops = history.size();

  // Partition by key (linearizability is compositional over objects).
  // std::map keeps key order deterministic across runs.
  std::map<std::string, std::vector<const KvOperation*>> by_key;
  for (const KvOperation& op : history) {
    if (op.open()) {
      ++result.open_ops;
    }
    by_key[op.cmd.key].push_back(&op);
  }
  result.keys = by_key.size();

  uint64_t budget = max_states;
  for (auto& [key, ops] : by_key) {
    KeySearch search(std::move(ops), &budget);
    bool exhausted = false;
    const bool ok = search.Run(&exhausted);
    result.states_explored = max_states - budget;
    if (exhausted) {
      result.budget_exhausted = true;
    }
    if (!ok) {
      result.linearizable = false;
      result.failure_key = key;
      return result;
    }
  }
  return result;
}

}  // namespace hovercraft
