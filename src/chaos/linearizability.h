// Offline linearizability checker for client-observed KV histories.
//
// Wing & Gong style exhaustive search over linearization orders, with two
// standard optimizations: the history is first partitioned by key (every
// KvCommand touches exactly one key, and linearizability is compositional —
// Herlihy & Wing), and the search memoizes visited (remaining-ops, model
// state) configurations so equivalent interleavings are explored once.
//
// The sequential specification is KvService::Apply itself, so the checker
// accepts exactly the replies a single serial KvService would produce.
//
// Scope/limits: single-key operations only (all current KvCommands qualify);
// open invocations (no response observed) may be linearized at any point
// after their invoke or dropped entirely; NACKed requests must be stripped
// before checking (KvHistoryRecorder does this). The search is exponential
// in the worst case — `max_states` bounds it, and a run that exhausts the
// budget reports conclusive() == false rather than guessing.
#ifndef SRC_CHAOS_LINEARIZABILITY_H_
#define SRC_CHAOS_LINEARIZABILITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/history.h"

namespace hovercraft {

struct LinearizabilityResult {
  bool linearizable = true;
  bool budget_exhausted = false;
  std::string failure_key;   // first key whose sub-history has no witness
  size_t checked_ops = 0;    // ops examined (complete + open)
  size_t open_ops = 0;       // invocations with no observed response
  size_t keys = 0;           // distinct keys in the history
  uint64_t states_explored = 0;

  // True when the verdict is definitive (the search was not cut short).
  bool conclusive() const { return linearizable || !budget_exhausted; }
};

// Checks the history for linearizability. `max_states` caps the total number
// of memoized search states across all keys.
LinearizabilityResult CheckKvLinearizability(const std::vector<KvOperation>& history,
                                             uint64_t max_states = 20'000'000);

}  // namespace hovercraft

#endif  // SRC_CHAOS_LINEARIZABILITY_H_
