#include "src/chaos/nemesis.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/obs/observability.h"
#include "src/raft/messages.h"

namespace hovercraft {
namespace {

// Scripted fault kinds the "random" schedule draws from.
enum class RandomFault {
  kIsolateLeader = 0,
  kSplitHalves,
  kAsymLeader,
  kDelay,
  kReorder,
  kFlap,
  kCrashFollower,
  kCrashLeader,
  kCount,
};

std::string FormatMs(TimeNs t) {
  return std::to_string(t / 1'000'000) + "." + std::to_string((t / 100'000) % 10) + "ms";
}

}  // namespace

const std::vector<std::string>& Nemesis::ScheduleNames() {
  static const std::vector<std::string> kNames = {
      "none",           "partition-leader", "partition-halves",    "asym-leader",
      "delay",          "reorder",          "flap",                "crash-follower",
      "crash-leader",   "drop-replies",     "crash-replier",       "churn-cycle",
      "churn-remove-leader",                "churn-add-partition", "rejoin-storm",
      "forged-vote",    "timer-skew",       "stale-read-probe",    "disk-power-fail",
      "disk-torn-write",                    "disk-corrupt-entry",  "disk-fsync-stall",
      "random",
  };
  return kNames;
}

bool Nemesis::IsValidSchedule(const std::string& name) {
  const auto& names = ScheduleNames();
  return std::find(names.begin(), names.end(), name) != names.end();
}

Nemesis::Nemesis(Cluster* cluster, const NemesisConfig& config)
    : cluster_(cluster), config_(config), rng_(config.seed ^ 0xC4A05C4A05ull) {
  HC_CHECK(IsValidSchedule(config_.schedule));
  HC_CHECK_LE(config_.start, config_.end);
}

void Nemesis::At(TimeNs when, std::function<void()> fn) {
  cluster_->sim().At(when, std::move(fn));
}

void Nemesis::Log(const std::string& text) {
  events_.push_back(FormatMs(cluster_->sim().Now()) + " " + text);
  // Nemesis faults double as trace annotations on the cluster-wide track.
  if (auto* tracer = obs::TracerOf(&cluster_->sim())) {
    tracer->Instant(obs::kClusterPid, obs::kTidNemesis, "nemesis",
                    cluster_->sim().Now(), text);
  }
}

NodeId Nemesis::CurrentLeaderOr(NodeId fallback) {
  const NodeId leader = cluster_->LeaderId();
  return leader == kInvalidNode ? fallback : leader;
}

NodeId Nemesis::PickFollower(NodeId leader) {
  // A live non-leader *member* if one exists; otherwise any non-leader
  // member. Spares and removed nodes are not followers — faulting them
  // would waste the fault on a node the cluster no longer depends on.
  std::vector<NodeId> live;
  std::vector<NodeId> any;
  for (NodeId node : cluster_->Members()) {
    if (node == leader) {
      continue;
    }
    any.push_back(node);
    if (!cluster_->server(node).failed()) {
      live.push_back(node);
    }
  }
  const auto& pool = live.empty() ? any : live;
  if (pool.empty()) {
    return leader;  // single-member cluster; callers degrade to a no-op fault
  }
  return pool[rng_.NextBelow(pool.size())];
}

NodeId Nemesis::PickSpare() {
  // A built-but-unconfigured server the management plane could add.
  std::vector<NodeId> spares;
  for (NodeId node = 0; node < cluster_->total_node_count(); ++node) {
    if (!cluster_->IsMember(node) && !cluster_->server(node).failed() &&
        cluster_->server(node).raft() != nullptr &&
        !cluster_->server(node).raft()->retired()) {
      spares.push_back(node);
    }
  }
  if (spares.empty()) {
    return kInvalidNode;
  }
  return spares[rng_.NextBelow(spares.size())];
}

void Nemesis::AddSpare() {
  const NodeId spare = PickSpare();
  if (spare == kInvalidNode) {
    Log("churn: add skipped (no spare available)");
    return;
  }
  cluster_->AddServer(spare);
  Log("churn: add node " + std::to_string(spare));
}

void Nemesis::RemoveOne(bool leader) {
  // Never churn below two members: the management plane would happily shrink
  // to a singleton, but a one-node "cluster" makes every later fault in the
  // schedule (and the post-window checks) degenerate.
  if (cluster_->Members().size() <= 2) {
    Log("churn: remove skipped (membership at minimum)");
    return;
  }
  const NodeId victim = leader ? CurrentLeaderOr(0) : PickFollower(CurrentLeaderOr(0));
  cluster_->RemoveServer(victim);
  Log("churn: remove node " + std::to_string(victim) + (leader ? " (leader)" : " (follower)"));
}

void Nemesis::IsolateLeader() {
  const NodeId leader = CurrentLeaderOr(0);
  cluster_->network().SetPartitions({{cluster_->server_host(leader)}});
  Log("partition: isolate node " + std::to_string(leader) + " (leader)");
}

void Nemesis::IsolateFollower() {
  // Rejoin-storm phase 1: cut a follower off completely. Without PreVote it
  // keeps timing out and bumping its term in the dark; the heal turns that
  // inflated term into a leader deposition. With PreVote its polls fail
  // (no quorum reachable) and the term never moves.
  const NodeId leader = CurrentLeaderOr(0);
  isolated_node_ = PickFollower(leader);
  cluster_->network().SetPartitions({{cluster_->server_host(isolated_node_)}});
  Log("rejoin-storm: isolate node " + std::to_string(isolated_node_) +
      " (term " + std::to_string(cluster_->server(isolated_node_).raft()->term()) + ")");
}

void Nemesis::HealIsolated() {
  if (isolated_node_ == kInvalidNode) {
    HealNetwork();
    return;
  }
  const Term term = cluster_->server(isolated_node_).raft()->term();
  cluster_->network().ClearFaults();
  cut_links_.clear();
  Log("rejoin-storm: heal, node " + std::to_string(isolated_node_) +
      " rejoins at term " + std::to_string(term));
  isolated_node_ = kInvalidNode;
}

void Nemesis::ForgedVotePressure() {
  // Inject a crafted RequestVote — higher term, a real member's identity, an
  // empty log — directly into every live server, modeling a spoofed or
  // replayed vote packet. With CheckQuorum stickiness the recipients ignore
  // it (live leader contact / own quorum evidence); without it the inflated
  // term deposes the leader even though the "candidate" could never win.
  const NodeId leader = CurrentLeaderOr(0);
  const NodeId forged_id = PickFollower(leader);
  Term max_term = 0;
  for (NodeId node : cluster_->Members()) {
    if (!cluster_->server(node).failed()) {
      max_term = std::max(max_term, cluster_->server(node).raft()->term());
    }
  }
  const RequestVoteReq forged(max_term + 100, forged_id, /*last_idx=*/0,
                              /*last_term=*/0);
  int injected = 0;
  for (NodeId node : cluster_->Members()) {
    if (node == forged_id || cluster_->server(node).failed()) {
      continue;
    }
    cluster_->server(node).raft()->OnRequestVote(forged);
    ++injected;
  }
  Log("forged-vote: injected term " + std::to_string(max_term + 100) +
      " RequestVote as node " + std::to_string(forged_id) + " into " +
      std::to_string(injected) + " node(s)");
}

void Nemesis::SkewFollowerTimer(double scale) {
  // Timer-skew: shrink one follower's election timeout below the heartbeat
  // interval, so it fires mid-heartbeat-gap on a perfectly healthy network.
  // PreVote turns each firing into a failed poll; without it every firing is
  // a real term bump and an election the cluster must absorb.
  const NodeId victim = PickFollower(CurrentLeaderOr(0));
  cluster_->server(victim).raft()->SkewElectionTimer(scale);
  skewed_nodes_.push_back(victim);
  Log("timer-skew: node " + std::to_string(victim) + " election timer x" +
      std::to_string(scale));
}

void Nemesis::RestoreTimers() {
  for (NodeId node : skewed_nodes_) {
    cluster_->server(node).raft()->SkewElectionTimer(1.0);
  }
  Log("timer-skew: restore " + std::to_string(skewed_nodes_.size()) + " timer(s)");
  skewed_nodes_.clear();
}

void Nemesis::StaleReadPartition() {
  // Cut the leader's server-to-server links in both directions but leave its
  // client-facing links (and the middleboxes) intact: the deposed-but-unaware
  // leader keeps receiving multicast reads while the majority elects a new
  // leader and commits fresh writes. A leader that honors its read lease
  // refuses these reads once the lease expires; one that trusts a skewed
  // lease serves stale values the linearizability checker will flag.
  const NodeId leader = CurrentLeaderOr(0);
  const HostId src = cluster_->server_host(leader);
  for (NodeId node = 0; node < cluster_->total_node_count(); ++node) {
    if (node == leader) {
      continue;
    }
    const HostId dst = cluster_->server_host(node);
    cluster_->network().BlockLink(src, dst);
    cluster_->network().BlockLink(dst, src);
    cut_links_.emplace_back(src, dst);
    cut_links_.emplace_back(dst, src);
  }
  Log("stale-read-probe: cut node " + std::to_string(leader) +
      " (leader) from peers, client links stay up");
}

void Nemesis::SplitHalves() {
  // Cut off a minority that contains the current leader, forcing the
  // majority side (which also holds clients and middleboxes — they stay in
  // group 0) to elect a new leader.
  const NodeId leader = CurrentLeaderOr(0);
  const int32_t minority =
      (static_cast<int32_t>(cluster_->Members().size()) - 1) / 2;
  std::vector<HostId> cut = {cluster_->server_host(leader)};
  while (static_cast<int32_t>(cut.size()) < minority) {
    const NodeId extra = PickFollower(leader);
    const HostId host = cluster_->server_host(extra);
    if (std::find(cut.begin(), cut.end(), host) == cut.end()) {
      cut.push_back(host);
    }
  }
  cluster_->network().SetPartitions({cut});
  Log("partition: split off " + std::to_string(cut.size()) +
      " node(s) incl. leader node " + std::to_string(leader));
}

void Nemesis::AsymBlockLeader() {
  // One-way cut: the leader hears everyone but its own frames vanish.
  // Followers miss heartbeats and start an election; the stale leader learns
  // the new term from the inbound traffic it still receives.
  const NodeId leader = CurrentLeaderOr(0);
  const HostId src = cluster_->server_host(leader);
  for (NodeId node = 0; node < cluster_->total_node_count(); ++node) {
    if (node == leader) {
      continue;
    }
    const HostId dst = cluster_->server_host(node);
    cluster_->network().BlockLink(src, dst);
    cut_links_.emplace_back(src, dst);
  }
  Log("asym: block outbound links of node " + std::to_string(leader) + " (leader)");
}

void Nemesis::InjectDelay(TimeNs extra) {
  // Slow every server-to-server link (spares included, so learner catch-up
  // traffic is slowed too); client traffic keeps normal latency, so
  // replication lags the multicast data path (stresses the unordered store
  // and recovery).
  const int32_t n = cluster_->total_node_count();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a != b) {
        cluster_->network().SetLinkDelay(cluster_->server_host(a), cluster_->server_host(b),
                                         extra);
      }
    }
  }
  Log("delay: +" + FormatMs(extra) + " on all server-server links");
}

void Nemesis::InjectReorder(double probability, TimeNs max_extra) {
  cluster_->network().SetReorder(probability, max_extra);
  Log("reorder: p=" + std::to_string(probability) + " max_extra=" + FormatMs(max_extra));
}

void Nemesis::FlapLink(bool block) {
  if (block) {
    const NodeId leader = CurrentLeaderOr(0);
    const NodeId follower = PickFollower(leader);
    const HostId a = cluster_->server_host(leader);
    const HostId b = cluster_->server_host(follower);
    cluster_->network().BlockLink(a, b);
    cluster_->network().BlockLink(b, a);
    cut_links_.emplace_back(a, b);
    cut_links_.emplace_back(b, a);
    Log("flap: cut link node " + std::to_string(leader) + " <-> node " +
        std::to_string(follower));
  } else {
    for (const auto& [src, dst] : cut_links_) {
      cluster_->network().UnblockLink(src, dst);
    }
    cut_links_.clear();
    Log("flap: restore links");
  }
}

void Nemesis::CrashOne(bool leader) {
  // Keep a majority of the current membership alive: only crash when every
  // member is up. (With the smallest practical cluster, n = 3, a second
  // simultaneous crash would stall the window and the post-settle liveness
  // check.) Dead spares don't count against the gate — the members carry
  // the quorum.
  for (NodeId node : cluster_->Members()) {
    if (cluster_->server(node).failed()) {
      Log("crash: skipped (a member is already down)");
      return;
    }
  }
  const NodeId victim =
      leader ? CurrentLeaderOr(0) : PickFollower(CurrentLeaderOr(0));
  cluster_->KillNode(victim);
  Log("crash: node " + std::to_string(victim) + (leader ? " (leader)" : " (follower)"));
}

void Nemesis::DropReplies() {
  // Cut every live server's links toward the clients: requests still arrive,
  // get ordered and executed, but no reply (and no NACK) makes it back. Only
  // client retransmission can complete these operations — and only server-
  // side dedup keeps the retries from re-executing them.
  if (config_.clients.empty()) {
    Log("drop-replies: skipped (no client hosts configured)");
    return;
  }
  int cut = 0;
  for (NodeId node = 0; node < cluster_->total_node_count(); ++node) {
    if (cluster_->server(node).failed()) {
      continue;
    }
    const HostId src = cluster_->server_host(node);
    for (HostId client : config_.clients) {
      cluster_->network().BlockLink(src, client);
      cut_links_.emplace_back(src, client);
      ++cut;
    }
  }
  Log("drop-replies: cut " + std::to_string(cut) + " server->client link(s)");
}

void Nemesis::CutReplierReplies() {
  // Phase 1 of the crash-replier fault: a designated replier keeps executing
  // but its replies vanish. In the multicast modes any follower replies
  // under JBSQ; in VanillaRaft only the leader ever answers clients, so the
  // leader is the node whose silence loses replies.
  if (config_.clients.empty()) {
    Log("crash-replier: skipped (no client hosts configured)");
    return;
  }
  const NodeId victim = cluster_->config().mode == ClusterMode::kVanillaRaft
                            ? CurrentLeaderOr(0)
                            : PickFollower(CurrentLeaderOr(0));
  replier_victim_ = victim;
  const HostId src = cluster_->server_host(victim);
  for (HostId client : config_.clients) {
    cluster_->network().BlockLink(src, client);
    cut_links_.emplace_back(src, client);
  }
  Log("crash-replier: drop replies of node " + std::to_string(victim));
}

void Nemesis::CrashReplierVictim() {
  // Phase 2: kill the muted replier. Requests it executed-but-never-answered
  // now depend entirely on retransmission against the survivors.
  if (replier_victim_ == kInvalidNode) {
    return;
  }
  for (NodeId node : cluster_->Members()) {
    if (cluster_->server(node).failed()) {
      Log("crash-replier: crash skipped (a member is already down)");
      replier_victim_ = kInvalidNode;
      return;
    }
  }
  cluster_->KillNode(replier_victim_);
  Log("crash-replier: crash node " + std::to_string(replier_victim_));
  replier_victim_ = kInvalidNode;
}

void Nemesis::RestartDead() {
  for (NodeId node = 0; node < cluster_->total_node_count(); ++node) {
    if (cluster_->server(node).failed()) {
      cluster_->RestartNode(node);
      Log("restart: node " + std::to_string(node));
    }
  }
}

void Nemesis::PowerCycleAll(TimeNs outage, bool torn) {
  // Whole-cluster power loss: every live member's disk crashes at the same
  // instant (losing its unsynced suffix; `torn` leaves a partial final
  // record), then all of them restart through WAL recovery after `outage`.
  // Committed-and-acknowledged data survives iff it was fsynced before the
  // ack — which is exactly what the fsync-policy control toggles.
  int cut = 0;
  for (NodeId node : cluster_->Members()) {
    ReplicatedServer& server = cluster_->server(node);
    if (server.failed()) {
      continue;
    }
    if (torn && server.disk() != nullptr) {
      server.disk()->set_next_crash_torn();
    }
    cluster_->PowerFailNode(node);
    ++cut;
  }
  Log("disk: power-fail " + std::to_string(cut) + " node(s)" + (torn ? " (torn)" : ""));
  At(cluster_->sim().Now() + outage, [this] { RestartDead(); });
}

void Nemesis::DiskCorruptionCycle(TimeNs follower_outage, TimeNs leader_outage) {
  // Media corruption of durable, committed state. Target: on every follower,
  // the newest applied non-noop write entry still present in its WAL — an
  // entry whose reply a client may already hold. The leader is fail-stopped
  // (disk and memory intact, no power loss) so its log stays pristine and
  // protocol-aware recovery always has an intact copy to re-fetch from; the
  // stagger (followers restart quickly, leader slowly) gives the naive
  // control a window in which the amnesiac followers hold a quorum among
  // themselves. A power-failed leader would also lose its unsynced suffix —
  // entries committed through the follower pair's acks could then vanish
  // from every copy at once, which no recovery protocol can undo.
  const NodeId leader = CurrentLeaderOr(0);
  std::vector<NodeId> cycled;
  for (NodeId node : cluster_->Members()) {
    ReplicatedServer& server = cluster_->server(node);
    if (node == leader || server.failed() || server.raft() == nullptr ||
        server.storage() == nullptr) {
      continue;
    }
    const RaftLog& log = server.raft()->log();
    bool corrupted = false;
    for (LogIndex idx = server.raft()->applied_index(); idx >= log.first_index() && idx > 0;
         --idx) {
      const LogEntry& e = log.At(idx);
      if (!e.noop && !e.read_only && server.storage()->CorruptEntry(idx)) {
        Log("disk: corrupt entry " + std::to_string(idx) + " on node " + std::to_string(node));
        corrupted = true;
        break;
      }
    }
    if (!corrupted) {
      Log("disk: corrupt skipped on node " + std::to_string(node) +
          " (no applied write entry in WAL)");
    }
    cluster_->PowerFailNode(node);
    cycled.push_back(node);
  }
  Log("disk: power-fail " + std::to_string(cycled.size()) + " follower(s)");
  At(cluster_->sim().Now() + follower_outage, [this, cycled] {
    for (NodeId node : cycled) {
      cluster_->RestartNode(node);
      Log("restart: node " + std::to_string(node));
    }
  });
  if (!cluster_->server(leader).failed()) {
    cluster_->KillNode(leader);
    Log("disk: fail-stop node " + std::to_string(leader) + " (leader, slow restart)");
    At(cluster_->sim().Now() + leader_outage, [this, leader] {
      cluster_->RestartNode(leader);
      Log("restart: node " + std::to_string(leader) + " (leader)");
    });
  }
}

void Nemesis::StallDisks(TimeNs extra) {
  int stalled = 0;
  for (NodeId node : cluster_->Members()) {
    SimDisk* disk = cluster_->server(node).disk();
    if (disk != nullptr) {
      disk->set_stall(extra);
      ++stalled;
    }
  }
  disks_stalled_ = stalled > 0;
  Log("disk: fsync stall +" + FormatMs(extra) + " on " + std::to_string(stalled) + " disk(s)");
}

void Nemesis::HealDisks() {
  for (NodeId node = 0; node < cluster_->total_node_count(); ++node) {
    SimDisk* disk = cluster_->server(node).disk();
    if (disk != nullptr) {
      disk->set_stall(0);
    }
  }
  disks_stalled_ = false;
  Log("disk: heal fsync stalls");
}

void Nemesis::HealNetwork() {
  cluster_->network().ClearFaults();
  cut_links_.clear();
  Log("heal: clear all network faults");
}

void Nemesis::HealAll() {
  HealNetwork();
  RestartDead();
  if (!skewed_nodes_.empty()) {
    RestoreTimers();
  }
  if (disks_stalled_) {
    HealDisks();
  }
}

void Nemesis::Arm() {
  if (config_.schedule == "none") {
    return;
  }
  if (config_.schedule == "random") {
    ArmRandom();
  } else {
    ArmScripted();
  }
  // Safety net: whatever the schedule did, the window ends clean so the
  // settle phase can demand a live leader and converged replicas.
  At(config_.end, [this] { HealAll(); });
}

void Nemesis::ArmScripted() {
  const TimeNs s = config_.start;
  const TimeNs w = config_.end - config_.start;
  const std::string& name = config_.schedule;

  if (name == "partition-leader") {
    At(s + w / 8, [this] { IsolateLeader(); });
    At(s + w / 2, [this] { HealNetwork(); });
    At(s + 5 * w / 8, [this] { IsolateLeader(); });
    At(s + 7 * w / 8, [this] { HealNetwork(); });
  } else if (name == "partition-halves") {
    At(s + w / 8, [this] { SplitHalves(); });
    At(s + w / 2, [this] { HealNetwork(); });
    At(s + 5 * w / 8, [this] { SplitHalves(); });
    At(s + 7 * w / 8, [this] { HealNetwork(); });
  } else if (name == "asym-leader") {
    At(s + w / 8, [this] { AsymBlockLeader(); });
    At(s + 5 * w / 8, [this] { HealNetwork(); });
  } else if (name == "delay") {
    // Comparable to the election timeout: enough to trigger spurious
    // elections and deep reordering against the client multicast path.
    At(s + w / 8, [this] { InjectDelay(Millis(3)); });
    At(s + 3 * w / 4, [this] { HealNetwork(); });
  } else if (name == "reorder") {
    At(s + w / 8, [this] { InjectReorder(0.3, Millis(2)); });
    At(s + 3 * w / 4, [this] { HealNetwork(); });
  } else if (name == "flap") {
    for (int i = 0; i < 4; ++i) {
      const TimeNs cut = s + w / 8 + i * (w / 6);
      At(cut, [this] { FlapLink(true); });
      At(cut + w / 12, [this] { FlapLink(false); });
    }
  } else if (name == "crash-follower") {
    At(s + w / 8, [this] { CrashOne(false); });
    At(s + w / 2, [this] { RestartDead(); });
    At(s + 5 * w / 8, [this] { CrashOne(false); });
    At(s + 7 * w / 8, [this] { RestartDead(); });
  } else if (name == "crash-leader") {
    At(s + w / 8, [this] { CrashOne(true); });
    At(s + 5 * w / 8, [this] { RestartDead(); });
  } else if (name == "drop-replies") {
    At(s + w / 8, [this] { DropReplies(); });
    At(s + w / 2, [this] { HealNetwork(); });
    At(s + 5 * w / 8, [this] { DropReplies(); });
    At(s + 7 * w / 8, [this] { HealNetwork(); });
  } else if (name == "churn-cycle") {
    // Continuous replace loop: grow by a spare, shrink by a follower, twice.
    // Each change rides the management plane, which retries until commit, so
    // a proposal landing during an election window still goes through.
    At(s + w / 8, [this] { AddSpare(); });
    At(s + 3 * w / 8, [this] { RemoveOne(false); });
    At(s + 5 * w / 8, [this] { AddSpare(); });
    At(s + 7 * w / 8, [this] { RemoveOne(false); });
  } else if (name == "churn-remove-leader") {
    // Remove the node currently leading: it must commit its own removal,
    // step down, and retire; a spare then replaces it, and the new leader is
    // removed in turn.
    At(s + w / 8, [this] { RemoveOne(true); });
    At(s + w / 2, [this] { AddSpare(); });
    At(s + 3 * w / 4, [this] { RemoveOne(true); });
  } else if (name == "churn-add-partition") {
    // Propose an add while a partition is live. The split cuts off the old
    // leader; until the majority side elects, the stale leader may accept
    // (and later truncate) the config entry — the management plane must not
    // count that as done. After the heal, the add commits; then shrink back.
    At(s + w / 8, [this] { SplitHalves(); });
    At(s + 3 * w / 16, [this] { AddSpare(); });
    At(s + w / 2, [this] { HealNetwork(); });
    At(s + 11 * w / 16, [this] { RemoveOne(false); });
  } else if (name == "rejoin-storm") {
    // Half the window in the dark is dozens of election-timeout firings —
    // plenty of term inflation without PreVote, none with it. The long tail
    // after the heal gives a deposed cluster time to look "recovered"; the
    // disruption shows in leader_disruptions/max_term, not final liveness.
    At(s + w / 8, [this] { IsolateFollower(); });
    At(s + 5 * w / 8, [this] { HealIsolated(); });
  } else if (name == "forged-vote") {
    // Sustained pressure: a fresh forged vote every eighth of the window, so
    // an undefended cluster is re-deposed as fast as it re-elects.
    for (int i = 1; i <= 6; ++i) {
      At(s + i * w / 8, [this] { ForgedVotePressure(); });
    }
  } else if (name == "timer-skew") {
    // 0.02 x the [5,10]ms election timeout is 100-200us — below the mean
    // AppendEntries inter-arrival gap under load (replication traffic, not
    // just heartbeats, re-arms the election timer), so the skewed follower
    // genuinely fires on an otherwise fault-free network.
    At(s + w / 8, [this] { SkewFollowerTimer(0.02); });
    At(s + 3 * w / 4, [this] { RestoreTimers(); });
  } else if (name == "stale-read-probe") {
    At(s + w / 8, [this] { StaleReadPartition(); });
    At(s + 5 * w / 8, [this] { HealNetwork(); });
  } else if (name == "disk-power-fail") {
    // Two whole-cluster power cycles: acked writes straddle the cuts, so any
    // ack that outran its fsync is exposed as lost committed data.
    At(s + w / 4, [this] { PowerCycleAll(Millis(2), /*torn=*/false); });
    At(s + 5 * w / 8, [this] { PowerCycleAll(Millis(2), /*torn=*/false); });
  } else if (name == "disk-torn-write") {
    // Same cuts, but each crash leaves a torn final record: recovery must
    // CRC-detect the partial tail and truncate exactly to the synced prefix.
    At(s + w / 4, [this] { PowerCycleAll(Millis(2), /*torn=*/true); });
    At(s + 5 * w / 8, [this] { PowerCycleAll(Millis(2), /*torn=*/true); });
  } else if (name == "disk-corrupt-entry") {
    // One corruption cycle in mid-window so plenty of committed traffic
    // exists to corrupt, and the long leader outage gives the amnesiac
    // followers time to form a quorum if recovery lets them.
    At(s + w / 4, [this] { DiskCorruptionCycle(Millis(2), Millis(20)); });
  } else if (name == "disk-fsync-stall") {
    // Gray disk, then a power cut in the middle of the stall: a policy that
    // acks ahead of the (now glacial) fsync has a deep unsynced backlog to
    // lose; fsync-before-ack merely slows down.
    At(s + w / 8, [this] { StallDisks(Micros(500)); });
    At(s + w / 2, [this] { PowerCycleAll(Millis(2), /*torn=*/false); });
    At(s + 5 * w / 8, [this] { HealDisks(); });
  } else if (name == "crash-replier") {
    // Mute a replier's client-facing links, let it execute in the dark for a
    // slice of the window, then crash it: every request it answered-but-not-
    // delivered must be recovered by retransmission without double-applying.
    At(s + w / 8, [this] { CutReplierReplies(); });
    At(s + 3 * w / 16, [this] { CrashReplierVictim(); });
    At(s + w / 2, [this] { HealAll(); });
    At(s + 5 * w / 8, [this] { CutReplierReplies(); });
    At(s + 11 * w / 16, [this] { CrashReplierVictim(); });
    At(s + 7 * w / 8, [this] { HealAll(); });
  } else {
    HC_CHECK(false);  // IsValidSchedule covered everything else
  }
}

void Nemesis::ArmRandom() {
  At(config_.start + (config_.end - config_.start) / 16, [this] { RandomStep(); });
}

void Nemesis::RandomStep() {
  const TimeNs now = cluster_->sim().Now();
  const TimeNs w = config_.end - config_.start;
  // Stop injecting once a fault + heal no longer fits before the window end.
  if (now + w / 8 >= config_.end) {
    return;
  }
  const auto fault =
      static_cast<RandomFault>(rng_.NextBelow(static_cast<uint64_t>(RandomFault::kCount)));
  switch (fault) {
    case RandomFault::kIsolateLeader:
      IsolateLeader();
      break;
    case RandomFault::kSplitHalves:
      SplitHalves();
      break;
    case RandomFault::kAsymLeader:
      AsymBlockLeader();
      break;
    case RandomFault::kDelay:
      InjectDelay(Millis(static_cast<int64_t>(rng_.NextInRange(1, 4))));
      break;
    case RandomFault::kReorder:
      InjectReorder(0.1 + 0.3 * rng_.NextDouble(), Millis(2));
      break;
    case RandomFault::kFlap:
      FlapLink(true);
      break;
    case RandomFault::kCrashFollower:
      CrashOne(false);
      break;
    case RandomFault::kCrashLeader:
      CrashOne(true);
      break;
    case RandomFault::kCount:
      break;
  }
  // Hold the fault for a random slice of the window, heal, breathe, repeat.
  const TimeNs hold = w / 16 + static_cast<TimeNs>(rng_.NextBelow(
                                   static_cast<uint64_t>(w / 8)));
  const TimeNs gap = w / 32 + static_cast<TimeNs>(rng_.NextBelow(
                                  static_cast<uint64_t>(w / 16)));
  At(now + hold, [this] { HealAll(); });
  At(now + hold + gap, [this] { RandomStep(); });
}

}  // namespace hovercraft
