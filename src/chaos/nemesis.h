// The nemesis: drives fault schedules against a live Cluster.
//
// A Nemesis is armed once over a window [start, end] of virtual time and
// schedules fault-injection events on the cluster's simulator: symmetric and
// asymmetric network partitions, per-link extra delay, probabilistic
// reordering, link flaps, and node crash + restart. Every decision that
// depends on run state (e.g. "the current leader") is resolved at event fire
// time, so the same (schedule, seed, cluster config) triple replays the
// exact same fault sequence — the harness's whole point.
//
// Invariants the nemesis maintains:
//  - a majority of the *current members* stays alive at all times (crashes
//    are gated on member liveness, so checks after the window are
//    meaningful even while the membership churns);
//  - by `end`, all network faults are healed and all crashed nodes have been
//    restarted, so the post-window settle phase can expect convergence.
#ifndef SRC_CHAOS_NEMESIS_H_
#define SRC_CHAOS_NEMESIS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/core/cluster.h"

namespace hovercraft {

struct NemesisConfig {
  // One of Nemesis::ScheduleNames(), or "none" for a quiet control run.
  std::string schedule = "random";
  uint64_t seed = 1;
  TimeNs start = 0;
  TimeNs end = 0;
  // Client host ids, needed by the reply-facing schedules ("drop-replies",
  // "crash-replier"): they cut server->client links so requests execute but
  // their replies vanish — the retransmission/dedup stress case.
  std::vector<HostId> clients;
};

class Nemesis {
 public:
  // Scripted schedules plus "random" (a seeded sequence of the scripted
  // faults) and "none".
  static const std::vector<std::string>& ScheduleNames();
  static bool IsValidSchedule(const std::string& name);

  Nemesis(Cluster* cluster, const NemesisConfig& config);

  // Schedules the fault events for the configured window. Call once, before
  // running the simulator past `config.start`.
  void Arm();

  // Human-readable log of every fault fired, in order ("12.3ms isolate
  // leader node 1"). Lets a failing test print exactly what the nemesis did.
  const std::vector<std::string>& events() const { return events_; }

 private:
  void At(TimeNs when, std::function<void()> fn);
  void Log(const std::string& text);

  // Fire-time helpers; each resolves leader/followers/members at call time.
  NodeId CurrentLeaderOr(NodeId fallback);
  NodeId PickFollower(NodeId leader);
  NodeId PickSpare();
  // Membership churn (the "churn-*" schedules): propose config changes
  // through the cluster's management plane, which retries until commit.
  void AddSpare();
  void RemoveOne(bool leader);
  void IsolateLeader();
  // Adversarial attacks (docs/hardening.md): each reproduces a disruption
  // from "From Consensus to Chaos" that PreVote / CheckQuorum / ReadIndex
  // leases are supposed to neutralize. Run them with the defenses toggled
  // off for the control (attack succeeds), on for the proof (no disruption).
  void IsolateFollower();   // rejoin-storm: term inflation while cut off
  void HealIsolated();
  void ForgedVotePressure();  // inject crafted higher-term RequestVotes
  void SkewFollowerTimer(double scale);  // timer-skew: one hyperactive timer
  void RestoreTimers();
  void StaleReadPartition();  // cut leader<->servers, keep client links
  void SplitHalves();
  void AsymBlockLeader();
  void InjectDelay(TimeNs extra);
  void InjectReorder(double probability, TimeNs max_extra);
  void FlapLink(bool block);
  void CrashOne(bool leader);
  // Reply-facing faults: executed requests whose replies never arrive.
  void DropReplies();
  void CutReplierReplies();
  void CrashReplierVictim();
  void RestartDead();
  void HealNetwork();
  void HealAll();
  // Disk-fault schedules (docs/durability.md). PowerCycleAll cuts power to
  // every live member simultaneously — their disks lose the unsynced suffix
  // (a torn final record when `torn`) — and restarts them through WAL
  // recovery after `outage`. Under fsync-before-ack this is harmless; under
  // the ack-before-sync control the cluster-wide loss of acknowledged
  // writes is a linearizability violation the checker flags.
  void PowerCycleAll(TimeNs outage, bool torn);
  // Flips a byte inside a committed, applied write entry on every follower's
  // WAL, power-cycles the followers quickly, and fail-stops the leader (disk
  // intact) with a slow restart: the followers must either come back suspect
  // and wait for the leader's repair (protocol-aware recovery) or silently
  // truncate committed entries and elect each other over the amnesia
  // (--no-recovery control).
  void DiskCorruptionCycle(TimeNs follower_outage, TimeNs leader_outage);
  // Gray disk: every subsequent fsync costs `extra` more on every member.
  void StallDisks(TimeNs extra);
  void HealDisks();

  void ArmScripted();
  void ArmRandom();
  void RandomStep();

  Cluster* cluster_;
  NemesisConfig config_;
  Rng rng_;
  std::vector<std::string> events_;
  // The link currently flapping / blocked asymmetrically, so heal events
  // operate on what was actually cut rather than re-resolving the leader.
  std::vector<std::pair<HostId, HostId>> cut_links_;
  // Node whose replies were cut by CutReplierReplies; CrashReplierVictim
  // kills exactly that node so the fault models "replier crashed between
  // execute and reply".
  NodeId replier_victim_ = kInvalidNode;
  // Follower isolated by the rejoin-storm schedule, so the heal event can
  // report which node rejoined (and with what term it comes back).
  NodeId isolated_node_ = kInvalidNode;
  // Nodes whose election timers SkewFollowerTimer scaled; RestoreTimers
  // resets exactly these to 1.0.
  std::vector<NodeId> skewed_nodes_;
  // StallDisks is active; HealAll clears it exactly once.
  bool disks_stalled_ = false;
};

}  // namespace hovercraft

#endif  // SRC_CHAOS_NEMESIS_H_
