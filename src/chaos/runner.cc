#include "src/chaos/runner.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/app/kvstore/service.h"
#include "src/chaos/history.h"
#include "src/chaos/kv_workload.h"
#include "src/chaos/nemesis.h"
#include "src/core/cluster.h"
#include "src/loadgen/client.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/observability.h"
#include "src/obs/watchdog.h"

namespace hovercraft {

std::string ChaosRunResult::Describe() const {
  std::ostringstream out;
  out << "leader_alive=" << leader_alive << " digests_converged=" << digests_converged
      << " linearizable=" << linearizability.linearizable
      << " conclusive=" << linearizability.conclusive() << "\n"
      << "ops: invoked=" << invoked << " completed=" << completed << " nacked=" << nacked
      << " open=" << linearizability.open_ops << " keys=" << linearizability.keys
      << " states=" << linearizability.states_explored << "\n";
  if (!linearizability.failure_key.empty()) {
    out << "non-linearizable key: " << linearizability.failure_key << "\n";
  }
  out << "dropped_by_fault=" << dropped_by_fault << "\n"
      << "members (config idx " << final_config_idx << "):";
  for (NodeId m : final_members) {
    out << " " << m;
  }
  out << "\n"
      << "hardening: disruptions=" << leader_disruptions << " max_term=" << max_term
      << " prevote_rounds=" << prevote_rounds
      << " stepdowns_cq=" << stepdowns_check_quorum
      << " votes_ignored=" << votes_ignored_sticky
      << " reads_served=" << read_index_served
      << " reads_rejected=" << read_index_rejected << "\n"
      << "retry: retransmits=" << retransmits
      << " completed_after_retry=" << completed_after_retry << " abandoned=" << abandoned
      << " late_completions=" << late_completions << "\n"
      << "dedup: hits=" << dedup_hits << " cached_replies=" << dedup_replies
      << " double_applies=" << double_applies << "\n"
      << "storage: recoveries=" << wal_recoveries << " torn=" << torn_truncations
      << " corrupt=" << corrupt_records << " suspect=" << suspect_recoveries
      << " repaired=" << suspect_repaired
      << " acks_deferred=" << acks_deferred_persist
      << " acks_dropped=" << acks_dropped_crash
      << " bytes_lost=" << disk_bytes_lost
      << " committed_overwritten=" << committed_overwritten << "\n"
      << "watchdog: " << watchdog_summary << "\n";
  for (const std::string& state : node_states) {
    out << state << "\n";
  }
  out << "nemesis events:\n";
  for (const std::string& event : nemesis_events) {
    out << "  " << event << "\n";
  }
  return out.str();
}

ChaosRunResult RunChaosSchedule(const ChaosRunConfig& config) {
  ClusterConfig cc;
  cc.mode = config.mode;
  cc.nodes = config.nodes;
  cc.spare_nodes = config.spare_nodes;
  cc.seed = config.seed;
  cc.replier_policy = ReplierPolicy::kJbsq;
  cc.bounded_queue_depth = config.bounded_queue_depth;
  cc.flow_control_threshold = config.flow_control_threshold;
  cc.app_factory = config.app_factory
                       ? config.app_factory
                       : []() { return std::make_unique<KvService>(); };
  cc.server_template.dedup_enabled = config.dedup_enabled;
  cc.costs.tx_batching = config.tx_batching;
  cc.costs.tx_batch_delay_ns = config.tx_batch_delay_ns;
  cc.raft.pre_vote = config.pre_vote;
  cc.raft.check_quorum = config.check_quorum;
  cc.raft.read_index = config.read_index;
  cc.raft.read_lease_timeout = config.read_lease_timeout;
  cc.raft.persist_latency = config.persist_latency;
  cc.server_template.fsync_policy = config.fsync_policy;
  cc.server_template.wal_recovery = config.wal_recovery;
  // The stagger shortcut gives node 0 a permanently shorter election timeout.
  // Without pre-vote, a healed-but-stale node 0 then livelocks elections:
  // its 1-2 ms timer bumps the term faster than the 5-10 ms peers can elect.
  // Chaos runs need the symmetric timeouts real deployments would have.
  cc.stagger_first_election = false;
  cc.obs = config.obs;

  // Flight recorder + watchdog. The runner owns the recorder (rather than
  // letting the cluster build its default) so the watchdog can dump it on a
  // violation, and so the dump carries the repro command for this run.
  std::unique_ptr<obs::FlightRecorder> flight_recorder;
  std::unique_ptr<obs::Watchdog> watchdog;
  if (config.flight_recorder_depth > 0) {
    flight_recorder = std::make_unique<obs::FlightRecorder>(config.flight_recorder_depth);
    flight_recorder->set_repro(config.repro);
    flight_recorder->set_dump_path(config.dump_path);
    if (config.watchdog) {
      watchdog = std::make_unique<obs::Watchdog>(flight_recorder.get());
    }
  }
  cc.flight_recorder_depth = config.flight_recorder_depth;
  cc.flight_recorder = flight_recorder.get();
  cc.watchdog = watchdog.get();
  Cluster cluster(cc);

  ChaosRunResult result;
  if (cluster.WaitForLeader() == kInvalidNode) {
    if (watchdog != nullptr) {
      result.watchdog_ok = watchdog->ok();
      result.watchdog_summary = watchdog->Summary();
    }
    if (flight_recorder != nullptr) {
      flight_recorder->DumpNow("chaos run failed to elect a leader");
    }
    return result;  // leader_alive stays false
  }

  KvHistoryRecorder recorder;
  std::vector<std::unique_ptr<ClientHost>> clients;
  for (int32_t i = 0; i < config.clients; ++i) {
    ChaosKvWorkloadConfig wc;
    wc.keys = config.keys;
    wc.value_tag = static_cast<uint64_t>(i);  // written values unique per client
    auto client = std::make_unique<ClientHost>(
        &cluster.sim(), cluster.config().costs, [&cluster]() { return cluster.ClientTarget(); },
        std::make_unique<ChaosKvWorkload>(wc), config.rate_rps_per_client,
        config.seed * 1000 + static_cast<uint64_t>(i));
    client->set_outstanding_limit(config.outstanding_limit, config.give_up);
    if (config.retry_enabled) {
      ClientHost::RetryPolicy rp;
      rp.enabled = true;
      rp.initial_backoff = config.retry_initial_backoff;
      rp.max_backoff = config.retry_max_backoff;
      rp.max_attempts = config.retry_max_attempts;
      client->set_retry_policy(rp);
      // Retries bypass the flow-control middlebox (see Cluster::RetryTarget):
      // the first attempt consumed the admission slot already.
      client->set_retry_target([&cluster]() { return cluster.RetryTarget(); });
    }
    client->set_observer(&recorder);
    cluster.network().Attach(client.get());
    clients.push_back(std::move(client));
  }

  const TimeNs t0 = cluster.sim().Now();
  NemesisConfig nc;
  nc.schedule = config.schedule;
  nc.seed = config.seed;
  nc.start = t0;
  nc.end = t0 + config.duration;
  for (const auto& client : clients) {
    nc.clients.push_back(client->id());
  }
  Nemesis nemesis(&cluster, nc);
  nemesis.Arm();

  // Scripted membership events share the nemesis clock base (offsets from
  // the start of the load window).
  for (const auto& ev : config.add_server_at) {
    cluster.sim().At(t0 + ev.at, [&cluster, ev]() { cluster.AddServer(ev.node); });
  }
  for (const auto& ev : config.remove_server_at) {
    cluster.sim().At(t0 + ev.at, [&cluster, ev]() { cluster.RemoveServer(ev.node); });
  }

  // Watchdog mutation testing: mid-window, record a synthetic event stream
  // that violates exactly one invariant. Node ids and terms sit far outside
  // anything the real run produces, so the injected violation is
  // attributable in the dump and collateral-free for per-node state.
  if (flight_recorder != nullptr && !config.inject_violation.empty()) {
    obs::FlightRecorder* fr = flight_recorder.get();
    Simulator* sim = &cluster.sim();
    const std::string code = config.inject_violation;
    sim->At(t0 + config.duration / 2, [fr, sim, code]() {
      const TimeNs now = sim->Now();
      constexpr uint64_t kBigTerm = 1'000'000'000ull;
      const auto leader = static_cast<uint64_t>(obs::FrRole::kLeader);
      if (code == "dual-leader") {
        // Two leaders claim the same term: election safety broken.
        fr->Record(now, 90, obs::FrType::kRole, kBigTerm, leader);
        fr->Record(now, 91, obs::FrType::kRole, kBigTerm, leader);
      } else if (code == "commit-regression") {
        // A new leader truncated the log below a node's commit index.
        fr->Record(now, 92, obs::FrType::kCommitLoss, 5, 10);
      } else if (code == "lease-overlap") {
        // A grant below the cluster commit watermark: a deposed leader's
        // lease overlapped the new leader's tenure (stale read hazard).
        fr->Record(now, 93, obs::FrType::kCommit, kBigTerm, kBigTerm);
        fr->Record(now, 94, obs::FrType::kLeaseGrant, 1, 94);
      } else if (code == "double-apply") {
        // The session table let an already-executed write re-apply.
        fr->Record(now, 95, obs::FrType::kApply, 999'999, 1, 1);
      } else if (code == "flow-leak") {
        // The ledger reports more open slots than the event stream sums.
        fr->Record(now, kInvalidNode, obs::FrType::kFlow, 1'000'000, 1,
                   static_cast<uint32_t>(obs::FrFlowOp::kClose));
      }
    });
  }

  if (config.obs != nullptr) {
    if (auto* tracer = config.obs->tracer()) {
      for (size_t i = 0; i < clients.size(); ++i) {
        const int32_t pid = obs::TrackOfHost(clients[i]->id());
        tracer->NameProcess(pid, "client " + std::to_string(i));
        tracer->NameThread(pid, obs::kTidNet, "net thread");
        tracer->NameThread(pid, obs::kTidNic, "nic tx");
      }
    }
    config.obs->StartSampling(&cluster.sim(), t0 + config.duration + config.settle);
  }

  for (auto& client : clients) {
    client->StartLoad(t0, t0 + config.duration);
  }
  cluster.sim().RunUntil(t0 + config.duration + config.settle);

  if (config.obs != nullptr) {
    cluster.ExportMetrics(&config.obs->metrics());
  }

  result.leader_alive = cluster.LeaderId() != kInvalidNode;
  result.final_members = cluster.Members();
  result.final_config_idx = cluster.applied_config_idx();
  // Convergence is judged over the live members of the final committed
  // config: a removed (retired) replica or an unused spare legitimately
  // stops at whatever state it last applied.
  std::vector<NodeId> check_set;
  for (NodeId node : result.final_members) {
    if (!cluster.server(node).failed()) {
      check_set.push_back(node);
    }
  }
  result.digests_converged = !check_set.empty();
  const uint64_t digest0 = check_set.empty() ? 0 : cluster.server(check_set[0]).app().Digest();
  for (NodeId node : check_set) {
    if (cluster.server(node).app().Digest() != digest0) {
      result.digests_converged = false;
    }
  }
  for (NodeId node = 0; node < cluster.total_node_count(); ++node) {
    const ReplicatedServer& server = cluster.server(node);
    std::ostringstream state;
    state << "node " << node << ": term=" << server.raft()->term()
          << (server.IsLeader() ? " leader" : "")
          << (server.failed() ? " dead" : "")
          << (cluster.IsMember(node) ? "" : " non-member")
          << " applied=" << server.app().ApplyCount() << " digest=" << std::hex
          << server.app().Digest();
    result.node_states.push_back(state.str());
  }

  result.invoked = recorder.invoked();
  result.completed = recorder.completed();
  result.nacked = recorder.nacked();
  result.dropped_by_fault = cluster.network().dropped_by_fault();
  for (const auto& client : clients) {
    result.retransmits += client->total_retransmits();
    result.completed_after_retry += client->completed_after_retry();
    result.abandoned += client->total_abandoned();
    result.late_completions += client->late_completions();
  }
  uint64_t times_leader = 0;
  for (NodeId node = 0; node < cluster.total_node_count(); ++node) {
    const ServerStats& stats = cluster.server(node).server_stats();
    result.dedup_hits += stats.dedup_hits;
    result.dedup_replies += stats.dedup_replies;
    result.double_applies += stats.double_applies;
    result.read_index_served += stats.read_index_local + stats.read_index_remote;
    const RaftStats& rs = cluster.server(node).raft()->stats();
    times_leader += rs.times_leader;
    result.prevote_rounds += rs.prevote_rounds;
    result.stepdowns_check_quorum += rs.stepdowns_check_quorum;
    result.votes_ignored_sticky += rs.votes_ignored_sticky;
    result.read_index_rejected += rs.read_index_rejected;
    result.entries_appended += rs.entries_appended;
    result.acks_deferred_persist += rs.acks_deferred_persist;
    result.acks_dropped_crash += rs.acks_dropped_crash;
    result.suspect_repaired += rs.suspect_repaired;
    result.committed_overwritten += rs.committed_overwritten;
    result.max_term = std::max(result.max_term, cluster.server(node).raft()->term());
    if (const StableStorage* storage = cluster.server(node).storage(); storage != nullptr) {
      const StorageStats& ss = storage->stats();
      result.wal_recoveries += ss.recoveries;
      result.torn_truncations += ss.torn_truncations;
      result.corrupt_records += ss.corrupt_records;
      result.suspect_recoveries += ss.suspect_recoveries;
      result.disk_bytes_lost += cluster.server(node).disk()->stats().bytes_lost;
    }
  }
  result.leader_disruptions = times_leader > 0 ? times_leader - 1 : 0;
  if (flight_recorder != nullptr) {
    result.recorder_events = flight_recorder->recorded();
  }
  if (watchdog != nullptr) {
    result.watchdog_ok = watchdog->ok();
    result.watchdog_events = watchdog->events();
    result.watchdog_checks = watchdog->checks();
    result.watchdog_violations = watchdog->violations_total();
    result.watchdog_summary = watchdog->Summary();
  }
  result.nemesis_events = nemesis.events();
  result.linearizability =
      CheckKvLinearizability(recorder.History(), config.checker_max_states);
  // A failed verdict dumps the black box (idempotent: a watchdog violation
  // or CHECK failure that already dumped wins, keeping the earliest window).
  if (flight_recorder != nullptr && !result.ok()) {
    flight_recorder->DumpNow("chaos verdict failure");
  }
  return result;
}

}  // namespace hovercraft
