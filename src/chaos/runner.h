// One chaos run, end to end: build a cluster, drive a KV workload from
// open-loop clients while the nemesis injects faults, settle, then check.
//
// Shared by tests/chaos_test.cc and tools/chaos_runner so a failing seed
// from CI replays identically from the command line:
//
//   chaos_runner --schedule=partition-leader --seed=42 --mode=hovercraft
#ifndef SRC_CHAOS_RUNNER_H_
#define SRC_CHAOS_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/chaos/linearizability.h"
#include "src/common/types.h"
#include "src/storage/fsync_policy.h"

namespace hovercraft {

class StateMachine;

namespace obs {
class Observability;
}  // namespace obs

struct ChaosRunConfig {
  ClusterMode mode = ClusterMode::kHovercRaft;
  std::string schedule = "random";
  uint64_t seed = 1;

  int32_t nodes = 3;
  // Extra servers built but outside the initial config; the churn schedules
  // and the scripted membership events below draw on them (see
  // ClusterConfig::spare_nodes).
  int32_t spare_nodes = 0;
  int32_t clients = 2;
  double rate_rps_per_client = 4'000;
  int32_t keys = 8;
  // Per-client concurrency bound + abandonment timeout (see ClientHost::
  // set_outstanding_limit). Keeps the number of forever-open operations —
  // requests swallowed by a partition — small enough to check exhaustively.
  size_t outstanding_limit = 4;
  TimeNs give_up = Millis(30);

  TimeNs duration = Millis(150);  // nemesis + load window
  TimeNs settle = Millis(100);    // quiet period before the final checks

  // <= 0 disables the flow-control cap (HovercRaft modes only).
  int64_t flow_control_threshold = 0;
  int64_t bounded_queue_depth = 64;

  // eRPC-style transport batching (CostModel::tx_batching), forwarded into
  // the cluster's cost model. Batching must be verdict-invariant: the
  // transport-batching tests run every schedule twice — batched and not —
  // and require identical chaos outcomes.
  bool tx_batching = false;
  TimeNs tx_batch_delay_ns = 0;

  // Client retransmission (exactly-once stress). Disabled by default: the
  // legacy schedules run fire-and-forget clients; the reply-facing schedules
  // need retries to make progress at all.
  bool retry_enabled = false;
  TimeNs retry_initial_backoff = Micros(500);
  TimeNs retry_max_backoff = Millis(4);
  uint32_t retry_max_attempts = 0;  // 0 = bounded by give_up only
  // Server-side session dedup. Turning it off with retries on demonstrates
  // the double-apply anomaly (ServerStats::double_applies, and typically a
  // linearizability violation).
  bool dedup_enabled = true;

  // Adversarial hardening toggles (docs/hardening.md), forwarded into every
  // node's RaftOptions. The attack schedules ("rejoin-storm", "forged-vote",
  // "timer-skew", "stale-read-probe") are meant to run twice: the relevant
  // defense off as the control (the attack visibly succeeds) and on as the
  // proof (no disruption, no stale read).
  bool pre_vote = true;
  bool check_quorum = true;
  bool read_index = false;
  // 0 keeps the strict election_timeout_min lease; widening it past the
  // election timeout models lease clock skew (the stale-read control).
  TimeNs read_lease_timeout = 0;

  // Durability knobs (docs/durability.md), forwarded into every node's disk
  // and storage layer. The disk-* schedules run paired: defaults as the
  // defended proof (zero violations), fsync_policy=kAckBeforeSync (for the
  // power-fail/torn/stall faults) or wal_recovery=false (for corruption) as
  // the control whose violations show the fault genuinely bites.
  TimeNs persist_latency = 0;
  FsyncPolicy fsync_policy = FsyncPolicy::kGroupCommit;
  bool wal_recovery = true;

  // Override the replicated application; defaults to a KvService per node.
  // Exists so tests can plant a deliberately broken state machine and prove
  // the checker catches it.
  std::function<std::unique_ptr<StateMachine>()> app_factory;

  uint64_t checker_max_states = 4'000'000;

  // Scripted membership events, offset from the start of the load window
  // (the same clock base the nemesis uses); fired through the cluster's
  // management plane, which retries until the change commits. Composable
  // with any schedule — including one of the churn-* schedules, though
  // mixing the two makes the event log harder to read.
  struct MembershipEvent {
    TimeNs at = 0;
    NodeId node = kInvalidNode;
  };
  std::vector<MembershipEvent> add_server_at;
  std::vector<MembershipEvent> remove_server_at;

  // Optional observability bundle (tracing + metrics). Non-owning; when set,
  // the run records traces/metrics into it and exports the cluster counters
  // at the end. Nemesis faults double as trace annotations.
  obs::Observability* obs = nullptr;

  // Always-on flight recorder: per-node ring depth (0 disables recording and
  // with it the watchdog). Independent of `obs` — post-mortem dumps work
  // with tracing off.
  size_t flight_recorder_depth = 512;
  // Online invariant watchdog over the recorder stream (docs/observability.md
  // has the invariant catalog). On by default: every defended chaos run is
  // expected to be violation-free, and a violation fails ok(). Controls that
  // intentionally break an invariant keep it on and assert it fires.
  bool watchdog = true;
  // Mutation testing: at the midpoint of the load window, inject a synthetic
  // event stream that violates exactly one invariant, proving the watchdog
  // detects it. Codes: dual-leader, commit-regression, lease-overlap,
  // double-apply, flow-leak. Empty = no injection.
  std::string inject_violation;
  // Flight-recorder dump file written on the first violation/CHECK failure
  // ("" = stderr summary only) and the repro command printed with it.
  std::string dump_path;
  std::string repro;
};

struct ChaosRunResult {
  // Liveness after the window + settle (the nemesis healed everything).
  bool leader_alive = false;
  // All live members of the *final committed config* applied the same state
  // (order-sensitive digest match). Removed nodes and unused spares are
  // excluded: a retired replica legitimately stops applying.
  bool digests_converged = false;
  // The committed member set at the end of the run, for asserting that
  // scripted/churned config changes actually landed.
  std::vector<NodeId> final_members;
  LogIndex final_config_idx = 0;

  LinearizabilityResult linearizability;

  size_t invoked = 0;
  size_t completed = 0;
  size_t nacked = 0;
  uint64_t dropped_by_fault = 0;
  // Client-side retry accounting (sums over all clients).
  uint64_t retransmits = 0;
  uint64_t completed_after_retry = 0;
  uint64_t abandoned = 0;
  uint64_t late_completions = 0;
  // Server-side exactly-once accounting (sums over all nodes).
  uint64_t dedup_hits = 0;
  uint64_t dedup_replies = 0;
  uint64_t double_applies = 0;
  // Adversarial-hardening accounting (sums over all nodes; docs/hardening.md).
  // leader_disruptions counts elections won beyond the initial one — the
  // metric the attack controls drive up and the defenses hold at zero.
  uint64_t leader_disruptions = 0;
  Term max_term = 0;
  uint64_t prevote_rounds = 0;
  uint64_t stepdowns_check_quorum = 0;
  uint64_t votes_ignored_sticky = 0;
  uint64_t read_index_served = 0;
  uint64_t read_index_rejected = 0;
  // Total log entries appended cluster-wide: with read_index on, pure-read
  // load must not grow it (reads never enter the log).
  uint64_t entries_appended = 0;
  // Durability accounting (sums over all nodes; docs/durability.md).
  uint64_t wal_recoveries = 0;
  uint64_t torn_truncations = 0;
  uint64_t corrupt_records = 0;
  uint64_t suspect_recoveries = 0;
  uint64_t suspect_repaired = 0;
  uint64_t acks_deferred_persist = 0;
  uint64_t acks_dropped_crash = 0;
  uint64_t disk_bytes_lost = 0;
  // Entries below a node's commit index overwritten by a new leader — the
  // committed-data-loss anomaly itself. Zero in every defended run; the
  // unsafe controls drive it (see RaftStats::committed_overwritten).
  uint64_t committed_overwritten = 0;
  std::vector<std::string> nemesis_events;
  // Per node: "node 2: term=5 leader alive digest=..." — final state, for
  // diagnosing a failed run.
  std::vector<std::string> node_states;

  // Watchdog verdict (zero violations required when the watchdog ran; a run
  // with the watchdog off reports watchdog_ok=true and summary "off").
  bool watchdog_ok = true;
  uint64_t watchdog_events = 0;
  uint64_t watchdog_checks = 0;
  uint64_t watchdog_violations = 0;
  std::string watchdog_summary = "off";
  // Total flight-recorder events this run produced (0 when depth=0).
  uint64_t recorder_events = 0;

  bool ok() const {
    return leader_alive && digests_converged && linearizability.linearizable &&
           linearizability.conclusive() && watchdog_ok;
  }
  // Multi-line report for test failure messages.
  std::string Describe() const;
};

ChaosRunResult RunChaosSchedule(const ChaosRunConfig& config);

}  // namespace hovercraft

#endif  // SRC_CHAOS_RUNNER_H_
