// Slab-pooled, refcounted flat buffers for the zero-copy wire path.
//
// Same intrusive-pool discipline as the simulator's Event slab: buffers are
// carved out of size-class slabs owned by the pool, handed out behind an
// intrusive (non-atomic — the simulation is single-threaded) refcount, and
// recycled onto a per-class free list when the last reference drops. Steady
// state allocates nothing: Fragment/Reassembler/decode churn recycles the
// same frames forever (bench/micro_wire_path gates allocations/op == 0).
//
// Ownership rules (docs/performance.md, "wire path"):
//  - The pool must outlive every BufRef carved from it. The destructor
//    enforces this with a fatal leak check (`outstanding() == 0`), so a
//    leaked reference fails fast instead of dangling.
//  - A buffer's bytes may be written only while its refcount is 1 (the
//    producer building a frame); once shared, the contents are immutable.
#ifndef SRC_COMMON_BUF_POOL_H_
#define SRC_COMMON_BUF_POOL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/check.h"

namespace hovercraft {

class BufPool;

namespace internal {

// Header placed immediately before the payload bytes of every pooled buffer.
struct BufCtrl {
  BufPool* pool = nullptr;
  BufCtrl* next_free = nullptr;
  uint32_t refs = 0;
  int32_t size_class = 0;  // -1 = jumbo (heap-backed, not recycled)
  uint32_t capacity = 0;
  uint32_t len = 0;  // bytes the producer wrote (frame/body length)

  uint8_t* bytes() { return reinterpret_cast<uint8_t*>(this + 1); }
  const uint8_t* bytes() const { return reinterpret_cast<const uint8_t*>(this + 1); }
};

}  // namespace internal

// Shared handle to one pooled buffer. Copying bumps the intrusive refcount;
// the last handle to drop returns the buffer to its pool's free list.
class BufRef {
 public:
  BufRef() = default;
  ~BufRef() { Release(); }
  BufRef(const BufRef& other) : ctrl_(other.ctrl_) {
    if (ctrl_ != nullptr) {
      ++ctrl_->refs;
    }
  }
  BufRef(BufRef&& other) noexcept : ctrl_(other.ctrl_) { other.ctrl_ = nullptr; }
  BufRef& operator=(const BufRef& other) {
    if (this != &other) {
      Release();
      ctrl_ = other.ctrl_;
      if (ctrl_ != nullptr) {
        ++ctrl_->refs;
      }
    }
    return *this;
  }
  BufRef& operator=(BufRef&& other) noexcept {
    if (this != &other) {
      Release();
      ctrl_ = other.ctrl_;
      other.ctrl_ = nullptr;
    }
    return *this;
  }

  explicit operator bool() const { return ctrl_ != nullptr; }

  // Mutable access is for the producer filling the buffer (refcount 1).
  uint8_t* data() { return ctrl_->bytes(); }
  const uint8_t* data() const { return ctrl_->bytes(); }
  uint32_t capacity() const { return ctrl_->capacity; }
  uint32_t size() const { return ctrl_->len; }
  void set_size(uint32_t n) {
    HC_CHECK_LE(n, ctrl_->capacity);
    ctrl_->len = n;
  }
  uint32_t refcount() const { return ctrl_ == nullptr ? 0 : ctrl_->refs; }

  std::span<const uint8_t> bytes() const { return {data(), size()}; }
  std::span<uint8_t> writable() { return {data(), capacity()}; }

  void reset() { Release(); }

 private:
  friend class BufPool;
  explicit BufRef(internal::BufCtrl* ctrl) : ctrl_(ctrl) {}
  inline void Release();

  internal::BufCtrl* ctrl_ = nullptr;
};

class BufPool {
 public:
  BufPool() = default;
  ~BufPool() {
    // Fatal leak check: a BufRef outliving its pool would dangle on release,
    // so fail loudly at teardown instead (`outstanding_buffers == 0` gate).
    HC_CHECK_EQ(outstanding_, 0u);
  }
  BufPool(const BufPool&) = delete;
  BufPool& operator=(const BufPool&) = delete;

  // Returns a buffer with capacity >= min_capacity and refcount 1.
  BufRef Allocate(size_t min_capacity) {
    const int32_t cls = ClassFor(min_capacity);
    internal::BufCtrl* ctrl = nullptr;
    if (cls < 0) {
      // Jumbo: heap-backed one-off, freed (not recycled) on last unref.
      auto* raw = new uint8_t[sizeof(internal::BufCtrl) + min_capacity];
      ctrl = new (raw) internal::BufCtrl();
      ctrl->size_class = -1;
      ctrl->capacity = static_cast<uint32_t>(min_capacity);
    } else {
      if (free_lists_[cls] == nullptr) {
        Refill(cls);
      }
      ctrl = free_lists_[cls];
      free_lists_[cls] = ctrl->next_free;
      ctrl->next_free = nullptr;
    }
    ctrl->pool = this;
    ctrl->refs = 1;
    ctrl->len = 0;
    ++outstanding_;
    ++allocated_;
    return BufRef(ctrl);
  }

  // Live buffers (refcount > 0) carved from this pool.
  size_t outstanding() const { return outstanding_; }
  // Total Allocate() calls served.
  uint64_t allocated() const { return allocated_; }
  // Slab refills: system allocations made to grow a size class. A steady
  // workload stops incrementing this after warmup.
  uint64_t slab_refills() const { return slab_refills_; }

 private:
  friend class BufRef;

  static constexpr int32_t kMinClassLog2 = 8;   // 256 B
  static constexpr int32_t kMaxClassLog2 = 17;  // 128 KiB
  static constexpr int32_t kClassCount = kMaxClassLog2 - kMinClassLog2 + 1;
  static constexpr size_t kTargetSlabBytes = 128 * 1024;

  static int32_t ClassFor(size_t capacity) {
    size_t cap = size_t{1} << kMinClassLog2;
    for (int32_t c = 0; c < kClassCount; ++c, cap <<= 1) {
      if (capacity <= cap) {
        return c;
      }
    }
    return -1;  // jumbo
  }

  void Refill(int32_t cls) {
    const size_t capacity = size_t{1} << (kMinClassLog2 + cls);
    const size_t stride = sizeof(internal::BufCtrl) + capacity;
    const size_t count = std::max<size_t>(1, kTargetSlabBytes / stride);
    auto slab = std::make_unique<uint8_t[]>(stride * count);
    uint8_t* base = slab.get();
    for (size_t i = 0; i < count; ++i) {
      auto* ctrl = new (base + i * stride) internal::BufCtrl();
      ctrl->size_class = cls;
      ctrl->capacity = static_cast<uint32_t>(capacity);
      ctrl->next_free = free_lists_[cls];
      free_lists_[cls] = ctrl;
    }
    slabs_.push_back(std::move(slab));
    ++slab_refills_;
  }

  void Recycle(internal::BufCtrl* ctrl) {
    HC_CHECK_GT(outstanding_, 0u);
    --outstanding_;
    if (ctrl->size_class < 0) {
      ctrl->~BufCtrl();
      delete[] reinterpret_cast<uint8_t*>(ctrl);
      return;
    }
    ctrl->next_free = free_lists_[ctrl->size_class];
    free_lists_[ctrl->size_class] = ctrl;
  }

  internal::BufCtrl* free_lists_[kClassCount] = {};
  std::vector<std::unique_ptr<uint8_t[]>> slabs_;
  size_t outstanding_ = 0;
  uint64_t allocated_ = 0;
  uint64_t slab_refills_ = 0;
};

inline void BufRef::Release() {
  if (ctrl_ == nullptr) {
    return;
  }
  HC_CHECK_GT(ctrl_->refs, 0u);
  if (--ctrl_->refs == 0) {
    ctrl_->pool->Recycle(ctrl_);
  }
  ctrl_ = nullptr;
}

}  // namespace hovercraft

#endif  // SRC_COMMON_BUF_POOL_H_
