// Byte-buffer writer/reader pair used by the wire codecs (R2P2 headers, Raft
// messages, kvstore commands). Little-endian fixed-width encoding with
// explicit bounds checks on the read side.
#ifndef SRC_COMMON_BUFFER_H_
#define SRC_COMMON_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace hovercraft {

class BufferWriter {
 public:
  BufferWriter() = default;
  explicit BufferWriter(size_t reserve) { bytes_.reserve(reserve); }

  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU16(uint16_t v) { PutLittleEndian(v); }
  void PutU32(uint32_t v) { PutLittleEndian(v); }
  void PutU64(uint64_t v) { PutLittleEndian(v); }
  void PutI64(int64_t v) { PutLittleEndian(static_cast<uint64_t>(v)); }

  void PutBytes(std::span<const uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  // Length-prefixed (u32) string.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const uint8_t*>(s.data());
    bytes_.insert(bytes_.end(), p, p + s.size());
  }

  size_t size() const { return bytes_.size(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  template <typename T>
  void PutLittleEndian(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> bytes_;
};

class BufferReader {
 public:
  explicit BufferReader(std::span<const uint8_t> data) : data_(data) {}

  Status GetU8(uint8_t& out) { return GetLittleEndian(out); }
  Status GetU16(uint16_t& out) { return GetLittleEndian(out); }
  Status GetU32(uint32_t& out) { return GetLittleEndian(out); }
  Status GetU64(uint64_t& out) { return GetLittleEndian(out); }
  Status GetI64(int64_t& out) {
    uint64_t raw = 0;
    Status s = GetLittleEndian(raw);
    out = static_cast<int64_t>(raw);
    return s;
  }

  Status GetBytes(size_t count, std::vector<uint8_t>& out) {
    if (remaining() < count) {
      return OutOfRangeError("buffer underrun");
    }
    out.assign(data_.begin() + static_cast<ptrdiff_t>(pos_),
               data_.begin() + static_cast<ptrdiff_t>(pos_ + count));
    pos_ += count;
    return Status::Ok();
  }

  Status GetString(std::string& out) {
    uint32_t len = 0;
    if (Status s = GetU32(len); !s.ok()) {
      return s;
    }
    if (remaining() < len) {
      return OutOfRangeError("string length exceeds buffer");
    }
    out.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return Status::Ok();
  }

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Status GetLittleEndian(T& out) {
    if (remaining() < sizeof(T)) {
      return OutOfRangeError("buffer underrun");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    out = v;
    return Status::Ok();
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// FNV-1a 64-bit hash; used for request-body hashes (paper section 5) and
// state-machine digests in tests.
inline uint64_t Fnv1aHash(std::span<const uint8_t> data, uint64_t seed = 0xCBF29CE484222325ull) {
  uint64_t h = seed;
  for (uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

inline uint64_t Fnv1aHash(std::string_view s, uint64_t seed = 0xCBF29CE484222325ull) {
  return Fnv1aHash(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()), s.size()),
                   seed);
}

}  // namespace hovercraft

#endif  // SRC_COMMON_BUFFER_H_
