// Always-on invariant checks. Systems code in this repository uses CHECK for
// conditions that indicate a programming error (never for recoverable I/O or
// protocol conditions, which use Status/Result instead).
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace hovercraft {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace hovercraft

#define HC_CHECK(expr)                                    \
  do {                                                    \
    if (!(expr)) {                                        \
      ::hovercraft::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                     \
  } while (0)

#define HC_CHECK_GE(a, b) HC_CHECK((a) >= (b))
#define HC_CHECK_GT(a, b) HC_CHECK((a) > (b))
#define HC_CHECK_LE(a, b) HC_CHECK((a) <= (b))
#define HC_CHECK_LT(a, b) HC_CHECK((a) < (b))
#define HC_CHECK_EQ(a, b) HC_CHECK((a) == (b))
#define HC_CHECK_NE(a, b) HC_CHECK((a) != (b))

#endif  // SRC_COMMON_CHECK_H_
