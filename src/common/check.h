// Always-on invariant checks. Systems code in this repository uses CHECK for
// conditions that indicate a programming error (never for recoverable I/O or
// protocol conditions, which use Status/Result instead).
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace hovercraft {

// Optional hook run once, just before abort, when a CHECK fails. The flight
// recorder (src/obs/flight_recorder.h) installs one so every CHECK failure
// dumps the last events of the run plus a repro command. The hook is cleared
// before it runs, so a CHECK failure inside the hook cannot recurse.
using CheckFailureHook = void (*)();

inline CheckFailureHook& CheckFailureHookSlot() {
  static CheckFailureHook hook = nullptr;
  return hook;
}

// Returns the previously installed hook (restore it when done).
inline CheckFailureHook SetCheckFailureHook(CheckFailureHook hook) {
  CheckFailureHook& slot = CheckFailureHookSlot();
  CheckFailureHook previous = slot;
  slot = hook;
  return previous;
}

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  CheckFailureHook& slot = CheckFailureHookSlot();
  if (slot != nullptr) {
    CheckFailureHook hook = slot;
    slot = nullptr;  // no recursion if the hook itself CHECK-fails
    hook();
  }
  std::abort();
}

}  // namespace hovercraft

#define HC_CHECK(expr)                                    \
  do {                                                    \
    if (!(expr)) {                                        \
      ::hovercraft::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                     \
  } while (0)

#define HC_CHECK_GE(a, b) HC_CHECK((a) >= (b))
#define HC_CHECK_GT(a, b) HC_CHECK((a) > (b))
#define HC_CHECK_LE(a, b) HC_CHECK((a) <= (b))
#define HC_CHECK_LT(a, b) HC_CHECK((a) < (b))
#define HC_CHECK_EQ(a, b) HC_CHECK((a) == (b))
#define HC_CHECK_NE(a, b) HC_CHECK((a) != (b))

#endif  // SRC_COMMON_CHECK_H_
