#include "src/common/logging.h"

namespace hovercraft {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

void LogMessage(LogLevel level, const char* file, int line, const char* format, ...) {
  std::fprintf(stderr, "[%s %s:%d] ", LevelTag(level), file, line);
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace hovercraft
