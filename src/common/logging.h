// Lightweight leveled logging. Disabled below the compile-time threshold so
// hot paths carry no cost; runtime level further filters. Not thread-aware —
// the simulator is single-threaded by design.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdarg>
#include <cstdio>

namespace hovercraft {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

void LogMessage(LogLevel level, const char* file, int line, const char* format, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace hovercraft

#define HC_LOG(level, ...)                                                            \
  do {                                                                                \
    if (static_cast<int>(level) >= static_cast<int>(::hovercraft::GetLogLevel())) {   \
      ::hovercraft::LogMessage(level, __FILE__, __LINE__, __VA_ARGS__);               \
    }                                                                                 \
  } while (0)

#define HC_LOG_DEBUG(...) HC_LOG(::hovercraft::LogLevel::kDebug, __VA_ARGS__)
#define HC_LOG_INFO(...) HC_LOG(::hovercraft::LogLevel::kInfo, __VA_ARGS__)
#define HC_LOG_WARN(...) HC_LOG(::hovercraft::LogLevel::kWarning, __VA_ARGS__)
#define HC_LOG_ERROR(...) HC_LOG(::hovercraft::LogLevel::kError, __VA_ARGS__)

#endif  // SRC_COMMON_LOGGING_H_
