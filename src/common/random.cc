#include "src/common/random.h"

#include <cmath>

namespace hovercraft {

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  HC_CHECK_GT(n, 0u);
  HC_CHECK(theta > 0.0 && theta < 1.0);
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double x = static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t result = static_cast<uint64_t>(x);
  if (result >= n_) {
    result = n_ - 1;
  }
  return result;
}

}  // namespace hovercraft
