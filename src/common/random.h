// Deterministic pseudo-random generator used throughout the simulator.
// All randomness in a run flows from one seed so experiments replay exactly.
#ifndef SRC_COMMON_RANDOM_H_
#define SRC_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "src/common/check.h"

namespace hovercraft {

// splitmix64 seeding + xoshiro256** core. Small, fast, and good enough for
// workload generation; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97f4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    HC_CHECK_GT(bound, 0u);
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    HC_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Exponential with the given mean (> 0).
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard the log against u == 0.
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

  bool NextBool(double probability_true) { return NextDouble() < probability_true; }

  // Derives an independent stream; used to give each component its own RNG.
  Rng Fork() { return Rng(Next() ^ 0xA3C59AC2B6D4F0E1ull); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

// Zipfian generator over [0, n) with parameter theta (YCSB uses 0.99).
// Implements the Gray et al. rejection-free method used by YCSB.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace hovercraft

#endif  // SRC_COMMON_RANDOM_H_
