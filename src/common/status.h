// Minimal error-propagation types. Fallible operations across module
// boundaries return Status or Result<T>; exceptions are not used.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/common/check.h"

namespace hovercraft {

enum class StatusCode {
  kOk,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,
  kResourceExhausted,
  kInternal,
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    HC_CHECK(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const T& value() const {
    HC_CHECK(ok());
    return std::get<T>(repr_);
  }
  T& value() {
    HC_CHECK(ok());
    return std::get<T>(repr_);
  }
  T TakeValue() {
    HC_CHECK(ok());
    return std::move(std::get<T>(repr_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(repr_);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace hovercraft

#endif  // SRC_COMMON_STATUS_H_
