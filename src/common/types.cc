#include "src/common/types.h"

namespace hovercraft {

const char* ClusterModeName(ClusterMode mode) {
  switch (mode) {
    case ClusterMode::kUnreplicated:
      return "UnRep";
    case ClusterMode::kVanillaRaft:
      return "VanillaRaft";
    case ClusterMode::kHovercRaft:
      return "HovercRaft";
    case ClusterMode::kHovercRaftPP:
      return "HovercRaft++";
  }
  return "unknown";
}

const char* ReplierPolicyName(ReplierPolicy policy) {
  switch (policy) {
    case ReplierPolicy::kLeaderOnly:
      return "LEADER";
    case ReplierPolicy::kRandom:
      return "RANDOM";
    case ReplierPolicy::kJbsq:
      return "JBSQ";
  }
  return "unknown";
}

}  // namespace hovercraft
