// Core scalar types shared by every module.
#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace hovercraft {

// Virtual time in nanoseconds since simulation start.
using TimeNs = int64_t;

constexpr TimeNs kNanosPerMicro = 1'000;
constexpr TimeNs kNanosPerMilli = 1'000'000;
constexpr TimeNs kNanosPerSec = 1'000'000'000;

constexpr TimeNs Micros(int64_t us) { return us * kNanosPerMicro; }
constexpr TimeNs Millis(int64_t ms) { return ms * kNanosPerMilli; }
constexpr TimeNs Seconds(int64_t s) { return s * kNanosPerSec; }

// Identifies a host attached to the simulated network (servers, clients and
// in-network devices all get one). Dense, assigned by the topology builder.
using HostId = int32_t;
constexpr HostId kInvalidHost = -1;

// Identifies a member of the replication group (0..n-1). This is the Raft
// node id, distinct from its HostId.
using NodeId = int32_t;
constexpr NodeId kInvalidNode = -1;

// Identifies one consensus group (shard) when several HovercRaft groups
// share a fabric (src/shard). Deliberately a distinct type from NodeId —
// node ids are group-local, group ids are fabric-global — so the two can
// never be mixed up in a signature.
struct GroupId {
  int32_t value = -1;
  constexpr bool valid() const { return value >= 0; }
  constexpr bool operator==(GroupId other) const { return value == other.value; }
  constexpr bool operator!=(GroupId other) const { return value != other.value; }
};
constexpr GroupId kInvalidGroup{-1};

// Raft log positions and terms. Log indices are 1-based; 0 means "none".
using LogIndex = uint64_t;
using Term = uint64_t;
constexpr LogIndex kNoLogIndex = 0;

// The four system configurations evaluated in the paper (section 7).
enum class ClusterMode {
  kUnreplicated,  // single server, no fault tolerance ("UnRep")
  kVanillaRaft,   // Raft over R2P2, full-payload replication ("VanillaRaft")
  kHovercRaft,    // replication/ordering split + load balancing
  kHovercRaftPP,  // HovercRaft + in-network aggregation
};

const char* ClusterModeName(ClusterMode mode);

// Replier selection policy for load-balanced replies (paper sections 3.3/3.6).
enum class ReplierPolicy {
  kLeaderOnly,  // vanilla behaviour: the leader replies to everything
  kRandom,      // uniform choice among eligible (bounded-queue) nodes
  kJbsq,        // Join-Bounded-Shortest-Queue among eligible nodes
};

const char* ReplierPolicyName(ReplierPolicy policy);

}  // namespace hovercraft

#endif  // SRC_COMMON_TYPES_H_
