#include "src/core/aggregator.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/obs/observability.h"

namespace hovercraft {

Aggregator::Aggregator(Simulator* sim, const CostModel& costs, int32_t cluster_size)
    : Host(sim, costs, Kind::kDevice),
      cluster_size_(cluster_size),
      match_(static_cast<size_t>(cluster_size), 0),
      completed_(static_cast<size_t>(cluster_size), 0) {
  HC_CHECK_GT(cluster_size, 0);
  voters_.reserve(static_cast<size_t>(cluster_size));
  for (NodeId n = 0; n < cluster_size; ++n) {
    voters_.push_back(n);
  }
}

void Aggregator::Configure(std::vector<HostId> node_hosts, Addr group_all,
                           std::vector<Addr> groups_excluding, std::vector<NodeId> voters) {
  HC_CHECK_EQ(node_hosts.size(), static_cast<size_t>(cluster_size_));
  HC_CHECK_EQ(groups_excluding.size(), static_cast<size_t>(cluster_size_));
  node_hosts_ = std::move(node_hosts);
  group_all_ = group_all;
  groups_excluding_ = std::move(groups_excluding);
  if (!voters.empty()) {
    for (NodeId v : voters) {
      HC_CHECK_GE(v, 0);
      HC_CHECK_LT(v, cluster_size_);
    }
    voters_ = std::move(voters);
    std::sort(voters_.begin(), voters_.end());
  }
}

void Aggregator::Reconfigure(const std::vector<NodeId>& voters, LogIndex epoch) {
  if (epoch == epoch_) {
    return;  // already installed (duplicate control-plane call)
  }
  HC_CHECK(!voters.empty());
  for (NodeId v : voters) {
    HC_CHECK_GE(v, 0);
    HC_CHECK_LT(v, cluster_size_);
  }
  voters_ = voters;
  std::sort(voters_.begin(), voters_.end());
  epoch_ = epoch;
  // Registers counted under the old voter set are meaningless under the new
  // one — rebuild from empty, exactly as on a term change. The leader
  // re-probes (AGG_VOTE) and re-announces after the config commits.
  leader_ = kInvalidNode;
  std::fill(match_.begin(), match_.end(), 0);
  std::fill(completed_.begin(), completed_.end(), 0);
  leader_last_ = 0;
  last_announced_ = 0;
  commit_ = 0;
  pending_ = false;
  ++stats_.reconfigures;
}

NodeId Aggregator::NodeOfHost(HostId host) const {
  for (size_t i = 0; i < node_hosts_.size(); ++i) {
    if (node_hosts_[i] == host) {
      return static_cast<NodeId>(i);
    }
  }
  return kInvalidNode;
}

void Aggregator::Flush(Term term) {
  term_ = term;
  leader_ = kInvalidNode;
  std::fill(match_.begin(), match_.end(), 0);
  std::fill(completed_.begin(), completed_.end(), 0);
  leader_last_ = 0;
  last_announced_ = 0;
  commit_ = 0;
  pending_ = false;
  ++stats_.flushes;
}

void Aggregator::HandleMessage(HostId src, const MessagePtr& msg) {
  if (const auto* vote = dynamic_cast<const AggVoteReq*>(msg.get())) {
    // Post-election handshake: flush on a new term and confirm liveness.
    if (vote->term() > term_) {
      Flush(vote->term());
    }
    leader_ = NodeOfHost(src);
    // Echo our installed epoch: if it differs from the leader's committed
    // config the leader ignores the reply and re-probes later.
    Send(src, std::make_shared<AggVoteRep>(vote->term(), epoch_));
    return;
  }
  if (const auto* ae = dynamic_cast<const AppendEntriesReq*>(msg.get())) {
    OnLeaderAppend(src, *ae);
    return;
  }
  if (const auto* rep = dynamic_cast<const AppendEntriesRep*>(msg.get())) {
    OnFollowerReply(src, *rep);
    return;
  }
  HC_LOG_WARN("aggregator: unexpected message %s", msg->Name());
}

void Aggregator::OnLeaderAppend(HostId src, const AppendEntriesReq& req) {
  if (req.term() < term_) {
    return;  // stale leader; drop
  }
  if (req.term() > term_) {
    Flush(req.term());
  }
  const NodeId leader = NodeOfHost(src);
  HC_CHECK_NE(leader, kInvalidNode);
  leader_ = leader;
  const LogIndex announced = req.prev_idx() + req.entries().size();
  if (announced <= last_announced_) {
    // The leader re-announced an index we already saw (heartbeat or a lost
    // message): remember to emit an AGG_COMMIT on the next reply even if the
    // commit index does not advance (check_log_idx / set_pending stages).
    pending_ = true;
  } else {
    last_announced_ = announced;
  }
  leader_last_ = std::max(leader_last_, announced);

  // Forward with the destination rewritten to the multicast group that
  // excludes the leader.
  ++stats_.ae_forwarded;
  Send(groups_excluding_[static_cast<size_t>(leader)],
       std::make_shared<AppendEntriesReq>(req));
}

void Aggregator::OnFollowerReply(HostId src, const AppendEntriesRep& rep) {
  if (rep.term() != term_) {
    if (rep.term() > term_) {
      Flush(rep.term());
    }
    return;
  }
  const NodeId follower = NodeOfHost(src);
  if (follower == kInvalidNode || !rep.success()) {
    return;  // failure replies go directly to the leader, not here
  }
  ++stats_.replies_absorbed;
  auto& match = match_[static_cast<size_t>(follower)];
  match = std::max(match, rep.match());
  auto& completed = completed_[static_cast<size_t>(follower)];
  completed = std::max(completed, rep.applied());

  // Quorum commit over the configured voter set: a voting leader always holds
  // its announced entries, so the commit index is the (majority-1)-th largest
  // voting-follower match, capped by what the leader announced. (A non-voting
  // leader — mid-removal — contributes nothing, so all `majority` acks must
  // come from follower matches.)
  std::vector<LogIndex> sorted;
  sorted.reserve(voters_.size());
  bool leader_votes = false;
  for (NodeId n : voters_) {
    if (n != leader_) {
      sorted.push_back(match_[static_cast<size_t>(n)]);
    } else {
      leader_votes = true;
    }
  }
  std::sort(sorted.begin(), sorted.end(), std::greater<LogIndex>());
  const int32_t majority = static_cast<int32_t>(voters_.size()) / 2 + 1;
  const int32_t needed = majority - (leader_votes ? 1 : 0);
  if (static_cast<int32_t>(sorted.size()) < needed) {
    return;  // not enough voting followers to ever reach quorum
  }
  const LogIndex quorum = needed <= 0 ? leader_last_ : sorted[static_cast<size_t>(needed - 1)];
  const LogIndex candidate = std::min(quorum, leader_last_);

  if (candidate > commit_) {
    commit_ = candidate;
    SendAggCommit();
    pending_ = false;
  } else if (pending_) {
    SendAggCommit();
    pending_ = false;
  }
}

void Aggregator::SendAggCommit() {
  ++stats_.commits_sent;
  if (auto* tracer = obs::TracerOf(sim())) {
    tracer->Instant(obs::TrackOfHost(id()), obs::kTidEvents, "agg_commit", sim()->Now(),
                    "term " + std::to_string(term_) + " commit " + std::to_string(commit_));
  }
  Send(group_all_, std::make_shared<AggCommitMsg>(term_, commit_, completed_, epoch_));
}

}  // namespace hovercraft
