// The in-network aggregator (HovercRaft++, paper sections 4 and 6.4).
//
// Models the Tofino P4 pipeline as a line-rate device holding only soft
// state: per-follower match registers (ingress), per-follower completed
// registers (egress), the current term, and the pending flag. It fans the
// leader's single append_entries out to the follower multicast group,
// absorbs the fan-in of replies, and multicasts AGG_COMMIT when the quorum
// commit index advances. All state is flushed when a higher term appears
// (new leader election) — a replacement switch can take over from empty
// state, which is the paper's argument against sequencer-style designs.
#ifndef SRC_CORE_AGGREGATOR_H_
#define SRC_CORE_AGGREGATOR_H_

#include <vector>

#include "src/common/types.h"
#include "src/net/host.h"
#include "src/raft/messages.h"

namespace hovercraft {

class Aggregator final : public Host {
 public:
  Aggregator(Simulator* sim, const CostModel& costs, int32_t cluster_size);

  // Wiring, called by the cluster builder after network attachment:
  // host id of each Raft node, the all-nodes multicast group, and one group
  // per node that excludes it (the fan-out target for that node as leader).
  // `voters` is the initial voter set; empty means every node votes.
  void Configure(std::vector<HostId> node_hosts, Addr group_all,
                 std::vector<Addr> groups_excluding, std::vector<NodeId> voters = {});

  // Installs the committed voter set for config epoch `epoch` (the log index
  // of the committed config entry). Registers are rebuilt from empty under
  // the same soft-state rule as a term change: a quorum must never mix match
  // indices counted under two different voter sets. Idempotent per epoch.
  void Reconfigure(const std::vector<NodeId>& voters, LogIndex epoch);

  void HandleMessage(HostId src, const MessagePtr& msg) override;

  struct AggStats {
    uint64_t ae_forwarded = 0;
    uint64_t replies_absorbed = 0;
    uint64_t commits_sent = 0;
    uint64_t flushes = 0;
    uint64_t reconfigures = 0;
  };
  const AggStats& agg_stats() const { return stats_; }
  Term term() const { return term_; }
  LogIndex commit() const { return commit_; }
  LogIndex epoch() const { return epoch_; }

 private:
  NodeId NodeOfHost(HostId host) const;
  void Flush(Term term);
  void OnLeaderAppend(HostId src, const AppendEntriesReq& req);
  void OnFollowerReply(HostId src, const AppendEntriesRep& rep);
  void SendAggCommit();

  int32_t cluster_size_;
  std::vector<HostId> node_hosts_;
  Addr group_all_ = kInvalidHost;
  std::vector<Addr> groups_excluding_;

  // Control-plane config: the voter set the quorum is counted over, and the
  // config epoch it belongs to (stamped into every AGG_COMMIT so replicas can
  // reject quorums computed under a stale membership).
  std::vector<NodeId> voters_;
  LogIndex epoch_ = 0;

  // Soft state (the P4 registers).
  Term term_ = 0;
  NodeId leader_ = kInvalidNode;
  std::vector<LogIndex> match_;      // ingress registers
  std::vector<LogIndex> completed_;  // egress registers (applied indices)
  LogIndex leader_last_ = 0;
  LogIndex last_announced_ = 0;
  LogIndex commit_ = 0;
  bool pending_ = false;

  AggStats stats_;
};

}  // namespace hovercraft

#endif  // SRC_CORE_AGGREGATOR_H_
