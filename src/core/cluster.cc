#include "src/core/cluster.h"

#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/obs/critical_path.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/observability.h"
#include "src/obs/watchdog.h"

namespace hovercraft {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      owned_sim_(config.external_sim == nullptr ? std::make_unique<Simulator>() : nullptr),
      sim_(config.external_sim != nullptr ? config.external_sim : owned_sim_.get()),
      owned_net_(config.external_net == nullptr
                     ? std::make_unique<Network>(sim_, config_.costs,
                                                 config.seed ^ 0xFEEDFACE12345678ull)
                     : nullptr),
      net_(config.external_net != nullptr ? config.external_net : owned_net_.get()) {
  HC_CHECK(config_.app_factory != nullptr);
  HC_CHECK_GT(config_.nodes, 0);
  // Borrowing and owning must not be mixed: a borrowed fabric without a
  // borrowed clock (or vice versa) would split the deployment in two.
  HC_CHECK((config_.external_sim == nullptr) == (config_.external_net == nullptr));
  if (!borrowed()) {
    if (config_.obs != nullptr) {
      sim_->set_observability(config_.obs);
    }
    // Flight recorder: attached before any server is built so the very first
    // role transition is already on record. An external recorder (shared by a
    // harness across clusters) wins over the owned default; depth 0 opts out.
    if (config_.flight_recorder != nullptr) {
      active_recorder_ = config_.flight_recorder;
    } else if (config_.flight_recorder_depth > 0) {
      owned_recorder_ = std::make_unique<obs::FlightRecorder>(config_.flight_recorder_depth);
      active_recorder_ = owned_recorder_.get();
    }
    if (active_recorder_ != nullptr) {
      sim_->set_flight_recorder(active_recorder_);
      if (config_.watchdog != nullptr) {
        active_recorder_->AddSink(config_.watchdog);
      }
      if (config_.critical_path != nullptr) {
        active_recorder_->AddSink(config_.critical_path);
      }
    }
  }
  const bool replicated = config_.mode != ClusterMode::kUnreplicated;
  HC_CHECK_GE(config_.spare_nodes, 0);
  // Spares are built and started like members but start outside the voter
  // set (raft.initial_voters below) and outside the multicast groups.
  const int32_t members = replicated ? config_.nodes : 1;
  const int32_t nodes = replicated ? config_.nodes + config_.spare_nodes : 1;
  for (NodeId n = 0; n < members; ++n) {
    members_.push_back(n);
  }

  for (NodeId n = 0; n < nodes; ++n) {
    ServerConfig sc = config_.server_template;
    sc.mode = config_.mode;
    sc.raft = config_.raft;
    sc.raft.id = n;
    sc.raft.cluster_size = nodes;
    sc.raft.initial_voters = members;
    switch (config_.mode) {
      case ClusterMode::kUnreplicated:
      case ClusterMode::kVanillaRaft:
        sc.raft.metadata_only = false;
        sc.raft.assign_repliers = false;
        sc.raft.use_aggregator = false;
        sc.raft.replier_policy = ReplierPolicy::kLeaderOnly;
        break;
      case ClusterMode::kHovercRaft:
      case ClusterMode::kHovercRaftPP:
        sc.raft.metadata_only = true;
        // Replier assignment (and its bounded-queue gating, section 3.4) is
        // part of the load-balancing design; with kLeaderOnly the paper's
        // "reply load balancing disabled" baseline applies and the leader
        // answers everything, like vanilla Raft.
        sc.raft.assign_repliers = (config_.replier_policy != ReplierPolicy::kLeaderOnly);
        sc.raft.replier_policy = config_.replier_policy;
        sc.raft.bounded_queue_depth = config_.bounded_queue_depth;
        sc.raft.use_aggregator = (config_.mode == ClusterMode::kHovercRaftPP);
        break;
    }
    if (config_.stagger_first_election && n == 0) {
      sc.raft.election_timeout_min = Millis(1);
      sc.raft.election_timeout_max = Millis(2);
    }
    auto server = std::make_unique<ReplicatedServer>(sim_, config_.costs, sc,
                                                     config_.app_factory(),
                                                     config_.seed + 0x1000u + static_cast<uint64_t>(n));
    server_hosts_.push_back(net_->Attach(server.get()));
    servers_.push_back(std::move(server));
  }

  HostId aggregator_host = kInvalidHost;
  HostId flow_control_host = kInvalidHost;

  if (config_.mode == ClusterMode::kHovercRaft || config_.mode == ClusterMode::kHovercRaftPP) {
    // Multicast groups span the *members*, not the spares: a spare joins the
    // replication group only when its config change commits.
    std::vector<HostId> member_hosts(server_hosts_.begin(), server_hosts_.begin() + members);
    group_all_ = net_->CreateMulticastGroup(member_hosts);

    if (config_.mode == ClusterMode::kHovercRaftPP) {
      aggregator_ = std::make_unique<Aggregator>(sim_, config_.costs, nodes);
      aggregator_host = net_->Attach(aggregator_.get());
      for (NodeId n = 0; n < nodes; ++n) {
        std::vector<HostId> group;
        for (NodeId m = 0; m < members; ++m) {
          if (m != n) {
            group.push_back(server_hosts_[static_cast<size_t>(m)]);
          }
        }
        groups_excluding_.push_back(net_->CreateMulticastGroup(std::move(group)));
      }
      aggregator_->Configure(server_hosts_, group_all_, groups_excluding_, members_);
    }

    flow_control_ = std::make_unique<FlowControl>(sim_, config_.costs, group_all_,
                                                  config_.flow_control_threshold);
    flow_control_host = net_->Attach(flow_control_.get());
  }

  for (NodeId n = 0; n < nodes; ++n) {
    servers_[static_cast<size_t>(n)]->Wire(server_hosts_, aggregator_host, flow_control_host);
    servers_[static_cast<size_t>(n)]->set_config_committed_callback(
        [this](NodeId self, const MembershipConfig& cfg, LogIndex idx) {
          ApplyCommittedConfig(self, cfg, idx);
        });
  }
  for (NodeId n = 0; n < nodes; ++n) {
    servers_[static_cast<size_t>(n)]->Start();
  }
  if (config_.obs != nullptr && !borrowed()) {
    InstallObservability();
  }
}

Cluster::~Cluster() {
  // The samplers close over this cluster's servers and middleboxes; drop
  // them before the sampled objects die.
  if (config_.obs != nullptr && !borrowed()) {
    config_.obs->ClearSamplers();
  }
  // Detach the (non-owning) sinks before the recorder — or the recorder's
  // owner, for an external one — goes away.
  if (active_recorder_ != nullptr) {
    if (config_.watchdog != nullptr) {
      active_recorder_->RemoveSink(config_.watchdog);
    }
    if (config_.critical_path != nullptr) {
      active_recorder_->RemoveSink(config_.critical_path);
    }
    sim_->set_flight_recorder(nullptr);
  }
}

void Cluster::InstallObservability() {
  obs::Observability* o = config_.obs;
  if (auto* tracer = o->tracer()) {
    for (size_t n = 0; n < servers_.size(); ++n) {
      const int32_t pid = obs::TrackOfHost(server_hosts_[n]);
      tracer->NameProcess(pid, "node " + std::to_string(n) + " (server)");
      tracer->NameThread(pid, obs::kTidEvents, "events");
      tracer->NameThread(pid, obs::kTidNet, "net thread");
      tracer->NameThread(pid, obs::kTidApp, "app thread");
      tracer->NameThread(pid, obs::kTidNic, "nic tx");
    }
    if (aggregator_ != nullptr) {
      const int32_t pid = obs::TrackOfHost(aggregator_->id());
      tracer->NameProcess(pid, "aggregator");
      tracer->NameThread(pid, obs::kTidEvents, "events");
    }
    if (flow_control_ != nullptr) {
      const int32_t pid = obs::TrackOfHost(flow_control_->id());
      tracer->NameProcess(pid, "flow control");
      tracer->NameThread(pid, obs::kTidEvents, "events");
    }
  }
  // Queue-depth samplers: read-only probes over the simulated resources.
  // Scheduling them consumes event ids but never reorders same-time work
  // relative to each other, so simulation outcomes are unchanged.
  for (size_t n = 0; n < servers_.size(); ++n) {
    ReplicatedServer* s = servers_[n].get();
    // The run scope keeps series from successive clusters (one bench binary
    // runs many load points) separate, so each series stays monotonic in t.
    const std::string scope = config_.obs_scope + obs::NodeScope(static_cast<NodeId>(n));
    o->AddSampler(scope + "net_thread.depth",
                  [s]() { return s->net_thread().queue_length(); });
    o->AddSampler(scope + "app_thread.depth",
                  [s]() { return s->app_thread().queue_length(); });
    o->AddSampler(scope + "nic_tx.depth",
                  [s]() { return s->nic_tx().queue_length(); });
    if (s->disk() != nullptr) {
      // WAL flush-queue depth: fsyncs waiting behind the in-flight one
      // (group-commit pressure; storage observability satellite).
      o->AddSampler(scope + "storage.flush_queue.depth",
                    [s]() { return static_cast<int64_t>(s->disk()->queue_depth()); });
    }
    if (s->raft() != nullptr) {
      o->AddSampler(scope + "raft.commit_lag", [s]() {
        return static_cast<int64_t>(s->raft()->commit_index() - s->raft()->applied_index());
      });
      o->AddSampler(scope + "raft.log_entries",
                    [s]() { return static_cast<int64_t>(s->raft()->log().size()); });
      // Bounded replica queue (JBSQ, section 3.4) as the current leader sees
      // it: entries assigned to this node but not yet reported applied.
      o->AddSampler(scope + "jbsq.backlog", [this, n]() {
        const NodeId leader = LeaderId();
        if (leader == kInvalidNode) {
          return static_cast<int64_t>(0);
        }
        return server(leader).raft()->scheduler().PendingOf(static_cast<NodeId>(n));
      });
    }
  }
  if (flow_control_ != nullptr) {
    FlowControl* fc = flow_control_.get();
    o->AddSampler(config_.obs_scope + "flow_control/outstanding",
                  [fc]() { return fc->outstanding(); });
  }
}

void Cluster::ExportMetrics(obs::MetricsRegistry* metrics) {
  HC_CHECK(metrics != nullptr);
  const std::string& scope = config_.obs_scope;
  for (size_t n = 0; n < servers_.size(); ++n) {
    ReplicatedServer& s = *servers_[n];
    const std::string prefix = scope + obs::NodeScope(static_cast<NodeId>(n));
    const NetCounters& net = s.counters();
    metrics->SetCounter(prefix + "net.tx_msgs", net.tx_msgs);
    metrics->SetCounter(prefix + "net.rx_msgs", net.rx_msgs);
    metrics->SetCounter(prefix + "net.tx_frames", net.tx_frames);
    metrics->SetCounter(prefix + "net.rx_frames", net.rx_frames);
    metrics->SetCounter(prefix + "net.tx_payload_bytes", net.tx_payload_bytes);
    metrics->SetCounter(prefix + "net.rx_payload_bytes", net.rx_payload_bytes);
    // Physical-layer view: frames that actually crossed the link (a coalesced
    // batch is one frame) and wire bytes including framing + sub-headers.
    metrics->SetCounter(prefix + "net.tx_physical_frames", net.tx_physical_frames);
    metrics->SetCounter(prefix + "net.rx_physical_frames", net.rx_physical_frames);
    metrics->SetCounter(prefix + "net.tx_batches", net.tx_batches);
    metrics->SetCounter(prefix + "net.rx_batches", net.rx_batches);
    metrics->SetCounter(prefix + "net.tx_wire_bytes", net.tx_wire_bytes);
    metrics->SetCounter(prefix + "net.rx_wire_bytes", net.rx_wire_bytes);
    for (const auto& [type, bytes] : net.tx_wire_bytes_by_type) {
      metrics->SetCounter(prefix + "net.bytes_on_wire.tx." + type, bytes);
    }
    for (const auto& [type, bytes] : net.rx_wire_bytes_by_type) {
      metrics->SetCounter(prefix + "net.bytes_on_wire.rx." + type, bytes);
    }
    const ServerStats& st = s.server_stats();
    metrics->SetCounter(prefix + "server.client_requests", st.client_requests);
    metrics->SetCounter(prefix + "server.replies_sent", st.replies_sent);
    metrics->SetCounter(prefix + "server.ops_executed", st.ops_executed);
    metrics->SetCounter(prefix + "server.ro_skipped", st.ro_skipped);
    metrics->SetCounter(prefix + "server.feedback_sent", st.feedback_sent);
    metrics->SetCounter(prefix + "server.dedup_hits", st.dedup_hits);
    metrics->SetCounter(prefix + "server.dedup_replies", st.dedup_replies);
    metrics->SetCounter(prefix + "server.double_applies", st.double_applies);
    metrics->SetCounter(prefix + "server.retransmits_inflight", st.retransmits_inflight);
    metrics->SetCounter(prefix + "server.unordered_gc", st.unordered_gc);
    metrics->SetCounter(prefix + "server.snapshots_restored", st.snapshots_restored);
    metrics->SetCounter(prefix + "server.fc_reconcile_answers", st.fc_reconcile_answers);
    metrics->SetCounter(prefix + "server.read_index_local", st.read_index_local);
    metrics->SetCounter(prefix + "server.read_index_forwarded", st.read_index_forwarded);
    metrics->SetCounter(prefix + "server.read_index_remote", st.read_index_remote);
    metrics->SetCounter(prefix + "server.read_index_queued", st.read_index_queued);
    metrics->SetCounter(prefix + "server.read_index_dropped", st.read_index_dropped);
    if (s.raft() != nullptr) {
      const RaftStats& rs = s.raft()->stats();
      metrics->SetCounter(prefix + "raft.elections_started", rs.elections_started);
      metrics->SetCounter(prefix + "raft.times_leader", rs.times_leader);
      metrics->SetCounter(prefix + "raft.ae_sent", rs.ae_sent);
      metrics->SetCounter(prefix + "raft.ae_received", rs.ae_received);
      metrics->SetCounter(prefix + "raft.entries_appended", rs.entries_appended);
      metrics->SetCounter(prefix + "raft.recoveries_requested", rs.recoveries_requested);
      metrics->SetCounter(prefix + "raft.recoveries_served", rs.recoveries_served);
      metrics->SetCounter(prefix + "raft.submits_rejected", rs.submits_rejected);
      metrics->SetCounter(prefix + "raft.snapshots_sent", rs.snapshots_sent);
      metrics->SetCounter(prefix + "raft.snapshots_installed", rs.snapshots_installed);
      metrics->SetCounter(prefix + "raft.config_changes_proposed", rs.config_changes_proposed);
      metrics->SetCounter(prefix + "raft.config_changes_committed", rs.config_changes_committed);
      metrics->SetCounter(prefix + "raft.config_changes_aborted", rs.config_changes_aborted);
      metrics->SetCounter(prefix + "raft.learners_promoted", rs.learners_promoted);
      metrics->SetCounter(prefix + "raft.learner_catchup_ns_total", rs.learner_catchup_ns_total);
      metrics->SetCounter(prefix + "raft.prevote_rounds", rs.prevote_rounds);
      metrics->SetCounter(prefix + "raft.prevote_granted", rs.prevote_granted);
      metrics->SetCounter(prefix + "raft.prevote_rejected", rs.prevote_rejected);
      metrics->SetCounter(prefix + "raft.stepdowns_check_quorum", rs.stepdowns_check_quorum);
      metrics->SetCounter(prefix + "raft.votes_ignored_sticky", rs.votes_ignored_sticky);
      metrics->SetCounter(prefix + "raft.read_index_served", rs.read_index_served);
      metrics->SetCounter(prefix + "raft.read_index_rejected", rs.read_index_rejected);
      metrics->SetCounter(prefix + "raft.agg_fallbacks", rs.agg_fallbacks);
      metrics->SetCounter(prefix + "raft.acks_deferred_persist", rs.acks_deferred_persist);
      metrics->SetCounter(prefix + "raft.acks_dropped_crash", rs.acks_dropped_crash);
      metrics->SetCounter(prefix + "raft.campaigns_blocked_suspect",
                          rs.campaigns_blocked_suspect);
      metrics->SetCounter(prefix + "raft.suspect_repaired", rs.suspect_repaired);
      metrics->SetGauge(prefix + "raft.commit_index",
                        static_cast<int64_t>(s.raft()->commit_index()));
      metrics->SetGauge(prefix + "raft.applied_index",
                        static_cast<int64_t>(s.raft()->applied_index()));
      metrics->SetGauge(prefix + "raft.durable_index",
                        static_cast<int64_t>(s.raft()->durable_index()));
    }
    if (s.storage() != nullptr) {
      const StorageStats& ss = s.storage()->stats();
      metrics->SetCounter(prefix + "storage.entry_records", ss.entry_records);
      metrics->SetCounter(prefix + "storage.meta_records", ss.meta_records);
      metrics->SetCounter(prefix + "storage.snapshots_saved", ss.snapshots_saved);
      metrics->SetCounter(prefix + "storage.recoveries", ss.recoveries);
      metrics->SetCounter(prefix + "storage.recovered_entries", ss.recovered_entries);
      metrics->SetCounter(prefix + "storage.torn_truncations", ss.torn_truncations);
      metrics->SetCounter(prefix + "storage.corrupt_records", ss.corrupt_records);
      metrics->SetCounter(prefix + "storage.suspect_recoveries", ss.suspect_recoveries);
      metrics->SetCounter(prefix + "storage.segments_dropped", ss.segments_dropped);
      const SimDiskStats& ds = s.disk()->stats();
      metrics->SetCounter(prefix + "disk.appends", ds.appends);
      metrics->SetCounter(prefix + "disk.bytes_written", ds.bytes_written);
      metrics->SetCounter(prefix + "disk.syncs", ds.syncs);
      metrics->SetCounter(prefix + "disk.sync_coalesced", ds.coalesced);
      metrics->SetCounter(prefix + "disk.crashes", ds.crashes);
      metrics->SetCounter(prefix + "disk.bytes_lost", ds.bytes_lost);
      metrics->SetCounter(prefix + "disk.torn_crashes", ds.torn_crashes);
      metrics->SetCounter(prefix + "disk.flips", ds.flips);
      metrics->SetCounter(prefix + "disk.stall_ns", ds.stall_ns);
    }
    metrics->SetGauge(prefix + "net_thread.busy_ns", s.net_thread().total_busy());
    metrics->SetGauge(prefix + "app_thread.busy_ns", s.app_thread().total_busy());
  }
  metrics->SetCounter(scope + "fabric/delivered_msgs", net_->delivered_msgs());
  metrics->SetCounter(scope + "fabric/dropped_msgs", net_->dropped_msgs());
  metrics->SetCounter(scope + "fabric/dropped_by_fault", net_->dropped_by_fault());
  if (flow_control_ != nullptr) {
    metrics->SetCounter(scope + "flow_control/forwarded", flow_control_->forwarded());
    metrics->SetCounter(scope + "flow_control/nacked", flow_control_->nacked());
    metrics->SetGauge(scope + "flow_control/outstanding", flow_control_->outstanding());
    metrics->SetCounter(scope + "flow_control/reconciles_started",
                        flow_control_->reconciles_started());
    metrics->SetCounter(scope + "flow_control/reconciled_released",
                        flow_control_->reconciled_released());
    metrics->SetCounter(scope + "flow_control/force_released", flow_control_->force_released());
  }
  if (aggregator_ != nullptr) {
    const Aggregator::AggStats& as = aggregator_->agg_stats();
    metrics->SetCounter(scope + "aggregator/ae_forwarded", as.ae_forwarded);
    metrics->SetCounter(scope + "aggregator/replies_absorbed", as.replies_absorbed);
    metrics->SetCounter(scope + "aggregator/commits_sent", as.commits_sent);
    metrics->SetCounter(scope + "aggregator/flushes", as.flushes);
    metrics->SetCounter(scope + "aggregator/reconfigures", as.reconfigures);
  }
  metrics->SetGauge(scope + "cluster/members", static_cast<int64_t>(members_.size()));
  metrics->SetGauge(scope + "cluster/config_idx", static_cast<int64_t>(applied_config_idx_));
}

NodeId Cluster::LeaderId() const {
  for (size_t n = 0; n < servers_.size(); ++n) {
    if (!servers_[n]->failed() && servers_[n]->IsLeader()) {
      return static_cast<NodeId>(n);
    }
  }
  return kInvalidNode;
}

NodeId Cluster::WaitForLeader(TimeNs deadline) {
  if (config_.mode == ClusterMode::kUnreplicated) {
    return 0;
  }
  while (LeaderId() == kInvalidNode && sim_->Now() < deadline) {
    if (!sim_->Step()) {
      break;
    }
  }
  return LeaderId();
}

Addr Cluster::ClientTarget() const {
  switch (config_.mode) {
    case ClusterMode::kUnreplicated:
      return server_hosts_[0];
    case ClusterMode::kVanillaRaft: {
      const NodeId leader = LeaderId();
      return server_hosts_[static_cast<size_t>(leader == kInvalidNode ? 0 : leader)];
    }
    case ClusterMode::kHovercRaft:
    case ClusterMode::kHovercRaftPP:
      HC_CHECK(flow_control_ != nullptr);
      return flow_control_->id();
  }
  return server_hosts_[0];
}

Addr Cluster::RetryTarget() const {
  switch (config_.mode) {
    case ClusterMode::kHovercRaft:
    case ClusterMode::kHovercRaftPP:
      HC_CHECK(group_all_ != kInvalidHost);
      return group_all_;
    default:
      return ClientTarget();
  }
}

void Cluster::KillNode(NodeId node) {
  if (node == kInvalidNode) {
    return;  // e.g. KillLeader during an election window
  }
  HC_CHECK_GE(node, 0);
  HC_CHECK_LT(static_cast<size_t>(node), servers_.size());
  servers_[static_cast<size_t>(node)]->set_failed(true);
}

void Cluster::PowerFailNode(NodeId node) {
  if (node == kInvalidNode) {
    return;
  }
  HC_CHECK_GE(node, 0);
  HC_CHECK_LT(static_cast<size_t>(node), servers_.size());
  servers_[static_cast<size_t>(node)]->PowerFail();
}

void Cluster::RestartNode(NodeId node) {
  HC_CHECK_GE(node, 0);
  HC_CHECK_LT(static_cast<size_t>(node), servers_.size());
  servers_[static_cast<size_t>(node)]->Restart();
}

// ---------------------------------------------------------------------------
// Dynamic membership
// ---------------------------------------------------------------------------

void Cluster::AddServer(NodeId node) {
  TryConfigChange(node, /*add=*/true, /*attempts_left=*/5000);
}

void Cluster::RemoveServer(NodeId node) {
  TryConfigChange(node, /*add=*/false, /*attempts_left=*/5000);
}

bool Cluster::IsMember(NodeId node) const {
  for (NodeId m : members_) {
    if (m == node) {
      return true;
    }
  }
  return false;
}

void Cluster::TryConfigChange(NodeId node, bool add, int32_t attempts_left) {
  HC_CHECK_GE(node, 0);
  HC_CHECK_LT(static_cast<size_t>(node), servers_.size());
  // The goal is reached only when the change *commits* (members_ tracks the
  // committed config chain): a proposal can be accepted by a stale leader and
  // truncated away on the next leader change, so acceptance alone is not
  // success. IsMember covers the learner phase of an add — committing the
  // learner config is enough; promotion is the leader's job from there.
  const bool satisfied = add ? IsMember(node) : !IsMember(node);
  if (satisfied) {
    return;
  }
  const NodeId leader = LeaderId();
  if (leader != kInvalidNode) {
    RaftNode* raft = servers_[static_cast<size_t>(leader)]->raft();
    // May be rejected (a change already in flight, possibly our own earlier
    // proposal); the retry below re-checks committed state either way.
    const bool accepted = add ? raft->StartAddServer(node) : raft->StartRemoveServer(node);
    (void)accepted;
  }
  // Not committed yet: retry at the management-plane cadence until the
  // budget runs out.
  if (attempts_left <= 0) {
    HC_LOG_WARN("cluster: giving up on %s of node %d", add ? "AddServer" : "RemoveServer", node);
    return;
  }
  sim_->After(Millis(1), [this, node, add, attempts_left]() {
    TryConfigChange(node, add, attempts_left - 1);
  });
}

void Cluster::ApplyCommittedConfig(NodeId self, const MembershipConfig& config, LogIndex idx) {
  (void)self;  // the first replica to report a commit applies it for all
  if (idx <= applied_config_idx_) {
    return;
  }
  applied_config_idx_ = idx;
  const std::vector<NodeId> previous_members = members_;
  members_ = config.members;

  // 1. Multicast groups: the replication group tracks the member set (the
  //    switch joins/leaves replicas), and each per-node exclusion group —
  //    the aggregator's fan-out target when that node leads — tracks it too.
  if (group_all_ != kInvalidHost) {
    std::vector<HostId> member_hosts;
    member_hosts.reserve(config.members.size());
    for (NodeId m : config.members) {
      member_hosts.push_back(server_hosts_[static_cast<size_t>(m)]);
    }
    net_->SetGroupMembers(group_all_, member_hosts);
  }
  for (size_t n = 0; n < groups_excluding_.size(); ++n) {
    std::vector<HostId> group;
    for (NodeId m : config.members) {
      if (m != static_cast<NodeId>(n)) {
        group.push_back(server_hosts_[static_cast<size_t>(m)]);
      }
    }
    net_->SetGroupMembers(groups_excluding_[n], std::move(group));
  }

  // 2. Aggregator: install the new voter set and epoch (flushes registers).
  if (aggregator_ != nullptr) {
    aggregator_->Reconfigure(config.voters, idx);
  }

  // 3. Removed servers are retired from the management plane — a removed
  //    node that was partitioned when its removal committed never observes
  //    it locally. Only nodes *leaving* the config are retired; spares that
  //    were never members stay available for a later AddServer. Deferred so
  //    this runs outside the Raft callback that delivered the commit.
  for (NodeId removed : previous_members) {
    if (config.IsMember(removed)) {
      continue;
    }
    ReplicatedServer* s = servers_[static_cast<size_t>(removed)].get();
    if (s->raft() != nullptr && !s->raft()->retired()) {
      sim_->After(0, [s]() {
        if (!s->failed() && s->raft() != nullptr) {
          s->raft()->Retire();
        }
      });
    }
  }
}

int32_t Cluster::LiveNodeCount() const {
  int32_t live = 0;
  for (const auto& s : servers_) {
    if (!s->failed()) {
      ++live;
    }
  }
  return live;
}

uint64_t Cluster::TotalReplies() const {
  uint64_t total = 0;
  for (const auto& s : servers_) {
    total += s->server_stats().replies_sent;
  }
  return total;
}

uint64_t Cluster::TotalExecuted() const {
  uint64_t total = 0;
  for (const auto& s : servers_) {
    total += s->server_stats().ops_executed;
  }
  return total;
}

}  // namespace hovercraft
