#include "src/core/cluster.h"

#include <utility>

#include "src/common/check.h"

namespace hovercraft {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), net_(&sim_, config_.costs, config.seed ^ 0xFEEDFACE12345678ull) {
  HC_CHECK(config_.app_factory != nullptr);
  HC_CHECK_GT(config_.nodes, 0);
  const bool replicated = config_.mode != ClusterMode::kUnreplicated;
  const int32_t nodes = replicated ? config_.nodes : 1;

  for (NodeId n = 0; n < nodes; ++n) {
    ServerConfig sc = config_.server_template;
    sc.mode = config_.mode;
    sc.raft = config_.raft;
    sc.raft.id = n;
    sc.raft.cluster_size = nodes;
    switch (config_.mode) {
      case ClusterMode::kUnreplicated:
      case ClusterMode::kVanillaRaft:
        sc.raft.metadata_only = false;
        sc.raft.assign_repliers = false;
        sc.raft.use_aggregator = false;
        sc.raft.replier_policy = ReplierPolicy::kLeaderOnly;
        break;
      case ClusterMode::kHovercRaft:
      case ClusterMode::kHovercRaftPP:
        sc.raft.metadata_only = true;
        // Replier assignment (and its bounded-queue gating, section 3.4) is
        // part of the load-balancing design; with kLeaderOnly the paper's
        // "reply load balancing disabled" baseline applies and the leader
        // answers everything, like vanilla Raft.
        sc.raft.assign_repliers = (config_.replier_policy != ReplierPolicy::kLeaderOnly);
        sc.raft.replier_policy = config_.replier_policy;
        sc.raft.bounded_queue_depth = config_.bounded_queue_depth;
        sc.raft.use_aggregator = (config_.mode == ClusterMode::kHovercRaftPP);
        break;
    }
    if (config_.stagger_first_election && n == 0) {
      sc.raft.election_timeout_min = Millis(1);
      sc.raft.election_timeout_max = Millis(2);
    }
    auto server = std::make_unique<ReplicatedServer>(&sim_, config_.costs, sc,
                                                     config_.app_factory(),
                                                     config_.seed + 0x1000u + static_cast<uint64_t>(n));
    server_hosts_.push_back(net_.Attach(server.get()));
    servers_.push_back(std::move(server));
  }

  HostId aggregator_host = kInvalidHost;
  HostId flow_control_host = kInvalidHost;

  if (config_.mode == ClusterMode::kHovercRaft || config_.mode == ClusterMode::kHovercRaftPP) {
    group_all_ = net_.CreateMulticastGroup(server_hosts_);

    if (config_.mode == ClusterMode::kHovercRaftPP) {
      aggregator_ = std::make_unique<Aggregator>(&sim_, config_.costs, nodes);
      aggregator_host = net_.Attach(aggregator_.get());
      std::vector<Addr> groups_excluding;
      for (NodeId n = 0; n < nodes; ++n) {
        std::vector<HostId> members;
        for (NodeId m = 0; m < nodes; ++m) {
          if (m != n) {
            members.push_back(server_hosts_[static_cast<size_t>(m)]);
          }
        }
        groups_excluding.push_back(net_.CreateMulticastGroup(std::move(members)));
      }
      aggregator_->Configure(server_hosts_, group_all_, std::move(groups_excluding));
    }

    flow_control_ = std::make_unique<FlowControl>(&sim_, config_.costs, group_all_,
                                                  config_.flow_control_threshold);
    flow_control_host = net_.Attach(flow_control_.get());
  }

  for (NodeId n = 0; n < nodes; ++n) {
    servers_[static_cast<size_t>(n)]->Wire(server_hosts_, aggregator_host, flow_control_host);
  }
  for (NodeId n = 0; n < nodes; ++n) {
    servers_[static_cast<size_t>(n)]->Start();
  }
}

Cluster::~Cluster() = default;

NodeId Cluster::LeaderId() const {
  for (size_t n = 0; n < servers_.size(); ++n) {
    if (!servers_[n]->failed() && servers_[n]->IsLeader()) {
      return static_cast<NodeId>(n);
    }
  }
  return kInvalidNode;
}

NodeId Cluster::WaitForLeader(TimeNs deadline) {
  if (config_.mode == ClusterMode::kUnreplicated) {
    return 0;
  }
  while (LeaderId() == kInvalidNode && sim_.Now() < deadline) {
    if (!sim_.Step()) {
      break;
    }
  }
  return LeaderId();
}

Addr Cluster::ClientTarget() const {
  switch (config_.mode) {
    case ClusterMode::kUnreplicated:
      return server_hosts_[0];
    case ClusterMode::kVanillaRaft: {
      const NodeId leader = LeaderId();
      return server_hosts_[static_cast<size_t>(leader == kInvalidNode ? 0 : leader)];
    }
    case ClusterMode::kHovercRaft:
    case ClusterMode::kHovercRaftPP:
      HC_CHECK(flow_control_ != nullptr);
      return flow_control_->id();
  }
  return server_hosts_[0];
}

Addr Cluster::RetryTarget() const {
  switch (config_.mode) {
    case ClusterMode::kHovercRaft:
    case ClusterMode::kHovercRaftPP:
      HC_CHECK(group_all_ != kInvalidHost);
      return group_all_;
    default:
      return ClientTarget();
  }
}

void Cluster::KillNode(NodeId node) {
  if (node == kInvalidNode) {
    return;  // e.g. KillLeader during an election window
  }
  HC_CHECK_GE(node, 0);
  HC_CHECK_LT(static_cast<size_t>(node), servers_.size());
  servers_[static_cast<size_t>(node)]->set_failed(true);
}

void Cluster::RestartNode(NodeId node) {
  HC_CHECK_GE(node, 0);
  HC_CHECK_LT(static_cast<size_t>(node), servers_.size());
  servers_[static_cast<size_t>(node)]->Restart();
}

int32_t Cluster::LiveNodeCount() const {
  int32_t live = 0;
  for (const auto& s : servers_) {
    if (!s->failed()) {
      ++live;
    }
  }
  return live;
}

uint64_t Cluster::TotalReplies() const {
  uint64_t total = 0;
  for (const auto& s : servers_) {
    total += s->server_stats().replies_sent;
  }
  return total;
}

uint64_t Cluster::TotalExecuted() const {
  uint64_t total = 0;
  for (const auto& s : servers_) {
    total += s->server_stats().ops_executed;
  }
  return total;
}

}  // namespace hovercraft
