// Builds and owns a complete simulated deployment: N server hosts running one
// of the four cluster modes, the client-side middleboxes (flow control,
// aggregator) the mode needs, and the multicast groups. The benches,
// examples and integration tests all start from here.
#ifndef SRC_CORE_CLUSTER_H_
#define SRC_CORE_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/app/state_machine.h"
#include "src/common/types.h"
#include "src/core/aggregator.h"
#include "src/core/flow_control.h"
#include "src/core/server.h"
#include "src/net/network.h"
#include "src/sim/cost_model.h"
#include "src/sim/simulator.h"

namespace hovercraft {

namespace obs {
class CriticalPath;
class FlightRecorder;
class MetricsRegistry;
class Observability;
class Watchdog;
}  // namespace obs

struct ClusterConfig {
  ClusterMode mode = ClusterMode::kHovercRaft;
  int32_t nodes = 3;
  // Extra servers built, wired and started alongside the initial `nodes`
  // members, but passive: they hold no vote, receive no replication traffic
  // and never campaign until AddServer() brings them into the config
  // (dynamic membership). Ignored by kUnreplicated.
  int32_t spare_nodes = 0;
  // Factory invoked once per node so every replica owns its own state.
  std::function<std::unique_ptr<StateMachine>()> app_factory;

  // Reply / read-only load balancing (paper sections 3.3-3.6). kLeaderOnly
  // reproduces the "load balancing disabled" baseline of section 7.1.
  ReplierPolicy replier_policy = ReplierPolicy::kLeaderOnly;
  int64_t bounded_queue_depth = 128;

  // Flow control threshold (paper section 6.3); <= 0 disables the cap.
  int64_t flow_control_threshold = 0;

  CostModel costs;
  RaftOptions raft;  // timeouts / batching template; id & mode flags filled in
  ServerConfig server_template;
  uint64_t seed = 1;

  // Stagger node 0's election timeout low so the first election is prompt
  // and deterministic (pure convenience for experiments; disable to test
  // real contention).
  bool stagger_first_election = true;

  // Sharded composition (src/shard): borrow an external simulator and
  // network instead of owning them, so N groups share one fabric and one
  // virtual clock. Both non-owning and set together (or neither); they must
  // outlive the cluster. A borrowing cluster never touches simulator-level
  // singletons — observability, flight recorder and sinks are the sharded
  // harness's job — so `obs`, `flight_recorder*` and `watchdog` below are
  // ignored in this mode.
  Simulator* external_sim = nullptr;
  Network* external_net = nullptr;

  // Observability bundle (tracing + metrics + samplers). Non-owning; null
  // leaves every hook disabled. The cluster attaches it to its simulator,
  // names the trace tracks, and registers queue-depth samplers for its
  // resources (removed again in the destructor).
  obs::Observability* obs = nullptr;
  // Prefix for metric names in ExportMetrics, e.g. "hovercraft/r80000/";
  // lets several load points share one registry without colliding.
  std::string obs_scope;

  // Always-on flight recorder: the cluster owns a FlightRecorder with this
  // many slots per node and attaches it to its simulator, independent of the
  // obs bundle above — post-mortem dumps work even with tracing off. 0
  // disables recording entirely (the one-branch hot-path check still runs,
  // but finds no recorder).
  size_t flight_recorder_depth = 512;
  // External recorder override (non-owning). When set, the cluster attaches
  // this instead of building its own; flight_recorder_depth is ignored.
  // Lets a harness share one recorder (and its sinks) across clusters.
  obs::FlightRecorder* flight_recorder = nullptr;
  // Optional online sinks (non-owning), attached to whichever recorder is
  // active and detached in the destructor. The watchdog checks cross-node
  // safety invariants on every event; the critical-path analyzer accumulates
  // per-stage tail attribution.
  obs::Watchdog* watchdog = nullptr;
  obs::CriticalPath* critical_path = nullptr;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Simulator& sim() { return *sim_; }
  Network& network() { return *net_; }
  const ClusterConfig& config() const { return config_; }

  // Runs the simulator until a leader exists (replicated modes). Returns the
  // leader's node id.
  NodeId WaitForLeader(TimeNs deadline = Seconds(2));

  // Current leader, or kInvalidNode.
  NodeId LeaderId() const;

  // Where clients should address requests in the current mode: the server
  // (UnRep), the leader (VanillaRaft), or the flow-control middlebox
  // (HovercRaft/++ — it rewrites to the multicast group).
  Addr ClientTarget() const;

  // Where client retransmissions go. In the multicast modes they address the
  // replication group directly, bypassing the flow-control middlebox: the
  // first attempt already consumed (and will repay) the admission slot, so
  // re-admitting a retry would leak slots and double-count load. In the
  // other modes retries follow ClientTarget(), which re-resolves the leader.
  Addr RetryTarget() const;

  // Crash injection (fail-stop). Killing an already-dead node is a no-op;
  // killing every node (including the last majority member) stalls progress
  // but never crashes the simulation. KillLeader with no live leader is a
  // no-op.
  void KillNode(NodeId node);
  void KillLeader() { KillNode(LeaderId()); }

  // Power loss: like KillNode, but the node's simulated disk crashes too —
  // the unsynced WAL suffix (and any not-yet-durable acknowledgement) is
  // genuinely lost, and RestartNode will run WAL recovery instead of
  // resuming from process memory. No-op on an already-failed node.
  void PowerFailNode(NodeId node);

  // Restarts a killed node. After a fail-stop kill, process memory is intact
  // and the node resumes where it halted. After PowerFailNode, only what was
  // fsynced survives: the node replays its WAL (hard state, log, snapshot),
  // CRC-validates every record, truncates any torn unsynced tail, reloads
  // app + session state from its latest local snapshot, and rejoins as a
  // follower — suspect (barred from campaigning) if durable bytes were lost,
  // until the leader's AppendEntries / InstallSnapshot path has re-fetched
  // them. Soft state (the unordered set) is lost either way. No-op on a
  // live node.
  void RestartNode(NodeId node);

  // Number of nodes currently not failed.
  int32_t LiveNodeCount() const;

  // --- dynamic membership (management plane) -------------------------------
  // Asks the current leader to add `node` (a built server, typically a
  // spare) to the replication group, or to remove a member. The leader is
  // resolved at call time; if there is none, or it rejects the change
  // (another change already in flight), the request retries every 1ms until
  // the config reflects the goal or the retry budget runs out. Use
  // sim().After(...) to schedule calls at a point in virtual time.
  void AddServer(NodeId node);
  void RemoveServer(NodeId node);

  // The member set (voters + learners) of the latest config this cluster
  // observed committing, and the log index of that config entry.
  const std::vector<NodeId>& Members() const { return members_; }
  bool IsMember(NodeId node) const;
  LogIndex applied_config_idx() const { return applied_config_idx_; }

  int32_t node_count() const { return config_.nodes; }
  // Total servers built, including spares not (yet) in the config.
  int32_t total_node_count() const { return static_cast<int32_t>(servers_.size()); }
  ReplicatedServer& server(NodeId node) { return *servers_[static_cast<size_t>(node)]; }
  const ReplicatedServer& server(NodeId node) const {
    return *servers_[static_cast<size_t>(node)];
  }
  HostId server_host(NodeId node) const { return server_hosts_[static_cast<size_t>(node)]; }
  Aggregator* aggregator() { return aggregator_.get(); }
  FlowControl* flow_control() { return flow_control_.get(); }

  // Sum of a per-server statistic across live nodes.
  uint64_t TotalReplies() const;
  uint64_t TotalExecuted() const;

  // Snapshots every counter this deployment maintains (net, server, raft,
  // flow control, aggregator, fabric) into `metrics`, each name prefixed
  // with config().obs_scope. Idempotent: counters are Set, not Added.
  void ExportMetrics(obs::MetricsRegistry* metrics);

 private:
  // Names trace tracks and registers the periodic queue-depth samplers on
  // config_.obs (called from the constructor when an obs bundle is present).
  void InstallObservability();
  // Proposes add/remove to the leader, retrying every 1ms until the active
  // config reflects the goal (a change may already be in flight, or no
  // leader may exist yet).
  void TryConfigChange(NodeId node, bool add, int32_t attempts_left);
  // Installed on every server as the config-committed callback: applies a
  // newly committed membership config to the cluster-level machinery
  // (multicast groups, aggregator epoch, retiring removed servers).
  // Idempotent per config index — every replica reports the same commit.
  void ApplyCommittedConfig(NodeId self, const MembershipConfig& config, LogIndex idx);

  // True when this cluster borrowed its simulator/network (sharded
  // composition) rather than owning them.
  bool borrowed() const { return config_.external_sim != nullptr; }

  ClusterConfig config_;
  // Owned when the config does not borrow an external one; sim_/net_ point
  // at whichever is active so the rest of the class is agnostic.
  std::unique_ptr<Simulator> owned_sim_;
  Simulator* sim_;
  // Default flight recorder, built when no external one is supplied and
  // flight_recorder_depth > 0. Declared before net_/servers_ so it outlives
  // every host that records into it.
  std::unique_ptr<obs::FlightRecorder> owned_recorder_;
  // Whichever recorder (owned or external) the sinks were attached to; the
  // destructor detaches them from here.
  obs::FlightRecorder* active_recorder_ = nullptr;
  std::unique_ptr<Network> owned_net_;
  Network* net_;
  std::vector<std::unique_ptr<ReplicatedServer>> servers_;
  std::vector<HostId> server_hosts_;
  std::unique_ptr<Aggregator> aggregator_;
  std::unique_ptr<FlowControl> flow_control_;
  Addr group_all_ = kInvalidHost;
  // Per-node multicast group excluding that node (aggregator fan-out
  // targets); rebuilt on every committed config change.
  std::vector<Addr> groups_excluding_;
  // Latest committed membership this cluster observed (see Members()).
  std::vector<NodeId> members_;
  LogIndex applied_config_idx_ = 0;
};

}  // namespace hovercraft

#endif  // SRC_CORE_CLUSTER_H_
