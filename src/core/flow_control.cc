#include "src/core/flow_control.h"

#include <memory>
#include <string>

#include "src/common/logging.h"
#include "src/obs/observability.h"
#include "src/r2p2/messages.h"

namespace hovercraft {

FlowControl::FlowControl(Simulator* sim, const CostModel& costs, Addr group, int64_t threshold)
    : Host(sim, costs, Kind::kDevice), group_(group), threshold_(threshold) {}

void FlowControl::HandleMessage(HostId src, const MessagePtr& msg) {
  if (const auto* req = dynamic_cast<const RpcRequest*>(msg.get())) {
    if (threshold_ > 0 && outstanding_ >= threshold_) {
      ++nacked_;
      if (auto* tracer = obs::TracerOf(sim())) {
        tracer->MarkStage(req->rid(), obs::Stage::kNacked, kInvalidNode, sim()->Now());
        tracer->Instant(obs::TrackOfHost(id()), obs::kTidEvents, "nack", sim()->Now(),
                        "outstanding " + std::to_string(outstanding_) + "/" +
                            std::to_string(threshold_));
      }
      Send(src, std::make_shared<NackMsg>(req->rid()));
      return;
    }
    ++outstanding_;
    ++forwarded_;
    Send(group_, msg);
    return;
  }
  if (dynamic_cast<const FeedbackMsg*>(msg.get()) != nullptr) {
    if (outstanding_ > 0) {
      --outstanding_;
    }
    return;
  }
  HC_LOG_WARN("flow control: unexpected message %s", msg->Name());
}

}  // namespace hovercraft
