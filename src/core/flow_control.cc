#include "src/core/flow_control.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/observability.h"
#include "src/r2p2/messages.h"
#include "src/r2p2/shard.h"

namespace hovercraft {

FlowControl::FlowControl(Simulator* sim, const CostModel& costs, Addr group, int64_t threshold)
    : Host(sim, costs, Kind::kDevice), group_(group), threshold_(threshold) {}

void FlowControl::HandleMessage(HostId src, const MessagePtr& msg) {
  if (const auto* req = dynamic_cast<const RpcRequest*>(msg.get())) {
    // Shard gate first, before any ledger state is touched: a request for a
    // slot this group does not serve is redirected with the current map
    // epoch, so the client refreshes its map and retries at the owner.
    if (shard_gate_ && IsDataSlot(req->shard_slot())) {
      const uint64_t epoch = shard_gate_(req->shard_slot());
      if (epoch != 0) {
        ++wrong_shard_nacked_;
        Send(src, std::make_shared<WrongShardNack>(req->rid(), epoch));
        return;
      }
    }
    if (threshold_ > 0 && outstanding() >= threshold_ && open_.count(req->rid()) == 0) {
      ++nacked_;
      obs::MarkStageAll(sim(), req->rid(), obs::Stage::kNacked, kInvalidNode, sim()->Now());
      if (auto* tracer = obs::TracerOf(sim())) {
        tracer->Instant(obs::TrackOfHost(id()), obs::kTidEvents, "nack", sim()->Now(),
                        "outstanding " + std::to_string(outstanding()) + "/" +
                            std::to_string(threshold_));
      }
      RecordFlowOp(obs::FrFlowOp::kNack);
      Send(src, std::make_shared<NackMsg>(req->rid()));
      return;
    }
    // Admission is per rid: a retransmitted attempt re-uses its slot instead
    // of opening a second one that no FEEDBACK would ever repay.
    if (open_.insert(req->rid()).second) {
      RecordFlowOp(obs::FrFlowOp::kOpen);
    }
    ++forwarded_;
    Send(group_, msg);
    return;
  }
  if (const auto* fb = dynamic_cast<const FeedbackMsg*>(msg.get())) {
    if (open_.erase(fb->rid()) > 0) {  // idempotent: duplicate FEEDBACK is a no-op
      RecordFlowOp(obs::FrFlowOp::kClose);
    }
    return;
  }
  if (const auto* lc = dynamic_cast<const FcLeaderChangeMsg*>(msg.get())) {
    // Failover: slots whose designated replier died will never see FEEDBACK.
    // Snapshot the open ledger and have the new leader classify it.
    leader_ = lc->leader();
    sim()->Cancel(reconcile_timer_);
    reconcile_timer_ = kInvalidEvent;
    reconcile_pending_.assign(open_.begin(), open_.end());
    std::sort(reconcile_pending_.begin(), reconcile_pending_.end(),
              [](const RequestId& a, const RequestId& b) {
                return a.client != b.client ? a.client < b.client : a.seq < b.seq;
              });
    reconcile_rounds_ = 0;
    if (!reconcile_pending_.empty()) {
      ++reconciles_started_;
      if (auto* tracer = obs::TracerOf(sim())) {
        tracer->Instant(obs::TrackOfHost(id()), obs::kTidEvents, "fc-reconcile", sim()->Now(),
                        std::to_string(reconcile_pending_.size()) + " open slots");
      }
      SendReconcileQuery();
    }
    return;
  }
  if (const auto* rep = dynamic_cast<const FcReconcileRep*>(msg.get())) {
    for (size_t i = 0; i < rep->rids().size() && i < rep->states().size(); ++i) {
      if (rep->states()[i] == FcSlotState::kPending) {
        continue;  // FEEDBACK (or the next round) will cover it
      }
      if (open_.erase(rep->rids()[i]) > 0) {
        ++reconciled_released_;
        RecordFlowOp(obs::FrFlowOp::kClose);
      }
    }
    if (reconcile_rounds_ >= kMaxReconcileRounds) {
      // The leader kept reporting these as pending; assume their FEEDBACK is
      // gone for good rather than pinning the admission window forever.
      for (const RequestId& rid : reconcile_pending_) {
        if (open_.erase(rid) > 0) {
          ++force_released_;
          RecordFlowOp(obs::FrFlowOp::kForceRelease);
          HC_LOG_WARN("flow control: force-released slot for rid {%d,%llu}", rid.client,
                      static_cast<unsigned long long>(rid.seq));
        }
      }
      reconcile_pending_.clear();
      return;
    }
    reconcile_timer_ = sim()->After(kReconcileInterval, [this]() {
      reconcile_timer_ = kInvalidEvent;
      SendReconcileQuery();
    });
    return;
  }
  HC_LOG_WARN("flow control: unexpected message %s", msg->Name());
}

void FlowControl::RecordFlowOp(obs::FrFlowOp op) {
  // Ledger event for the watchdog's balance invariant: `a` is the open-slot
  // count *after* the operation, so the event stream and the reported ledger
  // must always agree — any drift is a leaked or double-released slot.
  if (auto* fr = obs::FrOf(sim())) {
    fr->Record(sim()->Now(), obs_node_, obs::FrType::kFlow,
               static_cast<uint64_t>(open_.size()), static_cast<uint64_t>(threshold_),
               static_cast<uint32_t>(op));
  }
}

void FlowControl::SendReconcileQuery() {
  // Drop slots that resolved (FEEDBACK or a previous round) in the meantime.
  reconcile_pending_.erase(std::remove_if(reconcile_pending_.begin(), reconcile_pending_.end(),
                                          [this](const RequestId& rid) {
                                            return open_.count(rid) == 0;
                                          }),
                           reconcile_pending_.end());
  if (reconcile_pending_.empty() || leader_ == kInvalidHost) {
    return;  // converged
  }
  ++reconcile_rounds_;
  Send(leader_, std::make_shared<FcReconcileReq>(reconcile_pending_));
}

}  // namespace hovercraft
