// The flow-control middlebox (paper section 6.3).
//
// HovercRaft replaces the implicit backpressure of a single leader with an
// explicit in-network counter: clients address requests to the middlebox,
// which rewrites the destination to the fault-tolerance group's multicast IP
// while the number of outstanding requests is under the threshold, and NACKs
// new requests otherwise. R2P2 FEEDBACK messages sent by repliers decrement
// the counter. Like the aggregator, this is a line-rate device with a single
// register of soft state.
#ifndef SRC_CORE_FLOW_CONTROL_H_
#define SRC_CORE_FLOW_CONTROL_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/net/host.h"

namespace hovercraft {

class FlowControl final : public Host {
 public:
  // threshold <= 0 disables the cap (pure forwarder).
  FlowControl(Simulator* sim, const CostModel& costs, Addr group, int64_t threshold);

  void HandleMessage(HostId src, const MessagePtr& msg) override;

  int64_t outstanding() const { return outstanding_; }
  uint64_t forwarded() const { return forwarded_; }
  uint64_t nacked() const { return nacked_; }

 private:
  Addr group_;
  int64_t threshold_;
  int64_t outstanding_ = 0;
  uint64_t forwarded_ = 0;
  uint64_t nacked_ = 0;
};

}  // namespace hovercraft

#endif  // SRC_CORE_FLOW_CONTROL_H_
