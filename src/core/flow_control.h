// The flow-control middlebox (paper section 6.3).
//
// HovercRaft replaces the implicit backpressure of a single leader with an
// explicit in-network counter: clients address requests to the middlebox,
// which rewrites the destination to the fault-tolerance group's multicast IP
// while the number of outstanding requests is under the threshold, and NACKs
// new requests otherwise. R2P2 FEEDBACK messages sent by repliers decrement
// the counter. Like the aggregator, this is a line-rate device with a single
// register of soft state.
//
// The ledger is a set of request ids rather than a bare counter, so FEEDBACK
// and forwarding are idempotent per rid, and so the slots left open by a
// failover (a designated replier that died never sends FEEDBACK) can be
// reconciled: a new leader announces itself, the middlebox sends it the open
// rids, and the leader classifies each as executed / pending / unknown.
// Executed and unknown slots are released immediately; pending ones are
// re-queried until they drain, with a bounded force-release backstop.
#ifndef SRC_CORE_FLOW_CONTROL_H_
#define SRC_CORE_FLOW_CONTROL_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"
#include "src/net/host.h"
#include "src/obs/flight_recorder.h"
#include "src/r2p2/request_id.h"

namespace hovercraft {

class FlowControl final : public Host {
 public:
  // threshold <= 0 disables the cap (pure forwarder).
  FlowControl(Simulator* sim, const CostModel& costs, Addr group, int64_t threshold);

  void HandleMessage(HostId src, const MessagePtr& msg) override;

  // Rewrites the replication target group (dynamic membership). New
  // admissions multicast to the new member set; open slots are untouched.
  void SetGroup(Addr group) { group_ = group; }

  // Sharding (src/shard): consulted BEFORE admission for data slots. Returns
  // 0 when this group serves the slot per the authoritative ShardMap, else
  // the map's current epoch — the request is answered with a
  // WrongShardNack(epoch) and no admission slot is ever charged, so a
  // redirect can never leak ledger state.
  using ShardGateFn = std::function<uint64_t(uint32_t slot)>;
  void set_shard_gate(ShardGateFn gate) { shard_gate_ = std::move(gate); }

  // Observability namespace for ledger events. Default kInvalidNode (the
  // historic single-group stream); sharded runs assign each group's
  // middlebox a pseudo-node inside the group's obs range so its node-
  // filtered watchdog still sees the flow-balance stream.
  void set_obs_node(NodeId node) { obs_node_ = node; }

  int64_t outstanding() const { return static_cast<int64_t>(open_.size()); }
  uint64_t forwarded() const { return forwarded_; }
  uint64_t nacked() const { return nacked_; }
  uint64_t wrong_shard_nacked() const { return wrong_shard_nacked_; }
  uint64_t reconciles_started() const { return reconciles_started_; }
  uint64_t reconciled_released() const { return reconciled_released_; }
  uint64_t force_released() const { return force_released_; }

 private:
  // Re-queries pending slots at the heartbeat-ish cadence until the ledger
  // converges; after this many rounds the remaining slots are force-released
  // (and counted — a healthy run never gets there).
  static constexpr int32_t kMaxReconcileRounds = 16;
  static constexpr TimeNs kReconcileInterval = Millis(1);

  void SendReconcileQuery();
  // Flight-recorder ledger event (open/close/nack/force-release), feeding the
  // watchdog's flow-balance invariant. Called only on actual state changes.
  void RecordFlowOp(obs::FrFlowOp op);

  Addr group_;
  int64_t threshold_;
  ShardGateFn shard_gate_;
  NodeId obs_node_ = kInvalidNode;
  std::unordered_set<RequestId, RequestIdHash> open_;
  uint64_t forwarded_ = 0;
  uint64_t nacked_ = 0;
  uint64_t wrong_shard_nacked_ = 0;

  // Reconcile state (one in flight at a time; a new leader restarts it).
  HostId leader_ = kInvalidHost;
  std::vector<RequestId> reconcile_pending_;
  int32_t reconcile_rounds_ = 0;
  EventId reconcile_timer_ = kInvalidEvent;
  uint64_t reconciles_started_ = 0;
  uint64_t reconciled_released_ = 0;
  uint64_t force_released_ = 0;
};

}  // namespace hovercraft

#endif  // SRC_CORE_FLOW_CONTROL_H_
