#include "src/core/server.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/obs/observability.h"
#include "src/raft/messages.h"
#include "src/raft/wal_codec.h"

namespace hovercraft {

ReplicatedServer::ReplicatedServer(Simulator* sim, const CostModel& costs,
                                   const ServerConfig& config, std::unique_ptr<StateMachine> app,
                                   uint64_t seed)
    : Host(sim, costs, Kind::kServer),
      config_(config),
      app_(std::move(app)),
      app_thread_(sim) {
  HC_CHECK(app_ != nullptr);
  InitShardState();
  if (IsReplicated()) {
    // Disk seed decorrelated from the raft RNG stream so adding durability
    // does not perturb existing election/jitter draws. The fsync cost is the
    // paper's persist_latency knob; zero keeps syncs inline and event-free.
    disk_ = std::make_unique<SimDisk>(sim, seed ^ 0x5EEDD15Cu, config_.raft.persist_latency);
    disk_->set_node(obs_node_id());
    storage_ = std::make_unique<StableStorage>(disk_.get(), config_.fsync_policy);
    storage_->set_node(obs_node_id());
    raft_ = std::make_unique<RaftNode>(sim, seed, config_.raft, this);
    raft_->set_storage(storage_.get());
    genesis_app_state_ = app_->SnapshotState();
  }
}

ReplicatedServer::~ReplicatedServer() = default;

void ReplicatedServer::InitShardState() {
  shard_ = ShardServeState{};
  shard_.sharded = config_.sharded;
  if (!config_.sharded) {
    return;
  }
  // Everything outside the owned set starts dropped: this group rejects
  // those slots until a committed install entry hands them over.
  std::vector<bool> owned(kShardSlots, false);
  for (uint32_t slot : config_.shard_owned_slots) {
    HC_CHECK(IsDataSlot(slot));
    owned[slot] = true;
  }
  for (uint32_t slot = 0; slot < kShardSlots; ++slot) {
    if (!owned[slot]) {
      shard_.Drop(slot, slot);
    }
  }
}

void ReplicatedServer::Wire(std::vector<HostId> node_hosts, HostId aggregator_host,
                            HostId flow_control_host) {
  node_hosts_ = std::move(node_hosts);
  aggregator_host_ = aggregator_host;
  flow_control_host_ = flow_control_host;
}

void ReplicatedServer::Start() {
  if (raft_ != nullptr) {
    // Genesis snapshot: recovery always finds a durable floor to replay from,
    // even if the node power-fails before the first compaction.
    PersistLocalSnapshot();
    raft_->Start();
    ArmMaintenanceTimers();
  }
}

void ReplicatedServer::set_failed(bool failed_now) {
  const bool was_failed = failed();
  Host::set_failed(failed_now);
  if (raft_ == nullptr) {
    return;
  }
  if (failed_now && !was_failed) {
    raft_->Halt();
    pending_reads_.clear();  // volatile; clients re-issue leased reads
  } else if (!failed_now && was_failed) {
    raft_->Resume();
    ArmMaintenanceTimers();  // GC/compaction timers died with the process
  }
}

void ReplicatedServer::PowerFail() {
  if (failed()) {
    return;
  }
  set_failed(true);
  if (storage_ != nullptr) {
    // Power loss: the unsynced WAL suffix is discarded (possibly leaving a
    // torn final record) and every pending durability barrier dies with the
    // process — no ack can fire from the grave.
    storage_->Crash();
    needs_recovery_ = true;
  }
}

void ReplicatedServer::Restart() {
  if (!failed()) {
    return;
  }
  // The unordered set lived in DRAM of the crashed process; requests the log
  // references but the set no longer holds are re-fetched point-to-point by
  // the recovery path when the node catches up.
  unordered_.Clear();
  if (needs_recovery_) {
    // Power-fail restart: process memory is gone; rebuild everything from
    // the disk before the node rejoins.
    RecoverFromStorage();
  }
  set_failed(false);
}

void ReplicatedServer::PersistLocalSnapshot() {
  // Blob layout: [u8 has_config]([u64 config_idx][config])?[wire body] where
  // the wire body is CaptureSnapshot()'s [sessions][shard][app bytes]. The
  // membership config rides along so a recovered node whose whole log was
  // compacted away still knows who its peers are.
  RaftNode::Env::SnapshotCapture capture = CaptureSnapshot();
  const LogIndex idx = capture.last_included;
  const Term term = idx == 0 ? 0 : raft_->log().TermAt(idx);
  auto [config_idx, config] = raft_->ConfigCoveringIndex(idx);
  BufferWriter w;
  w.PutU8(config != nullptr ? 1 : 0);
  if (config != nullptr) {
    w.PutU64(config_idx);
    EncodeConfig(*config, &w);
  }
  w.PutBytes(*capture.state);
  storage_->SaveSnapshot(idx, term, w.TakeBytes());
  local_snapshot_idx_ = idx;
}

void ReplicatedServer::RecoverFromStorage() {
  StableStorage::Recovery rec = storage_->Recover(config_.wal_recovery);
  needs_recovery_ = false;
  LogIndex applied = 0;
  MembershipConfigPtr snap_config;
  LogIndex snap_config_idx = 0;
  if (rec.has_snapshot) {
    BufferReader r(rec.snapshot_payload);
    uint8_t has_config = 0;
    HC_CHECK(r.GetU8(has_config).ok());
    if (has_config != 0) {
      HC_CHECK(r.GetU64(snap_config_idx).ok());
      snap_config = DecodeConfig(&r);
      HC_CHECK(snap_config != nullptr);
    }
    const Status sessions_ok = sessions_.Restore(&r);
    HC_CHECK(sessions_ok.ok());
    HC_CHECK(shard_.Restore(&r).ok());
    std::vector<uint8_t> app_bytes;
    HC_CHECK(r.GetBytes(r.remaining(), app_bytes).ok());
    HC_CHECK(app_->RestoreState(MakeBody(std::move(app_bytes))).ok());
    applied = rec.snapshot_index;
  } else {
    // The snapshot itself was unreadable — fall back to the pristine image.
    // A log tail whose base is not index zero cannot be replayed into state,
    // so discard it; the node stays suspect (it may have acknowledged those
    // entries) and the leader re-seeds it by state transfer.
    sessions_.Clear();
    InitShardState();
    HC_CHECK(app_->RestoreState(genesis_app_state_).ok());
    if (rec.base_index != 0) {
      rec.entries.clear();
      rec.base_index = 0;
      rec.base_term = 0;
      rec.suspect = true;
    }
  }
  // Entries at or below `applied` are already reflected in the reloaded
  // state; the raft layer re-applies forward from there as commit re-advances.
  apply_cursor_ = applied;
  local_snapshot_idx_ = applied;
  pending_reads_.clear();
  raft_->RestartFromRecovery(rec, applied, std::move(snap_config), snap_config_idx);
}

void ReplicatedServer::ArmMaintenanceTimers() {
  // Each chain re-arms only itself, and arming cancels the previous handle:
  // the GC chain used to re-enter this function and start a *fresh*
  // compaction chain every gc_interval (on top of the compaction chain
  // re-arming itself), so compaction chains multiplied over the run — and
  // Restart() stacked yet another pair on top of the survivors.
  ArmGcTimer();
  ArmCompactionTimer();
}

void ReplicatedServer::ArmGcTimer() {
  sim()->Cancel(gc_timer_);
  gc_timer_ = sim()->After(config_.gc_interval, [this]() {
    gc_timer_ = kInvalidEvent;
    if (failed()) {
      return;
    }
    stats_.unordered_gc += unordered_.GarbageCollect(sim()->Now(), config_.unordered_ttl);
    ArmGcTimer();
  });
}

void ReplicatedServer::ArmCompactionTimer() {
  sim()->Cancel(compaction_timer_);
  compaction_timer_ = sim()->After(config_.compaction_interval, [this]() {
    compaction_timer_ = kInvalidEvent;
    if (failed() || raft_ == nullptr) {
      return;
    }
    CompactNow();
    ArmCompactionTimer();
  });
}

void ReplicatedServer::CompactNow() {
  // Compact to the slowest node's applied index — but do not let one dead or
  // glacial straggler pin memory forever: beyond the allowance, compaction
  // proceeds and the straggler is repaired by snapshot when it returns.
  LogIndex target = raft_->MinAppliedKnown();
  const LogIndex applied = raft_->applied_index();
  if (applied > config_.straggler_lag_entries) {
    target = std::max(target, applied - config_.straggler_lag_entries);
  }
  if (storage_ != nullptr && apply_cursor_ > local_snapshot_idx_) {
    // A covering snapshot must be durable before CompactLog journals the
    // compact record and prunes WAL segments below the new base — a power
    // fail in between must still find a replayable floor.
    PersistLocalSnapshot();
  }
  raft_->CompactLog(target);
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

TimeNs ReplicatedServer::ProtocolCpu(const Message& msg) const {
  if (const auto* ae = dynamic_cast<const AppendEntriesReq*>(&msg)) {
    // Marshalling: fixed cost + per-entry bookkeeping + a copy of everything
    // beyond the fixed header (entry metadata and, in VanillaRaft mode, the
    // embedded request payloads).
    const int32_t marshalled = ae->PayloadBytes() - kAeFixedBytes;
    return costs().ae_fixed_ns +
           costs().raft_entry_ns * static_cast<TimeNs>(ae->entries().size()) +
           static_cast<TimeNs>(costs().ae_payload_byte_ns * marshalled);
  }
  if (dynamic_cast<const AppendEntriesRep*>(&msg) != nullptr) {
    return costs().raft_entry_ns;
  }
  if (dynamic_cast<const AggCommitMsg*>(&msg) != nullptr) {
    return costs().ae_fixed_ns;
  }
  if (const auto* snap = dynamic_cast<const InstallSnapshotReq*>(&msg)) {
    // Serializing / installing a state image costs a copy of its bytes.
    return costs().ae_fixed_ns +
           static_cast<TimeNs>(costs().ae_payload_byte_ns * snap->PayloadBytes());
  }
  return 0;
}

void ReplicatedServer::HandleMessage(HostId src, const MessagePtr& msg) {
  if (auto req = std::dynamic_pointer_cast<const RpcRequest>(msg)) {
    ++stats_.client_requests;
    OnClientRequest(std::move(req));
    return;
  }
  if (raft_ == nullptr) {
    HC_LOG_WARN("unreplicated server got %s", msg->Name());
    return;
  }
  const TimeNs extra = ProtocolCpu(*msg);
  if (extra > 0) {
    // Protocol processing beyond raw packet handling stays on the net thread.
    net_thread().Submit(extra, nullptr);
  }
  if (const auto* ae = dynamic_cast<const AppendEntriesReq*>(msg.get())) {
    raft_->OnAppendEntries(*ae, /*via_aggregator=*/src == aggregator_host_);
  } else if (const auto* rep = dynamic_cast<const AppendEntriesRep*>(msg.get())) {
    raft_->OnAppendEntriesRep(*rep);
  } else if (const auto* vote = dynamic_cast<const RequestVoteReq*>(msg.get())) {
    raft_->OnRequestVote(*vote);
  } else if (const auto* vrep = dynamic_cast<const RequestVoteRep*>(msg.get())) {
    raft_->OnRequestVoteRep(*vrep);
  } else if (const auto* agg = dynamic_cast<const AggCommitMsg*>(msg.get())) {
    raft_->OnAggCommit(*agg);
  } else if (const auto* avr = dynamic_cast<const AggVoteRep*>(msg.get())) {
    raft_->OnAggVoteRep(*avr);
  } else if (const auto* rreq = dynamic_cast<const RecoveryReq*>(msg.get())) {
    raft_->OnRecoveryReq(*rreq);
  } else if (const auto* rrep = dynamic_cast<const RecoveryRep*>(msg.get())) {
    raft_->OnRecoveryRep(*rrep);
  } else if (const auto* snap = dynamic_cast<const InstallSnapshotReq*>(msg.get())) {
    raft_->OnInstallSnapshot(*snap);
  } else if (const auto* srep = dynamic_cast<const InstallSnapshotRep*>(msg.get())) {
    raft_->OnInstallSnapshotRep(*srep);
  } else if (const auto* grant = dynamic_cast<const ReadIndexGrantMsg*>(msg.get())) {
    OnReadIndexGrant(*grant);
  } else if (const auto* fcr = dynamic_cast<const FcReconcileReq*>(msg.get())) {
    OnFcReconcile(src, *fcr);
  } else {
    HC_LOG_WARN("server %d: unexpected message %s", node_id(), msg->Name());
  }
}

// ---------------------------------------------------------------------------
// Client requests
// ---------------------------------------------------------------------------

void ReplicatedServer::OnClientRequest(std::shared_ptr<const RpcRequest> request) {
  obs::MarkStageAll(sim(), request->rid(), obs::Stage::kReplicaRx, obs_node_id(), sim()->Now());
  if (request->policy() == R2p2Policy::kUnrestricted) {
    // Non-replicated request (paper section 6.1): served by whichever
    // replica the client picked, bypassing consensus, with the possibility
    // of stale data. The client is responsible for only sending operations
    // that tolerate this (it must not mutate the state machine).
    ++stats_.unrestricted_served;
    ExecuteUnreplicated(request);
    return;
  }
  if (config_.mode == ClusterMode::kUnreplicated) {
    ExecuteUnreplicated(request);
    return;
  }
  // Exactly-once fast path (Raft section 8): a retransmitted write whose
  // original already executed is answered from the session cache — ordering
  // it again would re-apply it. An Executed() hit with no cached reply means
  // the client's own ack watermark passed this sequence (it saw the reply),
  // so any retransmit still in flight is stale and safe to drop.
  if (raft_->IsLeader() && config_.dedup_enabled && !request->read_only() &&
      sessions_.Executed(request->rid())) {
    ++stats_.dedup_hits;
    Body cached = sessions_.CachedReply(request->rid());
    if (cached != nullptr) {
      ++stats_.dedup_replies;
      // Retransmissions bypass the flow-control middlebox, so no FEEDBACK
      // is owed for a cached reply.
      SendReply(request->rid(), std::move(cached), /*send_feedback=*/false);
    }
    return;
  }
  // Shard gate at the ordering entrance: the leader refuses to order data
  // requests for slots this group does not serve (moved away, mid-move
  // frozen, or never owned — a client raced a ShardMap epoch bump). The
  // redirect tells the client to refresh its map and resend; the session
  // table is deliberately untouched, so a rejected rid can execute at its
  // real owner without this group's table disagreeing with its peers'.
  // Follower copies of a foreign multicast just park in the unordered set
  // and age out via TTL GC.
  if (config_.sharded && raft_->IsLeader() && IsDataSlot(request->shard_slot()) &&
      !shard_.Serves(request->shard_slot())) {
    ++stats_.wrong_shard_nacks;
    Send(request->rid().client, std::make_shared<WrongShardNack>(request->rid(), 0));
    // A first attempt was admitted by this group's middlebox but will never
    // be ordered here — repay its slot now (the redirected resend bypasses
    // admission, so nothing else will). Repay is rid-keyed and idempotent at
    // the ledger, so a parked copy later rejected at apply cannot double-
    // close the slot.
    if (!request->is_retransmit() && flow_control_host_ != kInvalidHost) {
      ++stats_.feedback_sent;
      Send(flow_control_host_, std::make_shared<FeedbackMsg>(request->rid()));
    }
    return;
  }
  // A retransmitted read-only request whose original is already ordered but
  // not yet applied is still in the pipeline: its reply is coming. Drop the
  // retransmit — re-ordering it would turn every retry tick of every queued
  // request into a fresh log entry, and under a post-failover backlog that
  // amplification snowballs into congestion collapse. Only an applied
  // instance (reply possibly lost) is re-ordered to regenerate the reply.
  if (request->is_retransmit() && request->read_only() && config_.dedup_enabled &&
      raft_->IsLeader()) {
    const LogIndex ordered = raft_->log().FindRequest(request->rid());
    if (ordered != kNoLogIndex && ordered > raft_->applied_index()) {
      ++stats_.retransmits_inflight;
      return;
    }
  }
  // ReadIndex fast path (docs/hardening.md): a lease-holding leader serves
  // read-only requests from its commit index — or forwards the grant to a
  // caught-up replier — without appending a log entry. A failed lease falls
  // through to the ordered path below, so reads never lose liveness.
  if (config_.raft.read_index && request->read_only() && raft_->IsLeader() &&
      TryServeReadIndex(request)) {
    return;
  }
  // A retransmitted read-only request may be re-ordered (re-execution is
  // side-effect free and regenerates the reply); dedup-disabled mode lets
  // write retransmits through too, which is exactly the double-apply anomaly
  // the chaos harness demonstrates.
  const bool allow_duplicate =
      request->is_retransmit() && (request->read_only() || !config_.dedup_enabled);
  switch (config_.mode) {
    case ClusterMode::kUnreplicated:
      return;  // handled above
    case ClusterMode::kVanillaRaft:
      // Clients address the leader directly; a deposed leader drops the
      // request (the client's retransmission timer chases the new leader).
      raft_->SubmitRequest(std::move(request), allow_duplicate);
      return;
    case ClusterMode::kHovercRaft:
    case ClusterMode::kHovercRaftPP:
      // Multicast delivery: the leader orders immediately, everyone else
      // parks the payload in the unordered set (paper section 3.2).
      if (raft_->IsLeader()) {
        if (raft_->SubmitRequest(request, allow_duplicate)) {
          return;
        }
      }
      unordered_.Insert(std::move(request), sim()->Now());
      return;
  }
}

bool ReplicatedServer::TryServeReadIndex(const std::shared_ptr<const RpcRequest>& request) {
  const RaftNode::ReadGrant grant = raft_->AcquireReadIndex();
  if (!grant.granted) {
    return false;
  }
  // The admission slot charged to this read is repaid here, at grant time:
  // the read never enters the log, so the apply path's first-instance
  // FEEDBACK accounting never sees it. Retransmissions bypassed the
  // middlebox and owe nothing — the same rule as everywhere else.
  if (!request->is_retransmit() && flow_control_host_ != kInvalidHost) {
    ++stats_.feedback_sent;
    Send(flow_control_host_, std::make_shared<FeedbackMsg>(request->rid()));
  }
  obs::MarkStageAll(sim(), request->rid(), obs::Stage::kReadGranted, obs_node_id(),
                    sim()->Now());
  if (grant.replier == node_id()) {
    ++stats_.read_index_local;
    if (apply_cursor_ >= grant.read_index) {
      ExecuteLeasedRead(request, sim()->Now());
    } else {
      ++stats_.read_index_queued;
      pending_reads_.push_back(PendingRead{grant.read_index, sim()->Now(), request});
    }
    return true;
  }
  ++stats_.read_index_forwarded;
  SendToPeer(grant.replier,
             std::make_shared<ReadIndexGrantMsg>(node_id(), raft_->term(), grant.read_index,
                                                 request->rid()));
  return true;
}

void ReplicatedServer::OnReadIndexGrant(const ReadIndexGrantMsg& grant) {
  // The payload arrived by client multicast and is parked in the unordered
  // set (leased reads are never ordered, so it stays there until TTL GC). A
  // miss means the multicast lost our copy: drop the grant — the client's
  // retransmission re-delivers the payload and retries the read.
  std::shared_ptr<const RpcRequest> request = unordered_.Lookup(grant.rid());
  if (request == nullptr) {
    ++stats_.read_index_dropped;
    return;
  }
  ++stats_.read_index_remote;
  obs::MarkStageAll(sim(), grant.rid(), obs::Stage::kReadGranted, obs_node_id(), sim()->Now());
  if (apply_cursor_ >= grant.read_index()) {
    ExecuteLeasedRead(request, sim()->Now());
  } else {
    ++stats_.read_index_queued;
    pending_reads_.push_back(PendingRead{grant.read_index(), sim()->Now(), std::move(request)});
  }
}

void ReplicatedServer::ExecuteLeasedRead(const std::shared_ptr<const RpcRequest>& request,
                                         TimeNs granted) {
  // Executes against the current applied prefix, which covers the granted
  // read index (the caller gated on apply_cursor_). The session table is
  // untouched: it must remain a deterministic function of the applied log,
  // and leased reads are invisible to the log.
  ExecResult result = app_->Execute(*request);
  ++stats_.ops_executed;
  if (auto* o = obs::ObsOf(sim())) {
    // Grant-to-execution wait: zero on the immediate path, the apply-cursor
    // catch-up lag for queued reads. Puts leased reads on the per-stage map.
    o->metrics()
        .GetHistogram(obs::NodeScope(obs_node_id()) + "raft.read_index_wait_ns")
        .Record(sim()->Now() - granted);
  }
  const TimeNs apply_start = std::max(sim()->Now(), app_thread_.busy_until());
  obs::MarkStageAll(sim(), request->rid(), obs::Stage::kApplyStart, obs_node_id(), apply_start);
  obs::MarkStageAll(sim(), request->rid(), obs::Stage::kApplyEnd, obs_node_id(),
                    apply_start + result.service_time);
  if (auto* tracer = obs::TracerOf(sim())) {
    tracer->Complete(obs::TrackOfHost(id()), obs::kTidApp, "apply", apply_start,
                     result.service_time);
  }
  // FEEDBACK was settled at grant time on the leader.
  app_thread_.Submit(result.service_time,
                     [this, rid = request->rid(), body = std::move(result.reply)]() {
                       SendReply(rid, body, /*send_feedback=*/false);
                     });
}

void ReplicatedServer::DrainPendingReads() {
  if (pending_reads_.empty()) {
    return;
  }
  size_t kept = 0;
  for (size_t i = 0; i < pending_reads_.size(); ++i) {
    if (apply_cursor_ >= pending_reads_[i].read_index) {
      ExecuteLeasedRead(pending_reads_[i].request, pending_reads_[i].granted);
    } else {
      pending_reads_[kept++] = std::move(pending_reads_[i]);
    }
  }
  pending_reads_.resize(kept);
}

void ReplicatedServer::OnFcReconcile(HostId src, const FcReconcileReq& req) {
  // The middlebox asks the leader to classify its still-open admission slots
  // after a failover. A deposed leader stays silent: a newer leader's own
  // FC_LEADER announcement restarts the reconcile against fresh state, and a
  // stale classification could release slots whose FEEDBACK is still coming.
  if (!raft_->IsLeader()) {
    return;
  }
  ++stats_.fc_reconcile_answers;
  std::vector<FcSlotState> states;
  states.reserve(req.rids().size());
  for (const RequestId& rid : req.rids()) {
    if (sessions_.Executed(rid)) {
      // Applied (reply sent or cached): the slot is repaid even if the
      // replier that owed FEEDBACK died before sending it.
      states.push_back(FcSlotState::kExecuted);
    } else if (raft_->log().FindRequest(rid) != kNoLogIndex ||
               unordered_.Lookup(rid) != nullptr) {
      // Ordered but not applied, or parked in the unordered set awaiting
      // ordering: the normal pipeline will repay the slot.
      states.push_back(FcSlotState::kPending);
    } else {
      // No trace: the request died with the old leader. The client's
      // retransmission bypasses the middlebox, so nothing will repay the
      // slot — release it.
      states.push_back(FcSlotState::kUnknown);
    }
  }
  Send(src, std::make_shared<FcReconcileRep>(req.rids(), std::move(states)));
}

void ReplicatedServer::ExecuteUnreplicated(const std::shared_ptr<const RpcRequest>& request) {
  // Session bookkeeping applies to writes served by the unreplicated
  // configuration; kUnrestricted requests are read-ish by contract and
  // read-only requests are harmless to re-execute.
  const bool track_session =
      config_.mode == ClusterMode::kUnreplicated && !request->read_only();
  if (track_session) {
    sessions_.Acknowledge(request->rid().client, request->ack_watermark());
    if (sessions_.Executed(request->rid())) {
      if (config_.dedup_enabled) {
        ++stats_.dedup_hits;
        Body cached = sessions_.CachedReply(request->rid());
        if (cached != nullptr) {
          ++stats_.dedup_replies;
          app_thread_.Submit(0, [this, rid = request->rid(), cached = std::move(cached)]() {
            SendReply(rid, cached, /*send_feedback=*/false);
          });
        }
        return;
      }
      ++stats_.double_applies;
    }
  }
  ExecResult result = app_->Execute(*request);
  ++stats_.ops_executed;
  if (track_session) {
    sessions_.Record(request->rid(), result.reply, request->shard_slot());
  }
  // An unreplicated server wired behind an R2P2 router / flow-control box
  // owes FEEDBACK per completion; unrestricted requests inside a replicated
  // group bypassed the middlebox, so none is owed for them. Retransmissions
  // bypass the middlebox as well.
  const bool send_feedback =
      (config_.mode == ClusterMode::kUnreplicated) && !request->is_retransmit();
  const TimeNs apply_start = std::max(sim()->Now(), app_thread_.busy_until());
  obs::MarkStageAll(sim(), request->rid(), obs::Stage::kApplyStart, obs_node_id(), apply_start);
  obs::MarkStageAll(sim(), request->rid(), obs::Stage::kApplyEnd, obs_node_id(),
                    apply_start + result.service_time);
  if (auto* tracer = obs::TracerOf(sim())) {
    tracer->Complete(obs::TrackOfHost(id()), obs::kTidApp, "apply", apply_start,
                     result.service_time);
  }
  app_thread_.Submit(result.service_time,
                     [this, rid = request->rid(), body = std::move(result.reply),
                      send_feedback]() { SendReply(rid, body, send_feedback); });
}

// ---------------------------------------------------------------------------
// Apply pipeline
// ---------------------------------------------------------------------------

void ReplicatedServer::OnCommitAdvanced(LogIndex commit) {
  while (apply_cursor_ < commit) {
    ++apply_cursor_;
    ScheduleApply(apply_cursor_);
  }
  // Execute runs synchronously at scheduling time, so the application state
  // now reflects the prefix through apply_cursor_ — leased reads waiting on
  // it observe every write they were granted against.
  DrainPendingReads();
}

void ReplicatedServer::ScheduleApply(LogIndex idx) {
  const LogEntry& entry = raft_->log().At(idx);
  const NodeId self = node_id();

  if (entry.noop) {
    app_thread_.Submit(0, [this, idx]() { raft_->OnApplied(idx); });
    return;
  }
  HC_CHECK(entry.request != nullptr);

  // Shard-control entries (freeze / install / gc) take their own apply path:
  // they mutate the serve state and the moved ranges, not the application.
  if (config_.sharded && entry.request->shard_slot() == kShardCtlSlot) {
    ApplyShardCtl(idx, entry);
    return;
  }

  // Session-table GC rides in the log entry: every replica raises the
  // client's ack watermark at the same log position (deterministic state).
  sessions_.Acknowledge(entry.rid.client, entry.ack_watermark);

  // Apply-time shard gate: a data entry for a slot this group no longer
  // serves (ordered before the freeze committed, or re-drained after a GC)
  // must not execute — the capture that moved the range excludes it, so
  // executing here would fork state against the destination group. Every
  // replica evaluates the same log-derived serve state at the same position,
  // so all of them skip it identically. Nothing is recorded in the session
  // table: the rid stays free to execute at its real owner. The replier
  // redirects the waiting client, and the first ordered instance repays the
  // admission slot the entry still holds.
  if (config_.sharded && IsDataSlot(entry.request->shard_slot()) &&
      !shard_.Serves(entry.request->shard_slot())) {
    ++stats_.wrong_shard_rejects;
    const bool reject_feedback =
        !sessions_.Executed(entry.rid) && entry.replier == self;
    app_thread_.Submit(0, [this, idx, rid = entry.rid,
                           reply_here = entry.replier == self, reject_feedback]() {
      raft_->OnApplied(idx);
      if (failed()) {
        return;
      }
      if (reply_here) {
        Send(rid.client, std::make_shared<WrongShardNack>(rid, 0));
      }
      if (reject_feedback && flow_control_host_ != kInvalidHost) {
        ++stats_.feedback_sent;
        Send(flow_control_host_, std::make_shared<FeedbackMsg>(rid));
      }
    });
    return;
  }

  // Is this the first ordered instance of this rid? Every replica evaluates
  // the same session state at the same log position, so the answer is
  // deterministic cluster-wide. It decides FEEDBACK: the middlebox admission
  // slot charged to the request is repaid exactly once per rid — no matter
  // which attempt's copy got ordered (a request whose admitted first attempt
  // died with a leader is recovered by a retransmitted copy, which must
  // repay in its place) and no matter how often a read-only retransmit is
  // re-ordered for freshness (later instances repay nothing).
  const bool first_instance = !sessions_.Executed(entry.rid);

  if (entry.read_only && entry.replier != self) {
    // Totally ordered, but executed only by the designated replier
    // (paper section 3.5). Still mark the rid as seen so this replica's
    // session table stays identical to the replier's.
    ++stats_.ro_skipped;
    sessions_.Record(entry.rid, nullptr, entry.request->shard_slot());
    app_thread_.Submit(0, [this, idx]() { raft_->OnApplied(idx); });
    return;
  }

  // Exactly-once on the apply path (Raft section 8): an already-executed
  // write re-entered the log (retransmit ordered by a new leader, or the
  // unordered drain raced a committed entry). Answer from the reply cache
  // instead of re-applying it.
  const bool duplicate = !entry.read_only && sessions_.Executed(entry.rid);
  if (duplicate && config_.dedup_enabled) {
    ++stats_.dedup_hits;
    const bool reply_here = (entry.replier == self);
    Body cached = sessions_.CachedReply(entry.rid);
    if (reply_here && cached != nullptr) {
      ++stats_.dedup_replies;
    }
    app_thread_.Submit(0, [this, idx, rid = entry.rid, reply_here,
                           cached = std::move(cached)]() {
      raft_->OnApplied(idx);
      if (reply_here && cached != nullptr) {
        SendReply(rid, cached, /*send_feedback=*/false);
      }
    });
    return;
  }
  if (duplicate) {
    ++stats_.double_applies;  // dedup disabled: the anomaly, made visible
  }
  if (auto* fr = obs::FrOf(sim())) {
    fr->Record(sim()->Now(), obs_node_id(), obs::FrType::kApply,
               static_cast<uint64_t>(entry.rid.client), entry.rid.seq, duplicate ? 1u : 0u);
  }

  // Execute now (in log order — the state machine sees exactly the committed
  // prefix) and charge the service time to the app thread; the reply leaves
  // when the virtual execution completes.
  ExecResult result = app_->Execute(*entry.request);
  ++stats_.ops_executed;
  // Writes cache their reply for dedup; read-onlys record a null marker (a
  // retransmitted read is always re-executed for freshness, so there is
  // nothing to cache — the entry only pins down "first instance" above and
  // keeps every replica's session table byte-identical).
  sessions_.Record(entry.rid, entry.read_only ? nullptr : result.reply,
                   entry.request->shard_slot());
  const bool reply_here = (entry.replier == self);
  const RequestId rid = entry.rid;
  const bool send_feedback = first_instance;
  const TimeNs apply_start = std::max(sim()->Now(), app_thread_.busy_until());
  if (reply_here) {
    // Stage marks follow the designated replier — the copy whose execution
    // produces the reply the client is waiting on.
    obs::MarkStageAll(sim(), rid, obs::Stage::kApplyStart, obs_node_id(), apply_start);
    obs::MarkStageAll(sim(), rid, obs::Stage::kApplyEnd, obs_node_id(),
                      apply_start + result.service_time);
  }
  if (auto* tracer = obs::TracerOf(sim())) {
    tracer->Complete(obs::TrackOfHost(id()), obs::kTidApp, "apply", apply_start,
                     result.service_time);
  }
  // Ownership rule: the reply Body is moved into the completion callback
  // (never copied); SendReply takes its own reference only when the reply
  // actually leaves this host. This capture set is the simulator's inline
  // budget worst case (Simulator::kInlineCallbackBytes) — growing it pushes
  // the hottest apply-path event onto the heap fallback.
  app_thread_.Submit(result.service_time,
                     [this, idx, rid, reply_here, send_feedback,
                      body = std::move(result.reply)]() {
                       raft_->OnApplied(idx);
                       if (reply_here) {
                         SendReply(rid, body, send_feedback);
                       }
                     });
}

void ReplicatedServer::ApplyShardCtl(LogIndex idx, const LogEntry& entry) {
  const NodeId self = node_id();
  // A duplicate control entry under the SAME rid (a parked multicast copy
  // re-drained into the log by a new leader after the original committed)
  // must be a no-op: re-running an install would roll the moved range back
  // below writes committed after the cutover. Control rids are recorded in
  // the same session table as data writes, so Executed() here is the same
  // deterministic, replicated dedup the data path uses. Duplicates under a
  // DIFFERENT rid — abandoned coordinator retries — are caught below by the
  // move-id fence instead.
  if (sessions_.Executed(entry.rid)) {
    ++stats_.dedup_hits;
    app_thread_.Submit(0, [this, idx]() { raft_->OnApplied(idx); });
    return;
  }
  sessions_.Acknowledge(entry.rid.client, entry.ack_watermark);
  ShardOp op;
  const Status decoded = DecodeShardOp(entry.request->body(), &op);
  HC_CHECK(decoded.ok());
  const bool reply_here = (entry.replier == self);
  Body reply;
  TimeNs cost = costs().ae_fixed_ns;
  // The designated replier's capture is not replicated state (every replica
  // could produce the identical bytes) — it travels to the coordinator in the
  // reply and reaches the destination group inside the install entry. While
  // the range is frozen the capture is stable: the apply-time gate rejects
  // every data write to it, so re-capturing for a freeze retry yields the
  // bytes the first freeze would have returned.
  auto build_capture = [this, &op]() {
    BufferWriter w;
    sessions_.SerializeRange(&w, op.lo, op.hi);
    const Body app_range = app_->CaptureRange(op.lo, op.hi);
    HC_CHECK(app_range != nullptr);
    w.PutBytes(*app_range);
    return MakeBody(w.TakeBytes());
  };
  // Move-id fence: the coordinator retries each phase under fresh rids, so an
  // abandoned attempt parked in a follower's unordered store is NOT in the
  // session table and can be re-drained into the log arbitrarily late — after
  // the phase already ran under a sibling rid, after the cutover, even after
  // a later move handed the range back. Re-running it would roll an installed
  // range back below post-cutover writes or GC live keys, so anything at or
  // below the replicated watermark mutates nothing. The fence is evaluated at
  // the apply point against log-derived state: every replica skips the same
  // entries identically.
  if (!shard_.AdvanceCtlWatermark(ShardCtlKeyOf(op.move_id, op.kind))) {
    ++stats_.shard_ctl_stale;
    // Still answer: the usual fenced entry is the coordinator's live retry of
    // a phase whose committed reply was lost, and that retry needs the phase
    // result (for a freeze, the capture). Replies to long-abandoned rids are
    // ignored by the coordinator's sequence check.
    if (reply_here && op.kind == ShardOpKind::kFreeze) {
      reply = build_capture();
      cost += static_cast<TimeNs>(costs().ae_payload_byte_ns *
                                  static_cast<double>(reply->size()));
    }
  } else {
    switch (op.kind) {
      case ShardOpKind::kFreeze: {
        shard_.Freeze(op.lo, op.hi);
        ++stats_.shard_freezes;
        if (reply_here) {
          reply = build_capture();
          cost += static_cast<TimeNs>(costs().ae_payload_byte_ns *
                                      static_cast<double>(reply->size()));
        }
        break;
      }
      case ShardOpKind::kInstall: {
        HC_CHECK(op.payload != nullptr);
        // Self-cleaning: clear whatever the range left behind here (e.g. the
        // residue of an earlier aborted move whose uninstall never reached
        // this group) so the installed state is exactly the capture.
        sessions_.DropRange(op.lo, op.hi);
        HC_CHECK(app_->DropRange(op.lo, op.hi).ok());
        BufferReader r(op.payload->bytes());
        HC_CHECK(sessions_.MergeRange(&r).ok());
        std::vector<uint8_t> app_bytes;
        HC_CHECK(r.GetBytes(r.remaining(), app_bytes).ok());
        HC_CHECK(app_->InstallRange(MakeBody(std::move(app_bytes))).ok());
        shard_.Install(op.lo, op.hi);
        ++stats_.shard_installs;
        cost += static_cast<TimeNs>(costs().ae_payload_byte_ns *
                                    static_cast<double>(op.payload->size()));
        break;
      }
      case ShardOpKind::kGc: {
        sessions_.DropRange(op.lo, op.hi);
        HC_CHECK(app_->DropRange(op.lo, op.hi).ok());
        shard_.Drop(op.lo, op.hi);
        ++stats_.shard_gcs;
        break;
      }
      case ShardOpKind::kUnfreeze: {
        // Move abort at the source: serve the range again (the freeze may or
        // may not have committed — unfreezing an unfrozen range is a no-op)
        // and fence the aborted move's parked freeze copies.
        shard_.Unfreeze(op.lo, op.hi);
        ++stats_.shard_unfreezes;
        break;
      }
      case ShardOpKind::kUninstall: {
        // Move abort at the destination: discard whatever the aborted move
        // installed — data, session entries, serve state — and fence its
        // parked install copies. If no install committed the range is already
        // dropped/empty and this is a no-op.
        sessions_.DropRange(op.lo, op.hi);
        HC_CHECK(app_->DropRange(op.lo, op.hi).ok());
        shard_.Drop(op.lo, op.hi);
        ++stats_.shard_uninstalls;
        break;
      }
    }
  }
  // Every replica records the same marker (the capture reply above is sent
  // but never cached — the coordinator uses a fresh rid per retry, so the
  // cache would serve nothing). The marker is what makes duplicates no-ops.
  sessions_.Record(entry.rid, MakeBody(std::vector<uint8_t>{1}), kShardCtlSlot);
  if (auto* fr = obs::FrOf(sim())) {
    fr->Record(sim()->Now(), obs_node_id(), obs::FrType::kApply,
               static_cast<uint64_t>(entry.rid.client), entry.rid.seq, 0u);
  }
  const bool send_feedback = !entry.read_only;  // ctl ops are writes; repay once
  if (reply_here && reply == nullptr) {
    reply = MakeBody(std::vector<uint8_t>{1});  // install/gc ack
  }
  app_thread_.Submit(cost, [this, idx, rid = entry.rid, reply_here, send_feedback,
                            body = std::move(reply)]() {
    raft_->OnApplied(idx);
    if (reply_here) {
      SendReply(rid, body, send_feedback);
    }
  });
}

void ReplicatedServer::SendReply(const RequestId& rid, Body body, bool send_feedback) {
  if (failed()) {
    return;
  }
  ++stats_.replies_sent;
  obs::MarkStageAll(sim(), rid, obs::Stage::kReplySent, obs_node_id(), sim()->Now());
  // R2P2 lets the reply's source differ from the request's destination — the
  // mechanism enabling reply load balancing (paper section 3.3).
  Send(rid.client, std::make_shared<RpcResponse>(rid, std::move(body)));
  if (send_feedback && flow_control_host_ != kInvalidHost) {
    ++stats_.feedback_sent;
    Send(flow_control_host_, std::make_shared<FeedbackMsg>(rid));
  }
}

// ---------------------------------------------------------------------------
// RaftNode::Env plumbing
// ---------------------------------------------------------------------------

void ReplicatedServer::SendToPeer(NodeId peer, MessagePtr msg) {
  HC_CHECK_GE(peer, 0);
  HC_CHECK_LT(static_cast<size_t>(peer), node_hosts_.size());
  const TimeNs extra = ProtocolCpu(*msg);
  Send(node_hosts_[static_cast<size_t>(peer)], std::move(msg), extra);
}

void ReplicatedServer::SendToAggregator(MessagePtr msg) {
  if (aggregator_host_ == kInvalidHost) {
    return;
  }
  const TimeNs extra = ProtocolCpu(*msg);
  Send(aggregator_host_, std::move(msg), extra);
}

std::shared_ptr<const RpcRequest> ReplicatedServer::LookupUnordered(const RequestId& rid) {
  return unordered_.Lookup(rid);
}

void ReplicatedServer::ConsumeUnordered(const RequestId& rid) { unordered_.Erase(rid); }

void ReplicatedServer::StoreRecovered(const RequestId& rid,
                                      std::shared_ptr<const RpcRequest> request) {
  HC_CHECK(request != nullptr);
  HC_CHECK(rid == request->rid());
  unordered_.Insert(std::move(request), sim()->Now());
}

RaftNode::Env::SnapshotCapture ReplicatedServer::CaptureSnapshot() {
  // The application state reflects exactly the entries already handed to the
  // app thread (Execute runs synchronously at scheduling time), i.e. the
  // prefix through apply_cursor_. The session table is maintained at the
  // same points, so it is captured alongside: a straggler repaired by state
  // transfer must keep recognizing retransmits of compacted-away requests.
  // The shard serve state is log-derived the same way and travels too, so a
  // repaired straggler gates exactly like its peers.
  // Layout: [session table][shard serve state][application state bytes].
  SnapshotCapture capture;
  BufferWriter w;
  sessions_.Serialize(&w);
  shard_.Serialize(&w);
  const Body app_state = app_->SnapshotState();
  if (app_state != nullptr) {
    w.PutBytes(*app_state);
  }
  capture.state = MakeBody(w.TakeBytes());
  capture.last_included = apply_cursor_;
  return capture;
}

void ReplicatedServer::RestoreSnapshot(const Body& state, LogIndex last_included,
                                       Term included_term, MembershipConfigPtr config,
                                       LogIndex config_idx) {
  HC_CHECK(state != nullptr);
  BufferReader r(*state);
  const Status sessions_ok = sessions_.Restore(&r);
  HC_CHECK(sessions_ok.ok());
  const Status shard_ok = shard_.Restore(&r);
  HC_CHECK(shard_ok.ok());
  std::vector<uint8_t> app_bytes;
  const Status app_ok = r.GetBytes(r.remaining(), app_bytes);
  HC_CHECK(app_ok.ok());
  const Status status = app_->RestoreState(MakeBody(std::move(app_bytes)));
  HC_CHECK(status.ok());
  ++stats_.snapshots_restored;
  if (last_included > apply_cursor_) {
    apply_cursor_ = last_included;
  }
  if (storage_ != nullptr) {
    // Persist the received image before the raft layer journals the covering
    // truncate/compact records: a power fail right after the compact must
    // still find a snapshot at least as new as the new log base.
    BufferWriter w;
    w.PutU8(config != nullptr ? 1 : 0);
    if (config != nullptr) {
      w.PutU64(config_idx);
      EncodeConfig(*config, &w);
    }
    w.PutBytes(*state);
    storage_->SaveSnapshot(last_included, included_term, w.TakeBytes());
    local_snapshot_idx_ = std::max(local_snapshot_idx_, last_included);
  }
}

void ReplicatedServer::OnLeadershipChanged(bool is_leader) {
  HC_LOG_INFO("node %d leadership=%d at %lld us", node_id(), is_leader ? 1 : 0,
              static_cast<long long>(sim()->Now() / kNanosPerMicro));
  if (is_leader && flow_control_host_ != kInvalidHost) {
    // Announce the leadership change to the flow-control middlebox so it can
    // reconcile admission slots orphaned by the failover (DESIGN.md §5c):
    // slots whose designated replier died with the old regime never see
    // FEEDBACK and would otherwise pin the admission window shut.
    Send(flow_control_host_, std::make_shared<FcLeaderChangeMsg>(id()));
  }
}

void ReplicatedServer::OnConfigCommitted(const MembershipConfig& config, LogIndex idx) {
  HC_LOG_INFO("node %d config committed at idx %lld: %s", node_id(),
              static_cast<long long>(idx), config.Describe().c_str());
  if (config_committed_cb_) {
    config_committed_cb_(node_id(), config, idx);
  }
}

void ReplicatedServer::DrainUnorderedIntoLog() {
  unordered_.Drain([this](std::shared_ptr<const RpcRequest> req) {
    // A parked retransmit of an already-executed write must not re-enter the
    // log: the client either has the reply or will retransmit again and be
    // answered from the session cache.
    if (config_.dedup_enabled && !req->read_only() && sessions_.Executed(req->rid())) {
      return;
    }
    raft_->SubmitRequest(std::move(req));
  });
}

}  // namespace hovercraft
