// The SMR-aware RPC server (paper section 3.1): one host class serves all
// four evaluated configurations.
//
//   kUnreplicated — requests execute directly on the app thread.
//   kVanillaRaft  — Raft inside the RPC layer; the leader replicates full
//                   payloads and answers every client itself.
//   kHovercRaft   — requests arrive by multicast on every node; the leader
//                   orders metadata; replies and read-only execution are
//                   load-balanced with bounded queues.
//   kHovercRaftPP — HovercRaft plus the in-network aggregator.
//
// The application is any deterministic StateMachine; it needs no knowledge
// of replication (the paper's application-agnostic claim).
#ifndef SRC_CORE_SERVER_H_
#define SRC_CORE_SERVER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/app/state_machine.h"
#include "src/common/types.h"
#include "src/core/session_table.h"
#include "src/core/unordered_store.h"
#include "src/net/host.h"
#include "src/r2p2/messages.h"
#include "src/raft/node.h"
#include "src/raft/options.h"

namespace hovercraft {

struct ServerConfig {
  ClusterMode mode = ClusterMode::kUnreplicated;
  RaftOptions raft;  // unused for kUnreplicated
  // Unordered-set garbage collection (paper section 5).
  TimeNs unordered_ttl = Millis(50);
  TimeNs gc_interval = Millis(10);
  // Log prefix compaction cadence (memory bound for long runs).
  TimeNs compaction_interval = Millis(20);
  // How far a straggler may lag before compaction proceeds without it and
  // the leader repairs it with an InstallSnapshot state transfer.
  LogIndex straggler_lag_entries = 65'536;
  // Client-session dedup (Raft section 8): retransmitted writes are answered
  // from the reply cache instead of re-executed. Disabling it models naive
  // at-least-once retries — the chaos harness uses that to demonstrate the
  // double-apply anomaly the table exists to prevent.
  bool dedup_enabled = true;
};

struct ServerStats {
  uint64_t client_requests = 0;
  uint64_t replies_sent = 0;
  uint64_t ops_executed = 0;   // state-machine executions on this node
  uint64_t ro_skipped = 0;     // read-only entries this node did not execute
  uint64_t unordered_gc = 0;
  uint64_t feedback_sent = 0;
  // Non-replicated (kUnrestricted) requests served locally (section 6.1).
  uint64_t unrestricted_served = 0;
  uint64_t snapshots_restored = 0;
  // Exactly-once accounting (Raft section 8 client sessions).
  uint64_t dedup_hits = 0;      // retransmits recognized as already executed
  uint64_t dedup_replies = 0;   // replies served from the session cache
  uint64_t double_applies = 0;  // re-executions that dedup would have stopped
  // Read-only retransmits dropped because their rid is already ordered but
  // not yet applied: the original's reply is still in the pipeline.
  uint64_t retransmits_inflight = 0;
  // Flow-control ledger reconciliation queries answered as leader.
  uint64_t fc_reconcile_answers = 0;
  // ReadIndex fast path (docs/hardening.md): lease-protected reads that never
  // enter the log. local = leader served it itself; forwarded = leader sent
  // the grant to a caught-up replier; remote = this node served a forwarded
  // grant; queued = held until the apply cursor reached the read index;
  // dropped = forwarded grant whose payload was not in the unordered set
  // (client multicast missed this node — the retransmit retries the read).
  uint64_t read_index_local = 0;
  uint64_t read_index_forwarded = 0;
  uint64_t read_index_remote = 0;
  uint64_t read_index_queued = 0;
  uint64_t read_index_dropped = 0;
};

class ReplicatedServer final : public Host, public RaftNode::Env {
 public:
  ReplicatedServer(Simulator* sim, const CostModel& costs, const ServerConfig& config,
                   std::unique_ptr<StateMachine> app, uint64_t seed);
  ~ReplicatedServer() override;

  // Wiring (after Network::Attach of all hosts). `node_hosts[i]` is the host
  // id of Raft node i; aggregator/flow-control may be kInvalidHost.
  void Wire(std::vector<HostId> node_hosts, HostId aggregator_host, HostId flow_control_host);

  // Starts Raft (replicated modes) and the maintenance timers.
  void Start();

  // --- Host ---
  void HandleMessage(HostId src, const MessagePtr& msg) override;
  // Crash/restart injection: halts or resumes the Raft timers along with
  // the network interface (fail-stop model).
  void set_failed(bool failed) override;

  // Process restart after a crash. Persistent state (term, vote, log,
  // snapshot — and the application state, which is the deterministic replay
  // of the applied prefix of that log) survives; soft state (the unordered
  // request set) is lost. The node rejoins as a follower and any entries it
  // missed are repaired through the normal AppendEntries / InstallSnapshot
  // recovery path. No-op on a live node.
  void Restart();

  // --- RaftNode::Env ---
  void SendToPeer(NodeId peer, MessagePtr msg) override;
  void SendToAggregator(MessagePtr msg) override;
  std::shared_ptr<const RpcRequest> LookupUnordered(const RequestId& rid) override;
  void ConsumeUnordered(const RequestId& rid) override;
  void StoreRecovered(const RequestId& rid, std::shared_ptr<const RpcRequest> request) override;
  SnapshotCapture CaptureSnapshot() override;
  void RestoreSnapshot(const Body& state, LogIndex last_included) override;
  void OnCommitAdvanced(LogIndex commit) override;
  void OnLeadershipChanged(bool is_leader) override;
  void OnConfigCommitted(const MembershipConfig& config, LogIndex idx) override;
  void DrainUnorderedIntoLog() override;

  // Installed by the cluster builder: invoked whenever this node's Raft layer
  // commits a membership config (new multicast groups, aggregator epoch, ...
  // are cluster-level concerns the server itself cannot reach).
  using ConfigCommittedCallback =
      std::function<void(NodeId self, const MembershipConfig& config, LogIndex idx)>;
  void set_config_committed_callback(ConfigCommittedCallback cb) {
    config_committed_cb_ = std::move(cb);
  }

  // --- queries ---
  bool IsLeader() const { return raft_ != nullptr && raft_->IsLeader(); }
  RaftNode* raft() { return raft_.get(); }
  const RaftNode* raft() const { return raft_.get(); }
  StateMachine& app() { return *app_; }
  const StateMachine& app() const { return *app_; }
  const ServerStats& server_stats() const { return stats_; }
  const UnorderedStore& unordered() const { return unordered_; }
  const SessionTable& sessions() const { return sessions_; }
  NodeId node_id() const { return config_.raft.id; }
  const ServerConfig& config() const { return config_; }
  SerialResource& app_thread() { return app_thread_; }

 private:
  bool IsReplicated() const { return config_.mode != ClusterMode::kUnreplicated; }

  void OnClientRequest(std::shared_ptr<const RpcRequest> request);
  void OnFcReconcile(HostId src, const FcReconcileReq& req);
  void ExecuteUnreplicated(const std::shared_ptr<const RpcRequest>& request);
  // ReadIndex fast path (leader side): acquire a lease-protected read index
  // and serve the read without a log entry. Returns false when no lease is
  // available — the caller falls back to ordering the read through the log.
  bool TryServeReadIndex(const std::shared_ptr<const RpcRequest>& request);
  // Replier side of a forwarded grant: resolve the payload from the
  // unordered set and serve once the apply cursor covers the read index.
  void OnReadIndexGrant(const ReadIndexGrantMsg& grant);
  // Execute a leased read against the current applied state (never touches
  // the session table — the tables stay a pure function of the log).
  void ExecuteLeasedRead(const std::shared_ptr<const RpcRequest>& request);
  void DrainPendingReads();
  void ScheduleApply(LogIndex idx);
  void SendReply(const RequestId& rid, Body body, bool send_feedback = true);
  // Protocol CPU beyond raw byte handling, charged on the net thread.
  TimeNs ProtocolCpu(const Message& msg) const;
  void ArmMaintenanceTimers();
  void ArmGcTimer();
  void ArmCompactionTimer();
  void CompactNow();

  ServerConfig config_;
  std::unique_ptr<StateMachine> app_;
  std::unique_ptr<RaftNode> raft_;
  SerialResource app_thread_;
  UnorderedStore unordered_;
  // Replicated client sessions: a deterministic function of the applied log
  // prefix, so it survives Restart() alongside the application state and
  // travels inside snapshots (serialized ahead of the app bytes).
  SessionTable sessions_;

  std::vector<HostId> node_hosts_;
  HostId aggregator_host_ = kInvalidHost;
  HostId flow_control_host_ = kInvalidHost;

  // Apply pipeline: last log index handed to the app thread.
  LogIndex apply_cursor_ = 0;

  // Leased reads waiting for the apply cursor to reach their read index;
  // drained whenever the cursor advances. Volatile — lost on crash, and the
  // client's retransmission timer re-issues the read.
  std::vector<std::pair<LogIndex, std::shared_ptr<const RpcRequest>>> pending_reads_;

  // Maintenance timers; re-arming cancels the previous handle so restarts
  // never stack duplicate GC/compaction chains.
  EventId gc_timer_ = kInvalidEvent;
  EventId compaction_timer_ = kInvalidEvent;

  ConfigCommittedCallback config_committed_cb_;

  ServerStats stats_;
};

}  // namespace hovercraft

#endif  // SRC_CORE_SERVER_H_
