// The SMR-aware RPC server (paper section 3.1): one host class serves all
// four evaluated configurations.
//
//   kUnreplicated — requests execute directly on the app thread.
//   kVanillaRaft  — Raft inside the RPC layer; the leader replicates full
//                   payloads and answers every client itself.
//   kHovercRaft   — requests arrive by multicast on every node; the leader
//                   orders metadata; replies and read-only execution are
//                   load-balanced with bounded queues.
//   kHovercRaftPP — HovercRaft plus the in-network aggregator.
//
// The application is any deterministic StateMachine; it needs no knowledge
// of replication (the paper's application-agnostic claim).
#ifndef SRC_CORE_SERVER_H_
#define SRC_CORE_SERVER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/app/state_machine.h"
#include "src/common/types.h"
#include "src/core/session_table.h"
#include "src/core/unordered_store.h"
#include "src/net/host.h"
#include "src/r2p2/messages.h"
#include "src/r2p2/shard.h"
#include "src/raft/node.h"
#include "src/raft/options.h"
#include "src/storage/fsync_policy.h"
#include "src/storage/sim_disk.h"
#include "src/storage/stable_storage.h"

namespace hovercraft {

struct ServerConfig {
  ClusterMode mode = ClusterMode::kUnreplicated;
  RaftOptions raft;  // unused for kUnreplicated
  // Unordered-set garbage collection (paper section 5).
  TimeNs unordered_ttl = Millis(50);
  TimeNs gc_interval = Millis(10);
  // Log prefix compaction cadence (memory bound for long runs).
  TimeNs compaction_interval = Millis(20);
  // How far a straggler may lag before compaction proceeds without it and
  // the leader repairs it with an InstallSnapshot state transfer.
  LogIndex straggler_lag_entries = 65'536;
  // Client-session dedup (Raft section 8): retransmitted writes are answered
  // from the reply cache instead of re-executed. Disabling it models naive
  // at-least-once retries — the chaos harness uses that to demonstrate the
  // double-apply anomaly the table exists to prevent.
  bool dedup_enabled = true;
  // Durable storage (docs/durability.md). Replicated nodes journal hard state
  // and log entries to a per-node SimDisk whose fsync cost is
  // raft.persist_latency. Group commit acks after durability while coalescing
  // concurrent barriers; ack-before-sync is the unsafe chaos control.
  FsyncPolicy fsync_policy = FsyncPolicy::kGroupCommit;
  // Protocol-aware WAL recovery on restart after a power failure. Disabled
  // only by the chaos control: damage below the durable frontier is then
  // silently truncated (the classic unsafe repair) instead of quarantined
  // behind the suspect gate and re-fetched from the leader.
  bool wal_recovery = true;
  // Multi-group sharding (src/shard, docs/sharding.md). When set, this
  // server belongs to one of several consensus groups partitioning the
  // keyspace: it serves only the slots in shard_owned_slots, rejects data
  // entries for foreign slots at arrival and at apply (WrongShardNack), and
  // applies kShardCtlSlot control entries (freeze / install / gc) that move
  // slot ranges between groups.
  bool sharded = false;
  std::vector<uint32_t> shard_owned_slots;
};

struct ServerStats {
  uint64_t client_requests = 0;
  uint64_t replies_sent = 0;
  uint64_t ops_executed = 0;   // state-machine executions on this node
  uint64_t ro_skipped = 0;     // read-only entries this node did not execute
  uint64_t unordered_gc = 0;
  uint64_t feedback_sent = 0;
  // Non-replicated (kUnrestricted) requests served locally (section 6.1).
  uint64_t unrestricted_served = 0;
  uint64_t snapshots_restored = 0;
  // Exactly-once accounting (Raft section 8 client sessions).
  uint64_t dedup_hits = 0;      // retransmits recognized as already executed
  uint64_t dedup_replies = 0;   // replies served from the session cache
  uint64_t double_applies = 0;  // re-executions that dedup would have stopped
  // Read-only retransmits dropped because their rid is already ordered but
  // not yet applied: the original's reply is still in the pipeline.
  uint64_t retransmits_inflight = 0;
  // Flow-control ledger reconciliation queries answered as leader.
  uint64_t fc_reconcile_answers = 0;
  // ReadIndex fast path (docs/hardening.md): lease-protected reads that never
  // enter the log. local = leader served it itself; forwarded = leader sent
  // the grant to a caught-up replier; remote = this node served a forwarded
  // grant; queued = held until the apply cursor reached the read index;
  // dropped = forwarded grant whose payload was not in the unordered set
  // (client multicast missed this node — the retransmit retries the read).
  uint64_t read_index_local = 0;
  uint64_t read_index_forwarded = 0;
  uint64_t read_index_remote = 0;
  uint64_t read_index_queued = 0;
  uint64_t read_index_dropped = 0;
  // Sharding (src/shard): requests redirected because this group does not
  // serve their slot — at leader arrival, and at apply time for entries
  // ordered before a freeze took effect.
  uint64_t wrong_shard_nacks = 0;
  uint64_t wrong_shard_rejects = 0;
  // Shard-move control entries applied (freeze / install / gc, plus the
  // abort ops: unfreeze at the source, uninstall at the destination).
  uint64_t shard_freezes = 0;
  uint64_t shard_installs = 0;
  uint64_t shard_gcs = 0;
  uint64_t shard_unfreezes = 0;
  uint64_t shard_uninstalls = 0;
  // Control entries rejected by the move-id fence (ShardCtlKeyOf): stale
  // duplicates re-drained into the log after the step already ran.
  uint64_t shard_ctl_stale = 0;
};

class ReplicatedServer final : public Host, public RaftNode::Env {
 public:
  ReplicatedServer(Simulator* sim, const CostModel& costs, const ServerConfig& config,
                   std::unique_ptr<StateMachine> app, uint64_t seed);
  ~ReplicatedServer() override;

  // Wiring (after Network::Attach of all hosts). `node_hosts[i]` is the host
  // id of Raft node i; aggregator/flow-control may be kInvalidHost.
  void Wire(std::vector<HostId> node_hosts, HostId aggregator_host, HostId flow_control_host);

  // Starts Raft (replicated modes) and the maintenance timers.
  void Start();

  // --- Host ---
  void HandleMessage(HostId src, const MessagePtr& msg) override;
  // Crash/restart injection: halts or resumes the Raft timers along with
  // the network interface (fail-stop model).
  void set_failed(bool failed) override;

  // Power loss: fails the node AND crashes its simulated disk, so everything
  // beyond the last fsync frontier — the unsynced WAL suffix and any
  // acknowledgement whose durability barrier had not completed — is genuinely
  // gone. The next Restart() runs WAL recovery. No-op on a failed node.
  void PowerFail();

  // Process restart after a crash. After a plain fail-stop (set_failed) the
  // process memory is intact and the node simply resumes. After PowerFail()
  // only the disk is trusted: recovery replays the WAL (CRC-validating every
  // record), truncates a torn unsynced tail, reloads the session table and
  // application state from the latest local snapshot, and re-applies forward.
  // If durable bytes were lost (corruption, mid-stream damage) the node comes
  // back as a *suspect* follower — it may vote but not campaign until its
  // commit index covers everything it may ever have acknowledged — and the
  // missing entries are re-fetched from the leader through the normal
  // AppendEntries / InstallSnapshot repair path instead of being silently
  // truncated away. Soft state (the unordered request set, leased reads) is
  // lost either way. No-op on a live node.
  void Restart();

  // --- RaftNode::Env ---
  void SendToPeer(NodeId peer, MessagePtr msg) override;
  void SendToAggregator(MessagePtr msg) override;
  std::shared_ptr<const RpcRequest> LookupUnordered(const RequestId& rid) override;
  void ConsumeUnordered(const RequestId& rid) override;
  void StoreRecovered(const RequestId& rid, std::shared_ptr<const RpcRequest> request) override;
  SnapshotCapture CaptureSnapshot() override;
  void RestoreSnapshot(const Body& state, LogIndex last_included, Term included_term,
                       MembershipConfigPtr config, LogIndex config_idx) override;
  void OnCommitAdvanced(LogIndex commit) override;
  void OnLeadershipChanged(bool is_leader) override;
  void OnConfigCommitted(const MembershipConfig& config, LogIndex idx) override;
  void DrainUnorderedIntoLog() override;

  // Installed by the cluster builder: invoked whenever this node's Raft layer
  // commits a membership config (new multicast groups, aggregator epoch, ...
  // are cluster-level concerns the server itself cannot reach).
  using ConfigCommittedCallback =
      std::function<void(NodeId self, const MembershipConfig& config, LogIndex idx)>;
  void set_config_committed_callback(ConfigCommittedCallback cb) {
    config_committed_cb_ = std::move(cb);
  }

  // --- queries ---
  bool IsLeader() const { return raft_ != nullptr && raft_->IsLeader(); }
  RaftNode* raft() { return raft_.get(); }
  const RaftNode* raft() const { return raft_.get(); }
  StateMachine& app() { return *app_; }
  const StateMachine& app() const { return *app_; }
  const ServerStats& server_stats() const { return stats_; }
  const UnorderedStore& unordered() const { return unordered_; }
  const SessionTable& sessions() const { return sessions_; }
  NodeId node_id() const { return config_.raft.id; }
  // Observability namespace: the group-local node id shifted into this
  // group's disjoint range, so rings/metrics/watchdog state never alias
  // across groups sharing one fabric.
  NodeId obs_node_id() const { return config_.raft.obs_id(); }
  const ShardServeState& shard_state() const { return shard_; }
  const ServerConfig& config() const { return config_; }
  SerialResource& app_thread() { return app_thread_; }
  // Durable storage (null for kUnreplicated). Exposed for the disk-fault
  // nemesis and metrics export.
  StableStorage* storage() { return storage_.get(); }
  const StableStorage* storage() const { return storage_.get(); }
  SimDisk* disk() { return disk_.get(); }

 private:
  bool IsReplicated() const { return config_.mode != ClusterMode::kUnreplicated; }

  void OnClientRequest(std::shared_ptr<const RpcRequest> request);
  void OnFcReconcile(HostId src, const FcReconcileReq& req);
  void ExecuteUnreplicated(const std::shared_ptr<const RpcRequest>& request);
  // ReadIndex fast path (leader side): acquire a lease-protected read index
  // and serve the read without a log entry. Returns false when no lease is
  // available — the caller falls back to ordering the read through the log.
  bool TryServeReadIndex(const std::shared_ptr<const RpcRequest>& request);
  // Replier side of a forwarded grant: resolve the payload from the
  // unordered set and serve once the apply cursor covers the read index.
  void OnReadIndexGrant(const ReadIndexGrantMsg& grant);
  // Execute a leased read against the current applied state (never touches
  // the session table — the tables stay a pure function of the log).
  // `granted` is when the lease grant covered this read, for the
  // raft.read_index_wait_ns histogram (grant -> execution).
  void ExecuteLeasedRead(const std::shared_ptr<const RpcRequest>& request, TimeNs granted);
  void DrainPendingReads();
  void ScheduleApply(LogIndex idx);
  // Applies a kShardCtlSlot entry: freeze (replier captures the range),
  // install (all replicas merge it), or gc (all replicas drop it). Dedup'd
  // through the session table like any write, so a re-drained duplicate of a
  // control entry can never re-run a move step.
  void ApplyShardCtl(LogIndex idx, const LogEntry& entry);
  // Resets shard_ to the configured initial ownership (ctor, and the
  // recovery path of last resort when the on-disk snapshot is unreadable).
  void InitShardState();
  void SendReply(const RequestId& rid, Body body, bool send_feedback = true);
  // Protocol CPU beyond raw byte handling, charged on the net thread.
  TimeNs ProtocolCpu(const Message& msg) const;
  void ArmMaintenanceTimers();
  void ArmGcTimer();
  void ArmCompactionTimer();
  void CompactNow();
  // Writes the local snapshot (config + sessions + app state through
  // apply_cursor_) to the disk; the durable floor WAL replay restarts from.
  void PersistLocalSnapshot();
  // Post-power-fail recovery: WAL replay + snapshot reload + raft restart.
  void RecoverFromStorage();

  ServerConfig config_;
  std::unique_ptr<StateMachine> app_;
  // Simulated durable media + WAL (replicated modes only); declared before
  // raft_ so storage outlives the node that writes to it.
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<StableStorage> storage_;
  std::unique_ptr<RaftNode> raft_;
  SerialResource app_thread_;
  UnorderedStore unordered_;
  // Replicated client sessions: a deterministic function of the applied log
  // prefix, so it survives Restart() alongside the application state and
  // travels inside snapshots (serialized ahead of the app bytes).
  SessionTable sessions_;
  // Which slots this group currently serves. Mutated ONLY by applying
  // committed control entries (and snapshot restore), never by arrival-time
  // state, so every replica gates every log entry identically.
  ShardServeState shard_;

  std::vector<HostId> node_hosts_;
  HostId aggregator_host_ = kInvalidHost;
  HostId flow_control_host_ = kInvalidHost;

  // Apply pipeline: last log index handed to the app thread.
  LogIndex apply_cursor_ = 0;

  // Pristine application image captured at construction: the recovery target
  // of last resort when the on-disk snapshot itself is unreadable.
  Body genesis_app_state_;
  // Last index covered by the on-disk snapshot; compaction skips the write
  // when the apply cursor has not moved past it.
  LogIndex local_snapshot_idx_ = 0;
  // Set by PowerFail(): the disk crashed, so Restart() must run WAL recovery
  // instead of resuming from (now untrustworthy) process memory.
  bool needs_recovery_ = false;

  // Leased reads waiting for the apply cursor to reach their read index;
  // drained whenever the cursor advances. Volatile — lost on crash, and the
  // client's retransmission timer re-issues the read.
  struct PendingRead {
    LogIndex read_index;
    TimeNs granted;  // when the lease grant covered this read
    std::shared_ptr<const RpcRequest> request;
  };
  std::vector<PendingRead> pending_reads_;

  // Maintenance timers; re-arming cancels the previous handle so restarts
  // never stack duplicate GC/compaction chains.
  EventId gc_timer_ = kInvalidEvent;
  EventId compaction_timer_ = kInvalidEvent;

  ConfigCommittedCallback config_committed_cb_;

  ServerStats stats_;
};

}  // namespace hovercraft

#endif  // SRC_CORE_SERVER_H_
