#include "src/core/session_table.h"

#include <utility>
#include <vector>

namespace hovercraft {

void SessionTable::Record(const RequestId& rid, Body reply, uint32_t slot) {
  ClientSession& session = sessions_[rid.client];
  if (rid.seq <= session.ack_watermark) {
    return;  // already acknowledged; nothing can still ask for this reply
  }
  session.replies[rid.seq] = Cached{std::move(reply), slot};
}

bool SessionTable::Executed(const RequestId& rid) const {
  auto it = sessions_.find(rid.client);
  if (it == sessions_.end()) {
    return false;
  }
  const ClientSession& session = it->second;
  return rid.seq <= session.ack_watermark || session.replies.count(rid.seq) > 0;
}

Body SessionTable::CachedReply(const RequestId& rid) const {
  auto it = sessions_.find(rid.client);
  if (it == sessions_.end()) {
    return nullptr;
  }
  auto reply = it->second.replies.find(rid.seq);
  return reply == it->second.replies.end() ? nullptr : reply->second.reply;
}

void SessionTable::Acknowledge(HostId client, uint64_t watermark) {
  if (watermark == 0) {
    return;
  }
  ClientSession& session = sessions_[client];
  if (watermark <= session.ack_watermark) {
    return;  // watermarks are monotone; an older attempt carries a stale one
  }
  session.ack_watermark = watermark;
  session.replies.erase(session.replies.begin(),
                        session.replies.upper_bound(watermark));
}

namespace {

void PutCached(BufferWriter* w, uint64_t seq, uint32_t slot, const Body& reply) {
  w->PutU64(seq);
  w->PutU32(slot);
  if (reply == nullptr) {
    w->PutU32(0);
  } else {
    w->PutU32(static_cast<uint32_t>(reply->size()));
    w->PutBytes(*reply);
  }
}

}  // namespace

void SessionTable::Serialize(BufferWriter* w) const {
  w->PutU32(static_cast<uint32_t>(sessions_.size()));
  for (const auto& [client, session] : sessions_) {
    w->PutI64(static_cast<int64_t>(client));
    w->PutU64(session.ack_watermark);
    w->PutU32(static_cast<uint32_t>(session.replies.size()));
    for (const auto& [seq, entry] : session.replies) {
      PutCached(w, seq, entry.slot, entry.reply);
    }
  }
}

Status SessionTable::Restore(BufferReader* r) {
  std::map<HostId, ClientSession> restored;
  uint32_t client_count = 0;
  if (Status s = r->GetU32(client_count); !s.ok()) {
    return s;
  }
  for (uint32_t c = 0; c < client_count; ++c) {
    int64_t client = 0;
    ClientSession session;
    uint32_t reply_count = 0;
    if (Status s = r->GetI64(client); !s.ok()) {
      return s;
    }
    if (Status s = r->GetU64(session.ack_watermark); !s.ok()) {
      return s;
    }
    if (Status s = r->GetU32(reply_count); !s.ok()) {
      return s;
    }
    for (uint32_t i = 0; i < reply_count; ++i) {
      uint64_t seq = 0;
      uint32_t slot = kNoShardSlot;
      uint32_t len = 0;
      if (Status s = r->GetU64(seq); !s.ok()) {
        return s;
      }
      if (Status s = r->GetU32(slot); !s.ok()) {
        return s;
      }
      if (Status s = r->GetU32(len); !s.ok()) {
        return s;
      }
      std::vector<uint8_t> bytes;
      if (Status s = r->GetBytes(len, bytes); !s.ok()) {
        return s;
      }
      session.replies[seq] = Cached{MakeBody(std::move(bytes)), slot};
    }
    restored[static_cast<HostId>(client)] = std::move(session);
  }
  sessions_ = std::move(restored);
  return Status::Ok();
}

void SessionTable::SerializeRange(BufferWriter* w, uint32_t lo, uint32_t hi) const {
  uint32_t client_count = 0;
  for (const auto& [client, session] : sessions_) {
    for (const auto& [seq, entry] : session.replies) {
      if (entry.slot >= lo && entry.slot <= hi) {
        ++client_count;
        break;
      }
    }
  }
  w->PutU32(client_count);
  for (const auto& [client, session] : sessions_) {
    uint32_t in_range = 0;
    for (const auto& [seq, entry] : session.replies) {
      if (entry.slot >= lo && entry.slot <= hi) {
        ++in_range;
      }
    }
    if (in_range == 0) {
      continue;
    }
    w->PutI64(static_cast<int64_t>(client));
    w->PutU32(in_range);
    for (const auto& [seq, entry] : session.replies) {
      if (entry.slot >= lo && entry.slot <= hi) {
        PutCached(w, seq, entry.slot, entry.reply);
      }
    }
  }
}

Status SessionTable::MergeRange(BufferReader* r) {
  uint32_t client_count = 0;
  if (Status s = r->GetU32(client_count); !s.ok()) {
    return s;
  }
  for (uint32_t c = 0; c < client_count; ++c) {
    int64_t client = 0;
    uint32_t reply_count = 0;
    if (Status s = r->GetI64(client); !s.ok()) {
      return s;
    }
    if (Status s = r->GetU32(reply_count); !s.ok()) {
      return s;
    }
    for (uint32_t i = 0; i < reply_count; ++i) {
      uint64_t seq = 0;
      uint32_t slot = kNoShardSlot;
      uint32_t len = 0;
      if (Status s = r->GetU64(seq); !s.ok()) {
        return s;
      }
      if (Status s = r->GetU32(slot); !s.ok()) {
        return s;
      }
      if (Status s = r->GetU32(len); !s.ok()) {
        return s;
      }
      std::vector<uint8_t> bytes;
      if (Status s = r->GetBytes(len, bytes); !s.ok()) {
        return s;
      }
      ClientSession& session = sessions_[static_cast<HostId>(client)];
      if (seq <= session.ack_watermark || session.replies.count(seq) > 0) {
        continue;  // locally resolved or locally recorded — local state wins
      }
      session.replies[seq] = Cached{MakeBody(std::move(bytes)), slot};
    }
  }
  return Status::Ok();
}

void SessionTable::DropRange(uint32_t lo, uint32_t hi) {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    ClientSession& session = it->second;
    for (auto reply = session.replies.begin(); reply != session.replies.end();) {
      if (reply->second.slot >= lo && reply->second.slot <= hi) {
        reply = session.replies.erase(reply);
      } else {
        ++reply;
      }
    }
    if (session.replies.empty() && session.ack_watermark == 0) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t SessionTable::cached_replies() const {
  size_t total = 0;
  for (const auto& [client, session] : sessions_) {
    total += session.replies.size();
  }
  return total;
}

uint64_t SessionTable::AckWatermark(HostId client) const {
  auto it = sessions_.find(client);
  return it == sessions_.end() ? 0 : it->second.ack_watermark;
}

}  // namespace hovercraft
