#include "src/core/session_table.h"

#include <utility>
#include <vector>

namespace hovercraft {

void SessionTable::Record(const RequestId& rid, Body reply) {
  ClientSession& session = sessions_[rid.client];
  if (rid.seq <= session.ack_watermark) {
    return;  // already acknowledged; nothing can still ask for this reply
  }
  session.replies[rid.seq] = std::move(reply);
}

bool SessionTable::Executed(const RequestId& rid) const {
  auto it = sessions_.find(rid.client);
  if (it == sessions_.end()) {
    return false;
  }
  const ClientSession& session = it->second;
  return rid.seq <= session.ack_watermark || session.replies.count(rid.seq) > 0;
}

Body SessionTable::CachedReply(const RequestId& rid) const {
  auto it = sessions_.find(rid.client);
  if (it == sessions_.end()) {
    return nullptr;
  }
  auto reply = it->second.replies.find(rid.seq);
  return reply == it->second.replies.end() ? nullptr : reply->second;
}

void SessionTable::Acknowledge(HostId client, uint64_t watermark) {
  if (watermark == 0) {
    return;
  }
  ClientSession& session = sessions_[client];
  if (watermark <= session.ack_watermark) {
    return;  // watermarks are monotone; an older attempt carries a stale one
  }
  session.ack_watermark = watermark;
  session.replies.erase(session.replies.begin(),
                        session.replies.upper_bound(watermark));
}

void SessionTable::Serialize(BufferWriter* w) const {
  w->PutU32(static_cast<uint32_t>(sessions_.size()));
  for (const auto& [client, session] : sessions_) {
    w->PutI64(static_cast<int64_t>(client));
    w->PutU64(session.ack_watermark);
    w->PutU32(static_cast<uint32_t>(session.replies.size()));
    for (const auto& [seq, reply] : session.replies) {
      w->PutU64(seq);
      if (reply == nullptr) {
        w->PutU32(0);
      } else {
        w->PutU32(static_cast<uint32_t>(reply->size()));
        w->PutBytes(*reply);
      }
    }
  }
}

Status SessionTable::Restore(BufferReader* r) {
  std::map<HostId, ClientSession> restored;
  uint32_t client_count = 0;
  if (Status s = r->GetU32(client_count); !s.ok()) {
    return s;
  }
  for (uint32_t c = 0; c < client_count; ++c) {
    int64_t client = 0;
    ClientSession session;
    uint32_t reply_count = 0;
    if (Status s = r->GetI64(client); !s.ok()) {
      return s;
    }
    if (Status s = r->GetU64(session.ack_watermark); !s.ok()) {
      return s;
    }
    if (Status s = r->GetU32(reply_count); !s.ok()) {
      return s;
    }
    for (uint32_t i = 0; i < reply_count; ++i) {
      uint64_t seq = 0;
      uint32_t len = 0;
      if (Status s = r->GetU64(seq); !s.ok()) {
        return s;
      }
      if (Status s = r->GetU32(len); !s.ok()) {
        return s;
      }
      std::vector<uint8_t> bytes;
      if (Status s = r->GetBytes(len, bytes); !s.ok()) {
        return s;
      }
      session.replies[seq] = MakeBody(std::move(bytes));
    }
    restored[static_cast<HostId>(client)] = std::move(session);
  }
  sessions_ = std::move(restored);
  return Status::Ok();
}

size_t SessionTable::cached_replies() const {
  size_t total = 0;
  for (const auto& [client, session] : sessions_) {
    total += session.replies.size();
  }
  return total;
}

uint64_t SessionTable::AckWatermark(HostId client) const {
  auto it = sessions_.find(client);
  return it == sessions_.end() ? 0 : it->second.ack_watermark;
}

}  // namespace hovercraft
