// Replicated client-session table (Raft dissertation section 8 / 6.3): the
// server-side half of exactly-once RPC. For every client the table tracks
//   - the ack watermark: the highest sequence number such that the client has
//     observed replies for ALL sequences at or below it, and
//   - cached replies for executed requests above that watermark.
// A retransmitted write whose rid is already recorded is answered from the
// cache instead of re-executed. The table is never replicated explicitly: it
// is a deterministic function of the applied log prefix (every node records
// the same replies and applies the same watermarks, which ride in the log
// entries), so it stays identical across replicas and only needs to travel
// inside state snapshots for straggler repair and compaction.
#ifndef SRC_CORE_SESSION_TABLE_H_
#define SRC_CORE_SESSION_TABLE_H_

#include <cstdint>
#include <map>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/r2p2/messages.h"
#include "src/r2p2/request_id.h"
#include "src/r2p2/shard.h"

namespace hovercraft {

class SessionTable {
 public:
  // Records the reply for an executed request. Idempotent for a given rid
  // (re-recording overwrites, but callers consult Executed() first). `slot`
  // tags the entry with the shard slot of the key it wrote, so a live shard
  // move can hand exactly the moved range's dedup state to the destination
  // group (SerializeRange / DropRange); kNoShardSlot for unsharded servers
  // and control entries.
  void Record(const RequestId& rid, Body reply, uint32_t slot = kNoShardSlot);

  // True when the request has already been executed: either its reply is
  // still cached, or its sequence sits at or below the client's ack
  // watermark (executed, acknowledged, and GC'd).
  bool Executed(const RequestId& rid) const;

  // The cached reply for an executed request, or null when it was never
  // recorded or has been garbage-collected past the ack watermark. A null
  // return with Executed() true means the client already acknowledged the
  // reply, so no retransmission for it can be outstanding.
  Body CachedReply(const RequestId& rid) const;

  // Raises the client's ack watermark and drops cached replies at or below
  // it. Watermarks are monotone; stale (lower) values are ignored.
  void Acknowledge(HostId client, uint64_t watermark);

  // Snapshot encode/decode. The format is self-delimiting so it can prefix
  // the application state inside one snapshot body.
  void Serialize(BufferWriter* w) const;
  Status Restore(BufferReader* r);

  // --- Shard-move range handoff (docs/sharding.md). ---
  // SerializeRange emits the cached replies whose slot tag falls in
  // [lo, hi] — the exactly-once state that must travel with the moved keys.
  // Ack watermarks are deliberately NOT transferred: a watermark only rises
  // after the client has resolved every reply at or below it, so any request
  // the destination could still see is either above the watermark (its reply
  // is in the range payload) or genuinely new.
  void SerializeRange(BufferWriter* w, uint32_t lo, uint32_t hi) const;
  // Merges a SerializeRange payload into this table. Entries at or below a
  // client's local ack watermark are dropped (the client already resolved
  // them); existing entries for the same rid are kept (the local copy was
  // recorded by this group's own log and wins).
  Status MergeRange(BufferReader* r);
  // Drops cached replies whose slot tag falls in [lo, hi] — the source
  // group's GC step after a move commits. Sessions left with no replies and
  // a zero watermark are erased entirely (same condition on every replica,
  // so tables stay byte-identical).
  void DropRange(uint32_t lo, uint32_t hi);

  void Clear() { sessions_.clear(); }

  size_t client_count() const { return sessions_.size(); }
  size_t cached_replies() const;
  uint64_t AckWatermark(HostId client) const;

 private:
  struct Cached {
    Body reply;
    uint32_t slot = kNoShardSlot;
  };
  struct ClientSession {
    uint64_t ack_watermark = 0;
    // seq -> reply, only for seq > ack_watermark. Ordered for deterministic
    // serialization (snapshot bytes must be identical across replicas).
    std::map<uint64_t, Cached> replies;
  };

  // Ordered by client id, same determinism requirement as above.
  std::map<HostId, ClientSession> sessions_;
};

}  // namespace hovercraft

#endif  // SRC_CORE_SESSION_TABLE_H_
