#include "src/core/unordered_store.h"

#include <utility>
#include <vector>

namespace hovercraft {

bool UnorderedStore::Insert(std::shared_ptr<const RpcRequest> request, TimeNs now) {
  const RequestId rid = request->rid();
  auto [it, inserted] = by_rid_.try_emplace(rid);
  if (!inserted) {
    return false;
  }
  order_.push_back(rid);
  it->second.request = std::move(request);
  it->second.inserted = now;
  it->second.order_it = std::prev(order_.end());
  return true;
}

std::shared_ptr<const RpcRequest> UnorderedStore::Lookup(const RequestId& rid) const {
  auto it = by_rid_.find(rid);
  return it == by_rid_.end() ? nullptr : it->second.request;
}

bool UnorderedStore::Erase(const RequestId& rid) {
  auto it = by_rid_.find(rid);
  if (it == by_rid_.end()) {
    return false;
  }
  order_.erase(it->second.order_it);
  by_rid_.erase(it);
  return true;
}

size_t UnorderedStore::GarbageCollect(TimeNs now, TimeNs ttl) {
  size_t dropped = 0;
  while (!order_.empty()) {
    auto it = by_rid_.find(order_.front());
    if (it == by_rid_.end() || now - it->second.inserted < ttl) {
      break;
    }
    by_rid_.erase(it);
    order_.pop_front();
    ++dropped;
  }
  return dropped;
}

void UnorderedStore::Drain(const std::function<void(std::shared_ptr<const RpcRequest>)>& fn) {
  // Snapshot first: fn (SubmitRequest) may re-enter the store via Consume.
  std::vector<std::shared_ptr<const RpcRequest>> items;
  items.reserve(by_rid_.size());
  for (const RequestId& rid : order_) {
    auto it = by_rid_.find(rid);
    if (it != by_rid_.end()) {
      items.push_back(it->second.request);
    }
  }
  by_rid_.clear();
  order_.clear();
  for (auto& req : items) {
    fn(std::move(req));
  }
}

void UnorderedStore::Clear() {
  by_rid_.clear();
  order_.clear();
}

}  // namespace hovercraft
