// The set of client requests received over multicast but not yet ordered
// (paper section 3.2). Indexed by the R2P2 identity 3-tuple; iterated in
// insertion order when a new leader drains it (section 5); garbage-collected
// by age so requests the leader never ordered do not accumulate.
#ifndef SRC_CORE_UNORDERED_STORE_H_
#define SRC_CORE_UNORDERED_STORE_H_

#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "src/common/types.h"
#include "src/r2p2/messages.h"
#include "src/r2p2/request_id.h"

namespace hovercraft {

class UnorderedStore {
 public:
  // Returns false if the request was already present (duplicate multicast).
  bool Insert(std::shared_ptr<const RpcRequest> request, TimeNs now);

  std::shared_ptr<const RpcRequest> Lookup(const RequestId& rid) const;

  bool Erase(const RequestId& rid);

  // Removes requests older than `ttl`; returns how many were dropped. Early
  // collection is safe — it only forces the recovery path (section 5).
  size_t GarbageCollect(TimeNs now, TimeNs ttl);

  // Calls `fn` for every request in insertion order and clears the store.
  // Used by a freshly elected leader to order orphaned requests.
  void Drain(const std::function<void(std::shared_ptr<const RpcRequest>)>& fn);

  // Discards everything. The unordered set is soft state: a crashed process
  // loses it, and the recovery path (section 5) re-fetches what the log
  // still needs.
  void Clear();

  size_t size() const { return by_rid_.size(); }
  bool empty() const { return by_rid_.empty(); }

 private:
  struct Item {
    std::shared_ptr<const RpcRequest> request;
    TimeNs inserted;
    std::list<RequestId>::iterator order_it;
  };

  std::unordered_map<RequestId, Item, RequestIdHash> by_rid_;
  std::list<RequestId> order_;  // oldest first
};

}  // namespace hovercraft

#endif  // SRC_CORE_UNORDERED_STORE_H_
