#include "src/loadgen/client.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/obs/observability.h"

namespace hovercraft {

ClientHost::ClientHost(Simulator* sim, const CostModel& costs, TargetFn target,
                       std::unique_ptr<Workload> workload, double rate_rps, uint64_t seed)
    : Host(sim, costs, Kind::kServer),
      target_(std::move(target)),
      workload_(std::move(workload)),
      rate_rps_(rate_rps),
      rng_(seed) {
  HC_CHECK(target_ != nullptr);
  HC_CHECK(workload_ != nullptr);
  HC_CHECK_GT(rate_rps, 0.0);
}

void ClientHost::StartLoad(TimeNs start, TimeNs stop) {
  HC_CHECK_GT(stop, start);
  stop_time_ = stop;
  running_ = true;
  // First arrival an exponential gap after `start` (stationary process).
  const TimeNs gap =
      static_cast<TimeNs>(rng_.NextExponential(1e9 / rate_rps_));
  sim()->At(start + gap, [this]() { SendOne(); });
}

void ClientHost::ScheduleNextArrival() {
  const TimeNs gap = static_cast<TimeNs>(rng_.NextExponential(1e9 / rate_rps_));
  const TimeNs next = sim()->Now() + gap;
  if (next >= stop_time_) {
    running_ = false;
    return;
  }
  sim()->At(next, [this]() { SendOne(); });
}

Addr ClientHost::ResolveTarget(const Pending& pending) {
  if (pending.unrestricted) {
    return unrestricted_targets_[rng_.NextBelow(unrestricted_targets_.size())];
  }
  if (shard_route_ != nullptr && IsDataSlot(pending.shard_slot)) {
    const ShardRoute route = shard_route_(pending.shard_slot);
    // Retries and post-redirect resends take the retry path (group
    // multicast), matching the unsharded bypass-the-middlebox semantics.
    return pending.attempts > 1 ? route.retry : route.ingress;
  }
  // Re-resolved per attempt: retries chase the current leader / retry path.
  if (retry_target_ != nullptr && pending.attempts > 1) {
    return retry_target_();
  }
  return target_();
}

void ClientHost::SendOne() {
  if (!running_ || sim()->Now() >= stop_time_) {
    running_ = false;
    return;
  }
  ScheduleNextArrival();

  if (outstanding_limit_ > 0 && outstanding_.size() >= outstanding_limit_) {
    // Abandon requests the client has given up on. Without retries this is
    // the only give-up path (retries abandon from their timer chain).
    const TimeNs now = sim()->Now();
    std::vector<uint64_t> expired;
    for (const auto& [seq, pending] : outstanding_) {
      if (pending.first_sent + give_up_ <= now) {
        expired.push_back(seq);
      }
    }
    for (uint64_t seq : expired) {
      Abandon(seq);
    }
    if (outstanding_.size() >= outstanding_limit_) {
      return;  // still saturated: shed this arrival
    }
  }

  Workload::Op op = workload_->Next(rng_);
  const uint64_t seq = next_seq_++;
  const RequestId rid{id(), seq};
  const bool unrestricted = op.unrestricted && !unrestricted_targets_.empty();
  const R2p2Policy policy =
      unrestricted ? R2p2Policy::kUnrestricted
                   : (op.read_only ? R2p2Policy::kReplicatedReqRo : R2p2Policy::kReplicatedReq);
  const TimeNs now = sim()->Now();
  Pending pending;
  pending.first_sent = now;
  pending.policy = policy;
  pending.body = std::move(op.body);
  pending.shard_slot = op.shard_slot;
  pending.unrestricted = unrestricted;
  const Addr dst = ResolveTarget(pending);
  auto request = std::make_shared<RpcRequest>(rid, policy, pending.body, /*attempt=*/1,
                                              ack_floor_, pending.shard_slot);
  outstanding_.emplace(seq, std::move(pending));
  ++total_sent_;
  if (InWindow(now)) {
    ++sent_in_window_;
  }
  if (observer_ != nullptr) {
    observer_->OnInvoke(id(), seq, policy, request->body(), now);
  }
  obs::MarkStageAll(sim(), rid, obs::Stage::kClientSend, kInvalidNode, now);
  Send(dst, std::move(request));
  if (retry_policy_.enabled) {
    ArmRetryTimer(seq, 1);
  }
}

TimeNs ClientHost::BackoffAfter(uint32_t attempt) {
  HC_CHECK_GE(attempt, 1u);
  double backoff = static_cast<double>(retry_policy_.initial_backoff);
  for (uint32_t i = 1; i < attempt; ++i) {
    backoff *= retry_policy_.multiplier;
    if (backoff >= static_cast<double>(retry_policy_.max_backoff)) {
      break;
    }
  }
  backoff = std::min(backoff, static_cast<double>(retry_policy_.max_backoff));
  const double jitter = retry_policy_.jitter;
  if (jitter > 0.0) {
    backoff *= 1.0 - jitter + 2.0 * jitter * rng_.NextDouble();
  }
  return std::max<TimeNs>(1, static_cast<TimeNs>(backoff));
}

void ClientHost::ArmRetryTimer(uint64_t seq, uint32_t attempt) {
  const EventId timer = sim()->After(BackoffAfter(attempt), [this, seq, attempt]() {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end() || it->second.attempts != attempt) {
      return;  // completed, abandoned, or superseded by a newer attempt
    }
    Pending& pending = it->second;
    const TimeNs now = sim()->Now();
    const bool attempts_exhausted = retry_policy_.max_attempts > 0 &&
                                    pending.attempts >= retry_policy_.max_attempts;
    const bool timed_out = give_up_ > 0 && now - pending.first_sent >= give_up_;
    if (attempts_exhausted || timed_out) {
      Abandon(seq);
      return;
    }
    ++pending.attempts;
    ++total_retransmits_;
    const RequestId rid{id(), seq};
    obs::MarkStageAll(sim(), rid, obs::Stage::kRetransmit, kInvalidNode, now);
    if (auto* tracer = obs::TracerOf(sim())) {
      tracer->Instant(obs::kClusterPid, obs::kTidEvents, "retransmit", now,
                      "c" + std::to_string(id()) + ":" + std::to_string(seq) +
                          " attempt " + std::to_string(pending.attempts));
    }
    auto request = std::make_shared<RpcRequest>(rid, pending.policy, pending.body,
                                                pending.attempts, ack_floor_,
                                                pending.shard_slot);
    Send(ResolveTarget(pending), std::move(request));
    ArmRetryTimer(seq, pending.attempts);
  });
  auto it = outstanding_.find(seq);
  if (it != outstanding_.end()) {
    it->second.retry_timer = timer;
  }
}

void ClientHost::Abandon(uint64_t seq) {
  auto it = outstanding_.find(seq);
  HC_CHECK(it != outstanding_.end());
  sim()->Cancel(it->second.retry_timer);  // no-op when called from the timer itself
  // The operation stays unresolved (open in any observer's history) and its
  // sequence deliberately never advances the ack watermark: acknowledging it
  // would let the servers GC a session entry a stale retransmit could still
  // re-execute. A late reply resolves it exactly once.
  abandoned_.emplace(seq, it->second.first_sent);
  outstanding_.erase(it);
  ++total_abandoned_;
}

void ClientHost::ResolveForAck(uint64_t seq) {
  if (seq <= ack_floor_) {
    return;
  }
  resolved_above_floor_.insert(seq);
  while (!resolved_above_floor_.empty() &&
         *resolved_above_floor_.begin() == ack_floor_ + 1) {
    ++ack_floor_;
    resolved_above_floor_.erase(resolved_above_floor_.begin());
  }
}

void ClientHost::HandleMessage(HostId /*src*/, const MessagePtr& msg) {
  if (const auto* resp = dynamic_cast<const RpcResponse*>(msg.get())) {
    const uint64_t seq = resp->rid().seq;
    auto it = outstanding_.find(seq);
    if (it != outstanding_.end()) {
      const Pending pending = std::move(it->second);
      outstanding_.erase(it);
      sim()->Cancel(pending.retry_timer);
      ++total_completed_;
      if (pending.attempts > 1) {
        ++completed_after_retry_;
        if (InWindow(pending.first_sent)) {
          ++recovered_in_window_;
        }
      }
      const TimeNs latency = sim()->Now() - pending.first_sent;
      if (InWindow(pending.first_sent)) {
        ++completed_in_window_;
        latencies_.Record(latency);
      }
      if (timeseries_ != nullptr) {
        timeseries_->Record(sim()->Now(), latency);
      }
      ResolveForAck(seq);
      obs::MarkStageAll(sim(), resp->rid(), obs::Stage::kComplete, kInvalidNode, sim()->Now());
      if (observer_ != nullptr) {
        observer_->OnComplete(id(), seq, resp->body(), sim()->Now());
      }
      return;
    }
    auto ab = abandoned_.find(seq);
    if (ab != abandoned_.end()) {
      // Late completion of an abandoned request: counted exactly once, never
      // resurrected into the outstanding set.
      const TimeNs first_sent = ab->second;
      abandoned_.erase(ab);
      ++total_completed_;
      ++late_completions_;
      const TimeNs latency = sim()->Now() - first_sent;
      if (InWindow(first_sent)) {
        ++completed_in_window_;
        latencies_.Record(latency);
      }
      if (timeseries_ != nullptr) {
        timeseries_->Record(sim()->Now(), latency);
      }
      ResolveForAck(seq);
      obs::MarkStageAll(sim(), resp->rid(), obs::Stage::kComplete, kInvalidNode, sim()->Now());
      if (observer_ != nullptr) {
        observer_->OnComplete(id(), seq, resp->body(), sim()->Now());
      }
      return;
    }
    return;  // duplicate reply (already completed) — suppressed
  }
  if (const auto* wrong = dynamic_cast<const WrongShardNack*>(msg.get())) {
    auto it = outstanding_.find(wrong->rid().seq);
    if (it == outstanding_.end() || shard_route_ == nullptr) {
      return;  // already resolved, abandoned, or not a sharded client
    }
    Pending& pending = it->second;
    ++total_redirects_;
    if (pending.redirects >= kMaxImmediateRedirects) {
      // Stop chasing back-to-back; the retry timer armed by the last redirect
      // resend re-resolves the route at backoff pace (the slot is mid-move
      // and frozen everywhere).
      return;
    }
    ++pending.redirects;
    ++pending.attempts;
    sim()->Cancel(pending.retry_timer);
    const TimeNs now = sim()->Now();
    if (auto* tracer = obs::TracerOf(sim())) {
      tracer->Instant(obs::kClusterPid, obs::kTidEvents, "wrong-shard", now,
                      "c" + std::to_string(id()) + ":" + std::to_string(wrong->rid().seq) +
                          " slot " + std::to_string(pending.shard_slot) + " epoch " +
                          std::to_string(wrong->epoch()));
    }
    // Refresh the map view (inside ResolveTarget) and resend at the new
    // owner. Still the same logical invocation: no observer event, and the
    // bumped attempt count marks the resend a retransmit server-side.
    const RequestId rid{id(), wrong->rid().seq};
    auto request = std::make_shared<RpcRequest>(rid, pending.policy, pending.body,
                                                pending.attempts, ack_floor_,
                                                pending.shard_slot);
    Send(ResolveTarget(pending), std::move(request));
    // Always armed, even with the retry policy disabled: a redirected request
    // has no other resend path, and past the immediate-redirect cap the
    // handler above relies on this timer — without it the operation would
    // hang outstanding forever. The policy's backoff fields have usable
    // defaults regardless of `enabled`.
    ArmRetryTimer(wrong->rid().seq, pending.attempts);
    return;
  }
  if (const auto* nack = dynamic_cast<const NackMsg*>(msg.get())) {
    auto it = outstanding_.find(nack->rid().seq);
    if (it == outstanding_.end()) {
      return;
    }
    if (it->second.attempts > 1) {
      // A stale NACK from the first attempt racing a retransmission that
      // bypassed the middlebox: the retry may still succeed, keep waiting.
      return;
    }
    const TimeNs sent = it->second.first_sent;
    sim()->Cancel(it->second.retry_timer);
    outstanding_.erase(it);
    if (InWindow(sent)) {
      ++nacked_in_window_;
    }
    if (timeseries_ != nullptr) {
      timeseries_->Count(sim()->Now());
    }
    // A NACKed request was never admitted, so it can never execute: safe to
    // acknowledge for session-table GC.
    ResolveForAck(nack->rid().seq);
    if (observer_ != nullptr) {
      observer_->OnNack(id(), nack->rid().seq, sim()->Now());
    }
    return;
  }
}

void ClientHost::AccountLost(TimeNs penalty_ns) {
  for (const auto& [seq, pending] : outstanding_) {
    sim()->Cancel(pending.retry_timer);
    if (InWindow(pending.first_sent)) {
      ++lost_in_window_;
      latencies_.Record(penalty_ns);
    }
  }
  outstanding_.clear();
  for (const auto& [seq, first_sent] : abandoned_) {
    if (InWindow(first_sent)) {
      ++lost_in_window_;
      latencies_.Record(penalty_ns);
    }
  }
  abandoned_.clear();
}

}  // namespace hovercraft
