#include "src/loadgen/client.h"

#include <utility>

#include "src/common/check.h"
#include "src/r2p2/messages.h"

namespace hovercraft {

ClientHost::ClientHost(Simulator* sim, const CostModel& costs, TargetFn target,
                       std::unique_ptr<Workload> workload, double rate_rps, uint64_t seed)
    : Host(sim, costs, Kind::kServer),
      target_(std::move(target)),
      workload_(std::move(workload)),
      rate_rps_(rate_rps),
      rng_(seed) {
  HC_CHECK(target_ != nullptr);
  HC_CHECK(workload_ != nullptr);
  HC_CHECK_GT(rate_rps, 0.0);
}

void ClientHost::StartLoad(TimeNs start, TimeNs stop) {
  HC_CHECK_GT(stop, start);
  stop_time_ = stop;
  running_ = true;
  // First arrival an exponential gap after `start` (stationary process).
  const TimeNs gap =
      static_cast<TimeNs>(rng_.NextExponential(1e9 / rate_rps_));
  sim()->At(start + gap, [this]() { SendOne(); });
}

void ClientHost::ScheduleNextArrival() {
  const TimeNs gap = static_cast<TimeNs>(rng_.NextExponential(1e9 / rate_rps_));
  const TimeNs next = sim()->Now() + gap;
  if (next >= stop_time_) {
    running_ = false;
    return;
  }
  sim()->At(next, [this]() { SendOne(); });
}

void ClientHost::SendOne() {
  if (!running_ || sim()->Now() >= stop_time_) {
    running_ = false;
    return;
  }
  ScheduleNextArrival();

  if (outstanding_limit_ > 0 && outstanding_.size() >= outstanding_limit_) {
    // Abandon requests the client has given up on; they stay unresolved in
    // any attached observer's history (open operations).
    const TimeNs now = sim()->Now();
    for (auto it = outstanding_.begin(); it != outstanding_.end();) {
      if (it->second + give_up_ <= now) {
        it = outstanding_.erase(it);
      } else {
        ++it;
      }
    }
    if (outstanding_.size() >= outstanding_limit_) {
      return;  // still saturated: shed this arrival
    }
  }

  Workload::Op op = workload_->Next(rng_);
  const uint64_t seq = next_seq_++;
  const RequestId rid{id(), seq};
  const bool unrestricted = op.unrestricted && !unrestricted_targets_.empty();
  const R2p2Policy policy =
      unrestricted ? R2p2Policy::kUnrestricted
                   : (op.read_only ? R2p2Policy::kReplicatedReqRo : R2p2Policy::kReplicatedReq);
  const TimeNs now = sim()->Now();
  outstanding_.emplace(seq, now);
  ++total_sent_;
  if (InWindow(now)) {
    ++sent_in_window_;
  }
  const Addr dst =
      unrestricted
          ? unrestricted_targets_[rng_.NextBelow(unrestricted_targets_.size())]
          : target_();
  auto request = std::make_shared<RpcRequest>(rid, policy, std::move(op.body));
  if (observer_ != nullptr) {
    observer_->OnInvoke(id(), seq, policy, request->body(), now);
  }
  Send(dst, std::move(request));
}

void ClientHost::HandleMessage(HostId /*src*/, const MessagePtr& msg) {
  if (const auto* resp = dynamic_cast<const RpcResponse*>(msg.get())) {
    auto it = outstanding_.find(resp->rid().seq);
    if (it == outstanding_.end()) {
      return;  // duplicate or post-accounting reply
    }
    const TimeNs sent = it->second;
    outstanding_.erase(it);
    ++total_completed_;
    const TimeNs latency = sim()->Now() - sent;
    if (InWindow(sent)) {
      ++completed_in_window_;
      latencies_.Record(latency);
    }
    if (timeseries_ != nullptr) {
      timeseries_->Record(sim()->Now(), latency);
    }
    if (observer_ != nullptr) {
      observer_->OnComplete(id(), resp->rid().seq, resp->body(), sim()->Now());
    }
    return;
  }
  if (const auto* nack = dynamic_cast<const NackMsg*>(msg.get())) {
    auto it = outstanding_.find(nack->rid().seq);
    if (it == outstanding_.end()) {
      return;
    }
    const TimeNs sent = it->second;
    outstanding_.erase(it);
    if (InWindow(sent)) {
      ++nacked_in_window_;
    }
    if (timeseries_ != nullptr) {
      timeseries_->Count(sim()->Now());
    }
    if (observer_ != nullptr) {
      observer_->OnNack(id(), nack->rid().seq, sim()->Now());
    }
    return;
  }
}

void ClientHost::AccountLost(TimeNs penalty_ns) {
  for (const auto& [seq, sent] : outstanding_) {
    if (InWindow(sent)) {
      ++lost_in_window_;
      latencies_.Record(penalty_ns);
    }
  }
  outstanding_.clear();
}

}  // namespace hovercraft
