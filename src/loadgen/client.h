// An open-loop load-generating client, modelled on Lancet (paper section 7):
// Poisson arrivals at a fixed rate, independent of responses, with latency
// measured per request and aggregated over a measurement window.
//
// The client implements the client half of exactly-once RPC: per-request
// retransmission timers with capped exponential backoff and jitter, duplicate
// reply suppression, and an acknowledged-sequence watermark piggybacked on
// every request so the servers can garbage-collect their session tables
// (Raft section 8). Retries re-resolve their destination per attempt, so
// they chase a new leader after failover.
#ifndef SRC_LOADGEN_CLIENT_H_
#define SRC_LOADGEN_CLIENT_H_

#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/loadgen/workload.h"
#include "src/net/host.h"
#include "src/r2p2/messages.h"
#include "src/stats/histogram.h"
#include "src/stats/timeseries.h"

namespace hovercraft {

class ClientHost final : public Host {
 public:
  // `target` is re-evaluated per request so clients follow, e.g., the
  // current VanillaRaft leader.
  using TargetFn = std::function<Addr()>;

  ClientHost(Simulator* sim, const CostModel& costs, TargetFn target,
             std::unique_ptr<Workload> workload, double rate_rps, uint64_t seed);

  // Observes the client-visible history: one OnInvoke per request sent, at
  // most one OnComplete (first response) or OnNack per request — regardless
  // of how many attempts were transmitted. Used by the chaos harness to
  // record histories for linearizability checking.
  class Observer {
   public:
    virtual ~Observer() = default;
    virtual void OnInvoke(HostId client, uint64_t seq, R2p2Policy policy, const Body& body,
                          TimeNs at) = 0;
    virtual void OnComplete(HostId client, uint64_t seq, const Body& reply, TimeNs at) = 0;
    virtual void OnNack(HostId client, uint64_t seq, TimeNs at) = 0;
  };
  void set_observer(Observer* observer) { observer_ = observer; }

  // Retransmission with capped exponential backoff and jitter. Attempt n+1
  // fires min(max_backoff, initial_backoff * multiplier^(n-1)) after attempt
  // n, jittered by ±jitter (fraction). max_attempts == 0 bounds retries only
  // by the give-up timeout (set_outstanding_limit); otherwise the request is
  // abandoned after that many transmissions.
  struct RetryPolicy {
    bool enabled = false;
    TimeNs initial_backoff = Micros(500);
    TimeNs max_backoff = Millis(8);
    double multiplier = 2.0;
    double jitter = 0.2;
    uint32_t max_attempts = 0;
  };
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }

  // Destination for retransmissions; defaults to the primary target
  // function. The multicast modes route retries straight to the replication
  // group, bypassing the flow-control middlebox (see Cluster::RetryTarget).
  void set_retry_target(TargetFn target) { retry_target_ = std::move(target); }

  // Sharded routing (src/shard): ops tagged with a data slot resolve their
  // destination through the route function instead of target_/retry_target_.
  // Calling the function models refreshing the client's ShardMap view from
  // the control plane; it returns the slot's owner ingress (admission path),
  // its retry path (group multicast, bypassing the middlebox), and the map
  // epoch the answer came from. On NACK_WRONG_SHARD the client re-resolves
  // and resends immediately (bounded; the retry backoff takes over past the
  // cap), so a request launched against a stale map chases the slot across a
  // live move without ever counting as more than one logical invocation.
  struct ShardRoute {
    uint64_t epoch = 0;
    Addr ingress = kInvalidHost;
    Addr retry = kInvalidHost;
  };
  using ShardRouteFn = std::function<ShardRoute(uint32_t slot)>;
  void EnableSharding(ShardRouteFn route) { shard_route_ = std::move(route); }

  // Generates arrivals in [start, stop).
  void StartLoad(TimeNs start, TimeNs stop);

  // Requests *sent* inside [start, end) count toward the metrics.
  void SetMeasureWindow(TimeNs start, TimeNs end) {
    measure_start_ = start;
    measure_end_ = end;
  }

  // Optional shared per-wall-clock-bin recorder (failure timelines, Fig. 12).
  void set_timeseries(Timeseries* ts) { timeseries_ = ts; }

  // Destinations for kUnrestricted (stale-tolerant) requests: picked
  // uniformly per request, client-side load balancing as in R2P2.
  void set_unrestricted_targets(std::vector<Addr> targets) {
    unrestricted_targets_ = std::move(targets);
  }

  // Bounds concurrency: with a limit set, an arrival is skipped (not sent,
  // not recorded) while `limit` requests are outstanding, and a request
  // outstanding longer than `give_up` is abandoned (it stops counting toward
  // the limit and is no longer retransmitted). An abandoned request that
  // later receives a reply is completed exactly once, late. 0 = unlimited
  // (the default; benches are unaffected).
  void set_outstanding_limit(size_t limit, TimeNs give_up) {
    outstanding_limit_ = limit;
    give_up_ = give_up;
  }

  void HandleMessage(HostId src, const MessagePtr& msg) override;

  // Marks still-outstanding and abandoned in-window requests as lost,
  // recording `penalty_ns` as their latency (they would have blown any SLO).
  void AccountLost(TimeNs penalty_ns);

  const Histogram& latencies() const { return latencies_; }
  uint64_t sent_in_window() const { return sent_in_window_; }
  uint64_t completed_in_window() const { return completed_in_window_; }
  uint64_t nacked_in_window() const { return nacked_in_window_; }
  uint64_t lost_in_window() const { return lost_in_window_; }
  uint64_t recovered_in_window() const { return recovered_in_window_; }
  uint64_t total_sent() const { return total_sent_; }
  uint64_t total_completed() const { return total_completed_; }
  uint64_t total_retransmits() const { return total_retransmits_; }
  uint64_t total_redirects() const { return total_redirects_; }
  uint64_t total_abandoned() const { return total_abandoned_; }
  uint64_t completed_after_retry() const { return completed_after_retry_; }
  uint64_t late_completions() const { return late_completions_; }
  // Highest sequence with every sequence at or below it resolved (completed
  // or NACKed); piggybacked on outgoing requests for session-table GC.
  uint64_t ack_watermark() const { return ack_floor_; }

  // A redirected request resends at most this many times back-to-back; past
  // the cap the regular retry backoff paces the chase (a move's freeze
  // window can outlast any fixed redirect budget).
  static constexpr uint32_t kMaxImmediateRedirects = 16;

 private:
  struct Pending {
    TimeNs first_sent = 0;
    R2p2Policy policy = R2p2Policy::kReplicatedReq;
    Body body;
    uint32_t attempts = 1;
    uint32_t shard_slot = kNoShardSlot;
    uint32_t redirects = 0;
    bool unrestricted = false;
    // Armed retry timer, cancelled O(1) when the request resolves. If the
    // timer already fired, the handle is stale and Cancel is a no-op.
    EventId retry_timer = kInvalidEvent;
  };

  void ScheduleNextArrival();
  void SendOne();
  void ArmRetryTimer(uint64_t seq, uint32_t attempt);
  TimeNs BackoffAfter(uint32_t attempt);
  void Abandon(uint64_t seq);
  // Marks `seq` as acknowledged and advances the contiguous watermark.
  void ResolveForAck(uint64_t seq);
  Addr ResolveTarget(const Pending& pending);
  bool InWindow(TimeNs t) const { return t >= measure_start_ && t < measure_end_; }

  TargetFn target_;
  TargetFn retry_target_;  // null = use target_
  ShardRouteFn shard_route_;  // null = unsharded routing
  std::unique_ptr<Workload> workload_;
  double rate_rps_;
  Rng rng_;
  std::vector<Addr> unrestricted_targets_;
  RetryPolicy retry_policy_;

  TimeNs stop_time_ = 0;
  bool running_ = false;

  uint64_t next_seq_ = 1;
  std::unordered_map<uint64_t, Pending> outstanding_;
  // Abandoned but unresolved requests (seq -> first send time): no longer
  // retransmitted or counted toward the outstanding limit, but a late reply
  // still completes them exactly once.
  std::unordered_map<uint64_t, TimeNs> abandoned_;
  size_t outstanding_limit_ = 0;
  TimeNs give_up_ = 0;

  // Ack watermark: every seq <= ack_floor_ is resolved; seqs above it that
  // resolved out of order wait in the set until the gap below them closes.
  uint64_t ack_floor_ = 0;
  std::set<uint64_t> resolved_above_floor_;

  TimeNs measure_start_ = 0;
  TimeNs measure_end_ = 0;
  Histogram latencies_;
  Timeseries* timeseries_ = nullptr;
  Observer* observer_ = nullptr;

  uint64_t total_sent_ = 0;
  uint64_t total_completed_ = 0;
  uint64_t total_retransmits_ = 0;
  uint64_t total_redirects_ = 0;
  uint64_t total_abandoned_ = 0;
  uint64_t completed_after_retry_ = 0;
  uint64_t late_completions_ = 0;
  uint64_t sent_in_window_ = 0;
  uint64_t completed_in_window_ = 0;
  uint64_t nacked_in_window_ = 0;
  uint64_t lost_in_window_ = 0;
  uint64_t recovered_in_window_ = 0;
};

}  // namespace hovercraft

#endif  // SRC_LOADGEN_CLIENT_H_
