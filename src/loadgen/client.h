// An open-loop load-generating client, modelled on Lancet (paper section 7):
// Poisson arrivals at a fixed rate, independent of responses, with latency
// measured per request and aggregated over a measurement window.
#ifndef SRC_LOADGEN_CLIENT_H_
#define SRC_LOADGEN_CLIENT_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/loadgen/workload.h"
#include "src/net/host.h"
#include "src/stats/histogram.h"
#include "src/stats/timeseries.h"

namespace hovercraft {

class ClientHost final : public Host {
 public:
  // `target` is re-evaluated per request so clients follow, e.g., the
  // current VanillaRaft leader.
  using TargetFn = std::function<Addr()>;

  ClientHost(Simulator* sim, const CostModel& costs, TargetFn target,
             std::unique_ptr<Workload> workload, double rate_rps, uint64_t seed);

  // Observes the client-visible history: one OnInvoke per request sent, at
  // most one OnComplete (first response) or OnNack per request. Used by the
  // chaos harness to record histories for linearizability checking.
  class Observer {
   public:
    virtual ~Observer() = default;
    virtual void OnInvoke(HostId client, uint64_t seq, R2p2Policy policy, const Body& body,
                          TimeNs at) = 0;
    virtual void OnComplete(HostId client, uint64_t seq, const Body& reply, TimeNs at) = 0;
    virtual void OnNack(HostId client, uint64_t seq, TimeNs at) = 0;
  };
  void set_observer(Observer* observer) { observer_ = observer; }

  // Generates arrivals in [start, stop).
  void StartLoad(TimeNs start, TimeNs stop);

  // Requests *sent* inside [start, end) count toward the metrics.
  void SetMeasureWindow(TimeNs start, TimeNs end) {
    measure_start_ = start;
    measure_end_ = end;
  }

  // Optional shared per-wall-clock-bin recorder (failure timelines, Fig. 12).
  void set_timeseries(Timeseries* ts) { timeseries_ = ts; }

  // Destinations for kUnrestricted (stale-tolerant) requests: picked
  // uniformly per request, client-side load balancing as in R2P2.
  void set_unrestricted_targets(std::vector<Addr> targets) {
    unrestricted_targets_ = std::move(targets);
  }

  // Bounds concurrency: with a limit set, an arrival is skipped (not sent,
  // not recorded) while `limit` requests are outstanding, and a request
  // outstanding longer than `give_up` stops counting toward the limit (the
  // client abandons it; no completion is ever recorded for it). The chaos
  // harness needs this: unbounded fire-and-forget at a partitioned leader
  // piles up open operations faster than any linearizability checker can
  // absorb. 0 = unlimited (the default; benches are unaffected).
  void set_outstanding_limit(size_t limit, TimeNs give_up) {
    outstanding_limit_ = limit;
    give_up_ = give_up;
  }

  void HandleMessage(HostId src, const MessagePtr& msg) override;

  // Marks still-outstanding in-window requests as lost, recording
  // `penalty_ns` as their latency (they would have blown any SLO).
  void AccountLost(TimeNs penalty_ns);

  const Histogram& latencies() const { return latencies_; }
  uint64_t sent_in_window() const { return sent_in_window_; }
  uint64_t completed_in_window() const { return completed_in_window_; }
  uint64_t nacked_in_window() const { return nacked_in_window_; }
  uint64_t lost_in_window() const { return lost_in_window_; }
  uint64_t total_sent() const { return total_sent_; }
  uint64_t total_completed() const { return total_completed_; }

 private:
  void ScheduleNextArrival();
  void SendOne();
  bool InWindow(TimeNs t) const { return t >= measure_start_ && t < measure_end_; }

  TargetFn target_;
  std::unique_ptr<Workload> workload_;
  double rate_rps_;
  Rng rng_;
  std::vector<Addr> unrestricted_targets_;

  TimeNs stop_time_ = 0;
  bool running_ = false;

  uint64_t next_seq_ = 1;
  std::unordered_map<uint64_t, TimeNs> outstanding_;  // seq -> send time
  size_t outstanding_limit_ = 0;
  TimeNs give_up_ = 0;

  TimeNs measure_start_ = 0;
  TimeNs measure_end_ = 0;
  Histogram latencies_;
  Timeseries* timeseries_ = nullptr;
  Observer* observer_ = nullptr;

  uint64_t total_sent_ = 0;
  uint64_t total_completed_ = 0;
  uint64_t sent_in_window_ = 0;
  uint64_t completed_in_window_ = 0;
  uint64_t nacked_in_window_ = 0;
  uint64_t lost_in_window_ = 0;
};

}  // namespace hovercraft

#endif  // SRC_LOADGEN_CLIENT_H_
