#include "src/loadgen/experiment.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/obs/observability.h"
#include "src/stats/histogram.h"

namespace hovercraft {

LoadMetrics RunLoadPoint(const ExperimentConfig& config, double rate_rps) {
  HC_CHECK(config.workload_factory != nullptr);
  HC_CHECK_GT(rate_rps, 0.0);

  Cluster cluster(config.cluster);
  const NodeId leader = cluster.WaitForLeader();
  if (config.cluster.mode != ClusterMode::kUnreplicated) {
    HC_CHECK_NE(leader, kInvalidNode);
  }

  std::vector<std::unique_ptr<ClientHost>> clients;
  const double per_client = rate_rps / config.client_count;
  for (int32_t c = 0; c < config.client_count; ++c) {
    auto client = std::make_unique<ClientHost>(
        &cluster.sim(), config.cluster.costs, [&cluster]() { return cluster.ClientTarget(); },
        config.workload_factory(), per_client,
        config.seed + 0x9000u + static_cast<uint64_t>(c));
    cluster.network().Attach(client.get());
    clients.push_back(std::move(client));
  }

  obs::Observability* o = config.cluster.obs;
  if (o != nullptr) {
    if (auto* tracer = o->tracer()) {
      for (size_t c = 0; c < clients.size(); ++c) {
        const int32_t pid = obs::TrackOfHost(clients[c]->id());
        tracer->NameProcess(pid, "client " + std::to_string(c));
        tracer->NameThread(pid, obs::kTidNet, "net thread");
        tracer->NameThread(pid, obs::kTidNic, "nic tx");
      }
    }
  }

  const TimeNs t0 = cluster.sim().Now();
  const TimeNs window_start = t0 + config.warmup;
  const TimeNs window_end = window_start + config.measure;
  for (const auto& ev : config.add_server_at) {
    cluster.sim().At(t0 + ev.at, [&cluster, ev]() { cluster.AddServer(ev.node); });
  }
  for (const auto& ev : config.remove_server_at) {
    cluster.sim().At(t0 + ev.at, [&cluster, ev]() { cluster.RemoveServer(ev.node); });
  }
  for (auto& client : clients) {
    client->SetMeasureWindow(window_start, window_end);
    client->StartLoad(t0, window_end);
  }
  if (o != nullptr) {
    o->StartSampling(&cluster.sim(), window_end + config.drain);
  }
  cluster.sim().RunUntil(window_end + config.drain);

  LoadMetrics metrics;
  metrics.offered_rps = rate_rps;
  Histogram merged;
  for (auto& client : clients) {
    client->AccountLost(config.drain);
    merged.Merge(client->latencies());
    metrics.sent += client->sent_in_window();
    metrics.completed += client->completed_in_window();
    metrics.nacked += client->nacked_in_window();
    metrics.lost += client->lost_in_window();
  }
  const double window_sec = static_cast<double>(config.measure) / 1e9;
  metrics.achieved_rps = static_cast<double>(metrics.completed) / window_sec;
  metrics.nack_rps = static_cast<double>(metrics.nacked) / window_sec;
  metrics.mean_ns = merged.Mean();
  metrics.p50_ns = merged.Percentile(50);
  metrics.p99_ns = merged.Percentile(99);
  metrics.executed_events = cluster.sim().executed_events();
  if (o != nullptr) {
    cluster.ExportMetrics(&o->metrics());
  }
  return metrics;
}

std::vector<LoadMetrics> SweepRates(const ExperimentConfig& config,
                                    const std::vector<double>& rates) {
  std::vector<LoadMetrics> out;
  out.reserve(rates.size());
  for (double rate : rates) {
    out.push_back(RunLoadPoint(config, rate));
  }
  return out;
}

SloResult FindMaxThroughputUnderSlo(const ExperimentConfig& config, TimeNs slo_p99,
                                    double lo_rps, double hi_rps, int iterations) {
  HC_CHECK(lo_rps > 0 && hi_rps > lo_rps);
  SloResult best;

  auto passes = [&](const LoadMetrics& m) {
    // A run only counts if the tail met the SLO *and* the system kept up
    // with the offered load (heavy NACK/loss with a fast tail is not a
    // valid operating point).
    return m.p99_ns <= slo_p99 && m.lost == 0 &&
           m.achieved_rps >= 0.95 * m.offered_rps;
  };
  auto consider = [&](const LoadMetrics& m) {
    if (passes(m) && m.achieved_rps > best.max_rps_under_slo) {
      best.max_rps_under_slo = m.achieved_rps;
      best.offered_at_max = m.offered_rps;
      best.p99_at_max = m.p99_ns;
    }
  };

  // Establish the bracket: lo must pass; walk hi down if even lo fails.
  LoadMetrics lo_m = RunLoadPoint(config, lo_rps);
  consider(lo_m);
  if (!passes(lo_m)) {
    HC_LOG_WARN("SLO search: floor rate %.0f already violates the SLO (p99=%lld ns)", lo_rps,
                static_cast<long long>(lo_m.p99_ns));
    return best;
  }
  LoadMetrics hi_m = RunLoadPoint(config, hi_rps);
  consider(hi_m);
  if (passes(hi_m)) {
    return best;  // even the ceiling passes; report it
  }

  double lo = lo_rps;
  double hi = hi_rps;
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const LoadMetrics m = RunLoadPoint(config, mid);
    consider(m);
    if (passes(m)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace hovercraft
