// Experiment harness: builds a cluster + client fleet, drives a load point,
// and searches for the maximum throughput under a tail-latency SLO — the two
// measurements every figure of the paper's evaluation is built from.
#ifndef SRC_LOADGEN_EXPERIMENT_H_
#define SRC_LOADGEN_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/core/cluster.h"
#include "src/loadgen/client.h"
#include "src/loadgen/workload.h"

namespace hovercraft {

struct ExperimentConfig {
  ClusterConfig cluster;
  std::function<std::unique_ptr<Workload>()> workload_factory;
  // Offered load is split evenly over this many client machines so client
  // NICs/CPU never bottleneck the system under test.
  int32_t client_count = 8;
  TimeNs warmup = Millis(80);
  TimeNs measure = Millis(200);
  // Extra simulated time after the window closes so in-window requests can
  // drain; whatever is still outstanding counts as lost with this latency.
  TimeNs drain = Millis(150);
  uint64_t seed = 1;

  // Scripted membership events (offsets from load start, i.e. the beginning
  // of warmup): AddServer/RemoveServer proposed through the cluster's
  // management plane, which retries until the change commits. The cluster
  // needs spare_nodes > 0 for adds to have a server to draw on.
  struct MembershipEvent {
    TimeNs at = 0;
    NodeId node = kInvalidNode;
  };
  std::vector<MembershipEvent> add_server_at;
  std::vector<MembershipEvent> remove_server_at;
};

struct LoadMetrics {
  double offered_rps = 0;
  double achieved_rps = 0;  // completions of in-window requests / window
  double nack_rps = 0;
  double mean_ns = 0;
  int64_t p50_ns = 0;
  int64_t p99_ns = 0;
  uint64_t sent = 0;
  uint64_t completed = 0;
  uint64_t nacked = 0;
  uint64_t lost = 0;
  // Simulator events executed over the whole run (warmup + measure + drain).
  // executed_events / completed is the deterministic proxy for per-request
  // simulator CPU cost that the wire-path perf gate tracks.
  uint64_t executed_events = 0;
};

// Runs one fixed offered load and reports the window metrics.
LoadMetrics RunLoadPoint(const ExperimentConfig& config, double rate_rps);

// Largest achieved throughput whose p99 stays within `slo_p99`
// (paper: "achieved throughput under a 500us SLO"). Geometric bracketing
// followed by bisection on the offered rate.
struct SloResult {
  double max_rps_under_slo = 0;
  double offered_at_max = 0;
  int64_t p99_at_max = 0;
};
SloResult FindMaxThroughputUnderSlo(const ExperimentConfig& config, TimeNs slo_p99,
                                    double lo_rps, double hi_rps, int iterations = 5);

// Latency/throughput curve: one RunLoadPoint per rate.
std::vector<LoadMetrics> SweepRates(const ExperimentConfig& config,
                                    const std::vector<double>& rates);

}  // namespace hovercraft

#endif  // SRC_LOADGEN_EXPERIMENT_H_
