// Workload generators: what a client sends.
//
// The synthetic workload reproduces the paper's microbenchmarks: the client
// samples the per-request service time (fixed or bimodal), tags requests
// read-only with the configured probability, and pads the body to the
// requested size. The YCSB-E workload encodes real kvstore commands.
#ifndef SRC_LOADGEN_WORKLOAD_H_
#define SRC_LOADGEN_WORKLOAD_H_

#include <memory>
#include <utility>

#include "src/app/synthetic.h"
#include "src/app/ycsb.h"
#include "src/common/random.h"
#include "src/common/types.h"
#include "src/r2p2/messages.h"
#include "src/r2p2/shard.h"
#include "src/sim/distributions.h"

namespace hovercraft {

class Workload {
 public:
  struct Op {
    Body body;
    bool read_only = false;
    // True for reads that tolerate staleness: sent with the kUnrestricted
    // policy straight to one replica, bypassing consensus (section 6.1).
    bool unrestricted = false;
    // Hash slot of the op's key for sharded deployments; kNoShardSlot for
    // unsharded runs (never gated by shard middleware).
    uint32_t shard_slot = kNoShardSlot;
  };

  virtual ~Workload() = default;
  virtual Op Next(Rng& rng) = 0;
};

struct SyntheticWorkloadConfig {
  int32_t request_bytes = 24;
  int32_t reply_bytes = 8;
  double read_only_fraction = 0.0;
  // Fraction of the read-only requests that tolerate stale data and skip
  // consensus entirely.
  double unrestricted_fraction = 0.0;
  // Sharded runs: tag each op with a uniformly random data slot in
  // [shard_slot_lo, shard_slot_hi] so the load spreads over the owning
  // groups (the synthetic service has no real keys). The determinism tests
  // narrow the range to one group's slots.
  bool random_shard_slot = false;
  uint32_t shard_slot_lo = 0;
  uint32_t shard_slot_hi = kShardSlots - 1;
  // > 0: draw the slot Zipfian-skewed instead of uniform (rank 0 =
  // shard_slot_lo is the hottest). Makes hot-shard imbalance measurable —
  // the load a rebalancer exists to move.
  double shard_zipf_theta = 0.0;
  std::shared_ptr<const ServiceTimeDistribution> service_time =
      std::make_shared<FixedDistribution>(Micros(1));
};

class SyntheticWorkload final : public Workload {
 public:
  explicit SyntheticWorkload(SyntheticWorkloadConfig config) : config_(std::move(config)) {
    if (config_.random_shard_slot && config_.shard_zipf_theta > 0.0) {
      slot_zipf_ = std::make_unique<ZipfianGenerator>(
          config_.shard_slot_hi - config_.shard_slot_lo + 1, config_.shard_zipf_theta);
    }
  }

  Op Next(Rng& rng) override {
    SyntheticOp op;
    op.service_time = config_.service_time->Sample(rng);
    op.reply_bytes = config_.reply_bytes;
    Op out;
    out.body = EncodeSyntheticOp(op, config_.request_bytes);
    out.read_only = rng.NextBool(config_.read_only_fraction);
    if (out.read_only && config_.unrestricted_fraction > 0.0) {
      out.unrestricted = rng.NextBool(config_.unrestricted_fraction);
    }
    if (config_.random_shard_slot) {
      const uint64_t span = config_.shard_slot_hi - config_.shard_slot_lo + 1;
      out.shard_slot =
          config_.shard_slot_lo +
          static_cast<uint32_t>(slot_zipf_ ? slot_zipf_->Next(rng) : rng.NextBelow(span));
    }
    return out;
  }

 private:
  SyntheticWorkloadConfig config_;
  std::unique_ptr<ZipfianGenerator> slot_zipf_;
};

class YcsbEWorkload final : public Workload {
 public:
  explicit YcsbEWorkload(const YcsbEConfig& config) : generator_(config) {}

  Op Next(Rng& rng) override {
    const KvCommand cmd = generator_.Next(rng);
    Op out;
    out.body = EncodeKvCommand(cmd);
    out.read_only = cmd.IsReadOnly();
    out.shard_slot = ShardSlotOf(cmd.key);
    return out;
  }

 private:
  YcsbEGenerator generator_;
};

}  // namespace hovercraft

#endif  // SRC_LOADGEN_WORKLOAD_H_
