#include "src/net/host.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/net/network.h"
#include "src/obs/observability.h"

namespace hovercraft {

Host::Host(Simulator* sim, const CostModel& costs, Kind kind)
    : sim_(sim), costs_(costs), kind_(kind), net_thread_(sim), nic_tx_(sim) {
  HC_CHECK(sim != nullptr);
}

void Host::set_failed(bool failed) {
  failed_ = failed;
  if (failed_) {
    // Fail-stop: messages still coalescing never reached the NIC. Cancel the
    // doorbells so a dead host schedules nothing further.
    for (auto& [dst, batch] : tx_batches_) {
      if (batch.flush_event != kInvalidEvent) {
        sim_->Cancel(batch.flush_event);
        batch.flush_event = kInvalidEvent;
      }
      batch.msgs.clear();
      batch.bytes = 0;
      batch.extra_cpu = 0;
    }
  }
}

void Host::Send(Addr dst, MessagePtr msg, TimeNs extra_cpu) {
  HC_CHECK(network_ != nullptr);
  HC_CHECK(msg != nullptr);
  if (failed_) {
    return;
  }
  // Logical accounting happens at send time regardless of coalescing.
  const int32_t bytes = msg->PayloadBytes();
  counters_.tx_msgs++;
  counters_.tx_frames += static_cast<uint64_t>(costs_.FramesFor(bytes));
  counters_.tx_payload_bytes += static_cast<uint64_t>(bytes);
  counters_.tx_by_type[msg->Name()]++;

  if (costs_.tx_batching) {
    if (bytes <= costs_.tx_batch_small_bytes) {
      EnqueueBatched(dst, std::move(msg), extra_cpu);
      return;
    }
    // An unbatched message must not overtake small messages already
    // coalescing toward the same destination: flush them first so
    // per-destination send order stays FIFO.
    FlushBatch(dst);
  }
  TransmitPacket(Packet{id_, dst, std::move(msg)}, extra_cpu);
}

void Host::EnqueueBatched(Addr dst, MessagePtr msg, TimeNs extra_cpu) {
  TxBatch& batch = tx_batches_[dst];
  const int64_t slot = msg->PayloadBytes() + BatchMsg::kPerMessageHeaderBytes;
  // A batch frame never exceeds one MTU payload: flush what is queued before
  // a message that would overflow it.
  if (!batch.msgs.empty() && batch.bytes + slot > costs_.mtu_payload_bytes) {
    FlushBatch(dst);
  }
  batch.msgs.push_back(std::move(msg));
  batch.bytes += slot;
  batch.extra_cpu += extra_cpu;
  if (static_cast<int32_t>(batch.msgs.size()) >= costs_.tx_batch_max_msgs) {
    FlushBatch(dst);
    return;
  }
  if (batch.flush_event == kInvalidEvent) {
    // Doorbell: with delay 0 this still runs after every event of the
    // current simulated instant, coalescing all sends issued within it.
    batch.flush_event =
        sim_->After(costs_.tx_batch_delay_ns, [this, dst]() { FlushBatch(dst); });
  }
}

void Host::FlushBatch(Addr dst) {
  auto it = tx_batches_.find(dst);
  if (it == tx_batches_.end()) {
    return;
  }
  TxBatch& batch = it->second;
  if (batch.flush_event != kInvalidEvent) {
    sim_->Cancel(batch.flush_event);  // no-op when called from the doorbell itself
    batch.flush_event = kInvalidEvent;
  }
  if (batch.msgs.empty()) {
    return;
  }
  std::vector<MessagePtr> msgs = std::move(batch.msgs);
  const TimeNs extra_cpu = batch.extra_cpu;
  batch.msgs.clear();
  batch.bytes = 0;
  batch.extra_cpu = 0;
  // A lone message goes out unwrapped — the sub-header tax is only paid when
  // there is actual company.
  MessagePtr out = msgs.size() == 1 ? std::move(msgs[0])
                                    : std::make_shared<BatchMsg>(std::move(msgs));
  TransmitPacket(Packet{id_, dst, std::move(out)}, extra_cpu);
}

void Host::TransmitPacket(Packet packet, TimeNs extra_cpu) {
  const int32_t bytes = packet.msg->PayloadBytes();
  counters_.tx_physical_frames += static_cast<uint64_t>(costs_.FramesFor(bytes));
  counters_.tx_wire_bytes += static_cast<uint64_t>(costs_.WireBytesFor(bytes));
  if (const auto* batch = dynamic_cast<const BatchMsg*>(packet.msg.get())) {
    counters_.tx_batches++;
    int64_t member_bytes = 0;
    for (const MessagePtr& m : batch->messages()) {
      const int64_t slot = m->PayloadBytes() + BatchMsg::kPerMessageHeaderBytes;
      counters_.tx_wire_bytes_by_type[m->Name()] += static_cast<uint64_t>(slot);
      member_bytes += slot;
    }
    // Frame-level overhead of the batch itself, so per-type sums telescope.
    counters_.tx_wire_bytes_by_type["BATCH"] +=
        static_cast<uint64_t>(costs_.WireBytesFor(bytes) - member_bytes);
  } else {
    counters_.tx_wire_bytes_by_type[packet.msg->Name()] +=
        static_cast<uint64_t>(costs_.WireBytesFor(bytes));
  }

  if (kind_ == Kind::kDevice) {
    // Line-rate device: no CPU queueing; the pipeline latency is paid on the
    // receive side, so transmission is immediate.
    network_->Transmit(std::move(packet));
    return;
  }
  // Net thread builds the message, then the NIC serializes it on the wire.
  if (auto* tracer = obs::TracerOf(sim_)) {
    const TimeNs start = std::max(sim_->Now(), net_thread_.busy_until());
    tracer->Complete(obs::TrackOfHost(id_), obs::kTidNet,
                     std::string("tx ") + packet.msg->Name(), start,
                     costs_.TxCpu(bytes) + extra_cpu);
  }
  // Ownership rule: the packet's MessagePtr reference is moved down the TX
  // pipeline — net thread, then NIC, then fabric — never copied. The lambdas
  // are mutable solely to allow that handoff.
  net_thread_.Submit(costs_.TxCpu(bytes) + extra_cpu,
                     [this, packet = std::move(packet), bytes]() mutable {
    if (failed_) {
      return;
    }
    if (auto* tracer = obs::TracerOf(sim_)) {
      const TimeNs start = std::max(sim_->Now(), nic_tx_.busy_until());
      tracer->Complete(obs::TrackOfHost(id_), obs::kTidNic,
                       std::string("wire ") + packet.msg->Name(), start,
                       costs_.SerializationDelay(bytes));
    }
    nic_tx_.Submit(costs_.SerializationDelay(bytes),
                   [this, packet = std::move(packet)]() mutable {
                     if (!failed_) {
                       network_->Transmit(std::move(packet));
                     }
                   });
  });
}

void Host::Receive(HostId src, MessagePtr msg) {
  if (failed_) {
    return;
  }
  const int32_t bytes = msg->PayloadBytes();
  counters_.rx_physical_frames += static_cast<uint64_t>(costs_.FramesFor(bytes));
  counters_.rx_wire_bytes += static_cast<uint64_t>(costs_.WireBytesFor(bytes));
  const auto* batch = dynamic_cast<const BatchMsg*>(msg.get());
  if (batch != nullptr) {
    counters_.rx_batches++;
    int64_t member_bytes = 0;
    for (const MessagePtr& m : batch->messages()) {
      const int32_t b = m->PayloadBytes();
      counters_.rx_msgs++;
      counters_.rx_frames += static_cast<uint64_t>(costs_.FramesFor(b));
      counters_.rx_payload_bytes += static_cast<uint64_t>(b);
      counters_.rx_by_type[m->Name()]++;
      const int64_t slot = b + BatchMsg::kPerMessageHeaderBytes;
      counters_.rx_wire_bytes_by_type[m->Name()] += static_cast<uint64_t>(slot);
      member_bytes += slot;
    }
    counters_.rx_wire_bytes_by_type["BATCH"] +=
        static_cast<uint64_t>(costs_.WireBytesFor(bytes) - member_bytes);
  } else {
    counters_.rx_msgs++;
    counters_.rx_frames += static_cast<uint64_t>(costs_.FramesFor(bytes));
    counters_.rx_payload_bytes += static_cast<uint64_t>(bytes);
    counters_.rx_by_type[msg->Name()]++;
    counters_.rx_wire_bytes_by_type[msg->Name()] +=
        static_cast<uint64_t>(costs_.WireBytesFor(bytes));
  }

  if (kind_ == Kind::kDevice) {
    // Fixed pipeline latency, unbounded parallelism (the ASIC runs at line
    // rate regardless of message rate).
    sim_->After(costs_.aggregator_latency_ns, [this, src, msg = std::move(msg)]() {
      if (failed_) {
        return;
      }
      if (const auto* b = dynamic_cast<const BatchMsg*>(msg.get())) {
        for (const MessagePtr& m : b->messages()) {
          HandleMessage(src, m);
        }
      } else {
        HandleMessage(src, msg);
      }
    });
    return;
  }
  if (auto* tracer = obs::TracerOf(sim_)) {
    const TimeNs start = std::max(sim_->Now(), net_thread_.busy_until());
    tracer->Complete(obs::TrackOfHost(id_), obs::kTidNet,
                     std::string("rx ") + msg->Name(), start, costs_.RxCpu(bytes));
  }
  // One RxCpu charge for the whole frame — the batch's per-frame saving —
  // then the members dispatch in queue order within the same event.
  net_thread_.Submit(costs_.RxCpu(bytes), [this, src, msg = std::move(msg)]() {
    if (failed_) {
      return;
    }
    if (const auto* b = dynamic_cast<const BatchMsg*>(msg.get())) {
      for (const MessagePtr& m : b->messages()) {
        HandleMessage(src, m);
      }
    } else {
      HandleMessage(src, msg);
    }
  });
}

}  // namespace hovercraft
