#include "src/net/host.h"

#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/net/network.h"
#include "src/obs/observability.h"

namespace hovercraft {

Host::Host(Simulator* sim, const CostModel& costs, Kind kind)
    : sim_(sim), costs_(costs), kind_(kind), net_thread_(sim), nic_tx_(sim) {
  HC_CHECK(sim != nullptr);
}

void Host::Send(Addr dst, MessagePtr msg, TimeNs extra_cpu) {
  HC_CHECK(network_ != nullptr);
  HC_CHECK(msg != nullptr);
  if (failed_) {
    return;
  }
  const int32_t bytes = msg->PayloadBytes();
  counters_.tx_msgs++;
  counters_.tx_frames += static_cast<uint64_t>(costs_.FramesFor(bytes));
  counters_.tx_payload_bytes += static_cast<uint64_t>(bytes);
  counters_.tx_by_type[msg->Name()]++;

  Packet packet{id_, dst, std::move(msg)};
  if (kind_ == Kind::kDevice) {
    // Line-rate device: no CPU queueing; the pipeline latency is paid on the
    // receive side, so transmission is immediate.
    network_->Transmit(std::move(packet));
    return;
  }
  // Net thread builds the message, then the NIC serializes it on the wire.
  if (auto* tracer = obs::TracerOf(sim_)) {
    const TimeNs start = std::max(sim_->Now(), net_thread_.busy_until());
    tracer->Complete(obs::TrackOfHost(id_), obs::kTidNet,
                     std::string("tx ") + packet.msg->Name(), start,
                     costs_.TxCpu(bytes) + extra_cpu);
  }
  // Ownership rule: the packet's MessagePtr reference is moved down the TX
  // pipeline — net thread, then NIC, then fabric — never copied. The lambdas
  // are mutable solely to allow that handoff.
  net_thread_.Submit(costs_.TxCpu(bytes) + extra_cpu,
                     [this, packet = std::move(packet), bytes]() mutable {
    if (failed_) {
      return;
    }
    if (auto* tracer = obs::TracerOf(sim_)) {
      const TimeNs start = std::max(sim_->Now(), nic_tx_.busy_until());
      tracer->Complete(obs::TrackOfHost(id_), obs::kTidNic,
                       std::string("wire ") + packet.msg->Name(), start,
                       costs_.SerializationDelay(bytes));
    }
    nic_tx_.Submit(costs_.SerializationDelay(bytes),
                   [this, packet = std::move(packet)]() mutable {
                     if (!failed_) {
                       network_->Transmit(std::move(packet));
                     }
                   });
  });
}

void Host::Receive(HostId src, MessagePtr msg) {
  if (failed_) {
    return;
  }
  const int32_t bytes = msg->PayloadBytes();
  counters_.rx_msgs++;
  counters_.rx_frames += static_cast<uint64_t>(costs_.FramesFor(bytes));
  counters_.rx_payload_bytes += static_cast<uint64_t>(bytes);
  counters_.rx_by_type[msg->Name()]++;

  if (kind_ == Kind::kDevice) {
    // Fixed pipeline latency, unbounded parallelism (the ASIC runs at line
    // rate regardless of message rate).
    sim_->After(costs_.aggregator_latency_ns, [this, src, msg = std::move(msg)]() {
      if (!failed_) {
        HandleMessage(src, msg);
      }
    });
    return;
  }
  if (auto* tracer = obs::TracerOf(sim_)) {
    const TimeNs start = std::max(sim_->Now(), net_thread_.busy_until());
    tracer->Complete(obs::TrackOfHost(id_), obs::kTidNet,
                     std::string("rx ") + msg->Name(), start, costs_.RxCpu(bytes));
  }
  net_thread_.Submit(costs_.RxCpu(bytes), [this, src, msg = std::move(msg)]() {
    if (!failed_) {
      HandleMessage(src, msg);
    }
  });
}

}  // namespace hovercraft
