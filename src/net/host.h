// A host attached to the simulated fabric.
//
// Server hosts follow the paper's two-thread model (section 6): a polling
// *net thread* runs R2P2 + consensus and pays per-frame/per-byte CPU costs,
// while an *app thread* executes state-machine operations. In-network
// devices (the aggregator, the flow-control middlebox) instead process at
// line rate with a fixed pipeline latency.
#ifndef SRC_NET_HOST_H_
#define SRC_NET_HOST_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/net/packet.h"
#include "src/sim/cost_model.h"
#include "src/sim/serial_resource.h"
#include "src/sim/simulator.h"

namespace hovercraft {

class Network;

// Logical counters (tx_msgs/rx_msgs, *_frames, *_by_type) count the typed
// protocol messages the endpoints exchange; a coalesced BatchMsg contributes
// its members, never itself. Physical counters (*_physical_frames,
// *_batches, *_wire_bytes*) count what actually crosses the link: a batch is
// one frame, wire bytes include per-frame framing and per-member sub-headers,
// and the batch's own overhead is attributed to the pseudo-type "BATCH" so
// the per-type wire-byte sums telescope to the totals exactly. With batching
// off, physical frames == logical frames.
struct NetCounters {
  uint64_t tx_msgs = 0;
  uint64_t rx_msgs = 0;
  uint64_t tx_frames = 0;
  uint64_t rx_frames = 0;
  uint64_t tx_payload_bytes = 0;
  uint64_t rx_payload_bytes = 0;
  uint64_t tx_physical_frames = 0;
  uint64_t rx_physical_frames = 0;
  uint64_t tx_batches = 0;
  uint64_t rx_batches = 0;
  uint64_t tx_wire_bytes = 0;
  uint64_t rx_wire_bytes = 0;
  std::unordered_map<std::string, uint64_t> tx_by_type;
  std::unordered_map<std::string, uint64_t> rx_by_type;
  std::unordered_map<std::string, uint64_t> tx_wire_bytes_by_type;
  std::unordered_map<std::string, uint64_t> rx_wire_bytes_by_type;

  void Clear() { *this = NetCounters(); }
};

class Host {
 public:
  enum class Kind {
    kServer,  // CPU model: serial net thread + NIC serialization
    kDevice,  // line-rate device: fixed pipeline latency, no CPU queueing
  };

  Host(Simulator* sim, const CostModel& costs, Kind kind);
  virtual ~Host() = default;
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  // Invoked by Network after the receive path completes.
  virtual void HandleMessage(HostId src, const MessagePtr& msg) = 0;

  // Sends `msg` to `dst` (unicast host or multicast group). On a server this
  // charges net-thread TX CPU (plus `extra_cpu` of protocol processing, e.g.
  // building an append_entries), then NIC serialization, then hands the
  // packet to the fabric; on a device it leaves after the pipeline latency.
  void Send(Addr dst, MessagePtr msg, TimeNs extra_cpu = 0);

  // Called by Network when a packet arrives at this host's NIC.
  void Receive(HostId src, MessagePtr msg);

  // A failed host neither sends nor receives. Used for crash injection;
  // subclasses extend it to halt their own timers (fail-stop semantics).
  // Failing discards any messages still coalescing in TX batch queues — they
  // never reached the NIC.
  virtual void set_failed(bool failed);
  bool failed() const { return failed_; }

  HostId id() const { return id_; }
  Kind kind() const { return kind_; }
  Simulator* sim() const { return sim_; }
  const CostModel& costs() const { return costs_; }
  const NetCounters& counters() const { return counters_; }
  NetCounters& counters() { return counters_; }
  SerialResource& net_thread() { return net_thread_; }
  SerialResource& nic_tx() { return nic_tx_; }

  // Called by Network::Attach.
  void AttachTo(Network* network, HostId id) {
    network_ = network;
    id_ = id;
  }

 protected:
  Network* network() const { return network_; }

 private:
  // One coalescing queue per destination address (unicast or multicast —
  // fan-out of a batched frame happens in the fabric, like any frame).
  struct TxBatch {
    std::vector<MessagePtr> msgs;
    int64_t bytes = 0;        // payload + per-member sub-headers
    TimeNs extra_cpu = 0;     // summed protocol CPU of the queued messages
    EventId flush_event = kInvalidEvent;
  };

  void EnqueueBatched(Addr dst, MessagePtr msg, TimeNs extra_cpu);
  void FlushBatch(Addr dst);
  // Physical transmission: charges TX CPU + NIC serialization (servers) or
  // leaves immediately (devices), and does the physical-frame accounting.
  void TransmitPacket(Packet packet, TimeNs extra_cpu);

  Simulator* sim_;
  const CostModel& costs_;
  Kind kind_;
  Network* network_ = nullptr;
  HostId id_ = kInvalidHost;
  bool failed_ = false;
  SerialResource net_thread_;
  SerialResource nic_tx_;
  NetCounters counters_;
  std::unordered_map<Addr, TxBatch> tx_batches_;
};

}  // namespace hovercraft

#endif  // SRC_NET_HOST_H_
