// Base type for everything that travels over the simulated fabric.
//
// The simulator carries typed message objects end-to-end (the way ns-3 does)
// instead of serializing on the hot path; each message declares the payload
// size it would occupy on the wire, and the wire codecs in src/r2p2 are
// exercised by their own tests and microbenchmarks.
#ifndef SRC_NET_MESSAGE_H_
#define SRC_NET_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace hovercraft {

class Message {
 public:
  virtual ~Message() = default;

  // Bytes of R2P2 payload this message occupies on the wire (headers and
  // framing are accounted separately by the cost model).
  virtual int32_t PayloadBytes() const = 0;

  // Stable short name used for per-type message accounting (Table 1).
  virtual const char* Name() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

// A coalesced transport frame: several small logical messages to the same
// destination packed into one physical frame (eRPC-style TX batching, see
// CostModel::tx_batching). Each member costs a small sub-header on the wire;
// counters treat the members as the logical messages and the BatchMsg itself
// as one physical frame. Never constructed unless batching is enabled, and
// never nested.
class BatchMsg final : public Message {
 public:
  // Per-member sub-header: u16 length + u8 type + u8 reserved.
  static constexpr int32_t kPerMessageHeaderBytes = 4;

  explicit BatchMsg(std::vector<MessagePtr> msgs) : msgs_(std::move(msgs)) {
    for (const MessagePtr& m : msgs_) {
      total_ += m->PayloadBytes() + kPerMessageHeaderBytes;
    }
  }

  int32_t PayloadBytes() const override { return total_; }
  const char* Name() const override { return "BATCH"; }

  const std::vector<MessagePtr>& messages() const { return msgs_; }

 private:
  std::vector<MessagePtr> msgs_;
  int32_t total_ = 0;
};

}  // namespace hovercraft

#endif  // SRC_NET_MESSAGE_H_
