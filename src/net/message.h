// Base type for everything that travels over the simulated fabric.
//
// The simulator carries typed message objects end-to-end (the way ns-3 does)
// instead of serializing on the hot path; each message declares the payload
// size it would occupy on the wire, and the wire codecs in src/r2p2 are
// exercised by their own tests and microbenchmarks.
#ifndef SRC_NET_MESSAGE_H_
#define SRC_NET_MESSAGE_H_

#include <cstdint>
#include <memory>

namespace hovercraft {

class Message {
 public:
  virtual ~Message() = default;

  // Bytes of R2P2 payload this message occupies on the wire (headers and
  // framing are accounted separately by the cost model).
  virtual int32_t PayloadBytes() const = 0;

  // Stable short name used for per-type message accounting (Table 1).
  virtual const char* Name() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace hovercraft

#endif  // SRC_NET_MESSAGE_H_
