#include "src/net/network.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/obs/observability.h"

namespace hovercraft {

Network::Network(Simulator* sim, const CostModel& costs, uint64_t seed)
    : sim_(sim), costs_(costs), rng_(seed) {
  HC_CHECK(sim != nullptr);
}

HostId Network::Attach(Host* host) {
  HC_CHECK(host != nullptr);
  const HostId id = static_cast<HostId>(hosts_.size());
  hosts_.push_back(host);
  host->AttachTo(this, id);
  return id;
}

Addr Network::CreateMulticastGroup(std::vector<HostId> members) {
  for (HostId m : members) {
    HC_CHECK_GE(m, 0);
    HC_CHECK_LT(static_cast<size_t>(m), hosts_.size());
  }
  groups_.push_back(std::move(members));
  return MulticastAddr(static_cast<int32_t>(groups_.size()) - 1);
}

const std::vector<HostId>& Network::GroupMembers(Addr group) const {
  HC_CHECK(IsMulticastAddr(group));
  const size_t idx = static_cast<size_t>(MulticastGroupOf(group));
  HC_CHECK_LT(idx, groups_.size());
  return groups_[idx];
}

void Network::SetGroupMembers(Addr group, std::vector<HostId> members) {
  HC_CHECK(IsMulticastAddr(group));
  const size_t idx = static_cast<size_t>(MulticastGroupOf(group));
  HC_CHECK_LT(idx, groups_.size());
  for (HostId m : members) {
    HC_CHECK_GE(m, 0);
    HC_CHECK_LT(static_cast<size_t>(m), hosts_.size());
  }
  groups_[idx] = std::move(members);
}

void Network::SetPartitions(const std::vector<std::vector<HostId>>& groups) {
  partition_of_.assign(hosts_.size(), 0);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (HostId id : groups[g]) {
      HC_CHECK_GE(id, 0);
      HC_CHECK_LT(static_cast<size_t>(id), hosts_.size());
      partition_of_[static_cast<size_t>(id)] = static_cast<int32_t>(g) + 1;
    }
  }
}

int32_t Network::PartitionOf(HostId id) const {
  const size_t idx = static_cast<size_t>(id);
  return idx < partition_of_.size() ? partition_of_[idx] : 0;
}

bool Network::Partitioned(HostId a, HostId b) const {
  return PartitionOf(a) != PartitionOf(b);
}

void Network::BlockLink(HostId src, HostId dst) { blocked_links_.insert(LinkKey(src, dst)); }

void Network::UnblockLink(HostId src, HostId dst) { blocked_links_.erase(LinkKey(src, dst)); }

void Network::SetLinkDelay(HostId src, HostId dst, TimeNs extra) {
  if (extra > 0) {
    link_delay_[LinkKey(src, dst)] = extra;
  } else {
    link_delay_.erase(LinkKey(src, dst));
  }
}

void Network::SetReorder(double probability, TimeNs max_extra) {
  HC_CHECK_GE(probability, 0.0);
  HC_CHECK_GE(max_extra, 0);
  reorder_probability_ = probability;
  reorder_max_extra_ = max_extra;
}

void Network::ClearFaults() {
  partition_of_.clear();
  blocked_links_.clear();
  link_delay_.clear();
  reorder_probability_ = 0.0;
  reorder_max_extra_ = 0;
}

void Network::Transmit(Packet packet) {
  // Packet reaches the switch after one link propagation, is forwarded after
  // the cut-through latency, and fans out to each destination port.
  // Ownership rule: the packet (and its MessagePtr reference) is moved into
  // the switch-hop event; per-destination references are only taken at
  // DeliverCopy fan-out.
  const TimeNs at_switch = sim_->Now() + costs_.link_propagation_ns + costs_.switch_latency_ns;
  sim_->At(at_switch, [this, packet = std::move(packet)]() {
    if (IsMulticastAddr(packet.dst)) {
      for (HostId member : GroupMembers(packet.dst)) {
        if (member != packet.src) {
          DeliverCopy(packet, member);
        }
      }
    } else {
      DeliverCopy(packet, packet.dst);
    }
  });
}

void Network::DeliverCopy(const Packet& packet, HostId dst) {
  HC_CHECK_GE(dst, 0);
  HC_CHECK_LT(static_cast<size_t>(dst), hosts_.size());
  // Drop and deliver counters are per logical message copy: a coalesced
  // BatchMsg counts as its member count, so the fabric totals are invariant
  // under batching. A multicast message suppressed for k of its destinations
  // still adds k to dropped_msgs_.
  const BatchMsg* batch = dynamic_cast<const BatchMsg*>(packet.msg.get());
  const uint64_t logical = batch != nullptr
                               ? static_cast<uint64_t>(batch->messages().size())
                               : 1;
  if (Partitioned(packet.src, dst) ||
      blocked_links_.count(LinkKey(packet.src, dst)) != 0) {
    dropped_msgs_ += logical;
    dropped_by_fault_ += logical;
    TraceDrop(packet, dst, "fault");
    return;
  }
  MessagePtr to_deliver = packet.msg;
  if (drop_filter_) {
    if (batch != nullptr) {
      // Targeted filters match logical messages, so each member faces the
      // filter individually; survivors travel on in a rebuilt batch. A
      // physical frame loss, by contrast, takes the whole batch (below).
      std::vector<MessagePtr> kept;
      kept.reserve(batch->messages().size());
      for (const MessagePtr& m : batch->messages()) {
        const Packet member{packet.src, packet.dst, m};
        if (drop_filter_(member, dst)) {
          ++dropped_msgs_;
          TraceDrop(member, dst, "filter");
        } else {
          kept.push_back(m);
        }
      }
      if (kept.empty()) {
        return;
      }
      if (kept.size() != batch->messages().size()) {
        to_deliver = kept.size() == 1
                         ? std::move(kept[0])
                         : std::make_shared<BatchMsg>(std::move(kept));
      }
    } else if (drop_filter_(packet, dst)) {
      ++dropped_msgs_;
      TraceDrop(packet, dst, "filter");
      return;
    }
  }
  const BatchMsg* surviving_batch = dynamic_cast<const BatchMsg*>(to_deliver.get());
  const uint64_t delivering =
      surviving_batch != nullptr
          ? static_cast<uint64_t>(surviving_batch->messages().size())
          : 1;
  if (loss_probability_ > 0.0) {
    // A message survives only if every frame does; a batch is one frame, so
    // losing it loses every member.
    const int32_t frames = costs_.FramesFor(to_deliver->PayloadBytes());
    for (int32_t i = 0; i < frames; ++i) {
      if (rng_.NextBool(loss_probability_)) {
        dropped_msgs_ += delivering;
        TraceDrop(packet, dst, "loss");
        return;
      }
    }
  }
  delivered_msgs_ += delivering;
  TimeNs delay = costs_.link_propagation_ns;
  if (!link_delay_.empty()) {
    auto it = link_delay_.find(LinkKey(packet.src, dst));
    if (it != link_delay_.end()) {
      delay += it->second;
    }
  }
  if (reorder_probability_ > 0.0 && reorder_max_extra_ > 0 &&
      rng_.NextBool(reorder_probability_)) {
    delay += static_cast<TimeNs>(
        rng_.NextBelow(static_cast<uint64_t>(reorder_max_extra_) + 1));
  }
  Host* host = hosts_[static_cast<size_t>(dst)];
  // Ownership rule: each delivered copy takes its own MessagePtr reference —
  // a multicast packet fans out to k destinations that outlive the switch
  // event independently, so this per-copy refcount bump is semantically
  // required (receivers share the immutable message, never the packet).
  // `to_deliver` is usually that shared reference; when a drop filter thinned
  // a batch, it is this destination's private rebuilt frame.
  sim_->After(delay,
              [host, src = packet.src, msg = std::move(to_deliver)]() { host->Receive(src, msg); });
}

void Network::TraceDrop(const Packet& packet, HostId dst, const char* cause) {
  if (auto* tracer = obs::TracerOf(sim_)) {
    tracer->Instant(obs::kClusterPid, obs::kTidFabric,
                    std::string("drop ") + packet.msg->Name(), sim_->Now(),
                    std::string(cause) + " " + std::to_string(packet.src) +
                        "->" + std::to_string(dst));
  }
}

}  // namespace hovercraft
