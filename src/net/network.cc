#include "src/net/network.h"

#include <utility>

#include "src/common/check.h"

namespace hovercraft {

Network::Network(Simulator* sim, const CostModel& costs, uint64_t seed)
    : sim_(sim), costs_(costs), rng_(seed) {
  HC_CHECK(sim != nullptr);
}

HostId Network::Attach(Host* host) {
  HC_CHECK(host != nullptr);
  const HostId id = static_cast<HostId>(hosts_.size());
  hosts_.push_back(host);
  host->AttachTo(this, id);
  return id;
}

Addr Network::CreateMulticastGroup(std::vector<HostId> members) {
  for (HostId m : members) {
    HC_CHECK_GE(m, 0);
    HC_CHECK_LT(static_cast<size_t>(m), hosts_.size());
  }
  groups_.push_back(std::move(members));
  return MulticastAddr(static_cast<int32_t>(groups_.size()) - 1);
}

const std::vector<HostId>& Network::GroupMembers(Addr group) const {
  HC_CHECK(IsMulticastAddr(group));
  const size_t idx = static_cast<size_t>(MulticastGroupOf(group));
  HC_CHECK_LT(idx, groups_.size());
  return groups_[idx];
}

void Network::Transmit(const Packet& packet) {
  // Packet reaches the switch after one link propagation, is forwarded after
  // the cut-through latency, and fans out to each destination port.
  const TimeNs at_switch = sim_->Now() + costs_.link_propagation_ns + costs_.switch_latency_ns;
  sim_->At(at_switch, [this, packet]() {
    if (IsMulticastAddr(packet.dst)) {
      for (HostId member : GroupMembers(packet.dst)) {
        if (member != packet.src) {
          DeliverCopy(packet, member);
        }
      }
    } else {
      DeliverCopy(packet, packet.dst);
    }
  });
}

void Network::DeliverCopy(const Packet& packet, HostId dst) {
  HC_CHECK_GE(dst, 0);
  HC_CHECK_LT(static_cast<size_t>(dst), hosts_.size());
  if (drop_filter_ && drop_filter_(packet, dst)) {
    ++dropped_msgs_;
    return;
  }
  if (loss_probability_ > 0.0) {
    // A message survives only if every frame does.
    const int32_t frames = costs_.FramesFor(packet.msg->PayloadBytes());
    for (int32_t i = 0; i < frames; ++i) {
      if (rng_.NextBool(loss_probability_)) {
        ++dropped_msgs_;
        return;
      }
    }
  }
  ++delivered_msgs_;
  Host* host = hosts_[static_cast<size_t>(dst)];
  sim_->After(costs_.link_propagation_ns,
              [host, src = packet.src, msg = packet.msg]() { host->Receive(src, msg); });
}

}  // namespace hovercraft
