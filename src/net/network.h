// The simulated datacenter fabric: one cut-through switch, one link per host,
// IP multicast groups, and hooks for loss and fault injection (the chaos
// harness drives partitions, asymmetric link cuts, extra delay and frame
// reordering through this class).
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/net/host.h"
#include "src/net/packet.h"
#include "src/sim/cost_model.h"
#include "src/sim/simulator.h"

namespace hovercraft {

class Network {
 public:
  Network(Simulator* sim, const CostModel& costs, uint64_t seed);

  // Registers a host and assigns its id. The network does not own hosts.
  HostId Attach(Host* host);

  // Creates a multicast group; packets addressed to it are replicated to all
  // members except the sender.
  Addr CreateMulticastGroup(std::vector<HostId> members);

  const std::vector<HostId>& GroupMembers(Addr group) const;

  // Rewrites a multicast group's membership in place (dynamic membership:
  // the switch joins/leaves replicas on committed config changes). Packets
  // already in flight toward the group were fanned out under the old
  // membership and are unaffected.
  void SetGroupMembers(Addr group, std::vector<HostId> members);

  // Entry point used by Host::Send once the packet leaves the NIC. Takes the
  // packet by value: callers hand over their MessagePtr reference and the
  // fabric moves it through the switch hop without refcount churn.
  void Transmit(Packet packet);

  // Uniform per-frame loss probability (a message is lost if any of its
  // frames is). Applied independently per destination, so multicast can
  // reach a subset of the group — the case HovercRaft's recovery handles.
  void set_loss_probability(double p) { loss_probability_ = p; }

  // Arbitrary drop filter for targeted failure injection in tests. Returning
  // true drops the copy headed to `dst`.
  using DropFilter = std::function<bool(const Packet&, HostId dst)>;
  void set_drop_filter(DropFilter filter) { drop_filter_ = std::move(filter); }

  // --- fault injection (nemesis hooks) -------------------------------------
  // All faults act per delivered *copy*: a multicast message fanned out to k
  // destinations is k copies, and each copy is independently subject to
  // partitions, link cuts, loss, delay and reordering.

  // Symmetric partition: hosts listed in groups[i] join partition i+1; every
  // unlisted host (clients, middleboxes, ...) stays in partition 0. Copies
  // between different partitions are dropped. An empty vector heals.
  void SetPartitions(const std::vector<std::vector<HostId>>& groups);
  void HealPartitions() { SetPartitions({}); }
  bool Partitioned(HostId a, HostId b) const;

  // Asymmetric link cut: every copy src -> dst is dropped; the reverse
  // direction is unaffected.
  void BlockLink(HostId src, HostId dst);
  void UnblockLink(HostId src, HostId dst);

  // Extra one-way propagation delay on the link src -> dst (0 clears).
  void SetLinkDelay(HostId src, HostId dst, TimeNs extra);

  // Random reordering: each copy is independently held back by a uniform
  // extra delay in [0, max_extra] with the given probability, so copies sent
  // back-to-back can overtake each other. probability 0 disables.
  void SetReorder(double probability, TimeNs max_extra);

  // Clears partitions, link cuts, link delays and reordering (not the loss
  // probability or the drop filter, which tests manage directly).
  void ClearFaults();

  // Message-copy accounting. Both counters are per-copy: a multicast whose
  // fan-out is k contributes up to k to delivered + dropped combined.
  uint64_t delivered_msgs() const { return delivered_msgs_; }
  uint64_t dropped_msgs() const { return dropped_msgs_; }
  // Subset of dropped_msgs() dropped by partitions or link cuts.
  uint64_t dropped_by_fault() const { return dropped_by_fault_; }

  Host* host(HostId id) const { return hosts_[static_cast<size_t>(id)]; }
  size_t host_count() const { return hosts_.size(); }

 private:
  void DeliverCopy(const Packet& packet, HostId dst);
  void TraceDrop(const Packet& packet, HostId dst, const char* cause);
  static uint64_t LinkKey(HostId src, HostId dst) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
           static_cast<uint32_t>(dst);
  }
  int32_t PartitionOf(HostId id) const;

  Simulator* sim_;
  const CostModel& costs_;
  Rng rng_;
  std::vector<Host*> hosts_;
  std::vector<std::vector<HostId>> groups_;
  double loss_probability_ = 0.0;
  DropFilter drop_filter_;

  // Fault state. partition_of_ may be shorter than hosts_ (late attaches
  // default to partition 0).
  std::vector<int32_t> partition_of_;
  std::unordered_set<uint64_t> blocked_links_;
  std::unordered_map<uint64_t, TimeNs> link_delay_;
  double reorder_probability_ = 0.0;
  TimeNs reorder_max_extra_ = 0;

  uint64_t delivered_msgs_ = 0;
  uint64_t dropped_msgs_ = 0;
  uint64_t dropped_by_fault_ = 0;
};

}  // namespace hovercraft

#endif  // SRC_NET_NETWORK_H_
