// The simulated datacenter fabric: one cut-through switch, one link per host,
// IP multicast groups, and hooks for loss injection.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <functional>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/net/host.h"
#include "src/net/packet.h"
#include "src/sim/cost_model.h"
#include "src/sim/simulator.h"

namespace hovercraft {

class Network {
 public:
  Network(Simulator* sim, const CostModel& costs, uint64_t seed);

  // Registers a host and assigns its id. The network does not own hosts.
  HostId Attach(Host* host);

  // Creates a multicast group; packets addressed to it are replicated to all
  // members except the sender.
  Addr CreateMulticastGroup(std::vector<HostId> members);

  const std::vector<HostId>& GroupMembers(Addr group) const;

  // Entry point used by Host::Send once the packet leaves the NIC.
  void Transmit(const Packet& packet);

  // Uniform per-frame loss probability (a message is lost if any of its
  // frames is). Applied independently per destination, so multicast can
  // reach a subset of the group — the case HovercRaft's recovery handles.
  void set_loss_probability(double p) { loss_probability_ = p; }

  // Arbitrary drop filter for targeted failure injection in tests. Returning
  // true drops the copy headed to `dst`.
  using DropFilter = std::function<bool(const Packet&, HostId dst)>;
  void set_drop_filter(DropFilter filter) { drop_filter_ = std::move(filter); }

  uint64_t delivered_msgs() const { return delivered_msgs_; }
  uint64_t dropped_msgs() const { return dropped_msgs_; }

  Host* host(HostId id) const { return hosts_[static_cast<size_t>(id)]; }
  size_t host_count() const { return hosts_.size(); }

 private:
  void DeliverCopy(const Packet& packet, HostId dst);

  Simulator* sim_;
  const CostModel& costs_;
  Rng rng_;
  std::vector<Host*> hosts_;
  std::vector<std::vector<HostId>> groups_;
  double loss_probability_ = 0.0;
  DropFilter drop_filter_;
  uint64_t delivered_msgs_ = 0;
  uint64_t dropped_msgs_ = 0;
};

}  // namespace hovercraft

#endif  // SRC_NET_NETWORK_H_
