// Network addressing and the in-flight packet record.
#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/net/message.h"

namespace hovercraft {

// Destination address: either a HostId or a multicast group.
using Addr = int32_t;
constexpr Addr kMulticastAddrBase = 1'000'000;

constexpr bool IsMulticastAddr(Addr a) { return a >= kMulticastAddrBase; }
constexpr Addr MulticastAddr(int32_t group) { return kMulticastAddrBase + group; }
constexpr int32_t MulticastGroupOf(Addr a) { return a - kMulticastAddrBase; }

struct Packet {
  HostId src = kInvalidHost;
  Addr dst = kInvalidHost;
  MessagePtr msg;
};

}  // namespace hovercraft

#endif  // SRC_NET_PACKET_H_
