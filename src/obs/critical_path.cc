#include "src/obs/critical_path.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace hovercraft {
namespace obs {
namespace {

constexpr TimeNs kUnseen = -1;

struct Population {
  const char* name;
  double quantile;
};
constexpr Population kPopulations[] = {
    {"p50", 0.50},
    {"p99", 0.99},
    {"p99.9", 0.999},
};

}  // namespace

void CriticalPath::OnFrEvent(const FrEvent& event) {
  if (event.type != FrType::kStage) {
    return;
  }
  const Stage stage = static_cast<Stage>(event.c);
  const RequestId rid{static_cast<HostId>(event.a), event.b};
  if (stage == Stage::kNacked) {
    // Flow control pushed the request back; it will be retried under a new
    // client-send mark, so the partial chain is not a completed request.
    pending_.erase(rid);
    return;
  }
  auto [it, inserted] = pending_.try_emplace(rid);
  if (inserted) {
    it->second.marks.fill(kUnseen);
  }
  TimeNs& mark = it->second.marks[static_cast<size_t>(stage)];
  if (mark == kUnseen) {
    mark = event.ts;
  }
  if (stage == Stage::kComplete) {
    Finalize(rid, it->second);
    pending_.erase(it);
  }
}

void CriticalPath::Finalize(const RequestId& rid, Pending& pending) {
  (void)rid;
  const TimeNs start = pending.marks[static_cast<size_t>(Stage::kClientSend)];
  const TimeNs end = pending.marks[static_cast<size_t>(Stage::kComplete)];
  if (start == kUnseen || end < start) {
    return;  // partial chain (e.g. recorder attached mid-flight)
  }
  // Order the in-window marks by (timestamp, pipeline position) and blame
  // each consecutive delta on the stage it ended at. The deltas telescope:
  // their sum is exactly end - start.
  struct Mark {
    TimeNs ts;
    size_t stage;
  };
  std::array<Mark, kStageCount> chain;
  size_t n = 0;
  for (size_t s = 0; s < kStageCount; ++s) {
    const TimeNs ts = pending.marks[s];
    if (ts != kUnseen && ts >= start && ts <= end) {
      chain[n++] = Mark{ts, s};
    }
  }
  std::sort(chain.begin(), chain.begin() + n, [](const Mark& lhs, const Mark& rhs) {
    return lhs.ts != rhs.ts ? lhs.ts < rhs.ts : lhs.stage < rhs.stage;
  });
  Done done;
  done.e2e = end - start;
  for (size_t i = 1; i < n; ++i) {
    done.blame[chain[i].stage] += chain[i].ts - chain[i - 1].ts;
  }
  done_.push_back(done);
}

std::vector<CriticalPath::Row> CriticalPath::Attribution() const {
  std::vector<Row> rows;
  if (done_.empty()) {
    return rows;
  }
  std::vector<const Done*> by_e2e;
  by_e2e.reserve(done_.size());
  for (const Done& d : done_) {
    by_e2e.push_back(&d);
  }
  std::stable_sort(by_e2e.begin(), by_e2e.end(),
                   [](const Done* lhs, const Done* rhs) { return lhs->e2e < rhs->e2e; });
  const size_t n = by_e2e.size();
  for (const Population& pop : kPopulations) {
    // A narrow rank window around the percentile: wide enough to average out
    // one odd request, narrow enough to stay representative of the tail.
    const size_t center =
        static_cast<size_t>(std::llround(pop.quantile * static_cast<double>(n - 1)));
    const size_t window = std::max<size_t>(1, n / 200);
    const size_t lo = center >= window ? center - window : 0;
    const size_t hi = std::min(n - 1, center + window);
    Row row;
    row.population = pop.name;
    row.percentile_ns = by_e2e[center]->e2e;
    for (size_t i = lo; i <= hi; ++i) {
      ++row.count;
      row.e2e_ns += static_cast<double>(by_e2e[i]->e2e);
      for (size_t s = 0; s < kStageCount; ++s) {
        row.blame_ns[s] += static_cast<double>(by_e2e[i]->blame[s]);
      }
    }
    row.e2e_ns /= static_cast<double>(row.count);
    for (double& blame : row.blame_ns) {
      blame /= static_cast<double>(row.count);
    }
    rows.push_back(row);
  }
  return rows;
}

std::string CriticalPath::AttributionTable(const std::string& label) const {
  std::ostringstream out;
  out << "tail_attribution";
  if (!label.empty()) {
    out << " [" << label << "]";
  }
  out << " (" << done_.size() << " requests)\n";
  const std::vector<Row> rows = Attribution();
  if (rows.empty()) {
    out << "  (no completed requests)\n";
    return out.str();
  }
  // Print only stages that carry blame in some population.
  std::vector<size_t> stages;
  for (size_t s = 0; s < kStageCount; ++s) {
    for (const Row& row : rows) {
      if (row.blame_ns[s] > 0) {
        stages.push_back(s);
        break;
      }
    }
  }
  char buf[160];
  out << "  population        count         e2e_us   percentile_us\n";
  for (const Row& row : rows) {
    std::snprintf(buf, sizeof(buf), "  %-10s %10" PRIu64 " %14.3f %14.3f\n",
                  row.population, row.count, row.e2e_ns / 1e3,
                  static_cast<double>(row.percentile_ns) / 1e3);
    out << buf;
    for (size_t s : stages) {
      if (row.blame_ns[s] <= 0) {
        continue;
      }
      std::snprintf(buf, sizeof(buf), "    %-22s %10.3f us  (%4.1f%%)\n",
                    StageName(static_cast<Stage>(s)), row.blame_ns[s] / 1e3,
                    100.0 * row.blame_ns[s] / row.e2e_ns);
      out << buf;
    }
  }
  return out.str();
}

double CriticalPath::MaxSumError() const {
  double worst = 0;
  for (const Row& row : Attribution()) {
    double sum = 0;
    for (double blame : row.blame_ns) {
      sum += blame;
    }
    if (row.e2e_ns > 0) {
      worst = std::max(worst, std::abs(sum - row.e2e_ns) / row.e2e_ns);
    }
  }
  return worst;
}

void CriticalPath::Clear() {
  pending_.clear();
  done_.clear();
}

}  // namespace obs
}  // namespace hovercraft
