// Critical-path analyzer: per-request tail-latency attribution.
//
// Subscribes to the flight-recorder stage-mark stream, and for every request
// that completes, walks its stage marks in time order to extract the blocking
// chain (client -> NIC -> multicast -> ordering -> commit -> JBSQ dispatch ->
// apply -> reply). Each consecutive delta is *blamed* on the stage it ended
// at; a stage the request skipped (e.g. kDispatched under kLeaderOnly)
// contributes nothing and its time folds into the next stage present. By
// construction the per-stage blame of one request telescopes exactly to its
// end-to-end latency.
//
// Attribution() then aggregates blame over the p50 / p99 / p99.9 populations
// (a small rank window around each percentile of the end-to-end latency
// distribution), producing the `tail_attribution` table the benches emit per
// load point. Because blame is exact per request and the aggregate is a mean
// over the window, each row's per-stage blame sums to that row's end-to-end
// latency to floating-point precision — "p99 is 3.1x p50 because of JBSQ
// queueing" becomes a machine-checked output (the benches gate the sum
// within 1%).
#ifndef SRC_OBS_CRITICAL_PATH_H_
#define SRC_OBS_CRITICAL_PATH_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/tracer.h"
#include "src/r2p2/request_id.h"

namespace hovercraft {
namespace obs {

class CriticalPath : public FlightRecorder::Sink {
 public:
  struct Row {
    const char* population;       // "p50", "p99", "p99.9"
    uint64_t count = 0;           // requests in the rank window
    double e2e_ns = 0;            // mean end-to-end latency over the window
    int64_t percentile_ns = 0;    // the exact nearest-rank percentile
    std::array<double, kStageCount> blame_ns{};  // sums to e2e_ns
  };

  void OnFrEvent(const FrEvent& event) override;

  // Requests finalized so far (completed with both endpoints marked).
  size_t completed() const { return done_.size(); }

  // One row per percentile population; empty when no request completed.
  std::vector<Row> Attribution() const;

  // Printable table, e.g. AttributionTable("HovercRaft/r800000").
  std::string AttributionTable(const std::string& label) const;

  // Largest relative |sum(blame) - e2e| across the rows — the acceptance
  // check (must stay under 0.01). Zero when no request completed.
  double MaxSumError() const;

  // Forget everything; the benches reuse one analyzer across load points.
  void Clear();

 private:
  struct Pending {
    std::array<TimeNs, kStageCount> marks;  // first occurrence, -1 = unseen
  };
  struct Done {
    TimeNs e2e = 0;
    std::array<TimeNs, kStageCount> blame{};  // per-stage, sums to e2e
  };

  void Finalize(const RequestId& rid, Pending& pending);

  std::unordered_map<RequestId, Pending, RequestIdHash> pending_;
  std::vector<Done> done_;
};

}  // namespace obs
}  // namespace hovercraft

#endif  // SRC_OBS_CRITICAL_PATH_H_
