#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "src/common/check.h"

namespace hovercraft {
namespace obs {
namespace {

// Latest-constructed recorder; the CHECK-failure hook dumps this one.
FlightRecorder* g_active = nullptr;

void DumpActiveOnCheckFailure() {
  if (g_active != nullptr) {
    g_active->DumpNow("CHECK failure");
  }
}

// Chrome trace timestamps are microseconds; keep nanosecond precision as a
// fixed three-decimal fraction (same format as the tracer, so the dump and a
// full trace of the identical run line up sample for sample).
void AppendTs(std::string& out, TimeNs ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000, ns % 1000);
  out += buf;
}

}  // namespace

const char* FrTypeName(FrType type) {
  switch (type) {
    case FrType::kStage:
      return "stage";
    case FrType::kRole:
      return "role";
    case FrType::kCommit:
      return "commit";
    case FrType::kCommitLoss:
      return "commit_loss";
    case FrType::kDurable:
      return "durable";
    case FrType::kLeaseGrant:
      return "lease_grant";
    case FrType::kLeaseExpire:
      return "lease_expire";
    case FrType::kConfig:
      return "config";
    case FrType::kWalFlush:
      return "wal_flush";
    case FrType::kRecovery:
      return "recovery";
    case FrType::kApply:
      return "apply";
    case FrType::kFlow:
      return "flow";
    case FrType::kViolation:
      return "violation";
  }
  return "?";
}

FlightRecorder::FlightRecorder(size_t depth) {
  size_t rounded = 1;
  while (rounded < depth) {
    rounded <<= 1;
  }
  mask_ = rounded - 1;
  rings_.reserve(8);
  g_active = this;
  SetCheckFailureHook(&DumpActiveOnCheckFailure);
}

FlightRecorder::~FlightRecorder() {
  if (g_active == this) {
    g_active = nullptr;
  }
}

FlightRecorder* FlightRecorder::active() { return g_active; }

void FlightRecorder::GrowRing(size_t idx) {
  // Allocate densely through idx so the hot-path guard stays a single
  // limit compare (no per-ring null check). Node ids are small and dense in
  // practice, so the worst case is a handful of idle slabs.
  rings_.resize(idx + 1);
  for (size_t i = ring_limit_; i <= idx; ++i) {
    slabs_.push_back(std::make_unique<FrEvent[]>(mask_ + 1));
    rings_[i].events = slabs_.back().get();
  }
  ring_limit_ = idx + 1;
}

void FlightRecorder::Dispatch(const FrEvent& event) {
  for (int i = 0; i < sink_count_; ++i) {
    sinks_[i]->OnFrEvent(event);
  }
}

void FlightRecorder::AddSink(Sink* sink) {
  HC_CHECK(sink != nullptr);
  HC_CHECK_LT(sink_count_, kMaxSinks);
  sinks_[sink_count_++] = sink;
}

void FlightRecorder::RemoveSink(Sink* sink) {
  for (int i = 0; i < sink_count_; ++i) {
    if (sinks_[i] == sink) {
      for (int j = i; j + 1 < sink_count_; ++j) {
        sinks_[j] = sinks_[j + 1];
      }
      sinks_[--sink_count_] = nullptr;
      return;
    }
  }
}

void FlightRecorder::WriteDump(std::ostream& out) const {
  // Collect the surviving window of every ring, then merge by (ts, node, seq)
  // so the dump is a single deterministic cluster-wide timeline.
  std::vector<const FrEvent*> merged;
  for (const Ring& ring : rings_) {
    if (ring.count == 0) {
      continue;
    }
    const uint64_t kept = std::min<uint64_t>(ring.count, mask_ + 1);
    for (uint64_t i = ring.count - kept; i < ring.count; ++i) {
      merged.push_back(&ring.events[i & mask_]);
    }
  }
  std::sort(merged.begin(), merged.end(), [](const FrEvent* a, const FrEvent* b) {
    if (a->ts != b->ts) return a->ts < b->ts;
    if (a->node != b->node) return a->node < b->node;
    return a->seq < b->seq;
  });

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    out << (first ? "\n" : ",\n") << obj;
    first = false;
  };
  // Track metadata: one process per node ring that recorded anything.
  std::vector<int32_t> pids;
  for (size_t idx = 0; idx < rings_.size(); ++idx) {
    if (rings_[idx].count > 0) {
      pids.push_back(static_cast<int32_t>(idx));
    }
  }
  for (int32_t pid : pids) {
    const std::string name =
        pid == 0 ? std::string("cluster") : "node " + std::to_string(pid - 1);
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"args\":{\"name\":\"" + name + "\"}}");
  }
  for (const FrEvent* e : merged) {
    std::string obj = "{\"ph\":\"i\",\"name\":\"";
    obj += FrTypeName(e->type);
    obj += "\",\"cat\":\"fr\",\"pid\":" + std::to_string(static_cast<int32_t>(e->node + 1)) +
           ",\"tid\":0,\"ts\":";
    AppendTs(obj, e->ts);
    obj += ",\"s\":\"t\",\"args\":{\"a\":" + std::to_string(e->a) +
           ",\"b\":" + std::to_string(e->b) + ",\"c\":" + std::to_string(e->c) +
           ",\"seq\":" + std::to_string(e->seq) + "}}";
    emit(obj);
  }
  out << "\n],\"otherData\":{\"recorded\":" << recorded() << ",\"dumped\":" << merged.size()
      << ",\"repro\":\"" << repro_ << "\"}}";
  out << "\n";
}

std::vector<FrEvent> FlightRecorder::NodeEvents(NodeId node) const {
  std::vector<FrEvent> out;
  const size_t idx = static_cast<size_t>(node + 1);
  if (idx >= rings_.size()) {
    return out;
  }
  const Ring& ring = rings_[idx];
  const uint64_t kept = std::min<uint64_t>(ring.count, mask_ + 1);
  out.reserve(kept);
  for (uint64_t i = ring.count - kept; i < ring.count; ++i) {
    out.push_back(ring.events[i & mask_]);
  }
  return out;
}

void FlightRecorder::DumpNow(const char* reason) {
  if (dumped_) {
    return;
  }
  dumped_ = true;
  if (!dump_path_.empty()) {
    std::ofstream out(dump_path_, std::ios::binary);
    if (out) {
      WriteDump(out);
      std::fprintf(stderr, "flight recorder: %s — dumped last events to %s (%llu recorded)\n",
                   reason, dump_path_.c_str(), static_cast<unsigned long long>(recorded()));
    } else {
      std::fprintf(stderr, "flight recorder: %s — cannot write %s\n", reason,
                   dump_path_.c_str());
    }
  } else {
    std::fprintf(stderr, "flight recorder: %s — %llu events recorded (no --dump-out path)\n",
                 reason, static_cast<unsigned long long>(recorded()));
  }
  if (!repro_.empty()) {
    std::fprintf(stderr, "flight recorder: repro: %s\n", repro_.c_str());
  }
}

}  // namespace obs
}  // namespace hovercraft
