// Always-on flight recorder: a fixed-size, slab-allocated per-node ring of
// compact binary events, recorded even when JSON tracing is off.
//
// The recorder is the black box of a run. Every node continuously records
// stage marks, role/term changes, commit/durable-index advances, lease
// grants, config changes and WAL flush boundaries into a power-of-two ring;
// the hot path is one branch (is a recorder installed?) plus one 48-byte
// store, with zero allocation after construction. When something goes wrong —
// a CHECK failure, a watchdog violation, a chaos verdict failure — the last
// `depth` events per node are dumped as a deterministic, replay-matching
// Chrome trace together with a one-line repro command, so the moments before
// the failure are always recoverable without re-running under a tracer.
//
// Subscribers (obs::Watchdog, obs::CriticalPath) observe the same hook
// stream through Sink; they are passive readers and never schedule simulator
// events, so recording cannot perturb the run it observes (the same
// zero-perturbation contract the tracer keeps, asserted by tests and CI).
#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace hovercraft {
namespace obs {

// Event kinds. The a/b/c payload fields are typed per kind (see the comment
// on each); `node` is the acting Raft node, kInvalidNode for cluster-scope
// events (client stages, flow control).
enum class FrType : uint8_t {
  kStage = 0,     // a=rid.client, b=rid.seq, c=Stage
  kRole,          // a=term, b=FrRole, c=1 if the node is recovery-suspect
  kCommit,        // a=committed idx, b=entry term at idx, c=raft term (low 32)
  kCommitLoss,    // a=new last idx, b=old commit idx (committed entries overwritten)
  kDurable,       // a=durable idx, b=restart epoch
  kLeaseGrant,    // a=read_index, b=designated replier (as u64), c=term (low 32)
  kLeaseExpire,   // a=rejection count, c=term (low 32) — grant refused, lease stale
  kConfig,        // a=config log idx, b=member count
  kWalFlush,      // a=durable idx covered, b=flush latency ns
  kRecovery,      // a=FrRecovery, b=kind-specific (floor, bytes, idx)
  kApply,         // a=rid.client, b=rid.seq, c=1 if session table says duplicate
  kFlow,          // a=open slots after the op, b=threshold, c=FrFlowOp
  kViolation,     // a=WatchdogCode — recorded by the watchdog at detection
};
constexpr size_t kFrTypeCount = 13;
const char* FrTypeName(FrType type);

// kRole payload b.
enum class FrRole : uint8_t { kFollower = 0, kPreCandidate, kCandidate, kLeader };

// kRecovery payload a.
enum class FrRecovery : uint8_t {
  kRestart = 0,    // node restarted from WAL; b = recovered commit baseline
  kTornTail,       // torn unsynced tail truncated; b = bytes dropped
  kCrcHole,        // CRC-failed record, durable bytes lost; b = record offset
  kSuspectEnter,   // recovery lost durable data; b = suspect_floor
  kSuspectRepair,  // commit caught back up to the suspect floor; b = commit
  kTruncate,       // conflicting (uncommitted) log suffix cut; b = new durable idx.
                   // Legitimately lowers the durable index — the watchdog resets
                   // its durable-monotonicity floor here, never the commit floor.
};

// kFlow payload c.
enum class FrFlowOp : uint8_t { kOpen = 0, kClose, kNack, kForceRelease };

struct alignas(16) FrEvent {
  TimeNs ts = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t seq = 0;  // per-node record order; (ts, node, seq) is the
                     // deterministic dump ordering
  uint32_t c = 0;
  NodeId node = kInvalidNode;
  FrType type = FrType::kStage;
};
static_assert(sizeof(FrEvent) == 48, "hot-path store is three 16-byte writes");

class FlightRecorder {
 public:
  // Passive subscriber to the recorded stream. Sinks must not schedule
  // simulator events or mutate simulation state.
  class Sink {
   public:
    virtual ~Sink() = default;
    virtual void OnFrEvent(const FrEvent& event) = 0;
  };

  static constexpr size_t kDefaultDepth = 512;

  // `depth` is the per-node ring capacity, rounded up to a power of two.
  explicit FlightRecorder(size_t depth = kDefaultDepth);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Hot path: one bounds check, one ring store, one sink branch. Inline so
  // the always-on cost stays within the perf-smoke gate (<= 5% on
  // sim_throughput's event loop).
  void Record(TimeNs ts, NodeId node, FrType type, uint64_t a = 0, uint64_t b = 0,
              uint32_t c = 0) {
    const size_t idx = static_cast<size_t>(node + 1);  // kInvalidNode -> ring 0
    if (idx >= ring_limit_) [[unlikely]] {
      GrowRing(idx);  // allocates slabs densely, so idx < ring_limit_ => slab exists
    }
    Ring& ring = rings_[idx];
    const uint64_t n = ring.count++;
    FrEvent* slot = ring.events + (n & mask_);
    *slot = FrEvent{ts, a, b, n, c, node, type};  // one aligned 48-byte store
    if (sink_count_ != 0) [[unlikely]] {
      Dispatch(*slot);
    }
  }

  void AddSink(Sink* sink);
  void RemoveSink(Sink* sink);

  // Total events recorded (including those that have rotated out of a ring).
  uint64_t recorded() const {
    uint64_t total = 0;
    for (const Ring& ring : rings_) {
      total += ring.count;
    }
    return total;
  }
  size_t depth() const { return mask_ + 1; }

  // One-line command that reproduces the run being recorded, e.g.
  // "chaos_runner --schedule=flap --seed=3". Printed with every dump.
  void set_repro(std::string command) { repro_ = std::move(command); }
  const std::string& repro() const { return repro_; }

  // File the next DumpNow writes ("" = stderr summary only).
  void set_dump_path(std::string path) { dump_path_ = std::move(path); }
  const std::string& dump_path() const { return dump_path_; }

  // Writes the surviving events of every ring, merged and sorted by
  // (ts, seq), as deterministic Chrome trace-event JSON. The same run at the
  // same seed produces byte-identical output (replay-matching: the events
  // are a pure function of the simulation).
  void WriteDump(std::ostream& out) const;

  // Surviving events of one node's ring, oldest first. Test-facing: the
  // shard determinism test compares group-0 rings byte-for-byte between runs
  // with different group counts.
  std::vector<FrEvent> NodeEvents(NodeId node) const;

  // Failure path: writes dump_path_ (when set) and prints a one-line summary
  // plus the repro command to stderr. Reentrancy-safe and idempotent per
  // process — only the first dump writes, so a violation dump is not
  // overwritten by the verdict-failure dump that follows it.
  void DumpNow(const char* reason);

  // The process-wide recorder the CHECK-failure hook dumps (latest
  // constructed recorder wins; cleared on destruction).
  static FlightRecorder* active();

 private:
  // 16 bytes so rings_[idx] is shift addressing on the hot path; the slab
  // itself is owned by slabs_.
  struct Ring {
    FrEvent* events = nullptr;  // slab of `depth` slots
    uint64_t count = 0;         // total records; head = count & mask
  };

  void GrowRing(size_t idx);
  void Dispatch(const FrEvent& event);

  // Hot-path members first: Record touches mask_, ring_limit_, sink_count_
  // and the rings_ data pointer, all within the object's first cache line.
  size_t mask_;
  size_t ring_limit_ = 0;  // rings_[0..ring_limit_) all have slabs
  int sink_count_ = 0;
  std::vector<Ring> rings_;
  std::vector<std::unique_ptr<FrEvent[]>> slabs_;
  // Sized for sharded runs: one node-filtered watchdog per consensus group
  // (src/shard supports several groups on one fabric) plus the critical-path
  // analyzer.
  static constexpr int kMaxSinks = 10;
  Sink* sinks_[kMaxSinks] = {};
  std::string repro_;
  std::string dump_path_;
  bool dumped_ = false;
};

// Hot-path accessor: one pointer load + branch when no recorder is installed.
inline FlightRecorder* FrOf(const Simulator* sim) { return sim->flight_recorder(); }

}  // namespace obs
}  // namespace hovercraft

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
