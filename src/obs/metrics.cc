#include "src/obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace hovercraft {
namespace obs {
namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string NodeScope(NodeId node) { return "node" + std::to_string(node) + "/"; }

void MetricsRegistry::AddCounter(const std::string& name, uint64_t delta) {
  std::string storage;
  counters_[Key(name, storage)] += delta;
}

void MetricsRegistry::SetCounter(const std::string& name, uint64_t value) {
  std::string storage;
  counters_[Key(name, storage)] = value;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::string storage;
  auto it = counters_.find(Key(name, storage));
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(const std::string& name, int64_t value) {
  std::string storage;
  gauges_[Key(name, storage)] = value;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::string storage;
  const std::string& key = Key(name, storage);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_.emplace(key, Histogram()).first;
  }
  return it->second;
}

void MetricsRegistry::Sample(const std::string& name, TimeNs t, int64_t value) {
  std::string storage;
  series_[Key(name, storage)].emplace_back(t, value);
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  series_.clear();
}

void MetricsRegistry::DumpJson(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": {\"count\": "
        << h.count() << ", \"min\": " << h.min() << ", \"max\": " << h.max()
        << ", \"mean\": " << FormatDouble(h.Mean()) << ", \"p50\": " << h.Percentile(50)
        << ", \"p90\": " << h.Percentile(90) << ", \"p99\": " << h.Percentile(99)
        << ", \"p999\": " << h.Percentile(99.9) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"timeseries\": {";
  first = true;
  for (const auto& [name, points] : series_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": [";
    for (size_t i = 0; i < points.size(); ++i) {
      out << (i == 0 ? "" : ", ") << "[" << points[i].first << ", " << points[i].second << "]";
    }
    out << "]";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

}  // namespace obs
}  // namespace hovercraft
