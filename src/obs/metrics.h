// Cluster-wide metrics registry: named counters, gauges, latency histograms
// (src/stats) and sampled timeseries, with per-node scoping by name prefix
// ("node3/raft.commit_lag"). Dumped as one JSON snapshot whose bytes are a
// deterministic function of the recorded values (keys are sorted, floats are
// printed with fixed precision).
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/stats/histogram.h"

namespace hovercraft {
namespace obs {

// "node3/" — canonical per-node metric scope prefix.
std::string NodeScope(NodeId node);

class MetricsRegistry {
 public:
  // Optional instance prefix, prepended to every name passed through the
  // public API ("shard0." + "node3/raft.commit_lag"). Lets several
  // otherwise-identical component instances (e.g. consensus groups sharing
  // one fabric, src/shard) share a registry without their raft.*/net.*
  // counters aliasing. Reads honor the prefix too, so CounterValue("x")
  // under prefix "shard1." reads "shard1.x". Empty (the default) keeps the
  // historic global namespace byte-for-byte.
  void set_instance_prefix(std::string prefix) { instance_prefix_ = std::move(prefix); }
  const std::string& instance_prefix() const { return instance_prefix_; }

  // Counters: monotonic uint64 totals (message counts, drops, dedup hits...).
  void AddCounter(const std::string& name, uint64_t delta);
  void SetCounter(const std::string& name, uint64_t value);
  uint64_t CounterValue(const std::string& name) const;

  // Gauges: point-in-time int64 values (queue depth, window occupancy...).
  void SetGauge(const std::string& name, int64_t value);

  // Histograms: latency-style distributions, created on first use.
  Histogram& GetHistogram(const std::string& name);

  // Timeseries: appends one (t, value) sample; used by the periodic queue
  // depth samplers. Samples must be appended in non-decreasing t per series.
  void Sample(const std::string& name, TimeNs t, int64_t value);

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...},
  // "timeseries":{...}}. Byte-deterministic for identical contents.
  void DumpJson(std::ostream& out) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() && series_.empty();
  }
  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size() + series_.size();
  }
  void Clear();

 private:
  // Applies the instance prefix; the no-prefix case must stay allocation-free
  // relative to the historic path (returns the caller's string by reference).
  const std::string& Key(const std::string& name, std::string& storage) const {
    if (instance_prefix_.empty()) {
      return name;
    }
    storage = instance_prefix_ + name;
    return storage;
  }

  std::string instance_prefix_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, int64_t> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::vector<std::pair<TimeNs, int64_t>>> series_;
};

}  // namespace obs
}  // namespace hovercraft

#endif  // SRC_OBS_METRICS_H_
