#include "src/obs/observability.h"

#include <utility>

namespace hovercraft {
namespace obs {

Observability::Observability(const Options& options) : options_(options) {
  if (options_.tracing) {
    tracer_ = std::make_unique<Tracer>(options_.max_trace_events);
  }
}

void Observability::AddSampler(std::string name, std::function<int64_t()> fn) {
  samplers_.push_back(Sampler{std::move(name), std::move(fn)});
}

void Observability::ClearSamplers() { samplers_.clear(); }

void Observability::SampleAll(TimeNs now) {
  for (const Sampler& sampler : samplers_) {
    const int64_t value = sampler.fn();
    metrics_.Sample(sampler.name, now, value);
    metrics_.SetGauge(sampler.name, value);
  }
}

void Observability::StartSampling(Simulator* sim, TimeNs until) {
  if (!options_.sampling || samplers_.empty()) {
    return;
  }
  // Recurring tick. Samplers only read state, so interleaving these events
  // with protocol events cannot change the simulation outcome.
  SampleAll(sim->Now());
  ArmSampleTick(sim, until);
}

void Observability::ArmSampleTick(Simulator* sim, TimeNs until) {
  const TimeNs next = sim->Now() + options_.sample_interval;
  if (next > until) {
    return;
  }
  sim->At(next, [this, sim, until]() {
    SampleAll(sim->Now());
    ArmSampleTick(sim, until);
  });
}

}  // namespace obs
}  // namespace hovercraft
