// The observability bundle: one Tracer plus one MetricsRegistry, attached to
// a Simulator so every component that holds a Simulator* can reach them
// without constructor plumbing.
//
// Tracing and sampling are OFF by default and the bundle is absent from the
// simulator unless explicitly installed; the disabled hot path is a single
// pointer load and branch, with no allocation and no event recorded (the
// zero-overhead-when-disabled contract the CI smoke job asserts).
#ifndef SRC_OBS_OBSERVABILITY_H_
#define SRC_OBS_OBSERVABILITY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/sim/simulator.h"

namespace hovercraft {
namespace obs {

class Observability {
 public:
  struct Options {
    bool tracing = false;            // record trace events
    bool sampling = false;           // run the periodic queue-depth samplers
    TimeNs sample_interval = Micros(100);
    size_t max_trace_events = 4'000'000;
  };

  explicit Observability(const Options& options);

  // Null when tracing is disabled: call sites guard with TracerOf(sim).
  Tracer* tracer() { return tracer_.get(); }
  MetricsRegistry& metrics() { return metrics_; }
  const Options& options() const { return options_; }

  // --- periodic samplers -------------------------------------------------
  // A sampler reads one gauge (a queue depth, a lag) and is polled every
  // sample_interval; each poll appends to the named timeseries and updates
  // the gauge of the same name. Samplers are registered by the topology
  // owner (Cluster) and must be removed before the sampled objects die.
  void AddSampler(std::string name, std::function<int64_t()> fn);
  void ClearSamplers();

  // Arms the periodic sampling loop on `sim` until virtual time `until`.
  // No-op unless options.sampling is set and samplers are registered.
  void StartSampling(Simulator* sim, TimeNs until);

  // Runs every sampler once at time `now` (also called by the loop).
  void SampleAll(TimeNs now);

 private:
  void ArmSampleTick(Simulator* sim, TimeNs until);

  Options options_;
  MetricsRegistry metrics_;
  std::unique_ptr<Tracer> tracer_;
  struct Sampler {
    std::string name;
    std::function<int64_t()> fn;
  };
  std::vector<Sampler> samplers_;
};

// Hot-path accessors: one pointer load + branch when observability is absent.
inline Observability* ObsOf(const Simulator* sim) { return sim->observability(); }
inline Tracer* TracerOf(const Simulator* sim) {
  Observability* o = ObsOf(sim);
  return o == nullptr ? nullptr : o->tracer();
}

// Dual-recording stage mark: the JSON tracer (only when tracing is on) and
// the always-on flight recorder (whenever one is installed) both see every
// pipeline stage, so the critical-path analyzer and post-mortem dumps work
// without a tracer attached.
inline void MarkStageAll(const Simulator* sim, const RequestId& rid, Stage stage,
                         NodeId node, TimeNs ts) {
  if (Tracer* tracer = TracerOf(sim)) {
    tracer->MarkStage(rid, stage, node, ts);
  }
  if (FlightRecorder* fr = sim->flight_recorder()) {
    fr->Record(ts, node, FrType::kStage, static_cast<uint64_t>(rid.client), rid.seq,
               static_cast<uint32_t>(stage));
  }
}

}  // namespace obs
}  // namespace hovercraft

#endif  // SRC_OBS_OBSERVABILITY_H_
