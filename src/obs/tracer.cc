#include "src/obs/tracer.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace hovercraft {
namespace obs {
namespace {

// Escapes a string for inclusion inside a JSON string literal.
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Chrome trace timestamps are microseconds; keep nanosecond precision as a
// fixed three-decimal fraction so the output is deterministic.
std::string FormatTs(TimeNs ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000, ns % 1000);
  return buf;
}

std::string RidKey(const RequestId& rid) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "c%d:%" PRIu64, rid.client, rid.seq);
  return buf;
}

struct BreakdownSpec {
  Stage from;
  Stage to;
  const char* label;
};

// Pipeline stage pairs the breakdown report aggregates, in pipeline order.
constexpr BreakdownSpec kBreakdown[] = {
    {Stage::kClientSend, Stage::kReplicaRx, "replication (send->rx)"},
    {Stage::kReplicaRx, Stage::kOrdered, "ordering (rx->ordered)"},
    {Stage::kOrdered, Stage::kDispatched, "dispatch (ordered->assigned)"},
    {Stage::kOrdered, Stage::kCommitted, "commit (ordered->committed)"},
    {Stage::kReplicaRx, Stage::kReadGranted, "read wait (rx->granted)"},
    {Stage::kReadGranted, Stage::kApplyStart, "read dispatch (granted->apply)"},
    {Stage::kCommitted, Stage::kApplyStart, "apply queue (committed->apply)"},
    {Stage::kApplyStart, Stage::kApplyEnd, "apply (execute)"},
    {Stage::kApplyEnd, Stage::kReplySent, "reply send (apply->tx)"},
    {Stage::kReplySent, Stage::kComplete, "reply net (tx->client)"},
    {Stage::kClientSend, Stage::kComplete, "total (send->complete)"},
};

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kClientSend:
      return "client_send";
    case Stage::kRetransmit:
      return "retransmit";
    case Stage::kReplicaRx:
      return "replica_rx";
    case Stage::kOrdered:
      return "ordered";
    case Stage::kCommitted:
      return "committed";
    case Stage::kDispatched:
      return "dispatched";
    case Stage::kReadGranted:
      return "read_granted";
    case Stage::kApplyStart:
      return "apply_start";
    case Stage::kApplyEnd:
      return "apply_end";
    case Stage::kReplySent:
      return "reply_sent";
    case Stage::kComplete:
      return "complete";
    case Stage::kNacked:
      return "nacked";
  }
  return "?";
}

Tracer::Tracer(size_t max_events) : max_events_(max_events) {
  NameProcess(kClusterPid, "cluster");
  NameThread(kClusterPid, kTidEvents, "requests");
  NameThread(kClusterPid, kTidFabric, "fabric");
  NameThread(kClusterPid, kTidNemesis, "nemesis");
}

void Tracer::NameProcess(int32_t pid, const std::string& name) {
  process_names_.emplace(pid, name);
}

void Tracer::NameThread(int32_t pid, int32_t tid, const std::string& name) {
  thread_names_.emplace(std::make_pair(pid, tid), name);
}

void Tracer::Complete(int32_t pid, int32_t tid, std::string name, TimeNs start, TimeNs dur) {
  if (events_.size() >= max_events_) {
    ++dropped_events_;
    return;
  }
  events_.push_back(Event{'X', pid, tid, start, dur, std::move(name), std::string()});
}

void Tracer::Instant(int32_t pid, int32_t tid, std::string name, TimeNs ts,
                     std::string detail) {
  if (events_.size() >= max_events_) {
    ++dropped_events_;
    return;
  }
  events_.push_back(Event{'i', pid, tid, ts, 0, std::move(name), std::move(detail)});
}

void Tracer::MarkStage(const RequestId& rid, Stage stage, NodeId node, TimeNs ts) {
  stage_events_.push_back(StageEvent{rid, stage, node, ts});
  auto [it, inserted] = first_mark_.try_emplace(rid);
  if (inserted) {
    it->second.fill(-1);
  }
  TimeNs& slot = it->second[static_cast<size_t>(stage)];
  if (slot < 0) {
    slot = ts;
  }
}

void Tracer::WriteChromeJson(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) {
      out << ",\n";
    } else {
      out << "\n";
      first = false;
    }
    out << obj;
  };

  // Track metadata. std::map iteration keeps the output deterministic.
  for (const auto& [pid, name] : process_names_) {
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"args\":{\"name\":\"" + JsonEscape(name) + "\"}}");
  }
  for (const auto& [key, name] : thread_names_) {
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + std::to_string(key.first) +
         ",\"tid\":" + std::to_string(key.second) + ",\"args\":{\"name\":\"" + JsonEscape(name) +
         "\"}}");
  }

  // Flatten generic events and per-request stage marks into one list sorted
  // by timestamp (stable, so equal-time events keep recording order).
  struct Record {
    TimeNs ts;
    int source;   // 0 = generic event, 1 = stage event
    size_t index;
  };
  std::vector<Record> records;
  records.reserve(events_.size() + stage_events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    records.push_back(Record{events_[i].ts, 0, i});
  }
  for (size_t i = 0; i < stage_events_.size(); ++i) {
    records.push_back(Record{stage_events_[i].ts, 1, i});
  }
  std::stable_sort(records.begin(), records.end(), [](const Record& a, const Record& b) {
    if (a.ts != b.ts) {
      return a.ts < b.ts;
    }
    if (a.source != b.source) {
      return a.source < b.source;
    }
    return a.index < b.index;
  });

  // Async span bookkeeping: open at a request's first mark, close at its
  // terminal mark; whatever is still open closes at the end of the trace so
  // begin/end events always balance.
  std::unordered_map<RequestId, bool, RequestIdHash> open;
  TimeNs last_ts = 0;
  for (const Record& rec : records) {
    last_ts = std::max(last_ts, rec.ts);
    if (rec.source == 0) {
      const Event& e = events_[rec.index];
      std::string obj = "{\"ph\":\"";
      obj += e.phase;
      obj += "\",\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"sim\",\"pid\":" +
             std::to_string(e.pid) + ",\"tid\":" + std::to_string(e.tid) +
             ",\"ts\":" + FormatTs(e.ts);
      if (e.phase == 'X') {
        obj += ",\"dur\":" + FormatTs(e.dur);
      } else {
        obj += ",\"s\":\"t\"";
      }
      if (!e.detail.empty()) {
        obj += ",\"args\":{\"detail\":\"" + JsonEscape(e.detail) + "\"}";
      }
      obj += "}";
      emit(obj);
      continue;
    }
    const StageEvent& s = stage_events_[rec.index];
    const std::string id = RidKey(s.rid);
    const bool terminal = s.stage == Stage::kComplete || s.stage == Stage::kNacked;
    auto [it, inserted] = open.try_emplace(s.rid, false);
    char phase = 'n';
    if (!it->second && !terminal) {
      phase = 'b';
      it->second = true;
    } else if (it->second && terminal) {
      phase = 'e';
      it->second = false;
    } else if (!it->second && terminal) {
      // Terminal mark with no prior mark (cannot happen in practice, but keep
      // the output balanced regardless): open and close as an instant pair.
      phase = 'n';
    }
    std::string obj = "{\"ph\":\"";
    obj += phase;
    obj += "\",\"cat\":\"req\",\"id\":\"" + id + "\",\"name\":\"req " + id +
           "\",\"pid\":" + std::to_string(kClusterPid) + ",\"tid\":" + std::to_string(kTidEvents) +
           ",\"ts\":" + FormatTs(s.ts) + ",\"args\":{\"stage\":\"" + StageName(s.stage) + "\"";
    if (s.node != kInvalidNode) {
      obj += ",\"node\":" + std::to_string(s.node);
    }
    obj += "}}";
    emit(obj);
    if (phase == 'b') {
      // Every stage, including the opening one, also appears as an "n"
      // instant so the args carry the stage name uniformly.
      emit("{\"ph\":\"n\",\"cat\":\"req\",\"id\":\"" + id + "\",\"name\":\"req " + id +
           "\",\"pid\":" + std::to_string(kClusterPid) + ",\"tid\":" +
           std::to_string(kTidEvents) + ",\"ts\":" + FormatTs(s.ts) +
           ",\"args\":{\"stage\":\"" + StageName(s.stage) + "\"}}");
    }
  }
  // Balance: close spans of requests that never completed (lost to faults).
  std::vector<RequestId> unclosed;
  for (const auto& [rid, is_open] : open) {
    if (is_open) {
      unclosed.push_back(rid);
    }
  }
  std::sort(unclosed.begin(), unclosed.end(), [](const RequestId& a, const RequestId& b) {
    return a.client != b.client ? a.client < b.client : a.seq < b.seq;
  });
  for (const RequestId& rid : unclosed) {
    const std::string id = RidKey(rid);
    emit("{\"ph\":\"e\",\"cat\":\"req\",\"id\":\"" + id + "\",\"name\":\"req " + id +
         "\",\"pid\":" + std::to_string(kClusterPid) + ",\"tid\":" + std::to_string(kTidEvents) +
         ",\"ts\":" + FormatTs(last_ts) + ",\"args\":{\"stage\":\"unresolved\"}}");
  }
  out << "\n],\"otherData\":{\"droppedEvents\":" << dropped_events_ << "}}";
  out << "\n";
}

std::vector<Tracer::StageRow> Tracer::BreakdownRows() const {
  // Iterate requests in a deterministic order so floating-point accumulation
  // (the mean) is byte-stable across runs of the same seed.
  std::vector<const std::pair<const RequestId, std::array<TimeNs, kStageCount>>*> sorted;
  sorted.reserve(first_mark_.size());
  for (const auto& entry : first_mark_) {
    sorted.push_back(&entry);
  }
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return a->first.client != b->first.client ? a->first.client < b->first.client
                                              : a->first.seq < b->first.seq;
  });
  std::vector<StageRow> rows;
  for (const BreakdownSpec& spec : kBreakdown) {
    Histogram h;
    for (const auto* entry : sorted) {
      const auto& marks = entry->second;
      const TimeNs from = marks[static_cast<size_t>(spec.from)];
      const TimeNs to = marks[static_cast<size_t>(spec.to)];
      if (from >= 0 && to >= from) {
        h.Record(to - from);
      }
    }
    if (h.count() == 0) {
      continue;
    }
    StageRow row;
    row.name = spec.label;
    row.count = h.count();
    row.p50_ns = h.Percentile(50);
    row.p99_ns = h.Percentile(99);
    row.mean_ns = h.Mean();
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string Tracer::BreakdownTable() const {
  std::string out =
      "stage                              count      mean_us       p50_us       p99_us\n";
  for (const StageRow& row : BreakdownRows()) {
    char line[160];
    std::snprintf(line, sizeof(line), "%-32s %7" PRIu64 " %12.2f %12.2f %12.2f\n",
                  row.name.c_str(), row.count, row.mean_ns / 1e3,
                  static_cast<double>(row.p50_ns) / 1e3, static_cast<double>(row.p99_ns) / 1e3);
    out += line;
  }
  return out;
}

}  // namespace obs
}  // namespace hovercraft
