// Per-request tracer for the simulated HovercRaft pipeline.
//
// Records point events, duration ("complete") events and per-RequestId stage
// marks against the simulator's virtual clock and exports them as Chrome
// trace-event JSON (the format Perfetto and chrome://tracing load). Each
// simulated host appears as one "process" with one "thread" per modelled
// resource (net thread, app thread, NIC); the request flow across nodes is
// rendered as async events keyed by the RequestId.
//
// Determinism contract: the exported bytes are a pure function of the
// recorded events, which are a pure function of the simulation — the same
// seed and configuration produce a byte-identical trace file.
#ifndef SRC_OBS_TRACER_H_
#define SRC_OBS_TRACER_H_

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/r2p2/request_id.h"
#include "src/stats/histogram.h"

namespace hovercraft {
namespace obs {

// Trace "process" ids. Host-attached tracks use TrackOfHost(id); pid 0 is the
// cluster-wide track (fabric drops, nemesis faults, request async flows).
constexpr int32_t kClusterPid = 0;
inline int32_t TrackOfHost(HostId id) { return static_cast<int32_t>(id) + 1; }

// Trace "thread" ids inside a host process.
constexpr int32_t kTidEvents = 0;  // protocol-level point events
constexpr int32_t kTidNet = 1;     // polling net thread (RX/TX CPU)
constexpr int32_t kTidApp = 2;     // state-machine app thread
constexpr int32_t kTidNic = 3;     // NIC TX serialization engine
// Threads of the cluster pid.
constexpr int32_t kTidFabric = 1;
constexpr int32_t kTidNemesis = 2;

// Canonical pipeline stages of one request, in pipeline order. The
// latency-breakdown report aggregates the durations between consecutive
// stage marks (first occurrence of each stage per request).
enum class Stage : uint8_t {
  kClientSend = 0,  // client hands the request to its NIC
  kRetransmit,      // a retry attempt left the client (annotation only)
  kReplicaRx,       // request arrived at a server (multicast replication)
  kOrdered,         // leader appended the entry (append_entries ordering)
  kCommitted,       // entry covered by the commit index
  kDispatched,      // JBSQ/random replier assignment announced
  kReadGranted,     // ReadIndex lease grant covered this read-only request
  kApplyStart,      // state-machine execution began on the app thread
  kApplyEnd,        // state-machine execution finished
  kReplySent,       // reply handed to the replier's NIC
  kComplete,        // client received the (first) reply
  kNacked,          // flow control pushed the request back (terminal)
};
constexpr size_t kStageCount = 12;
const char* StageName(Stage stage);

class Tracer {
 public:
  // `max_events` bounds memory for long runs: past the cap, generic events
  // are dropped (and counted); stage marks are always kept so the breakdown
  // report stays complete.
  explicit Tracer(size_t max_events = 4'000'000);

  // --- track naming (idempotent; call at first use) ---
  void NameProcess(int32_t pid, const std::string& name);
  void NameThread(int32_t pid, int32_t tid, const std::string& name);

  // --- event recording ---
  // Duration event ("X"): work on a serial resource in [start, start + dur].
  void Complete(int32_t pid, int32_t tid, std::string name, TimeNs start, TimeNs dur);
  // Instant event ("i"). `detail` lands in args.detail (may be empty).
  void Instant(int32_t pid, int32_t tid, std::string name, TimeNs ts,
               std::string detail = std::string());
  // Pipeline stage mark for one request; `node` is the acting Raft node
  // (kInvalidNode for client-side stages).
  void MarkStage(const RequestId& rid, Stage stage, NodeId node, TimeNs ts);

  // --- export ---
  // Chrome trace-event JSON: {"traceEvents": [...]}. Events are emitted in
  // (timestamp, record order) — monotonic non-decreasing timestamps.
  void WriteChromeJson(std::ostream& out) const;

  // Per-stage latency aggregation across all requests with stage marks.
  struct StageRow {
    std::string name;  // e.g. "ordering (rx->ordered)"
    uint64_t count = 0;
    int64_t p50_ns = 0;
    int64_t p99_ns = 0;
    double mean_ns = 0;
  };
  std::vector<StageRow> BreakdownRows() const;
  // The breakdown as a printable table.
  std::string BreakdownTable() const;

  size_t event_count() const { return events_.size() + stage_events_.size(); }
  uint64_t dropped_events() const { return dropped_events_; }

 private:
  struct Event {
    char phase;  // 'X' or 'i'
    int32_t pid;
    int32_t tid;
    TimeNs ts;
    TimeNs dur;  // X only
    std::string name;
    std::string detail;
  };
  struct StageEvent {
    RequestId rid;
    Stage stage;
    NodeId node;
    TimeNs ts;
  };

  size_t max_events_;
  uint64_t dropped_events_ = 0;
  std::vector<Event> events_;
  std::vector<StageEvent> stage_events_;
  // First occurrence of each stage per request, for the breakdown report.
  std::unordered_map<RequestId, std::array<TimeNs, kStageCount>, RequestIdHash> first_mark_;
  std::map<int32_t, std::string> process_names_;
  std::map<std::pair<int32_t, int32_t>, std::string> thread_names_;
};

}  // namespace obs
}  // namespace hovercraft

#endif  // SRC_OBS_TRACER_H_
