#include "src/obs/watchdog.h"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <sstream>

namespace hovercraft {
namespace obs {
namespace {

// Stored-violation cap: a mutation run can trip the same invariant at every
// subsequent event; keep the first window and count the rest.
constexpr size_t kMaxStoredViolations = 256;
// Violations echoed to stderr (the first one also dumps the recorder).
constexpr size_t kMaxLoggedViolations = 8;

}  // namespace

const char* WatchdogCodeName(WatchdogCode code) {
  switch (code) {
    case WatchdogCode::kDualLeader:
      return "dual_leader";
    case WatchdogCode::kCommitRegression:
      return "commit_regression";
    case WatchdogCode::kLogDivergence:
      return "log_divergence";
    case WatchdogCode::kDurableRegression:
      return "durable_regression";
    case WatchdogCode::kStaleReadGrant:
      return "stale_read_grant";
    case WatchdogCode::kFlowImbalance:
      return "flow_imbalance";
    case WatchdogCode::kDoubleApply:
      return "double_apply";
    case WatchdogCode::kSuspectCampaign:
      return "suspect_campaign";
  }
  return "?";
}

Watchdog::NodeState& Watchdog::State(NodeId node) {
  return nodes_[static_cast<int32_t>(node)];
}

void Watchdog::Report(WatchdogCode code, const FrEvent& event, std::string detail) {
  ++violations_total_;
  if (violations_.size() < kMaxStoredViolations) {
    violations_.push_back(Violation{code, event.ts, event.node, std::move(detail)});
  }
  if (violations_total_ <= kMaxLoggedViolations) {
    const Violation& v = violations_.back();
    std::fprintf(stderr,
                 "watchdog: %s at t=%" PRId64 "ns node=%d: %s\n",
                 WatchdogCodeName(code), v.ts, static_cast<int>(v.node), v.detail.c_str());
  }
  if (recorder_ != nullptr) {
    recorder_->Record(event.ts, event.node, FrType::kViolation,
                      static_cast<uint64_t>(code));
    recorder_->DumpNow("watchdog violation");
  }
}

void Watchdog::OnFrEvent(const FrEvent& event) {
  if (filtered_ && (event.node < filter_lo_ || event.node >= filter_hi_)) {
    return;
  }
  ++events_;
  switch (event.type) {
    case FrType::kRole: {
      const uint64_t term = event.a;
      const FrRole role = static_cast<FrRole>(event.b);
      if (role == FrRole::kLeader) {
        ++checks_;
        auto [it, inserted] = leader_by_term_.emplace(term, event.node);
        if (!inserted && it->second != event.node) {
          Report(WatchdogCode::kDualLeader, event,
                 "term " + std::to_string(term) + " led by node " +
                     std::to_string(it->second) + " and node " + std::to_string(event.node));
        }
      }
      if (role == FrRole::kCandidate || role == FrRole::kLeader) {
        ++checks_;
        if (event.c != 0) {
          Report(WatchdogCode::kSuspectCampaign, event,
                 std::string(role == FrRole::kLeader ? "leads" : "campaigns") +
                     " while recovery-suspect (term " + std::to_string(term) + ")");
        }
      }
      break;
    }
    case FrType::kCommit: {
      NodeState& st = State(event.node);
      ++checks_;
      if (st.has_commit && event.a < st.commit) {
        Report(WatchdogCode::kCommitRegression, event,
               "commit " + std::to_string(st.commit) + " -> " + std::to_string(event.a) +
                   " without a recovery reset");
      }
      st.commit = event.a;
      st.has_commit = true;
      ++checks_;
      auto [it, inserted] = committed_term_.emplace(event.a, event.b);
      if (!inserted && it->second != event.b) {
        Report(WatchdogCode::kLogDivergence, event,
               "index " + std::to_string(event.a) + " committed with term " +
                   std::to_string(it->second) + " and term " + std::to_string(event.b));
      }
      if (event.a > max_commit_) {
        max_commit_ = event.a;
      }
      break;
    }
    case FrType::kCommitLoss: {
      ++checks_;
      Report(WatchdogCode::kCommitRegression, event,
             "committed entries overwritten: log cut to " + std::to_string(event.a) +
                 " below commit " + std::to_string(event.b));
      break;
    }
    case FrType::kDurable: {
      NodeState& st = State(event.node);
      ++checks_;
      if (st.has_durable && event.b == st.durable_epoch && event.a < st.durable) {
        Report(WatchdogCode::kDurableRegression, event,
               "durable " + std::to_string(st.durable) + " -> " + std::to_string(event.a) +
                   " within restart epoch " + std::to_string(event.b));
      }
      st.durable = event.a;
      st.durable_epoch = event.b;
      st.has_durable = true;
      break;
    }
    case FrType::kLeaseGrant: {
      // Lease disjointness: a current leader's commit index is the cluster
      // maximum (followers only learn commit from it), so a grant below the
      // watermark can only come from a deposed leader whose lease should
      // have expired — the stale-read hazard ReadIndex leases must exclude.
      ++checks_;
      if (event.a < max_commit_) {
        Report(WatchdogCode::kStaleReadGrant, event,
               "read_index " + std::to_string(event.a) + " below cluster commit watermark " +
                   std::to_string(max_commit_));
      }
      break;
    }
    case FrType::kRecovery: {
      if (static_cast<FrRecovery>(event.a) == FrRecovery::kRestart) {
        // A post-crash node legitimately re-advances commit/durable from its
        // recovered baseline; reset the per-node monotonicity floors (the
        // cluster-wide watermark and the index->term map stand: committed
        // data must survive any single-node recovery).
        NodeState& st = State(event.node);
        st.has_commit = false;
        st.has_durable = false;
      } else if (static_cast<FrRecovery>(event.a) == FrRecovery::kTruncate) {
        // Cutting a conflicting uncommitted suffix (or resetting the log to
        // a snapshot point) legitimately lowers the durable index. Commit
        // stays monotonic: only uncommitted entries may be truncated — a cut
        // below commit shows up as kCommitLoss, which is always a violation.
        State(event.node).has_durable = false;
      }
      break;
    }
    case FrType::kApply: {
      ++checks_;
      if (event.c != 0) {
        Report(WatchdogCode::kDoubleApply, event,
               "entry {client " + std::to_string(event.a) + ", seq " + std::to_string(event.b) +
                   "} applied twice (session table bypassed)");
      }
      break;
    }
    case FrType::kFlow: {
      switch (static_cast<FrFlowOp>(event.c)) {
        case FrFlowOp::kOpen:
          ++flow_balance_;
          break;
        case FrFlowOp::kClose:
        case FrFlowOp::kForceRelease:
          --flow_balance_;
          break;
        case FrFlowOp::kNack:
          break;
      }
      ++checks_;
      const int64_t reported = static_cast<int64_t>(event.a);
      const int64_t threshold = static_cast<int64_t>(event.b);
      if (reported != flow_balance_ || flow_balance_ < 0 ||
          (threshold > 0 && reported > threshold)) {
        Report(WatchdogCode::kFlowImbalance, event,
               "ledger reports " + std::to_string(reported) + " open slots, event stream sums " +
                   std::to_string(flow_balance_) + " (threshold " + std::to_string(threshold) +
                   ")");
        flow_balance_ = reported;  // resync so one leak reports once
      }
      break;
    }
    case FrType::kStage:
    case FrType::kLeaseExpire:
    case FrType::kConfig:
    case FrType::kWalFlush:
    case FrType::kViolation:
      break;
  }
}

std::string Watchdog::Summary() const {
  std::ostringstream out;
  out << "invariants=" << checks_ << " events=" << events_
      << " violations=" << violations_total_;
  if (violations_total_ > 0) {
    std::set<std::string> codes;
    for (const Violation& v : violations_) {
      codes.insert(WatchdogCodeName(v.code));
    }
    out << " codes=";
    bool first = true;
    for (const std::string& code : codes) {
      out << (first ? "" : ",") << code;
      first = false;
    }
  }
  return out.str();
}

}  // namespace obs
}  // namespace hovercraft
