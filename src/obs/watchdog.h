// Online invariant watchdog: subscribes to the flight-recorder hook stream
// and asserts cluster-wide safety invariants continuously, *during* the run,
// so a violation is caught at the event that commits it rather than at
// verdict time. Passive: it never schedules simulator events and never
// mutates simulation state, so watching cannot perturb the watched run.
//
// Invariant catalog (docs/observability.md has the full table):
//   kDualLeader        election safety: at most one leader per term
//   kCommitRegression  committed entries were overwritten / commit moved back
//   kLogDivergence     log matching at commit: one (index -> entry term)
//   kDurableRegression durable index monotonic per (node, restart epoch)
//   kStaleReadGrant    lease disjointness: a ReadIndex grant below the
//                      cluster commit watermark means an expired-lease leader
//                      is still serving (stale reads possible)
//   kFlowImbalance     flow-control ledger balance: open slots match the
//                      open/close event stream and respect the threshold
//   kDoubleApply       session-table exactly-once: an entry applied twice
//   kSuspectCampaign   suspect-floor respect (PR 7): a recovery-suspect node
//                      must not campaign or lead
#ifndef SRC_OBS_WATCHDOG_H_
#define SRC_OBS_WATCHDOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/obs/flight_recorder.h"

namespace hovercraft {
namespace obs {

enum class WatchdogCode : uint8_t {
  kDualLeader = 0,
  kCommitRegression,
  kLogDivergence,
  kDurableRegression,
  kStaleReadGrant,
  kFlowImbalance,
  kDoubleApply,
  kSuspectCampaign,
};
const char* WatchdogCodeName(WatchdogCode code);

class Watchdog : public FlightRecorder::Sink {
 public:
  struct Violation {
    WatchdogCode code;
    TimeNs ts = 0;
    NodeId node = kInvalidNode;
    std::string detail;
  };

  // `recorder` (optional) receives a kViolation event at each detection and
  // is dumped at the first one, so the dump always contains the events
  // leading up to the violation.
  explicit Watchdog(FlightRecorder* recorder = nullptr) : recorder_(recorder) {}

  // Restricts this instance to events with node in [lo, hi). Sharded runs
  // (src/shard) attach one watchdog per consensus group to the shared
  // recorder: each group gets a disjoint obs-node range, so the per-term
  // leader table, the commit watermark and the flow-ledger balance stay
  // group-local instead of tripping on cross-group interleavings. With a
  // filter set, events recorded under kInvalidNode are dropped too — every
  // group-scoped component (including its flow-control middlebox) must
  // record under a node id inside the group's range.
  void set_node_filter(NodeId lo, NodeId hi) {
    filter_lo_ = lo;
    filter_hi_ = hi;
    filtered_ = true;
  }

  void OnFrEvent(const FrEvent& event) override;

  bool ok() const { return violations_total_ == 0; }
  // First violations, in detection order (capped; violations_total() counts all).
  const std::vector<Violation>& violations() const { return violations_; }
  uint64_t violations_total() const { return violations_total_; }
  // Invariant evaluations performed (several per event for some kinds).
  uint64_t checks() const { return checks_; }
  // Events observed through the sink.
  uint64_t events() const { return events_; }

  // "invariants=N events=M violations=K [code ...]" — the chaos runner's
  // `watchdog:` summary line body.
  std::string Summary() const;

 private:
  void Report(WatchdogCode code, const FrEvent& event, std::string detail);

  FlightRecorder* recorder_;
  bool filtered_ = false;
  NodeId filter_lo_ = 0;
  NodeId filter_hi_ = 0;
  uint64_t checks_ = 0;
  uint64_t events_ = 0;
  uint64_t violations_total_ = 0;
  std::vector<Violation> violations_;

  // --- election safety ---
  std::map<uint64_t, NodeId> leader_by_term_;

  // --- per-node monotonicity + role/suspect state ---
  struct NodeState {
    uint64_t commit = 0;
    bool has_commit = false;
    uint64_t durable = 0;
    uint64_t durable_epoch = 0;
    bool has_durable = false;
  };
  NodeState& State(NodeId node);
  std::unordered_map<int32_t, NodeState> nodes_;

  // --- log matching at commit ---
  // First committed entry term seen per index; a later commit of the same
  // index with a different term is divergence at commit.
  std::unordered_map<uint64_t, uint64_t> committed_term_;
  // Cluster-wide commit watermark (never reset: committed data must outlive
  // node recoveries, which is exactly what the checks above enforce).
  uint64_t max_commit_ = 0;

  // --- flow-control ledger ---
  int64_t flow_balance_ = 0;
};

}  // namespace obs
}  // namespace hovercraft

#endif  // SRC_OBS_WATCHDOG_H_
