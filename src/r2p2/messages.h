// R2P2-level messages exchanged between clients, servers and middleboxes.
#ifndef SRC_R2P2_MESSAGES_H_
#define SRC_R2P2_MESSAGES_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/common/buf_pool.h"
#include "src/net/message.h"
#include "src/r2p2/request_id.h"

namespace hovercraft {

// R2P2 POLICY field values relevant to HovercRaft (paper section 6.1).
// kUnrestricted requests are served without consensus (possible staleness);
// kReplicatedReq requests read-modify the state machine; kReplicatedReqRo
// requests are read-only but still totally ordered.
enum class R2p2Policy : uint8_t {
  kUnrestricted = 0,
  kReplicatedReq = 1,
  kReplicatedReqRo = 2,
};

// Only kReplicatedReq requests may mutate the state machine: kReplicatedReqRo
// is a totally-ordered read, and kUnrestricted requests bypass consensus and
// must therefore be stale-tolerant reads (client contract, section 6.1).
inline bool IsReadOnly(R2p2Policy p) { return p != R2p2Policy::kReplicatedReq; }

// Immutable, refcounted view of a message payload. Historically this was a
// `shared_ptr<const vector<uint8_t>>`; it is now a value-type slice that can
// reference either heap storage (MakeBody — the simulator's typed-message
// path, unchanged semantics) or a slab-pooled arrival buffer (the zero-copy
// decode path: the body is a slice of the reassembled frame, no copy). The
// pointer-style surface (`*body`, `body->size()`, `body == nullptr`) keeps
// the historical call sites source-compatible; a null Body (no payload)
// stays distinct from an empty one, mirroring the null shared_ptr.
//
// Lifetime: a pool-backed Body pins its arrival buffer; the owning BufPool
// must outlive the slice (fatal leak check at pool teardown).
class Body {
 public:
  Body() = default;
  Body(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  // Heap-backed body (the simulator's hot path; semantics unchanged).
  static Body FromVector(std::vector<uint8_t> bytes) {
    Body b;
    b.vec_ = std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
    b.data_ = b.vec_->data();
    b.size_ = b.vec_->size();
    b.null_ = false;
    return b;
  }

  // Zero-copy slice of a pooled buffer (refcount bump, no allocation).
  static Body FromBuffer(BufRef buf, size_t offset, size_t size) {
    HC_CHECK_LE(offset + size, buf.size());
    Body b;
    b.buf_ = std::move(buf);
    b.data_ = b.buf_.data() + offset;
    b.size_ = size;
    b.null_ = false;
    return b;
  }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }
  uint8_t operator[](size_t i) const { return data_[i]; }
  std::span<const uint8_t> bytes() const { return {data_, size_}; }

  // Narrower sub-slice sharing the same storage (no copy).
  Body Slice(size_t offset, size_t count) const {
    HC_CHECK_LE(offset + count, size_);
    Body b = *this;
    b.data_ = data_ + offset;
    b.size_ = count;
    return b;
  }

  // shared_ptr-compatible surface.
  const Body* operator->() const { return this; }
  const Body& operator*() const { return *this; }
  explicit operator bool() const { return !null_; }
  friend bool operator==(const Body& b, std::nullptr_t) { return b.null_; }
  friend bool operator==(const Body& a, const Body& b) {
    if (a.null_ || b.null_) {
      return a.null_ == b.null_;
    }
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Body& a, const std::vector<uint8_t>& v) {
    return !a.null_ && a.size_ == v.size() && std::equal(a.begin(), a.end(), v.begin());
  }

 private:
  BufRef buf_;
  std::shared_ptr<const std::vector<uint8_t>> vec_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool null_ = true;
};

inline Body MakeBody(std::vector<uint8_t> bytes) { return Body::FromVector(std::move(bytes)); }

inline int32_t BodySize(const Body& body) {
  return body == nullptr ? 0 : static_cast<int32_t>(body->size());
}

// Shard routing (src/r2p2/shard.h, src/shard): requests carry the hash slot
// of the key they touch so middleboxes and servers can reject misrouted
// traffic without decoding the application body. kNoShardSlot marks an
// unsharded request (single-group deployments, synthetic workloads) and is
// never gated.
constexpr uint32_t kNoShardSlot = 0xFFFFFFFFu;

class RpcRequest final : public Message {
 public:
  // `attempt` counts transmissions of this rid (1 = original send); clients
  // bump it on every retransmission so servers can tell a retry from a fresh
  // request. `ack_watermark` is the client's acknowledged-sequence floor:
  // every seq <= watermark has been resolved at the client (reply or NACK
  // received), so servers may garbage-collect cached replies at or below it
  // (Raft section 8 client sessions). `shard_slot` is the key's hash slot
  // for sharded deployments (kNoShardSlot = unsharded, never gated).
  RpcRequest(RequestId rid, R2p2Policy policy, Body body, uint32_t attempt = 1,
             uint64_t ack_watermark = 0, uint32_t shard_slot = kNoShardSlot)
      : rid_(rid),
        policy_(policy),
        body_(std::move(body)),
        attempt_(attempt),
        ack_watermark_(ack_watermark),
        shard_slot_(shard_slot) {}

  int32_t PayloadBytes() const override { return BodySize(body_); }
  const char* Name() const override { return "REQUEST"; }

  const RequestId& rid() const { return rid_; }
  R2p2Policy policy() const { return policy_; }
  const Body& body() const { return body_; }
  bool read_only() const { return IsReadOnly(policy_); }
  uint32_t attempt() const { return attempt_; }
  bool is_retransmit() const { return attempt_ > 1; }
  uint64_t ack_watermark() const { return ack_watermark_; }
  uint32_t shard_slot() const { return shard_slot_; }

 private:
  RequestId rid_;
  R2p2Policy policy_;
  Body body_;
  uint32_t attempt_;
  uint64_t ack_watermark_;
  uint32_t shard_slot_;
};

class RpcResponse final : public Message {
 public:
  RpcResponse(RequestId rid, Body body) : rid_(rid), body_(std::move(body)) {}

  int32_t PayloadBytes() const override { return BodySize(body_); }
  const char* Name() const override { return "RESPONSE"; }

  const RequestId& rid() const { return rid_; }
  const Body& body() const { return body_; }

 private:
  RequestId rid_;
  Body body_;
};

// R2P2 FEEDBACK, repurposed by HovercRaft as the flow-control decrement
// (paper section 6.3).
class FeedbackMsg final : public Message {
 public:
  explicit FeedbackMsg(RequestId rid) : rid_(rid) {}

  int32_t PayloadBytes() const override { return 16; }
  const char* Name() const override { return "FEEDBACK"; }

  const RequestId& rid() const { return rid_; }

 private:
  RequestId rid_;
};

// Sent by the flow-control middlebox when the in-flight cap is reached.
class NackMsg final : public Message {
 public:
  explicit NackMsg(RequestId rid) : rid_(rid) {}

  int32_t PayloadBytes() const override { return 16; }
  const char* Name() const override { return "NACK"; }

  const RequestId& rid() const { return rid_; }

 private:
  RequestId rid_;
};

// Sent to the client when a request's shard slot is not served where it
// landed (stale ShardMap at the client, or a range frozen mid-move). The
// client refreshes its map view and re-sends; unlike a flow NACK this does
// not resolve the operation. `epoch` is the sender's map-epoch hint when it
// has one (middlebox gate) or 0 when it only knows "not mine" (server apply
// path); clients refetch on any wrong-shard NACK, so the hint is advisory.
class WrongShardNack final : public Message {
 public:
  WrongShardNack(RequestId rid, uint64_t epoch) : rid_(rid), epoch_(epoch) {}

  int32_t PayloadBytes() const override { return 24; }
  const char* Name() const override { return "NACK_WRONG_SHARD"; }

  const RequestId& rid() const { return rid_; }
  uint64_t epoch() const { return epoch_; }

 private:
  RequestId rid_;
  uint64_t epoch_;
};

// --- flow-control ledger reconciliation (failover repair) -------------------
// A replica that wins an election tells the middlebox, which then asks the
// new leader to classify every admission slot still open in its ledger:
// requests whose designated replier died would otherwise never send FEEDBACK
// and would pin the admission window shut (DESIGN.md section 5c).

// New leader -> middlebox: "reconcile your ledger against my state".
class FcLeaderChangeMsg final : public Message {
 public:
  explicit FcLeaderChangeMsg(HostId leader) : leader_(leader) {}

  int32_t PayloadBytes() const override { return 16; }
  const char* Name() const override { return "FC_LEADER"; }

  HostId leader() const { return leader_; }

 private:
  HostId leader_;
};

// Middlebox -> leader: the rids of all still-open admission slots.
class FcReconcileReq final : public Message {
 public:
  explicit FcReconcileReq(std::vector<RequestId> rids) : rids_(std::move(rids)) {}

  int32_t PayloadBytes() const override {
    return 16 + 16 * static_cast<int32_t>(rids_.size());
  }
  const char* Name() const override { return "FC_RECONCILE_REQ"; }

  const std::vector<RequestId>& rids() const { return rids_; }

 private:
  std::vector<RequestId> rids_;
};

// Per-rid resolution in the reconcile reply.
enum class FcSlotState : uint8_t {
  kExecuted = 0,  // applied (or reply cached): the slot is repaid, release it
  kPending = 1,   // ordered or still in the unordered set: FEEDBACK will come
  kUnknown = 2,   // the leader has no trace of it: the request is lost, release
};

class FcReconcileRep final : public Message {
 public:
  FcReconcileRep(std::vector<RequestId> rids, std::vector<FcSlotState> states)
      : rids_(std::move(rids)), states_(std::move(states)) {}

  int32_t PayloadBytes() const override {
    return 16 + 17 * static_cast<int32_t>(rids_.size());
  }
  const char* Name() const override { return "FC_RECONCILE_REP"; }

  const std::vector<RequestId>& rids() const { return rids_; }
  const std::vector<FcSlotState>& states() const { return states_; }

 private:
  std::vector<RequestId> rids_;
  std::vector<FcSlotState> states_;
};

}  // namespace hovercraft

#endif  // SRC_R2P2_MESSAGES_H_
