#include "src/r2p2/packetizer.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/common/check.h"

namespace hovercraft {

std::vector<WirePacket> Fragment(const WireHeader& base, std::span<const uint8_t> body,
                                 size_t mtu_payload) {
  HC_CHECK_GT(mtu_payload, 0u);
  const size_t count = std::max<size_t>(1, (body.size() + mtu_payload - 1) / mtu_payload);
  HC_CHECK_LE(count, 0xFFFFu);
  std::vector<WirePacket> packets;
  packets.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t begin = i * mtu_payload;
    const size_t len = std::min(mtu_payload, body.size() - std::min(begin, body.size()));
    WireHeader h = base;
    h.packet_id = static_cast<uint16_t>(i);
    h.first = (i == 0);
    h.last = (i == count - 1);
    h.packet_count = static_cast<uint16_t>(count);
    WirePacket pkt(kWireHeaderBytes + len);
    EncodeWireHeader(h, pkt);
    if (len > 0) {
      std::copy_n(body.data() + begin, len, pkt.data() + kWireHeaderBytes);
    }
    packets.push_back(std::move(pkt));
  }
  return packets;
}

void Fragment(BufPool& pool, const WireHeader& base, std::span<const uint8_t> ext,
              std::span<const uint8_t> body, size_t mtu_payload, std::vector<BufRef>& out) {
  HC_CHECK_GT(mtu_payload, 0u);
  out.clear();
  const size_t total = ext.size() + body.size();
  const size_t count = std::max<size_t>(1, (total + mtu_payload - 1) / mtu_payload);
  HC_CHECK_LE(count, 0xFFFFu);
  out.reserve(count);
  size_t offset = 0;  // logical offset into ext|body
  for (size_t i = 0; i < count; ++i) {
    const size_t len = std::min(mtu_payload, total - offset);
    WireHeader h = base;
    h.packet_id = static_cast<uint16_t>(i);
    h.first = (i == 0);
    h.last = (i == count - 1);
    h.packet_count = static_cast<uint16_t>(count);
    BufRef frame = pool.Allocate(kWireHeaderBytes + len);
    EncodeWireHeader(h, frame.writable());
    // Gather from the two logical segments straight into the frame: no
    // intermediate ext+body concatenation is ever materialized.
    uint8_t* dst = frame.data() + kWireHeaderBytes;
    size_t copied = 0;
    while (copied < len) {
      const size_t pos = offset + copied;
      if (pos < ext.size()) {
        const size_t n = std::min(len - copied, ext.size() - pos);
        std::memcpy(dst + copied, ext.data() + pos, n);
        copied += n;
      } else {
        const size_t n = len - copied;
        std::memcpy(dst + copied, body.data() + (pos - ext.size()), n);
        copied += n;
      }
    }
    frame.set_size(static_cast<uint32_t>(kWireHeaderBytes + len));
    out.push_back(std::move(frame));
    offset += len;
  }
}

// ---------------------------------------------------------------------------
// Reassembler
// ---------------------------------------------------------------------------

bool Reassembler::Partial::TestFragment(uint16_t id) const {
  const size_t word = id / 64;
  const uint64_t bit = uint64_t{1} << (id % 64);
  if (word < 4) {
    return (bitmap[word] & bit) != 0;
  }
  const size_t spill = word - 4;
  return spill < bitmap_spill.size() && (bitmap_spill[spill] & bit) != 0;
}

void Reassembler::Partial::SetFragment(uint16_t id) {
  const size_t word = id / 64;
  const uint64_t bit = uint64_t{1} << (id % 64);
  if (word < 4) {
    bitmap[word] |= bit;
    return;
  }
  const size_t spill = word - 4;
  if (spill >= bitmap_spill.size()) {
    bitmap_spill.resize(spill + 1, 0);
  }
  bitmap_spill[spill] |= bit;
}

bool Reassembler::Partial::HasFragmentAtOrAbove(uint16_t id) const {
  const size_t first_word = id / 64;
  const uint64_t head_mask = ~uint64_t{0} << (id % 64);
  for (size_t w = first_word; w < 4; ++w) {
    const uint64_t mask = w == first_word ? head_mask : ~uint64_t{0};
    if ((bitmap[w] & mask) != 0) {
      return true;
    }
  }
  for (size_t s = 0; s < bitmap_spill.size(); ++s) {
    const size_t w = s + 4;
    if (w < first_word) {
      continue;
    }
    const uint64_t mask = w == first_word ? head_mask : ~uint64_t{0};
    if ((bitmap_spill[s] & mask) != 0) {
      return true;
    }
  }
  return false;
}

void Reassembler::Partial::Reset() {
  first_header = WireHeader();
  key = Key{};
  older = newer = nullptr;
  created = 0;
  buf.reset();
  buf_used = 0;
  frag_size = 0;
  expected = 0;
  received = 0;
  have_first = false;
  have_last = false;
  last_id = 0;
  last_len = 0;
  std::fill(std::begin(bitmap), std::end(bitmap), 0);
  bitmap_spill.clear();
  staged_last.clear();
  staged_last_valid = false;
}

Reassembler::Reassembler(BufPool* pool) {
  if (pool == nullptr) {
    owned_pool_ = std::make_unique<BufPool>();
    pool_ = owned_pool_.get();
  } else {
    pool_ = pool;
  }
  // Reserve buckets up front so steady-state insert/extract churn through
  // the recycled-node free list never reallocates the bucket array.
  pending_.reserve(64);
}

Reassembler::~Reassembler() = default;

Result<bool> Reassembler::Feed(std::span<const uint8_t> packet, TimeNs now) {
  return FeedInternal(packet, nullptr, now);
}

Result<bool> Reassembler::Feed(const BufRef& frame, TimeNs now) {
  return FeedInternal(frame.bytes(), &frame, now);
}

Result<bool> Reassembler::FeedInternal(std::span<const uint8_t> packet, const BufRef* frame,
                                       TimeNs now) {
  Result<WireHeader> header = DecodeWireHeader(packet);
  if (!header.ok()) {
    return header.status();
  }
  const WireHeader& h = header.value();
  const std::span<const uint8_t> payload = packet.subspan(kWireHeaderBytes);

  if (h.first && h.packet_count == 0) {
    return InvalidArgumentError("FIRST fragment declares zero packets");
  }
  if (h.first && h.packet_id != 0) {
    return InvalidArgumentError("FIRST flag on nonzero fragment index");
  }
  const Key key{h.src_ip, h.src_port, h.req_id, static_cast<uint8_t>(h.type)};
  if (h.first && h.last) {
    if (h.packet_count != 1) {
      return InvalidArgumentError("FIRST|LAST fragment with packet_count != 1");
    }
    // A single-fragment message supersedes any partial buffered under the
    // same key (fragments of an earlier multi-fragment attempt): drop it so
    // later retransmits cannot combine into a spurious duplicate completion.
    // The empty() guard keeps the steady-state fast path free of hashing.
    if (!pending_.empty()) {
      auto stale = pending_.find(key);
      if (stale != pending_.end()) {
        Erase(stale);
      }
    }
    // Single-fragment fast path: never inserts into the pending map. Fed as
    // a pooled frame, the body is a refcounted slice of the frame itself
    // (zero memcpy); fed as a raw span, it is copied once into a pooled
    // buffer so the completed body is pool-backed either way.
    completed_.header = h;
    if (frame != nullptr) {
      completed_.body = Body::FromBuffer(*frame, kWireHeaderBytes, payload.size());
    } else {
      BufRef buf = pool_->Allocate(payload.size());
      if (!payload.empty()) {
        std::memcpy(buf.data(), payload.data(), payload.size());
      }
      buf.set_size(static_cast<uint32_t>(payload.size()));
      completed_.body = Body::FromBuffer(std::move(buf), 0, payload.size());
    }
    has_completed_ = true;
    return true;
  }
  if (!h.first && h.last && h.packet_id == 0) {
    return InvalidArgumentError("LAST fragment at index 0 missing FIRST flag");
  }

  auto it = pending_.find(key);
  if (it == pending_.end()) {
    it = Insert(key, now);
  }
  Partial& p = it->second;

  // Duplicate fragments are ignored. (This also catches a re-sent FIRST, so
  // past this point h.first implies the message identity is still fresh.)
  if (p.TestFragment(h.packet_id)) {
    return false;
  }
  if (h.last && p.have_last && h.packet_id != p.last_id) {
    return InvalidArgumentError("conflicting LAST fragments");
  }
  const uint16_t expected = p.expected != 0 ? p.expected : (h.first ? h.packet_count : 0);
  if (expected != 0) {
    if (h.packet_id >= expected) {
      return InvalidArgumentError("fragment index out of range");
    }
    if (h.last && h.packet_id != expected - 1) {
      return InvalidArgumentError("LAST flag on non-final fragment");
    }
    if (!h.last && h.packet_id == expected - 1) {
      return InvalidArgumentError("final fragment missing LAST flag");
    }
  }
  if (!h.last) {
    // Every non-final fragment carries exactly frag_size payload bytes; the
    // first one to arrive establishes it.
    if (payload.empty()) {
      return InvalidArgumentError("empty non-final fragment");
    }
    if (p.frag_size != 0 && payload.size() != p.frag_size) {
      return InvalidArgumentError("fragment size mismatch");
    }
  } else if (p.frag_size != 0 && payload.size() > p.frag_size) {
    return InvalidArgumentError("oversized final fragment");
  }
  if (h.first) {
    // FIRST just established the fragment count. Fragments that arrived
    // before it bypassed the range check above, so their bits (and received
    // counts) could otherwise complete a message with real fragments absent.
    // Any of them at or beyond the count — or a LAST anywhere but the final
    // index — means the buffered state is corrupt; drop all of it so a clean
    // retransmission round can rebuild the message.
    if (p.HasFragmentAtOrAbove(h.packet_count) ||
        (p.have_last && p.last_id != h.packet_count - 1)) {
      Erase(it);
      return InvalidArgumentError("pre-FIRST fragment inconsistent with packet count");
    }
  }

  // All validation passed: commit this fragment.
  p.SetFragment(h.packet_id);
  ++p.received;
  if (h.first) {
    p.have_first = true;
    p.first_header = h;
    p.expected = h.packet_count;
  }
  if (h.last) {
    p.have_last = true;
    p.last_id = h.packet_id;
    p.last_len = static_cast<uint32_t>(payload.size());
    if (p.frag_size == 0) {
      // Cold corner: the LAST fragment arrived before any full-size fragment
      // fixed the per-fragment stride, so its offset is still unknown. Stage
      // a copy; it is placed when the stride is established below.
      p.staged_last.assign(payload.begin(), payload.end());
      p.staged_last_valid = true;
    }
  }
  if (!h.last && p.frag_size == 0) {
    p.frag_size = static_cast<uint32_t>(payload.size());
    if (p.staged_last_valid && p.last_len > p.frag_size) {
      Erase(it);
      return InvalidArgumentError("oversized final fragment");
    }
  }
  if (p.frag_size != 0) {
    const size_t stride = p.frag_size;
    if (!h.last || !p.staged_last_valid) {
      const size_t offset = static_cast<size_t>(h.packet_id) * stride;
      const size_t needed = p.expected != 0 ? static_cast<size_t>(p.expected) * stride
                                            : offset + payload.size();
      EnsureCapacity(p, needed);
      if (!payload.empty()) {
        std::memcpy(p.buf.data() + offset, payload.data(), payload.size());
        p.buf_used = std::max(p.buf_used, static_cast<uint32_t>(offset + payload.size()));
      }
    }
    if (p.staged_last_valid) {
      const size_t offset = static_cast<size_t>(p.last_id) * stride;
      const size_t needed = p.expected != 0 ? static_cast<size_t>(p.expected) * stride
                                            : offset + p.staged_last.size();
      EnsureCapacity(p, needed);
      if (!p.staged_last.empty()) {
        std::memcpy(p.buf.data() + offset, p.staged_last.data(), p.staged_last.size());
        p.buf_used = std::max(p.buf_used, static_cast<uint32_t>(offset + p.staged_last.size()));
      }
      p.staged_last.clear();
      p.staged_last_valid = false;
    }
  }

  if (!p.have_first || !p.have_last || p.received < p.expected) {
    return false;
  }
  // Complete: the body is a refcounted slice of the single assembly buffer.
  const size_t body_len =
      static_cast<size_t>(p.expected - 1) * p.frag_size + p.last_len;
  if (!p.buf) {
    EnsureCapacity(p, body_len);
  }
  p.buf.set_size(static_cast<uint32_t>(body_len));
  completed_.header = p.first_header;
  completed_.body = Body::FromBuffer(p.buf, 0, body_len);
  has_completed_ = true;
  Erase(it);
  return true;
}

Reassembler::Map::iterator Reassembler::Insert(const Key& key, TimeNs now) {
  Map::iterator it;
  if (!free_nodes_.empty()) {
    auto node = std::move(free_nodes_.back());
    free_nodes_.pop_back();
    node.key() = key;
    it = pending_.insert(std::move(node)).position;
  } else {
    it = pending_.try_emplace(key).first;
  }
  Partial& p = it->second;
  p.key = key;
  p.created = now;
  p.older = newest_;
  p.newer = nullptr;
  if (newest_ != nullptr) {
    newest_->newer = &p;
  } else {
    oldest_ = &p;
  }
  newest_ = &p;
  return it;
}

void Reassembler::EnsureCapacity(Partial& partial, size_t needed) {
  if (!partial.buf) {
    partial.buf = pool_->Allocate(needed);
    return;
  }
  if (partial.buf.capacity() >= needed) {
    return;
  }
  // Cold path: fragments arrived before FIRST fixed the total, and a later
  // index outgrew the initial guess. Copy into a bigger pooled buffer — only
  // the bytes actually written, never the recycled slack beyond them.
  BufRef grown = pool_->Allocate(needed);
  if (partial.buf_used > 0) {
    std::memcpy(grown.data(), partial.buf.data(), partial.buf_used);
  }
  partial.buf = std::move(grown);
}

void Reassembler::Unlink(Partial& partial) {
  if (partial.older != nullptr) {
    partial.older->newer = partial.newer;
  }
  if (partial.newer != nullptr) {
    partial.newer->older = partial.older;
  }
  if (oldest_ == &partial) {
    oldest_ = partial.newer;
  }
  if (newest_ == &partial) {
    newest_ = partial.older;
  }
  partial.older = partial.newer = nullptr;
}

void Reassembler::Erase(Map::iterator it) {
  Unlink(it->second);
  auto node = pending_.extract(it);
  node.mapped().Reset();
  free_nodes_.push_back(std::move(node));
}

Reassembler::Complete Reassembler::TakeCompleted() {
  HC_CHECK(has_completed_);
  has_completed_ = false;
  Complete out = std::move(completed_);
  completed_ = Complete();
  return out;
}

size_t Reassembler::GarbageCollect(TimeNs now, TimeNs age) {
  size_t dropped = 0;
  while (oldest_ != nullptr && now - oldest_->created >= age) {
    auto it = pending_.find(oldest_->key);
    HC_CHECK(it != pending_.end());
    Erase(it);
    ++dropped;
  }
  return dropped;
}

}  // namespace hovercraft
