#include "src/r2p2/packetizer.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace hovercraft {

std::vector<WirePacket> Fragment(const WireHeader& base, std::span<const uint8_t> body,
                                 size_t mtu_payload) {
  HC_CHECK_GT(mtu_payload, 0u);
  const size_t count = std::max<size_t>(1, (body.size() + mtu_payload - 1) / mtu_payload);
  HC_CHECK_LE(count, 0xFFFFu);
  std::vector<WirePacket> packets;
  packets.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t begin = i * mtu_payload;
    const size_t len = std::min(mtu_payload, body.size() - std::min(begin, body.size()));
    WireHeader h = base;
    h.packet_id = static_cast<uint16_t>(i);
    h.first = (i == 0);
    h.last = (i == count - 1);
    h.packet_count = static_cast<uint16_t>(count);
    WirePacket pkt(kWireHeaderBytes + len);
    EncodeWireHeader(h, pkt);
    if (len > 0) {
      std::copy_n(body.data() + begin, len, pkt.data() + kWireHeaderBytes);
    }
    packets.push_back(std::move(pkt));
  }
  return packets;
}

Result<bool> Reassembler::Feed(std::span<const uint8_t> packet, TimeNs now) {
  Result<WireHeader> header = DecodeWireHeader(packet);
  if (!header.ok()) {
    return header.status();
  }
  const WireHeader& h = header.value();
  std::span<const uint8_t> payload = packet.subspan(kWireHeaderBytes);

  const Key key{h.src_ip, h.src_port, h.req_id, static_cast<uint8_t>(h.type)};
  Partial& partial = pending_[key];
  if (partial.fragments.empty()) {
    partial.created = now;
  }
  if (h.first) {
    partial.have_first = true;
    partial.first_header = h;
    partial.expected = h.packet_count;
  }
  if (partial.expected != 0 && h.packet_id >= partial.expected) {
    return InvalidArgumentError("fragment index out of range");
  }
  // Duplicate fragments are ignored.
  partial.fragments.emplace(h.packet_id, std::vector<uint8_t>(payload.begin(), payload.end()));

  if (!partial.have_first || partial.fragments.size() < partial.expected) {
    return false;
  }
  // Assemble in fragment order.
  Complete out;
  out.header = partial.first_header;
  for (uint16_t i = 0; i < partial.expected; ++i) {
    auto it = partial.fragments.find(i);
    HC_CHECK(it != partial.fragments.end());
    out.body.insert(out.body.end(), it->second.begin(), it->second.end());
  }
  pending_.erase(key);
  completed_ = std::move(out);
  has_completed_ = true;
  return true;
}

Reassembler::Complete Reassembler::TakeCompleted() {
  HC_CHECK(has_completed_);
  has_completed_ = false;
  return std::move(completed_);
}

size_t Reassembler::GarbageCollect(TimeNs now, TimeNs age) {
  size_t dropped = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->second.created >= age) {
      it = pending_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace hovercraft
