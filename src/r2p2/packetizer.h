// Fragmentation and reassembly of R2P2 messages across MTU-sized packets.
//
// R2P2 sends a message as a REQ0 packet (header + first payload slice)
// followed by REQN packets. The reassembler tolerates out-of-order and
// duplicated fragments, and garbage-collects incomplete messages after a
// timeout — the behaviour HovercRaft's multicast recovery relies on.
#ifndef SRC_R2P2_PACKETIZER_H_
#define SRC_R2P2_PACKETIZER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/r2p2/wire.h"

namespace hovercraft {

// One wire packet: 16-byte header followed by a payload slice.
using WirePacket = std::vector<uint8_t>;

// Splits `body` into packets of at most `mtu_payload` payload bytes each.
// A zero-length body still yields one (FIRST|LAST) packet.
std::vector<WirePacket> Fragment(const WireHeader& base, std::span<const uint8_t> body,
                                 size_t mtu_payload);

class Reassembler {
 public:
  struct Complete {
    WireHeader header;  // header of the FIRST fragment
    std::vector<uint8_t> body;
  };

  // Feeds one packet. Returns a Complete message when the last missing
  // fragment arrives, kOk-with-nothing (nullopt-like empty result signalled
  // via has_value) otherwise, or an error for malformed input.
  Result<bool> Feed(std::span<const uint8_t> packet, TimeNs now);

  // Retrieves and removes the completed message, if Feed returned true.
  Complete TakeCompleted();

  // Drops partial messages older than `age`. Returns how many were dropped.
  size_t GarbageCollect(TimeNs now, TimeNs age);

  size_t pending() const { return pending_.size(); }

 private:
  struct Key {
    uint32_t src_ip;
    uint16_t src_port;
    uint16_t req_id;
    uint8_t type;
    friend bool operator==(const Key& a, const Key& b) {
      return a.src_ip == b.src_ip && a.src_port == b.src_port && a.req_id == b.req_id &&
             a.type == b.type;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t x = (static_cast<uint64_t>(k.src_ip) << 32) |
                   (static_cast<uint64_t>(k.src_port) << 16) | k.req_id;
      x ^= static_cast<uint64_t>(k.type) << 56;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      return static_cast<size_t>(x ^ (x >> 31));
    }
  };
  struct Partial {
    WireHeader first_header;
    bool have_first = false;
    uint16_t expected = 0;  // 0 = unknown until FIRST arrives
    std::unordered_map<uint16_t, std::vector<uint8_t>> fragments;
    TimeNs created = 0;
  };

  std::unordered_map<Key, Partial, KeyHash> pending_;
  bool has_completed_ = false;
  Complete completed_;
};

}  // namespace hovercraft

#endif  // SRC_R2P2_PACKETIZER_H_
