// Fragmentation and reassembly of R2P2 messages across MTU-sized packets.
//
// R2P2 sends a message as a REQ0 packet (header + first payload slice)
// followed by REQN packets. The reassembler tolerates out-of-order and
// duplicated fragments, and garbage-collects incomplete messages after a
// timeout — the behaviour HovercRaft's multicast recovery relies on.
//
// The fast path is zero-copy and allocation-free in steady state: Fragment
// writes header + payload in place into slab-pooled frames, the reassembler
// assembles into a single pooled buffer tracked by a fragment bitmap (a
// single-fragment frame fed as a BufRef completes with zero memcpy), and the
// completed body is a refcounted slice of that buffer. Partial-message map
// nodes are recycled through a free list, and garbage collection walks a
// creation-ordered list so it only ever touches the expired prefix.
#ifndef SRC_R2P2_PACKETIZER_H_
#define SRC_R2P2_PACKETIZER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/buf_pool.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/r2p2/messages.h"
#include "src/r2p2/wire.h"

namespace hovercraft {

// One wire packet in the legacy copying representation: 16-byte header
// followed by a payload slice. Kept for conformance tests; the zero-copy
// path hands around pooled BufRef frames instead.
using WirePacket = std::vector<uint8_t>;

// Splits `body` into packets of at most `mtu_payload` payload bytes each.
// A zero-length body still yields one (FIRST|LAST) packet.
std::vector<WirePacket> Fragment(const WireHeader& base, std::span<const uint8_t> body,
                                 size_t mtu_payload);

// Zero-copy form: writes header + payload in place into pooled frames drawn
// from `pool`, appending to `out` (cleared first; its capacity is reused, so
// steady state allocates nothing). The payload is the concatenation of `ext`
// and `body` — serdes uses the extension span for the request prefix without
// materializing an intermediate buffer.
void Fragment(BufPool& pool, const WireHeader& base, std::span<const uint8_t> ext,
              std::span<const uint8_t> body, size_t mtu_payload, std::vector<BufRef>& out);
inline void Fragment(BufPool& pool, const WireHeader& base, std::span<const uint8_t> body,
                     size_t mtu_payload, std::vector<BufRef>& out) {
  Fragment(pool, base, {}, body, mtu_payload, out);
}

class Reassembler {
 public:
  // Frames assemble into buffers drawn from `pool`; with the default, the
  // reassembler owns a private pool. Completed bodies are refcounted slices
  // of those buffers, so the pool (and therefore a reassembler-owned pool)
  // must outlive every escaped body — pass an external pool when bodies
  // outlive the reassembler.
  explicit Reassembler(BufPool* pool = nullptr);
  ~Reassembler();
  Reassembler(const Reassembler&) = delete;
  Reassembler& operator=(const Reassembler&) = delete;

  struct Complete {
    WireHeader header;  // header of the FIRST fragment
    Body body;          // refcounted slice of the assembled buffer
  };

  // Feeds one packet. Returns a Complete message when the last missing
  // fragment arrives, kOk-with-nothing (nullopt-like empty result signalled
  // via has_value) otherwise, or an error for malformed input.
  Result<bool> Feed(std::span<const uint8_t> packet, TimeNs now);
  // Zero-copy variant: a single-fragment frame completes as a slice of
  // `frame` itself, with no memcpy.
  Result<bool> Feed(const BufRef& frame, TimeNs now);

  // Retrieves and removes the completed message, if Feed returned true.
  Complete TakeCompleted();

  // Drops partial messages older than `age`. Returns how many were dropped.
  // Walks the creation-ordered list from the oldest entry and stops at the
  // first young one: completed (already-erased) entries are never scanned.
  size_t GarbageCollect(TimeNs now, TimeNs age);

  size_t pending() const { return pending_.size(); }
  BufPool& pool() { return *pool_; }

 private:
  struct Key {
    uint32_t src_ip;
    uint16_t src_port;
    uint16_t req_id;
    uint8_t type;
    friend bool operator==(const Key& a, const Key& b) {
      return a.src_ip == b.src_ip && a.src_port == b.src_port && a.req_id == b.req_id &&
             a.type == b.type;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t x = (static_cast<uint64_t>(k.src_ip) << 32) |
                   (static_cast<uint64_t>(k.src_port) << 16) | k.req_id;
      x ^= static_cast<uint64_t>(k.type) << 56;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      return static_cast<size_t>(x ^ (x >> 31));
    }
  };
  struct Partial {
    WireHeader first_header;
    Key key{};                     // self key, for O(1) erase from the GC list
    Partial* older = nullptr;      // creation-ordered intrusive list
    Partial* newer = nullptr;
    TimeNs created = 0;
    BufRef buf;                    // single assembly buffer
    uint32_t buf_used = 0;         // high-water mark of bytes written to buf
    uint32_t frag_size = 0;        // payload bytes of each non-final fragment
    uint16_t expected = 0;         // packet_count from FIRST; 0 until seen
    uint16_t received = 0;         // distinct fragments placed
    bool have_first = false;
    bool have_last = false;
    uint16_t last_id = 0;
    uint32_t last_len = 0;
    uint64_t bitmap[4] = {};             // fragment-received bits, ids < 256
    std::vector<uint64_t> bitmap_spill;  // ids >= 256 (jumbo messages)
    std::vector<uint8_t> staged_last;    // LAST payload seen before frag_size known
    bool staged_last_valid = false;

    bool TestFragment(uint16_t id) const;
    void SetFragment(uint16_t id);
    // True if any received-fragment bit at index >= id is set.
    bool HasFragmentAtOrAbove(uint16_t id) const;
    void Reset();
  };
  using Map = std::unordered_map<Key, Partial, KeyHash>;

  Result<bool> FeedInternal(std::span<const uint8_t> packet, const BufRef* frame, TimeNs now);
  Map::iterator Insert(const Key& key, TimeNs now);
  void EnsureCapacity(Partial& partial, size_t needed);
  void Erase(Map::iterator it);
  void Unlink(Partial& partial);

  // Owned fallback pool; declared before every member that can hold BufRefs
  // so it is destroyed after them (the pool's leak check runs last).
  std::unique_ptr<BufPool> owned_pool_;
  BufPool* pool_ = nullptr;
  Map pending_;
  // Recycled map nodes: erase extracts onto this free list, insertion reuses
  // it, so steady-state feed/complete churn performs no allocations.
  std::vector<Map::node_type> free_nodes_;
  // Creation-ordered GC list (oldest first) threaded through the map nodes.
  Partial* oldest_ = nullptr;
  Partial* newest_ = nullptr;
  bool has_completed_ = false;
  Complete completed_;
};

}  // namespace hovercraft

#endif  // SRC_R2P2_PACKETIZER_H_
