// R2P2 identifies an RPC by the (req_id, src_port, src_ip) 3-tuple set by the
// client (paper section 3.2). In the simulator the client host id plays the
// role of (src_ip, src_port) and a per-client sequence number the role of
// req_id; the wire codec in src/r2p2/wire.h maps these onto the packed
// header fields.
#ifndef SRC_R2P2_REQUEST_ID_H_
#define SRC_R2P2_REQUEST_ID_H_

#include <cstdint>
#include <functional>

#include "src/common/types.h"

namespace hovercraft {

struct RequestId {
  HostId client = kInvalidHost;
  uint64_t seq = 0;

  friend bool operator==(const RequestId& a, const RequestId& b) {
    return a.client == b.client && a.seq == b.seq;
  }
  friend bool operator!=(const RequestId& a, const RequestId& b) { return !(a == b); }
};

struct RequestIdHash {
  size_t operator()(const RequestId& rid) const {
    // Mix the two fields; splitmix64 finalizer.
    uint64_t x = static_cast<uint64_t>(rid.client) * 0x9E3779B97F4A7C15ull + rid.seq;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

}  // namespace hovercraft

#endif  // SRC_R2P2_REQUEST_ID_H_
