#include "src/r2p2/router.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/r2p2/messages.h"

namespace hovercraft {

R2p2Router::R2p2Router(Simulator* sim, const CostModel& costs, std::vector<HostId> servers,
                       RouterPolicy policy, int64_t queue_bound, uint64_t seed)
    : Host(sim, costs, Kind::kDevice),
      servers_(std::move(servers)),
      policy_(policy),
      queue_bound_(queue_bound),
      rng_(seed),
      outstanding_(servers_.size(), 0) {
  HC_CHECK(!servers_.empty());
  HC_CHECK_GT(queue_bound, 0);
}

int32_t R2p2Router::PickServer() {
  if (policy_ == RouterPolicy::kRandom) {
    return static_cast<int32_t>(rng_.NextBelow(servers_.size()));
  }
  int32_t best = -1;
  int64_t best_outstanding = queue_bound_;
  int32_t ties = 0;
  for (size_t s = 0; s < servers_.size(); ++s) {
    const int64_t out = outstanding_[s];
    if (out >= queue_bound_) {
      continue;
    }
    if (best == -1 || out < best_outstanding) {
      best = static_cast<int32_t>(s);
      best_outstanding = out;
      ties = 1;
    } else if (out == best_outstanding) {
      ++ties;
      if (rng_.NextBelow(static_cast<uint64_t>(ties)) == 0) {
        best = static_cast<int32_t>(s);
      }
    }
  }
  return best;
}

void R2p2Router::Dispatch(const MessagePtr& msg, int32_t server) {
  ++outstanding_[static_cast<size_t>(server)];
  ++stats_.forwarded;
  Send(servers_[static_cast<size_t>(server)], msg);
}

void R2p2Router::HandleMessage(HostId src, const MessagePtr& msg) {
  if (const auto* req = dynamic_cast<const RpcRequest*>(msg.get())) {
    if (shard_gate_ && IsDataSlot(req->shard_slot())) {
      const uint64_t epoch = shard_gate_(req->shard_slot());
      if (epoch != 0) {
        ++stats_.wrong_shard_nacked;
        Send(src, std::make_shared<WrongShardNack>(req->rid(), epoch));
        return;
      }
    }
    const int32_t server = PickServer();
    if (server < 0) {
      // Every bounded queue is full: hold centrally, in arrival order —
      // the late-binding that makes JBSQ approach a single queue.
      ++stats_.held_central;
      central_.push_back(msg);
      stats_.central_queue_peak = std::max(stats_.central_queue_peak, central_.size());
      return;
    }
    Dispatch(msg, server);
    return;
  }
  if (dynamic_cast<const FeedbackMsg*>(msg.get()) != nullptr) {
    // A server finished one request; its slot frees and, under JBSQ, the
    // oldest centrally-held request binds to it.
    for (size_t s = 0; s < servers_.size(); ++s) {
      if (servers_[s] == src) {
        if (outstanding_[s] > 0) {
          --outstanding_[s];
        }
        if (!central_.empty() && outstanding_[s] < queue_bound_) {
          MessagePtr next = central_.front();
          central_.pop_front();
          Dispatch(next, static_cast<int32_t>(s));
        }
        return;
      }
    }
    return;
  }
  HC_LOG_WARN("r2p2 router: unexpected message %s", msg->Name());
}

}  // namespace hovercraft
