// The R2P2 request router (Kogias et al., USENIX ATC'19) — the in-network
// JBSQ(n) load balancer HovercRaft builds on (paper sections 2.3, 3.4, 3.6)
// and the path non-replicated traffic takes across stateless servers.
//
// Join-Bounded-Shortest-Queue splits queueing between one central queue in
// the router and a bounded queue per server: requests are delegated to the
// least-loaded eligible server, and held centrally when every server is at
// its bound, approximating an ideal single-queue system. Servers return an
// R2P2 FEEDBACK message per completed request to release a slot.
#ifndef SRC_R2P2_ROUTER_H_
#define SRC_R2P2_ROUTER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/net/host.h"
#include "src/net/packet.h"
#include "src/r2p2/shard.h"

namespace hovercraft {

enum class RouterPolicy {
  kRandom,  // uniform among servers, no queue bound (classic L4 spraying)
  kJbsq,    // Join-Bounded-Shortest-Queue with FEEDBACK-driven slots
};

class R2p2Router final : public Host {
 public:
  R2p2Router(Simulator* sim, const CostModel& costs, std::vector<HostId> servers,
             RouterPolicy policy, int64_t queue_bound, uint64_t seed);

  void HandleMessage(HostId src, const MessagePtr& msg) override;

  // Sharding (src/shard): consulted before queueing for data slots. Returns
  // 0 when this router's group serves the slot, else the ShardMap epoch the
  // refusal is based on; the request is answered with NACK_WRONG_SHARD and
  // never queued, so redirects cannot occupy JBSQ slots.
  using ShardGateFn = std::function<uint64_t(uint32_t slot)>;
  void set_shard_gate(ShardGateFn gate) { shard_gate_ = std::move(gate); }

  struct RouterStats {
    uint64_t forwarded = 0;
    uint64_t held_central = 0;  // requests that waited in the central queue
    uint64_t wrong_shard_nacked = 0;
    size_t central_queue_peak = 0;
  };
  const RouterStats& router_stats() const { return stats_; }
  int64_t OutstandingOf(size_t server) const { return outstanding_[server]; }
  size_t central_queue_depth() const { return central_.size(); }

 private:
  // Picks the eligible server with the shortest bounded queue, or -1.
  int32_t PickServer();
  void Dispatch(const MessagePtr& msg, int32_t server);

  std::vector<HostId> servers_;
  RouterPolicy policy_;
  int64_t queue_bound_;
  ShardGateFn shard_gate_;
  Rng rng_;
  std::vector<int64_t> outstanding_;
  std::deque<MessagePtr> central_;
  RouterStats stats_;
};

}  // namespace hovercraft

#endif  // SRC_R2P2_ROUTER_H_
