#include "src/r2p2/serdes.h"

#include <utility>

#include "src/common/check.h"

namespace hovercraft {
namespace {

// seq is split across req_id (low 16 bits are the wire-visible id, as in
// real R2P2) and src_port (next 16 bits) so moderate wraps stay unambiguous.
constexpr uint64_t kSeqLowMask = 0xFFFFull;

std::vector<WirePacket> SerializeBody(const WireHeader& header, const Body& body,
                                      size_t mtu_payload) {
  const std::span<const uint8_t> bytes =
      body == nullptr ? std::span<const uint8_t>() : body->bytes();
  return Fragment(header, bytes, mtu_payload);
}

void EncodeRequestExtension(const RpcRequest& request,
                            uint8_t (&ext)[kRequestExtensionBytes]) {
  for (size_t i = 0; i < 4; ++i) {
    ext[i] = static_cast<uint8_t>(request.attempt() >> (8 * i));
  }
  for (size_t i = 0; i < 8; ++i) {
    ext[4 + i] = static_cast<uint8_t>(request.ack_watermark() >> (8 * i));
  }
  for (size_t i = 0; i < 4; ++i) {
    ext[12 + i] = static_cast<uint8_t>(request.shard_slot() >> (8 * i));
  }
}

}  // namespace

WireHeader HeaderForRequest(const RequestId& rid, R2p2Policy policy, WireType type) {
  WireHeader h;
  h.type = type;
  h.policy = static_cast<uint8_t>(policy);
  h.req_id = static_cast<uint16_t>(rid.seq & kSeqLowMask);
  h.src_port = static_cast<uint16_t>((rid.seq >> 16) & kSeqLowMask);
  h.src_ip = static_cast<uint32_t>(rid.client);
  return h;
}

RequestId RequestIdFromHeader(const WireHeader& header) {
  RequestId rid;
  rid.client = static_cast<HostId>(header.src_ip);
  rid.seq = (static_cast<uint64_t>(header.src_port) << 16) | header.req_id;
  return rid;
}

std::vector<WirePacket> SerializeRequest(const RpcRequest& request, size_t mtu_payload) {
  const WireHeader h = HeaderForRequest(request.rid(), request.policy(), WireType::kRequest);
  // Requests carry a fixed extension ahead of the application body: the
  // attempt counter and the client's acknowledged-sequence watermark (the
  // retransmission / session-GC fields, see RpcRequest). Symmetric with the
  // strip in DecodeR2p2View.
  std::vector<uint8_t> framed(kRequestExtensionBytes);
  for (size_t i = 0; i < 4; ++i) {
    framed[i] = static_cast<uint8_t>(request.attempt() >> (8 * i));
  }
  for (size_t i = 0; i < 8; ++i) {
    framed[4 + i] = static_cast<uint8_t>(request.ack_watermark() >> (8 * i));
  }
  for (size_t i = 0; i < 4; ++i) {
    framed[12 + i] = static_cast<uint8_t>(request.shard_slot() >> (8 * i));
  }
  if (request.body() != nullptr) {
    framed.insert(framed.end(), request.body()->begin(), request.body()->end());
  }
  return Fragment(h, framed, mtu_payload);
}

std::vector<WirePacket> SerializeResponse(const RpcResponse& response, size_t mtu_payload) {
  const WireHeader h =
      HeaderForRequest(response.rid(), R2p2Policy::kUnrestricted, WireType::kResponse);
  return SerializeBody(h, response.body(), mtu_payload);
}

std::vector<WirePacket> SerializeFeedback(const FeedbackMsg& feedback) {
  const WireHeader h =
      HeaderForRequest(feedback.rid(), R2p2Policy::kUnrestricted, WireType::kFeedback);
  return SerializeBody(h, nullptr, kWireHeaderBytes);
}

std::vector<WirePacket> SerializeNack(const NackMsg& nack) {
  const WireHeader h = HeaderForRequest(nack.rid(), R2p2Policy::kUnrestricted, WireType::kNack);
  return SerializeBody(h, nullptr, kWireHeaderBytes);
}

void SerializeRequestInto(BufPool& pool, const RpcRequest& request, size_t mtu_payload,
                          std::vector<BufRef>& out) {
  const WireHeader h = HeaderForRequest(request.rid(), request.policy(), WireType::kRequest);
  uint8_t ext[kRequestExtensionBytes];
  EncodeRequestExtension(request, ext);
  const std::span<const uint8_t> body =
      request.body() == nullptr ? std::span<const uint8_t>() : request.body()->bytes();
  Fragment(pool, h, ext, body, mtu_payload, out);
}

void SerializeResponseInto(BufPool& pool, const RpcResponse& response, size_t mtu_payload,
                           std::vector<BufRef>& out) {
  const WireHeader h =
      HeaderForRequest(response.rid(), R2p2Policy::kUnrestricted, WireType::kResponse);
  const std::span<const uint8_t> body =
      response.body() == nullptr ? std::span<const uint8_t>() : response.body()->bytes();
  Fragment(pool, h, body, mtu_payload, out);
}

void SerializeFeedbackInto(BufPool& pool, const FeedbackMsg& feedback, std::vector<BufRef>& out) {
  const WireHeader h =
      HeaderForRequest(feedback.rid(), R2p2Policy::kUnrestricted, WireType::kFeedback);
  Fragment(pool, h, {}, kWireHeaderBytes, out);
}

void SerializeNackInto(BufPool& pool, const NackMsg& nack, std::vector<BufRef>& out) {
  const WireHeader h = HeaderForRequest(nack.rid(), R2p2Policy::kUnrestricted, WireType::kNack);
  Fragment(pool, h, {}, kWireHeaderBytes, out);
}

Result<R2p2MessageView> DecodeR2p2View(const Reassembler::Complete& complete) {
  R2p2MessageView out;
  out.type = complete.header.type;
  out.rid = RequestIdFromHeader(complete.header);
  switch (complete.header.type) {
    case WireType::kRequest: {
      if (complete.header.policy > static_cast<uint8_t>(R2p2Policy::kReplicatedReqRo)) {
        return InvalidArgumentError("bad policy on request");
      }
      if (complete.body.size() < kRequestExtensionBytes) {
        return InvalidArgumentError("request shorter than its fixed extension");
      }
      uint32_t attempt = 0;
      for (size_t i = 0; i < 4; ++i) {
        attempt |= static_cast<uint32_t>(complete.body[i]) << (8 * i);
      }
      uint64_t watermark = 0;
      for (size_t i = 0; i < 8; ++i) {
        watermark |= static_cast<uint64_t>(complete.body[4 + i]) << (8 * i);
      }
      uint32_t shard_slot = 0;
      for (size_t i = 0; i < 4; ++i) {
        shard_slot |= static_cast<uint32_t>(complete.body[12 + i]) << (8 * i);
      }
      if (attempt == 0) {
        return InvalidArgumentError("request attempt counter must start at 1");
      }
      out.policy = static_cast<R2p2Policy>(complete.header.policy);
      out.attempt = attempt;
      out.ack_watermark = watermark;
      out.shard_slot = shard_slot;
      // Zero-copy: the application body is a sub-slice of the arrival
      // buffer, sharing its refcount — the extension bytes are skipped by
      // offset, never stripped by copying.
      out.body = complete.body.Slice(kRequestExtensionBytes,
                                     complete.body.size() - kRequestExtensionBytes);
      return out;
    }
    case WireType::kResponse:
      out.body = complete.body;
      return out;
    case WireType::kFeedback:
    case WireType::kNack:
      return out;
    default:
      return InvalidArgumentError("unsupported wire type for R2P2 decode");
  }
}

Result<DecodedR2p2Message> DecodeR2p2Message(const Reassembler::Complete& complete) {
  Result<R2p2MessageView> view = DecodeR2p2View(complete);
  if (!view.ok()) {
    return view.status();
  }
  const R2p2MessageView& v = view.value();
  DecodedR2p2Message out;
  out.type = v.type;
  out.rid = v.rid;
  switch (v.type) {
    case WireType::kRequest:
      out.request = std::make_shared<RpcRequest>(v.rid, v.policy, v.body, v.attempt,
                                                 v.ack_watermark, v.shard_slot);
      return out;
    case WireType::kResponse:
      out.response = std::make_shared<RpcResponse>(v.rid, v.body);
      return out;
    default:
      return out;
  }
}

}  // namespace hovercraft
