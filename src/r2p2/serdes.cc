#include "src/r2p2/serdes.h"

#include <utility>

#include "src/common/check.h"

namespace hovercraft {
namespace {

// seq is split across req_id (low 16 bits are the wire-visible id, as in
// real R2P2) and src_port (next 16 bits) so moderate wraps stay unambiguous.
constexpr uint64_t kSeqLowMask = 0xFFFFull;

std::vector<WirePacket> SerializeBody(const WireHeader& header, const Body& body,
                                      size_t mtu_payload) {
  static const std::vector<uint8_t> kEmpty;
  const std::vector<uint8_t>& bytes = body == nullptr ? kEmpty : *body;
  return Fragment(header, bytes, mtu_payload);
}

}  // namespace

WireHeader HeaderForRequest(const RequestId& rid, R2p2Policy policy, WireType type) {
  WireHeader h;
  h.type = type;
  h.policy = static_cast<uint8_t>(policy);
  h.req_id = static_cast<uint16_t>(rid.seq & kSeqLowMask);
  h.src_port = static_cast<uint16_t>((rid.seq >> 16) & kSeqLowMask);
  h.src_ip = static_cast<uint32_t>(rid.client);
  return h;
}

RequestId RequestIdFromHeader(const WireHeader& header) {
  RequestId rid;
  rid.client = static_cast<HostId>(header.src_ip);
  rid.seq = (static_cast<uint64_t>(header.src_port) << 16) | header.req_id;
  return rid;
}

std::vector<WirePacket> SerializeRequest(const RpcRequest& request, size_t mtu_payload) {
  const WireHeader h = HeaderForRequest(request.rid(), request.policy(), WireType::kRequest);
  // Requests carry a fixed extension ahead of the application body: the
  // attempt counter and the client's acknowledged-sequence watermark (the
  // retransmission / session-GC fields, see RpcRequest). Symmetric with the
  // strip in DecodeR2p2Message.
  std::vector<uint8_t> framed(kRequestExtensionBytes);
  for (size_t i = 0; i < 4; ++i) {
    framed[i] = static_cast<uint8_t>(request.attempt() >> (8 * i));
  }
  for (size_t i = 0; i < 8; ++i) {
    framed[4 + i] = static_cast<uint8_t>(request.ack_watermark() >> (8 * i));
  }
  if (request.body() != nullptr) {
    framed.insert(framed.end(), request.body()->begin(), request.body()->end());
  }
  return Fragment(h, framed, mtu_payload);
}

std::vector<WirePacket> SerializeResponse(const RpcResponse& response, size_t mtu_payload) {
  const WireHeader h =
      HeaderForRequest(response.rid(), R2p2Policy::kUnrestricted, WireType::kResponse);
  return SerializeBody(h, response.body(), mtu_payload);
}

std::vector<WirePacket> SerializeFeedback(const FeedbackMsg& feedback) {
  const WireHeader h =
      HeaderForRequest(feedback.rid(), R2p2Policy::kUnrestricted, WireType::kFeedback);
  return SerializeBody(h, nullptr, kWireHeaderBytes);
}

std::vector<WirePacket> SerializeNack(const NackMsg& nack) {
  const WireHeader h = HeaderForRequest(nack.rid(), R2p2Policy::kUnrestricted, WireType::kNack);
  return SerializeBody(h, nullptr, kWireHeaderBytes);
}

Result<DecodedR2p2Message> DecodeR2p2Message(const Reassembler::Complete& complete) {
  DecodedR2p2Message out;
  out.type = complete.header.type;
  out.rid = RequestIdFromHeader(complete.header);
  switch (complete.header.type) {
    case WireType::kRequest: {
      if (complete.header.policy > static_cast<uint8_t>(R2p2Policy::kReplicatedReqRo)) {
        return InvalidArgumentError("bad policy on request");
      }
      if (complete.body.size() < kRequestExtensionBytes) {
        return InvalidArgumentError("request shorter than its fixed extension");
      }
      uint32_t attempt = 0;
      for (size_t i = 0; i < 4; ++i) {
        attempt |= static_cast<uint32_t>(complete.body[i]) << (8 * i);
      }
      uint64_t watermark = 0;
      for (size_t i = 0; i < 8; ++i) {
        watermark |= static_cast<uint64_t>(complete.body[4 + i]) << (8 * i);
      }
      if (attempt == 0) {
        return InvalidArgumentError("request attempt counter must start at 1");
      }
      out.request = std::make_shared<RpcRequest>(
          out.rid, static_cast<R2p2Policy>(complete.header.policy),
          MakeBody(std::vector<uint8_t>(complete.body.begin() + kRequestExtensionBytes,
                                        complete.body.end())),
          attempt, watermark);
      return out;
    }
    case WireType::kResponse: {
      out.response =
          std::make_shared<RpcResponse>(out.rid, MakeBody(std::vector<uint8_t>(complete.body)));
      return out;
    }
    case WireType::kFeedback:
    case WireType::kNack:
      return out;
    default:
      return InvalidArgumentError("unsupported wire type for R2P2 decode");
  }
}

}  // namespace hovercraft
