// Serialization of R2P2 messages onto wire packets.
//
// Maps the typed message objects the simulator carries onto the exact R2P2
// packet layout (16-byte header + MTU-sized fragments). This is the path a
// DPDK deployment would use verbatim; the simulator skips it on the hot path
// but conformance tests and microbenches exercise it end-to-end so the wire
// format stays honest.
//
// Two API tiers:
//  - the pooled/zero-copy tier (SerializeInto / DecodeR2p2View) writes frames
//    in place into slab-pooled buffers and decodes bodies as refcounted
//    slices of the arrival buffer — allocation-free in steady state;
//  - the legacy vector tier is kept as the copying conformance reference
//    (the two are asserted byte-identical by serdes_test).
#ifndef SRC_R2P2_SERDES_H_
#define SRC_R2P2_SERDES_H_

#include <memory>
#include <vector>

#include "src/common/buf_pool.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/r2p2/messages.h"
#include "src/r2p2/packetizer.h"
#include "src/r2p2/wire.h"

namespace hovercraft {

// The R2P2 identity fields (src_ip, src_port, req_id) pack the simulator's
// (client HostId, sequence number) identity. The 16-bit wire req_id wraps;
// receivers distinguish concurrent requests by the full 3-tuple, which is
// what the paper relies on (sections 3.2, 5).
WireHeader HeaderForRequest(const RequestId& rid, R2p2Policy policy, WireType type);
RequestId RequestIdFromHeader(const WireHeader& header);

// Every kRequest carries a fixed extension between the R2P2 header and the
// application body: attempt counter (u32) + client ack watermark (u64) +
// shard slot (u32, kNoShardSlot when unsharded). The 16-byte header has no
// spare fields, so the retransmission / session-GC / shard-routing state
// rides as the first bytes of the fragmented payload.
constexpr size_t kRequestExtensionBytes = 16;

// Fragments a client request / response / control message into wire packets
// (legacy copying tier).
std::vector<WirePacket> SerializeRequest(const RpcRequest& request, size_t mtu_payload);
std::vector<WirePacket> SerializeResponse(const RpcResponse& response, size_t mtu_payload);
std::vector<WirePacket> SerializeFeedback(const FeedbackMsg& feedback);
std::vector<WirePacket> SerializeNack(const NackMsg& nack);

// Zero-copy tier: header + extension + payload are written in place into
// pooled frames appended to `out` (cleared first, capacity reused). The
// request extension is gathered into the frame directly — no intermediate
// buffer is built.
void SerializeRequestInto(BufPool& pool, const RpcRequest& request, size_t mtu_payload,
                          std::vector<BufRef>& out);
void SerializeResponseInto(BufPool& pool, const RpcResponse& response, size_t mtu_payload,
                           std::vector<BufRef>& out);
void SerializeFeedbackInto(BufPool& pool, const FeedbackMsg& feedback, std::vector<BufRef>& out);
void SerializeNackInto(BufPool& pool, const NackMsg& nack, std::vector<BufRef>& out);

// Zero-allocation decode: a plain value struct whose body is a refcounted
// slice of the reassembled arrival buffer (no copy, no shared_ptr control
// block). The slice pins the underlying pooled buffer; the pool must outlive
// it (see BufPool ownership rules).
struct R2p2MessageView {
  WireType type = WireType::kRequest;
  RequestId rid;
  R2p2Policy policy = R2p2Policy::kUnrestricted;
  uint32_t attempt = 0;        // kRequest only
  uint64_t ack_watermark = 0;  // kRequest only
  uint32_t shard_slot = kNoShardSlot;  // kRequest only
  Body body;                   // null for FEEDBACK/NACK
};

Result<R2p2MessageView> DecodeR2p2View(const Reassembler::Complete& complete);

// Reassembled message -> typed object (legacy tier; allocates the typed
// wrapper but the body stays a zero-copy slice).
struct DecodedR2p2Message {
  WireType type = WireType::kRequest;
  std::shared_ptr<RpcRequest> request;    // kRequest
  std::shared_ptr<RpcResponse> response;  // kResponse
  RequestId rid;                          // all types
};

Result<DecodedR2p2Message> DecodeR2p2Message(const Reassembler::Complete& complete);

}  // namespace hovercraft

#endif  // SRC_R2P2_SERDES_H_
