// Serialization of R2P2 messages onto wire packets.
//
// Maps the typed message objects the simulator carries onto the exact R2P2
// packet layout (16-byte header + MTU-sized fragments). This is the path a
// DPDK deployment would use verbatim; the simulator skips it on the hot path
// but conformance tests and microbenches exercise it end-to-end so the wire
// format stays honest.
#ifndef SRC_R2P2_SERDES_H_
#define SRC_R2P2_SERDES_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/r2p2/messages.h"
#include "src/r2p2/packetizer.h"
#include "src/r2p2/wire.h"

namespace hovercraft {

// The R2P2 identity fields (src_ip, src_port, req_id) pack the simulator's
// (client HostId, sequence number) identity. The 16-bit wire req_id wraps;
// receivers distinguish concurrent requests by the full 3-tuple, which is
// what the paper relies on (sections 3.2, 5).
WireHeader HeaderForRequest(const RequestId& rid, R2p2Policy policy, WireType type);
RequestId RequestIdFromHeader(const WireHeader& header);

// Every kRequest carries a fixed extension between the R2P2 header and the
// application body: attempt counter (u32) + client ack watermark (u64). The
// 16-byte header has no spare fields, so the retransmission / session-GC
// state rides as the first bytes of the fragmented payload.
constexpr size_t kRequestExtensionBytes = 12;

// Fragments a client request / response / control message into wire packets.
std::vector<WirePacket> SerializeRequest(const RpcRequest& request, size_t mtu_payload);
std::vector<WirePacket> SerializeResponse(const RpcResponse& response, size_t mtu_payload);
std::vector<WirePacket> SerializeFeedback(const FeedbackMsg& feedback);
std::vector<WirePacket> SerializeNack(const NackMsg& nack);

// Reassembled message -> typed object. The header type selects the variant.
struct DecodedR2p2Message {
  WireType type = WireType::kRequest;
  std::shared_ptr<RpcRequest> request;    // kRequest
  std::shared_ptr<RpcResponse> response;  // kResponse
  RequestId rid;                          // all types
};

Result<DecodedR2p2Message> DecodeR2p2Message(const Reassembler::Complete& complete);

}  // namespace hovercraft

#endif  // SRC_R2P2_SERDES_H_
