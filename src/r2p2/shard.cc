#include "src/r2p2/shard.h"

#include <utility>
#include <vector>

namespace hovercraft {

uint64_t ShardKeyHash(std::string_view key) {
  // FNV-1a 64-bit.
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

const char* ShardOpKindName(ShardOpKind kind) {
  switch (kind) {
    case ShardOpKind::kFreeze:
      return "FREEZE";
    case ShardOpKind::kInstall:
      return "INSTALL";
    case ShardOpKind::kGc:
      return "GC";
    case ShardOpKind::kUnfreeze:
      return "UNFREEZE";
    case ShardOpKind::kUninstall:
      return "UNINSTALL";
  }
  return "?";
}

uint64_t ShardCtlKeyOf(uint64_t move_id, ShardOpKind kind) {
  // Step ordinals within one move; the two abort ops share the top ordinal
  // (they target different groups) so an abort fences every parked op of its
  // own move.
  uint64_t step = 0;
  switch (kind) {
    case ShardOpKind::kFreeze:
      step = 0;
      break;
    case ShardOpKind::kInstall:
      step = 1;
      break;
    case ShardOpKind::kGc:
      step = 2;
      break;
    case ShardOpKind::kUnfreeze:
    case ShardOpKind::kUninstall:
      step = 3;
      break;
  }
  return move_id * 4 + step;
}

Body EncodeShardOp(const ShardOp& op) {
  BufferWriter w(40 + (op.payload == nullptr ? 0 : op.payload->size()));
  w.PutU8(static_cast<uint8_t>(op.kind));
  w.PutU64(op.move_id);
  w.PutU32(op.lo);
  w.PutU32(op.hi);
  if (op.payload == nullptr) {
    w.PutU32(0);
  } else {
    w.PutU32(static_cast<uint32_t>(op.payload->size()));
    w.PutBytes(op.payload->bytes());
  }
  return MakeBody(w.TakeBytes());
}

Status DecodeShardOp(const Body& body, ShardOp* out) {
  if (body == nullptr) {
    return InvalidArgumentError("shard op with no body");
  }
  BufferReader r(body->bytes());
  uint8_t kind = 0;
  uint32_t payload_len = 0;
  if (Status s = r.GetU8(kind); !s.ok()) {
    return s;
  }
  if (kind > static_cast<uint8_t>(ShardOpKind::kUninstall)) {
    return InvalidArgumentError("bad shard op kind");
  }
  if (Status s = r.GetU64(out->move_id); !s.ok()) {
    return s;
  }
  if (Status s = r.GetU32(out->lo); !s.ok()) {
    return s;
  }
  if (Status s = r.GetU32(out->hi); !s.ok()) {
    return s;
  }
  if (out->lo > out->hi || out->hi >= kShardSlots) {
    return InvalidArgumentError("bad shard op slot range");
  }
  if (Status s = r.GetU32(payload_len); !s.ok()) {
    return s;
  }
  std::vector<uint8_t> payload;
  if (Status s = r.GetBytes(payload_len, payload); !s.ok()) {
    return s;
  }
  out->kind = static_cast<ShardOpKind>(kind);
  out->payload = payload_len == 0 ? Body(nullptr) : MakeBody(std::move(payload));
  if (!r.AtEnd()) {
    return InvalidArgumentError("trailing bytes after shard op");
  }
  return Status::Ok();
}

void ShardServeState::Freeze(uint32_t lo, uint32_t hi) {
  for (uint32_t s = lo; s <= hi && s < kShardSlots; ++s) {
    frozen_.insert(s);
  }
}

void ShardServeState::Drop(uint32_t lo, uint32_t hi) {
  for (uint32_t s = lo; s <= hi && s < kShardSlots; ++s) {
    frozen_.erase(s);
    dropped_.insert(s);
  }
}

void ShardServeState::Install(uint32_t lo, uint32_t hi) {
  for (uint32_t s = lo; s <= hi && s < kShardSlots; ++s) {
    frozen_.erase(s);
    dropped_.erase(s);
  }
}

void ShardServeState::Unfreeze(uint32_t lo, uint32_t hi) {
  for (uint32_t s = lo; s <= hi && s < kShardSlots; ++s) {
    frozen_.erase(s);
  }
}

bool ShardServeState::AdvanceCtlWatermark(uint64_t key) {
  if (key <= ctl_watermark_) {
    return false;
  }
  ctl_watermark_ = key;
  return true;
}

void ShardServeState::Serialize(BufferWriter* w) const {
  w->PutU64(ctl_watermark_);
  w->PutU32(static_cast<uint32_t>(frozen_.size()));
  for (uint32_t s : frozen_) {
    w->PutU32(s);
  }
  w->PutU32(static_cast<uint32_t>(dropped_.size()));
  for (uint32_t s : dropped_) {
    w->PutU32(s);
  }
}

Status ShardServeState::Restore(BufferReader* r) {
  std::set<uint32_t> frozen;
  std::set<uint32_t> dropped;
  uint64_t watermark = 0;
  uint32_t n = 0;
  if (Status s = r->GetU64(watermark); !s.ok()) {
    return s;
  }
  if (Status s = r->GetU32(n); !s.ok()) {
    return s;
  }
  if (n > kShardSlots) {
    return InvalidArgumentError("bad frozen slot count");
  }
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t slot = 0;
    if (Status s = r->GetU32(slot); !s.ok()) {
      return s;
    }
    frozen.insert(slot);
  }
  if (Status s = r->GetU32(n); !s.ok()) {
    return s;
  }
  if (n > kShardSlots) {
    return InvalidArgumentError("bad dropped slot count");
  }
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t slot = 0;
    if (Status s = r->GetU32(slot); !s.ok()) {
      return s;
    }
    dropped.insert(slot);
  }
  frozen_ = std::move(frozen);
  dropped_ = std::move(dropped);
  ctl_watermark_ = watermark;
  return Status::Ok();
}

}  // namespace hovercraft
