// Wire-level sharding primitives shared by the R2P2 layer, the servers and
// the management plane (src/shard): the keyspace hash-slot function, the
// shard-control operations that ride consensus logs during a range move, and
// the per-server serve-state that decides which slots a replica executes.
//
// The design follows the "reconfigurable SMR from non-reconfigurable
// building blocks" recipe (see docs/sharding.md): each consensus group is a
// fixed building block, and shard moves are a protocol layered above the
// groups whose commit points ride *inside* the group logs as ordinary
// replicated requests tagged with kShardCtlSlot.
#ifndef SRC_R2P2_SHARD_H_
#define SRC_R2P2_SHARD_H_

#include <cstdint>
#include <set>
#include <string_view>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/r2p2/messages.h"

namespace hovercraft {

// The keyspace is hash-partitioned into a fixed number of slots (Redis
// Cluster style); the ShardMap assigns slots to groups and moves rebalance
// whole slot ranges. Small enough that a map fits in one packet, large
// enough that a 16-group deployment still gets 4 slots per group.
constexpr uint32_t kShardSlots = 64;

// Slot tag for shard-control operations (freeze/install/gc). Control ops are
// replicated through the same log as data but are never gated by serve
// state — a group must accept a freeze for a range it owns and an install
// for a range it does not own yet.
constexpr uint32_t kShardCtlSlot = 0xFFFFFFFEu;

// True for real keyspace slots; false for kNoShardSlot / kShardCtlSlot.
constexpr bool IsDataSlot(uint32_t slot) { return slot < kShardSlots; }

// Stable 64-bit FNV-1a over the key bytes. Deterministic across runs and
// platforms; every component (clients, middleboxes, servers, the move
// coordinator) must agree on it.
uint64_t ShardKeyHash(std::string_view key);

inline uint32_t ShardSlotOf(std::string_view key) {
  return static_cast<uint32_t>(ShardKeyHash(key) % kShardSlots);
}

// --- shard-control operations -----------------------------------------------
// The log-riding steps of a two-phase range move (docs/sharding.md):
//   kFreeze  [lo,hi]          source stops serving the range; the designated
//                             replier captures sessions+app state for it and
//                             returns the capture to the coordinator.
//   kInstall [lo,hi]+payload  destination merges the capture and starts
//                             serving the range (its commit IS the cutover
//                             point inside the destination group).
//   kGc      [lo,hi]          source deletes the moved range and its cached
//                             replies; the range is now redirect-only there.
// and the two abort steps a move that gives up before its cutover commits
// through the same logs (so aborting is replicated state, like the move):
//   kUninstall [lo,hi]        destination discards whatever the aborted move
//                             installed (data, session entries, serve state)
//                             and fences the move's parked install copies.
//   kUnfreeze  [lo,hi]        source serves the range again and fences the
//                             move's parked freeze copies.

enum class ShardOpKind : uint8_t {
  kFreeze = 0,
  kInstall = 1,
  kGc = 2,
  kUnfreeze = 3,
  kUninstall = 4,
};

const char* ShardOpKindName(ShardOpKind kind);

struct ShardOp {
  ShardOpKind kind = ShardOpKind::kFreeze;
  // Fencing tag: which move (coordinator-issued, strictly increasing) this op
  // belongs to. See ShardCtlKeyOf.
  uint64_t move_id = 0;
  uint32_t lo = 0;  // inclusive slot range
  uint32_t hi = 0;  // inclusive
  Body payload;     // kInstall only: [session range][app range] capture
};

Body EncodeShardOp(const ShardOp& op);
Status DecodeShardOp(const Body& body, ShardOp* out);

// Fencing key of a control op: move id, then the op's protocol step within
// the move (freeze < install < gc < unfreeze/uninstall). The coordinator
// issues moves with strictly increasing ids and drives the phases of a move
// strictly in sequence (it only advances after the previous phase's op
// committed), so the sequence of control ops a group legitimately applies has
// strictly increasing keys. Any op ordered at or below the group's applied
// watermark is therefore a stale duplicate — typically an abandoned retry
// (the coordinator retries under fresh rids) that sat parked in a follower's
// unordered store and was re-drained into the log by a later leader — and is
// rejected at apply time; re-running it could roll a moved range back below
// post-cutover writes or GC a range the group owns again.
uint64_t ShardCtlKeyOf(uint64_t move_id, ShardOpKind kind);

// --- per-server serve state -------------------------------------------------
// Which slots this replica executes. Mutated ONLY by applying shard-control
// log entries (and by snapshot restore), so it is identical across the
// replicas of a group at equal apply points — the property that makes
// apply-time gating deterministic. Two rejection sets:
//   frozen:  owned but mid-move at the source; ordered data entries for these
//            slots are rejected at apply time (the capture preceding them in
//            the log already excludes their effects).
//   dropped: not owned here (never were, or moved away and GC'd); rejected
//            the same way. An install removes slots from `dropped`.
class ShardServeState {
 public:
  bool sharded = false;  // false = single-group deployment, serve everything

  bool Serves(uint32_t slot) const {
    if (!sharded || !IsDataSlot(slot)) {
      return true;
    }
    return frozen_.count(slot) == 0 && dropped_.count(slot) == 0;
  }

  void Freeze(uint32_t lo, uint32_t hi);
  // kGc: the range leaves this replica for good (frozen -> dropped).
  void Drop(uint32_t lo, uint32_t hi);
  // kInstall: the range arrives here (clears dropped/frozen for it).
  void Install(uint32_t lo, uint32_t hi);
  // kUnfreeze (move abort at the source): the range serves again. Dropped
  // slots stay dropped — an abort never grants ownership.
  void Unfreeze(uint32_t lo, uint32_t hi);

  // Control-op fence (ShardCtlKeyOf). Advances the watermark and returns
  // true when `key` is newer than everything applied so far; returns false —
  // and the caller must treat the op as a stale no-op — otherwise. Replicated
  // state: advanced only at the apply point, so identical across a group's
  // replicas at equal positions and carried by snapshots.
  bool AdvanceCtlWatermark(uint64_t key);
  uint64_t ctl_watermark() const { return ctl_watermark_; }

  const std::set<uint32_t>& frozen() const { return frozen_; }
  const std::set<uint32_t>& dropped() const { return dropped_; }

  // Rides inside server snapshots between the session table and the app
  // bytes; an unsharded server serializes an empty state (16 bytes).
  void Serialize(BufferWriter* w) const;
  Status Restore(BufferReader* r);

 private:
  std::set<uint32_t> frozen_;
  std::set<uint32_t> dropped_;
  uint64_t ctl_watermark_ = 0;
};

}  // namespace hovercraft

#endif  // SRC_R2P2_SHARD_H_
