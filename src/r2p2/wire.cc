#include "src/r2p2/wire.h"

#include "src/common/check.h"

namespace hovercraft {
namespace {

void PutU16(std::span<uint8_t> out, size_t offset, uint16_t v) {
  out[offset] = static_cast<uint8_t>(v);
  out[offset + 1] = static_cast<uint8_t>(v >> 8);
}

void PutU32(std::span<uint8_t> out, size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[offset + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint16_t GetU16(std::span<const uint8_t> in, size_t offset) {
  return static_cast<uint16_t>(in[offset] | (in[offset + 1] << 8));
}

uint32_t GetU32(std::span<const uint8_t> in, size_t offset) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(in[offset + static_cast<size_t>(i)]) << (8 * i);
  }
  return v;
}

}  // namespace

void EncodeWireHeader(const WireHeader& header, std::span<uint8_t> out) {
  HC_CHECK_GE(out.size(), kWireHeaderBytes);
  out[0] = kWireMagic;
  out[1] = kWireVersion;
  out[2] = static_cast<uint8_t>(header.type);
  uint8_t pf = header.policy & 0x0F;
  if (header.first) {
    pf |= kFlagFirst;
  }
  if (header.last) {
    pf |= kFlagLast;
  }
  out[3] = pf;
  PutU16(out, 4, header.req_id);
  PutU16(out, 6, header.packet_id);
  PutU32(out, 8, header.src_ip);
  PutU16(out, 12, header.src_port);
  PutU16(out, 14, header.packet_count);
}

Result<WireHeader> DecodeWireHeader(std::span<const uint8_t> data) {
  if (data.size() < kWireHeaderBytes) {
    return OutOfRangeError("short R2P2 header");
  }
  if (data[0] != kWireMagic) {
    return InvalidArgumentError("bad R2P2 magic");
  }
  if (data[1] != kWireVersion) {
    return InvalidArgumentError("unsupported R2P2 version");
  }
  if (data[2] > static_cast<uint8_t>(WireType::kRecoveryRep)) {
    return InvalidArgumentError("unknown R2P2 message type");
  }
  WireHeader h;
  h.type = static_cast<WireType>(data[2]);
  h.policy = data[3] & 0x0F;
  if (h.policy > 2) {
    return InvalidArgumentError("unknown R2P2 policy");
  }
  h.first = (data[3] & kFlagFirst) != 0;
  h.last = (data[3] & kFlagLast) != 0;
  h.req_id = GetU16(data, 4);
  h.packet_id = GetU16(data, 6);
  h.src_ip = GetU32(data, 8);
  h.src_port = GetU16(data, 12);
  h.packet_count = GetU16(data, 14);
  return h;
}

}  // namespace hovercraft
