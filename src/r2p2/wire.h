// Binary wire format for R2P2 with the HovercRaft extensions.
//
// Layout (16 bytes, little-endian), following the R2P2 header design with the
// two message types HovercRaft adds for Raft traffic (paper section 6.1):
//
//   offset  size  field
//   0       1     magic (0x52)
//   1       1     version (1)
//   2       1     message type (WireType)
//   3       1     policy (low nibble) | flags (high nibble: FIRST, LAST)
//   4       2     req_id
//   6       2     packet_id (fragment index)
//   8       4     src_ip
//   12      2     src_port
//   14      2     packet_count (total fragments; valid on FIRST)
#ifndef SRC_R2P2_WIRE_H_
#define SRC_R2P2_WIRE_H_

#include <cstdint>
#include <span>

#include "src/common/status.h"

namespace hovercraft {

// Wire-level message types. REQUEST/RESPONSE/FEEDBACK/NACK come from R2P2;
// RAFT_REQ/RAFT_REP are the types HovercRaft adds so the consensus logic in
// the transport can dispatch on them; AGG_COMMIT is emitted by the in-network
// aggregator; RECOVERY_* implement payload recovery (paper section 5).
enum class WireType : uint8_t {
  kRequest = 0,
  kResponse = 1,
  kFeedback = 2,
  kNack = 3,
  kRaftReq = 4,
  kRaftRep = 5,
  kAggCommit = 6,
  kRecoveryReq = 7,
  kRecoveryRep = 8,
};

constexpr uint8_t kWireMagic = 0x52;
constexpr uint8_t kWireVersion = 1;
constexpr size_t kWireHeaderBytes = 16;

constexpr uint8_t kFlagFirst = 0x10;
constexpr uint8_t kFlagLast = 0x20;

struct WireHeader {
  WireType type = WireType::kRequest;
  uint8_t policy = 0;  // R2p2Policy value
  bool first = false;
  bool last = false;
  uint16_t req_id = 0;
  uint16_t packet_id = 0;
  uint32_t src_ip = 0;
  uint16_t src_port = 0;
  uint16_t packet_count = 0;

  friend bool operator==(const WireHeader& a, const WireHeader& b) {
    return a.type == b.type && a.policy == b.policy && a.first == b.first && a.last == b.last &&
           a.req_id == b.req_id && a.packet_id == b.packet_id && a.src_ip == b.src_ip &&
           a.src_port == b.src_port && a.packet_count == b.packet_count;
  }
};

// Writes exactly kWireHeaderBytes into `out` (must have room).
void EncodeWireHeader(const WireHeader& header, std::span<uint8_t> out);

// Parses and validates a header. Fails on short buffers, bad magic/version,
// unknown type, or out-of-range policy.
Result<WireHeader> DecodeWireHeader(std::span<const uint8_t> data);

}  // namespace hovercraft

#endif  // SRC_R2P2_WIRE_H_
