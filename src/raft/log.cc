#include "src/raft/log.h"

#include <utility>

#include "src/common/buffer.h"

namespace hovercraft {

uint64_t HashRequestBody(const RpcRequest& request) {
  if (request.body() == nullptr) {
    return 0;
  }
  return Fnv1aHash(std::span<const uint8_t>(request.body()->data(), request.body()->size()));
}

LogIndex RaftLog::Append(LogEntry entry) {
  entries_.push_back(std::move(entry));
  const LogIndex idx = last_index();
  const LogEntry& e = entries_.back();
  if (!e.noop) {
    rid_index_[e.rid] = idx;
  }
  return idx;
}

void RaftLog::TruncateFrom(LogIndex idx) {
  HC_CHECK_GE(idx, first_index());
  while (last_index() >= idx) {
    const LogEntry& e = entries_.back();
    if (!e.noop) {
      auto it = rid_index_.find(e.rid);
      if (it != rid_index_.end() && it->second == last_index()) {
        rid_index_.erase(it);
      }
    }
    entries_.pop_back();
  }
}

void RaftLog::CompactPrefix(LogIndex idx) {
  if (idx <= base_index_) {
    return;
  }
  HC_CHECK_LE(idx, last_index());
  base_term_ = TermAt(idx);
  while (base_index_ < idx) {
    const LogEntry& e = entries_.front();
    if (!e.noop) {
      auto it = rid_index_.find(e.rid);
      if (it != rid_index_.end() && it->second == base_index_ + 1) {
        rid_index_.erase(it);
      }
    }
    entries_.pop_front();
    ++base_index_;
  }
}

void RaftLog::ResetTo(LogIndex idx, Term term) {
  entries_.clear();
  rid_index_.clear();
  base_index_ = idx;
  base_term_ = term;
}

LogIndex RaftLog::FindRequest(const RequestId& rid) const {
  auto it = rid_index_.find(rid);
  if (it == rid_index_.end()) {
    return kNoLogIndex;
  }
  return it->second;
}

}  // namespace hovercraft
