// The replicated log. Indices are 1-based; index 0 is the sentinel "before
// the log". Supports prefix compaction so long benchmark runs do not hold
// the entire history in memory: the compaction point remembers its term so
// the AppendEntries consistency check still works at the boundary.
#ifndef SRC_RAFT_LOG_H_
#define SRC_RAFT_LOG_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/r2p2/messages.h"
#include "src/r2p2/request_id.h"
#include "src/raft/membership.h"

namespace hovercraft {

struct LogEntry {
  Term term = 0;
  bool noop = false;
  bool read_only = false;
  // Designated replier (paper section 3.3); immutable once announced.
  NodeId replier = kInvalidNode;
  RequestId rid;
  // FNV-1a hash of the request body, computed once at append; shipped with
  // metadata-only entries so followers can verify their unordered-set hit
  // (paper section 5).
  uint64_t body_hash = 0;
  // Client ack watermark, stamped by the leader from the submitted request
  // and replicated with the metadata. Applied to the session table on the
  // apply path so reply-cache GC is deterministic across replicas.
  uint64_t ack_watermark = 0;
  std::shared_ptr<const RpcRequest> request;  // null only for noop entries
  // Membership-change entries are noops that additionally carry the new
  // cluster config; the config takes effect as soon as the entry is appended
  // (dissertation section 4.1). Null for ordinary entries.
  MembershipConfigPtr config;
};

// Canonical body hash for log entries.
uint64_t HashRequestBody(const RpcRequest& request);

class RaftLog {
 public:
  RaftLog() = default;

  // First index still present (after compaction). first_index() - 1 is the
  // compaction point whose term is base_term().
  LogIndex first_index() const { return base_index_ + 1; }
  LogIndex last_index() const { return base_index_ + entries_.size(); }
  Term base_term() const { return base_term_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  Term last_term() const { return entries_.empty() ? base_term_ : entries_.back().term; }

  // Term at `idx`; valid for idx in [base_index, last_index].
  Term TermAt(LogIndex idx) const {
    if (idx == base_index_) {
      return base_term_;
    }
    return At(idx).term;
  }

  bool Contains(LogIndex idx) const { return idx >= first_index() && idx <= last_index(); }

  const LogEntry& At(LogIndex idx) const {
    if (!Contains(idx)) {
      std::fprintf(stderr, "RaftLog::At(%llu) out of range [%llu, %llu]\n",
                   static_cast<unsigned long long>(idx),
                   static_cast<unsigned long long>(first_index()),
                   static_cast<unsigned long long>(last_index()));
    }
    HC_CHECK(Contains(idx));
    return entries_[static_cast<size_t>(idx - base_index_ - 1)];
  }
  LogEntry& At(LogIndex idx) {
    HC_CHECK(Contains(idx));
    return entries_[static_cast<size_t>(idx - base_index_ - 1)];
  }

  // Appends at the tail; returns the new entry's index.
  LogIndex Append(LogEntry entry);

  // Removes all entries with index >= idx (conflict resolution on followers).
  void TruncateFrom(LogIndex idx);

  // Drops entries with index <= idx. idx must be <= last_index and at or
  // below any point still needed (callers enforce applied/match constraints).
  void CompactPrefix(LogIndex idx);

  // Discards the whole log and restarts it after a snapshot at (idx, term).
  // Used when an InstallSnapshot replaces a conflicting or missing history.
  void ResetTo(LogIndex idx, Term term);

  // Finds the log index holding `rid`, or kNoLogIndex. Used for duplicate
  // detection and for serving payload recovery.
  LogIndex FindRequest(const RequestId& rid) const;

 private:
  LogIndex base_index_ = 0;  // compaction point (0 = nothing compacted)
  Term base_term_ = 0;
  std::deque<LogEntry> entries_;
  std::unordered_map<RequestId, LogIndex, RequestIdHash> rid_index_;
};

}  // namespace hovercraft

#endif  // SRC_RAFT_LOG_H_
