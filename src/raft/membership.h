#ifndef HOVERCRAFT_RAFT_MEMBERSHIP_H_
#define HOVERCRAFT_RAFT_MEMBERSHIP_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace hovercraft {

// A cluster membership configuration. Voters participate in elections and
// commit quorums; learners receive the log (AppendEntries / InstallSnapshot)
// but have no vote — they are voters-in-waiting during catch-up. `members` is
// the sorted union of both and is what the replication fan-out iterates.
//
// Configs are immutable once built; they travel through the log and over the
// wire as shared_ptr<const MembershipConfig>.
struct MembershipConfig {
  std::vector<NodeId> voters;    // sorted, unique
  std::vector<NodeId> learners;  // sorted, unique, disjoint from voters
  std::vector<NodeId> members;   // sorted union of voters and learners

  // Quorum size over the voter set.
  int32_t majority() const { return static_cast<int32_t>(voters.size()) / 2 + 1; }

  bool IsVoter(NodeId n) const { return std::binary_search(voters.begin(), voters.end(), n); }
  bool IsLearner(NodeId n) const {
    return std::binary_search(learners.begin(), learners.end(), n);
  }
  bool IsMember(NodeId n) const { return std::binary_search(members.begin(), members.end(), n); }

  bool operator==(const MembershipConfig& o) const {
    return voters == o.voters && learners == o.learners;
  }
  bool operator!=(const MembershipConfig& o) const { return !(*this == o); }

  std::string Describe() const {
    std::ostringstream out;
    out << "voters={";
    for (size_t i = 0; i < voters.size(); ++i) {
      out << (i ? "," : "") << voters[i];
    }
    out << "}";
    if (!learners.empty()) {
      out << " learners={";
      for (size_t i = 0; i < learners.size(); ++i) {
        out << (i ? "," : "") << learners[i];
      }
      out << "}";
    }
    return out.str();
  }
};

using MembershipConfigPtr = std::shared_ptr<const MembershipConfig>;

// Builds a config from (possibly unsorted) voter and learner id lists.
// Learners that also appear as voters are dropped from the learner set.
inline MembershipConfigPtr MakeMembershipConfig(std::vector<NodeId> voters,
                                                std::vector<NodeId> learners = {}) {
  auto cfg = std::make_shared<MembershipConfig>();
  std::sort(voters.begin(), voters.end());
  voters.erase(std::unique(voters.begin(), voters.end()), voters.end());
  std::sort(learners.begin(), learners.end());
  learners.erase(std::unique(learners.begin(), learners.end()), learners.end());
  std::vector<NodeId> pure_learners;
  for (NodeId n : learners) {
    if (!std::binary_search(voters.begin(), voters.end(), n)) {
      pure_learners.push_back(n);
    }
  }
  cfg->members = voters;
  cfg->members.insert(cfg->members.end(), pure_learners.begin(), pure_learners.end());
  std::sort(cfg->members.begin(), cfg->members.end());
  cfg->voters = std::move(voters);
  cfg->learners = std::move(pure_learners);
  return cfg;
}

// A config with the first `n` nodes as voters — the static-membership default.
inline MembershipConfigPtr MakeInitialConfig(int32_t n) {
  std::vector<NodeId> voters;
  voters.reserve(static_cast<size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    voters.push_back(i);
  }
  return MakeMembershipConfig(std::move(voters));
}

// Derived configs for the single-server change protocol.
inline MembershipConfigPtr WithLearner(const MembershipConfig& base, NodeId learner) {
  auto learners = base.learners;
  learners.push_back(learner);
  return MakeMembershipConfig(base.voters, std::move(learners));
}

inline MembershipConfigPtr WithPromoted(const MembershipConfig& base, NodeId learner) {
  auto voters = base.voters;
  voters.push_back(learner);
  std::vector<NodeId> learners;
  for (NodeId n : base.learners) {
    if (n != learner) {
      learners.push_back(n);
    }
  }
  return MakeMembershipConfig(std::move(voters), std::move(learners));
}

inline MembershipConfigPtr WithRemoved(const MembershipConfig& base, NodeId node) {
  std::vector<NodeId> voters;
  for (NodeId n : base.voters) {
    if (n != node) {
      voters.push_back(n);
    }
  }
  std::vector<NodeId> learners;
  for (NodeId n : base.learners) {
    if (n != node) {
      learners.push_back(n);
    }
  }
  return MakeMembershipConfig(std::move(voters), std::move(learners));
}

}  // namespace hovercraft

#endif  // HOVERCRAFT_RAFT_MEMBERSHIP_H_
