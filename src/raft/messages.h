// Raft protocol messages, including the HovercRaft extensions: metadata-only
// log entries, the replier/read-only fields, applied-index piggybacking on
// append_entries replies, the aggregator's AGG_COMMIT, and payload recovery.
//
// Wire sizes follow the R2P2-framed layouts: each message declares the bytes
// it would occupy so the network model charges bandwidth and CPU accurately.
#ifndef SRC_RAFT_MESSAGES_H_
#define SRC_RAFT_MESSAGES_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/net/message.h"
#include "src/r2p2/messages.h"
#include "src/r2p2/request_id.h"
#include "src/raft/membership.h"

namespace hovercraft {

// Fixed header bytes of an append_entries message (term, leader, prev index,
// prev term, leader commit).
constexpr int32_t kAeFixedBytes = 40;
// Metadata bytes per log entry: (req_id, src_port, src_ip) 3-tuple + term +
// type/replier fields + body hash (paper section 5) + the client ack
// watermark replicated for session-table GC (Raft section 8).
constexpr int32_t kEntryMetaBytes = 32;
constexpr int32_t kAeReplyBytes = 40;
constexpr int32_t kVoteBytes = 32;
constexpr int32_t kAggCommitFixedBytes = 24;
constexpr int32_t kAggCommitPerNodeBytes = 8;
constexpr int32_t kRecoveryReqBytes = 24;
constexpr int32_t kRecoveryRepFixedBytes = 24;
// VanillaRaft embeds the client request inside append_entries as received:
// the R2P2 header plus transport framing travel with it (the leader re-
// encapsulates the whole RPC, paper section 3.1).
constexpr int32_t kPayloadEncapBytes = 40;
// Membership-change entries additionally ship the new config: a fixed header
// plus one id + role flag per member (dissertation section 4.1).
constexpr int32_t kConfigFixedBytes = 8;
constexpr int32_t kConfigPerMemberBytes = 8;

inline int32_t ConfigWireBytes(const MembershipConfigPtr& config) {
  if (config == nullptr) {
    return 0;
  }
  return kConfigFixedBytes + kConfigPerMemberBytes * static_cast<int32_t>(config->members.size());
}

// A log entry as carried inside append_entries. In VanillaRaft mode `request`
// is set and its body counts toward the wire size; in HovercRaft mode the
// leader sends metadata only and `request` is still referenced in memory at
// the leader but contributes 0 payload bytes on the wire.
struct WireEntry {
  Term term = 0;
  bool noop = false;
  bool read_only = false;
  NodeId replier = kInvalidNode;
  RequestId rid;
  // Hash of the request body (paper section 5): metadata-only entries carry
  // it so followers detect identity collisions / corrupt unordered-set hits
  // and fall back to recovery instead of diverging.
  uint64_t body_hash = 0;
  // Client ack watermark the leader stamped at append time. Replicated so
  // every node garbage-collects its client-session table at the same log
  // position, independent of which attempt its unordered set happens to hold.
  uint64_t ack_watermark = 0;
  std::shared_ptr<const RpcRequest> request;  // may be null for noop
  bool carries_payload = false;               // true in VanillaRaft mode
  // Set on membership-change entries (which are noops on the apply path):
  // the new cluster config, effective at the follower as soon as the entry
  // is appended.
  MembershipConfigPtr config;

  int32_t WireBytes() const {
    int32_t bytes = kEntryMetaBytes;
    if (carries_payload && request != nullptr) {
      bytes += request->PayloadBytes() + kPayloadEncapBytes;
    }
    bytes += ConfigWireBytes(config);
    return bytes;
  }
};

class AppendEntriesReq final : public Message {
 public:
  AppendEntriesReq(Term term, NodeId leader, LogIndex prev_idx, Term prev_term,
                   LogIndex leader_commit, std::vector<WireEntry> entries)
      : term_(term),
        leader_(leader),
        prev_idx_(prev_idx),
        prev_term_(prev_term),
        leader_commit_(leader_commit),
        entries_(std::move(entries)) {
    payload_bytes_ = kAeFixedBytes;
    for (const WireEntry& e : entries_) {
      payload_bytes_ += e.WireBytes();
    }
  }

  int32_t PayloadBytes() const override { return payload_bytes_; }
  const char* Name() const override { return "AE_REQ"; }

  Term term() const { return term_; }
  NodeId leader() const { return leader_; }
  LogIndex prev_idx() const { return prev_idx_; }
  Term prev_term() const { return prev_term_; }
  LogIndex leader_commit() const { return leader_commit_; }
  const std::vector<WireEntry>& entries() const { return entries_; }

 private:
  Term term_;
  NodeId leader_;
  LogIndex prev_idx_;
  Term prev_term_;
  LogIndex leader_commit_;
  std::vector<WireEntry> entries_;
  int32_t payload_bytes_;
};

class AppendEntriesRep final : public Message {
 public:
  AppendEntriesRep(NodeId from, Term term, bool success, LogIndex match, LogIndex applied,
                   LogIndex last_hint, bool waiting_recovery, LogIndex commit = 0)
      : from_(from),
        term_(term),
        success_(success),
        match_(match),
        applied_(applied),
        last_hint_(last_hint),
        waiting_recovery_(waiting_recovery),
        commit_(commit) {}

  int32_t PayloadBytes() const override { return kAeReplyBytes; }
  const char* Name() const override { return "AE_REP"; }

  NodeId from() const { return from_; }
  Term term() const { return term_; }
  bool success() const { return success_; }
  LogIndex match() const { return match_; }
  LogIndex applied() const { return applied_; }
  LogIndex last_hint() const { return last_hint_; }
  bool waiting_recovery() const { return waiting_recovery_; }
  // The follower's commit index at reply time. Lets the leader track how far
  // each member has observed committed membership configs, gating the switch
  // back to aggregator-carried commit delivery across a config epoch change.
  LogIndex commit() const { return commit_; }

 private:
  NodeId from_;
  Term term_;
  bool success_;
  LogIndex match_;
  LogIndex applied_;
  LogIndex last_hint_;
  bool waiting_recovery_;
  LogIndex commit_;
};

class RequestVoteReq final : public Message {
 public:
  // With pre_vote set the request is a PreVote poll (Raft dissertation
  // section 9.6): `term` is the term the candidate *would* campaign at, and
  // handling it must never mutate the receiver's term or vote.
  RequestVoteReq(Term term, NodeId candidate, LogIndex last_idx, Term last_term,
                 bool pre_vote = false)
      : term_(term),
        candidate_(candidate),
        last_idx_(last_idx),
        last_term_(last_term),
        pre_vote_(pre_vote) {}

  int32_t PayloadBytes() const override { return kVoteBytes; }
  const char* Name() const override { return pre_vote_ ? "PREVOTE_REQ" : "VOTE_REQ"; }

  Term term() const { return term_; }
  NodeId candidate() const { return candidate_; }
  LogIndex last_idx() const { return last_idx_; }
  Term last_term() const { return last_term_; }
  bool pre_vote() const { return pre_vote_; }

 private:
  Term term_;
  NodeId candidate_;
  LogIndex last_idx_;
  Term last_term_;
  bool pre_vote_;
};

class RequestVoteRep final : public Message {
 public:
  // Pre-vote replies echo the candidate's proposed term (not the voter's
  // current term) so the pre-candidate can match them to its poll round.
  RequestVoteRep(NodeId from, Term term, bool granted, bool pre_vote = false)
      : from_(from), term_(term), granted_(granted), pre_vote_(pre_vote) {}

  int32_t PayloadBytes() const override { return kVoteBytes; }
  const char* Name() const override { return pre_vote_ ? "PREVOTE_REP" : "VOTE_REP"; }

  NodeId from() const { return from_; }
  Term term() const { return term_; }
  bool granted() const { return granted_; }
  bool pre_vote() const { return pre_vote_; }

 private:
  NodeId from_;
  Term term_;
  bool granted_;
  bool pre_vote_;
};

// Leader-to-replier grant of a linearizable read (ReadIndex, dissertation
// section 6.4): the leader confirmed its leadership lease and instructs
// `replier` to answer `rid` from its local state machine once its applied
// index reaches `read_index`. The request body travels separately via the
// client multicast (unordered store); only metadata crosses the wire here.
class ReadIndexGrantMsg final : public Message {
 public:
  ReadIndexGrantMsg(NodeId from, Term term, LogIndex read_index, RequestId rid)
      : from_(from), term_(term), read_index_(read_index), rid_(rid) {}

  int32_t PayloadBytes() const override { return kVoteBytes; }
  const char* Name() const override { return "READ_INDEX_GRANT"; }

  NodeId from() const { return from_; }
  Term term() const { return term_; }
  LogIndex read_index() const { return read_index_; }
  const RequestId& rid() const { return rid_; }

 private:
  NodeId from_;
  Term term_;
  LogIndex read_index_;
  RequestId rid_;
};

// Multicast by the aggregator when the commit index advances (paper
// section 6.4). Carries per-node applied counts ("completed requests") so the
// leader can run JBSQ without seeing individual append_entries replies.
class AggCommitMsg final : public Message {
 public:
  AggCommitMsg(Term term, LogIndex commit, std::vector<LogIndex> applied, LogIndex epoch = 0)
      : term_(term), commit_(commit), applied_(std::move(applied)), epoch_(epoch) {}

  int32_t PayloadBytes() const override {
    return kAggCommitFixedBytes + kAggCommitPerNodeBytes * static_cast<int32_t>(applied_.size());
  }
  const char* Name() const override { return "AGG_COMMIT"; }

  Term term() const { return term_; }
  LogIndex commit() const { return commit_; }
  const std::vector<LogIndex>& applied() const { return applied_; }
  // Config epoch (log index of the committed config) the aggregator computed
  // this quorum under. Nodes discard AGG_COMMITs whose epoch does not match
  // their own committed config: a quorum counted over a stale voter set must
  // not advance the commit index (docs/membership.md).
  LogIndex epoch() const { return epoch_; }

 private:
  Term term_;
  LogIndex commit_;
  std::vector<LogIndex> applied_;
  LogIndex epoch_;
};

// Post-election handshake between a new leader and the aggregator (paper
// section 6.4): the vote_reply tells the leader the aggregator is alive, and
// the vote_request's term flushes aggregator soft state.
class AggVoteReq final : public Message {
 public:
  explicit AggVoteReq(Term term, LogIndex epoch = 0) : term_(term), epoch_(epoch) {}
  int32_t PayloadBytes() const override { return kVoteBytes; }
  const char* Name() const override { return "AGG_VOTE_REQ"; }
  Term term() const { return term_; }
  // The leader's committed config epoch; a probe whose epoch trails the
  // aggregator's installed config is answered with the aggregator's epoch so
  // the leader can re-probe after it catches up.
  LogIndex epoch() const { return epoch_; }

 private:
  Term term_;
  LogIndex epoch_;
};

class AggVoteRep final : public Message {
 public:
  explicit AggVoteRep(Term term, LogIndex epoch = 0) : term_(term), epoch_(epoch) {}
  int32_t PayloadBytes() const override { return kVoteBytes; }
  const char* Name() const override { return "AGG_VOTE_REP"; }
  Term term() const { return term_; }
  LogIndex epoch() const { return epoch_; }

 private:
  Term term_;
  LogIndex epoch_;
};

constexpr int32_t kSnapshotFixedBytes = 40;

// Leader -> straggler state transfer: when log compaction has passed the
// entries a follower needs, the leader ships the full application state as
// of `last_included` instead (Raft's InstallSnapshot; an extension beyond
// the paper, which never runs long enough to compact).
class InstallSnapshotReq final : public Message {
 public:
  InstallSnapshotReq(Term term, NodeId leader, LogIndex last_included, Term included_term,
                     Body state, MembershipConfigPtr config = nullptr, LogIndex config_idx = 0)
      : term_(term),
        leader_(leader),
        last_included_(last_included),
        included_term_(included_term),
        state_(std::move(state)),
        config_(std::move(config)),
        config_idx_(config_idx) {}

  int32_t PayloadBytes() const override {
    return kSnapshotFixedBytes + BodySize(state_) + ConfigWireBytes(config_);
  }
  const char* Name() const override { return "SNAPSHOT_REQ"; }

  Term term() const { return term_; }
  NodeId leader() const { return leader_; }
  LogIndex last_included() const { return last_included_; }
  Term included_term() const { return included_term_; }
  const Body& state() const { return state_; }
  // Cluster config as of `last_included`, so a fresh learner whose log starts
  // from this snapshot still learns the membership (dissertation section 4.1:
  // snapshots carry the latest config covered by the snapshot).
  const MembershipConfigPtr& config() const { return config_; }
  LogIndex config_idx() const { return config_idx_; }

 private:
  Term term_;
  NodeId leader_;
  LogIndex last_included_;
  Term included_term_;
  Body state_;
  MembershipConfigPtr config_;
  LogIndex config_idx_;
};

class InstallSnapshotRep final : public Message {
 public:
  InstallSnapshotRep(NodeId from, Term term, LogIndex last_included)
      : from_(from), term_(term), last_included_(last_included) {}

  int32_t PayloadBytes() const override { return kSnapshotFixedBytes; }
  const char* Name() const override { return "SNAPSHOT_REP"; }

  NodeId from() const { return from_; }
  Term term() const { return term_; }
  LogIndex last_included() const { return last_included_; }

 private:
  NodeId from_;
  Term term_;
  LogIndex last_included_;
};

// Follower -> leader request for a client payload it missed on multicast
// (paper section 5, recovery_request).
class RecoveryReq final : public Message {
 public:
  RecoveryReq(NodeId from, RequestId rid) : from_(from), rid_(rid) {}

  int32_t PayloadBytes() const override { return kRecoveryReqBytes; }
  const char* Name() const override { return "RECOVERY_REQ"; }

  NodeId from() const { return from_; }
  const RequestId& rid() const { return rid_; }

 private:
  NodeId from_;
  RequestId rid_;
};

class RecoveryRep final : public Message {
 public:
  RecoveryRep(RequestId rid, std::shared_ptr<const RpcRequest> request)
      : rid_(rid), request_(std::move(request)) {}

  int32_t PayloadBytes() const override {
    return kRecoveryRepFixedBytes + (request_ ? request_->PayloadBytes() : 0);
  }
  const char* Name() const override { return "RECOVERY_REP"; }

  const RequestId& rid() const { return rid_; }
  bool found() const { return request_ != nullptr; }
  const std::shared_ptr<const RpcRequest>& request() const { return request_; }

 private:
  RequestId rid_;
  std::shared_ptr<const RpcRequest> request_;
};

}  // namespace hovercraft

#endif  // SRC_RAFT_MESSAGES_H_
