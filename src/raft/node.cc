#include "src/raft/node.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/obs/observability.h"
#include "src/raft/wal_codec.h"

namespace hovercraft {

namespace {

// Flight-recorder role transition: a=term, b=FrRole, c=recovery-suspect flag
// (the watchdog's election-safety and suspect-floor invariants key off this).
void RecordRole(Simulator* sim, NodeId node, Term term, obs::FrRole role, bool suspect) {
  if (auto* fr = obs::FrOf(sim)) {
    fr->Record(sim->Now(), node, obs::FrType::kRole, term,
               static_cast<uint64_t>(role), suspect ? 1u : 0u);
  }
}

}  // namespace

const char* RaftRoleName(RaftRole role) {
  switch (role) {
    case RaftRole::kFollower:
      return "follower";
    case RaftRole::kCandidate:
      return "candidate";
    case RaftRole::kLeader:
      return "leader";
  }
  return "unknown";
}

RaftNode::RaftNode(Simulator* sim, uint64_t seed, const RaftOptions& options, Env* env)
    : sim_(sim),
      options_(options),
      env_(env),
      rng_(seed),
      peers_(static_cast<size_t>(options.cluster_size)),
      scheduler_(options.cluster_size, options.id, options.replier_policy,
                 options.bounded_queue_depth, seed ^ 0x5EED5EED5EED5EEDull) {
  HC_CHECK(sim != nullptr);
  HC_CHECK(env != nullptr);
  HC_CHECK_GE(options.id, 0);
  HC_CHECK_LT(options.id, options.cluster_size);
  // cluster_size is the node universe; the initial voter set may be a prefix
  // of it, leaving the rest as passive spares until AddServer brings them in.
  const int32_t initial_voters =
      options_.initial_voters > 0 ? std::min(options_.initial_voters, options_.cluster_size)
                                  : options_.cluster_size;
  configs_.emplace_back(LogIndex{0}, MakeInitialConfig(initial_voters));
}

void RaftNode::Start() {
  if (!CanCampaign()) {
    return;  // spare: waits for a committed config to add it
  }
  if (active_config().voters.size() == 1) {
    // Degenerate single-voter group: immediately leader.
    current_term_ = 1;
    PersistHardState();
    BecomeLeader();
    return;
  }
  ArmElectionTimer();
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void RaftNode::Halt() {
  halted_ = true;
  // Fence every deferred persist completion scheduled before the crash: a
  // killed process must never acknowledge entries from the grave, even if it
  // later restarts with its memory image intact (Resume). The leader simply
  // retransmits and gets a fresh ack.
  ++restart_epoch_;
}

void RaftNode::Resume() {
  if (!halted_) {
    return;
  }
  halted_ = false;
  // A restarted process comes back as a follower with its persistent state
  // (term, vote, log) intact; volatile leadership is abandoned.
  if (role_ != RaftRole::kFollower) {
    BecomeFollower(current_term_, /*reset_vote=*/false);
  } else {
    ArmElectionTimer();
  }
}

bool RaftNode::CanCampaign() const {
  // A suspect node (its recovery discarded durable bytes) may vote but must
  // not campaign: with part of its acknowledged log missing it could win an
  // election and un-commit data a client saw completed. It becomes eligible
  // again once its commit index covers everything it may ever have acked
  // (MaybeClearSuspect), repaired through the ordinary append/snapshot path.
  return !halted_ && !retired_ && !suspect_ && active_config().IsVoter(options_.id);
}

// ---------------------------------------------------------------------------
// Durable storage plumbing (docs/durability.md)
// ---------------------------------------------------------------------------

void RaftNode::PersistHardState() {
  if (storage_ == nullptr) {
    return;
  }
  if (current_term_ == persisted_term_ && voted_for_ == persisted_vote_) {
    return;
  }
  persisted_term_ = current_term_;
  persisted_vote_ = voted_for_;
  storage_->PersistHardState(current_term_, voted_for_);
}

void RaftNode::StorageAppendEntry(LogIndex idx) {
  if (storage_ == nullptr) {
    return;
  }
  const LogEntry& e = log_.At(idx);
  storage_->AppendEntry(idx, e.term, e.replier, EncodeWalEntry(e));
}

void RaftNode::ScheduleDurability(LogIndex tail) {
  if (storage_ == nullptr || tail <= durable_index_) {
    return;
  }
  // The completion fence: the callback is only meaningful while the process
  // incarnation that scheduled it is still running (epoch) and the log still
  // holds the same entry at `tail` (term — a conflicting truncation replaces
  // it with an entry of a different term, never the same one).
  const uint64_t epoch = restart_epoch_;
  const Term tail_term = log_.TermAt(tail);
  const TimeNs scheduled = sim_->Now();
  storage_->Sync([this, tail, tail_term, epoch, scheduled]() {
    if (halted_ || epoch != restart_epoch_) {
      ++stats_.acks_dropped_crash;
      return;
    }
    if (tail <= durable_index_) {
      return;
    }
    if (tail > log_.last_index() ||
        (tail >= log_.first_index() && log_.TermAt(tail) != tail_term)) {
      return;  // truncated or replaced since the barrier was scheduled
    }
    durable_index_ = tail;
    if (auto* fr = obs::FrOf(sim_)) {
      fr->Record(sim_->Now(), options_.obs_id(), obs::FrType::kDurable, tail, epoch);
      fr->Record(sim_->Now(), options_.obs_id(), obs::FrType::kWalFlush, tail,
                 static_cast<uint64_t>(sim_->Now() - scheduled));
    }
    if (role_ == RaftRole::kLeader) {
      // The leader's own quorum contribution just advanced.
      AdvanceCommitFromMatches();
    }
  });
}

void RaftNode::MaybeClearSuspect() {
  if (!suspect_ || commit_idx_ < suspect_floor_) {
    return;
  }
  suspect_ = false;
  ++stats_.suspect_repaired;
  HC_LOG_INFO("node %d: suspect repaired (commit %llu >= floor %llu); campaigning re-enabled",
              options_.id, static_cast<unsigned long long>(commit_idx_),
              static_cast<unsigned long long>(suspect_floor_));
  if (auto* tracer = obs::TracerOf(sim_)) {
    tracer->Instant(obs::TrackOfHost(static_cast<HostId>(options_.id)), obs::kTidEvents,
                    "suspect-repaired", sim_->Now(),
                    "floor " + std::to_string(suspect_floor_));
  }
  if (auto* fr = obs::FrOf(sim_)) {
    fr->Record(sim_->Now(), options_.obs_id(), obs::FrType::kRecovery,
               static_cast<uint64_t>(obs::FrRecovery::kSuspectRepair), commit_idx_);
  }
  if (role_ == RaftRole::kFollower && election_timer_ == kInvalidEvent && CanCampaign()) {
    ArmElectionTimer();
  }
}

void RaftNode::RestartFromRecovery(const StableStorage::Recovery& rec, LogIndex applied,
                                   MembershipConfigPtr snap_config,
                                   LogIndex snap_config_idx) {
  HC_CHECK(storage_ != nullptr);
  ++restart_epoch_;
  current_term_ = rec.term;
  voted_for_ = rec.voted_for;
  persisted_term_ = rec.term;
  persisted_vote_ = rec.voted_for;
  log_.ResetTo(rec.base_index, rec.base_term);
  // Rebuild the config stack from durable sources only: the snapshot's
  // embedded config (or the construction-time initial config) as the base,
  // plus config entries found in the recovered log suffix.
  configs_.clear();
  if (snap_config != nullptr) {
    configs_.emplace_back(snap_config_idx, std::move(snap_config));
  } else {
    const int32_t initial_voters =
        options_.initial_voters > 0 ? std::min(options_.initial_voters, options_.cluster_size)
                                    : options_.cluster_size;
    configs_.emplace_back(LogIndex{0}, MakeInitialConfig(initial_voters));
  }
  for (const StableStorage::RecoveredEntry& re : rec.entries) {
    LogEntry entry;
    entry.term = re.term;
    entry.replier = re.replier;
    const bool ok = DecodeWalEntry(re.payload, &entry);
    HC_CHECK(ok);  // the record passed its CRC; the payload must parse
    const LogIndex idx = log_.Append(std::move(entry));
    HC_CHECK_EQ(idx, re.idx);
    if (log_.At(idx).config != nullptr && idx > configs_.back().first) {
      configs_.emplace_back(idx, log_.At(idx).config);
    }
  }
  role_ = RaftRole::kFollower;
  leader_hint_ = kInvalidNode;
  votes_ = 0;
  AbandonPreVote();
  // Everything that survived recovery is durable by construction; commit and
  // applied resume at the server's restored snapshot point and re-advance as
  // the leader confirms (commit is volatile in Raft).
  durable_index_ = log_.last_index();
  applied_idx_ = std::min(applied, log_.last_index());
  commit_idx_ = applied_idx_;
  announced_idx_ = log_.last_index();
  committed_config_idx_ = configs_.front().first;
  pending_ae_.reset();
  recovery_inflight_.clear();
  suspect_ = rec.suspect;
  suspect_floor_ = rec.suspect_floor;
  if (suspect_) {
    HC_LOG_INFO("node %d: suspect recovery; campaigning blocked until commit >= %llu",
                options_.id, static_cast<unsigned long long>(suspect_floor_));
  }
  if (auto* fr = obs::FrOf(sim_)) {
    fr->Record(sim_->Now(), options_.obs_id(), obs::FrType::kRecovery,
               static_cast<uint64_t>(obs::FrRecovery::kRestart), commit_idx_);
    if (suspect_) {
      fr->Record(sim_->Now(), options_.obs_id(), obs::FrType::kRecovery,
                 static_cast<uint64_t>(obs::FrRecovery::kSuspectEnter), suspect_floor_);
    }
  }
  MaybeClearSuspect();
}

void RaftNode::ArmElectionTimer() {
  // Re-arming cancels the previous timer outright (election timeouts re-arm
  // on every leader contact, so dead timers would otherwise pile up for the
  // full 5-10ms timeout span). The RNG draw stays one-per-arm, exactly as
  // under the epoch scheme, so pinned-seed runs are unchanged.
  sim_->Cancel(election_timer_);
  if (!CanCampaign()) {
    // Learners, spares, retired and suspect nodes never campaign; the guard
    // sits before the RNG draw, which is fine for determinism because it can
    // only trigger on runs that changed membership or recovered from faults.
    if (suspect_) {
      ++stats_.campaigns_blocked_suspect;
    }
    election_timer_ = kInvalidEvent;
    return;
  }
  const TimeNs span = options_.election_timeout_max - options_.election_timeout_min;
  TimeNs delay =
      options_.election_timeout_min +
      (span > 0 ? static_cast<TimeNs>(rng_.NextBelow(static_cast<uint64_t>(span))) : 0);
  if (election_timer_scale_ != 1.0) {
    // Timer-manipulation attack hook: the scale is applied after the draw, so
    // the RNG sequence is byte-identical to an unskewed run.
    delay = std::max<TimeNs>(static_cast<TimeNs>(static_cast<double>(delay) *
                                                 election_timer_scale_),
                             Micros(10));
  }
  election_timer_ = sim_->After(delay, [this]() {
    election_timer_ = kInvalidEvent;
    if (halted_) {
      return;
    }
    if (role_ != RaftRole::kLeader) {
      // With PreVote the timeout starts a non-disruptive poll; a majority of
      // pre-votes then runs the real election synchronously.
      if (options_.pre_vote) {
        StartPreVote();
      } else {
        StartElection();
      }
    }
  });
}

void RaftNode::SkewElectionTimer(double scale) {
  HC_CHECK_GT(scale, 0.0);
  election_timer_scale_ = scale;
  // Re-arm so the skew takes effect now rather than after the pending (full
  // length) timeout expires. Costs one RNG draw, like any other re-arm.
  if (role_ != RaftRole::kLeader && election_timer_ != kInvalidEvent) {
    ArmElectionTimer();
  }
}

void RaftNode::ArmHeartbeatTimer() {
  sim_->Cancel(heartbeat_timer_);
  heartbeat_timer_ = sim_->After(options_.heartbeat_interval, [this]() {
    heartbeat_timer_ = kInvalidEvent;
    if (halted_) {
      return;
    }
    if (role_ == RaftRole::kLeader) {
      OnHeartbeat();
      ArmHeartbeatTimer();
    }
  });
}

void RaftNode::OnHeartbeat() {
  // A heartbeat acts only on peers whose stream has been quiet for a full
  // interval: an actively flowing (pipelined) stream is its own liveness
  // signal, and rewinding it would retransmit the whole in-flight window.
  const TimeNs quiet_before = sim_->Now() - options_.heartbeat_interval;
  for (NodeId p : active_config().members) {
    if (p == options_.id) {
      continue;
    }
    if (peers_[static_cast<size_t>(p)].last_send > quiet_before) {
      continue;
    }
    MaybeSendAppend(p, /*heartbeat=*/true);
  }
  if (options_.use_aggregator) {
    if (agg_active_) {
      if (agg_last_send_ <= quiet_before) {
        MaybeSendAggAppend(/*heartbeat=*/true);
      }
    } else if (!ConfigChangeInFlight()) {
      // The aggregator may have (re)appeared; re-probe it. While a config
      // change is in flight the fan-in stays point-to-point: a quorum counted
      // under the wrong voter set must never advance the commit index.
      env_->SendToAggregator(std::make_shared<AggVoteReq>(current_term_, committed_config_idx_));
    }
  }
  if (options_.check_quorum || options_.read_index) {
    // The aggregator fan-in hides follower replies from the leader, so
    // CheckQuorum and the read lease would starve for evidence in ++ mode.
    // Probe quiet voters with direct, stream-neutral heartbeat appends; the
    // direct replies refresh last_response without disturbing the stream.
    if (options_.use_aggregator && agg_active_) {
      const TimeNs now = sim_->Now();
      if (now - last_agg_commit_ >= CheckQuorumWindow()) {
        // The probes keep proving followers alive, yet the aggregator has
        // gone silent (a healthy one emits AGG_COMMIT every heartbeat): it
        // died. Fall back to direct replication without deposing ourselves —
        // before the probes existed, recovery required the followers to time
        // out and elect a new leader. The heartbeat re-probes the aggregator
        // and restores the switch fan-out when it comes back.
        ++stats_.agg_fallbacks;
        HC_LOG_INFO("node %d: aggregator silent; falling back to direct replication",
                    options_.id);
        if (auto* tracer = obs::TracerOf(sim_)) {
          tracer->Instant(obs::TrackOfHost(static_cast<HostId>(options_.id)),
                          obs::kTidEvents, "agg-fallback", sim_->Now(),
                          "term " + std::to_string(current_term_));
        }
        agg_active_ = false;
        agg_inflight_ = 0;
        for (PeerState& st : peers_) {
          st.direct_mode = true;
        }
        TrySendAll();
      } else {
        for (NodeId p : active_config().voters) {
          if (p == options_.id) {
            continue;
          }
          PeerState& st = peers_[static_cast<size_t>(p)];
          if (st.direct_mode) {
            continue;  // direct appends already elicit direct replies
          }
          if (now - st.last_response >= CheckQuorumWindow() / 2 &&
              now - st.last_probe >= options_.heartbeat_interval) {
            SendQuorumProbe(p);
          }
        }
      }
    }
    if (options_.check_quorum) {
      MaybeStepDownWithoutQuorum();
    }
  }
}

void RaftNode::SendQuorumProbe(NodeId peer) {
  PeerState& st = peers_[static_cast<size_t>(peer)];
  st.last_probe = sim_->Now();
  // Anchor the consistency check at the last agreed position: the follower
  // answers success without touching its log, and the monotone max() updates
  // on the reply path leave the aggregator-owned stream state intact. A
  // follower that has diverged answers failure, which flips it to the direct
  // repair path — exactly what a real heartbeat would do.
  const LogIndex prev = std::max(st.match_idx, log_.first_index() - 1);
  ++stats_.ae_sent;
  env_->SendToPeer(peer,
                   std::make_shared<AppendEntriesReq>(current_term_, options_.id, prev,
                                                      log_.TermAt(prev), commit_idx_,
                                                      std::vector<WireEntry>{}));
}

void RaftNode::MaybeStepDownWithoutQuorum() {
  if (role_ != RaftRole::kLeader) {
    return;
  }
  if (QuorumContactedWithin(CheckQuorumWindow())) {
    return;
  }
  ++stats_.stepdowns_check_quorum;
  HC_LOG_INFO("node %d: no quorum contact within election timeout; stepping down",
              options_.id);
  if (auto* tracer = obs::TracerOf(sim_)) {
    tracer->Instant(obs::TrackOfHost(static_cast<HostId>(options_.id)), obs::kTidEvents,
                    "stepdown", sim_->Now(),
                    "check-quorum term " + std::to_string(current_term_));
  }
  BecomeFollower(current_term_, false);
}

bool RaftNode::QuorumContactedWithin(TimeNs window) const {
  const TimeNs floor = sim_->Now() - window;
  int32_t contacted = 0;
  for (NodeId p : active_config().voters) {
    if (p == options_.id) {
      ++contacted;  // a node always reaches itself
      continue;
    }
    const PeerState& st = peers_[static_cast<size_t>(p)];
    if (st.last_response > 0 && st.last_response >= floor) {
      ++contacted;
    }
  }
  return contacted >= active_config().majority();
}

// ---------------------------------------------------------------------------
// Role transitions
// ---------------------------------------------------------------------------

void RaftNode::BecomeFollower(Term term, bool reset_vote) {
  const bool was_leader = (role_ == RaftRole::kLeader);
  if (term > current_term_) {
    current_term_ = term;
    voted_for_ = kInvalidNode;
  } else if (reset_vote) {
    voted_for_ = kInvalidNode;
  }
  PersistHardState();
  AbandonPreVote();
  lease_floor_ = sim_->Now();  // a deposed leader must never serve reads
  role_ = RaftRole::kFollower;
  agg_active_ = false;
  sim_->Cancel(heartbeat_timer_);  // stop heartbeats
  heartbeat_timer_ = kInvalidEvent;
  if (was_leader) {
    env_->OnLeadershipChanged(false);
  }
  RecordRole(sim_, options_.obs_id(), current_term_, obs::FrRole::kFollower, suspect_);
  ArmElectionTimer();
}

void RaftNode::StartPreVote() {
  if (!CanCampaign()) {
    return;
  }
  ++stats_.prevote_rounds;
  pre_vote_active_ = true;
  pre_vote_term_ = current_term_ + 1;
  pre_votes_ = 1;  // our own pre-vote
  HC_LOG_INFO("node %d starts pre-vote poll for term %llu", options_.id,
              static_cast<unsigned long long>(pre_vote_term_));
  if (auto* tracer = obs::TracerOf(sim_)) {
    tracer->Instant(obs::TrackOfHost(static_cast<HostId>(options_.id)), obs::kTidEvents,
                    "prevote", sim_->Now(), "term " + std::to_string(pre_vote_term_));
  }
  RecordRole(sim_, options_.obs_id(), pre_vote_term_, obs::FrRole::kPreCandidate, suspect_);
  // Retry the poll on silence. This is the cycle's only RNG draw: a winning
  // poll enters StartElection with this timer still armed and draws nothing,
  // so the draw order matches a non-PreVote run arm for arm.
  ArmElectionTimer();
  if (pre_votes_ >= active_config().majority()) {
    StartElection();  // single-voter group
    return;
  }
  auto req = std::make_shared<RequestVoteReq>(pre_vote_term_, options_.id, log_.last_index(),
                                              log_.last_term(), /*pre_vote=*/true);
  for (NodeId p : active_config().voters) {
    if (p != options_.id) {
      env_->SendToPeer(p, req);
    }
  }
}

void RaftNode::AbandonPreVote() {
  pre_vote_active_ = false;
  pre_vote_term_ = 0;
  pre_votes_ = 0;
}

void RaftNode::StartElection() {
  if (!CanCampaign()) {
    return;
  }
  // Entered from a winning pre-vote poll: its retry timer (armed at poll
  // start) keeps covering this election, so don't draw a second timeout.
  const bool timer_covered = pre_vote_active_;
  AbandonPreVote();
  ++stats_.elections_started;
  role_ = RaftRole::kCandidate;
  ++current_term_;
  voted_for_ = options_.id;
  PersistHardState();  // the self-vote must survive a crash
  votes_ = 1;
  leader_hint_ = kInvalidNode;
  HC_LOG_INFO("node %d starts election for term %llu", options_.id,
              static_cast<unsigned long long>(current_term_));
  if (auto* tracer = obs::TracerOf(sim_)) {
    // Servers are attached to the fabric first, so HostId == NodeId here.
    tracer->Instant(obs::TrackOfHost(static_cast<HostId>(options_.id)), obs::kTidEvents,
                    "election", sim_->Now(), "term " + std::to_string(current_term_));
  }
  RecordRole(sim_, options_.obs_id(), current_term_, obs::FrRole::kCandidate, suspect_);
  if (!timer_covered) {
    ArmElectionTimer();  // retry on split vote
  }
  if (votes_ >= active_config().majority()) {
    BecomeLeader();
    return;
  }
  auto req = std::make_shared<RequestVoteReq>(current_term_, options_.id, log_.last_index(),
                                              log_.last_term());
  for (NodeId p : active_config().voters) {
    if (p != options_.id) {
      env_->SendToPeer(p, req);
    }
  }
}

void RaftNode::BecomeLeader() {
  HC_CHECK(role_ != RaftRole::kLeader);
  AbandonPreVote();
  role_ = RaftRole::kLeader;
  leader_hint_ = options_.id;
  ++stats_.times_leader;
  HC_LOG_INFO("node %d becomes leader of term %llu", options_.id,
              static_cast<unsigned long long>(current_term_));
  if (auto* tracer = obs::TracerOf(sim_)) {
    tracer->Instant(obs::TrackOfHost(static_cast<HostId>(options_.id)), obs::kTidEvents,
                    "leader", sim_->Now(), "term " + std::to_string(current_term_));
  }
  RecordRole(sim_, options_.obs_id(), current_term_, obs::FrRole::kLeader, suspect_);

  for (NodeId p = 0; p < options_.cluster_size; ++p) {
    PeerState& st = peers_[static_cast<size_t>(p)];
    st.next_idx = log_.last_index() + 1;
    st.match_idx = 0;
    st.applied_idx = 0;
    st.inflight = 0;
    st.commit_sent = 0;
    st.paused_recovery = false;
    // Until the aggregator handshake completes, replicate point-to-point.
    st.direct_mode = options_.use_aggregator;
    st.commit_acked = 0;
    // CheckQuorum grace period: a fresh leader gets one full window to
    // gather real responses before the quorum check may fire. Reads stay
    // gated separately by the current-term commit requirement.
    st.last_response = sim_->Now();
    st.last_probe = 0;
  }
  lease_floor_ = sim_->Now();
  agg_active_ = false;
  agg_inflight_ = 0;
  agg_commit_sent_ = 0;
  agg_next_idx_ = log_.last_index() + 1;

  scheduler_.Reset();
  scheduler_.SetMembers(active_config().voters);
  scheduler_.UpdateApplied(options_.id, applied_idx_);
  // Restart the learner catch-up clocks: progress observed by the old leader
  // is unknown here.
  learner_since_.clear();
  for (NodeId l : active_config().learners) {
    learner_since_.emplace(l, sim_->Now());
  }
  // Entries inherited from previous terms were already announced by their
  // leader (their replier field is immutable and replicated); announcement
  // resumes from the tail.
  announced_idx_ = log_.last_index();

  sim_->Cancel(election_timer_);  // cancel the election timer
  election_timer_ = kInvalidEvent;
  ArmHeartbeatTimer();

  if (options_.leader_noop) {
    LogEntry noop;
    noop.term = current_term_;
    noop.noop = true;
    noop.replier = options_.id;
    const LogIndex idx = log_.Append(std::move(noop));
    ++stats_.entries_appended;
    StorageAppendEntry(idx);
    ScheduleDurability(idx);
    if (!options_.assign_repliers) {
      announced_idx_ = idx;
    }
  }

  env_->OnLeadershipChanged(true);
  // Re-order client requests orphaned by the previous leader (section 5).
  env_->DrainUnorderedIntoLog();

  if (options_.use_aggregator && !ConfigChangeInFlight()) {
    env_->SendToAggregator(std::make_shared<AggVoteReq>(current_term_, committed_config_idx_));
  }

  TryAnnounce();
  TrySendAll();
}

// ---------------------------------------------------------------------------
// Client requests (leader)
// ---------------------------------------------------------------------------

bool RaftNode::SubmitRequest(std::shared_ptr<const RpcRequest> request, bool allow_duplicate) {
  HC_CHECK(request != nullptr);
  if (role_ != RaftRole::kLeader) {
    ++stats_.submits_rejected;
    return false;
  }
  if (!allow_duplicate && log_.FindRequest(request->rid()) != kNoLogIndex) {
    ++stats_.submits_rejected;
    return false;  // duplicate (e.g. unordered drain raced with an old entry)
  }
  const RequestId rid = request->rid();
  LogEntry entry;
  entry.term = current_term_;
  entry.read_only = request->read_only();
  entry.rid = rid;
  entry.ack_watermark = request->ack_watermark();
  if (options_.metadata_only) {
    entry.body_hash = HashRequestBody(*request);
  }
  entry.request = std::move(request);
  if (!options_.assign_repliers) {
    entry.replier = options_.id;
  }
  const LogIndex idx = log_.Append(std::move(entry));
  ++stats_.entries_appended;
  StorageAppendEntry(idx);
  ScheduleDurability(idx);
  obs::MarkStageAll(sim_, rid, obs::Stage::kOrdered, options_.obs_id(), sim_->Now());
  if (!options_.assign_repliers) {
    announced_idx_ = idx;
  }
  TryAnnounce();
  TrySendAll();
  return true;
}

RaftNode::ReadGrant RaftNode::AcquireReadIndex() {
  ReadGrant grant;
  if (!options_.read_index || role_ != RaftRole::kLeader) {
    ++stats_.read_index_rejected;
    return grant;
  }
  // A new leader's commit index is only known-current once it has committed
  // an entry of its own term (Raft section 8); the leader no-op provides one
  // within a round-trip of election.
  if (log_.TermAt(commit_idx_) != current_term_) {
    ++stats_.read_index_rejected;
    return grant;
  }
  // Leader lease: a quorum of the active config's voters must have responded
  // inside the lease window, and after the last config commit / role change —
  // a quorum counted under an older voter set or term proves nothing.
  const TimeNs window = options_.read_lease_timeout > 0 ? options_.read_lease_timeout
                                                        : options_.election_timeout_min;
  const TimeNs floor = std::max(sim_->Now() - window, lease_floor_);
  int32_t contacted = 0;
  for (NodeId p : active_config().voters) {
    if (p == options_.id) {
      ++contacted;
      continue;
    }
    const PeerState& st = peers_[static_cast<size_t>(p)];
    if (st.last_response > 0 && st.last_response >= floor) {
      ++contacted;
    }
  }
  if (contacted < active_config().majority()) {
    // The lease lapsed: no quorum contact inside the window, so serving the
    // read locally could race a newer leader. Refuse and let the server fall
    // back to the commit path.
    ++stats_.read_index_rejected;
    if (auto* tracer = obs::TracerOf(sim_)) {
      tracer->Instant(obs::TrackOfHost(static_cast<HostId>(options_.id)), obs::kTidEvents,
                      "lease-expired", sim_->Now(),
                      "term " + std::to_string(current_term_));
    }
    if (auto* fr = obs::FrOf(sim_)) {
      fr->Record(sim_->Now(), options_.obs_id(), obs::FrType::kLeaseExpire,
                 stats_.read_index_rejected, 0, static_cast<uint32_t>(current_term_));
    }
    return grant;
  }
  ++stats_.read_index_served;
  grant.granted = true;
  grant.read_index = commit_idx_;
  grant.replier = options_.id;
  if (options_.assign_repliers) {
    // Round-robin over voters already caught up to the read index, so a
    // forwarded grant is servable on arrival. This deliberately bypasses the
    // JBSQ scheduler: its bounded-queue accounting is repaid by log applies,
    // which ReadIndex traffic never generates. Self is always eligible (the
    // server layer queues the read until applied catches up), so selection
    // terminates.
    const auto& voters = active_config().voters;
    for (size_t i = 0; i < voters.size(); ++i) {
      const NodeId p = voters[(read_replier_rr_ + i) % voters.size()];
      if (p == options_.id ||
          peers_[static_cast<size_t>(p)].applied_idx >= grant.read_index) {
        grant.replier = p;
        read_replier_rr_ = (read_replier_rr_ + i + 1) % voters.size();
        break;
      }
    }
  }
  if (auto* tracer = obs::TracerOf(sim_)) {
    tracer->Instant(obs::TrackOfHost(static_cast<HostId>(options_.id)), obs::kTidEvents,
                    "read-index", sim_->Now(),
                    "idx " + std::to_string(grant.read_index) + " replier " +
                        std::to_string(grant.replier));
  }
  if (auto* fr = obs::FrOf(sim_)) {
    fr->Record(sim_->Now(), options_.obs_id(), obs::FrType::kLeaseGrant, grant.read_index,
               static_cast<uint64_t>(grant.replier),
               static_cast<uint32_t>(current_term_));
  }
  return grant;
}

// ---------------------------------------------------------------------------
// Membership changes (dissertation section 4, single-server at a time)
// ---------------------------------------------------------------------------

bool RaftNode::StartAddServer(NodeId node) {
  if (role_ != RaftRole::kLeader || ConfigChangeInFlight()) {
    return false;
  }
  if (node < 0 || node >= options_.cluster_size || node == options_.id) {
    return false;
  }
  if (active_config().IsMember(node)) {
    return false;
  }
  // Forget any replication state from a previous stint in the cluster; the
  // learner is (re)discovered from the log tail, backing off to a snapshot
  // when its log is too far behind.
  PeerState& st = peers_[static_cast<size_t>(node)];
  st = PeerState{};
  st.next_idx = log_.last_index() + 1;
  st.direct_mode = options_.use_aggregator;
  // Catch-up starts now, not at commit: the learner config is effective on
  // append, so the snapshot/stream repair overlaps the change's own
  // replication (and often finishes before it commits).
  learner_since_[node] = sim_->Now();
  return AppendConfigEntry(WithLearner(active_config(), node));
}

bool RaftNode::StartRemoveServer(NodeId node) {
  if (role_ != RaftRole::kLeader || ConfigChangeInFlight()) {
    return false;
  }
  if (!active_config().IsMember(node)) {
    return false;
  }
  MembershipConfigPtr next = WithRemoved(active_config(), node);
  if (next->voters.empty()) {
    return false;  // never remove the last voter
  }
  if (active_config().IsLearner(node)) {
    learner_since_.erase(node);
  }
  return AppendConfigEntry(std::move(next));
}

bool RaftNode::AppendConfigEntry(MembershipConfigPtr config) {
  HC_CHECK(role_ == RaftRole::kLeader);
  HC_CHECK(config != nullptr);
  LogEntry entry;
  entry.term = current_term_;
  entry.noop = true;  // configs are no-ops on the apply path
  entry.replier = options_.id;
  entry.config = std::move(config);
  const LogIndex idx = log_.Append(std::move(entry));
  ++stats_.entries_appended;
  StorageAppendEntry(idx);
  ScheduleDurability(idx);
  ++stats_.config_changes_proposed;
  HC_LOG_INFO("node %d proposes config %s at idx %llu", options_.id,
              log_.At(idx).config->Describe().c_str(), static_cast<unsigned long long>(idx));
  if (auto* tracer = obs::TracerOf(sim_)) {
    tracer->Instant(obs::TrackOfHost(static_cast<HostId>(options_.id)), obs::kTidEvents,
                    "config-proposed", sim_->Now(), log_.At(idx).config->Describe());
  }
  TrackConfig(idx, log_.At(idx).config);
  // The change replicates point-to-point: the aggregator's quorum register is
  // still sized to the old voter set, and an AGG_COMMIT computed under it
  // must not commit entries at or beyond the config boundary. The heartbeat
  // re-probes the aggregator once the change commits.
  if (options_.use_aggregator) {
    agg_active_ = false;
    agg_inflight_ = 0;
    for (PeerState& st : peers_) {
      st.direct_mode = true;
    }
  }
  if (!options_.assign_repliers) {
    announced_idx_ = idx;
  }
  TryAnnounce();
  TrySendAll();
  return true;
}

void RaftNode::TrackConfig(LogIndex idx, MembershipConfigPtr config) {
  HC_CHECK(config != nullptr);
  HC_CHECK_GT(idx, configs_.back().first);
  configs_.emplace_back(idx, std::move(config));
  ReconcileRoleWithConfig();
}

void RaftNode::RollbackConfigsAbove(LogIndex idx) {
  bool changed = false;
  while (configs_.size() > 1 && configs_.back().first >= idx) {
    // A truncated config entry was never committed (committed entries are
    // never truncated); the previous config becomes active again.
    configs_.pop_back();
    ++stats_.config_changes_aborted;
    changed = true;
  }
  if (changed) {
    ReconcileRoleWithConfig();
  }
}

void RaftNode::ReconcileRoleWithConfig() {
  scheduler_.SetMembers(active_config().voters);
  if (active_config().IsMember(options_.id)) {
    retired_ = false;
  }
  if (role_ == RaftRole::kLeader) {
    // A leader that is no longer a voter keeps leading until the removal
    // entry commits (dissertation section 4.2.2), then steps down in
    // SetCommit.
    return;
  }
  if (CanCampaign()) {
    if (election_timer_ == kInvalidEvent) {
      ArmElectionTimer();
    }
  } else {
    sim_->Cancel(election_timer_);
    election_timer_ = kInvalidEvent;
    if (role_ == RaftRole::kCandidate) {
      role_ = RaftRole::kFollower;
    }
  }
}

void RaftNode::MaybePromoteLearners() {
  if (role_ != RaftRole::kLeader || ConfigChangeInFlight()) {
    return;
  }
  const MembershipConfig& cfg = active_config();
  // Caught up means within one append batch of the *replication frontier*:
  // with replier assignment the streams only carry announced entries, and a
  // saturated cluster keeps an admitted-but-unannounced backlog far larger
  // than one batch. Measuring against the raw log tail would then deadlock —
  // promotion needs catch-up, catch-up is capped at the frontier, and the
  // frontier only advances once promotion adds replier capacity. A learner
  // matched to the frontier holds everything any voter can hold, so the
  // promotion entry reaches it in the same round-trip and it weighs on
  // quorums no later than a healthy voter would.
  const LogIndex frontier =
      options_.assign_repliers ? announced_idx_ : log_.last_index();
  for (NodeId learner : cfg.learners) {
    const PeerState& st = peers_[static_cast<size_t>(learner)];
    // applied_idx also counts: once the aggregator stream covers the learner
    // its replies bypass the leader and match_idx freezes, but AGG_COMMIT
    // keeps reporting apply progress (applied never exceeds what it holds).
    const LogIndex progress = std::max(st.match_idx, st.applied_idx);
    if (progress + options_.max_entries_per_ae < frontier) {
      continue;
    }
    ++stats_.learners_promoted;
    auto it = learner_since_.find(learner);
    if (it != learner_since_.end()) {
      stats_.learner_catchup_ns_total += static_cast<uint64_t>(sim_->Now() - it->second);
      learner_since_.erase(it);
    }
    HC_LOG_INFO("node %d promotes learner %d", options_.id, learner);
    AppendConfigEntry(WithPromoted(cfg, learner));
    return;  // one config change in flight at a time
  }
}

void RaftNode::Retire() {
  if (retired_) {
    return;
  }
  // Management plane: the caller observed a committed config that excludes
  // this node. Our own log may not have learned that (removal can commit
  // while we are partitioned away), so retirement does not consult the local
  // config; a later committed config that re-adds us clears it
  // (ReconcileRoleWithConfig).
  retired_ = true;
  if (role_ == RaftRole::kLeader) {
    BecomeFollower(current_term_, false);
  } else {
    role_ = RaftRole::kFollower;
    sim_->Cancel(election_timer_);
    election_timer_ = kInvalidEvent;
  }
}

// ---------------------------------------------------------------------------
// Replier announcement (HovercRaft sections 3.3-3.6)
// ---------------------------------------------------------------------------

void RaftNode::TryAnnounce() {
  if (role_ != RaftRole::kLeader || !options_.assign_repliers) {
    return;
  }
  bool changed = false;
  while (announced_idx_ < log_.last_index()) {
    const LogIndex idx = announced_idx_ + 1;
    LogEntry& entry = log_.At(idx);
    if (entry.noop) {
      entry.replier = options_.id;
      if (storage_ != nullptr) {
        storage_->AppendAnnounce(idx, entry.replier);
      }
      announced_idx_ = idx;
      changed = true;
      continue;
    }
    const NodeId replier = scheduler_.Assign(idx);
    if (replier == kInvalidNode) {
      // No eligible node under the bounded-queue invariant; retry when
      // applied indices advance (never blocks liveness, section 3.4).
      break;
    }
    entry.replier = replier;
    if (storage_ != nullptr) {
      // Record the assignment so a restarted leader keeps it immutable; the
      // record rides on the next data barrier (an unsynced loss is benign —
      // the entries themselves replicate with the replier field).
      storage_->AppendAnnounce(idx, replier);
    }
    announced_idx_ = idx;
    changed = true;
    obs::MarkStageAll(sim_, entry.rid, obs::Stage::kDispatched,
                      options_.obs_node_base + replier, sim_->Now());
  }
  if (changed) {
    TrySendAll();
  }
}

bool RaftNode::IsReplicationTarget(LogIndex idx) const {
  if (options_.assign_repliers) {
    return idx <= announced_idx_;
  }
  return idx <= log_.last_index();
}

// ---------------------------------------------------------------------------
// Leader replication
// ---------------------------------------------------------------------------

std::vector<WireEntry> RaftNode::CollectEntries(LogIndex from, LogIndex to) const {
  std::vector<WireEntry> out;
  if (to < from) {
    return out;
  }
  out.reserve(static_cast<size_t>(to - from + 1));
  for (LogIndex idx = from; idx <= to; ++idx) {
    const LogEntry& e = log_.At(idx);
    WireEntry w;
    w.term = e.term;
    w.noop = e.noop;
    w.read_only = e.read_only;
    w.replier = e.replier;
    w.rid = e.rid;
    w.body_hash = e.body_hash;
    w.ack_watermark = e.ack_watermark;
    w.config = e.config;
    if (!options_.metadata_only) {
      // VanillaRaft ships the request payload inside append_entries.
      w.request = e.request;
      w.carries_payload = true;
    }
    out.push_back(std::move(w));
  }
  return out;
}

void RaftNode::TrySendAll() {
  if (role_ != RaftRole::kLeader) {
    return;
  }
  for (NodeId p : active_config().members) {
    if (p != options_.id) {
      MaybeSendAppend(p, /*heartbeat=*/false);
    }
  }
  MaybeSendAggAppend(/*heartbeat=*/false);
}

void RaftNode::MaybeSendAppend(NodeId peer, bool heartbeat) {
  if (role_ != RaftRole::kLeader) {
    return;
  }
  PeerState& st = peers_[static_cast<size_t>(peer)];
  if (options_.use_aggregator && agg_active_ && !st.direct_mode &&
      st.commit_acked >= committed_config_idx_) {
    // This follower is served by the aggregator's multicast. The commit-ack
    // gate keeps direct commit-carrying appends flowing to any peer that has
    // not yet observed the committed config: such a peer discards the new
    // epoch's AGG_COMMITs and would otherwise never learn the commit index.
    // With static membership committed_config_idx_ is 0 and the gate is
    // always open.
    return;
  }
  if (heartbeat && st.inflight > 0) {
    // Retransmission: a reply was lost; rewind to the last acknowledged
    // position and resend.
    st.next_idx = st.match_idx + 1;
    st.inflight = 0;
  }
  if (st.next_idx < log_.first_index()) {
    // The entries this follower needs are compacted away: repair it with a
    // state transfer instead (InstallSnapshot).
    if (heartbeat) {
      st.snapshot_inflight = false;  // retransmit a possibly-lost snapshot
    }
    if (!st.snapshot_inflight) {
      SendSnapshot(peer);
    }
    return;
  }
  if (!heartbeat) {
    if (st.inflight >= options_.max_outstanding_ae || st.paused_recovery) {
      return;
    }
  }
  const LogIndex limit =
      options_.assign_repliers ? announced_idx_ : log_.last_index();
  LogIndex end = 0;
  if (limit >= st.next_idx) {
    end = std::min(limit, st.next_idx + options_.max_entries_per_ae - 1);
  }
  const bool has_entries = end >= st.next_idx;
  const bool commit_news = st.commit_sent < commit_idx_;
  if (!heartbeat && !has_entries && !commit_news) {
    return;
  }
  const LogIndex prev = st.next_idx - 1;
  auto msg = std::make_shared<AppendEntriesReq>(
      current_term_, options_.id, prev, log_.TermAt(prev), commit_idx_,
      has_entries ? CollectEntries(st.next_idx, end) : std::vector<WireEntry>{});
  ++st.inflight;
  st.commit_sent = commit_idx_;
  st.last_send = sim_->Now();
  if (has_entries) {
    st.next_idx = end + 1;
  }
  ++stats_.ae_sent;
  env_->SendToPeer(peer, std::move(msg));
}

void RaftNode::MaybeSendAggAppend(bool heartbeat) {
  if (role_ != RaftRole::kLeader || !options_.use_aggregator || !agg_active_) {
    return;
  }
  // Compaction can overtake the aggregator stream when followers progressed
  // through the direct path: anything below the compaction point has been
  // applied cluster-wide, so the stream can skip ahead safely.
  agg_next_idx_ = std::max(agg_next_idx_, log_.first_index());
  if (heartbeat && agg_inflight_ > 0) {
    // Possible loss in the aggregation path; rewind to the last index the
    // aggregator confirmed (the commit index it announced).
    agg_next_idx_ = std::max(commit_idx_ + 1, log_.first_index());
    agg_inflight_ = 0;
  }
  if (!heartbeat && agg_inflight_ >= options_.max_outstanding_ae) {
    return;
  }
  const LogIndex limit =
      options_.assign_repliers ? announced_idx_ : log_.last_index();
  LogIndex end = 0;
  if (limit >= agg_next_idx_) {
    end = std::min(limit, agg_next_idx_ + options_.max_entries_per_ae - 1);
  }
  const bool has_entries = end >= agg_next_idx_;
  // Unlike the direct streams, the aggregator path never sends commit-only
  // append_entries: AGG_COMMIT already tells every node the commit index,
  // and echoing it back would create an AE <-> AGG_COMMIT ping-pong that
  // floods the followers (and defeats the pipelining cap, since every
  // AGG_COMMIT frees the in-flight slots).
  if (!heartbeat && !has_entries) {
    return;
  }
  const LogIndex prev = agg_next_idx_ - 1;
  auto msg = std::make_shared<AppendEntriesReq>(
      current_term_, options_.id, prev, log_.TermAt(prev), commit_idx_,
      has_entries ? CollectEntries(agg_next_idx_, end) : std::vector<WireEntry>{});
  ++agg_inflight_;
  agg_commit_sent_ = commit_idx_;
  agg_last_send_ = sim_->Now();
  if (has_entries) {
    agg_next_idx_ = end + 1;
  }
  ++stats_.ae_sent;
  env_->SendToAggregator(std::move(msg));
}

std::pair<LogIndex, MembershipConfigPtr> RaftNode::ConfigCoveringIndex(LogIndex idx) const {
  MembershipConfigPtr config;
  LogIndex config_idx = 0;
  for (const auto& c : configs_) {
    if (c.first <= idx) {
      config_idx = c.first;
      config = c.second;
    }
  }
  if (config_idx == 0) {
    config = nullptr;  // construction-time initial config; peers rebuild it
  }
  return {config_idx, std::move(config)};
}

void RaftNode::SendSnapshot(NodeId peer) {
  PeerState& st = peers_[static_cast<size_t>(peer)];
  Env::SnapshotCapture capture = env_->CaptureSnapshot();
  if (capture.last_included == kNoLogIndex ||
      capture.last_included < log_.first_index() - 1) {
    return;  // nothing coherent to ship yet
  }
  st.snapshot_inflight = true;
  st.last_send = sim_->Now();
  ++stats_.snapshots_sent;
  // Ship the latest config covered by the snapshot so a fresh learner whose
  // log starts here still learns the membership. Elided while it is still
  // the construction-time initial config (every node already has that), which
  // keeps the wire image of static-membership runs unchanged.
  auto [snap_config_idx, snap_config] = ConfigCoveringIndex(capture.last_included);
  env_->SendToPeer(peer, std::make_shared<InstallSnapshotReq>(
                             current_term_, options_.id, capture.last_included,
                             log_.TermAt(capture.last_included), std::move(capture.state),
                             std::move(snap_config), snap_config_idx));
}

void RaftNode::OnInstallSnapshot(const InstallSnapshotReq& req) {
  if (req.term() < current_term_) {
    env_->SendToPeer(req.leader(), std::make_shared<InstallSnapshotRep>(
                                       options_.id, current_term_, LogIndex{0}));
    return;
  }
  if (req.term() > current_term_ || role_ != RaftRole::kFollower) {
    BecomeFollower(req.term(), req.term() > current_term_);
  }
  leader_hint_ = req.leader();
  last_leader_contact_ = sim_->Now();
  AbandonPreVote();
  ArmElectionTimer();

  if (req.last_included() > commit_idx_) {
    ++stats_.snapshots_installed;
    bool kept_suffix = false;
    if (log_.Contains(req.last_included()) &&
        log_.TermAt(req.last_included()) == req.included_term()) {
      // Our log already matches through the snapshot point; keep the suffix.
      log_.CompactPrefix(req.last_included());
      kept_suffix = true;
    } else {
      // The discarded suffix takes any configs it introduced with it.
      RollbackConfigsAbove(req.last_included() + 1);
      log_.ResetTo(req.last_included(), req.included_term());
    }
    env_->RestoreSnapshot(req.state(), req.last_included(), req.included_term(), req.config(),
                          req.config_idx());
    if (storage_ != nullptr) {
      // The server persisted the received snapshot in RestoreSnapshot; now
      // the WAL can drop (or cut) everything the snapshot covers. The state
      // transfer is also what repairs a suspect node whose own history was
      // damaged beyond the log.
      if (!kept_suffix) {
        storage_->AppendTruncate(req.last_included() + 1);
      }
      storage_->AppendCompact(req.last_included(), req.included_term());
      const LogIndex durable_before = durable_index_;
      durable_index_ =
          std::min(std::max(durable_index_, req.last_included()), log_.last_index());
      if (durable_index_ < durable_before) {
        if (auto* fr = obs::FrOf(sim_)) {
          fr->Record(sim_->Now(), options_.obs_id(), obs::FrType::kRecovery,
                     static_cast<uint64_t>(obs::FrRecovery::kTruncate), durable_index_);
        }
      }
    }
    commit_idx_ = req.last_included();
    applied_idx_ = std::max(applied_idx_, req.last_included());
    MaybeClearSuspect();
    pending_ae_.reset();
    if (req.config() != nullptr) {
      // The snapshot's config becomes our committed base; config entries in
      // a kept log suffix stay tracked, a discarded suffix takes its configs
      // with it.
      std::vector<std::pair<LogIndex, MembershipConfigPtr>> next;
      next.emplace_back(req.config_idx(), req.config());
      if (kept_suffix) {
        for (const auto& c : configs_) {
          if (c.first > req.last_included()) {
            next.push_back(c);
          }
        }
      }
      configs_ = std::move(next);
      if (req.config_idx() > committed_config_idx_) {
        committed_config_idx_ = req.config_idx();
        ++stats_.config_changes_committed;
        env_->OnConfigCommitted(*req.config(), req.config_idx());
      }
      ReconcileRoleWithConfig();
    }
  }
  env_->SendToPeer(req.leader(), std::make_shared<InstallSnapshotRep>(
                                     options_.id, current_term_, req.last_included()));
}

void RaftNode::OnInstallSnapshotRep(const InstallSnapshotRep& rep) {
  if (rep.term() > current_term_) {
    BecomeFollower(rep.term(), true);
    return;
  }
  if (role_ != RaftRole::kLeader || rep.term() < current_term_) {
    return;
  }
  PeerState& st = peers_[static_cast<size_t>(rep.from())];
  st.last_response = sim_->Now();
  st.snapshot_inflight = false;
  if (rep.last_included() > 0) {
    st.match_idx = std::max(st.match_idx, rep.last_included());
    st.next_idx = std::max(st.next_idx, rep.last_included() + 1);
    if (rep.last_included() > st.applied_idx) {
      st.applied_idx = rep.last_included();
      scheduler_.UpdateApplied(rep.from(), st.applied_idx);
    }
    AdvanceCommitFromMatches();
    TryAnnounce();
    if (!active_config().learners.empty()) {
      MaybePromoteLearners();
    }
    MaybeSendAppend(rep.from(), false);
  }
}

void RaftNode::AdvanceCommitFromMatches() {
  if (role_ != RaftRole::kLeader) {
    return;
  }
  // k-th largest match over the active config's voters (self counts with its
  // full log) where k = that config's majority. A leader removing itself is
  // not a voter of the active config and therefore does not count toward the
  // quorum that commits its own removal (dissertation section 4.2.2).
  const MembershipConfig& cfg = active_config();
  // The leader's own contribution is capped at its durable index: an entry
  // only counts toward the commit quorum once it is in the leader's WAL too,
  // or a majority-of-one of crashed-and-recovered nodes could un-commit it.
  // Under kAckBeforeSync (the chaos control) the cap is deliberately absent —
  // that IS the unsafe semantics the control exists to demonstrate.
  const LogIndex self_match =
      (storage_ != nullptr && storage_->policy() != FsyncPolicy::kAckBeforeSync)
          ? durable_index_
          : log_.last_index();
  std::vector<LogIndex> matches;
  matches.reserve(cfg.voters.size());
  for (NodeId p : cfg.voters) {
    matches.push_back(p == options_.id ? self_match
                                       : peers_[static_cast<size_t>(p)].match_idx);
  }
  const int32_t majority = cfg.majority();
  std::nth_element(matches.begin(), matches.begin() + (majority - 1), matches.end(),
                   std::greater<LogIndex>());
  const LogIndex candidate = matches[static_cast<size_t>(majority - 1)];
  // candidate > commit implies candidate is above the compaction point
  // (base <= applied <= commit), so TermAt is safe to consult.
  if (candidate > commit_idx_ && log_.TermAt(candidate) == current_term_) {
    SetCommit(candidate);
  }
}

void RaftNode::SetCommit(LogIndex commit) {
  HC_CHECK_GE(commit, commit_idx_);
  HC_CHECK_LE(commit, log_.last_index());
  if (commit == commit_idx_) {
    return;
  }
  // Every entry in (commit_idx_, commit] is newly committed; those indices
  // sit above the compaction point (base <= applied <= old commit).
  auto* fr = obs::FrOf(sim_);
  if (obs::TracerOf(sim_) != nullptr || fr != nullptr) {
    for (LogIndex idx = commit_idx_ + 1; idx <= commit; ++idx) {
      const LogEntry& e = log_.At(idx);
      if (!e.noop) {
        obs::MarkStageAll(sim_, e.rid, obs::Stage::kCommitted, options_.obs_id(), sim_->Now());
      }
      if (fr != nullptr) {
        fr->Record(sim_->Now(), options_.obs_id(), obs::FrType::kCommit, idx, e.term,
                   static_cast<uint32_t>(current_term_));
      }
    }
  }
  commit_idx_ = commit;
  MaybeClearSuspect();

  // Membership configs that just committed: record the epoch, tell the
  // hosting layer (multicast groups, aggregator registers, retirement), and
  // start the learner catch-up clocks.
  if (committed_config_idx_ < active_config_idx()) {
    for (const auto& c : configs_) {
      if (c.first <= committed_config_idx_ || c.first > commit_idx_) {
        continue;
      }
      committed_config_idx_ = c.first;
      ++stats_.config_changes_committed;
      // Read leases do not survive a membership change: a quorum counted
      // under the old voter set proves nothing about the new one.
      lease_floor_ = sim_->Now();
      HC_LOG_INFO("node %d: config %s committed at idx %llu", options_.id,
                  c.second->Describe().c_str(), static_cast<unsigned long long>(c.first));
      if (auto* tracer = obs::TracerOf(sim_)) {
        tracer->Instant(obs::TrackOfHost(static_cast<HostId>(options_.id)), obs::kTidEvents,
                        "config-committed", sim_->Now(), c.second->Describe());
      }
      if (auto* fr2 = obs::FrOf(sim_)) {
        fr2->Record(sim_->Now(), options_.obs_id(), obs::FrType::kConfig, c.first,
                    c.second->members.size());
      }
      if (role_ == RaftRole::kLeader) {
        for (NodeId l : c.second->learners) {
          learner_since_.emplace(l, sim_->Now());
        }
      }
      env_->OnConfigCommitted(*c.second, c.first);
    }
  }

  env_->OnCommitAdvanced(commit_idx_);
  if (role_ == RaftRole::kLeader) {
    // Followers learn the new commit index with the next append_entries.
    TrySendAll();
    if (!active_config().learners.empty()) {
      MaybePromoteLearners();
    }
    if (!active_config().IsVoter(options_.id) && !ConfigChangeInFlight()) {
      // Our own removal just committed: the commit index went out with the
      // appends above; now step down (dissertation section 4.2.2). The
      // members elect a successor after their election timeouts.
      HC_LOG_INFO("node %d: self-removal committed; stepping down", options_.id);
      retired_ = true;
      BecomeFollower(current_term_, false);
    }
  }
}

// ---------------------------------------------------------------------------
// Follower append path
// ---------------------------------------------------------------------------

void RaftNode::OnAppendEntries(const AppendEntriesReq& req, bool via_aggregator) {
  ++stats_.ae_received;
  if (req.term() < current_term_) {
    env_->SendToPeer(req.leader(),
                     std::make_shared<AppendEntriesRep>(options_.id, current_term_, false,
                                                        LogIndex{0}, applied_idx_,
                                                        log_.last_index(), false, commit_idx_));
    return;
  }
  if (req.term() > current_term_ || role_ != RaftRole::kFollower) {
    BecomeFollower(req.term(), /*reset_vote=*/req.term() > current_term_);
  }
  leader_hint_ = req.leader();
  last_leader_contact_ = sim_->Now();
  AbandonPreVote();  // a live leader voids any poll in progress
  ArmElectionTimer();

  // Consistency check at prev. Anything at or below our compaction point is
  // committed and therefore matches by construction.
  LogIndex prev = req.prev_idx();
  Term prev_term = req.prev_term();
  const LogIndex base = log_.first_index() - 1;
  if (prev > log_.last_index()) {
    env_->SendToPeer(req.leader(),
                     std::make_shared<AppendEntriesRep>(options_.id, current_term_, false,
                                                        LogIndex{0}, applied_idx_,
                                                        log_.last_index(), false, commit_idx_));
    return;
  }
  if (prev >= base && log_.TermAt(prev) != prev_term) {
    const LogIndex hint = std::min(log_.last_index(), prev - 1);
    env_->SendToPeer(req.leader(),
                     std::make_shared<AppendEntriesRep>(options_.id, current_term_, false,
                                                        LogIndex{0}, applied_idx_, hint, false,
                                                        commit_idx_));
    return;
  }

  const AppendOutcome outcome = AppendResolvedEntries(req);
  if (outcome.waiting_recovery) {
    pending_ae_ = std::make_unique<AppendEntriesReq>(req);
    pending_ae_via_agg_ = via_aggregator;
  } else {
    pending_ae_.reset();
  }

  const LogIndex new_commit = std::min(req.leader_commit(), outcome.match);
  if (new_commit > commit_idx_) {
    SetCommit(new_commit);
  }

  auto rep = std::make_shared<AppendEntriesRep>(options_.id, current_term_, true, outcome.match,
                                                applied_idx_, log_.last_index(),
                                                outcome.waiting_recovery, commit_idx_);
  // Durability: the acknowledged entries must hit the local WAL first. The
  // flush device completes barriers in order, so deferred replies stay FIFO
  // and the leader's match index remains monotone.
  const NodeId reply_leader = req.leader();
  if (storage_ != nullptr) {
    const bool unsafe_ack = storage_->policy() == FsyncPolicy::kAckBeforeSync;
    if (!unsafe_ack && outcome.match > durable_index_) {
      // Sync-before-ack: withhold the reply until the barrier covers every
      // acknowledged entry. The fence drops it when the process crashed (or
      // the term moved on) in the persist window — a killed node never acks
      // from the grave; the leader simply retransmits after the restart.
      const uint64_t epoch = restart_epoch_;
      const Term term = current_term_;
      const LogIndex tail = outcome.match;
      const Term tail_term = log_.TermAt(tail);
      const bool inline_done = storage_->Sync(
          [this, rep, via_aggregator, reply_leader, epoch, term, tail, tail_term]() {
            if (halted_ || epoch != restart_epoch_ || term != current_term_) {
              ++stats_.acks_dropped_crash;
              return;
            }
            if (tail > durable_index_ && tail <= log_.last_index() &&
                (tail < log_.first_index() || log_.TermAt(tail) == tail_term)) {
              durable_index_ = tail;
            }
            if (via_aggregator) {
              env_->SendToAggregator(rep);
            } else {
              env_->SendToPeer(reply_leader, rep);
            }
          });
      if (!inline_done) {
        ++stats_.acks_deferred_persist;
      }
      return;
    }
    if (unsafe_ack && outcome.match > durable_index_) {
      // The unsafe chaos control: ack immediately, flush lazily. A power
      // failure in the window un-commits entries the leader already counted.
      ScheduleDurability(outcome.match);
    }
  } else if (options_.persist_latency > 0 && !req.entries().empty()) {
    // Storage-less harnesses keep the flat persist-delay model, now fenced on
    // the restart epoch and term so a node killed (or deposed) inside the
    // persist window never acknowledges from the grave.
    const uint64_t epoch = restart_epoch_;
    const Term term = current_term_;
    ++stats_.acks_deferred_persist;
    sim_->After(options_.persist_latency,
                [this, rep = std::move(rep), via_aggregator, reply_leader, epoch, term]() {
                  if (halted_ || epoch != restart_epoch_ || term != current_term_) {
                    ++stats_.acks_dropped_crash;
                    return;
                  }
                  if (via_aggregator) {
                    env_->SendToAggregator(rep);
                  } else {
                    env_->SendToPeer(reply_leader, rep);
                  }
                });
    return;
  }
  if (via_aggregator) {
    env_->SendToAggregator(std::move(rep));
  } else {
    env_->SendToPeer(reply_leader, std::move(rep));
  }
}

RaftNode::AppendOutcome RaftNode::AppendResolvedEntries(const AppendEntriesReq& req) {
  AppendOutcome outcome;
  LogIndex idx = req.prev_idx();
  outcome.match = std::max(idx, log_.first_index() - 1);
  for (const WireEntry& w : req.entries()) {
    ++idx;
    if (idx < log_.first_index()) {
      outcome.match = std::max(outcome.match, idx);
      continue;  // compacted, therefore committed and identical
    }
    if (log_.Contains(idx)) {
      if (log_.TermAt(idx) == w.term) {
        outcome.match = idx;
        continue;  // already have it
      }
      // Conflict: a stale extension from a deposed leader. Committed entries
      // can never conflict while durability holds, so truncation is safe.
      if (idx <= commit_idx_) {
        // Reachable only when the durability contract was deliberately broken
        // (the ack-before-sync / naive-recovery chaos controls): a quorum
        // lost acknowledged entries and the new leader is overwriting data we
        // committed. Roll our watermarks back and keep running — the point of
        // the control is to let the linearizability checker see the damage,
        // not to abort the simulation.
        ++stats_.committed_overwritten;
        HC_LOG_WARN("node %d: leader overwrote committed idx %llu (commit %llu) — "
                    "durability was violated upstream",
                    options_.id, static_cast<unsigned long long>(idx),
                    static_cast<unsigned long long>(commit_idx_));
        if (auto* fr = obs::FrOf(sim_)) {
          fr->Record(sim_->Now(), options_.obs_id(), obs::FrType::kCommitLoss, idx - 1,
                     commit_idx_);
        }
        commit_idx_ = idx - 1;
        applied_idx_ = std::min(applied_idx_, idx - 1);
        announced_idx_ = std::min(announced_idx_, idx - 1);
        committed_config_idx_ = std::min(committed_config_idx_, idx - 1);
      }
      RollbackConfigsAbove(idx);
      log_.TruncateFrom(idx);
      if (storage_ != nullptr) {
        storage_->AppendTruncate(idx);
        durable_index_ = std::min(durable_index_, idx - 1);
        if (auto* fr = obs::FrOf(sim_)) {
          fr->Record(sim_->Now(), options_.obs_id(), obs::FrType::kRecovery,
                     static_cast<uint64_t>(obs::FrRecovery::kTruncate), durable_index_);
        }
      }
    }
    HC_CHECK_EQ(idx, log_.last_index() + 1);

    LogEntry entry;
    entry.term = w.term;
    entry.noop = w.noop;
    entry.read_only = w.read_only;
    entry.replier = w.replier;
    entry.rid = w.rid;
    entry.body_hash = w.body_hash;
    entry.ack_watermark = w.ack_watermark;
    entry.config = w.config;
    if (!w.noop) {
      if (w.carries_payload) {
        HC_CHECK(w.request != nullptr);
        entry.request = w.request;
      } else {
        // HovercRaft: resolve the payload from the unordered set and verify
        // the body hash the leader shipped with the metadata (section 5) —
        // a mismatched hit is discarded and recovered point-to-point.
        entry.request = env_->LookupUnordered(w.rid);
        if (entry.request != nullptr && HashRequestBody(*entry.request) != w.body_hash) {
          env_->ConsumeUnordered(w.rid);
          entry.request = nullptr;
        }
        if (entry.request == nullptr) {
          // Missed the client multicast; fetch it point-to-point and stop
          // appending here — we must not acknowledge entries whose payload
          // we cannot produce.
          RequestRecovery(w.rid);
          outcome.waiting_recovery = true;
          break;
        }
        env_->ConsumeUnordered(w.rid);
      }
    }
    log_.Append(std::move(entry));
    ++stats_.entries_appended;
    StorageAppendEntry(idx);
    outcome.match = idx;
    if (w.config != nullptr) {
      // Effective on append (dissertation section 4.1): quorum and role
      // decisions use the new config before it commits.
      TrackConfig(idx, w.config);
    }
  }
  return outcome;
}

void RaftNode::RequestRecovery(const RequestId& rid) {
  const TimeNs now = sim_->Now();
  auto it = recovery_inflight_.find(rid);
  if (it != recovery_inflight_.end() && now - it->second < options_.heartbeat_interval) {
    return;  // a request is already in flight
  }
  recovery_inflight_[rid] = now;
  if (leader_hint_ == kInvalidNode || leader_hint_ == options_.id) {
    return;
  }
  ++stats_.recoveries_requested;
  env_->SendToPeer(leader_hint_, std::make_shared<RecoveryReq>(options_.id, rid));
}

void RaftNode::OnRecoveryReq(const RecoveryReq& req) {
  std::shared_ptr<const RpcRequest> payload;
  const LogIndex idx = log_.FindRequest(req.rid());
  if (idx != kNoLogIndex) {
    payload = log_.At(idx).request;
  } else {
    payload = env_->LookupUnordered(req.rid());
  }
  if (payload != nullptr) {
    ++stats_.recoveries_served;
  }
  env_->SendToPeer(req.from(), std::make_shared<RecoveryRep>(req.rid(), std::move(payload)));
}

void RaftNode::OnRecoveryRep(const RecoveryRep& rep) {
  recovery_inflight_.erase(rep.rid());
  if (!rep.found()) {
    return;  // the leader no longer has it; the next heartbeat retries
  }
  env_->StoreRecovered(rep.rid(), rep.request());
  if (pending_ae_ != nullptr) {
    const std::unique_ptr<AppendEntriesReq> ae = std::move(pending_ae_);
    const bool via_agg = pending_ae_via_agg_;
    OnAppendEntries(*ae, via_agg);
  }
}

// ---------------------------------------------------------------------------
// Leader reply handling
// ---------------------------------------------------------------------------

void RaftNode::OnAppendEntriesRep(const AppendEntriesRep& rep) {
  if (rep.term() > current_term_) {
    BecomeFollower(rep.term(), true);
    return;
  }
  if (role_ != RaftRole::kLeader || rep.term() < current_term_) {
    return;
  }
  PeerState& st = peers_[static_cast<size_t>(rep.from())];
  st.last_response = sim_->Now();  // current-term contact: CheckQuorum/lease evidence
  if (st.inflight > 0) {
    --st.inflight;
  }
  if (rep.applied() > st.applied_idx) {
    st.applied_idx = rep.applied();
    scheduler_.UpdateApplied(rep.from(), rep.applied());
  }
  if (rep.commit() > st.commit_acked) {
    st.commit_acked = rep.commit();
  }
  if (rep.success()) {
    st.match_idx = std::max(st.match_idx, rep.match());
    st.next_idx = std::max(st.next_idx, st.match_idx + 1);
    st.paused_recovery = rep.waiting_recovery();
    if (options_.use_aggregator && st.direct_mode && agg_active_ &&
        st.match_idx + 1 >= agg_next_idx_) {
      st.direct_mode = false;  // caught up; the aggregator stream covers it
    }
    AdvanceCommitFromMatches();
    TryAnnounce();
    if (!active_config().learners.empty()) {
      MaybePromoteLearners();
    }
    if (!st.paused_recovery) {
      MaybeSendAppend(rep.from(), false);
    }
  } else {
    if (rep.last_hint() < st.match_idx) {
      // The follower's log ends below what it once acknowledged: its WAL
      // recovery cut damaged entries out (it rejoined suspect). match_idx is
      // normally a monotone lower bound — durability-gated acks make it so —
      // but a media-corruption recovery is the one event that regresses it.
      // Without this reset the clamp below would pin next_idx above the
      // follower's log forever and repair would livelock. Dropping match is
      // always safe: it only forces re-replication, and commit never moves
      // backward. (A reordered stale reject can trip this spuriously; the
      // next successful ack simply re-raises match, costing one resend.)
      st.match_idx = 0;
      ++stats_.match_regressions;
    }
    // Do not clamp to the compaction point here: a follower whose hint lies
    // below first_index needs a state transfer, which MaybeSendAppend
    // triggers when it sees next_idx below the log's first index.
    const LogIndex backoff = std::min(st.next_idx - 1, rep.last_hint() + 1);
    st.next_idx = std::max(backoff, st.match_idx + 1);
    st.inflight = 0;
    if (options_.use_aggregator) {
      st.direct_mode = true;
    }
    MaybeSendAppend(rep.from(), false);
  }
}

// ---------------------------------------------------------------------------
// Elections
// ---------------------------------------------------------------------------

void RaftNode::OnRequestVote(const RequestVoteReq& req) {
  // Disruption prevention (dissertation section 4.2.3): a server removed
  // from the cluster stops receiving heartbeats before it learns of its own
  // removal and will campaign with ever-higher terms. While we are hearing
  // from a live leader, a candidate that is not a member of our active config
  // is ignored outright — before the term comparison, so its inflated term
  // cannot depose the leader. Never triggers with static membership (every
  // node is a member).
  const bool leader_is_live = last_leader_contact_ > 0 &&
                              sim_->Now() - last_leader_contact_ < options_.election_timeout_min;
  if (!active_config().IsMember(req.candidate()) && leader_is_live) {
    return;
  }
  const bool self_leading =
      role_ == RaftRole::kLeader && QuorumContactedWithin(CheckQuorumWindow());
  // A suspect replica (recovery cut its durable log below entries it may have
  // acknowledged — see RestartFromRecovery) must not endorse a candidate whose
  // log ends below its suspect floor: electing such a leader could overwrite
  // entries this node acked, whose replies a client may already hold.
  // Refusing is always safe; at worst the election waits for a candidate —
  // typically the old leader — whose log covers everything we ever acked.
  const bool floor_ok = !suspect_ || req.last_idx() >= suspect_floor_;
  if (req.pre_vote()) {
    // Pre-vote poll (dissertation section 9.6): answered from current state,
    // mutating nothing — no term bump, no vote record, no timer reset. The
    // reply echoes the candidate's proposed term so it can tally the poll.
    bool poll_granted = false;
    if (req.term() > current_term_ && !leader_is_live && !self_leading && floor_ok) {
      poll_granted = req.last_term() > log_.last_term() ||
                     (req.last_term() == log_.last_term() &&
                      req.last_idx() >= log_.last_index());
    }
    if (poll_granted) {
      ++stats_.prevote_granted;
    } else {
      ++stats_.prevote_rejected;
    }
    env_->SendToPeer(req.candidate(), std::make_shared<RequestVoteRep>(
                                          options_.id, req.term(), poll_granted,
                                          /*pre_vote=*/true));
    return;
  }
  if (options_.check_quorum && (leader_is_live || self_leading)) {
    // Leader stickiness: while we hear a live leader — or we *are* one with
    // fresh quorum contact — a real RequestVote (forged, replayed, or from a
    // node whose timer was manipulated) is ignored outright, before the term
    // comparison. No reply is sent: a rejection carrying our term would hand
    // the (possibly forged) candidate id a back-door term bump via
    // OnRequestVoteRep. A genuinely cut-off leader loses quorum contact
    // within CheckQuorumWindow() and then yields to the higher term normally.
    ++stats_.votes_ignored_sticky;
    return;
  }
  if (req.term() > current_term_) {
    BecomeFollower(req.term(), true);
  }
  bool granted = false;
  if (req.term() == current_term_ &&
      (voted_for_ == kInvalidNode || voted_for_ == req.candidate())) {
    const bool up_to_date =
        req.last_term() > log_.last_term() ||
        (req.last_term() == log_.last_term() && req.last_idx() >= log_.last_index());
    if (up_to_date && floor_ok) {
      granted = true;
      voted_for_ = req.candidate();
      PersistHardState();  // the vote is a durable promise
      ArmElectionTimer();
    }
  }
  env_->SendToPeer(req.candidate(),
                   std::make_shared<RequestVoteRep>(options_.id, current_term_, granted));
}

void RaftNode::OnRequestVoteRep(const RequestVoteRep& rep) {
  if (rep.pre_vote()) {
    // Poll replies carry the *proposed* term; intercept them before the
    // higher-term check or a granted reply would bump our term — exactly
    // what PreVote exists to avoid.
    if (!pre_vote_active_ || rep.term() != pre_vote_term_ || !rep.granted() ||
        !active_config().IsVoter(rep.from())) {
      return;
    }
    ++pre_votes_;
    if (pre_votes_ >= active_config().majority()) {
      StartElection();  // the poll's retry timer keeps covering the election
    }
    return;
  }
  if (rep.term() > current_term_) {
    BecomeFollower(rep.term(), true);
    return;
  }
  if (role_ != RaftRole::kCandidate || rep.term() < current_term_ || !rep.granted()) {
    return;
  }
  if (!active_config().IsVoter(rep.from())) {
    return;  // only active-config voters count toward the quorum
  }
  ++votes_;
  if (votes_ >= active_config().majority()) {
    BecomeLeader();
  }
}

// ---------------------------------------------------------------------------
// Aggregator interaction (HovercRaft++)
// ---------------------------------------------------------------------------

void RaftNode::OnAggCommit(const AggCommitMsg& msg) {
  if (msg.term() < current_term_) {
    return;
  }
  if (msg.term() > current_term_) {
    BecomeFollower(msg.term(), true);
  }
  if (msg.epoch() != committed_config_idx_) {
    // The aggregator counted its quorum under a different config epoch than
    // our committed one; its commit index cannot be trusted here. Liveness is
    // unaffected: the leader keeps direct commit-carrying appends flowing to
    // every peer that has not acked the committed config.
    return;
  }
  if (role_ == RaftRole::kFollower) {
    // AGG_COMMIT is leader liveness: the aggregator only emits it while a
    // current-term leader feeds it.
    last_leader_contact_ = sim_->Now();
    AbandonPreVote();
    ArmElectionTimer();
  }
  if (role_ == RaftRole::kLeader) {
    agg_inflight_ = 0;
    last_agg_commit_ = sim_->Now();
    const auto& applied = msg.applied();
    for (NodeId p = 0; p < options_.cluster_size && static_cast<size_t>(p) < applied.size();
         ++p) {
      if (p == options_.id) {
        continue;
      }
      PeerState& st = peers_[static_cast<size_t>(p)];
      if (applied[static_cast<size_t>(p)] > st.applied_idx) {
        st.applied_idx = applied[static_cast<size_t>(p)];
        scheduler_.UpdateApplied(p, st.applied_idx);
        // Fresh apply progress is genuine evidence this follower is alive;
        // the aggregator's max-over-time match register is not.
        st.last_response = sim_->Now();
      }
    }
    if (!active_config().learners.empty()) {
      // A learner served by the aggregator stream reports progress only
      // through the applied vector above; this is its promotion path.
      MaybePromoteLearners();
    }
  }
  const LogIndex new_commit = std::min(msg.commit(), log_.last_index());
  if (new_commit > commit_idx_ && log_.TermAt(new_commit) == current_term_) {
    SetCommit(new_commit);
  }
  if (role_ == RaftRole::kLeader) {
    TryAnnounce();
    MaybeSendAggAppend(false);
  }
}

void RaftNode::OnAggVoteRep(const AggVoteRep& rep) {
  if (role_ != RaftRole::kLeader || rep.term() != current_term_ || !options_.use_aggregator) {
    return;
  }
  if (agg_active_) {
    return;
  }
  if (rep.epoch() != committed_config_idx_ || ConfigChangeInFlight()) {
    return;  // the aggregator is configured for a different voter set
  }
  agg_active_ = true;
  last_agg_commit_ = sim_->Now();  // start the silence clock at activation
  // Stream from the last quorum-confirmed point; overlapping entries are
  // deduplicated by the followers' consistency check.
  agg_next_idx_ = std::max(commit_idx_ + 1, log_.first_index());
  for (PeerState& st : peers_) {
    st.direct_mode = false;
  }
  MaybeSendAggAppend(false);
}

// ---------------------------------------------------------------------------
// Application feedback and compaction
// ---------------------------------------------------------------------------

void RaftNode::OnApplied(LogIndex idx) {
  if (idx > applied_idx_) {
    applied_idx_ = idx;
  }
  if (role_ == RaftRole::kLeader) {
    scheduler_.UpdateApplied(options_.id, applied_idx_);
    TryAnnounce();
  }
}

LogIndex RaftNode::MinAppliedKnown() const {
  LogIndex min_applied = applied_idx_;
  if (role_ == RaftRole::kLeader) {
    for (NodeId p : active_config().members) {
      if (p != options_.id) {
        min_applied = std::min(min_applied, peers_[static_cast<size_t>(p)].applied_idx);
      }
    }
  }
  return min_applied;
}

void RaftNode::CompactLog(LogIndex idx) {
  LogIndex safe = std::min(idx, applied_idx_);
  // Keep a tail window beyond the strictly-safe point: if this node is later
  // elected, it can still repair moderately lagging followers point-to-point
  // instead of needing a full state transfer.
  if (log_.last_index() <= options_.log_retention_entries) {
    return;
  }
  safe = std::min(safe, log_.last_index() - options_.log_retention_entries);
  if (safe >= log_.first_index()) {
    const Term safe_term = log_.TermAt(safe);
    log_.CompactPrefix(safe);
    if (storage_ != nullptr) {
      // The hosting server saved a covering snapshot before calling us, so
      // dropping whole WAL segments below the new base is recoverable.
      storage_->AppendCompact(safe, safe_term);
      durable_index_ = std::max(durable_index_, safe);
    }
  }
}

}  // namespace hovercraft
