// The Raft protocol engine with HovercRaft extensions.
//
// One class implements all three replicated configurations of the paper;
// RaftOptions selects the behaviour:
//   - VanillaRaft: full request payloads travel in append_entries; the
//     leader executes everything and replies to every client.
//   - HovercRaft: clients multicast payloads to every node; append_entries
//     carries ordering metadata only; the leader assigns repliers under
//     bounded queues; missing payloads are recovered point-to-point.
//   - HovercRaft++: the append_entries fan-out/fan-in is delegated to the
//     in-network aggregator; commit is learned from AGG_COMMIT.
//
// The core algorithm (election, log matching, commit rule) is identical in
// all modes — the extensions only change who transports what, which is the
// paper's central claim (section 5).
#ifndef SRC_RAFT_NODE_H_
#define SRC_RAFT_NODE_H_

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/raft/log.h"
#include "src/raft/membership.h"
#include "src/raft/messages.h"
#include "src/raft/options.h"
#include "src/raft/replier_scheduler.h"
#include "src/sim/simulator.h"
#include "src/storage/stable_storage.h"

namespace hovercraft {

enum class RaftRole { kFollower, kCandidate, kLeader };

const char* RaftRoleName(RaftRole role);

struct RaftStats {
  uint64_t elections_started = 0;
  uint64_t times_leader = 0;
  uint64_t ae_sent = 0;
  uint64_t ae_received = 0;
  uint64_t entries_appended = 0;
  uint64_t recoveries_requested = 0;
  uint64_t recoveries_served = 0;
  uint64_t submits_rejected = 0;
  uint64_t snapshots_sent = 0;
  uint64_t snapshots_installed = 0;
  // Dynamic membership (docs/membership.md).
  uint64_t config_changes_proposed = 0;
  uint64_t config_changes_committed = 0;
  uint64_t config_changes_aborted = 0;  // rolled back by log truncation
  uint64_t learners_promoted = 0;
  // Total time learners spent catching up (committed-as-learner to
  // promotion-appended), for the mean catch-up duration metric.
  uint64_t learner_catchup_ns_total = 0;
  // Adversarial hardening (docs/hardening.md).
  uint64_t prevote_rounds = 0;         // pre-elections started
  uint64_t prevote_granted = 0;        // pre-votes this node granted others
  uint64_t prevote_rejected = 0;       // pre-votes this node denied others
  uint64_t stepdowns_check_quorum = 0; // leader stepped down w/o quorum contact
  uint64_t votes_ignored_sticky = 0;   // RequestVotes ignored under stickiness
  uint64_t read_index_served = 0;      // linearizable reads granted a lease
  uint64_t read_index_rejected = 0;    // grants refused (no lease / no term commit)
  // Leader demoted a silent aggregator to direct replication (the quorum
  // probes prove followers alive while AGG_COMMIT has gone quiet).
  uint64_t agg_fallbacks = 0;
  // Durable storage (docs/durability.md).
  uint64_t acks_deferred_persist = 0;   // AE replies held behind an fsync
  uint64_t acks_dropped_crash = 0;      // deferred replies fenced off by a restart
  uint64_t campaigns_blocked_suspect = 0;  // election arms refused while suspect
  uint64_t suspect_repaired = 0;        // suspect cleared by commit catch-up
  // Leader saw a follower's log end below its recorded match index and reset
  // the match floor — the follower's recovery cut acknowledged entries out
  // (it rejoined suspect) and repair restarts from its actual log tail.
  uint64_t match_regressions = 0;
  // A leader overwrote entries below our commit index — committed data was
  // un-committed. Impossible while fsync-before-ack and protocol-aware
  // recovery hold; the unsafe chaos controls drive it nonzero, and the run
  // degrades gracefully so the linearizability checker can flag the damage.
  uint64_t committed_overwritten = 0;
};

class RaftNode {
 public:
  // Environment provided by the hosting server: message transport, the
  // unordered request store, and application callbacks.
  class Env {
   public:
    virtual ~Env() = default;
    virtual void SendToPeer(NodeId peer, MessagePtr msg) = 0;
    virtual void SendToAggregator(MessagePtr msg) = 0;
    // Unordered request set (paper section 3.2). Lookup does not remove;
    // Consume removes once the request enters the log.
    virtual std::shared_ptr<const RpcRequest> LookupUnordered(const RequestId& rid) = 0;
    virtual void ConsumeUnordered(const RequestId& rid) = 0;
    virtual void StoreRecovered(const RequestId& rid,
                                std::shared_ptr<const RpcRequest> request) = 0;
    // Snapshot transfer (straggler repair). Capture serializes the current
    // application state together with the log index it reflects; Restore
    // replaces the application state with a received snapshot.
    struct SnapshotCapture {
      Body state;
      LogIndex last_included = 0;
    };
    virtual SnapshotCapture CaptureSnapshot() = 0;
    // `included_term` and the covering membership config (possibly null) ride
    // along so hosts with durable storage can persist the received snapshot
    // with everything a later power-fail recovery needs.
    virtual void RestoreSnapshot(const Body& state, LogIndex last_included,
                                 Term included_term, MembershipConfigPtr config,
                                 LogIndex config_idx) = 0;
    // Commit index advanced; the server applies log entries in order and
    // reports completion through OnApplied.
    virtual void OnCommitAdvanced(LogIndex commit) = 0;
    virtual void OnLeadershipChanged(bool is_leader) = 0;
    // A fresh leader re-orders client requests orphaned by its predecessor
    // (paper section 5, bounded queues discussion).
    virtual void DrainUnorderedIntoLog() = 0;
    // A membership config entry committed at `idx`. Fires on every node (in
    // commit order) so the hosting layer can reconfigure multicast groups,
    // the aggregator, and retire removed servers. Default no-op so simple
    // test environments need not care.
    virtual void OnConfigCommitted(const MembershipConfig& config, LogIndex idx) {
      (void)config;
      (void)idx;
    }
  };

  RaftNode(Simulator* sim, uint64_t seed, const RaftOptions& options, Env* env);

  // Attaches durable storage. Call before Start(); null (the default) keeps
  // the pre-durability in-memory behaviour for lightweight test harnesses.
  // Every subsequent term/vote/log mutation is mirrored into the WAL, and
  // follower acks are withheld until the acknowledged entries are durable
  // (unless the policy is kAckBeforeSync — the unsafe chaos control).
  void set_storage(StableStorage* storage) { storage_ = storage; }

  // Arms the election timer. Call once after construction.
  void Start();

  // Reinitializes persistent state from a WAL recovery (power-fail restart).
  // Replaces term/vote/log wholesale; `applied` is the index the hosting
  // server restored its application state to (its local snapshot point) —
  // commit and applied resume there and re-advance as the leader confirms.
  // A suspect recovery (durable bytes lost) leaves the node unable to
  // campaign until commit_index reaches rec.suspect_floor; the missing
  // entries arrive through the ordinary AppendEntries / InstallSnapshot
  // repair path. `snap_config`/`snap_config_idx` carry the membership config
  // embedded in the server's restored snapshot (null with static membership
  // or no snapshot): it becomes the committed config base, with any config
  // entries in the recovered log suffix stacked above it.
  void RestartFromRecovery(const StableStorage::Recovery& rec, LogIndex applied,
                           MembershipConfigPtr snap_config = nullptr,
                           LogIndex snap_config_idx = 0);

  // Fail-stop crash injection: a halted node's timers stop firing (its host
  // already drops all traffic), and any persist completion scheduled before
  // the halt is fenced off — a node killed inside the persist window never
  // acks from the grave. Resume models a process restart with the in-memory
  // image intact (the pre-durability fail-stop model); a power-fail restart
  // instead goes through RestartFromRecovery, which replays the WAL and
  // genuinely loses the unsynced suffix.
  void Halt();
  void Resume();
  bool halted() const { return halted_; }

  // --- client-request path (leader only) ---
  // Returns false when this node is not the leader or the request is already
  // in the log (duplicate from the unordered drain). `allow_duplicate` skips
  // the in-log duplicate check: the server uses it to re-order a
  // retransmitted read-only request (re-execution is harmless and regenerates
  // the reply through the totally-ordered path), and to model the naive
  // no-dedup retry behaviour the chaos tests prove broken.
  bool SubmitRequest(std::shared_ptr<const RpcRequest> request, bool allow_duplicate = false);

  // --- linearizable reads (ReadIndex, leader only) ---
  // Attempts to grant a lease-protected read: returns the commit index the
  // read must observe plus the node chosen to serve it (self, or a caught-up
  // member under replier assignment). Fails (granted == false) when this
  // node is not the leader, options().read_index is off, no current-term
  // entry has committed yet, or the leader lease has lapsed (no quorum
  // contact within the lease window since the last config commit).
  struct ReadGrant {
    bool granted = false;
    LogIndex read_index = 0;
    NodeId replier = kInvalidNode;
  };
  ReadGrant AcquireReadIndex();

  // True while a quorum of the active config's voters (self included) has
  // responded within `window` ending now. CheckQuorum and the read lease are
  // both defined in terms of this predicate.
  bool QuorumContactedWithin(TimeNs window) const;

  // The CheckQuorum evaluation window. Never tighter than a few heartbeat
  // round-trips: the quiet-stream optimization makes follower replies arrive
  // at best every other heartbeat, so a window equal to a 1-heartbeat
  // election timeout (e.g. a staggered first election) would depose a
  // perfectly healthy leader. Widening past election_timeout_min is safe
  // here — CheckQuorum bounds the stale-leader window, it is not a safety
  // invariant — whereas the read lease (AcquireReadIndex) must keep the
  // strict election_timeout_min bound and therefore does not use this.
  TimeNs CheckQuorumWindow() const {
    return std::max(options_.election_timeout_min, 3 * options_.heartbeat_interval);
  }

  // Test hook for the election-timer manipulation attack: scales every
  // subsequently armed election timeout by `scale` (0 < scale <= 1 fires
  // early). Preserves the one-RNG-draw-per-arm discipline — the scale is
  // applied after the draw.
  void SkewElectionTimer(double scale);

  // --- message handlers, invoked by the hosting server ---
  void OnAppendEntries(const AppendEntriesReq& req, bool via_aggregator);
  void OnAppendEntriesRep(const AppendEntriesRep& rep);
  void OnRequestVote(const RequestVoteReq& req);
  void OnRequestVoteRep(const RequestVoteRep& rep);
  void OnAggCommit(const AggCommitMsg& msg);
  void OnAggVoteRep(const AggVoteRep& rep);
  void OnRecoveryReq(const RecoveryReq& req);
  void OnRecoveryRep(const RecoveryRep& rep);
  void OnInstallSnapshot(const InstallSnapshotReq& req);
  void OnInstallSnapshotRep(const InstallSnapshotRep& rep);

  // --- membership change (leader only; dissertation section 4) ---
  // Starts adding `node`: appends a config entry that carries the active
  // config plus `node` as a non-voting learner. Once that entry commits and
  // the learner's log is within one append batch of the leader's tail, the
  // leader automatically appends the promotion config making it a voter.
  // Returns false when not leader, a change is already in flight, or `node`
  // is already a member.
  bool StartAddServer(NodeId node);

  // Starts removing `node` (voter or learner). The config minus `node` takes
  // effect at the leader on append: the leader stops replicating to `node`
  // immediately and, when removing itself, keeps leading until the entry
  // commits under the new config and then steps down. Returns false when not
  // leader, a change is in flight, `node` is not a member, or removal would
  // leave zero voters.
  bool StartRemoveServer(NodeId node);

  // Management-plane retirement: called when a committed config excludes
  // this node (possibly learned out-of-band — the node itself may have been
  // partitioned away when the removal committed). Stops campaigning; message
  // handlers keep running so a later AddServer can bring the node back.
  void Retire();

  // --- application feedback ---
  // The server applied the entry at `idx` on its app thread.
  void OnApplied(LogIndex idx);

  // Drops log entries at or below `idx` once every live node has applied
  // them. Callers (the server's periodic GC) enforce the safety bound.
  void CompactLog(LogIndex idx);

  // --- queries ---
  RaftRole role() const { return role_; }
  bool IsLeader() const { return role_ == RaftRole::kLeader; }
  Term term() const { return current_term_; }
  NodeId id() const { return options_.id; }
  NodeId leader_hint() const { return leader_hint_; }
  LogIndex commit_index() const { return commit_idx_; }
  LogIndex applied_index() const { return applied_idx_; }
  LogIndex announced_index() const { return announced_idx_; }
  // Highest log index known durable in the local WAL (== last_index with no
  // storage attached). The leader's own quorum contribution is capped here.
  LogIndex durable_index() const {
    return storage_ == nullptr ? log_.last_index() : durable_index_;
  }
  bool suspect() const { return suspect_; }
  LogIndex suspect_floor() const { return suspect_floor_; }
  const RaftLog& log() const { return log_; }
  const RaftOptions& options() const { return options_; }
  const RaftStats& stats() const { return stats_; }
  const ReplierScheduler& scheduler() const { return scheduler_; }
  // Smallest applied index across the cluster as known to this leader;
  // safe upper bound for compaction.
  LogIndex MinAppliedKnown() const;

  // --- membership queries ---
  // The active (latest appended) config; effective immediately per the
  // dissertation's single-server change rule.
  const MembershipConfig& active_config() const { return *configs_.back().second; }
  MembershipConfigPtr active_config_ptr() const { return configs_.back().second; }
  LogIndex active_config_idx() const { return configs_.back().first; }
  LogIndex committed_config_idx() const { return committed_config_idx_; }
  bool ConfigChangeInFlight() const { return active_config_idx() > commit_idx_; }
  // Latest membership config at or below `idx` plus the log index it was
  // appended at. Returns {0, nullptr} while only the construction-time initial
  // config applies (recovery rebuilds that one from `initial_voters`). Hosts
  // use this to stamp local snapshots with the config a power-fail recovery
  // must come back with.
  std::pair<LogIndex, MembershipConfigPtr> ConfigCoveringIndex(LogIndex idx) const;
  bool retired() const { return retired_; }

 private:
  struct PeerState {
    LogIndex next_idx = 1;
    LogIndex match_idx = 0;
    LogIndex applied_idx = 0;
    uint32_t inflight = 0;
    LogIndex commit_sent = 0;
    bool paused_recovery = false;  // follower told us it awaits a payload
    bool direct_mode = false;      // ++: fell back to point-to-point
    bool snapshot_inflight = false;
    TimeNs last_send = 0;  // last AE/snapshot handed to this peer
    // Last time any current-term reply from this peer reached us directly
    // (AE/snapshot/vote reply). CheckQuorum and the read lease count a peer
    // as "in contact" while this is fresh. In aggregator mode the leader
    // sees no direct replies, so OnHeartbeat sends stream-neutral probe
    // appends (SendQuorumProbe) to refresh it.
    TimeNs last_response = 0;
    TimeNs last_probe = 0;  // rate-limits quorum probes per peer
    // Highest commit index this peer has confirmed (from its AE replies).
    // Gates the aggregator fast path across config epochs: AGG_COMMITs are
    // epoch-tagged, so a peer must have observed the committed config before
    // the leader may rely on the aggregator to deliver its commit index.
    LogIndex commit_acked = 0;
  };

  // -- role transitions --
  void BecomeFollower(Term term, bool reset_vote);
  void StartElection();
  // PreVote (dissertation section 9.6): polls peers at current_term_+1
  // without touching term/vote/role; a majority of grants triggers the real
  // StartElection. Falls through to StartElection directly when disabled.
  void StartPreVote();
  void AbandonPreVote();
  void BecomeLeader();
  // CheckQuorum: called from OnHeartbeat; steps the leader down when no
  // quorum of voters has responded within an election timeout.
  void MaybeStepDownWithoutQuorum();
  // Direct, stream-neutral heartbeat append used as a liveness probe when
  // the aggregator path hides follower replies from the leader.
  void SendQuorumProbe(NodeId peer);

  // -- timers (cancellable handles: re-arming cancels the previous event in
  // O(1) instead of leaving a dead timer in the queue) --
  void ArmElectionTimer();
  void ArmHeartbeatTimer();
  void OnHeartbeat();

  // -- leader replication --
  void TryAnnounce();
  void TrySendAll();
  void MaybeSendAppend(NodeId peer, bool heartbeat);
  void SendSnapshot(NodeId peer);
  void MaybeSendAggAppend(bool heartbeat);
  std::vector<WireEntry> CollectEntries(LogIndex from, LogIndex to) const;
  void AdvanceCommitFromMatches();
  void SetCommit(LogIndex commit);

  // -- follower append path --
  // Appends as many entries as have resolvable payloads; returns the new
  // match index and whether a payload is missing.
  struct AppendOutcome {
    LogIndex match = 0;
    bool waiting_recovery = false;
  };
  AppendOutcome AppendResolvedEntries(const AppendEntriesReq& req);
  void RequestRecovery(const RequestId& rid);

  bool IsReplicationTarget(LogIndex idx) const;

  // -- durable storage internals (no-ops with storage_ == nullptr) --
  // Mirrors the freshly appended entry at `idx` into the WAL.
  void StorageAppendEntry(LogIndex idx);
  // Persists term/vote when either changed since the last persist.
  void PersistHardState();
  // Schedules an fsync covering the log through `tail`; the completion
  // callback (fenced on restart epoch and log identity) advances
  // durable_index_ and, on the leader, re-evaluates the commit quorum.
  void ScheduleDurability(LogIndex tail);
  // Clears suspect mode once commit caught up to everything possibly acked.
  void MaybeClearSuspect();

  // -- membership internals --
  bool AppendConfigEntry(MembershipConfigPtr config);
  // Tracks a config observed at `idx` (leader append, follower append, or
  // snapshot install) and reconciles role/timers with the new active config.
  void TrackConfig(LogIndex idx, MembershipConfigPtr config);
  // Drops configs introduced at or above `idx` (log truncation on conflict).
  void RollbackConfigsAbove(LogIndex idx);
  // Re-arms or cancels the election timer and clears retirement after the
  // active config changed.
  void ReconcileRoleWithConfig();
  // Leader: appends the promotion config once a committed learner has caught
  // up to within one append batch of the log tail.
  void MaybePromoteLearners();
  // True when this node may campaign: a live, non-retired voter.
  bool CanCampaign() const;

  Simulator* sim_;
  RaftOptions options_;
  Env* env_;
  Rng rng_;

  // Persistent state. With storage_ attached every mutation is mirrored into
  // the WAL and survives exactly as far as the fsync discipline allows; with
  // no storage it is kept in memory only (the pre-durability fail-stop model
  // still used by lightweight unit-test harnesses).
  Term current_term_ = 0;
  NodeId voted_for_ = kInvalidNode;
  RaftLog log_;

  // Durable storage state (docs/durability.md). restart_epoch_ fences every
  // deferred persist callback: a callback captured under an older epoch (the
  // process crashed and recovered in between) must not ack or advance
  // durability.
  StableStorage* storage_ = nullptr;
  LogIndex durable_index_ = 0;
  uint64_t restart_epoch_ = 0;
  Term persisted_term_ = 0;
  NodeId persisted_vote_ = kInvalidNode;
  bool suspect_ = false;
  LogIndex suspect_floor_ = 0;

  // Volatile state.
  RaftRole role_ = RaftRole::kFollower;
  NodeId leader_hint_ = kInvalidNode;
  LogIndex commit_idx_ = 0;
  LogIndex applied_idx_ = 0;
  LogIndex announced_idx_ = 0;
  int32_t votes_ = 0;
  std::vector<PeerState> peers_;

  // PreVote round state (volatile; meaningful only while pre_vote_active_).
  bool pre_vote_active_ = false;
  Term pre_vote_term_ = 0;  // the term the poll proposes (current_term_ + 1)
  int32_t pre_votes_ = 0;

  // Read lease floor: reads need quorum contact *after* this point. Bumped
  // when a membership config commits (the quorum definition changed) and on
  // every term/role change.
  TimeNs lease_floor_ = 0;
  // Round-robins lease-protected reads over caught-up members.
  size_t read_replier_rr_ = 0;

  // Election-timer skew injected by the timer-manipulation attack (1.0 = no
  // skew; smaller fires earlier).
  double election_timer_scale_ = 1.0;

  // Aggregator stream state (HovercRaft++, leader side).
  bool agg_active_ = false;
  LogIndex agg_next_idx_ = 1;
  uint32_t agg_inflight_ = 0;
  LogIndex agg_commit_sent_ = 0;
  TimeNs agg_last_send_ = 0;
  // Last AGG_COMMIT accepted while leading; a healthy aggregator emits one
  // every heartbeat, so silence past the CheckQuorum window (with the direct
  // probes still answered) means the aggregator died, not the followers.
  TimeNs last_agg_commit_ = 0;

  // Follower-side recovery state.
  std::unique_ptr<AppendEntriesReq> pending_ae_;
  bool pending_ae_via_agg_ = false;
  std::unordered_map<RequestId, TimeNs, RequestIdHash> recovery_inflight_;

  EventId election_timer_ = kInvalidEvent;
  EventId heartbeat_timer_ = kInvalidEvent;
  bool halted_ = false;

  // Membership state. `configs_` holds the initial config (index 0) plus
  // every config entry still in the log and not yet compacted below the
  // committed one; the back is the active config. With static membership it
  // stays a single element and every guard below degenerates to the
  // pre-membership behaviour (committed_config_idx_ == 0).
  std::vector<std::pair<LogIndex, MembershipConfigPtr>> configs_;
  LogIndex committed_config_idx_ = 0;
  bool retired_ = false;
  // When this node last heard from a live leader; used to ignore votes
  // requested by non-members (a removed server that never learned its own
  // removal must not depose the leader — dissertation section 4.2.3).
  TimeNs last_leader_contact_ = 0;
  // Leader: time each active learner became one (committed), for the
  // catch-up duration stat.
  std::unordered_map<NodeId, TimeNs> learner_since_;

  ReplierScheduler scheduler_;
  RaftStats stats_;
};

}  // namespace hovercraft

#endif  // SRC_RAFT_NODE_H_
