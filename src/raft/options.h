// Configuration of a Raft node, including the HovercRaft extension switches.
// The extension flags compose: VanillaRaft sets none of them; HovercRaft sets
// metadata_only + assign_repliers; HovercRaft++ additionally use_aggregator.
#ifndef SRC_RAFT_OPTIONS_H_
#define SRC_RAFT_OPTIONS_H_

#include <cstdint>

#include "src/common/types.h"

namespace hovercraft {

struct RaftOptions {
  NodeId id = kInvalidNode;
  int32_t cluster_size = 3;

  // Offset added to `id` for every flight-recorder / stage-mark emission.
  // Raft node ids are group-local (0..n-1); when several consensus groups
  // share one fabric (src/shard) each group gets a disjoint base so their
  // rings, watchdog invariants and dumps never alias. 0 = the historic
  // single-group namespace.
  NodeId obs_node_base = 0;

  NodeId obs_id() const { return obs_node_base + id; }

  // Dynamic membership: number of nodes in the initial voter configuration.
  // 0 means "all cluster_size nodes vote" (the static-membership default).
  // When smaller than cluster_size, nodes [initial_voters, cluster_size) are
  // spares: they run the full message handlers but hold no vote and arm no
  // election timer until a committed config adds them (docs/membership.md).
  int32_t initial_voters = 0;

  // Election timeout is drawn uniformly from [min, max] and re-armed on any
  // valid leader contact. The heartbeat doubles as the retransmission timer.
  TimeNs election_timeout_min = Millis(5);
  TimeNs election_timeout_max = Millis(10);
  TimeNs heartbeat_interval = Millis(1);

  // Replication pipelining: entries per append_entries and outstanding
  // append_entries per peer (per-stream for the aggregator path). The
  // product bounds entries in flight per round-trip; production Rafts
  // pipeline so queueing delay at a follower does not cap throughput.
  uint32_t max_entries_per_ae = 64;
  uint32_t max_outstanding_ae = 2;

  // HovercRaft: separate request replication (client multicast) from
  // ordering; append_entries carries request metadata only (section 3.2).
  bool metadata_only = false;

  // HovercRaft: delegate client replies / read-only execution (section 3.3,
  // 3.5) with bounded queues (section 3.4).
  bool assign_repliers = false;
  ReplierPolicy replier_policy = ReplierPolicy::kLeaderOnly;
  int64_t bounded_queue_depth = 128;

  // HovercRaft++: route the append_entries fan-out/fan-in through the
  // in-network aggregator (section 4).
  bool use_aggregator = false;

  // Append a no-op entry on winning an election, so entries from previous
  // terms commit promptly (Raft section 8 requirement).
  bool leader_noop = true;

  // Compaction retention: CompactLog always keeps at least this many of the
  // newest entries so a fresh leader can repair lagging followers.
  LogIndex log_retention_entries = 4096;

  // --- Adversarial hardening (dissertation sections 9.6 and 6.4; see
  // docs/hardening.md). Each defense is independently toggleable so the
  // chaos battery can run attack schedules with and without it. ---

  // PreVote: before a real election, poll a pre-election at term+1 that
  // mutates no persistent state. A node that cannot win (stale log, or peers
  // still hear a live leader) never increments its term, so a rejoining
  // partitioned node cannot depose a healthy leader (term-storm defense).
  bool pre_vote = true;

  // CheckQuorum: a leader that has not heard from a quorum of the active
  // config's voters within an election timeout steps down, bounding the
  // stale-leader window. It also enables leader stickiness on the receive
  // side: a follower in contact with a live leader ignores RequestVote
  // outright (before the term comparison), defeating forged or replayed
  // vote pressure. Stickiness without CheckQuorum would risk wedging a
  // half-connected cluster, which is why the two share one flag.
  bool check_quorum = true;

  // ReadIndex + leader lease: serve linearizable read-only requests from the
  // leader's commit index (or forward grants to caught-up repliers) without
  // appending log entries. Off by default: the stock HovercRaft RO path
  // load-balances reads *through* the log (sections 3.3/3.5) and fig11
  // measures exactly that; ReadIndex is the opt-in fast path that takes
  // read-mostly traffic off the ordering plane.
  bool read_index = false;

  // Leader lease window for ReadIndex: a read is granted only if a quorum of
  // voters responded within this window (and after the last config commit).
  // 0 means "use election_timeout_min", the largest window that is safe —
  // a new leader cannot exist before that much silence. Tests inject lease
  // "clock skew" by widening it past the safe bound.
  TimeNs read_lease_timeout = 0;

  // Durability model: time to persist appended entries to the local write-
  // ahead log before acknowledging them (paper section 2.3). 0 models NVM /
  // battery-backed memory (the paper's assumption); ~10us models an NVMe
  // SSD; ~100us a SATA-era device. The leader's own write overlaps the
  // replication round-trip; a follower's write delays its append_entries
  // reply. See bench/ablation_persistence.
  TimeNs persist_latency = 0;

  int32_t majority() const { return cluster_size / 2 + 1; }
};

}  // namespace hovercraft

#endif  // SRC_RAFT_OPTIONS_H_
