#include "src/raft/replier_scheduler.h"

#include "src/common/check.h"

namespace hovercraft {

ReplierScheduler::ReplierScheduler(int32_t cluster_size, NodeId self, ReplierPolicy policy,
                                   int64_t bound, uint64_t seed)
    : cluster_size_(cluster_size),
      self_(self),
      policy_(policy),
      bound_(bound),
      rng_(seed),
      assigned_(static_cast<size_t>(cluster_size)),
      applied_(static_cast<size_t>(cluster_size), 0),
      is_member_(static_cast<size_t>(cluster_size), 1) {
  HC_CHECK_GT(cluster_size, 0);
  HC_CHECK_GT(bound, 0);
}

void ReplierScheduler::UpdateApplied(NodeId node, LogIndex applied) {
  HC_CHECK_GE(node, 0);
  HC_CHECK_LT(node, cluster_size_);
  auto& a = applied_[static_cast<size_t>(node)];
  if (applied > a) {
    a = applied;
  }
  auto& queue = assigned_[static_cast<size_t>(node)];
  while (!queue.empty() && queue.front() <= a) {
    queue.pop_front();
  }
}

bool ReplierScheduler::Eligible(NodeId node) const {
  return PendingOf(node) < bound_;
}

int64_t ReplierScheduler::PendingOf(NodeId node) const {
  HC_CHECK_GE(node, 0);
  HC_CHECK_LT(node, cluster_size_);
  return static_cast<int64_t>(assigned_[static_cast<size_t>(node)].size());
}

NodeId ReplierScheduler::Assign(LogIndex idx) {
  if (policy_ == ReplierPolicy::kLeaderOnly) {
    // The bound still applies to the leader itself: an overwhelmed leader
    // stops announcing rather than growing an unbounded apply backlog.
    if (!Eligible(self_)) {
      return kInvalidNode;
    }
    assigned_[static_cast<size_t>(self_)].push_back(idx);
    return self_;
  }

  NodeId chosen = kInvalidNode;
  if (policy_ == ReplierPolicy::kRandom) {
    // Reservoir-sample uniformly among eligible nodes.
    int32_t seen = 0;
    for (NodeId n = 0; n < cluster_size_; ++n) {
      if (!is_member_[static_cast<size_t>(n)]) {
        continue;
      }
      if (!Eligible(n)) {
        continue;
      }
      ++seen;
      if (rng_.NextBelow(static_cast<uint64_t>(seen)) == 0) {
        chosen = n;
      }
    }
  } else {  // kJbsq
    int64_t best = bound_;
    int32_t ties = 0;
    for (NodeId n = 0; n < cluster_size_; ++n) {
      if (!is_member_[static_cast<size_t>(n)]) {
        continue;
      }
      const int64_t pending = PendingOf(n);
      if (pending >= bound_) {
        continue;
      }
      if (pending < best) {
        best = pending;
        chosen = n;
        ties = 1;
      } else if (pending == best) {
        // Break ties randomly so the first node is not systematically favored.
        ++ties;
        if (rng_.NextBelow(static_cast<uint64_t>(ties)) == 0) {
          chosen = n;
        }
      }
    }
  }
  if (chosen != kInvalidNode) {
    assigned_[static_cast<size_t>(chosen)].push_back(idx);
  }
  return chosen;
}

void ReplierScheduler::Reset() {
  for (auto& q : assigned_) {
    q.clear();
  }
}

void ReplierScheduler::SetMembers(const std::vector<NodeId>& members) {
  std::vector<uint8_t> next(static_cast<size_t>(cluster_size_), 0);
  for (NodeId n : members) {
    if (n >= 0 && n < cluster_size_) {
      next[static_cast<size_t>(n)] = 1;
    }
  }
  for (NodeId n = 0; n < cluster_size_; ++n) {
    if (!next[static_cast<size_t>(n)]) {
      assigned_[static_cast<size_t>(n)].clear();
    }
  }
  is_member_ = std::move(next);
}

}  // namespace hovercraft
