// Replier assignment with bounded queues (paper sections 3.3, 3.4, 3.6).
//
// The leader tracks, per node, the entries it has announced with that node as
// designated replier but which the node has not yet applied. A node is
// eligible for new work while that backlog is below the bound; JBSQ picks the
// eligible node with the shortest backlog, RANDOM picks uniformly.
#ifndef SRC_RAFT_REPLIER_SCHEDULER_H_
#define SRC_RAFT_REPLIER_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"

namespace hovercraft {

class ReplierScheduler {
 public:
  ReplierScheduler(int32_t cluster_size, NodeId self, ReplierPolicy policy, int64_t bound,
                   uint64_t seed);

  // Records that node `node` has applied the log through `applied`.
  void UpdateApplied(NodeId node, LogIndex applied);

  // Picks a replier for log index `idx` and records the assignment, or
  // returns kInvalidNode when no node is eligible (the caller must retry
  // after applied progress — never a liveness problem per section 3.4).
  NodeId Assign(LogIndex idx);

  // Backlog of announced-but-unapplied assignments for `node`.
  int64_t PendingOf(NodeId node) const;

  // Forgets all assignments (leadership change).
  void Reset();

  // Restricts eligibility to `members` (dynamic membership): non-members are
  // skipped by Assign and their outstanding assignments are dropped — a
  // removed replier will never reply, so its backlog must not count against
  // the JBSQ shortest-queue comparison. Ids outside [0, cluster_size) are
  // ignored. The default is all nodes eligible.
  void SetMembers(const std::vector<NodeId>& members);

  ReplierPolicy policy() const { return policy_; }
  int64_t bound() const { return bound_; }

 private:
  bool Eligible(NodeId node) const;

  int32_t cluster_size_;
  NodeId self_;
  ReplierPolicy policy_;
  int64_t bound_;
  Rng rng_;
  // Per node: assigned log indices not yet covered by its applied index.
  std::vector<std::deque<LogIndex>> assigned_;
  std::vector<LogIndex> applied_;
  // Eligibility bitmap (1 = member). Checked before the per-node RNG draw so
  // that with all nodes member (the static default) the draw sequence is
  // identical to a build without membership support.
  std::vector<uint8_t> is_member_;
};

}  // namespace hovercraft

#endif  // SRC_RAFT_REPLIER_SCHEDULER_H_
