#include "src/raft/wal_codec.h"

#include <utility>

namespace hovercraft {

namespace {
constexpr uint8_t kHasRequest = 1 << 0;
constexpr uint8_t kHasConfig = 1 << 1;
constexpr uint8_t kIsNoop = 1 << 2;
constexpr uint8_t kIsReadOnly = 1 << 3;
}  // namespace

void EncodeConfig(const MembershipConfig& config, BufferWriter* w) {
  w->PutU32(static_cast<uint32_t>(config.voters.size()));
  for (NodeId v : config.voters) {
    w->PutI64(static_cast<int64_t>(v));
  }
  w->PutU32(static_cast<uint32_t>(config.learners.size()));
  for (NodeId l : config.learners) {
    w->PutI64(static_cast<int64_t>(l));
  }
}

MembershipConfigPtr DecodeConfig(BufferReader* r) {
  uint32_t nv = 0;
  if (!r->GetU32(nv).ok() || nv > 4096) {
    return nullptr;
  }
  std::vector<NodeId> voters;
  voters.reserve(nv);
  for (uint32_t i = 0; i < nv; ++i) {
    int64_t v = 0;
    if (!r->GetI64(v).ok()) {
      return nullptr;
    }
    voters.push_back(static_cast<NodeId>(v));
  }
  uint32_t nl = 0;
  if (!r->GetU32(nl).ok() || nl > 4096) {
    return nullptr;
  }
  std::vector<NodeId> learners;
  learners.reserve(nl);
  for (uint32_t i = 0; i < nl; ++i) {
    int64_t l = 0;
    if (!r->GetI64(l).ok()) {
      return nullptr;
    }
    learners.push_back(static_cast<NodeId>(l));
  }
  return MakeMembershipConfig(std::move(voters), std::move(learners));
}

std::vector<uint8_t> EncodeWalEntry(const LogEntry& entry) {
  BufferWriter w(64);
  uint8_t flags = 0;
  if (entry.request != nullptr) {
    flags |= kHasRequest;
  }
  if (entry.config != nullptr) {
    flags |= kHasConfig;
  }
  if (entry.noop) {
    flags |= kIsNoop;
  }
  if (entry.read_only) {
    flags |= kIsReadOnly;
  }
  w.PutU8(flags);
  w.PutI64(static_cast<int64_t>(entry.rid.client));
  w.PutU64(entry.rid.seq);
  w.PutU64(entry.body_hash);
  w.PutU64(entry.ack_watermark);
  if (entry.request != nullptr) {
    const RpcRequest& req = *entry.request;
    w.PutU8(static_cast<uint8_t>(req.policy()));
    w.PutU32(req.attempt());
    w.PutU64(req.ack_watermark());
    w.PutU32(req.shard_slot());
    if (req.body() != nullptr) {
      w.PutU32(static_cast<uint32_t>(req.body()->size()));
      w.PutBytes(*req.body());
    } else {
      w.PutU32(0);
    }
  }
  if (entry.config != nullptr) {
    EncodeConfig(*entry.config, &w);
  }
  return w.TakeBytes();
}

bool DecodeWalEntry(std::span<const uint8_t> bytes, LogEntry* out) {
  BufferReader r(bytes);
  uint8_t flags = 0;
  int64_t client = 0;
  if (!r.GetU8(flags).ok() || !r.GetI64(client).ok() || !r.GetU64(out->rid.seq).ok() ||
      !r.GetU64(out->body_hash).ok() || !r.GetU64(out->ack_watermark).ok()) {
    return false;
  }
  out->rid.client = static_cast<HostId>(client);
  out->noop = (flags & kIsNoop) != 0;
  out->read_only = (flags & kIsReadOnly) != 0;
  if ((flags & kHasRequest) != 0) {
    uint8_t policy = 0;
    uint32_t attempt = 0;
    uint64_t ack = 0;
    uint32_t shard_slot = 0;
    uint32_t body_len = 0;
    if (!r.GetU8(policy).ok() || !r.GetU32(attempt).ok() || !r.GetU64(ack).ok() ||
        !r.GetU32(shard_slot).ok() || !r.GetU32(body_len).ok() || r.remaining() < body_len) {
      return false;
    }
    std::vector<uint8_t> body;
    if (!r.GetBytes(body_len, body).ok()) {
      return false;
    }
    out->request =
        std::make_shared<RpcRequest>(out->rid, static_cast<R2p2Policy>(policy),
                                     MakeBody(std::move(body)), attempt, ack, shard_slot);
  }
  if ((flags & kHasConfig) != 0) {
    out->config = DecodeConfig(&r);
    if (out->config == nullptr) {
      return false;
    }
  }
  return r.AtEnd();
}

}  // namespace hovercraft
