// Byte codec between LogEntry and the opaque WAL entry payload the storage
// layer persists (src/storage/stable_storage.h). Term and replier live in the
// record envelope, not here; everything else a restarted node needs to
// reconstruct the entry — rid, flags, body hash, ack watermark, the request
// payload itself, and any membership config — is encoded by this codec.
#ifndef SRC_RAFT_WAL_CODEC_H_
#define SRC_RAFT_WAL_CODEC_H_

#include <span>
#include <vector>

#include "src/common/buffer.h"
#include "src/raft/log.h"
#include "src/raft/membership.h"

namespace hovercraft {

// Serializes everything of `entry` except term and replier.
std::vector<uint8_t> EncodeWalEntry(const LogEntry& entry);

// Inverse of EncodeWalEntry; leaves out->term and out->replier untouched.
// Returns false on a malformed payload (recovery treats that like a CRC
// failure at a higher layer — it should not happen for CRC-valid records).
bool DecodeWalEntry(std::span<const uint8_t> bytes, LogEntry* out);

// Membership config codec, shared with the server snapshot blob.
void EncodeConfig(const MembershipConfig& config, BufferWriter* w);
MembershipConfigPtr DecodeConfig(BufferReader* r);  // null on malformed input

}  // namespace hovercraft

#endif  // SRC_RAFT_WAL_CODEC_H_
