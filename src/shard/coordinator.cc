#include "src/shard/coordinator.h"

#include <memory>
#include <utility>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/obs/observability.h"
#include "src/r2p2/messages.h"

namespace hovercraft {

ShardCoordinator::ShardCoordinator(Simulator* sim, const CostModel& costs, ShardMap* map,
                                   std::vector<ShardGroupEndpoints> groups)
    : Host(sim, costs, Kind::kServer), map_(map), groups_(std::move(groups)) {
  HC_CHECK(map_ != nullptr);
  HC_CHECK_EQ(static_cast<int32_t>(groups_.size()), map_->group_count());
}

void ShardCoordinator::StartMove(uint32_t lo, uint32_t hi, GroupId dest) {
  Move m;
  m.lo = lo;
  m.hi = hi;
  m.dest = dest;
  queue_.push_back(m);
  if (phase_ == Phase::kIdle) {
    BeginNext();
  }
}

void ShardCoordinator::BeginNext() {
  while (!queue_.empty()) {
    Move m = queue_.front();
    queue_.pop_front();
    m.source = map_->OwnerOf(m.lo);
    if (!map_->BeginMove(m.lo, m.hi, m.dest)) {
      ++stats_.moves_rejected;
      HC_LOG_WARN("shard coordinator: rejected move [%u,%u] -> group %d", m.lo, m.hi,
                  m.dest.value);
      continue;
    }
    ++stats_.moves_started;
    m.move_id = next_move_id_++;
    current_ = m;
    phase_ = Phase::kFreezing;
    attempts_in_phase_ = 0;
    if (auto* tracer = obs::TracerOf(sim())) {
      tracer->Instant(obs::kClusterPid, obs::kTidEvents, "shard-move-start", sim()->Now(),
                      "[" + std::to_string(m.lo) + "," + std::to_string(m.hi) + "] g" +
                          std::to_string(m.source.value) + " -> g" +
                          std::to_string(m.dest.value));
    }
    ShardOp op;
    op.kind = ShardOpKind::kFreeze;
    op.move_id = m.move_id;
    op.lo = m.lo;
    op.hi = m.hi;
    SendCtl(m.source, std::move(op));
    return;
  }
  phase_ = Phase::kIdle;
}

void ShardCoordinator::SendCtl(GroupId group, ShardOp op) {
  HC_CHECK(group.valid());
  HC_CHECK_LT(static_cast<size_t>(group.value), groups_.size());
  inflight_group_ = group;
  inflight_op_ = op;
  const uint64_t seq = next_seq_++;
  inflight_seq_ = seq;
  ++attempts_in_phase_;
  ++stats_.ctl_sent;
  const RequestId rid{id(), seq};
  auto request = std::make_shared<RpcRequest>(rid, R2p2Policy::kReplicatedReq,
                                              EncodeShardOp(inflight_op_), /*attempt=*/1,
                                              ack_floor_, kShardCtlSlot);
  Send(groups_[static_cast<size_t>(group.value)].ingress, std::move(request));
  sim()->Cancel(retry_timer_);
  retry_timer_ = sim()->After(kCtlRetryInterval, [this]() {
    retry_timer_ = kInvalidEvent;
    RetryCtlOrFail();
  });
}

void ShardCoordinator::RetryCtlOrFail() {
  if (phase_ == Phase::kIdle) {
    return;
  }
  // Abort phases have no budget: an abandoned abort would leave the map and
  // the group's replicated serve state permanently disagreeing (a frozen
  // range the map says is served, or a stale installed copy at the
  // destination). Retrying forever is safe — the ops are fenced and
  // idempotent — and completes as soon as the group has a leader again.
  if (!IsAbortPhase(phase_) && attempts_in_phase_ >= retry_budget_) {
    FailMove();
    return;
  }
  ++stats_.ctl_retries;
  SendCtl(inflight_group_, inflight_op_);
}

void ShardCoordinator::HandleMessage(HostId /*src*/, const MessagePtr& msg) {
  if (const auto* resp = dynamic_cast<const RpcResponse*>(msg.get())) {
    if (phase_ == Phase::kIdle || resp->rid().seq != inflight_seq_) {
      return;  // late reply from a superseded (retried) control rid
    }
    // Sequential rids, one outstanding: this reply resolves every seq
    // allocated so far (abandoned retry rids are never retransmitted, so the
    // groups may GC their session entries).
    ack_floor_ = inflight_seq_;
    sim()->Cancel(retry_timer_);
    retry_timer_ = kInvalidEvent;
    OnPhaseReply(resp->body());
    return;
  }
  if (const auto* nack = dynamic_cast<const NackMsg*>(msg.get())) {
    if (phase_ == Phase::kIdle || nack->rid().seq != inflight_seq_) {
      return;
    }
    // Admission-control NACK under load: back off briefly, then resend under
    // a fresh rid (a NACKed rid was never admitted and never will execute).
    ++stats_.ctl_nacked;
    sim()->Cancel(retry_timer_);
    retry_timer_ = sim()->After(Micros(200), [this]() {
      retry_timer_ = kInvalidEvent;
      RetryCtlOrFail();
    });
    return;
  }
  // WrongShardNack cannot happen (control ops are never slot-gated); anything
  // else is unexpected.
  if (dynamic_cast<const WrongShardNack*>(msg.get()) == nullptr) {
    HC_LOG_WARN("shard coordinator: unexpected message %s", msg->Name());
  }
}

void ShardCoordinator::OnPhaseReply(const Body& reply) {
  switch (phase_) {
    case Phase::kFreezing: {
      capture_ = reply;
      stats_.capture_bytes += static_cast<uint64_t>(BodySize(reply));
      phase_ = Phase::kInstalling;
      attempts_in_phase_ = 0;
      ShardOp op;
      op.kind = ShardOpKind::kInstall;
      op.move_id = current_.move_id;
      op.lo = current_.lo;
      op.hi = current_.hi;
      op.payload = capture_;
      SendCtl(current_.dest, std::move(op));
      return;
    }
    case Phase::kInstalling: {
      // The destination committed (and applied) the install: cutover. From
      // this epoch on, the gates route the range's new traffic to the
      // destination, whose merged session table preserves exactly-once for
      // in-flight retransmissions.
      map_->CommitMove(current_.lo, current_.hi, current_.dest);
      if (auto* tracer = obs::TracerOf(sim())) {
        tracer->Instant(obs::kClusterPid, obs::kTidEvents, "shard-move-cutover", sim()->Now(),
                        "[" + std::to_string(current_.lo) + "," +
                            std::to_string(current_.hi) + "] epoch " +
                            std::to_string(map_->epoch()));
      }
      phase_ = Phase::kGc;
      attempts_in_phase_ = 0;
      ShardOp op;
      op.kind = ShardOpKind::kGc;
      op.move_id = current_.move_id;
      op.lo = current_.lo;
      op.hi = current_.hi;
      SendCtl(current_.source, std::move(op));
      return;
    }
    case Phase::kGc: {
      ++stats_.moves_completed;
      FinishMove();
      return;
    }
    case Phase::kAbortingDst: {
      // The destination committed the uninstall: nothing the aborted move
      // installed survives there, and its parked install copies are fenced.
      // Now un-freeze the source.
      BeginAbort(/*uninstall_dest=*/false);
      return;
    }
    case Phase::kAbortingSrc: {
      // The source committed the unfreeze and serves the range again; only
      // now flip the map so clients routed back to the source are accepted.
      map_->AbortMove(current_.lo, current_.hi);
      ++stats_.moves_aborted;
      if (auto* tracer = obs::TracerOf(sim())) {
        tracer->Instant(obs::kClusterPid, obs::kTidEvents, "shard-move-aborted", sim()->Now(),
                        "[" + std::to_string(current_.lo) + "," +
                            std::to_string(current_.hi) + "] epoch " +
                            std::to_string(map_->epoch()));
      }
      FinishMove();
      return;
    }
    case Phase::kIdle:
      return;
  }
}

void ShardCoordinator::FinishMove() {
  capture_ = nullptr;
  phase_ = Phase::kIdle;
  BeginNext();
}

void ShardCoordinator::FailMove() {
  ++stats_.moves_failed;
  HC_LOG_WARN("shard coordinator: move %llu [%u,%u] g%d->g%d gave up in phase %d",
              static_cast<unsigned long long>(current_.move_id), current_.lo, current_.hi,
              current_.source.value, current_.dest.value, static_cast<int>(phase_));
  switch (phase_) {
    case Phase::kFreezing:
      // No install was ever sent; un-freezing the source is the whole abort.
      BeginAbort(/*uninstall_dest=*/false);
      return;
    case Phase::kInstalling:
      // An install may have committed at the destination (its reply lost):
      // discard it there before the source resumes serving, or the
      // destination would silently keep a stale copy of a range it does not
      // own — and a parked install could resurrect it later.
      BeginAbort(/*uninstall_dest=*/true);
      return;
    case Phase::kGc:
      // The cutover committed: the move is semantically done and the map
      // already routes to the destination. Only the source's garbage survives
      // (a frozen, redirect-only range); a future move back installs over it,
      // and its parked GC copies are exactly the deletion the move owed.
      FinishMove();
      return;
    case Phase::kIdle:
    case Phase::kAbortingDst:
    case Phase::kAbortingSrc:
      HC_CHECK(false);  // abort phases retry without a budget
      return;
  }
}

void ShardCoordinator::BeginAbort(bool uninstall_dest) {
  attempts_in_phase_ = 0;
  ShardOp op;
  op.move_id = current_.move_id;
  op.lo = current_.lo;
  op.hi = current_.hi;
  if (uninstall_dest) {
    phase_ = Phase::kAbortingDst;
    op.kind = ShardOpKind::kUninstall;
    SendCtl(current_.dest, std::move(op));
  } else {
    phase_ = Phase::kAbortingSrc;
    op.kind = ShardOpKind::kUnfreeze;
    SendCtl(current_.source, std::move(op));
  }
}

}  // namespace hovercraft
