// The shard-move coordinator: the management-plane host that drives two-phase
// slot-range moves between consensus groups (docs/sharding.md).
//
// A move is three control requests, each an ordinary replicated R2P2 request
// tagged kShardCtlSlot and committed through the affected group's own log:
//
//   1. FREEZE [lo,hi]  -> source group.  Applying it stops the source serving
//      the range; the designated replier returns a capture of the range's
//      session-table entries and application state taken *at the freeze's
//      apply point* — the same point on every replica, after every previously
//      ordered write and before every subsequently rejected one.
//   2. INSTALL [lo,hi] + capture -> destination group. Applying it merges the
//      capture; its commit is the cutover point inside the destination.
//      When the reply arrives the coordinator commits the move in the
//      authoritative ShardMap (epoch bump) — from here the gates route new
//      traffic to the destination.
//   3. GC [lo,hi] -> source group. Applying it deletes the moved range and
//      its cached replies; the range is redirect-only at the source.
//
// Exactly-once survives the move because the capture carries the source's
// cached replies for the range: a retransmit that lands at the destination
// after cutover hits the merged session table and is answered from cache,
// never re-executed. Moves run one at a time, FIFO.
//
// Every move carries a unique, strictly increasing move id, stamped on each
// of its control ops. Retries of a phase use a fresh request id (the
// session-table cache would return the 1-byte ack marker where the
// coordinator needs the capture payload), which means abandoned attempts are
// unknown to the session table — a parked copy re-drained into a group's log
// after a leader change would re-run the step arbitrarily late. The servers
// fence those with the replicated per-group control watermark
// (ShardCtlKeyOf): an op at or below the highest applied (move, step) key
// mutates nothing, and its designated replier re-answers with the phase
// result so a live lost-reply retry still completes the phase.
//
// A move that exhausts its retry budget before the cutover aborts through
// the same logs: UNINSTALL at the destination (discards anything an install
// left there and fences the move's parked installs), then UNFREEZE at the
// source (serves the range again, fences parked freezes), then the map-level
// abort. The abort ops retry WITHOUT a budget: giving up would leave the map
// and a group's replicated serve state permanently disagreeing, and — like
// any replicated operation — their completion needs only that the group
// regains a functioning leader. The FIFO queue blocks behind an abort.
#ifndef SRC_SHARD_COORDINATOR_H_
#define SRC_SHARD_COORDINATOR_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/types.h"
#include "src/net/host.h"
#include "src/shard/shard_map.h"

namespace hovercraft {

// Where a group is reachable: its admission ingress (flow-control middlebox)
// and the replication multicast the retries would use.
struct ShardGroupEndpoints {
  Addr ingress = kInvalidHost;
  Addr group = kInvalidHost;
};

class ShardCoordinator final : public Host {
 public:
  ShardCoordinator(Simulator* sim, const CostModel& costs, ShardMap* map,
                   std::vector<ShardGroupEndpoints> groups);

  // Enqueues a move of [lo, hi] to `dest`; the source is the owner when the
  // move reaches the head of the queue. A move the map then refuses to
  // freeze (bad range, already owned by dest, overlapping another freeze) is
  // counted in stats().moves_rejected and skipped.
  void StartMove(uint32_t lo, uint32_t hi, GroupId dest);

  void HandleMessage(HostId src, const MessagePtr& msg) override;

  bool idle() const { return phase_ == Phase::kIdle && queue_.empty(); }

  struct CoordinatorStats {
    uint64_t moves_started = 0;
    uint64_t moves_completed = 0;
    uint64_t moves_rejected = 0;  // map refused the freeze (overlap/unknown)
    uint64_t moves_failed = 0;    // retry budget exhausted mid-protocol
    uint64_t moves_aborted = 0;   // abort protocol ran to completion
    uint64_t ctl_sent = 0;
    uint64_t ctl_retries = 0;
    uint64_t ctl_nacked = 0;      // admission NACKs on control requests
    uint64_t capture_bytes = 0;   // total freeze-capture payload moved
  };
  const CoordinatorStats& stats() const { return stats_; }

  // Tests shrink the budget so the abort path is reachable in milliseconds.
  void set_retry_budget(uint32_t budget) { retry_budget_ = budget; }

 private:
  // Control requests are retried with a fresh rid at this cadence until the
  // phase's reply arrives; a move that cannot make progress within the budget
  // is abandoned through the replicated abort protocol (kAbortingDst /
  // kAbortingSrc), which itself retries without a budget.
  static constexpr TimeNs kCtlRetryInterval = Millis(2);
  static constexpr uint32_t kCtlRetryBudget = 256;

  enum class Phase { kIdle, kFreezing, kInstalling, kGc, kAbortingDst, kAbortingSrc };

  static bool IsAbortPhase(Phase phase) {
    return phase == Phase::kAbortingDst || phase == Phase::kAbortingSrc;
  }

  struct Move {
    uint64_t move_id = 0;
    uint32_t lo = 0;
    uint32_t hi = 0;
    GroupId source = kInvalidGroup;
    GroupId dest = kInvalidGroup;
  };

  void BeginNext();
  // Sends this phase's control op to `group` under a fresh rid and re-arms
  // the retry timer.
  void SendCtl(GroupId group, ShardOp op);
  // Shared by the retry timer and the NACK backoff: give up on the move if
  // the phase's budget is spent (abort phases have none), else resend.
  void RetryCtlOrFail();
  void OnPhaseReply(const Body& reply);
  void FailMove();
  // Enters the abort protocol: kAbortingDst first when an install may have
  // reached the destination, else straight to kAbortingSrc.
  void BeginAbort(bool uninstall_dest);
  void FinishMove();

  ShardMap* map_;
  std::vector<ShardGroupEndpoints> groups_;

  std::deque<Move> queue_;
  Phase phase_ = Phase::kIdle;
  Move current_;
  Body capture_;  // freeze reply, forwarded in the install

  uint64_t next_seq_ = 1;
  uint64_t next_move_id_ = 1;
  uint32_t retry_budget_ = kCtlRetryBudget;
  uint64_t inflight_seq_ = 0;  // only this rid's reply advances the phase
  uint64_t ack_floor_ = 0;     // all seqs <= floor resolved; piggybacked
  GroupId inflight_group_ = kInvalidGroup;
  ShardOp inflight_op_;
  uint32_t attempts_in_phase_ = 0;
  EventId retry_timer_ = kInvalidEvent;

  CoordinatorStats stats_;
};

}  // namespace hovercraft

#endif  // SRC_SHARD_COORDINATOR_H_
