#include "src/shard/shard_chaos.h"

#include <array>
#include <memory>
#include <sstream>
#include <utility>

#include "src/app/kvstore/service.h"
#include "src/chaos/history.h"
#include "src/chaos/kv_workload.h"
#include "src/obs/flight_recorder.h"
#include "src/shard/sharded_cluster.h"

namespace hovercraft {

std::string ShardChaosResult::Describe() const {
  std::ostringstream out;
  out << "leaders_alive=" << leaders_alive << " digests_converged=" << digests_converged
      << " linearizable=" << linearizability.linearizable
      << " conclusive=" << linearizability.conclusive() << "\n"
      << "moves: started=" << moves_started << " completed=" << moves_completed
      << " failed=" << moves_failed << " epoch=" << final_epoch
      << " capture_bytes=" << capture_bytes << "\n"
      << "ops: invoked=" << invoked << " completed=" << completed << " nacked=" << nacked
      << " open=" << linearizability.open_ops << " states=" << linearizability.states_explored
      << "\n";
  if (!linearizability.failure_key.empty()) {
    out << "non-linearizable key: " << linearizability.failure_key << "\n";
  }
  out << "redirects=" << redirects << " wrong_shard_nacks=" << wrong_shard_nacks
      << " retransmits=" << retransmits << " abandoned=" << abandoned << "\n"
      << "dedup: hits=" << dedup_hits << " cached_replies=" << dedup_replies
      << " double_applies=" << double_applies << "\n"
      << "watchdog: " << watchdog_summary << "\n";
  return out.str();
}

ShardChaosResult RunShardChaos(const ShardChaosConfig& config) {
  ShardedClusterConfig sc;
  sc.groups = config.groups;
  sc.nodes_per_group = config.nodes_per_group;
  sc.mode = ClusterMode::kHovercRaft;
  sc.app_factory = []() { return std::make_unique<KvService>(); };
  sc.replier_policy = ReplierPolicy::kJbsq;
  sc.flow_control_threshold = config.flow_control_threshold;
  sc.seed = config.seed;
  // Symmetric election timeouts, as in the unsharded chaos runs: the stagger
  // shortcut livelocks a healed stale node 0.
  sc.stagger_first_election = true;
  ShardedCluster sharded(sc);
  if (sharded.flight_recorder() != nullptr) {
    sharded.flight_recorder()->set_repro(config.repro);
    sharded.flight_recorder()->set_dump_path(config.dump_path);
  }

  ShardChaosResult result;
  if (!sharded.WaitForAllLeaders()) {
    if (sharded.flight_recorder() != nullptr) {
      sharded.flight_recorder()->DumpNow("shard chaos: a group failed to elect a leader");
    }
    return result;  // leaders_alive stays false
  }

  KvHistoryRecorder recorder;
  std::vector<std::unique_ptr<ClientHost>> clients;
  for (int32_t i = 0; i < config.clients; ++i) {
    ChaosKvWorkloadConfig wc;
    wc.keys = config.keys;
    wc.value_tag = static_cast<uint64_t>(i);
    // The static target is a fallback only; every op carries a data slot and
    // resolves through the shard route.
    auto client = std::make_unique<ClientHost>(
        &sharded.sim(), sharded.config().costs,
        [&sharded]() { return sharded.group(GroupId{0}).ClientTarget(); },
        std::make_unique<ChaosKvWorkload>(wc), config.rate_rps_per_client,
        config.seed * 1000 + static_cast<uint64_t>(i));
    // One-lookup-behind map cache: a resolve returns the previously fetched
    // route and refreshes the cache. Post-cutover sends therefore hit the old
    // owner first and take the NACK(wrong_shard) redirect path, like a real
    // client with a cached map would.
    auto cache = std::make_shared<std::array<ClientHost::ShardRoute, kShardSlots>>();
    client->EnableSharding([&sharded, cache](uint32_t slot) {
      ClientHost::ShardRoute stale = (*cache)[slot];
      (*cache)[slot] = sharded.RouteOf(slot);
      return stale.epoch == 0 ? (*cache)[slot] : stale;
    });
    client->set_outstanding_limit(config.outstanding_limit, config.give_up);
    // Retries are load-bearing here: a request caught by a freeze window
    // chases the moving range via wrong-shard redirects, and past the
    // redirect cap the backoff timer re-resolves the route until the cutover
    // lands.
    ClientHost::RetryPolicy rp;
    rp.enabled = true;
    rp.initial_backoff = Micros(500);
    rp.max_backoff = Millis(4);
    client->set_retry_policy(rp);
    client->set_observer(&recorder);
    sharded.network().Attach(client.get());
    clients.push_back(std::move(client));
  }

  const TimeNs t0 = sharded.sim().Now();

  // Default schedule: move group 0's whole initial range to group 1 a third
  // of the way in, and back at two thirds.
  std::vector<ShardChaosConfig::MoveEvent> moves = config.moves;
  if (moves.empty() && config.groups > 1) {
    const std::vector<uint32_t> g0 = sharded.shard_map().SlotsOf(GroupId{0});
    ShardChaosConfig::MoveEvent there;
    there.at = config.duration / 3;
    there.lo = g0.front();
    there.hi = g0.back();
    there.dest = 1;
    ShardChaosConfig::MoveEvent back = there;
    back.at = 2 * config.duration / 3;
    back.dest = 0;
    moves.push_back(there);
    moves.push_back(back);
  }
  for (const auto& mv : moves) {
    sharded.sim().At(t0 + mv.at, [&sharded, mv]() {
      sharded.StartMove(mv.lo, mv.hi, GroupId{mv.dest});
    });
  }

  if (config.kill_leader_mid_move && !moves.empty()) {
    const auto first = moves.front();
    sharded.sim().At(t0 + first.at + Millis(1), [&sharded, first]() {
      const GroupId source = sharded.shard_map().OwnerOf(first.lo);
      // By now the range is frozen and the owner unchanged; kill that
      // group's leader so the freeze/capture overlaps a failover.
      Cluster& cluster = sharded.group(source.valid() ? source : GroupId{0});
      cluster.KillLeader();
    });
    sharded.sim().At(t0 + first.at + Millis(21), [&sharded, first]() {
      const GroupId source = sharded.shard_map().OwnerOf(first.lo);
      Cluster& cluster = sharded.group(source.valid() ? source : GroupId{0});
      for (NodeId n = 0; n < cluster.total_node_count(); ++n) {
        if (cluster.server(n).failed()) {
          cluster.RestartNode(n);
        }
      }
    });
  }

  for (auto& client : clients) {
    client->StartLoad(t0, t0 + config.duration);
  }
  sharded.sim().RunUntil(t0 + config.duration + config.settle);

  result.leaders_alive = true;
  result.digests_converged = true;
  for (int32_t g = 0; g < config.groups; ++g) {
    Cluster& cluster = sharded.group(GroupId{g});
    if (cluster.LeaderId() == kInvalidNode) {
      result.leaders_alive = false;
    }
    uint64_t digest0 = 0;
    bool first = true;
    for (NodeId n = 0; n < cluster.total_node_count(); ++n) {
      if (cluster.server(n).failed()) {
        continue;
      }
      const uint64_t digest = cluster.server(n).app().Digest();
      if (first) {
        digest0 = digest;
        first = false;
      } else if (digest != digest0) {
        result.digests_converged = false;
      }
    }
    for (NodeId n = 0; n < cluster.total_node_count(); ++n) {
      const ServerStats& st = cluster.server(n).server_stats();
      result.dedup_hits += st.dedup_hits;
      result.dedup_replies += st.dedup_replies;
      result.double_applies += st.double_applies;
    }
  }

  result.invoked = recorder.invoked();
  result.completed = recorder.completed();
  result.nacked = recorder.nacked();
  for (const auto& client : clients) {
    result.redirects += client->total_redirects();
    result.retransmits += client->total_retransmits();
    result.abandoned += client->total_abandoned();
  }
  result.wrong_shard_nacks = sharded.TotalWrongShardNacks();
  const ShardCoordinator::CoordinatorStats& cs = sharded.coordinator().stats();
  result.moves_started = cs.moves_started;
  result.moves_completed = cs.moves_completed;
  result.moves_failed = cs.moves_failed;
  result.capture_bytes = cs.capture_bytes;
  result.final_epoch = sharded.shard_map().epoch();

  result.watchdog_ok = sharded.AllWatchdogsOk();
  result.watchdog_summary = sharded.WatchdogSummary();
  result.linearizability =
      CheckKvLinearizability(recorder.History(), config.checker_max_states);
  if (sharded.flight_recorder() != nullptr && !result.ok()) {
    sharded.flight_recorder()->DumpNow("shard chaos verdict failure");
  }
  return result;
}

}  // namespace hovercraft
