// Sharded chaos: live shard moves under open-loop load, with the client-
// observed history checked for linearizability (Wing & Gong) across the move.
//
// The schedule is the sharding analogue of src/chaos: N groups over one
// fabric serve a small hot keyspace while the coordinator moves slot ranges
// between groups mid-window — by default group 0's entire initial range to
// group 1 a third of the way in, and back again at two thirds, so install
// and GC both run in both directions while every affected key stays under
// contention. Optionally the source group's leader is killed right after the
// first move starts (move + failover compounded).
//
// Pass criteria (the shard-chaos CI job asserts these on pinned seeds):
// every group ends with a live leader and converged replica digests, the
// global history is linearizable and conclusive, no server ever
// double-applied, and every per-group watchdog stayed silent.
#ifndef SRC_SHARD_SHARD_CHAOS_H_
#define SRC_SHARD_SHARD_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/linearizability.h"
#include "src/common/types.h"

namespace hovercraft {

struct ShardChaosConfig {
  int32_t groups = 2;
  int32_t nodes_per_group = 3;
  uint64_t seed = 1;

  int32_t clients = 4;
  double rate_rps_per_client = 20'000;  // 4 clients = 80 kRPS aggregate
  int32_t keys = 16;
  size_t outstanding_limit = 8;
  TimeNs give_up = Millis(30);

  TimeNs duration = Millis(120);
  TimeNs settle = Millis(80);

  // Per-group admission threshold; <= 0 disables the cap.
  int64_t flow_control_threshold = 0;

  // Scripted moves, offset from the start of the load window. Empty = the
  // default there-and-back schedule described above.
  struct MoveEvent {
    TimeNs at = 0;
    uint32_t lo = 0;
    uint32_t hi = 0;
    int32_t dest = 0;
  };
  std::vector<MoveEvent> moves;

  // Kill the first move's source-group leader 1 ms after the move starts and
  // restart it 20 ms later: freeze, failover and flow-ledger reconcile all
  // overlap.
  bool kill_leader_mid_move = false;

  uint64_t checker_max_states = 4'000'000;
  std::string repro;
  std::string dump_path;
};

struct ShardChaosResult {
  bool leaders_alive = false;       // every group has a live leader at the end
  bool digests_converged = false;   // within every group
  LinearizabilityResult linearizability;
  bool watchdog_ok = true;
  std::string watchdog_summary = "off";

  uint64_t moves_started = 0;
  uint64_t moves_completed = 0;
  uint64_t moves_failed = 0;
  uint64_t final_epoch = 0;

  size_t invoked = 0;
  size_t completed = 0;
  size_t nacked = 0;
  uint64_t redirects = 0;          // client-side wrong-shard redirect resends
  uint64_t wrong_shard_nacks = 0;  // middlebox + server gates
  uint64_t retransmits = 0;
  uint64_t abandoned = 0;
  uint64_t dedup_hits = 0;
  uint64_t dedup_replies = 0;
  uint64_t double_applies = 0;
  uint64_t capture_bytes = 0;

  bool ok() const {
    return leaders_alive && digests_converged && linearizability.linearizable &&
           linearizability.conclusive() && watchdog_ok && double_applies == 0;
  }
  std::string Describe() const;
};

ShardChaosResult RunShardChaos(const ShardChaosConfig& config);

}  // namespace hovercraft

#endif  // SRC_SHARD_SHARD_CHAOS_H_
