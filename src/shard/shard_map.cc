#include "src/shard/shard_map.h"

#include "src/common/check.h"

namespace hovercraft {

ShardMap::ShardMap(int32_t groups)
    : groups_(groups), owner_(kShardSlots), frozen_(kShardSlots, false) {
  HC_CHECK_GT(groups, 0);
  HC_CHECK_LE(static_cast<uint32_t>(groups), kShardSlots);
  for (uint32_t s = 0; s < kShardSlots; ++s) {
    owner_[s] = GroupId{static_cast<int32_t>(
        static_cast<uint64_t>(s) * static_cast<uint64_t>(groups) / kShardSlots)};
  }
}

GroupId ShardMap::OwnerOf(uint32_t slot) const {
  if (!IsDataSlot(slot)) {
    return kInvalidGroup;
  }
  return owner_[slot];
}

bool ShardMap::IsFrozen(uint32_t slot) const {
  return IsDataSlot(slot) && frozen_[slot];
}

bool ShardMap::ServesAt(GroupId group, uint32_t slot) const {
  if (!IsDataSlot(slot)) {
    return true;  // control/unsharded traffic is never gated by the map
  }
  return owner_[slot] == group && !frozen_[slot];
}

bool ShardMap::BeginMove(uint32_t lo, uint32_t hi, GroupId dest) {
  if (!IsDataSlot(lo) || !IsDataSlot(hi) || lo > hi || !dest.valid() ||
      dest.value >= groups_) {
    return false;
  }
  const GroupId source = owner_[lo];
  if (source == dest) {
    return false;  // nothing to move
  }
  for (uint32_t s = lo; s <= hi; ++s) {
    if (frozen_[s] || owner_[s] != source) {
      return false;
    }
  }
  for (uint32_t s = lo; s <= hi; ++s) {
    frozen_[s] = true;
  }
  return true;
}

void ShardMap::CommitMove(uint32_t lo, uint32_t hi, GroupId dest) {
  HC_CHECK(IsDataSlot(lo) && IsDataSlot(hi) && lo <= hi);
  for (uint32_t s = lo; s <= hi; ++s) {
    owner_[s] = dest;
    frozen_[s] = false;
  }
  ++epoch_;
}

void ShardMap::AbortMove(uint32_t lo, uint32_t hi) {
  HC_CHECK(IsDataSlot(lo) && IsDataSlot(hi) && lo <= hi);
  for (uint32_t s = lo; s <= hi; ++s) {
    frozen_[s] = false;
  }
  ++epoch_;
}

std::vector<uint32_t> ShardMap::SlotsOf(GroupId group) const {
  std::vector<uint32_t> slots;
  for (uint32_t s = 0; s < kShardSlots; ++s) {
    if (owner_[s] == group) {
      slots.push_back(s);
    }
  }
  return slots;
}

}  // namespace hovercraft
