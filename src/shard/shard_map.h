// The replicated ShardMap: which consensus group owns which hash slots, and
// which slots are mid-move (docs/sharding.md).
//
// The map is versioned by a monotonically increasing epoch. Every ownership
// change — a move's cutover, or an abort unfreezing a range — bumps it, so a
// client holding an old view can always tell its answer is stale from the
// epoch a NACK_WRONG_SHARD carries. In the simulation the authoritative copy
// lives with the coordinator (the control plane); clients "refresh" by
// re-reading it through their route function, which models fetching the map
// from a config service.
#ifndef SRC_SHARD_SHARD_MAP_H_
#define SRC_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"  // GroupId
#include "src/r2p2/shard.h"

namespace hovercraft {

class ShardMap {
 public:
  // Contiguous initial assignment: group g owns slots
  // [g * kShardSlots / groups, (g + 1) * kShardSlots / groups). Epoch starts
  // at 1 so "0" is always free to mean "this group serves the slot" in the
  // middlebox shard-gate protocol.
  explicit ShardMap(int32_t groups);

  uint64_t epoch() const { return epoch_; }
  int32_t group_count() const { return groups_; }

  GroupId OwnerOf(uint32_t slot) const;
  bool IsFrozen(uint32_t slot) const;

  // True when `group` currently serves `slot`: it is the owner and the slot
  // is not mid-move. This is the predicate the per-group shard gates use.
  bool ServesAt(GroupId group, uint32_t slot) const;

  // Marks [lo, hi] mid-move (still owned by the source). Fails — and changes
  // nothing — if the range is invalid, any slot is already frozen, or the
  // slots are not all owned by one group. Freezing does not bump the epoch:
  // ownership is unchanged, and the frozen window is reported through the
  // gates, not the map version.
  bool BeginMove(uint32_t lo, uint32_t hi, GroupId dest);

  // Cutover: assigns [lo, hi] to `dest`, unfreezes it, bumps the epoch.
  void CommitMove(uint32_t lo, uint32_t hi, GroupId dest);

  // Abandons a move: unfreezes [lo, hi] with ownership unchanged and bumps
  // the epoch (clients that saw redirects must refresh).
  void AbortMove(uint32_t lo, uint32_t hi);

  // All slots currently owned by `group`, ascending.
  std::vector<uint32_t> SlotsOf(GroupId group) const;

 private:
  int32_t groups_;
  uint64_t epoch_ = 1;
  std::vector<GroupId> owner_;  // size kShardSlots
  std::vector<bool> frozen_;    // size kShardSlots
};

}  // namespace hovercraft

#endif  // SRC_SHARD_SHARD_MAP_H_
