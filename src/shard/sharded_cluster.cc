#include "src/shard/sharded_cluster.h"

#include <utility>

#include "src/common/check.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/watchdog.h"

namespace hovercraft {

ShardedCluster::ShardedCluster(const ShardedClusterConfig& config)
    : config_(config),
      net_(&sim_, config_.costs, config_.seed ^ 0xFEEDFACE12345678ull),
      map_(config_.groups) {
  HC_CHECK(config_.app_factory != nullptr);
  HC_CHECK_GT(config_.groups, 0);
  HC_CHECK_GT(config_.nodes_per_group, 0);
  // Sharding routes through per-group admission middleboxes; the multicast
  // modes are the ones that have them.
  HC_CHECK(config_.mode == ClusterMode::kHovercRaft ||
           config_.mode == ClusterMode::kHovercRaftPP);

  if (config_.flight_recorder_depth > 0) {
    recorder_ = std::make_unique<obs::FlightRecorder>(config_.flight_recorder_depth);
    sim_.set_flight_recorder(recorder_.get());
    if (config_.watchdog) {
      for (int32_t g = 0; g < config_.groups; ++g) {
        auto wd = std::make_unique<obs::Watchdog>(recorder_.get());
        const NodeId base = ObsBaseOf(GroupId{g});
        wd->set_node_filter(base, base + ObsStride());
        recorder_->AddSink(wd.get());
        watchdogs_.push_back(std::move(wd));
      }
    }
  }

  for (int32_t g = 0; g < config_.groups; ++g) {
    const GroupId gid{g};
    ClusterConfig cc;
    cc.mode = config_.mode;
    cc.nodes = config_.nodes_per_group;
    cc.app_factory = config_.app_factory;
    cc.replier_policy = config_.replier_policy;
    cc.bounded_queue_depth = config_.bounded_queue_depth;
    cc.flow_control_threshold = config_.flow_control_threshold;
    cc.costs = config_.costs;
    cc.raft = config_.raft;
    cc.raft.obs_node_base = ObsBaseOf(gid);
    cc.server_template = config_.server_template;
    cc.server_template.sharded = true;
    cc.server_template.shard_owned_slots = map_.SlotsOf(gid);
    // Group-local seed, derived from the group id alone: group 0's stream is
    // independent of how many groups exist (determinism contract).
    cc.seed = config_.seed ^ (0x9E3779B97F4A7C15ull * static_cast<uint64_t>(g + 1));
    cc.stagger_first_election = config_.stagger_first_election;
    cc.obs_scope = config_.obs_scope + "shard" + std::to_string(g) + ".";
    cc.external_sim = &sim_;
    cc.external_net = &net_;

    auto cluster = std::make_unique<Cluster>(cc);
    FlowControl* fc = cluster->flow_control();
    HC_CHECK(fc != nullptr);
    fc->set_shard_gate([this, gid](uint32_t slot) -> uint64_t {
      return map_.ServesAt(gid, slot) ? 0 : map_.epoch();
    });
    // The middlebox records its flow-ledger events as the group's extra
    // pseudo-node so the group's node-filtered watchdog still balances them.
    fc->set_obs_node(ObsBaseOf(gid) + config_.nodes_per_group);
    groups_.push_back(std::move(cluster));
    if (config_.per_group_hook) {
      config_.per_group_hook(gid, *groups_.back());
    }
  }

  std::vector<ShardGroupEndpoints> endpoints;
  endpoints.reserve(groups_.size());
  for (auto& cluster : groups_) {
    ShardGroupEndpoints ep;
    ep.ingress = cluster->ClientTarget();
    ep.group = cluster->RetryTarget();
    endpoints.push_back(ep);
  }
  coordinator_ =
      std::make_unique<ShardCoordinator>(&sim_, config_.costs, &map_, std::move(endpoints));
  net_.Attach(coordinator_.get());
}

ShardedCluster::~ShardedCluster() {
  if (recorder_ != nullptr) {
    for (auto& wd : watchdogs_) {
      recorder_->RemoveSink(wd.get());
    }
    sim_.set_flight_recorder(nullptr);
  }
}

bool ShardedCluster::AllWatchdogsOk() const {
  for (const auto& wd : watchdogs_) {
    if (!wd->ok()) {
      return false;
    }
  }
  return true;
}

std::string ShardedCluster::WatchdogSummary() const {
  if (watchdogs_.empty()) {
    return "off";
  }
  std::string out;
  for (size_t g = 0; g < watchdogs_.size(); ++g) {
    if (!out.empty()) {
      out += " | ";
    }
    out += "g" + std::to_string(g) + ": " + watchdogs_[g]->Summary();
  }
  return out;
}

bool ShardedCluster::WaitForAllLeaders(TimeNs deadline) {
  auto all_elected = [this]() {
    for (auto& cluster : groups_) {
      if (cluster->LeaderId() == kInvalidNode) {
        return false;
      }
    }
    return true;
  };
  while (!all_elected() && sim_.Now() < deadline) {
    if (!sim_.Step()) {
      break;
    }
  }
  return all_elected();
}

ClientHost::ShardRoute ShardedCluster::RouteOf(uint32_t slot) const {
  ClientHost::ShardRoute route;
  route.epoch = map_.epoch();
  const GroupId owner = map_.OwnerOf(slot);
  if (owner.valid()) {
    const Cluster& cluster = group(owner);
    route.ingress = cluster.ClientTarget();
    route.retry = cluster.RetryTarget();
  }
  return route;
}

uint64_t ShardedCluster::TotalExecuted() const {
  uint64_t total = 0;
  for (const auto& cluster : groups_) {
    total += cluster->TotalExecuted();
  }
  return total;
}

uint64_t ShardedCluster::TotalReplies() const {
  uint64_t total = 0;
  for (const auto& cluster : groups_) {
    total += cluster->TotalReplies();
  }
  return total;
}

uint64_t ShardedCluster::TotalWrongShardNacks() const {
  uint64_t total = 0;
  for (const auto& cluster : groups_) {
    total += cluster->flow_control()->wrong_shard_nacked();
    for (NodeId n = 0; n < cluster->total_node_count(); ++n) {
      const ServerStats& st = cluster->server(n).server_stats();
      total += st.wrong_shard_nacks + st.wrong_shard_rejects;
    }
  }
  return total;
}

uint64_t ShardedCluster::TotalDoubleApplies() const {
  uint64_t total = 0;
  for (const auto& cluster : groups_) {
    for (NodeId n = 0; n < cluster->total_node_count(); ++n) {
      total += cluster->server(n).server_stats().double_applies;
    }
  }
  return total;
}

void ShardedCluster::ExportMetrics(obs::MetricsRegistry* metrics) {
  HC_CHECK(metrics != nullptr);
  for (auto& cluster : groups_) {
    cluster->ExportMetrics(metrics);
  }
  const std::string scope = config_.obs_scope + "shard/";
  metrics->SetGauge(scope + "epoch", static_cast<int64_t>(map_.epoch()));
  metrics->SetGauge(scope + "groups", static_cast<int64_t>(config_.groups));
  const ShardCoordinator::CoordinatorStats& cs = coordinator_->stats();
  metrics->SetCounter(scope + "moves_started", cs.moves_started);
  metrics->SetCounter(scope + "moves_completed", cs.moves_completed);
  metrics->SetCounter(scope + "moves_rejected", cs.moves_rejected);
  metrics->SetCounter(scope + "moves_failed", cs.moves_failed);
  metrics->SetCounter(scope + "moves_aborted", cs.moves_aborted);
  metrics->SetCounter(scope + "ctl_sent", cs.ctl_sent);
  metrics->SetCounter(scope + "ctl_retries", cs.ctl_retries);
  metrics->SetCounter(scope + "ctl_nacked", cs.ctl_nacked);
  metrics->SetCounter(scope + "capture_bytes", cs.capture_bytes);
  metrics->SetCounter(scope + "wrong_shard_nacks", TotalWrongShardNacks());
}

}  // namespace hovercraft
