// Multi-Raft sharding: N independent HovercRaft consensus groups composed
// over ONE simulated fabric and one virtual clock (docs/sharding.md).
//
// Each group is an ordinary Cluster built in borrowed mode (it shares the
// ShardedCluster's Simulator and Network instead of owning its own), with its
// own Raft instance, session tables, flow-control ledger, aggregator epoch
// and metrics namespace ("shard<g>."). Group identity is a first-class
// GroupId; nothing about a group's internals knows its global position except
// through two narrow seams:
//   - the obs-node base: group g's nodes record flight-recorder/metrics
//     events as obs ids [g*stride, g*stride+nodes), with one extra pseudo-
//     node per group for its flow-control middlebox, so per-group watchdogs
//     can filter the shared event stream without cross-group aliasing;
//   - the shard gates: each group's middlebox consults the authoritative
//     ShardMap before admission and redirects wrong-shard requests.
//
// Determinism contract: group 0's execution (and its recorded event stream)
// is byte-identical whether 1 or 4 groups share the fabric, provided group
// 0's traffic is identical. This holds because groups are built in order
// (group 0's host ids never depend on how many groups follow — attach group
// clients from the per_group_hook for the same reason), per-group seeds
// derive from the group id alone, and the fault-free fabric consumes no
// shared randomness.
#ifndef SRC_SHARD_SHARDED_CLUSTER_H_
#define SRC_SHARD_SHARDED_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/loadgen/client.h"
#include "src/shard/coordinator.h"
#include "src/shard/shard_map.h"

namespace hovercraft {

namespace obs {
class FlightRecorder;
class MetricsRegistry;
class Watchdog;
}  // namespace obs

struct ShardedClusterConfig {
  int32_t groups = 2;
  int32_t nodes_per_group = 3;
  ClusterMode mode = ClusterMode::kHovercRaft;  // must be a multicast mode
  std::function<std::unique_ptr<StateMachine>()> app_factory;

  ReplierPolicy replier_policy = ReplierPolicy::kJbsq;
  int64_t bounded_queue_depth = 128;
  // Per-group admission threshold; <= 0 disables the cap.
  int64_t flow_control_threshold = 0;

  CostModel costs;
  RaftOptions raft;
  ServerConfig server_template;
  uint64_t seed = 1;
  bool stagger_first_election = true;

  // Shared always-on flight recorder depth (0 disables recording and the
  // watchdogs). One per-group watchdog is attached as a sink, node-filtered
  // to the group's obs range.
  size_t flight_recorder_depth = 512;
  bool watchdog = true;

  // Prefix for ExportMetrics; each group appends "shard<g>." to it.
  std::string obs_scope;

  // Invoked right after each group's cluster is built, in group order. Attach
  // group-local clients here: host ids are allocated in attach order, so a
  // client attached from the hook gets the same id regardless of how many
  // groups are built afterwards (the determinism contract above).
  std::function<void(GroupId, Cluster&)> per_group_hook;
};

class ShardedCluster {
 public:
  explicit ShardedCluster(const ShardedClusterConfig& config);
  ~ShardedCluster();
  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  Simulator& sim() { return sim_; }
  Network& network() { return net_; }
  const ShardedClusterConfig& config() const { return config_; }

  int32_t group_count() const { return config_.groups; }
  Cluster& group(GroupId g) { return *groups_[static_cast<size_t>(g.value)]; }
  const Cluster& group(GroupId g) const { return *groups_[static_cast<size_t>(g.value)]; }

  ShardMap& shard_map() { return map_; }
  const ShardMap& shard_map() const { return map_; }
  ShardCoordinator& coordinator() { return *coordinator_; }

  // Obs-node numbering: stride per group (nodes + 1 middlebox pseudo-node).
  int32_t ObsStride() const { return config_.nodes_per_group + 1; }
  NodeId ObsBaseOf(GroupId g) const { return g.value * ObsStride(); }

  obs::FlightRecorder* flight_recorder() { return recorder_.get(); }
  obs::Watchdog* group_watchdog(GroupId g) {
    return watchdogs_.empty() ? nullptr : watchdogs_[static_cast<size_t>(g.value)].get();
  }
  bool AllWatchdogsOk() const;
  std::string WatchdogSummary() const;

  // Runs the simulator until every group elected a leader (or deadline).
  // Returns true when all groups have one.
  bool WaitForAllLeaders(TimeNs deadline = Seconds(2));

  // Current route for a slot against the authoritative map: owner group's
  // admission ingress and retry path plus the map epoch. Plug straight into
  // ClientHost::EnableSharding.
  ClientHost::ShardRoute RouteOf(uint32_t slot) const;

  // Kicks off a two-phase move of [lo, hi] to `dest` (FIFO behind any move
  // already in flight).
  void StartMove(uint32_t lo, uint32_t hi, GroupId dest) {
    coordinator_->StartMove(lo, hi, dest);
  }

  // Cross-group sums.
  uint64_t TotalExecuted() const;
  uint64_t TotalReplies() const;
  uint64_t TotalWrongShardNacks() const;  // middlebox + server gates
  uint64_t TotalDoubleApplies() const;

  // Every group's counters under "<obs_scope>shard<g>." plus the shard-wide
  // control-plane counters under "<obs_scope>shard/".
  void ExportMetrics(obs::MetricsRegistry* metrics);

 private:
  ShardedClusterConfig config_;
  Simulator sim_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::vector<std::unique_ptr<obs::Watchdog>> watchdogs_;
  Network net_;
  ShardMap map_;
  std::vector<std::unique_ptr<Cluster>> groups_;
  std::unique_ptr<ShardCoordinator> coordinator_;
};

}  // namespace hovercraft

#endif  // SRC_SHARD_SHARDED_CLUSTER_H_
