// InlineFunction: a move-only callable with fixed small-buffer storage.
//
// The simulator schedules millions of events per wall second; the dominant
// cost of the old core was one heap allocation per scheduled std::function.
// InlineFunction stores the callable inline when it fits (every hot-path
// lambda in src/net, src/raft, src/core and src/loadgen does) and only falls
// back to a heap-allocating std::function wrapper for oversized captures.
#ifndef SRC_SIM_CALLBACK_H_
#define SRC_SIM_CALLBACK_H_

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace hovercraft {

template <size_t kBytes>
class InlineFunction {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT: implicit, mirrors std::function

  template <typename F, typename D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                 !std::is_same_v<D, std::nullptr_t> &&
                                 std::is_invocable_v<D&>,
                             int> = 0>
  InlineFunction(F&& fn) {  // NOLINT: implicit, mirrors std::function
    if constexpr (sizeof(D) <= kBytes && alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &kOps<D>;
    } else {
      // Oversized capture: wrap in std::function (which heap-allocates) so
      // correctness never depends on the buffer size. Hot paths are audited
      // to stay under kBytes; see docs/performance.md.
      using Fallback = std::function<void()>;
      static_assert(sizeof(Fallback) <= kBytes, "buffer must hold std::function");
      ::new (static_cast<void*>(buf_)) Fallback(std::forward<F>(fn));
      ops_ = &kOps<Fallback>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  InlineFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* self);
    void (*destroy)(void* self);
    // Move-constructs *dst from *src and destroys *src.
    void (*relocate)(void* dst, void* src);
  };

  template <typename T>
  static constexpr Ops kOps = {
      [](void* self) { (*static_cast<T*>(self))(); },
      [](void* self) { static_cast<T*>(self)->~T(); },
      [](void* dst, void* src) {
        ::new (dst) T(std::move(*static_cast<T*>(src)));
        static_cast<T*>(src)->~T();
      },
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }
  void MoveFrom(InlineFunction& other) {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kBytes];
};

}  // namespace hovercraft

#endif  // SRC_SIM_CALLBACK_H_
