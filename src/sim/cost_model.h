// Calibration constants for the simulated testbed.
//
// The paper's cluster: Xeon servers with Intel x520 10 GbE NICs on DPDK,
// behind a 10 GbE cut-through switch, plus a Tofino ASIC for HovercRaft++.
// These constants model that hardware. They were calibrated so that the
// *shapes* of the paper's figures reproduce (see EXPERIMENTS.md):
//  - a kernel-bypass server sustains ~1M small RPCs/s per core,
//  - hardware RTT between two hosts is in the ~(5..10)us range,
//  - a 10G link caps ~200 kRPS with 6KB replies (Figure 10),
//  - replicating 512B payloads to 2 followers roughly halves VanillaRaft
//    throughput (Figure 8).
#ifndef SRC_SIM_COST_MODEL_H_
#define SRC_SIM_COST_MODEL_H_

#include <cstdint>

#include "src/common/types.h"

namespace hovercraft {

struct CostModel {
  // ---- Fabric ----
  // Link bandwidth in bits per second (10 GbE).
  int64_t link_bandwidth_bps = 10'000'000'000;
  // One-way host <-> switch propagation (cable + PHY + PCI/DMA), per hop.
  TimeNs link_propagation_ns = 700;
  // Cut-through switch forwarding latency.
  TimeNs switch_latency_ns = 350;
  // Additional pipeline latency for packets that traverse the in-network
  // aggregator (it hangs off the main switch on its own link).
  TimeNs aggregator_latency_ns = 450;
  // Ethernet MTU and the per-frame overhead (Ethernet + IP + UDP + R2P2).
  int32_t mtu_payload_bytes = 1436;  // 1500 - 64 framing
  int32_t frame_overhead_bytes = 64;

  // ---- Net-thread CPU (DPDK-style polling thread) ----
  // Fixed cost to receive / transmit one frame (descriptor handling, header
  // parse/build).
  TimeNs per_frame_rx_ns = 110;
  TimeNs per_frame_tx_ns = 110;
  // Receive-side cost per payload byte (parse/touch the arriving bytes).
  double per_byte_rx_ns = 0.5;
  // Transmit-side cost per payload byte. DPDK transmission is zero-copy
  // (descriptors point at the app buffer), so this is cheap — large replies
  // are NIC-bound, not CPU-bound (Figure 10).
  double per_byte_tx_ns = 0.25;
  // Raft bookkeeping per log entry appended or acked.
  TimeNs raft_entry_ns = 60;
  // Fixed cost to build or parse one append_entries message.
  TimeNs ae_fixed_ns = 140;
  // Marshalling cost per append_entries payload byte: the leader copies the
  // embedded client requests into the message and followers copy them out —
  // the CPU tax on VanillaRaft's full-payload replication (Figure 8).
  double ae_payload_byte_ns = 0.9;

  // ---- eRPC-style transport batching (off by default) ----
  // When enabled, small messages headed to the same destination are coalesced
  // into one physical frame: the sender queues them per link and flushes on a
  // doorbell (an event at the end of the current simulated instant when the
  // delay is 0, or after the bounded delay below), when the batch reaches
  // tx_batch_max_msgs, or when one more message would overflow the MTU
  // payload. The receiver pays the per-frame RX cost once for the whole
  // batch. Off by default: batching changes event interleavings, so pinned
  // trace expectations are recorded unbatched and the ablation flips this.
  bool tx_batching = false;
  // Doorbell delay: how long the first queued message may wait for company.
  // 0 still coalesces everything sent within the same simulated instant.
  TimeNs tx_batch_delay_ns = 0;
  // Cap on logical messages per batch frame.
  int32_t tx_batch_max_msgs = 32;
  // Only messages at most this large are eligible (large messages fill
  // frames on their own; batching them would only add latency).
  int32_t tx_batch_small_bytes = 512;

  // Derived helpers -----------------------------------------------------
  int32_t FramesFor(int32_t payload_bytes) const {
    if (payload_bytes <= 0) {
      return 1;
    }
    return (payload_bytes + mtu_payload_bytes - 1) / mtu_payload_bytes;
  }

  int64_t WireBytesFor(int32_t payload_bytes) const {
    return static_cast<int64_t>(payload_bytes) +
           static_cast<int64_t>(FramesFor(payload_bytes)) * frame_overhead_bytes;
  }

  // Time the NIC needs to put a message on the wire.
  TimeNs SerializationDelay(int32_t payload_bytes) const {
    const int64_t bits = WireBytesFor(payload_bytes) * 8;
    return bits * kNanosPerSec / link_bandwidth_bps;
  }

  // Net-thread CPU to receive / transmit a message of `payload_bytes`.
  TimeNs RxCpu(int32_t payload_bytes) const {
    return per_frame_rx_ns * FramesFor(payload_bytes) +
           static_cast<TimeNs>(per_byte_rx_ns * payload_bytes);
  }
  TimeNs TxCpu(int32_t payload_bytes) const {
    return per_frame_tx_ns * FramesFor(payload_bytes) +
           static_cast<TimeNs>(per_byte_tx_ns * payload_bytes);
  }
};

}  // namespace hovercraft

#endif  // SRC_SIM_COST_MODEL_H_
