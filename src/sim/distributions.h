// Service-time distributions used by the synthetic workloads (paper section 7:
// fixed S=1us, and a bimodal distribution where 10% of requests are 10x
// longer than the rest).
#ifndef SRC_SIM_DISTRIBUTIONS_H_
#define SRC_SIM_DISTRIBUTIONS_H_

#include <memory>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/common/types.h"

namespace hovercraft {

class ServiceTimeDistribution {
 public:
  virtual ~ServiceTimeDistribution() = default;
  virtual TimeNs Sample(Rng& rng) const = 0;
  virtual TimeNs Mean() const = 0;
};

class FixedDistribution final : public ServiceTimeDistribution {
 public:
  explicit FixedDistribution(TimeNs value) : value_(value) { HC_CHECK_GE(value, 0); }
  TimeNs Sample(Rng&) const override { return value_; }
  TimeNs Mean() const override { return value_; }

 private:
  TimeNs value_;
};

class ExponentialDistribution final : public ServiceTimeDistribution {
 public:
  explicit ExponentialDistribution(TimeNs mean) : mean_(mean) { HC_CHECK_GT(mean, 0); }
  TimeNs Sample(Rng& rng) const override {
    return static_cast<TimeNs>(rng.NextExponential(static_cast<double>(mean_)));
  }
  TimeNs Mean() const override { return mean_; }

 private:
  TimeNs mean_;
};

// Two-point distribution: with probability `long_fraction` the request takes
// `ratio` times the short service time. Parameterized by the overall mean so
// configs read like the paper ("bimodal with mean 10us, 10% are 10x longer").
class BimodalDistribution final : public ServiceTimeDistribution {
 public:
  BimodalDistribution(TimeNs mean, double long_fraction, double ratio)
      : mean_(mean), long_fraction_(long_fraction) {
    HC_CHECK_GT(mean, 0);
    HC_CHECK(long_fraction > 0.0 && long_fraction < 1.0);
    HC_CHECK(ratio > 1.0);
    // mean = (1-f)*short + f*ratio*short  =>  short = mean / (1 - f + f*ratio)
    const double denom = 1.0 - long_fraction + long_fraction * ratio;
    short_ = static_cast<TimeNs>(static_cast<double>(mean) / denom);
    long_ = static_cast<TimeNs>(static_cast<double>(short_) * ratio);
  }

  TimeNs Sample(Rng& rng) const override { return rng.NextBool(long_fraction_) ? long_ : short_; }
  TimeNs Mean() const override { return mean_; }

  TimeNs short_value() const { return short_; }
  TimeNs long_value() const { return long_; }

 private:
  TimeNs mean_;
  double long_fraction_;
  TimeNs short_;
  TimeNs long_;
};

}  // namespace hovercraft

#endif  // SRC_SIM_DISTRIBUTIONS_H_
