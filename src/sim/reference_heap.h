// The pre-timer-wheel scheduling core, preserved verbatim as an executable
// specification: one heap-allocated std::function per event pushed through a
// std::priority_queue, with tombstone-set cancellation.
//
// It exists for two reasons:
//   1. tests/sim_determinism_test.cc replays randomized and golden schedules
//      through both cores and asserts identical (time, order) sequences —
//      the proof that the wheel preserves the determinism contract;
//   2. bench/sim_throughput.cc runs it side by side with the wheel to report
//      before/after events/sec in BENCH_sim.json (and CI checks the ratio).
//
// Deliberately NOT part of the production Simulator API: nothing outside
// tests and bench may depend on it. Known seed-era quirks are kept as-is
// (and pinned in tests as the wheel's *fixed* behaviour): Cancel() here
// accepts already-executed ids, and RunUntil() can overrun `until` when the
// head of the heap is a tombstone.
#ifndef SRC_SIM_REFERENCE_HEAP_H_
#define SRC_SIM_REFERENCE_HEAP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace hovercraft {

class ReferenceHeapScheduler {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  ReferenceHeapScheduler() = default;
  ReferenceHeapScheduler(const ReferenceHeapScheduler&) = delete;
  ReferenceHeapScheduler& operator=(const ReferenceHeapScheduler&) = delete;

  TimeNs Now() const { return now_; }

  EventId At(TimeNs when, std::function<void()> fn) {
    HC_CHECK_GE(when, now_);
    const EventId id = next_id_++;
    heap_.push(Event{when, id, std::move(fn)});
    return id;
  }

  EventId After(TimeNs delay, std::function<void()> fn) { return At(now_ + delay, std::move(fn)); }

  bool Cancel(EventId id) {
    if (id == kInvalidEvent || id >= next_id_) {
      return false;
    }
    // Cannot remove from the middle of the heap; mark and skip on pop.
    auto [it, inserted] = cancelled_.insert(id);
    (void)it;
    return inserted;
  }

  bool Step() {
    while (!heap_.empty()) {
      // priority_queue::top is const; the function object must be moved out,
      // so we const_cast here — the element is popped immediately afterwards.
      Event& top = const_cast<Event&>(heap_.top());
      const TimeNs when = top.when;
      const EventId id = top.id;
      std::function<void()> fn = std::move(top.fn);
      heap_.pop();
      auto cancelled_it = cancelled_.find(id);
      if (cancelled_it != cancelled_.end()) {
        cancelled_.erase(cancelled_it);
        continue;
      }
      now_ = when;
      ++executed_;
      fn();
      return true;
    }
    return false;
  }

  uint64_t RunUntil(TimeNs until) {
    uint64_t ran = 0;
    while (!heap_.empty() && heap_.top().when <= until) {
      if (Step()) {
        ++ran;
      }
    }
    if (now_ < until) {
      now_ = until;
    }
    return ran;
  }

  uint64_t RunToCompletion() {
    uint64_t ran = 0;
    while (Step()) {
      ++ran;
    }
    return ran;
  }

  size_t pending_events() const { return heap_.size() - cancelled_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimeNs when;
    EventId id;  // also the tie-break: ids are strictly increasing
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;
    }
  };

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace hovercraft

#endif  // SRC_SIM_REFERENCE_HEAP_H_
