// SerialResource models a single hardware thread (or a NIC TX engine) in
// virtual time: submitted work items execute one at a time in FIFO order.
// Queueing delay emerges naturally when the offered load exceeds capacity.
#ifndef SRC_SIM_SERIAL_RESOURCE_H_
#define SRC_SIM_SERIAL_RESOURCE_H_

#include <algorithm>
#include <deque>
#include <utility>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace hovercraft {

// This is the hottest recurring event source in the simulation (every packet
// crosses several SerialResources), so it uses the EventHandler flavour of
// scheduling: the wheel stores one 8-byte pointer per completion and the
// completion callback lives inline in done_queue_ — no per-item allocation.
class SerialResource final : public EventHandler {
 public:
  explicit SerialResource(Simulator* sim) : sim_(sim) { HC_CHECK(sim != nullptr); }

  // Enqueues a work item costing `cost` ns; `on_done` (may be empty) runs at
  // completion time. Returns the completion time.
  TimeNs Submit(TimeNs cost, Simulator::Callback on_done = nullptr) {
    HC_CHECK_GE(cost, 0);
    const TimeNs start = std::max(sim_->Now(), busy_until_);
    const TimeNs done = start + cost;
    busy_until_ = done;
    ++queued_;
    total_busy_ += cost;
    // Completion times are non-decreasing and equal times fire in schedule
    // order, so completions pop done_queue_ strictly in submit order.
    done_queue_.push_back(std::move(on_done));
    sim_->At(done, this);
    return done;
  }

  void OnEvent() override {
    HC_CHECK(!done_queue_.empty());
    Simulator::Callback on_done = std::move(done_queue_.front());
    done_queue_.pop_front();
    --queued_;
    if (on_done) {
      on_done();
    }
  }

  // Number of submitted-but-not-finished items (includes the one in service).
  int64_t queue_length() const { return queued_; }

  // Virtual time when the resource drains, given no further submissions.
  TimeNs busy_until() const { return busy_until_; }

  // Total busy nanoseconds accumulated; used for utilization accounting.
  TimeNs total_busy() const { return total_busy_; }

 private:
  Simulator* sim_;
  TimeNs busy_until_ = 0;
  int64_t queued_ = 0;
  TimeNs total_busy_ = 0;
  std::deque<Simulator::Callback> done_queue_;
};

}  // namespace hovercraft

#endif  // SRC_SIM_SERIAL_RESOURCE_H_
