// SerialResource models a single hardware thread (or a NIC TX engine) in
// virtual time: submitted work items execute one at a time in FIFO order.
// Queueing delay emerges naturally when the offered load exceeds capacity.
#ifndef SRC_SIM_SERIAL_RESOURCE_H_
#define SRC_SIM_SERIAL_RESOURCE_H_

#include <algorithm>
#include <functional>
#include <utility>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace hovercraft {

class SerialResource {
 public:
  explicit SerialResource(Simulator* sim) : sim_(sim) { HC_CHECK(sim != nullptr); }

  // Enqueues a work item costing `cost` ns; `on_done` (may be empty) runs at
  // completion time. Returns the completion time.
  TimeNs Submit(TimeNs cost, std::function<void()> on_done = nullptr) {
    HC_CHECK_GE(cost, 0);
    const TimeNs start = std::max(sim_->Now(), busy_until_);
    const TimeNs done = start + cost;
    busy_until_ = done;
    ++queued_;
    total_busy_ += cost;
    sim_->At(done, [this, on_done = std::move(on_done)]() {
      --queued_;
      if (on_done) {
        on_done();
      }
    });
    return done;
  }

  // Number of submitted-but-not-finished items (includes the one in service).
  int64_t queue_length() const { return queued_; }

  // Virtual time when the resource drains, given no further submissions.
  TimeNs busy_until() const { return busy_until_; }

  // Total busy nanoseconds accumulated; used for utilization accounting.
  TimeNs total_busy() const { return total_busy_; }

 private:
  Simulator* sim_;
  TimeNs busy_until_ = 0;
  int64_t queued_ = 0;
  TimeNs total_busy_ = 0;
};

}  // namespace hovercraft

#endif  // SRC_SIM_SERIAL_RESOURCE_H_
