#include "src/sim/simulator.h"

#include <limits>
#include <utility>

namespace hovercraft {
namespace {

// 8-byte inline trampoline for the EventHandler flavour of At(): the wheel
// stores only the pointer, so re-arming a recurring handler never allocates.
struct HandlerThunk {
  EventHandler* handler;
  void operator()() const { handler->OnEvent(); }
};

// Sentinel limit for Step()/RunToCompletion(): find the next event wherever
// it is, and leave wheel_pos_ untouched when the queue is empty (clamping to
// the sentinel would strand the cursor beyond now_).
constexpr TimeNs kNoLimit = std::numeric_limits<TimeNs>::max();

constexpr int kBlockShift = 32;  // kWheelBits * kLevels; one wheel "block"

}  // namespace

EventId Simulator::ScheduleCallback(TimeNs when, Callback fn) {
  HC_CHECK_GE(when, now_);
  const uint32_t idx = AllocSlot();
  Event& e = slot(idx);
  e.when = when;
  e.seq = next_seq_++;
  e.state = SlotState::kPending;
  e.fn = std::move(fn);
  ++live_;
  Place(idx);
  return MakeId(e.gen, idx);
}

EventId Simulator::At(TimeNs when, EventHandler* handler) {
  HC_CHECK(handler != nullptr);
  return ScheduleCallback(when, Callback(HandlerThunk{handler}));
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEvent) {
    return false;
  }
  const uint32_t idx = static_cast<uint32_t>(id & 0xFFFFFFFFu) - 1;
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (static_cast<size_t>(idx) >= slabs_.size() * kSlabSize) {
    return false;
  }
  Event& e = slot(idx);
  // The generation check rejects stale handles in O(1): executed, cancelled
  // and recycled slots have all moved past the handle's generation.
  if (e.gen != gen || e.state != SlotState::kPending) {
    return false;
  }
  if (e.level == kLevelOverflow) {
    // The map node is reclaimed lazily when its block is reached; bump the
    // generation now so the handle is dead, and drop the callback so any
    // captured resources (messages, buffers) release immediately.
    e.state = SlotState::kCancelledOverflow;
    ++e.gen;
    e.fn = nullptr;
  } else {
    UnlinkFromBucket(idx);
    FreeSlot(idx);
  }
  --live_;
  ++cancelled_;
  return true;
}

bool Simulator::Step() {
  const uint32_t idx = FindNext(kNoLimit);
  if (idx == kNil) {
    return false;
  }
  ExecuteSlot(idx);
  return true;
}

uint64_t Simulator::RunUntil(TimeNs until) {
  uint64_t ran = 0;
  while (true) {
    const uint32_t idx = FindNext(until);
    if (idx == kNil) {
      break;
    }
    ExecuteSlot(idx);
    ++ran;
  }
  if (now_ < until) {
    now_ = until;
  }
  return ran;
}

uint64_t Simulator::RunToCompletion() {
  uint64_t ran = 0;
  while (Step()) {
    ++ran;
  }
  return ran;
}

void Simulator::ExecuteSlot(uint32_t idx) {
  Event& e = slot(idx);
  now_ = e.when;
  UnlinkFromBucket(idx);
  // Move the callback out and recycle the slot *before* invoking: the
  // callback may schedule new events (reusing this very slot) or cancel
  // others, and the handle must already be stale by then.
  Callback fn = std::move(e.fn);
  FreeSlot(idx);
  --live_;
  ++executed_;
  fn();
}

uint32_t Simulator::AllocSlot() {
  if (freelist_ == kNil) {
    const uint32_t base = static_cast<uint32_t>(slabs_.size()) * kSlabSize;
    slabs_.push_back(std::make_unique<Event[]>(kSlabSize));
    Event* slab = slabs_.back().get();
    for (int i = kSlabSize - 1; i >= 0; --i) {
      slab[i].next = freelist_;
      freelist_ = base + static_cast<uint32_t>(i);
    }
  }
  const uint32_t idx = freelist_;
  freelist_ = slot(idx).next;
  return idx;
}

void Simulator::FreeSlot(uint32_t idx) {
  Event& e = slot(idx);
  e.fn = nullptr;
  e.state = SlotState::kFree;
  ++e.gen;  // invalidates every outstanding handle to this slot
  e.prev = kNil;
  e.next = freelist_;
  freelist_ = idx;
}

void Simulator::Place(uint32_t idx) {
  Event& e = slot(idx);
  if ((e.when >> kBlockShift) != (wheel_pos_ >> kBlockShift)) {
    e.level = kLevelOverflow;
    overflow_.emplace(std::make_pair(e.when, e.seq), idx);
  } else {
    PlaceInWheel(idx);
  }
}

void Simulator::PlaceInWheel(uint32_t idx) {
  Event& e = slot(idx);
  // Lowest level whose window (relative to the cursor) still contains the
  // event; an event never lands at its level's *current* index — it would
  // have matched one level down instead — which is what lets FindNext scan
  // upper levels from index + 1.
  for (int level = 0; level < kLevels - 1; ++level) {
    const int window_shift = (level + 1) * kWheelBits;
    if ((e.when >> window_shift) == (wheel_pos_ >> window_shift)) {
      AppendToBucket(level, static_cast<int>((e.when >> (level * kWheelBits)) & (kWheelSize - 1)), idx);
      return;
    }
  }
  AppendToBucket(kLevels - 1,
                 static_cast<int>((e.when >> ((kLevels - 1) * kWheelBits)) & (kWheelSize - 1)), idx);
}

void Simulator::AppendToBucket(int level, int bucket, uint32_t idx) {
  Event& e = slot(idx);
  e.level = static_cast<uint8_t>(level);
  e.bucket = static_cast<uint16_t>(bucket);
  e.next = kNil;
  Bucket& b = buckets_[level][bucket];
  e.prev = b.tail;
  if (b.tail == kNil) {
    b.head = idx;
    bitmap_[level].Set(bucket);
  } else {
    slot(b.tail).next = idx;
  }
  b.tail = idx;
}

void Simulator::UnlinkFromBucket(uint32_t idx) {
  Event& e = slot(idx);
  Bucket& b = buckets_[e.level][e.bucket];
  if (e.prev != kNil) {
    slot(e.prev).next = e.next;
  } else {
    b.head = e.next;
  }
  if (e.next != kNil) {
    slot(e.next).prev = e.prev;
  } else {
    b.tail = e.prev;
  }
  if (b.head == kNil) {
    bitmap_[e.level].Clear(static_cast<int>(e.bucket));
  }
}

void Simulator::CascadeBucket(int level, int bucket) {
  Bucket& b = buckets_[level][bucket];
  uint32_t idx = b.head;
  b.head = kNil;
  b.tail = kNil;
  bitmap_[level].Clear(bucket);
  // Re-filing in list order keeps equal-`when` events in seq order: they
  // always map to the same lower-level bucket, and appends are in-order.
  while (idx != kNil) {
    const uint32_t next = slot(idx).next;
    PlaceInWheel(idx);
    idx = next;
  }
}

void Simulator::MigrateOverflowBlock() {
  const TimeNs block = overflow_.begin()->first.first >> kBlockShift;
  auto it = overflow_.begin();
  while (it != overflow_.end() && (it->first.first >> kBlockShift) == block) {
    const uint32_t idx = it->second;
    it = overflow_.erase(it);
    Event& e = slot(idx);
    if (e.state == SlotState::kCancelledOverflow) {
      FreeSlot(idx);  // lazy reclamation of a cancelled far timer
    } else {
      // Map order is (when, seq), so equal-`when` events arrive seq-ordered
      // and land in their bucket in seq order — the determinism invariant.
      PlaceInWheel(idx);
    }
  }
}

uint32_t Simulator::FindNext(TimeNs limit) {
  while (true) {
    // Level 0: exact 1ns buckets for the current 256ns window. A hit here is
    // the next event; all events in one bucket share the same `when`, and
    // list order within a bucket is seq order, so the head is the winner.
    const int b0 = bitmap_[0].FindAtOrAfter(static_cast<int>(wheel_pos_ & (kWheelSize - 1)));
    if (b0 >= 0) {
      const TimeNs t = (wheel_pos_ & ~TimeNs{kWheelSize - 1}) | b0;
      if (t > limit) {
        break;
      }
      wheel_pos_ = t;
      return buckets_[0][b0].head;
    }
    // Upper levels, nearest first: advance to the next occupied bucket in the
    // current window and cascade it down. The *current* index at each upper
    // level is always empty (its events cascaded when the cursor entered the
    // window), so the scan starts at index + 1 — and a hit at level L is
    // strictly earlier than anything at level L+1, so the first hit wins.
    int cascade_level = -1;
    TimeNs cascade_time = 0;
    for (int level = 1; level < kLevels; ++level) {
      const int shift = level * kWheelBits;
      const int b = bitmap_[level].FindAtOrAfter(
          static_cast<int>((wheel_pos_ >> shift) & (kWheelSize - 1)) + 1);
      if (b >= 0) {
        cascade_level = level;
        cascade_time =
            (wheel_pos_ & ~((TimeNs{1} << (shift + kWheelBits)) - 1)) | (TimeNs{b} << shift);
        break;
      }
    }
    if (cascade_level > 0) {
      if (cascade_time > limit) {
        break;
      }
      wheel_pos_ = cascade_time;
      CascadeBucket(cascade_level,
                    static_cast<int>((cascade_time >> (cascade_level * kWheelBits)) & (kWheelSize - 1)));
      continue;
    }
    // Wheels are empty; the next event, if any, sits in the overflow tier.
    // Drop lazily-cancelled entries so the head is a pending event.
    while (!overflow_.empty()) {
      const uint32_t idx = overflow_.begin()->second;
      if (slot(idx).state != SlotState::kCancelledOverflow) {
        break;
      }
      overflow_.erase(overflow_.begin());
      FreeSlot(idx);
    }
    if (overflow_.empty()) {
      break;
    }
    const TimeNs block_start = overflow_.begin()->first.first & ~TimeNs{(TimeNs{1} << kBlockShift) - 1};
    if (block_start > limit) {
      break;
    }
    // Enter the head block and drain it into the wheels, then re-scan. This
    // must happen as soon as the cursor's block can reach the head's block —
    // even if the head event itself is beyond `limit` — so that any future
    // At() into this block appends *after* the (earlier-seq) migrated
    // events in their shared bucket.
    wheel_pos_ = block_start;
    MigrateOverflowBlock();
  }
  // Nothing runnable at or before `limit`. Park the cursor at `limit` so it
  // never trails behind now_ (RunUntil is about to set now_ = until), but
  // never past it — an unexecuted future event must stay ahead of the
  // cursor, and with no limit (Step on an empty queue) the cursor stays put.
  if (limit != kNoLimit && wheel_pos_ < limit) {
    wheel_pos_ = limit;
  }
  return kNil;
}

}  // namespace hovercraft
