#include "src/sim/simulator.h"

#include <utility>

namespace hovercraft {

EventId Simulator::At(TimeNs when, std::function<void()> fn) {
  HC_CHECK_GE(when, now_);
  const EventId id = next_id_++;
  heap_.push(Event{when, id, std::move(fn)});
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) {
    return false;
  }
  // We cannot remove from the middle of the heap; mark and skip on pop.
  auto [it, inserted] = cancelled_.insert(id);
  (void)it;
  return inserted;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    // priority_queue::top is const; the function object must be moved out, so
    // we const_cast here — the element is popped immediately afterwards.
    Event& top = const_cast<Event&>(heap_.top());
    const TimeNs when = top.when;
    const EventId id = top.id;
    std::function<void()> fn = std::move(top.fn);
    heap_.pop();
    auto cancelled_it = cancelled_.find(id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    now_ = when;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

uint64_t Simulator::RunUntil(TimeNs until) {
  uint64_t ran = 0;
  while (!heap_.empty() && heap_.top().when <= until) {
    if (Step()) {
      ++ran;
    }
  }
  if (now_ < until) {
    now_ = until;
  }
  return ran;
}

uint64_t Simulator::RunToCompletion() {
  uint64_t ran = 0;
  while (Step()) {
    ++ran;
  }
  return ran;
}

}  // namespace hovercraft
