// Deterministic discrete-event simulator core.
//
// All protocol and application code in this repository executes against this
// event loop. Determinism contract: with the same seed and configuration, a
// run produces an identical event sequence (ties in time are broken by
// scheduling order).
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace hovercraft {

namespace obs {
class Observability;  // src/obs/observability.h; attached but never owned
}

// Token for a scheduled event, usable with Simulator::Cancel.
using EventId = uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Optional observability bundle (tracer + metrics). Null by default: the
  // trace/metric hooks throughout the codebase reduce to one pointer load
  // and branch when nothing is installed. The simulator does not own it.
  obs::Observability* observability() const { return observability_; }
  void set_observability(obs::Observability* observability) { observability_ = observability; }

  // Schedules `fn` to run at absolute virtual time `when` (>= Now()).
  EventId At(TimeNs when, std::function<void()> fn);

  // Schedules `fn` to run `delay` nanoseconds from now.
  EventId After(TimeNs delay, std::function<void()> fn) { return At(now_ + delay, std::move(fn)); }

  // Cancels a pending event. Returns false if it already ran or was cancelled.
  bool Cancel(EventId id);

  // Runs events until the queue is empty or virtual time would pass `until`.
  // Returns the number of events executed.
  uint64_t RunUntil(TimeNs until);

  // Runs until no events remain.
  uint64_t RunToCompletion();

  // Runs exactly one event if available; returns false when idle.
  bool Step();

  size_t pending_events() const { return heap_.size() - cancelled_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimeNs when;
    EventId id;  // also the tie-break: ids are strictly increasing
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;
    }
  };

  TimeNs now_ = 0;
  obs::Observability* observability_ = nullptr;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace hovercraft

#endif  // SRC_SIM_SIMULATOR_H_
