// Deterministic discrete-event simulator core.
//
// All protocol and application code in this repository executes against this
// event loop. Determinism contract: with the same seed and configuration, a
// run produces an identical event sequence (ties in time are broken by
// scheduling order).
//
// Scheduling core (see docs/performance.md for the design and measurements):
//   - a hierarchical timer wheel — four levels of 256 one-shot buckets
//     covering the next ~4.3s of virtual time at 1ns resolution — with a
//     sorted overflow tier for events beyond the horizon;
//   - events live in a pooled slab allocator as intrusive doubly-linked list
//     nodes; callbacks are stored inline (InlineFunction) so the dominant
//     paths schedule with zero heap allocations;
//   - cancellation is O(1) by generation-checked handle: the slot is
//     unlinked and recycled immediately (overflow-tier events are marked and
//     reclaimed when their block is reached).
// Event order is identical to the reference binary-heap core
// (src/sim/reference_heap.h): strictly by (time, schedule order).
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/sim/callback.h"

namespace hovercraft {

namespace obs {
class Observability;   // src/obs/observability.h; attached but never owned
class FlightRecorder;  // src/obs/flight_recorder.h; attached but never owned
}

// Token for a scheduled event, usable with Simulator::Cancel. Encodes a pool
// slot and a generation, so a stale handle (event already ran or was
// cancelled) is rejected in O(1) without any lookup structure.
using EventId = uint64_t;
constexpr EventId kInvalidEvent = 0;

// Vtable-dispatched callback for recurring events (NIC/net-thread
// completions, periodic maintenance): the scheduler stores only the pointer,
// so re-arming a handler allocates and copies nothing.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void OnEvent() = 0;
};

class Simulator {
 public:
  // Inline capture budget for scheduled callbacks. Sized so every audited
  // hot-path lambda (packet delivery, serial-resource completion, the apply
  // pipeline) stays allocation-free; larger captures fall back to a heap-
  // allocating std::function.
  static constexpr size_t kInlineCallbackBytes = 56;
  using Callback = InlineFunction<kInlineCallbackBytes>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Optional observability bundle (tracer + metrics). Null by default: the
  // trace/metric hooks throughout the codebase reduce to one pointer load
  // and branch when nothing is installed. The simulator does not own it.
  obs::Observability* observability() const { return observability_; }
  void set_observability(obs::Observability* observability) { observability_ = observability; }

  // Always-on flight recorder (src/obs/flight_recorder.h). Unlike the
  // observability bundle, the topology owner (Cluster) installs one by
  // default; the hooks cost one branch and one ring store when present and
  // one pointer load and branch when absent. The simulator does not own it.
  obs::FlightRecorder* flight_recorder() const { return flight_recorder_; }
  void set_flight_recorder(obs::FlightRecorder* recorder) { flight_recorder_ = recorder; }

  // Schedules `fn` to run at absolute virtual time `when`. CHECK-fails when
  // `when < Now()`: scheduling into the past would silently reorder history.
  template <typename F, std::enable_if_t<!std::is_convertible_v<F&&, EventHandler*>, int> = 0>
  EventId At(TimeNs when, F&& fn) {
    return ScheduleCallback(when, Callback(std::forward<F>(fn)));
  }
  // Handler flavour: fires handler->OnEvent() at `when`. The handler is not
  // owned and must outlive the event (or cancel it).
  EventId At(TimeNs when, EventHandler* handler);

  // Schedules `fn` to run `delay` nanoseconds from now.
  template <typename F, std::enable_if_t<!std::is_convertible_v<F&&, EventHandler*>, int> = 0>
  EventId After(TimeNs delay, F&& fn) {
    return ScheduleCallback(now_ + delay, Callback(std::forward<F>(fn)));
  }
  EventId After(TimeNs delay, EventHandler* handler) { return At(now_ + delay, handler); }

  // Cancels a pending event. Returns false if it already ran or was
  // cancelled. O(1): the handle's generation check rejects stale ids and the
  // slot is unlinked from its wheel bucket in place.
  bool Cancel(EventId id);

  // Runs events until the queue is empty or the next event lies beyond
  // `until`. Returns the number of events executed. Cancelled events neither
  // run nor count, and never cause an event beyond `until` to run.
  uint64_t RunUntil(TimeNs until);

  // Runs until no events remain.
  uint64_t RunToCompletion();

  // Runs exactly one event if available; returns false when idle.
  bool Step();

  // Live scheduled events: scheduled minus executed minus cancelled.
  size_t pending_events() const { return live_; }
  // Events whose callback actually ran. A cancelled event is never counted
  // here, even if its slot is reclaimed while popping.
  uint64_t executed_events() const { return executed_; }
  // Successful Cancel() calls.
  uint64_t cancelled_events() const { return cancelled_; }

 private:
  // --- timer wheel geometry -------------------------------------------------
  // Level L buckets span 2^(8L) ns; the four wheels jointly cover the 2^32ns
  // (~4.3s) block of virtual time containing wheel_pos_ — deep enough that
  // even the slowest recurring timers (Raft elections, maintenance ticks)
  // never leave the wheel. Everything beyond goes to the sorted overflow map
  // keyed by (when, seq).
  static constexpr int kWheelBits = 8;
  static constexpr int kWheelSize = 1 << kWheelBits;  // 256 buckets per level
  static constexpr int kLevels = 4;
  static constexpr uint32_t kNil = 0xFFFFFFFFu;
  static constexpr uint8_t kLevelOverflow = kLevels;
  static constexpr int kSlabBits = 8;
  static constexpr int kSlabSize = 1 << kSlabBits;

  enum class SlotState : uint8_t {
    kFree,
    kPending,
    kCancelledOverflow,  // cancelled while in the overflow map; reclaimed lazily
  };

  // Pooled event slot. Slots live in fixed slabs (stable addresses) and are
  // recycled through a freelist; `gen` increments on every recycle so stale
  // EventIds never alias a reused slot.
  struct Event {
    TimeNs when = 0;
    uint64_t seq = 0;  // strictly increasing scheduling order; the tie-break
    uint32_t next = kNil;
    uint32_t prev = kNil;
    uint32_t gen = 0;
    SlotState state = SlotState::kFree;
    uint8_t level = 0;     // 0..kLevels-1 in the wheel, kLevelOverflow beyond
    uint16_t bucket = 0;   // bucket index within the level
    Callback fn;
  };

  struct Bucket {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };

  // 256-bit occupancy map per level; lets the pop path skip empty buckets in
  // O(1) instead of walking virtual time tick by tick.
  struct Bitmap {
    uint64_t w[kWheelSize / 64] = {};
    void Set(int i) { w[i >> 6] |= uint64_t{1} << (i & 63); }
    void Clear(int i) { w[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
    // First set index >= from, or -1.
    int FindAtOrAfter(int from) const {
      if (from >= kWheelSize) {
        return -1;
      }
      int word = from >> 6;
      uint64_t bits = w[word] & (~uint64_t{0} << (from & 63));
      while (true) {
        if (bits != 0) {
          return (word << 6) + __builtin_ctzll(bits);
        }
        if (++word == kWheelSize / 64) {
          return -1;
        }
        bits = w[word];
      }
    }
  };

  EventId ScheduleCallback(TimeNs when, Callback fn);

  Event& slot(uint32_t idx) { return slabs_[idx >> kSlabBits][idx & (kSlabSize - 1)]; }
  uint32_t AllocSlot();
  void FreeSlot(uint32_t idx);
  static EventId MakeId(uint32_t gen, uint32_t idx) {
    return (static_cast<uint64_t>(gen) << 32) | (idx + 1);
  }

  // Files the slot into the wheel or the overflow tier based on wheel_pos_.
  void Place(uint32_t idx);
  // Wheel-only placement; requires when >> 32 == wheel_pos_ >> 32.
  void PlaceInWheel(uint32_t idx);
  void AppendToBucket(int level, int bucket, uint32_t idx);
  void UnlinkFromBucket(uint32_t idx);
  // Redistributes bucket (level, idx) into lower levels; wheel_pos_ must
  // already point at the start of the bucket's time range.
  void CascadeBucket(int level, int bucket);
  // Moves the earliest overflow block into the wheels (dropping cancelled
  // slots); wheels must be empty.
  void MigrateOverflowBlock();
  // Finds the slot of the earliest pending event with when <= limit and
  // advances wheel_pos_ to it; returns kNil if there is none (wheel_pos_
  // then stops at min(limit, next event time) so later schedules stay
  // reachable). Cascades and migrations happen here.
  uint32_t FindNext(TimeNs limit);
  void ExecuteSlot(uint32_t idx);

  TimeNs now_ = 0;
  obs::Observability* observability_ = nullptr;
  obs::FlightRecorder* flight_recorder_ = nullptr;

  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  uint64_t cancelled_ = 0;
  size_t live_ = 0;

  // Scan cursor: every pending wheel event has when >= wheel_pos_ and shares
  // its 2^32ns block. Invariant: wheel_pos_ <= now_ whenever control is
  // outside FindNext, so At(when >= Now()) can never place an event behind
  // the cursor.
  TimeNs wheel_pos_ = 0;
  Bucket buckets_[kLevels][kWheelSize];
  Bitmap bitmap_[kLevels];
  std::map<std::pair<TimeNs, uint64_t>, uint32_t> overflow_;

  std::vector<std::unique_ptr<Event[]>> slabs_;
  uint32_t freelist_ = kNil;
};

}  // namespace hovercraft

#endif  // SRC_SIM_SIMULATOR_H_
