#include "src/stats/histogram.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace hovercraft {

Histogram::Histogram(int sub_bucket_bits) : sub_bucket_bits_(sub_bucket_bits) {
  HC_CHECK(sub_bucket_bits >= 1 && sub_bucket_bits <= 16);
  sub_bucket_count_ = int64_t{1} << sub_bucket_bits_;
  // 64 power-of-two ranges cover the whole non-negative int64 span.
  buckets_.assign(static_cast<size_t>(64) * static_cast<size_t>(sub_bucket_count_), 0);
}

size_t Histogram::BucketFor(int64_t value) const {
  if (value < 0) {
    value = 0;
  }
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < static_cast<uint64_t>(sub_bucket_count_)) {
    // Values below 2^bits are exact: one value per bucket.
    return static_cast<size_t>(v);
  }
  // Values in [2^(bits+k-1), 2^(bits+k)) map to `half` linear sub-buckets of
  // width 2^k each, laid out contiguously after the exact region.
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - sub_bucket_bits_ + 1;  // k, >= 1
  const uint64_t half = static_cast<uint64_t>(sub_bucket_count_) / 2;
  const uint64_t sub_top = (v >> shift) - half;  // in [0, half)
  return static_cast<size_t>(sub_bucket_count_) +
         static_cast<size_t>(shift - 1) * static_cast<size_t>(half) +
         static_cast<size_t>(sub_top);
}

int64_t Histogram::BucketUpperBound(size_t bucket) const {
  const uint64_t half = static_cast<uint64_t>(sub_bucket_count_) / 2;
  if (bucket < static_cast<size_t>(sub_bucket_count_)) {
    return static_cast<int64_t>(bucket);
  }
  const uint64_t past = static_cast<uint64_t>(bucket) - static_cast<uint64_t>(sub_bucket_count_);
  const int shift = static_cast<int>(past / half) + 1;
  const uint64_t sub_top = past % half;
  const uint64_t top = sub_top + half + 1;
  // The highest ranges would shift past bit 63; saturate instead of
  // overflowing (and shift >= 64 is undefined outright). Covers every bucket
  // index in the array, not just the ones BucketFor can produce.
  if (shift >= 63 || (top >> (63 - shift)) != 0) {
    return std::numeric_limits<int64_t>::max();
  }
  return static_cast<int64_t>((top << shift) - 1);
}

void Histogram::Record(int64_t value) { RecordN(value, 1); }

void Histogram::RecordN(int64_t value, uint64_t n) {
  if (n == 0) {
    return;
  }
  if (value < 0) {
    value = 0;
  }
  const size_t bucket = BucketFor(value);
  HC_CHECK_LT(bucket, buckets_.size());
  buckets_[bucket] += n;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
}

double Histogram::Mean() const {
  if (count_ == 0) {
    return 0.0;
  }
  return sum_ / static_cast<double>(count_);
}

int64_t Histogram::ValueAtQuantile(double quantile) const {
  if (count_ == 0) {
    return 0;  // no samples: matches min()/max()
  }
  if (quantile <= 0.0) {
    return min();  // the 0th percentile is the minimum, not a bucket bound
  }
  quantile = std::min(quantile, 1.0);
  // Rank of the sample holding the quantile, clamped to [1, count]: floating
  // error must not round the target down to 0 (which would match the first
  // non-empty bucket regardless of quantile) or up past the population
  // (which would never match and always report max).
  const uint64_t target = std::clamp<uint64_t>(
      static_cast<uint64_t>(quantile * static_cast<double>(count_) + 0.5), 1, count_);
  uint64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i];
    if (running >= target && buckets_[i] > 0) {
      // The bucket bound brackets the true value; clamping to the observed
      // range makes single-sample and extreme-quantile answers exact.
      return std::clamp(BucketUpperBound(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

void Histogram::Merge(const Histogram& other) {
  HC_CHECK_EQ(sub_bucket_bits_, other.sub_bucket_bits_);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }
}

}  // namespace hovercraft
