// Log-linear latency histogram (HDR-histogram style): values are bucketed
// with bounded relative error so tail percentiles stay accurate across the
// nanosecond-to-second range without storing every sample.
#ifndef SRC_STATS_HISTOGRAM_H_
#define SRC_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace hovercraft {

class Histogram {
 public:
  // sub_bucket_bits controls relative precision: 2^bits linear sub-buckets per
  // power-of-two range, i.e. worst-case relative error 2^-bits. The default
  // (7 bits -> <0.8% error) matches what latency tooling like HdrHistogram
  // commonly uses.
  explicit Histogram(int sub_bucket_bits = 7);

  void Record(int64_t value);
  void RecordN(int64_t value, uint64_t count);

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;
  // quantile in [0, 1]; returns the upper bound of the bucket holding it.
  int64_t ValueAtQuantile(double quantile) const;
  int64_t Percentile(double p) const { return ValueAtQuantile(p / 100.0); }

  void Clear();
  // Adds all samples of `other` into this histogram (must share precision).
  void Merge(const Histogram& other);

 private:
  size_t BucketFor(int64_t value) const;
  int64_t BucketUpperBound(size_t bucket) const;

  int sub_bucket_bits_;
  int64_t sub_bucket_count_;    // 2^sub_bucket_bits
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace hovercraft

#endif  // SRC_STATS_HISTOGRAM_H_
