// Small streaming summary (count/mean/variance/min/max) via Welford's method.
#ifndef SRC_STATS_SUMMARY_H_
#define SRC_STATS_SUMMARY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace hovercraft {

class Summary {
 public:
  void Record(double x) {
    ++count_;
    if (count_ == 1) {
      min_ = x;
      max_ = x;
      mean_ = x;
      m2_ = 0.0;
      return;
    }
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double Variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double StdDev() const { return std::sqrt(Variance()); }

  void Clear() { *this = Summary(); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hovercraft

#endif  // SRC_STATS_SUMMARY_H_
