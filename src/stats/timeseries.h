// Fixed-interval timeseries: samples are binned by virtual time so benches
// can report per-second throughput/latency traces (paper Figure 12).
#ifndef SRC_STATS_TIMESERIES_H_
#define SRC_STATS_TIMESERIES_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/stats/histogram.h"

namespace hovercraft {

class Timeseries {
 public:
  explicit Timeseries(TimeNs bin_width) : bin_width_(bin_width) { HC_CHECK_GT(bin_width, 0); }

  void Record(TimeNs when, int64_t value) {
    Bin& bin = BinFor(when);
    bin.histogram.Record(value);
  }

  // Counts an event without a latency value (e.g. a dropped request).
  void Count(TimeNs when, uint64_t n = 1) {
    Bin& bin = BinFor(when);
    bin.events += n;
  }

  struct Point {
    TimeNs start;
    uint64_t samples;     // latency samples recorded in the bin
    uint64_t events;      // extra counted events
    double mean;
    int64_t p50;
    int64_t p99;
  };

  std::vector<Point> Points() const {
    std::vector<Point> out;
    out.reserve(bins_.size());
    for (size_t i = 0; i < bins_.size(); ++i) {
      const Bin& b = bins_[i];
      out.push_back(Point{static_cast<TimeNs>(i) * bin_width_, b.histogram.count(), b.events,
                          b.histogram.Mean(), b.histogram.Percentile(50), b.histogram.Percentile(99)});
    }
    return out;
  }

  TimeNs bin_width() const { return bin_width_; }
  size_t bin_count() const { return bins_.size(); }

 private:
  struct Bin {
    Histogram histogram;
    uint64_t events = 0;
  };

  Bin& BinFor(TimeNs when) {
    HC_CHECK_GE(when, 0);
    const size_t idx = static_cast<size_t>(when / bin_width_);
    while (bins_.size() <= idx) {
      bins_.emplace_back();
    }
    return bins_[idx];
  }

  TimeNs bin_width_;
  std::vector<Bin> bins_;
};

}  // namespace hovercraft

#endif  // SRC_STATS_TIMESERIES_H_
