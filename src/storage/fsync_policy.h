// Fsync discipline for the simulated WAL (docs/durability.md).
#ifndef SRC_STORAGE_FSYNC_POLICY_H_
#define SRC_STORAGE_FSYNC_POLICY_H_

#include <cstdint>
#include <string>

namespace hovercraft {

enum class FsyncPolicy : uint8_t {
  // Ack after durable; at most one flush in flight, later appends coalesce
  // onto the next flush (group commit). The safe default.
  kGroupCommit = 0,
  // Ack after durable; every append batch gets its own flush, queued on the
  // serial device. Shows the un-batched throughput ceiling of a slow device.
  kSyncPerAppend = 1,
  // Ack immediately, flush lazily in the background. Unsafe: a power failure
  // un-commits acknowledged writes. Exists as the chaos control.
  kAckBeforeSync = 2,
};

inline const char* FsyncPolicyName(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kGroupCommit:
      return "group-commit";
    case FsyncPolicy::kSyncPerAppend:
      return "sync-per-append";
    case FsyncPolicy::kAckBeforeSync:
      return "ack-before-sync";
  }
  return "?";
}

// Returns true and sets `out` when `name` matches a policy flag value.
inline bool ParseFsyncPolicy(const std::string& name, FsyncPolicy* out) {
  if (name == "group-commit") {
    *out = FsyncPolicy::kGroupCommit;
  } else if (name == "sync-per-append") {
    *out = FsyncPolicy::kSyncPerAppend;
  } else if (name == "ack-before-sync") {
    *out = FsyncPolicy::kAckBeforeSync;
  } else {
    return false;
  }
  return true;
}

}  // namespace hovercraft

#endif  // SRC_STORAGE_FSYNC_POLICY_H_
