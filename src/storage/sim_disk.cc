#include "src/storage/sim_disk.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/obs/observability.h"

namespace hovercraft {

void SimDisk::set_node(NodeId node) {
  node_ = node;
  fsync_metric_.clear();
}

void SimDisk::RecordFsyncLatency(TimeNs latency) {
  auto* o = obs::ObsOf(sim_);
  if (o == nullptr || node_ == kInvalidNode) {
    return;
  }
  if (fsync_metric_.empty()) {
    fsync_metric_ = obs::NodeScope(node_) + "storage.fsync_ns";
  }
  o->metrics().GetHistogram(fsync_metric_).Record(latency);
}

void SimDisk::Append(const std::string& file, const uint8_t* data, size_t len) {
  File& f = files_[file];
  f.data.insert(f.data.end(), data, data + len);
  ++stats_.appends;
  stats_.bytes_written += len;
}

void SimDisk::Truncate(const std::string& file, size_t size) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return;
  }
  File& f = it->second;
  if (size < f.data.size()) {
    f.data.resize(size);
  }
  f.synced = std::min(f.synced, f.data.size());
}

void SimDisk::WriteAndSync(const std::string& file, std::vector<uint8_t> bytes) {
  File& f = files_[file];
  stats_.bytes_written += bytes.size();
  ++stats_.appends;
  f.data = std::move(bytes);
  f.synced = f.data.size();
}

void SimDisk::Delete(const std::string& file) { files_.erase(file); }

bool SimDisk::Sync(SyncCallback cb, bool coalesce) {
  const TimeNs latency = sync_latency_ + stall_;
  if (latency == 0 && !flush_running_ && queue_.empty()) {
    // Fast path: an idle zero-latency device completes the barrier inline,
    // scheduling nothing — the persist_latency=0 timeline is untouched.
    MarkAllSynced();
    ++stats_.syncs;
    RecordFsyncLatency(0);
    if (cb) {
      cb();
    }
    return true;
  }
  // Group commit may only ride a flush that has NOT started yet: a running
  // flush captured its frontier at start and does not cover bytes appended
  // since. (The running op stays at queue_.front() until it completes, so
  // "an unstarted op exists" means the queue is deeper than the running one.)
  const bool unstarted_pending = queue_.size() > (flush_running_ ? 1u : 0u);
  if (coalesce && unstarted_pending) {
    ++stats_.coalesced;  // group commit: this barrier rides the queued flush
    if (cb) {
      queue_.back().callbacks.push_back(std::move(cb));
    }
  } else {
    FlushOp op;
    op.requested = sim_->Now();
    if (cb) {
      op.callbacks.push_back(std::move(cb));
    }
    queue_.push_back(std::move(op));
  }
  if (!flush_running_) {
    StartNextFlush();
  }
  return false;
}

void SimDisk::SyncNow() {
  MarkAllSynced();
  ++stats_.syncs;
  // Pending priced flushes keep running: their data is already durable, and
  // completing them early here would reorder ack timing relative to the
  // serial-device model.
}

void SimDisk::StartNextFlush() {
  HC_CHECK(!flush_running_);
  while (!queue_.empty()) {
    flush_running_ = true;
    running_frontier_.clear();
    for (const auto& [name, f] : files_) {
      running_frontier_[name] = f.data.size();
    }
    const TimeNs latency = sync_latency_ + stall_;
    stats_.stall_ns += static_cast<uint64_t>(stall_);
    if (latency > 0) {
      flush_event_ = sim_->After(latency, [this]() { CompleteFlush(); });
      return;
    }
    // Zero-latency queued op (reachable when a stall heals with ops queued,
    // or when callbacks enqueue while draining): complete inline.
    FinishFront();
    if (flush_running_) {
      return;  // a callback re-armed a priced flush
    }
  }
}

void SimDisk::CompleteFlush() {
  flush_event_ = kInvalidEvent;
  FinishFront();
  if (!flush_running_ && !queue_.empty()) {
    StartNextFlush();
  }
}

void SimDisk::FinishFront() {
  ++stats_.syncs;
  for (const auto& [name, size] : running_frontier_) {
    auto it = files_.find(name);
    if (it != files_.end()) {
      it->second.synced = std::max(it->second.synced, std::min(size, it->second.data.size()));
    }
  }
  running_frontier_.clear();
  HC_CHECK(!queue_.empty());
  FlushOp op = std::move(queue_.front());
  queue_.pop_front();
  flush_running_ = false;
  RecordFsyncLatency(sim_->Now() - op.requested);
  for (auto& cb : op.callbacks) {
    cb();
  }
}

void SimDisk::MarkAllSynced() {
  for (auto& [name, f] : files_) {
    f.synced = f.data.size();
  }
}

void SimDisk::Crash() {
  ++stats_.crashes;
  const bool torn = next_crash_torn_;
  next_crash_torn_ = false;
  for (auto& [name, f] : files_) {
    size_t keep = f.synced;
    const size_t unsynced = f.data.size() - f.synced;
    if (torn && unsynced > 0) {
      // A torn write: a strict prefix of the unsynced tail made it to the
      // platter, cutting the final record(s) mid-byte-stream.
      keep += static_cast<size_t>(rng_() % unsynced);
      ++stats_.torn_crashes;
    }
    stats_.bytes_lost += f.data.size() - keep;
    f.data.resize(keep);
    f.synced = f.data.size();
  }
  // The process died: pending barriers and their callbacks die with it.
  queue_.clear();
  running_frontier_.clear();
  flush_running_ = false;
  if (flush_event_ != kInvalidEvent) {
    sim_->Cancel(flush_event_);
    flush_event_ = kInvalidEvent;
  }
}

bool SimDisk::FlipByte(const std::string& file, size_t offset) {
  auto it = files_.find(file);
  if (it == files_.end() || offset >= it->second.data.size()) {
    return false;
  }
  it->second.data[offset] ^= 0x40;
  ++stats_.flips;
  return true;
}

const std::vector<uint8_t>& SimDisk::Read(const std::string& file) const {
  static const std::vector<uint8_t> kEmpty;
  auto it = files_.find(file);
  return it == files_.end() ? kEmpty : it->second.data;
}

size_t SimDisk::Size(const std::string& file) const {
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.data.size();
}

size_t SimDisk::SyncedSize(const std::string& file) const {
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.synced;
}

std::vector<std::string> SimDisk::List(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [name, f] : files_) {
    if (name.compare(0, prefix.size(), prefix) == 0) {
      out.push_back(name);
    }
  }
  return out;  // std::map iteration order is already sorted
}

}  // namespace hovercraft
