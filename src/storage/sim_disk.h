// Simulated durable media for one node.
//
// A SimDisk is a set of named byte files plus a flush engine. Writes land in
// the volatile tail of a file immediately; they only become durable when a
// sync barrier that covers them completes. The flush engine is a serial
// device: one sync is in flight at a time, each costing `sync_latency` (the
// node's RaftOptions::persist_latency) plus any injected stall, so
// sync-per-append queues while group commit coalesces. With a zero effective
// latency a sync completes inline — no simulator event is scheduled — which
// keeps the default persist_latency=0 configurations on exactly the event
// timeline they had before durability was modelled.
//
// Crashing the disk models power loss: the unsynced suffix of every file is
// discarded (torn mode keeps a partial prefix of it — a torn final record)
// and every pending sync callback dies with the process, so nothing can ack
// from the grave. FlipByte models media corruption of already-durable bytes.
#ifndef SRC_STORAGE_SIM_DISK_H_
#define SRC_STORAGE_SIM_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace hovercraft {

struct SimDiskStats {
  uint64_t appends = 0;
  uint64_t bytes_written = 0;
  uint64_t syncs = 0;            // completed barriers (inline ones included)
  uint64_t coalesced = 0;        // barriers that piggybacked on a queued flush
  uint64_t crashes = 0;
  uint64_t bytes_lost = 0;       // unsynced bytes dropped by crashes
  uint64_t torn_crashes = 0;     // crashes that left a partial unsynced tail
  uint64_t flips = 0;            // injected corruption events
  uint64_t stall_ns = 0;         // total extra sync latency injected
};

class SimDisk {
 public:
  using SyncCallback = std::function<void()>;

  SimDisk(Simulator* sim, uint64_t seed, TimeNs sync_latency)
      : sim_(sim), rng_(seed), sync_latency_(sync_latency) {}
  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  // --- writes ---------------------------------------------------------------
  void Append(const std::string& file, const uint8_t* data, size_t len);
  // Truncates `file` to `size` bytes (clamping the durable watermark too).
  void Truncate(const std::string& file, size_t size);
  // Atomic replace-and-sync, the simulated write-to-temp + rename idiom used
  // for snapshot files: after the call the whole content is durable.
  void WriteAndSync(const std::string& file, std::vector<uint8_t> bytes);
  void Delete(const std::string& file);

  // --- durability -----------------------------------------------------------
  // Requests a whole-device barrier: everything written before the covering
  // flush *starts* is durable when `cb` runs. With `coalesce`, the request
  // piggybacks on an already-queued (not yet started) flush — group commit.
  // Returns true when the barrier completed inline (zero effective latency
  // and an idle device); `cb` has then already run.
  bool Sync(SyncCallback cb, bool coalesce);
  // Synchronous zero-cost barrier: marks everything written so far durable.
  // Used for rare off-data-path records (hard state, snapshot metadata) whose
  // latency the model deliberately does not price (docs/durability.md).
  void SyncNow();

  // --- faults ---------------------------------------------------------------
  // Power loss. Drops the unsynced suffix of every file and aborts pending
  // flush callbacks. In torn mode (one-shot, armed by the nemesis) a random
  // partial prefix of the unsynced tail survives — a torn final record.
  void Crash();
  void set_next_crash_torn() { next_crash_torn_ = true; }
  // Flips one bit of an already-written byte. Returns false when the file is
  // missing or shorter than `offset`.
  bool FlipByte(const std::string& file, size_t offset);
  // Gray-disk injection: every subsequent flush costs `extra` more.
  void set_stall(TimeNs extra) { stall_ = extra; }
  TimeNs stall() const { return stall_; }

  // --- reads ----------------------------------------------------------------
  bool Exists(const std::string& file) const { return files_.count(file) != 0; }
  const std::vector<uint8_t>& Read(const std::string& file) const;
  size_t Size(const std::string& file) const;
  size_t SyncedSize(const std::string& file) const;
  // Sorted names of the files whose name starts with `prefix`.
  std::vector<std::string> List(const std::string& prefix) const;

  const SimDiskStats& stats() const { return stats_; }
  Simulator* sim() const { return sim_; }
  // Barriers waiting for (or holding) the flush engine; the per-node
  // flush-queue depth sampler reads this.
  size_t queue_depth() const { return queue_.size(); }
  // Names the node this disk belongs to, scoping the fsync latency histogram
  // ("node3/storage.fsync_ns").
  void set_node(NodeId node);

 private:
  struct File {
    std::vector<uint8_t> data;
    size_t synced = 0;  // durable watermark: data[0, synced) survives a crash
  };
  // One queued barrier; the covered frontier is captured when the flush
  // starts (group-commit semantics), not when it was requested.
  struct FlushOp {
    TimeNs requested = 0;  // for the fsync latency histogram
    std::vector<SyncCallback> callbacks;
  };

  // Request-to-completion barrier latency (queueing included) into the
  // per-node "storage.fsync_ns" histogram; no-op without observability.
  void RecordFsyncLatency(TimeNs latency);

  void StartNextFlush();
  void CompleteFlush();
  void FinishFront();
  void MarkAllSynced();

  Simulator* sim_;
  std::mt19937_64 rng_;
  TimeNs sync_latency_;
  TimeNs stall_ = 0;
  bool next_crash_torn_ = false;
  NodeId node_ = kInvalidNode;
  std::string fsync_metric_;  // cached histogram name, built on first record

  std::map<std::string, File> files_;
  std::deque<FlushOp> queue_;
  bool flush_running_ = false;
  EventId flush_event_ = kInvalidEvent;
  // Frontier of the in-flight flush: file -> size captured at start.
  std::map<std::string, size_t> running_frontier_;

  SimDiskStats stats_;
};

}  // namespace hovercraft

#endif  // SRC_STORAGE_SIM_DISK_H_
